//! virtio-blk device model.
//!
//! Wraps a [`RamDisk`] as the host-side image and charges the virtio
//! notification (VM exit) plus guest/host copy cost per request — the
//! costs a KVM guest actually pays per block request over virtio-blk.

use ukplat::cost;
use ukplat::time::Tsc;
use ukplat::Result;

use crate::ramdisk::RamDisk;
use crate::{BlockCompletion, BlockDev, BlockDevInfo, BlockReq};

/// A virtio block device backed by host memory.
#[derive(Debug)]
pub struct VirtioBlk {
    inner: RamDisk,
    tsc: Tsc,
    kicks: u64,
}

impl VirtioBlk {
    /// Creates a device over a fresh host image of `sectors` sectors.
    pub fn new(sectors: u64, tsc: &Tsc) -> Self {
        VirtioBlk {
            inner: RamDisk::new(sectors),
            tsc: tsc.clone(),
            kicks: 0,
        }
    }

    /// Kicks (VM exits) so far.
    pub fn kicks(&self) -> u64 {
        self.kicks
    }

    fn charge(&mut self, bytes: usize) {
        // One kick per request + host-side copy of the payload.
        self.kicks += 1;
        self.tsc.advance(cost::VMEXIT_CYCLES);
        self.tsc.advance(cost::copy_cost_cycles(bytes));
    }
}

impl BlockDev for VirtioBlk {
    fn info(&self) -> BlockDevInfo {
        self.inner.info()
    }

    fn submit(&mut self, token: u64, req: BlockReq) -> Result<()> {
        let bytes = match &req {
            BlockReq::Read { count, .. } => *count as usize * crate::SECTOR_SIZE,
            BlockReq::Write { data, .. } => data.len(),
            BlockReq::Flush => 0,
        };
        self.charge(bytes);
        self.inner.submit(token, req)
    }

    fn poll(&mut self, out: &mut Vec<BlockCompletion>) -> usize {
        self.inner.poll(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SECTOR_SIZE;

    fn tsc() -> Tsc {
        Tsc::new(cost::CPU_FREQ_HZ)
    }

    #[test]
    fn io_works_and_charges_traps() {
        let t = tsc();
        let mut d = VirtioBlk::new(16, &t);
        let data = vec![9u8; SECTOR_SIZE];
        d.write_sync(0, &data).unwrap();
        assert_eq!(d.read_sync(0, 1).unwrap(), data);
        assert_eq!(d.kicks(), 2);
        assert!(t.now_cycles() >= 2 * cost::VMEXIT_CYCLES);
    }

    #[test]
    fn copy_cost_scales_with_size() {
        let t1 = tsc();
        let mut d1 = VirtioBlk::new(512, &t1);
        d1.read_sync(0, 1).unwrap();
        let small = t1.now_cycles();

        let t2 = tsc();
        let mut d2 = VirtioBlk::new(512, &t2);
        d2.read_sync(0, 64).unwrap();
        let large = t2.now_cycles();
        assert!(large > small);
    }
}
