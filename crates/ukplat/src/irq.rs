//! Simulated interrupt controller.
//!
//! `uknetdev` queues can run in interrupt mode: the driver enables the
//! queue's interrupt line when it runs dry, and the device raises the line
//! when new work arrives (§3.1 of the paper). This module provides the
//! line-level mechanics: registration, masking, raising and dispatch.

use std::cell::RefCell;
use std::rc::Rc;

/// Number of interrupt lines our platforms expose.
pub const NLINES: usize = 64;

/// An interrupt handler. Returns `true` if it handled work.
pub type IrqHandler = Box<dyn Fn() -> bool>;

struct Line {
    handler: Option<IrqHandler>,
    enabled: bool,
    pending: bool,
    /// Statistics: how many times this line fired.
    fired: u64,
}

impl std::fmt::Debug for Line {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Line")
            .field("has_handler", &self.handler.is_some())
            .field("enabled", &self.enabled)
            .field("pending", &self.pending)
            .field("fired", &self.fired)
            .finish()
    }
}

/// The platform interrupt controller.
///
/// Cloning yields a handle to the same controller (devices and the boot
/// code share it).
#[derive(Debug, Clone)]
pub struct IrqController {
    lines: Rc<RefCell<Vec<Line>>>,
}

impl IrqController {
    /// Creates a controller with `n` lines, all masked and unclaimed.
    pub fn new(n: usize) -> Self {
        let lines = (0..n)
            .map(|_| Line {
                handler: None,
                enabled: false,
                pending: false,
                fired: 0,
            })
            .collect();
        IrqController {
            lines: Rc::new(RefCell::new(lines)),
        }
    }

    /// Registers `handler` on `line` and unmasks it.
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range or already claimed — double
    /// registration is a driver bug, as in Unikraft.
    pub fn register(&self, line: usize, handler: IrqHandler) {
        let mut lines = self.lines.borrow_mut();
        let l = &mut lines[line];
        assert!(l.handler.is_none(), "IRQ line {line} already claimed");
        l.handler = Some(handler);
        l.enabled = true;
    }

    /// Unmasks `line` (device may fire).
    pub fn enable(&self, line: usize) {
        self.lines.borrow_mut()[line].enabled = true;
    }

    /// Masks `line`; raises while masked are latched as pending.
    pub fn disable(&self, line: usize) {
        self.lines.borrow_mut()[line].enabled = false;
    }

    /// Whether `line` is currently unmasked.
    pub fn is_enabled(&self, line: usize) -> bool {
        self.lines.borrow()[line].enabled
    }

    /// Raises `line`. If unmasked and a handler is registered, the handler
    /// runs immediately (simulating injection); otherwise the interrupt is
    /// latched and delivered on the next [`IrqController::enable`] +
    /// [`IrqController::dispatch_pending`].
    ///
    /// Returns `true` if a handler ran.
    pub fn raise(&self, line: usize) -> bool {
        // Take the handler decision under the borrow, then run the handler
        // outside it so handlers can re-enter the controller.
        let run = {
            let mut lines = self.lines.borrow_mut();
            let l = &mut lines[line];
            if l.enabled && l.handler.is_some() {
                l.fired += 1;
                true
            } else {
                l.pending = true;
                false
            }
        };
        if run {
            self.run_handler(line);
        }
        run
    }

    /// Delivers any latched interrupts on unmasked lines.
    ///
    /// Returns the number of handlers that ran.
    pub fn dispatch_pending(&self) -> usize {
        let mut ran = 0;
        let n = self.lines.borrow().len();
        for line in 0..n {
            let fire = {
                let mut lines = self.lines.borrow_mut();
                let l = &mut lines[line];
                if l.pending && l.enabled && l.handler.is_some() {
                    l.pending = false;
                    l.fired += 1;
                    true
                } else {
                    false
                }
            };
            if fire {
                self.run_handler(line);
                ran += 1;
            }
        }
        ran
    }

    /// How many times `line` fired so far.
    pub fn fired_count(&self, line: usize) -> u64 {
        self.lines.borrow()[line].fired
    }

    fn run_handler(&self, line: usize) {
        // Move the handler out for the duration of the call so the
        // RefCell is not held across user code.
        let handler = self.lines.borrow_mut()[line].handler.take();
        if let Some(h) = handler {
            let _ = h();
            let mut lines = self.lines.borrow_mut();
            // Another registration while we ran would be a bug; restore.
            assert!(
                lines[line].handler.is_none(),
                "IRQ line {line} re-registered during dispatch"
            );
            lines[line].handler = Some(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn raise_runs_registered_handler() {
        let ctl = IrqController::new(4);
        let hits = Rc::new(Cell::new(0));
        let h = hits.clone();
        ctl.register(1, Box::new(move || {
            h.set(h.get() + 1);
            true
        }));
        assert!(ctl.raise(1));
        assert_eq!(hits.get(), 1);
        assert_eq!(ctl.fired_count(1), 1);
    }

    #[test]
    fn masked_line_latches_pending() {
        let ctl = IrqController::new(4);
        let hits = Rc::new(Cell::new(0));
        let h = hits.clone();
        ctl.register(0, Box::new(move || {
            h.set(h.get() + 1);
            true
        }));
        ctl.disable(0);
        assert!(!ctl.raise(0));
        assert_eq!(hits.get(), 0);
        ctl.enable(0);
        assert_eq!(ctl.dispatch_pending(), 1);
        assert_eq!(hits.get(), 1);
    }

    #[test]
    fn raise_without_handler_is_pending() {
        let ctl = IrqController::new(2);
        assert!(!ctl.raise(1));
        // Registering later and dispatching delivers it.
        let hits = Rc::new(Cell::new(0));
        let h = hits.clone();
        ctl.register(1, Box::new(move || {
            h.set(h.get() + 1);
            true
        }));
        assert_eq!(ctl.dispatch_pending(), 1);
        assert_eq!(hits.get(), 1);
    }

    #[test]
    #[should_panic(expected = "already claimed")]
    fn double_register_panics() {
        let ctl = IrqController::new(2);
        ctl.register(0, Box::new(|| true));
        ctl.register(0, Box::new(|| true));
    }

    #[test]
    fn handler_may_reenter_controller() {
        let ctl = IrqController::new(4);
        let c2 = ctl.clone();
        ctl.register(2, Box::new(move || {
            // Re-entering to mask ourselves must not deadlock.
            c2.disable(2);
            true
        }));
        assert!(ctl.raise(2));
        assert!(!ctl.is_enabled(2));
    }
}
