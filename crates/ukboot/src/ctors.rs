//! Constructor tables.
//!
//! Unikraft collects initialization functions in priority-ordered linker
//! tables (`uk_ctortab` / `uk_inittab`): platform constructors run before
//! library constructors, which run before application `main`. Micro-
//! libraries register their init functions at build time; `ukboot` walks
//! the table in priority order.

/// Priority classes, lowest runs first (mirrors `UK_INIT_CLASS_*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CtorPriority {
    /// Earliest platform setup (console, CPU features).
    Early = 0,
    /// Platform device discovery.
    Plat = 1,
    /// Core library init (allocator registration and the like).
    Lib = 2,
    /// Filesystem mounts.
    Rootfs = 3,
    /// Device/driver configuration.
    Sys = 4,
    /// Application-level constructors.
    App = 5,
}

/// A registered constructor.
struct Ctor {
    name: &'static str,
    prio: CtorPriority,
    seq: usize,
    f: Box<dyn FnMut() -> Result<(), ukplat::Errno>>,
}

impl std::fmt::Debug for Ctor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctor")
            .field("name", &self.name)
            .field("prio", &self.prio)
            .finish()
    }
}

/// The constructor table: registration plus ordered execution.
#[derive(Debug, Default)]
pub struct CtorTable {
    ctors: Vec<Ctor>,
    ran: Vec<&'static str>,
}

impl CtorTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `f` under `name` at `prio`. Registration order is
    /// preserved within a priority class (stable, like linker sections).
    pub fn register(
        &mut self,
        name: &'static str,
        prio: CtorPriority,
        f: impl FnMut() -> Result<(), ukplat::Errno> + 'static,
    ) {
        let seq = self.ctors.len();
        self.ctors.push(Ctor {
            name,
            prio,
            seq,
            f: Box::new(f),
        });
    }

    /// Runs all constructors in priority order. Stops at the first error,
    /// returning the failing constructor's name and errno.
    pub fn run_all(&mut self) -> Result<usize, (&'static str, ukplat::Errno)> {
        self.ctors.sort_by_key(|c| (c.prio, c.seq));
        let mut n = 0;
        for c in &mut self.ctors {
            match (c.f)() {
                Ok(()) => {
                    self.ran.push(c.name);
                    n += 1;
                }
                Err(e) => return Err((c.name, e)),
            }
        }
        Ok(n)
    }

    /// Names of constructors that ran, in execution order.
    pub fn ran(&self) -> &[&'static str] {
        &self.ran
    }

    /// Number of registered constructors.
    pub fn len(&self) -> usize {
        self.ctors.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.ctors.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ukplat::Errno;

    #[test]
    fn runs_in_priority_order() {
        let mut t = CtorTable::new();
        t.register("app", CtorPriority::App, || Ok(()));
        t.register("early", CtorPriority::Early, || Ok(()));
        t.register("lib", CtorPriority::Lib, || Ok(()));
        assert_eq!(t.run_all().unwrap(), 3);
        assert_eq!(t.ran(), &["early", "lib", "app"]);
    }

    #[test]
    fn stable_within_priority() {
        let mut t = CtorTable::new();
        t.register("lib-a", CtorPriority::Lib, || Ok(()));
        t.register("lib-b", CtorPriority::Lib, || Ok(()));
        t.run_all().unwrap();
        assert_eq!(t.ran(), &["lib-a", "lib-b"]);
    }

    #[test]
    fn failure_aborts_boot() {
        let mut t = CtorTable::new();
        t.register("ok", CtorPriority::Early, || Ok(()));
        t.register("bad", CtorPriority::Plat, || Err(Errno::NoMem));
        t.register("never", CtorPriority::App, || Ok(()));
        let (name, e) = t.run_all().unwrap_err();
        assert_eq!(name, "bad");
        assert_eq!(e, Errno::NoMem);
        assert_eq!(t.ran(), &["ok"]);
    }

    #[test]
    fn ctors_can_mutate_state() {
        let counter = std::rc::Rc::new(std::cell::Cell::new(0));
        let c = counter.clone();
        let mut t = CtorTable::new();
        t.register("count", CtorPriority::Lib, move || {
            c.set(c.get() + 1);
            Ok(())
        });
        t.run_all().unwrap();
        assert_eq!(counter.get(), 1);
    }
}
