//! Build-system micro-library (`ukbuild`).
//!
//! The paper's second main component (§3): "a Kconfig-based menu for
//! users to select which micro-libraries to use in an application build,
//! for them to select which platform(s) and CPU architectures to target…
//! The build system then compiles all of the micro-libraries, links them,
//! and produces one binary per selected platform."
//!
//! - [`registry`] — metadata for every Unikraft micro-library (layer,
//!   size contribution, dependencies);
//! - [`config`] — the menu: select libraries, resolve dependencies
//!   transitively, validate API choices;
//! - [`image`] — the link step: sum selected sizes, apply Dead Code
//!   Elimination and Link-Time Optimization passes (Figure 8);
//! - [`graph`] — dependency-graph extraction and DOT export (Figures 2
//!   and 3), plus the Linux kernel component graph dataset (Figure 1).

pub mod config;
pub mod graph;
pub mod image;
pub mod registry;

pub use config::BuildConfig;
pub use graph::{DepGraph, LINUX_COMPONENT_EDGES};
pub use image::{ImageReport, LinkPass};
pub use registry::{Layer, LibRegistry, MicroLib};
