//! The epoll-like interest list and wait loop.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use ukplat::{Errno, Result};
use uksched::{ThreadId, WaitQueue};

use crate::mask::EventMask;
use crate::source::{Pollable, ReadySource};

/// One delivered readiness event (`struct epoll_event`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The caller-chosen token (`epoll_data`), usually the fd.
    pub token: u64,
    /// The readiness bits that fired.
    pub events: EventMask,
}

/// What [`EventQueue::wait`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WaitOutcome {
    /// Events were ready; the thread keeps running.
    Ready(Vec<Event>),
    /// Nothing ready; the calling thread was parked on the queue's
    /// [`WaitQueue`] and must block until woken by a readiness edge.
    Parked,
    /// Nothing ready and the wait's deadline is due: `epoll_wait`'s
    /// "returned 0 events" outcome. Only produced by
    /// [`EventQueue::wait_until`].
    TimedOut,
}

/// Pre-registered `ukstats` handles for the event plane. Counters are
/// global (every queue aggregates into the same slots); registration
/// happens once per queue construction and dedups by name.
#[derive(Clone, Copy)]
struct EvCounters {
    /// `wait` calls (ready and parked alike).
    waits: ukstats::Counter,
    /// `wait` calls that found nothing ready and parked the caller.
    parks: ukstats::Counter,
    /// Threads released by readiness edges.
    wakeups: ukstats::Counter,
    /// Rising edges observed from watched sources.
    edges: ukstats::Counter,
    /// Timed waits that expired with nothing ready.
    timeouts: ukstats::Counter,
    /// `epoll_wait` latency: duration of the ready-scan inside `wait`.
    wait_ns: ukstats::Histogram,
    /// Park-to-wake latency: time between parking in `wait` and the
    /// readiness edge that released the queue's waiters.
    park_to_wake_ns: ukstats::Histogram,
}

impl EvCounters {
    fn register() -> Self {
        EvCounters {
            waits: ukstats::Counter::register("ukevent.waits"),
            parks: ukstats::Counter::register("ukevent.parks"),
            wakeups: ukstats::Counter::register("ukevent.wakeups"),
            edges: ukstats::Counter::register("ukevent.edges"),
            timeouts: ukstats::Counter::register("ukevent.timeouts"),
            wait_ns: ukstats::Histogram::register("ukevent.wait_ns"),
            park_to_wake_ns: ukstats::Histogram::register("ukevent.park_to_wake_ns"),
        }
    }
}

/// State shared between the queue and the sources watching it; the part
/// a readiness edge must reach without borrowing the whole queue.
pub(crate) struct QueueShared {
    /// Threads parked in `wait`.
    waiters: WaitQueue,
    /// Threads a readiness edge released; drained by `take_wakeups` and
    /// handed to the scheduler.
    wakeups: Vec<ThreadId>,
    /// Set when any watched source published an edge; cleared by the
    /// next ready-scan. Lets `wait` skip a full scan when idle.
    pending: bool,
    /// Total edges observed (for reports/benchmarks).
    edges_seen: u64,
    /// When the current parked spell began (set by `wait`, consumed by
    /// the next waking edge).
    park_started: Option<std::time::Instant>,
    /// Absolute deadlines (virtual-clock ns) for threads parked via
    /// [`EventQueue::wait_until`]; expired by `fire_deadlines`.
    deadlines: Vec<(ThreadId, u64)>,
    stats: EvCounters,
}

impl QueueShared {
    /// Called by a source on a rising edge.
    pub(crate) fn on_readiness(&mut self) {
        self.pending = true;
        self.edges_seen += 1;
        self.stats.edges.inc();
        let woken = self.waiters.wake_all();
        if !woken.is_empty() {
            // Readiness beat the timers: the woken threads' deadlines
            // are moot (re-armed on their next timed wait).
            self.deadlines.retain(|(t, _)| !woken.contains(t));
            self.stats.wakeups.add(woken.len() as u64);
            if let Some(parked_at) = self.park_started.take() {
                self.stats
                    .park_to_wake_ns
                    .record(parked_at.elapsed().as_nanos() as u64);
            }
        }
        self.wakeups.extend(woken);
    }
}

struct Interest {
    source: ReadySource,
    mask: EventMask,
    /// Last edge sequence delivered to an `EPOLLET` subscriber.
    last_seq: u64,
    /// `EPOLLONESHOT` fired; disarmed until `ctl_mod`.
    disarmed: bool,
}

/// An epoll instance: interest list, ready scan, parking wait.
pub struct EventQueue {
    shared: Rc<RefCell<QueueShared>>,
    /// Token → interest. BTreeMap gives deterministic delivery order.
    interest: BTreeMap<u64, Interest>,
    /// Events delivered over the queue's lifetime.
    delivered: u64,
    /// Scan cursor: the token after the last one delivered. Each
    /// ready-scan starts here so a full `max_events` batch of low
    /// tokens cannot starve higher ones (Linux rotates its ready list
    /// the same way).
    scan_from: u64,
    stats: EvCounters,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for EventQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("interest", &self.interest.len())
            .field("delivered", &self.delivered)
            .finish()
    }
}

impl EventQueue {
    /// Creates an empty queue (`epoll_create1`).
    pub fn new() -> Self {
        let stats = EvCounters::register();
        EventQueue {
            shared: Rc::new(RefCell::new(QueueShared {
                waiters: WaitQueue::new(),
                wakeups: Vec::new(),
                pending: false,
                edges_seen: 0,
                park_started: None,
                deadlines: Vec::new(),
                stats,
            })),
            interest: BTreeMap::new(),
            delivered: 0,
            scan_from: 0,
            stats,
        }
    }

    /// Adds `pollable` under `token` (`EPOLL_CTL_ADD`). Fails with
    /// `EEXIST` if the token is already present.
    pub fn ctl_add(&mut self, token: u64, pollable: &dyn Pollable, mask: EventMask) -> Result<()> {
        if self.interest.contains_key(&token) {
            return Err(Errno::Exist);
        }
        let source = pollable.ready_source();
        source.subscribe(&self.shared);
        // A source that is already ready must be delivered by the next
        // wait, even in edge mode (Linux does the same on ADD).
        let last_seq = source.edge_seq().saturating_sub(u64::from(
            !source.current().payload().is_empty(),
        ));
        if !source.current().intersects(mask.payload() | EventMask::ALWAYS) {
            // Nothing ready right now; nothing pending from this source.
        } else {
            self.shared.borrow_mut().pending = true;
        }
        self.interest.insert(
            token,
            Interest {
                source,
                mask,
                last_seq,
                disarmed: false,
            },
        );
        Ok(())
    }

    /// Changes the mask for `token` (`EPOLL_CTL_MOD`); re-arms a fired
    /// `EPOLLONESHOT` entry. Fails with `ENOENT` for unknown tokens.
    pub fn ctl_mod(&mut self, token: u64, mask: EventMask) -> Result<()> {
        let entry = self.interest.get_mut(&token).ok_or(Errno::NoEnt)?;
        entry.mask = mask;
        entry.disarmed = false;
        if entry
            .source
            .current()
            .intersects(mask.payload() | EventMask::ALWAYS)
        {
            self.shared.borrow_mut().pending = true;
        }
        Ok(())
    }

    /// Removes `token` (`EPOLL_CTL_DEL`). Fails with `ENOENT` if absent.
    pub fn ctl_del(&mut self, token: u64) -> Result<()> {
        let entry = self.interest.remove(&token).ok_or(Errno::NoEnt)?;
        // Another token may watch the same cell; only drop the queue's
        // subscription when the last such entry goes.
        let still_watched = self
            .interest
            .values()
            .any(|e| e.source.same_as(&entry.source));
        if !still_watched {
            entry.source.unsubscribe(&self.shared);
        }
        Ok(())
    }

    /// Whether `token` is registered.
    pub fn watches(&self, token: u64) -> bool {
        self.interest.contains_key(&token)
    }

    /// Number of interest-list entries.
    pub fn len(&self) -> usize {
        self.interest.len()
    }

    /// Whether the interest list is empty.
    pub fn is_empty(&self) -> bool {
        self.interest.is_empty()
    }

    /// Scans the interest list and returns up to `max_events` ready
    /// events without blocking (`epoll_wait` with timeout 0).
    ///
    /// Level-triggered entries report whenever their readiness
    /// intersects the mask; edge-triggered entries only report when the
    /// source's edge sequence advanced past the last delivery. `EPOLLERR`
    /// and `EPOLLHUP` are always reported, subscribed or not.
    pub fn poll_ready(&mut self, max_events: usize) -> Vec<Event> {
        self.shared.borrow_mut().pending = false;
        let mut out = Vec::new();
        // Rotated scan order: tokens >= cursor first, then the rest.
        let tokens: Vec<u64> = self
            .interest
            .range(self.scan_from..)
            .map(|(&t, _)| t)
            .chain(self.interest.range(..self.scan_from).map(|(&t, _)| t))
            .collect();
        for token in tokens {
            if out.len() >= max_events.max(1) {
                break;
            }
            let entry = self.interest.get_mut(&token).expect("token just listed");
            if entry.disarmed {
                continue;
            }
            let level = entry.source.current();
            let wanted = entry.mask.payload() | EventMask::ALWAYS;
            let fired = level & wanted;
            if fired.is_empty() {
                continue;
            }
            if entry.mask.contains(EventMask::ET) {
                let seq = entry.source.edge_seq();
                if seq <= entry.last_seq {
                    continue; // Edge already consumed.
                }
                entry.last_seq = seq;
            }
            if entry.mask.contains(EventMask::ONESHOT) {
                entry.disarmed = true;
            }
            out.push(Event {
                token,
                events: fired,
            });
        }
        if let Some(last) = out.last() {
            self.scan_from = last.token.wrapping_add(1);
        }
        self.delivered += out.len() as u64;
        out
    }

    /// `epoll_wait`: returns ready events, or parks `tid` on the queue's
    /// wait queue when nothing is ready. The caller's thread must then
    /// block ([`uksched::StepResult::Block`]); a readiness edge releases
    /// it through [`take_wakeups`](Self::take_wakeups).
    pub fn wait(&mut self, max_events: usize, tid: ThreadId) -> WaitOutcome {
        let scan_start = std::time::Instant::now();
        self.stats.waits.inc();
        let events = self.poll_ready(max_events);
        self.stats
            .wait_ns
            .record(scan_start.elapsed().as_nanos() as u64);
        if !events.is_empty() {
            return WaitOutcome::Ready(events);
        }
        self.stats.parks.inc();
        let mut shared = self.shared.borrow_mut();
        shared.park_started = Some(std::time::Instant::now());
        shared.waiters.wait(tid);
        // An untimed wait supersedes any stale deadline for this thread.
        shared.deadlines.retain(|(t, _)| *t != tid);
        WaitOutcome::Parked
    }

    /// `epoll_wait(timeout)`: like [`wait`](Self::wait), but the park
    /// carries an absolute virtual-clock deadline. A deadline already
    /// due returns [`WaitOutcome::TimedOut`] without parking (epoll's
    /// `timeout == 0` poll). Otherwise the caller blocks and whoever
    /// drives the clock — typically a timer-wheel slot armed at
    /// [`next_deadline`](Self::next_deadline) — expires the park with
    /// [`fire_deadlines`](Self::fire_deadlines); the rerun `wait_until`
    /// then observes the due deadline and reports the timeout.
    pub fn wait_until(
        &mut self,
        max_events: usize,
        tid: ThreadId,
        now_ns: u64,
        deadline_ns: u64,
    ) -> WaitOutcome {
        let scan_start = std::time::Instant::now();
        self.stats.waits.inc();
        let events = self.poll_ready(max_events);
        self.stats
            .wait_ns
            .record(scan_start.elapsed().as_nanos() as u64);
        if !events.is_empty() {
            return WaitOutcome::Ready(events);
        }
        if deadline_ns <= now_ns {
            self.stats.timeouts.inc();
            let mut shared = self.shared.borrow_mut();
            shared.deadlines.retain(|(t, _)| *t != tid);
            return WaitOutcome::TimedOut;
        }
        self.stats.parks.inc();
        let mut shared = self.shared.borrow_mut();
        shared.park_started = Some(std::time::Instant::now());
        shared.waiters.wait(tid);
        match shared.deadlines.iter_mut().find(|(t, _)| *t == tid) {
            Some(slot) => slot.1 = deadline_ns,
            None => shared.deadlines.push((tid, deadline_ns)),
        }
        WaitOutcome::Parked
    }

    /// Expires timed parks: every thread whose deadline is ≤ `now_ns`
    /// leaves the wait queue and joins the wakeup list (drained by
    /// [`take_wakeups`](Self::take_wakeups)). Returns how many expired.
    pub fn fire_deadlines(&mut self, now_ns: u64) -> usize {
        let mut shared = self.shared.borrow_mut();
        let mut fired = 0;
        let mut i = 0;
        while i < shared.deadlines.len() {
            if shared.deadlines[i].1 <= now_ns {
                let (tid, _) = shared.deadlines.swap_remove(i);
                if shared.waiters.remove(tid) {
                    shared.wakeups.push(tid);
                    fired += 1;
                }
            } else {
                i += 1;
            }
        }
        fired
    }

    /// Earliest deadline among parked timed waits — the instant a
    /// timer wheel should arm its wakeup for this queue.
    pub fn next_deadline(&self) -> Option<u64> {
        self.shared.borrow().deadlines.iter().map(|&(_, d)| d).min()
    }

    /// Threads released by readiness edges since the last call; hand
    /// them to `Scheduler::wake`.
    pub fn take_wakeups(&mut self) -> Vec<ThreadId> {
        std::mem::take(&mut self.shared.borrow_mut().wakeups)
    }

    /// Whether an edge arrived since the last ready-scan.
    pub fn has_pending(&self) -> bool {
        self.shared.borrow().pending
    }

    /// Parked thread count.
    pub fn waiter_count(&self) -> usize {
        self.shared.borrow().waiters.len()
    }

    /// Events delivered over the queue's lifetime.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Rising edges observed from watched sources.
    pub fn edges_seen(&self) -> u64 {
        self.shared.borrow().edges_seen
    }
}

impl Drop for EventQueue {
    fn drop(&mut self) {
        for entry in self.interest.values() {
            entry.source.unsubscribe(&self.shared);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ready_tokens(events: &[Event]) -> Vec<u64> {
        events.iter().map(|e| e.token).collect()
    }

    #[test]
    fn level_triggered_fires_until_cleared() {
        let mut q = EventQueue::new();
        let s = ReadySource::new();
        q.ctl_add(1, &s, EventMask::IN).unwrap();
        assert!(q.poll_ready(8).is_empty());
        s.raise(EventMask::IN);
        assert_eq!(ready_tokens(&q.poll_ready(8)), vec![1]);
        // Still set: level-triggered fires again.
        assert_eq!(ready_tokens(&q.poll_ready(8)), vec![1]);
        s.clear(EventMask::IN);
        assert!(q.poll_ready(8).is_empty());
    }

    #[test]
    fn edge_triggered_fires_once_per_edge() {
        let mut q = EventQueue::new();
        let s = ReadySource::new();
        q.ctl_add(1, &s, EventMask::IN | EventMask::ET).unwrap();
        s.raise(EventMask::IN);
        assert_eq!(q.poll_ready(8).len(), 1);
        assert!(q.poll_ready(8).is_empty(), "edge consumed");
        // No new edge while the level stays high.
        s.raise(EventMask::IN);
        assert!(q.poll_ready(8).is_empty());
        // Falling then rising is a fresh edge.
        s.clear(EventMask::IN);
        s.raise(EventMask::IN);
        assert_eq!(q.poll_ready(8).len(), 1);
    }

    #[test]
    fn oneshot_disarms_until_mod() {
        let mut q = EventQueue::new();
        let s = ReadySource::new();
        q.ctl_add(1, &s, EventMask::IN | EventMask::ONESHOT).unwrap();
        s.raise(EventMask::IN);
        assert_eq!(q.poll_ready(8).len(), 1);
        assert!(q.poll_ready(8).is_empty(), "disarmed");
        q.ctl_mod(1, EventMask::IN | EventMask::ONESHOT).unwrap();
        assert_eq!(q.poll_ready(8).len(), 1, "re-armed by MOD");
    }

    #[test]
    fn hup_and_err_report_even_unsubscribed() {
        let mut q = EventQueue::new();
        let s = ReadySource::new();
        q.ctl_add(1, &s, EventMask::IN).unwrap();
        s.raise(EventMask::HUP);
        let ev = q.poll_ready(8);
        assert_eq!(ev.len(), 1);
        assert!(ev[0].events.contains(EventMask::HUP));
    }

    #[test]
    fn ctl_errors_match_epoll() {
        let mut q = EventQueue::new();
        let s = ReadySource::new();
        q.ctl_add(1, &s, EventMask::IN).unwrap();
        assert_eq!(q.ctl_add(1, &s, EventMask::IN).unwrap_err(), Errno::Exist);
        assert_eq!(q.ctl_mod(2, EventMask::IN).unwrap_err(), Errno::NoEnt);
        assert_eq!(q.ctl_del(2).unwrap_err(), Errno::NoEnt);
        q.ctl_del(1).unwrap();
        assert!(!q.watches(1));
    }

    #[test]
    fn add_of_already_ready_source_is_delivered_in_et_mode() {
        let mut q = EventQueue::new();
        let s = ReadySource::new();
        s.raise(EventMask::IN);
        q.ctl_add(1, &s, EventMask::IN | EventMask::ET).unwrap();
        assert_eq!(q.poll_ready(8).len(), 1, "pre-existing readiness delivers");
    }

    #[test]
    fn wait_parks_and_edge_wakes() {
        let mut q = EventQueue::new();
        let s = ReadySource::new();
        q.ctl_add(1, &s, EventMask::IN).unwrap();
        let tid = ThreadId(7);
        assert_eq!(q.wait(8, tid), WaitOutcome::Parked);
        assert_eq!(q.waiter_count(), 1);
        assert!(q.take_wakeups().is_empty());
        s.raise(EventMask::IN);
        assert_eq!(q.take_wakeups(), vec![tid]);
        assert_eq!(q.waiter_count(), 0);
        match q.wait(8, tid) {
            WaitOutcome::Ready(ev) => assert_eq!(ev[0].token, 1),
            other => panic!("should be ready, got {other:?}"),
        }
    }

    #[test]
    fn scan_rotates_so_low_tokens_cannot_starve() {
        let mut q = EventQueue::new();
        let sources: Vec<ReadySource> = (0..5).map(|_| ReadySource::new()).collect();
        for (i, s) in sources.iter().enumerate() {
            q.ctl_add(i as u64, s, EventMask::IN).unwrap();
            s.raise(EventMask::IN);
        }
        // With everything persistently ready and max_events=2, repeated
        // scans must visit every token, not the lowest two forever.
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..5 {
            for ev in q.poll_ready(2) {
                seen.insert(ev.token);
            }
        }
        assert_eq!(seen.len(), 5, "rotation covers all tokens: {seen:?}");
    }

    #[test]
    fn max_events_caps_delivery() {
        let mut q = EventQueue::new();
        let sources: Vec<ReadySource> = (0..5).map(|_| ReadySource::new()).collect();
        for (i, s) in sources.iter().enumerate() {
            q.ctl_add(i as u64, s, EventMask::IN).unwrap();
            s.raise(EventMask::IN);
        }
        assert_eq!(q.poll_ready(3).len(), 3);
        assert_eq!(q.poll_ready(100).len(), 5);
    }

    #[test]
    fn ctl_del_keeps_subscription_for_sibling_token() {
        let mut q = EventQueue::new();
        let s = ReadySource::new();
        q.ctl_add(1, &s, EventMask::IN).unwrap();
        q.ctl_add(2, &s, EventMask::IN).unwrap();
        q.ctl_del(1).unwrap();
        // The remaining token must still produce wakeups for parked
        // waiters: the queue stays subscribed to the shared cell.
        let tid = ThreadId(3);
        assert_eq!(q.wait(8, tid), WaitOutcome::Parked);
        s.raise(EventMask::IN);
        assert_eq!(q.take_wakeups(), vec![tid]);
        match q.wait(8, tid) {
            WaitOutcome::Ready(ev) => assert_eq!(ev[0].token, 2),
            other => panic!("sibling token must deliver, got {other:?}"),
        }
        // Removing the last token drops the subscription for real.
        q.ctl_del(2).unwrap();
        s.clear(EventMask::IN);
        assert_eq!(q.wait(8, tid), WaitOutcome::Parked);
        s.raise(EventMask::IN);
        assert!(q.take_wakeups().is_empty(), "no interest, no wakeup");
    }

    #[test]
    fn timed_wait_expires_via_fire_deadlines() {
        let mut q = EventQueue::new();
        let s = ReadySource::new();
        q.ctl_add(1, &s, EventMask::IN).unwrap();
        let tid = ThreadId(9);
        // Nothing ready, future deadline: parks and records it.
        assert_eq!(q.wait_until(8, tid, 1_000, 5_000), WaitOutcome::Parked);
        assert_eq!(q.waiter_count(), 1);
        assert_eq!(q.next_deadline(), Some(5_000));
        // Clock short of the deadline: nothing fires.
        assert_eq!(q.fire_deadlines(4_999), 0);
        assert!(q.take_wakeups().is_empty());
        // Deadline reached: the parked thread becomes a wakeup, and
        // its rerun wait observes the timeout.
        assert_eq!(q.fire_deadlines(5_000), 1);
        assert_eq!(q.take_wakeups(), vec![tid]);
        assert_eq!(q.waiter_count(), 0);
        assert_eq!(q.next_deadline(), None);
        assert_eq!(q.wait_until(8, tid, 5_000, 5_000), WaitOutcome::TimedOut);
    }

    #[test]
    fn timed_wait_prefers_readiness_over_timeout() {
        let mut q = EventQueue::new();
        let s = ReadySource::new();
        q.ctl_add(1, &s, EventMask::IN).unwrap();
        let tid = ThreadId(4);
        assert_eq!(q.wait_until(8, tid, 0, 1_000), WaitOutcome::Parked);
        // The edge wins the race: wakes the thread and retires its
        // deadline so a later clock tick cannot double-wake it.
        s.raise(EventMask::IN);
        assert_eq!(q.take_wakeups(), vec![tid]);
        assert_eq!(q.next_deadline(), None);
        assert_eq!(q.fire_deadlines(1_000), 0);
        match q.wait_until(8, tid, 500, 1_000) {
            WaitOutcome::Ready(ev) => assert_eq!(ev[0].token, 1),
            other => panic!("expected events, got {other:?}"),
        }
        // An expired deadline with events ready still delivers them.
        match q.wait_until(8, tid, 2_000, 1_000) {
            WaitOutcome::Ready(ev) => assert_eq!(ev[0].token, 1),
            other => panic!("expected events, got {other:?}"),
        }
    }

    #[test]
    fn untimed_wait_clears_stale_deadline() {
        let mut q = EventQueue::new();
        let s = ReadySource::new();
        q.ctl_add(1, &s, EventMask::IN).unwrap();
        let tid = ThreadId(2);
        assert_eq!(q.wait_until(8, tid, 0, 700), WaitOutcome::Parked);
        // Rewaiting without a timeout supersedes the old deadline: a
        // later clock tick must not wake this park.
        assert_eq!(q.wait(8, tid), WaitOutcome::Parked);
        assert_eq!(q.next_deadline(), None);
        assert_eq!(q.fire_deadlines(u64::MAX), 0);
        assert_eq!(q.waiter_count(), 1, "still parked, untimed");
    }

    #[test]
    fn multiple_queues_watch_one_source() {
        let mut q1 = EventQueue::new();
        let mut q2 = EventQueue::new();
        let s = ReadySource::new();
        q1.ctl_add(1, &s, EventMask::IN).unwrap();
        q2.ctl_add(2, &s, EventMask::IN | EventMask::ET).unwrap();
        s.raise(EventMask::IN);
        assert_eq!(q1.poll_ready(8).len(), 1);
        assert_eq!(q2.poll_ready(8).len(), 1);
        assert_eq!(q1.poll_ready(8).len(), 1, "LT re-fires");
        assert!(q2.poll_ready(8).is_empty(), "ET consumed");
    }
}
