//! Property-based tests: the VFS against a reference model, SHFS
//! against a hash map, and 9P codec robustness.

use std::collections::HashMap;

use proptest::prelude::*;

use ukvfs::shfs::Shfs;
use ukvfs::vfscore::Vfs;
use ukvfs::{NinePHost, RamFs};

/// Random file operations applied both to the VFS (ramfs-backed) and to
/// a plain map model; contents must agree at every read.
#[derive(Debug, Clone)]
enum FsOp {
    Create { name: u8, data: Vec<u8> },
    Append { name: u8, data: Vec<u8> },
    Read { name: u8 },
    Unlink { name: u8 },
}

fn fs_op() -> impl Strategy<Value = FsOp> {
    prop_oneof![
        (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(name, data)| FsOp::Create { name: name % 8, data }),
        (any::<u8>(), proptest::collection::vec(any::<u8>(), 1..64))
            .prop_map(|(name, data)| FsOp::Append { name: name % 8, data }),
        any::<u8>().prop_map(|name| FsOp::Read { name: name % 8 }),
        any::<u8>().prop_map(|name| FsOp::Unlink { name: name % 8 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn vfs_matches_model(ops in proptest::collection::vec(fs_op(), 1..60)) {
        let mut vfs = Vfs::new();
        vfs.mount("/", Box::new(RamFs::new())).unwrap();
        let mut model: HashMap<String, Vec<u8>> = HashMap::new();

        for op in ops {
            match op {
                FsOp::Create { name, data } => {
                    let path = format!("/f{name}");
                    let fd = vfs.create(&path).unwrap();
                    vfs.write(fd, &data).unwrap();
                    vfs.close(fd).unwrap();
                    model.insert(path, data);
                }
                FsOp::Append { name, data } => {
                    let path = format!("/f{name}");
                    if let Some(m) = model.get_mut(&path) {
                        let fd = vfs.open(&path).unwrap();
                        let size = vfs.fsize(fd).unwrap();
                        vfs.lseek(fd, size).unwrap();
                        vfs.write(fd, &data).unwrap();
                        vfs.close(fd).unwrap();
                        m.extend_from_slice(&data);
                    } else {
                        prop_assert!(vfs.open(&path).is_err());
                    }
                }
                FsOp::Read { name } => {
                    let path = format!("/f{name}");
                    match model.get(&path) {
                        Some(expect) => {
                            let fd = vfs.open(&path).unwrap();
                            let got = vfs.read(fd, expect.len() + 16).unwrap();
                            vfs.close(fd).unwrap();
                            prop_assert_eq!(&got, expect);
                        }
                        None => prop_assert!(vfs.open(&path).is_err()),
                    }
                }
                FsOp::Unlink { name } => {
                    let path = format!("/f{name}");
                    if model.remove(&path).is_some() {
                        vfs.unlink(&path).unwrap();
                    } else {
                        prop_assert!(vfs.unlink(&path).is_err());
                    }
                }
            }
        }
        // Directory listing agrees with the model keys.
        let mut listed = vfs.readdir("/").unwrap();
        listed.sort();
        let mut expected: Vec<String> = model
            .keys()
            .map(|k| k.trim_start_matches('/').to_string())
            .collect();
        expected.sort();
        prop_assert_eq!(listed, expected);
        prop_assert_eq!(vfs.open_fds(), 0, "no descriptor leaks");
    }

    /// SHFS behaves like a map for arbitrary insert/open sequences even
    /// with heavy bucket collisions.
    #[test]
    fn shfs_matches_map(entries in proptest::collection::vec(
        (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..32)), 1..80)
    ) {
        let mut fs = Shfs::with_buckets(4); // Force collisions.
        let mut model: HashMap<String, Vec<u8>> = HashMap::new();
        for (name, data) in entries {
            let name = format!("obj-{}", name % 16);
            fs.insert(&name, data.clone());
            model.insert(name, data);
        }
        prop_assert_eq!(fs.len(), model.len());
        for (name, data) in &model {
            let h = fs.open(name).unwrap();
            prop_assert_eq!(fs.read(h, 0, data.len() + 8).unwrap(), &data[..]);
            prop_assert_eq!(fs.size(h).unwrap(), data.len());
        }
        prop_assert!(fs.open("never-inserted").is_err());
    }

    /// The 9P host never panics on arbitrary request bytes — it must
    /// reply (usually Rerror) or reject, not crash.
    #[test]
    fn ninep_host_tolerates_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let mut host = NinePHost::new(RamFs::new());
        // Correct the size prefix half the time so we exercise both the
        // framing check and the per-message parsers.
        let mut msg = bytes.clone();
        if msg.len() >= 4 {
            let fix = (msg[0] & 1) == 0;
            if fix {
                let sz = (msg.len() as u32).to_le_bytes();
                msg[..4].copy_from_slice(&sz);
            }
        }
        let reply = host.serve(&msg);
        prop_assert!(!reply.is_empty());
    }
}
