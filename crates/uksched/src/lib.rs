//! Scheduling micro-library (`uksched`).
//!
//! §3.3 of the paper: "scheduling in Unikraft is available but optional;
//! this enables building lightweight single-threaded unikernels or
//! run-to-completion unikernels, avoiding the jitter caused by a scheduler
//! within the guest". The platform provides only context switching and
//! timers ([`ukplat::lcpu`]); the *policy* lives here as interchangeable
//! micro-libraries:
//!
//! - [`coop::CoopScheduler`] — cooperative round-robin (`ukschedcoop`);
//! - [`preempt::PreemptScheduler`] — quantum-based preemptive scheduler;
//! - [`SchedPolicy::None`] — no scheduler at all: a single
//!   run-to-completion context, the configuration the paper's specialized
//!   VNF and UDP-server images use (§6.4).
//!
//! Threads are step-based state machines: the scheduler repeatedly invokes
//! the current thread's step function, which reports whether it yielded,
//! blocked, slept, kept running, or exited. This models the control flow
//! of real green threads without machine context switching; every switch
//! still pays the platform's context-switch cost on the virtual TSC.

pub mod coop;
pub mod preempt;
pub mod thread;
pub mod waitq;

pub use coop::CoopScheduler;
pub use preempt::PreemptScheduler;
pub use thread::{StepResult, Thread, ThreadId, ThreadState};
pub use waitq::WaitQueue;

use ukplat::Result;

/// Which scheduler micro-library a build selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedPolicy {
    /// No scheduler: single run-to-completion context.
    None,
    /// Cooperative round-robin.
    Coop,
    /// Preemptive, quantum-based.
    Preempt,
}

impl SchedPolicy {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SchedPolicy::None => "none (run-to-completion)",
            SchedPolicy::Coop => "ukschedcoop",
            SchedPolicy::Preempt => "ukschedpreempt",
        }
    }
}

/// The `uksched` API every scheduler implements.
pub trait Scheduler {
    /// Adds a thread to the run queue, returning its id.
    fn spawn(&mut self, thread: Thread) -> ThreadId;

    /// Wakes a blocked thread.
    fn wake(&mut self, id: ThreadId) -> Result<()>;

    /// Runs until every thread has exited or everything is blocked.
    /// Returns the number of thread steps executed.
    fn run_to_idle(&mut self) -> u64;

    /// Executes at most `n` thread steps; returns how many ran.
    fn run_steps(&mut self, n: u64) -> u64;

    /// Number of threads not yet exited.
    fn alive(&self) -> usize;

    /// Total context switches performed.
    fn context_switches(&self) -> u64;

    /// Scheduler name for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_names() {
        assert!(SchedPolicy::Coop.name().contains("coop"));
        assert!(SchedPolicy::None.name().contains("run-to-completion"));
        assert!(SchedPolicy::Preempt.name().contains("preempt"));
    }
}
