//! ARP: request/reply codec and the neighbour cache.

use std::collections::HashMap;

use ukplat::{Errno, Result};

use crate::{Ipv4Addr, Mac};

/// ARP packet length for Ethernet/IPv4.
pub const ARP_LEN: usize = 28;

/// ARP operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArpOp {
    /// Who-has.
    Request,
    /// Is-at.
    Reply,
}

/// A parsed ARP packet (Ethernet/IPv4 only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArpPacket {
    /// Operation.
    pub op: ArpOp,
    /// Sender hardware address.
    pub sha: Mac,
    /// Sender protocol address.
    pub spa: Ipv4Addr,
    /// Target hardware address.
    pub tha: Mac,
    /// Target protocol address.
    pub tpa: Ipv4Addr,
}

impl ArpPacket {
    /// Serializes to 28 bytes.
    pub fn encode(&self) -> [u8; ARP_LEN] {
        let mut b = [0u8; ARP_LEN];
        b[0..2].copy_from_slice(&1u16.to_be_bytes()); // HTYPE Ethernet
        b[2..4].copy_from_slice(&0x0800u16.to_be_bytes()); // PTYPE IPv4
        b[4] = 6; // HLEN
        b[5] = 4; // PLEN
        let op: u16 = match self.op {
            ArpOp::Request => 1,
            ArpOp::Reply => 2,
        };
        b[6..8].copy_from_slice(&op.to_be_bytes());
        b[8..14].copy_from_slice(&self.sha.0);
        b[14..18].copy_from_slice(&self.spa.octets());
        b[18..24].copy_from_slice(&self.tha.0);
        b[24..28].copy_from_slice(&self.tpa.octets());
        b
    }

    /// Parses an ARP packet.
    pub fn decode(data: &[u8]) -> Result<ArpPacket> {
        if data.len() < ARP_LEN {
            return Err(Errno::Inval);
        }
        let op = match u16::from_be_bytes([data[6], data[7]]) {
            1 => ArpOp::Request,
            2 => ArpOp::Reply,
            _ => return Err(Errno::ProtoNoSupport),
        };
        let mut sha = [0u8; 6];
        sha.copy_from_slice(&data[8..14]);
        let mut tha = [0u8; 6];
        tha.copy_from_slice(&data[18..24]);
        Ok(ArpPacket {
            op,
            sha: Mac(sha),
            spa: Ipv4Addr(u32::from_be_bytes([data[14], data[15], data[16], data[17]])),
            tha: Mac(tha),
            tpa: Ipv4Addr(u32::from_be_bytes([data[24], data[25], data[26], data[27]])),
        })
    }
}

/// The neighbour cache.
#[derive(Debug, Default)]
pub struct ArpCache {
    entries: HashMap<Ipv4Addr, Mac>,
    lookups: u64,
    misses: u64,
}

impl ArpCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Learns a mapping.
    pub fn insert(&mut self, ip: Ipv4Addr, mac: Mac) {
        self.entries.insert(ip, mac);
    }

    /// Resolves an address, counting hit/miss statistics.
    pub fn lookup(&mut self, ip: Ipv4Addr) -> Option<Mac> {
        self.lookups += 1;
        let r = self.entries.get(&ip).copied();
        if r.is_none() {
            self.misses += 1;
        }
        r
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_request() {
        let p = ArpPacket {
            op: ArpOp::Request,
            sha: Mac::node(1),
            spa: Ipv4Addr::new(10, 0, 0, 1),
            tha: Mac([0; 6]),
            tpa: Ipv4Addr::new(10, 0, 0, 2),
        };
        let enc = p.encode();
        assert_eq!(ArpPacket::decode(&enc).unwrap(), p);
    }

    #[test]
    fn short_packet_rejected() {
        assert_eq!(ArpPacket::decode(&[0; 10]).unwrap_err(), Errno::Inval);
    }

    #[test]
    fn cache_hit_miss_accounting() {
        let mut c = ArpCache::new();
        let ip = Ipv4Addr::new(10, 0, 0, 9);
        assert!(c.lookup(ip).is_none());
        c.insert(ip, Mac::node(9));
        assert_eq!(c.lookup(ip), Some(Mac::node(9)));
        assert_eq!(c.misses(), 1);
        assert_eq!(c.len(), 1);
    }
}
