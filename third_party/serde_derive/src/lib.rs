//! Offline stand-in for `serde_derive`: the derives expand to a marker
//! impl of the corresponding stub trait so `#[derive(Serialize)]` in the
//! workspace compiles without crates.io access.

use proc_macro::TokenStream;

/// Extracts the identifier the derive is attached to (the token right
/// after `struct`/`enum`/`union`) and the generics are ignored: the stub
/// traits are implemented for the type only when it has no generics,
/// which covers every use in this workspace.
fn derive_marker(input: TokenStream, trait_path: &str) -> TokenStream {
    let mut iter = input.into_iter();
    let mut name = None;
    while let Some(tok) = iter.next() {
        let s = tok.to_string();
        if s == "struct" || s == "enum" || s == "union" {
            if let Some(ident) = iter.next() {
                name = Some(ident.to_string());
            }
            break;
        }
    }
    match name {
        Some(n) => format!("impl {} for {} {{}}", trait_path, n)
            .parse()
            .unwrap(),
        None => TokenStream::new(),
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    derive_marker(input, "::serde::Serialize")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    derive_marker(input, "::serde::Deserialize")
}
