//! The stack proper: interface, demux, sockets.
//!
//! A [`NetStack`] owns a `uk_netdev` device and implements the socket path
//! of the paper's architecture (scenario ➁): frames are pulled with
//! `rx_burst`, decoded (Ethernet → ARP/IPv4 → UDP/TCP), demultiplexed to
//! sockets, and replies are encoded back into netbufs — taken from a
//! pre-allocated pool when `use_pools` is on (§5.3 enables memory pools in
//! lwIP for the throughput runs) — and pushed with `tx_burst`.

use std::collections::{HashMap, VecDeque};

use ukevent::{EventMask, ReadySource};
use uknetdev::dev::NetDev;
use uknetdev::netbuf::{Netbuf, NetbufPool};
use ukplat::{Errno, Result};

use crate::arp::{ArpCache, ArpOp, ArpPacket};
use crate::icmp::IcmpEcho;
use crate::eth::{EthHeader, EtherType, ETH_HDR_LEN};
use crate::ipv4::{IpProto, Ipv4Header, IPV4_HDR_LEN};
use crate::tcp::{Tcb, TcpHeader, TcpState};
use crate::udp::{UdpHeader, UDP_HDR_LEN};
use crate::{Endpoint, Ipv4Addr, Mac};

/// Interface configuration.
#[derive(Debug, Clone, Copy)]
pub struct StackConfig {
    /// Our MAC address.
    pub mac: Mac,
    /// Our IPv4 address.
    pub ip: Ipv4Addr,
    /// Whether TX buffers come from a pre-allocated pool.
    pub use_pools: bool,
    /// Pool size (buffers) when pooling.
    pub pool_size: usize,
}

impl StackConfig {
    /// Config for test node `n` (10.0.0.n).
    pub fn node(n: u8) -> Self {
        StackConfig {
            mac: Mac::node(n),
            ip: Ipv4Addr::new(10, 0, 0, n),
            use_pools: true,
            pool_size: 512,
        }
    }
}

/// Handle to a socket or connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SocketHandle(pub usize);

struct UdpSocket {
    port: u16,
    rx: VecDeque<(Endpoint, Vec<u8>)>,
    /// Monotonic count of datagrams ever enqueued (readiness progress).
    rx_total: u64,
}

struct TcpConn {
    tcb: Tcb,
    remote: Endpoint,
}

/// A readiness cell plus the last progress value published through it.
struct SourceEntry {
    src: ReadySource,
    progress: u64,
}

struct TcpListener {
    port: u16,
    backlog: VecDeque<SocketHandle>,
    /// Monotonic count of connections ever queued (readiness progress).
    accepted_total: u64,
}

/// Stack statistics.
#[derive(Debug, Default, Clone, Copy)]
pub struct StackStats {
    /// Frames received and parsed.
    pub rx_frames: u64,
    /// Frames transmitted.
    pub tx_frames: u64,
    /// Frames dropped (parse errors, unknown ports).
    pub dropped: u64,
}

/// The network stack.
pub struct NetStack {
    config: StackConfig,
    dev: Box<dyn NetDev>,
    arp: ArpCache,
    pool: Option<NetbufPool>,
    udp_socks: HashMap<usize, UdpSocket>,
    udp_ports: HashMap<u16, usize>,
    conns: HashMap<usize, TcpConn>,
    /// (local port, remote endpoint) → conn handle.
    tcp_demux: HashMap<(u16, Endpoint), usize>,
    listeners: HashMap<u16, TcpListener>,
    next_handle: usize,
    next_ephemeral: u16,
    iss: u32,
    stats: StackStats,
    /// Packets waiting for ARP resolution, keyed by next-hop IP.
    arp_pending: HashMap<Ipv4Addr, Vec<Vec<u8>>>,
    /// Echo replies received: (peer, ident, seq).
    ping_replies: Vec<(Ipv4Addr, u16, u16)>,
    /// Readiness cells handed out to event queues, keyed by handle,
    /// with the progress counter last published through each. Synced
    /// after every socket-mutating operation and each `pump`.
    sources: HashMap<usize, SourceEntry>,
}

impl std::fmt::Debug for NetStack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetStack")
            .field("ip", &self.config.ip)
            .field("conns", &self.conns.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl NetStack {
    /// Creates a stack over a configured device.
    pub fn new(config: StackConfig, dev: Box<dyn NetDev>) -> Self {
        let pool = config
            .use_pools
            .then(|| NetbufPool::new(config.pool_size, 2048, ETH_HDR_LEN + IPV4_HDR_LEN + 64));
        NetStack {
            config,
            dev,
            arp: ArpCache::new(),
            pool,
            udp_socks: HashMap::new(),
            udp_ports: HashMap::new(),
            conns: HashMap::new(),
            tcp_demux: HashMap::new(),
            listeners: HashMap::new(),
            next_handle: 1,
            next_ephemeral: 49152,
            iss: 1,
            stats: StackStats::default(),
            arp_pending: HashMap::new(),
            ping_replies: Vec::new(),
            sources: HashMap::new(),
        }
    }

    /// Our address.
    pub fn ip(&self) -> Ipv4Addr {
        self.config.ip
    }

    /// Our MAC.
    pub fn mac(&self) -> Mac {
        self.config.mac
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> StackStats {
        self.stats
    }

    fn handle(&mut self) -> usize {
        // Bit 16 encodes listener handles; plain handles must never
        // carry it, so hop over that range when the counter reaches it.
        if self.next_handle & 0x1_0000 != 0 {
            self.next_handle += 0x1_0000;
        }
        let h = self.next_handle;
        self.next_handle += 1;
        h
    }

    // --- Readiness (ukevent integration) ------------------------------

    /// Computes the current level-triggered readiness of a socket:
    ///
    /// - listeners: `EPOLLIN` while the accept queue is non-empty;
    /// - UDP sockets: `EPOLLIN` while datagrams are queued, `EPOLLOUT`
    ///   always (sends never block);
    /// - TCP connections: `EPOLLIN` on buffered rx data, `EPOLLRDHUP`
    ///   (plus `EPOLLIN`) once the peer's FIN arrived, `EPOLLOUT` while
    ///   the send buffer has room, `EPOLLHUP` when fully closed;
    /// - unknown/closed handles: `EPOLLHUP`.
    pub fn readiness(&self, sock: SocketHandle) -> EventMask {
        if sock.0 & 0x1_0000 != 0 {
            let port = (sock.0 & 0xffff) as u16;
            return match self.listeners.get(&port) {
                Some(l) if !l.backlog.is_empty() => EventMask::IN,
                Some(_) => EventMask::EMPTY,
                None => EventMask::HUP,
            };
        }
        if let Some(u) = self.udp_socks.get(&sock.0) {
            let mut m = EventMask::OUT;
            if !u.rx.is_empty() {
                m |= EventMask::IN;
            }
            return m;
        }
        if let Some(c) = self.conns.get(&sock.0) {
            let mut m = EventMask::EMPTY;
            if c.tcb.readable() > 0 {
                m |= EventMask::IN;
            }
            if c.tcb.peer_fin_seen() {
                m |= EventMask::IN | EventMask::RDHUP;
            }
            if c.tcb.send_capacity() > 0 {
                m |= EventMask::OUT;
            }
            if c.tcb.state == TcpState::Closed {
                m |= EventMask::HUP;
            }
            return m;
        }
        EventMask::HUP
    }

    /// Returns the shared readiness cell for `sock`, creating it on
    /// first use. Event queues register this cell (it implements
    /// [`ukevent::Pollable`]); the stack publishes every state
    /// transition — accept-queue non-empty, rx data, tx window opening,
    /// FIN — through it as edges.
    pub fn ready_source(&mut self, sock: SocketHandle) -> ReadySource {
        let level = self.readiness(sock);
        let progress = self.rx_progress(sock);
        let entry = self.sources.entry(sock.0).or_insert_with(|| SourceEntry {
            src: ReadySource::new(),
            progress,
        });
        entry.progress = progress;
        let src = entry.src.clone();
        src.set_level(level);
        src
    }

    /// Monotonic "input happened" counter for a socket: bytes ingested
    /// on a connection, datagrams on a UDP socket, connections queued
    /// on a listener. Lets the readiness sync distinguish *new* input
    /// from *pending* input, which is what re-triggers `EPOLLET`
    /// watchers while the readable level is already high.
    fn rx_progress(&self, sock: SocketHandle) -> u64 {
        if sock.0 & 0x1_0000 != 0 {
            return self
                .listeners
                .get(&((sock.0 & 0xffff) as u16))
                .map(|l| l.accepted_total)
                .unwrap_or(0);
        }
        if let Some(u) = self.udp_socks.get(&sock.0) {
            return u.rx_total;
        }
        self.conns
            .get(&sock.0)
            .map(|c| c.tcb.rx_total())
            .unwrap_or(0)
    }

    /// Number of live readiness cells the stack is publishing to (for
    /// tests and reports; defunct sockets' cells are pruned).
    pub fn watched_source_count(&self) -> usize {
        self.sources.len()
    }

    /// Whether the socket behind a handle is gone for good: a removed
    /// listener/UDP socket, or a fully closed connection with no
    /// residual readable data. Its readiness can never change again.
    fn socket_defunct(&self, sock: SocketHandle) -> bool {
        if sock.0 & 0x1_0000 != 0 {
            return !self.listeners.contains_key(&((sock.0 & 0xffff) as u16));
        }
        if self.udp_socks.contains_key(&sock.0) {
            return false;
        }
        match self.conns.get(&sock.0) {
            Some(c) => c.tcb.state == TcpState::Closed && c.tcb.readable() == 0,
            None => true,
        }
    }

    /// Publishes readiness for one watched socket (the one an operation
    /// just touched), dropping its cell when the socket is defunct.
    /// Per-socket operations use this so an event-loop turn stays O(N)
    /// overall; the full sweep below runs only from `pump`, where any
    /// number of sockets may have changed.
    fn sync_one(&mut self, key: usize) {
        if !self.sources.contains_key(&key) {
            return;
        }
        let level = self.readiness(SocketHandle(key));
        let progress = self.rx_progress(SocketHandle(key));
        let entry = self.sources.get_mut(&key).expect("checked above");
        let had_in = entry.src.current().contains(EventMask::IN);
        let new_input = progress > entry.progress;
        entry.progress = progress;
        let src = entry.src.clone();
        src.set_level(level);
        // New input while already readable: no level transition, but
        // Linux re-triggers EPOLLET consumers — pulse the edge counter.
        if new_input && had_in && level.contains(EventMask::IN) {
            src.pulse();
        }
        if self.socket_defunct(SocketHandle(key)) {
            self.sources.remove(&key);
        }
    }

    /// Recomputes and publishes readiness for every socket an event
    /// queue is watching. The `ReadySource` cells detect rising edges
    /// themselves, so calling this after every mutation is idempotent.
    /// Sources for defunct sockets get a final `EPOLLHUP` level and are
    /// dropped, bounding the table to live sockets.
    fn sync_readiness(&mut self) {
        if self.sources.is_empty() {
            return;
        }
        let keys: Vec<usize> = self.sources.keys().copied().collect();
        for key in keys {
            self.sync_one(key);
        }
    }

    // --- UDP ----------------------------------------------------------

    /// Binds a UDP socket to `port`.
    pub fn udp_bind(&mut self, port: u16) -> Result<SocketHandle> {
        if self.udp_ports.contains_key(&port) {
            return Err(Errno::AddrInUse);
        }
        let h = self.handle();
        self.udp_socks.insert(
            h,
            UdpSocket {
                port,
                rx: VecDeque::new(),
                rx_total: 0,
            },
        );
        self.udp_ports.insert(port, h);
        Ok(SocketHandle(h))
    }

    /// Sends a datagram.
    pub fn udp_send_to(&mut self, sock: SocketHandle, data: &[u8], to: Endpoint) -> Result<()> {
        let src_port = self
            .udp_socks
            .get(&sock.0)
            .ok_or(Errno::BadF)?
            .port;
        let ip = Ipv4Header {
            src: self.config.ip,
            dst: to.addr,
            proto: IpProto::Udp,
            payload_len: UDP_HDR_LEN + data.len(),
            ttl: 64,
        };
        let udp = UdpHeader {
            src_port,
            dst_port: to.port,
        };
        let dgram = udp.encode(&ip, data);
        self.send_ipv4(ip, &dgram)
    }

    /// Receives a datagram, if one is queued.
    pub fn udp_recv_from(&mut self, sock: SocketHandle) -> Option<(Endpoint, Vec<u8>)> {
        let r = self.udp_socks.get_mut(&sock.0)?.rx.pop_front();
        self.sync_one(sock.0);
        r
    }

    // --- TCP ----------------------------------------------------------

    /// Starts listening on `port`.
    pub fn tcp_listen(&mut self, port: u16) -> Result<SocketHandle> {
        if self.listeners.contains_key(&port) {
            return Err(Errno::AddrInUse);
        }
        self.listeners.insert(
            port,
            TcpListener {
                port,
                backlog: VecDeque::new(),
                accepted_total: 0,
            },
        );
        Ok(SocketHandle(port as usize | 0x1_0000))
    }

    /// Accepts a pending connection, if any.
    pub fn tcp_accept(&mut self, listener: SocketHandle) -> Option<SocketHandle> {
        let port = (listener.0 & 0xffff) as u16;
        let r = self.listeners.get_mut(&port)?.backlog.pop_front();
        self.sync_one(listener.0);
        r
    }

    /// Starts an active connection; completes after network pumping.
    pub fn tcp_connect(&mut self, to: Endpoint) -> Result<SocketHandle> {
        let local_port = self.next_ephemeral;
        self.next_ephemeral = self.next_ephemeral.checked_add(1).unwrap_or(49152);
        self.iss = self.iss.wrapping_add(64_000);
        let tcb = Tcb::connect(local_port, to.port, self.iss);
        let h = self.handle();
        self.conns.insert(h, TcpConn { tcb, remote: to });
        self.tcp_demux.insert((local_port, to), h);
        self.flush_tcp()?;
        Ok(SocketHandle(h))
    }

    /// Connection state.
    pub fn tcp_state(&self, conn: SocketHandle) -> Option<TcpState> {
        self.conns.get(&conn.0).map(|c| c.tcb.state)
    }

    /// Queues data on a connection, returning the bytes accepted — a
    /// partial write when the send buffer is short on space (`EAGAIN`
    /// when it is full because the peer's window stays closed).
    pub fn tcp_send(&mut self, conn: SocketHandle, data: &[u8]) -> Result<usize> {
        let c = self.conns.get_mut(&conn.0).ok_or(Errno::BadF)?;
        let accepted = c.tcb.app_send(data)?;
        self.flush_tcp()?;
        self.sync_one(conn.0);
        Ok(accepted)
    }

    /// Reads up to `max` bytes from a connection. May emit a
    /// window-update ACK when a previously-zero receive window reopens.
    pub fn tcp_recv(&mut self, conn: SocketHandle, max: usize) -> Result<Vec<u8>> {
        let c = self.conns.get_mut(&conn.0).ok_or(Errno::BadF)?;
        let data = c.tcb.app_recv(max);
        self.flush_tcp()?;
        self.sync_one(conn.0);
        Ok(data)
    }

    /// Free send-buffer space on a connection (0 for closed handles).
    pub fn tcp_send_capacity(&self, conn: SocketHandle) -> usize {
        self.conns
            .get(&conn.0)
            .map(|c| c.tcb.send_capacity())
            .unwrap_or(0)
    }

    /// Whether the peer's advertised receive window admits no more data.
    pub fn tcp_window_closed(&self, conn: SocketHandle) -> bool {
        self.conns
            .get(&conn.0)
            .map(|c| c.tcb.window_closed())
            .unwrap_or(true)
    }

    /// Bytes ready to read.
    pub fn tcp_readable(&self, conn: SocketHandle) -> usize {
        self.conns.get(&conn.0).map(|c| c.tcb.readable()).unwrap_or(0)
    }

    /// Whether the peer closed (EOF).
    pub fn tcp_peer_closed(&self, conn: SocketHandle) -> bool {
        self.conns
            .get(&conn.0)
            .map(|c| c.tcb.peer_closed())
            .unwrap_or(true)
    }

    /// Starts an orderly close.
    pub fn tcp_close(&mut self, conn: SocketHandle) -> Result<()> {
        let c = self.conns.get_mut(&conn.0).ok_or(Errno::BadF)?;
        c.tcb.app_close();
        let r = self.flush_tcp();
        self.sync_one(conn.0);
        r
    }

    // --- Data path ----------------------------------------------------

    /// Takes a TX buffer (pool or heap — the application's choice, §3.1).
    fn take_buf(&mut self) -> Netbuf {
        match self.pool.as_mut().and_then(|p| p.take()) {
            Some(nb) => nb,
            None => Netbuf::alloc(2048, ETH_HDR_LEN + IPV4_HDR_LEN + 64),
        }
    }

    fn send_frame(&mut self, dst: Mac, ethertype: EtherType, payload: &[u8]) -> Result<()> {
        let eth = EthHeader {
            dst,
            src: self.config.mac,
            ethertype,
        };
        let mut frame = Vec::with_capacity(ETH_HDR_LEN + payload.len());
        frame.extend_from_slice(&eth.encode());
        frame.extend_from_slice(payload);
        let mut nb = self.take_buf();
        nb.reset(0);
        nb.set_payload(&frame);
        let mut batch = vec![nb];
        self.dev.tx_burst(0, &mut batch)?;
        self.stats.tx_frames += 1;
        Ok(())
    }

    fn send_ipv4(&mut self, ip: Ipv4Header, transport: &[u8]) -> Result<()> {
        let mut packet = Vec::with_capacity(IPV4_HDR_LEN + transport.len());
        packet.extend_from_slice(&ip.encode());
        packet.extend_from_slice(transport);
        match self.arp.lookup(ip.dst) {
            Some(mac) => self.send_frame(mac, EtherType::Ipv4, &packet),
            None => {
                // Park the packet and ask who-has.
                self.arp_pending.entry(ip.dst).or_default().push(packet);
                let req = ArpPacket {
                    op: ArpOp::Request,
                    sha: self.config.mac,
                    spa: self.config.ip,
                    tha: Mac([0; 6]),
                    tpa: ip.dst,
                };
                self.send_frame(Mac::BROADCAST, EtherType::Arp, &req.encode())
            }
        }
    }

    /// Emits all pending TCP output.
    fn flush_tcp(&mut self) -> Result<()> {
        let mut to_send = Vec::new();
        for c in self.conns.values_mut() {
            let remote = c.remote;
            for seg in c.tcb.poll_output() {
                to_send.push((remote, seg));
            }
        }
        for (remote, seg) in to_send {
            let ip = Ipv4Header {
                src: self.config.ip,
                dst: remote.addr,
                proto: IpProto::Tcp,
                payload_len: crate::tcp::TCP_HDR_LEN + seg.payload.len(),
                ttl: 64,
            };
            let bytes = seg.header.encode(&ip, &seg.payload);
            self.send_ipv4(ip, &bytes)?;
        }
        Ok(())
    }

    /// Processes received frames and flushes replies. Returns the number
    /// of frames handled.
    pub fn pump(&mut self) -> usize {
        let mut handled = 0;
        loop {
            let mut frames = Vec::new();
            let st = match self.dev.rx_burst(0, &mut frames, 32) {
                Ok(st) => st,
                Err(_) => break,
            };
            for nb in &frames {
                if self.handle_frame(nb.payload()).is_ok() {
                    handled += 1;
                } else {
                    self.stats.dropped += 1;
                }
            }
            // Return RX buffers to the pool.
            if let Some(pool) = self.pool.as_mut() {
                for nb in frames {
                    if nb.pool_slot().is_some() {
                        pool.give_back(nb);
                    }
                }
            }
            if st.received == 0 && !st.more {
                break;
            }
        }
        let _ = self.flush_tcp();
        self.sync_readiness();
        handled
    }

    /// Collects transmitted frames (for the wire/hub), recycling the
    /// underlying buffers into the pool.
    pub fn harvest_tx_frames(&mut self) -> Vec<Vec<u8>> {
        let mut done = Vec::new();
        let _ = self.dev.reclaim_tx(0, &mut done);
        let mut frames = Vec::with_capacity(done.len());
        for nb in done {
            frames.push(nb.payload().to_vec());
            if nb.pool_slot().is_some() {
                if let Some(pool) = self.pool.as_mut() {
                    pool.give_back(nb);
                }
            }
        }
        frames
    }

    /// Injects frames into this stack's device RX ring (the wire side).
    pub fn deliver_frames(&mut self, frames: Vec<Netbuf>) {
        let _ = self.dev.inject_rx(0, frames);
    }

    fn handle_frame(&mut self, frame: &[u8]) -> Result<()> {
        self.stats.rx_frames += 1;
        let (eth, payload) = EthHeader::decode(frame)?;
        if eth.dst != self.config.mac && eth.dst != Mac::BROADCAST {
            return Err(Errno::Inval);
        }
        match eth.ethertype {
            EtherType::Arp => self.handle_arp(payload),
            EtherType::Ipv4 => self.handle_ipv4(payload),
        }
    }

    fn handle_arp(&mut self, data: &[u8]) -> Result<()> {
        let arp = ArpPacket::decode(data)?;
        self.arp.insert(arp.spa, arp.sha);
        // Release packets that were waiting on this mapping.
        if let Some(pending) = self.arp_pending.remove(&arp.spa) {
            for packet in pending {
                self.send_frame(arp.sha, EtherType::Ipv4, &packet)?;
            }
        }
        if arp.op == ArpOp::Request && arp.tpa == self.config.ip {
            let reply = ArpPacket {
                op: ArpOp::Reply,
                sha: self.config.mac,
                spa: self.config.ip,
                tha: arp.sha,
                tpa: arp.spa,
            };
            self.send_frame(arp.sha, EtherType::Arp, &reply.encode())?;
        }
        Ok(())
    }

    fn handle_ipv4(&mut self, data: &[u8]) -> Result<()> {
        let (ip, payload) = Ipv4Header::decode(data)?;
        if ip.dst != self.config.ip {
            return Err(Errno::Inval);
        }
        match ip.proto {
            IpProto::Udp => self.handle_udp(&ip, payload),
            IpProto::Tcp => self.handle_tcp(&ip, payload),
            IpProto::Icmp => self.handle_icmp(&ip, payload),
        }
    }

    fn handle_icmp(&mut self, ip: &Ipv4Header, data: &[u8]) -> Result<()> {
        let echo = IcmpEcho::decode(data)?;
        if echo.request {
            // Answer pings like lwIP does.
            let reply = echo.reply().encode();
            let hdr = Ipv4Header {
                src: self.config.ip,
                dst: ip.src,
                proto: IpProto::Icmp,
                payload_len: reply.len(),
                ttl: 64,
            };
            self.send_ipv4(hdr, &reply)
        } else {
            self.ping_replies.push((ip.src, echo.ident, echo.seq));
            Ok(())
        }
    }

    /// Sends an ICMP echo request to `dst`.
    pub fn ping(&mut self, dst: Ipv4Addr, ident: u16, seq: u16) -> Result<()> {
        let echo = IcmpEcho {
            request: true,
            ident,
            seq,
            payload: b"unikraft-rs ping".to_vec(),
        }
        .encode();
        let hdr = Ipv4Header {
            src: self.config.ip,
            dst,
            proto: IpProto::Icmp,
            payload_len: echo.len(),
            ttl: 64,
        };
        self.send_ipv4(hdr, &echo)
    }

    /// Drains echo replies received so far: (peer, ident, seq).
    pub fn ping_replies(&mut self) -> Vec<(Ipv4Addr, u16, u16)> {
        std::mem::take(&mut self.ping_replies)
    }

    fn handle_udp(&mut self, ip: &Ipv4Header, dgram: &[u8]) -> Result<()> {
        let (udp, payload) = UdpHeader::decode(ip, dgram)?;
        let h = *self.udp_ports.get(&udp.dst_port).ok_or(Errno::ConnRefused)?;
        let sock = self.udp_socks.get_mut(&h).ok_or(Errno::BadF)?;
        sock.rx.push_back((
            Endpoint::new(ip.src, udp.src_port),
            payload.to_vec(),
        ));
        sock.rx_total += 1;
        Ok(())
    }

    fn handle_tcp(&mut self, ip: &Ipv4Header, seg: &[u8]) -> Result<()> {
        let (tcp, payload) = TcpHeader::decode(ip, seg)?;
        let remote = Endpoint::new(ip.src, tcp.src_port);
        let key = (tcp.dst_port, remote);
        if let Some(&h) = self.tcp_demux.get(&key) {
            if let Some(c) = self.conns.get_mut(&h) {
                c.tcb.on_segment(&tcp, payload);
                return Ok(());
            }
        }
        // No connection: a SYN to a listener spawns one.
        if tcp.flags.syn && !tcp.flags.ack {
            if let Some(l) = self.listeners.get_mut(&tcp.dst_port) {
                let port = l.port;
                let mut tcb = Tcb::listen(port);
                self.iss = self.iss.wrapping_add(64_000);
                tcb.on_segment(&tcp, payload);
                let h = self.handle();
                self.conns.insert(h, TcpConn { tcb, remote });
                self.tcp_demux.insert(key, h);
                let l = self
                    .listeners
                    .get_mut(&tcp.dst_port)
                    .expect("listener exists");
                l.backlog.push_back(SocketHandle(h));
                l.accepted_total += 1;
                return Ok(());
            }
        }
        Err(Errno::ConnRefused)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uknetdev::backend::VhostKind;
    use uknetdev::dev::NetDevConf;
    use uknetdev::VirtioNet;
    use ukplat::time::Tsc;

    fn stack(n: u8) -> NetStack {
        let tsc = Tsc::new(3_600_000_000);
        let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
        dev.configure(NetDevConf::default()).unwrap();
        NetStack::new(StackConfig::node(n), Box::new(dev))
    }

    #[test]
    fn udp_bind_conflicts_detected() {
        let mut s = stack(1);
        s.udp_bind(5000).unwrap();
        assert_eq!(s.udp_bind(5000).unwrap_err(), Errno::AddrInUse);
    }

    #[test]
    fn udp_send_without_arp_parks_and_requests() {
        let mut s = stack(1);
        let sock = s.udp_bind(5000).unwrap();
        s.udp_send_to(sock, b"ping", Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 7))
            .unwrap();
        // One broadcast ARP request must have left the stack.
        assert_eq!(s.stats().tx_frames, 1);
        assert_eq!(s.arp_pending.len(), 1);
    }

    #[test]
    fn tcp_listen_twice_fails() {
        let mut s = stack(1);
        s.tcp_listen(80).unwrap();
        assert_eq!(s.tcp_listen(80).unwrap_err(), Errno::AddrInUse);
    }

    #[test]
    fn recv_on_bad_handle_errors() {
        let mut s = stack(1);
        assert_eq!(s.tcp_recv(SocketHandle(99), 10).unwrap_err(), Errno::BadF);
    }

    #[test]
    fn plain_handles_skip_listener_bit_range() {
        let mut s = stack(1);
        s.next_handle = 0x1_0000;
        let h = s.handle();
        assert_eq!(h & 0x1_0000, 0, "bit 16 is reserved for listeners");
        assert_eq!(h, 0x2_0000);
        assert_eq!(s.handle(), 0x2_0001);
    }

    #[test]
    fn source_for_unknown_handle_reports_hup_and_is_pruned() {
        let mut s = stack(1);
        let src = s.ready_source(SocketHandle(4242));
        assert!(src.current().contains(EventMask::HUP));
        let sock = s.udp_bind(9000).unwrap();
        let _live = s.ready_source(sock);
        assert_eq!(s.watched_source_count(), 2);
        // Per-socket ops only sync their own cell; the full sweep in
        // `pump` prunes defunct ones.
        s.pump();
        assert_eq!(s.watched_source_count(), 1, "only the live socket stays");
    }
}
