//! A hand-rolled Rust lexer — just enough tokenization to lint safely.
//!
//! The linter's one hard requirement is that it must never mistake the
//! *text* of a string literal or comment for code (`"unwrap()"` inside
//! a doc example, `// calls panic!` in prose), and conversely must
//! never let a string or comment swallow real code. Everything the
//! lint passes consume — identifiers, punctuation, comment text with
//! line numbers — falls out of walking the source once with the full
//! set of Rust's literal forms handled:
//!
//! - line comments (`//`, `///`, `//!`) and **nested** block comments;
//! - string literals with escapes, including multi-line strings;
//! - raw strings `r"…"` / `r#"…"#` (any hash depth, no escapes),
//!   byte/C-string prefixes (`b"`, `br#"`, `c"`, `cr#"`);
//! - raw identifiers `r#ident`;
//! - char literals vs lifetime ticks (`'a'` vs `'a`), byte chars
//!   `b'x'`, and escape forms (`'\''`, `'\u{1F600}'`);
//! - numeric literals with type suffixes (enough to not desync).
//!
//! No `syn`, no dependencies: the workspace builds offline and the
//! linter must be buildable before anything else in the tree.

/// One lexed token. Only identifiers carry their text — the lint
/// passes match identifier sequences and single punctuation marks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    /// 1-based source line the token starts on.
    pub line: u32,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    Ident(String),
    /// A single punctuation character; multi-char operators (`::`)
    /// appear as consecutive tokens.
    Punct(char),
    /// String literal of any form (the contents are dropped).
    Str,
    /// Char or byte-char literal.
    Char,
    /// Lifetime tick (`'a`, `'static`, `'_`).
    Lifetime,
    /// Numeric literal (suffix included; exact value is irrelevant).
    Num,
}

impl Tok {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A comment with its line extent and raw text (markers included).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    pub start_line: u32,
    pub end_line: u32,
    pub text: String,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_cont(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Lexes `src` into tokens plus a comment side-table.
///
/// The lexer is total: any byte sequence produces *some* token stream
/// (unterminated literals run to end of input) — the linter must never
/// crash on a source file, only report what it can see.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    start_line: line,
                    end_line: line,
                    text: src[start..i].to_string(),
                });
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = i;
                let start_line = line;
                i += 2;
                let mut depth = 1u32;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    start_line,
                    end_line: line,
                    text: src[start..i].to_string(),
                });
            }
            b'"' => {
                let tline = line;
                i = scan_string(b, i + 1, &mut line);
                out.toks.push(Tok { kind: TokKind::Str, line: tline });
            }
            b'\'' => {
                let tline = line;
                i = scan_tick(b, i, &mut line, &mut out.toks, tline);
            }
            _ if is_ident_start(c) => {
                let tline = line;
                let start = i;
                while i < b.len() && is_ident_cont(b[i]) {
                    i += 1;
                }
                let word = &src[start..i];
                // Literal prefixes: a raw/byte/C string or a raw
                // identifier hides behind what lexed as an identifier.
                let next = b.get(i).copied();
                match (word, next) {
                    ("r" | "br" | "cr", Some(b'"')) => {
                        // Raw string, zero hashes: no escapes, ends at
                        // the next quote.
                        i += 1;
                        i = scan_raw_string(b, i, 0, &mut line);
                        out.toks.push(Tok { kind: TokKind::Str, line: tline });
                    }
                    ("b" | "c", Some(b'"')) => {
                        i = scan_string(b, i + 1, &mut line);
                        out.toks.push(Tok { kind: TokKind::Str, line: tline });
                    }
                    ("r" | "br" | "cr", Some(b'#')) => {
                        let mut hashes = 0usize;
                        let mut j = i;
                        while j < b.len() && b[j] == b'#' {
                            hashes += 1;
                            j += 1;
                        }
                        if b.get(j) == Some(&b'"') {
                            i = scan_raw_string(b, j + 1, hashes, &mut line);
                            out.toks.push(Tok { kind: TokKind::Str, line: tline });
                        } else {
                            // `r#ident`: a raw identifier. Consume the
                            // hash and the identifier body.
                            i += 1;
                            let istart = i;
                            while i < b.len() && is_ident_cont(b[i]) {
                                i += 1;
                            }
                            out.toks.push(Tok {
                                kind: TokKind::Ident(src[istart..i].to_string()),
                                line: tline,
                            });
                        }
                    }
                    ("b", Some(b'\'')) => {
                        i = scan_tick(b, i, &mut line, &mut out.toks, tline);
                    }
                    _ => out.toks.push(Tok {
                        kind: TokKind::Ident(word.to_string()),
                        line: tline,
                    }),
                }
            }
            _ if c.is_ascii_digit() => {
                let tline = line;
                while i < b.len() && (is_ident_cont(b[i])) {
                    i += 1;
                }
                // A fractional part: consume `.` only when a digit
                // follows, so `1..5` stays three tokens.
                if i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < b.len() && is_ident_cont(b[i]) {
                        i += 1;
                    }
                }
                out.toks.push(Tok { kind: TokKind::Num, line: tline });
            }
            _ => {
                out.toks.push(Tok {
                    kind: TokKind::Punct(c as char),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Scans a (non-raw) string body starting just after the opening
/// quote; returns the index just past the closing quote. Handles
/// escapes and embedded newlines.
fn scan_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => {
                // A line-continuation escape (`\` before a newline)
                // still advances the line counter.
                if b.get(i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                i += 2;
            }
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Scans a raw string body (no escapes) until `"` followed by
/// `hashes` `#` characters; returns the index just past the
/// terminator.
fn scan_raw_string(b: &[u8], mut i: usize, hashes: usize, line: &mut u32) -> usize {
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
        } else if b[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while seen < hashes && j < b.len() && b[j] == b'#' {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    i
}

/// Disambiguates a `'` at `b[i]` into a char literal or a lifetime
/// tick and pushes the token; returns the index past the consumed
/// text.
fn scan_tick(b: &[u8], i: usize, line: &mut u32, toks: &mut Vec<Tok>, tline: u32) -> usize {
    // `b[i]` may be the `b` of a byte-char literal.
    let q = if b[i] == b'\'' { i } else { i + 1 };
    let after = q + 1;
    if after >= b.len() {
        toks.push(Tok { kind: TokKind::Punct('\''), line: tline });
        return after;
    }
    if b[after] == b'\\' {
        // Escaped char literal: walk to the closing quote, stepping
        // over backslash pairs (`'\''`, `'\\'`, `'\u{…}'`).
        let mut j = after;
        while j < b.len() {
            if b[j] == b'\\' {
                j += 2;
            } else if b[j] == b'\'' {
                j += 1;
                break;
            } else {
                j += 1;
            }
        }
        toks.push(Tok { kind: TokKind::Char, line: tline });
        return j;
    }
    if is_ident_start(b[after]) {
        // One content char then a quote → char literal ('a'); an
        // identifier run without a closing quote → lifetime ('a, 'de).
        let clen = utf8_len(b[after]);
        if b.get(after + clen) == Some(&b'\'') {
            toks.push(Tok { kind: TokKind::Char, line: tline });
            return after + clen + 1;
        }
        let mut j = after;
        while j < b.len() && is_ident_cont(b[j]) {
            j += 1;
        }
        toks.push(Tok { kind: TokKind::Lifetime, line: tline });
        return j;
    }
    // Digit or punctuation content: a char literal if the quote
    // closes right after ('1', '.', ' '), otherwise a stray tick.
    let clen = utf8_len(b[after]);
    if b.get(after + clen) == Some(&b'\'') {
        if b[after] == b'\n' {
            *line += 1;
        }
        toks.push(Tok { kind: TokKind::Char, line: tline });
        return after + clen + 1;
    }
    toks.push(Tok { kind: TokKind::Punct('\''), line: tline });
    after
}

fn utf8_len(lead: u8) -> usize {
    if lead < 0x80 {
        1
    } else if lead >= 0xF0 {
        4
    } else if lead >= 0xE0 {
        3
    } else {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .iter()
            .filter_map(|t| t.ident().map(|s| s.to_string()))
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        let src = r#"let x = "unwrap() panic! // not a comment"; y.unwrap();"#;
        let ids = idents(src);
        assert_eq!(ids, ["let", "x", "y", "unwrap"]);
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let src = r##"let s = r#"quote " inside"#; s.expect("x")"##;
        let ids = idents(src);
        assert_eq!(ids, ["let", "s", "s", "expect"]);
    }

    #[test]
    fn char_vs_lifetime() {
        let src = "fn f<'a>(x: &'a str) -> char { 'b' }";
        let lexed = lex(src);
        let lifetimes = lexed.toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let chars = lexed.toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ real";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(idents(src), ["real"]);
    }

    #[test]
    fn line_numbers_track_multiline_literals() {
        let src = "let a = \"two\nlines\";\nb";
        let lexed = lex(src);
        let b_tok = lexed.toks.iter().find(|t| t.ident() == Some("b")).unwrap();
        assert_eq!(b_tok.line, 3);
    }

    #[test]
    fn raw_identifier_is_an_ident_not_a_string() {
        assert_eq!(idents("r#type = 1"), ["type"]);
    }

    #[test]
    fn byte_and_escape_char_literals() {
        let src = r"let a = b'x'; let b = '\''; let c = '\u{1F600}'; d";
        assert_eq!(idents(src), ["let", "a", "let", "b", "let", "c", "d"]);
    }
}
