//! A SQLite-style embedded SQL database.
//!
//! Implements the SQL subset the paper's evaluation needs — `CREATE
//! TABLE`, `INSERT`, `SELECT` (with `WHERE col = value`), `DELETE` — with
//! a real tokenizer and recursive-descent parser. Every inserted record
//! is allocated from a `ukalloc` backend, which is why Figure 16's
//! allocator comparison (tinyalloc fast below ~1000 queries, mimalloc
//! winning under load) reproduces: 60k inserts mean 60k live allocator
//! blocks plus index churn.

use std::collections::{BTreeMap, HashMap};

use ukalloc::{Allocator, GpAddr};
use ukplat::{Errno, Result};

/// A SQL value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// INTEGER.
    Int(i64),
    /// TEXT.
    Text(String),
    /// NULL.
    Null,
}

impl Value {
    fn encoded_size(&self) -> usize {
        match self {
            Value::Int(_) => 8,
            Value::Text(s) => s.len() + 4,
            Value::Null => 1,
        }
    }
}

/// Tokenizer output.
#[derive(Debug, Clone, PartialEq)]
enum Token {
    Word(String),
    Int(i64),
    Str(String),
    LParen,
    RParen,
    Comma,
    Star,
    Eq,
    Semi,
}

fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let bytes = sql.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semi);
                i += 1;
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(Errno::Inval);
                }
                tokens.push(Token::Str(sql[start..j].to_string()));
                i = j + 1;
            }
            '-' | '0'..='9' => {
                let start = i;
                i += 1;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let n: i64 = sql[start..i].parse().map_err(|_| Errno::Inval)?;
                tokens.push(Token::Int(n));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token::Word(sql[start..i].to_string()));
            }
            _ => return Err(Errno::Inval),
        }
    }
    Ok(tokens)
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// CREATE TABLE name (col, …)
    CreateTable {
        /// Table name.
        name: String,
        /// Column names.
        columns: Vec<String>,
    },
    /// INSERT INTO name VALUES (v, …)
    Insert {
        /// Table name.
        table: String,
        /// Row values.
        values: Vec<Value>,
    },
    /// SELECT cols FROM name [WHERE col = value]
    Select {
        /// Table name.
        table: String,
        /// Columns (empty = `*`).
        columns: Vec<String>,
        /// Optional equality filter.
        filter: Option<(String, Value)>,
    },
    /// DELETE FROM name WHERE col = value
    Delete {
        /// Table name.
        table: String,
        /// Equality filter.
        filter: (String, Value),
    },
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Token> {
        let t = self.tokens.get(self.pos).cloned().ok_or(Errno::Inval)?;
        self.pos += 1;
        Ok(t)
    }

    fn expect_word(&mut self, kw: &str) -> Result<()> {
        match self.next()? {
            Token::Word(w) if w.eq_ignore_ascii_case(kw) => Ok(()),
            _ => Err(Errno::Inval),
        }
    }

    fn word(&mut self) -> Result<String> {
        match self.next()? {
            Token::Word(w) => Ok(w),
            _ => Err(Errno::Inval),
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.next()? {
            Token::Int(n) => Ok(Value::Int(n)),
            Token::Str(s) => Ok(Value::Text(s)),
            Token::Word(w) if w.eq_ignore_ascii_case("null") => Ok(Value::Null),
            _ => Err(Errno::Inval),
        }
    }

    fn expect(&mut self, t: Token) -> Result<()> {
        if self.next()? == t {
            Ok(())
        } else {
            Err(Errno::Inval)
        }
    }
}

/// Parses one SQL statement.
pub fn parse(sql: &str) -> Result<Statement> {
    let mut p = Parser {
        tokens: tokenize(sql)?,
        pos: 0,
    };
    let head = p.word()?;
    let stmt = if head.eq_ignore_ascii_case("create") {
        p.expect_word("table")?;
        let name = p.word()?;
        p.expect(Token::LParen)?;
        let mut columns = vec![p.word()?];
        while p.peek() == Some(&Token::Comma) {
            p.next()?;
            columns.push(p.word()?);
        }
        p.expect(Token::RParen)?;
        Statement::CreateTable { name, columns }
    } else if head.eq_ignore_ascii_case("insert") {
        p.expect_word("into")?;
        let table = p.word()?;
        p.expect_word("values")?;
        p.expect(Token::LParen)?;
        let mut values = vec![p.value()?];
        while p.peek() == Some(&Token::Comma) {
            p.next()?;
            values.push(p.value()?);
        }
        p.expect(Token::RParen)?;
        Statement::Insert { table, values }
    } else if head.eq_ignore_ascii_case("select") {
        let mut columns = Vec::new();
        if p.peek() == Some(&Token::Star) {
            p.next()?;
        } else {
            columns.push(p.word()?);
            while p.peek() == Some(&Token::Comma) {
                p.next()?;
                columns.push(p.word()?);
            }
        }
        p.expect_word("from")?;
        let table = p.word()?;
        let filter = if matches!(p.peek(), Some(Token::Word(w)) if w.eq_ignore_ascii_case("where"))
        {
            p.next()?;
            let col = p.word()?;
            p.expect(Token::Eq)?;
            Some((col, p.value()?))
        } else {
            None
        };
        Statement::Select {
            table,
            columns,
            filter,
        }
    } else if head.eq_ignore_ascii_case("delete") {
        p.expect_word("from")?;
        let table = p.word()?;
        p.expect_word("where")?;
        let col = p.word()?;
        p.expect(Token::Eq)?;
        let v = p.value()?;
        Statement::Delete {
            table,
            filter: (col, v),
        }
    } else {
        return Err(Errno::Inval);
    };
    Ok(stmt)
}

struct Row {
    values: Vec<Value>,
    gp: GpAddr,
}

struct Table {
    columns: Vec<String>,
    rows: BTreeMap<u64, Row>,
    next_rowid: u64,
}

/// The database engine.
pub struct SqlDb {
    tables: HashMap<String, Table>,
    alloc: Box<dyn Allocator>,
    statements: u64,
}

impl std::fmt::Debug for SqlDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SqlDb")
            .field("tables", &self.tables.len())
            .field("statements", &self.statements)
            .finish()
    }
}

impl SqlDb {
    /// Creates an empty database over an initialized allocator.
    pub fn new(alloc: Box<dyn Allocator>) -> Self {
        SqlDb {
            tables: HashMap::new(),
            alloc,
            statements: 0,
        }
    }

    /// Executes one statement; returns result rows (SELECT) or empty.
    pub fn execute(&mut self, sql: &str) -> Result<Vec<Vec<Value>>> {
        self.statements += 1;
        match parse(sql)? {
            Statement::CreateTable { name, columns } => {
                if self.tables.contains_key(&name) {
                    return Err(Errno::Exist);
                }
                self.tables.insert(
                    name,
                    Table {
                        columns,
                        rows: BTreeMap::new(),
                        next_rowid: 1,
                    },
                );
                Ok(Vec::new())
            }
            Statement::Insert { table, values } => {
                let size: usize = values.iter().map(Value::encoded_size).sum();
                // The record's backing store comes from ukalloc.
                let gp = self.alloc.malloc(size.max(16)).ok_or(Errno::NoMem)?;
                let t = self.tables.get_mut(&table).ok_or(Errno::NoEnt)?;
                if values.len() != t.columns.len() {
                    self.alloc.free(gp);
                    return Err(Errno::Inval);
                }
                let rowid = t.next_rowid;
                t.next_rowid += 1;
                t.rows.insert(rowid, Row { values, gp });
                Ok(Vec::new())
            }
            Statement::Select {
                table,
                columns,
                filter,
            } => {
                let t = self.tables.get(&table).ok_or(Errno::NoEnt)?;
                let col_idx: Vec<usize> = if columns.is_empty() {
                    (0..t.columns.len()).collect()
                } else {
                    columns
                        .iter()
                        .map(|c| {
                            t.columns
                                .iter()
                                .position(|tc| tc == c)
                                .ok_or(Errno::Inval)
                        })
                        .collect::<Result<_>>()?
                };
                let filter_idx = match &filter {
                    Some((col, v)) => Some((
                        t.columns
                            .iter()
                            .position(|tc| tc == col)
                            .ok_or(Errno::Inval)?,
                        v.clone(),
                    )),
                    None => None,
                };
                let mut out = Vec::new();
                for row in t.rows.values() {
                    if let Some((fi, fv)) = &filter_idx {
                        if &row.values[*fi] != fv {
                            continue;
                        }
                    }
                    out.push(col_idx.iter().map(|&i| row.values[i].clone()).collect());
                }
                Ok(out)
            }
            Statement::Delete { table, filter } => {
                let t = self.tables.get_mut(&table).ok_or(Errno::NoEnt)?;
                let fi = t
                    .columns
                    .iter()
                    .position(|tc| *tc == filter.0)
                    .ok_or(Errno::Inval)?;
                let victims: Vec<u64> = t
                    .rows
                    .iter()
                    .filter(|(_, r)| r.values[fi] == filter.1)
                    .map(|(id, _)| *id)
                    .collect();
                let mut freed = Vec::new();
                for id in victims {
                    if let Some(row) = t.rows.remove(&id) {
                        freed.push(row.gp);
                    }
                }
                for gp in freed {
                    self.alloc.free(gp);
                }
                Ok(Vec::new())
            }
        }
    }

    /// Statements executed.
    pub fn statements(&self) -> u64 {
        self.statements
    }

    /// Rows stored in a table.
    pub fn row_count(&self, table: &str) -> usize {
        self.tables.get(table).map(|t| t.rows.len()).unwrap_or(0)
    }

    /// Allocator statistics.
    pub fn alloc_stats(&self) -> ukalloc::AllocStats {
        self.alloc.stats()
    }

    /// Runs the paper's insert workload: `n` single-row inserts into a
    /// fresh `kv` table (Figure 17's "60k SQLite insertions").
    pub fn insert_workload(&mut self, n: u64) -> Result<()> {
        self.execute("CREATE TABLE kv (id, body)")?;
        for i in 0..n {
            let stmt = format!("INSERT INTO kv VALUES ({i}, 'value-{i}-padding-padding')");
            self.execute(&stmt)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ukalloc::AllocBackend;

    fn db() -> SqlDb {
        let mut a = AllocBackend::Tlsf.instantiate();
        a.init(1 << 22, 64 << 20).unwrap();
        SqlDb::new(a)
    }

    #[test]
    fn tokenizer_handles_strings_and_ints() {
        let t = tokenize("INSERT INTO t VALUES (42, 'hi there')").unwrap();
        assert!(t.contains(&Token::Int(42)));
        assert!(t.contains(&Token::Str("hi there".into())));
    }

    #[test]
    fn create_insert_select_roundtrip() {
        let mut db = db();
        db.execute("CREATE TABLE users (id, name)").unwrap();
        db.execute("INSERT INTO users VALUES (1, 'ada')").unwrap();
        db.execute("INSERT INTO users VALUES (2, 'grace')").unwrap();
        let rows = db.execute("SELECT * FROM users").unwrap();
        assert_eq!(rows.len(), 2);
        let rows = db
            .execute("SELECT name FROM users WHERE id = 2")
            .unwrap();
        assert_eq!(rows, vec![vec![Value::Text("grace".into())]]);
    }

    #[test]
    fn select_with_column_projection() {
        let mut db = db();
        db.execute("CREATE TABLE t (a, b, c)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 'x', 9)").unwrap();
        let rows = db.execute("SELECT c, a FROM t").unwrap();
        assert_eq!(rows, vec![vec![Value::Int(9), Value::Int(1)]]);
    }

    #[test]
    fn delete_frees_record_memory() {
        let mut db = db();
        db.execute("CREATE TABLE t (k)").unwrap();
        db.execute("INSERT INTO t VALUES (7)").unwrap();
        let live_before = db.alloc_stats().live();
        db.execute("DELETE FROM t WHERE k = 7").unwrap();
        assert_eq!(db.row_count("t"), 0);
        assert_eq!(db.alloc_stats().live(), live_before - 1);
    }

    #[test]
    fn errors_are_reported() {
        let mut db = db();
        assert_eq!(db.execute("DROP TABLE x").unwrap_err(), Errno::Inval);
        assert_eq!(
            db.execute("INSERT INTO nope VALUES (1)").unwrap_err(),
            Errno::NoEnt
        );
        db.execute("CREATE TABLE t (a)").unwrap();
        assert_eq!(
            db.execute("INSERT INTO t VALUES (1, 2)").unwrap_err(),
            Errno::Inval
        );
        assert_eq!(
            db.execute("CREATE TABLE t (x)").unwrap_err(),
            Errno::Exist
        );
    }

    #[test]
    fn insert_workload_allocates_per_row() {
        let mut db = db();
        db.insert_workload(1000).unwrap();
        assert_eq!(db.row_count("kv"), 1000);
        assert_eq!(db.alloc_stats().live(), 1000);
    }

    #[test]
    fn wrong_where_column_is_error() {
        let mut db = db();
        db.execute("CREATE TABLE t (a)").unwrap();
        assert_eq!(
            db.execute("SELECT * FROM t WHERE b = 1").unwrap_err(),
            Errno::Inval
        );
    }
}
