//! x86-64 four-level page-table construction.
//!
//! §6.1 of the paper: "By default, the Unikraft binary contains an already
//! initialized page-table structure which is loaded in memory by the VMM;
//! during boot Unikraft simply enables paging and updates the page-table
//! base register" (the *static* mode, constant boot cost). "Unikraft also
//! has dynamic page management support … when this is used the entire
//! page-table is populated at boot time" (the *dynamic* mode, cost
//! proportional to RAM). Figure 21 measures exactly this difference.
//!
//! We build genuine 4-level tables (PML4 → PDPT → PD, 2 MiB leaf pages, or
//! down to PTs for 4 KiB pages): 512-entry tables of 64-bit entries,
//! allocated from a page-table arena and filled entry by entry in dynamic
//! mode. Static mode receives a prebuilt table blob (constructed at
//! *image build time*) and only "loads CR3".

use ukplat::{Errno, Result};

/// Size of a 4 KiB leaf page.
pub const PAGE_4K: u64 = 4096;
/// Size of a 2 MiB leaf page.
pub const PAGE_2M: u64 = 2 * 1024 * 1024;

/// Entry flags (subset of x86-64 bits).
const PTE_PRESENT: u64 = 1 << 0;
const PTE_WRITE: u64 = 1 << 1;
const PTE_HUGE: u64 = 1 << 7;
/// Mask extracting the physical frame from an entry.
const ADDR_MASK: u64 = 0x000f_ffff_ffff_f000;

/// How the guest sets up paging at boot (paper §6.1 and Fig 21).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PagingMode {
    /// Prebuilt table in the image; boot only loads CR3.
    Static,
    /// Build the full mapping at boot, entry by entry.
    Dynamic,
    /// 32-bit protected mode: no paging at all (paper: "run in protected
    /// (32 bit) mode, disabling guest paging altogether").
    Disabled,
}

/// A forest of 512-entry page tables plus the root pointer.
#[derive(Debug, Clone)]
pub struct PageTables {
    /// All tables; index 0 is the PML4.
    tables: Vec<Box<[u64; 512]>>,
    /// Bytes of RAM mapped.
    mapped: u64,
    /// Number of leaf entries written.
    entries_written: u64,
}

impl Default for PageTables {
    fn default() -> Self {
        Self::new()
    }
}

impl PageTables {
    /// Creates an empty hierarchy with just a zeroed PML4.
    pub fn new() -> Self {
        PageTables {
            tables: vec![Box::new([0u64; 512])],
            mapped: 0,
            entries_written: 0,
        }
    }

    fn alloc_table(&mut self) -> usize {
        self.tables.push(Box::new([0u64; 512]));
        self.tables.len() - 1
    }

    /// Ensures a child table exists behind `tables[tidx][slot]`, returning
    /// its index. Table indices are encoded in the entry's address bits.
    fn child(&mut self, tidx: usize, slot: usize) -> usize {
        let e = self.tables[tidx][slot];
        if e & PTE_PRESENT != 0 {
            debug_assert_eq!(e & PTE_HUGE, 0, "descending into a huge leaf");
            ((e & ADDR_MASK) >> 12) as usize
        } else {
            let c = self.alloc_table();
            self.tables[tidx][slot] = ((c as u64) << 12) | PTE_PRESENT | PTE_WRITE;
            self.entries_written += 1;
            c
        }
    }

    /// Identity-maps `[0, len)` with pages of `page_size` (4 KiB or 2 MiB).
    ///
    /// This is the dynamic-mode boot work: every leaf entry is computed
    /// and written individually.
    pub fn map_identity(&mut self, len: u64, page_size: u64) -> Result<()> {
        if page_size != PAGE_4K && page_size != PAGE_2M {
            return Err(Errno::Inval);
        }
        let pages = len.div_ceil(page_size);
        for p in 0..pages {
            let va = p * page_size;
            self.map_one(va, va, page_size)?;
        }
        self.mapped = self.mapped.max(pages * page_size);
        Ok(())
    }

    /// Maps a single page `va → pa`.
    pub fn map_one(&mut self, va: u64, pa: u64, page_size: u64) -> Result<()> {
        if !va.is_multiple_of(page_size) || !pa.is_multiple_of(page_size) {
            return Err(Errno::Inval);
        }
        let pml4_i = ((va >> 39) & 0x1ff) as usize;
        let pdpt_i = ((va >> 30) & 0x1ff) as usize;
        let pd_i = ((va >> 21) & 0x1ff) as usize;
        let pt_i = ((va >> 12) & 0x1ff) as usize;

        let pdpt = self.child(0, pml4_i);
        let pd = self.child(pdpt, pdpt_i);
        match page_size {
            PAGE_2M => {
                self.tables[pd][pd_i] = (pa & ADDR_MASK) | PTE_PRESENT | PTE_WRITE | PTE_HUGE;
                self.entries_written += 1;
            }
            PAGE_4K => {
                let pt = self.child(pd, pd_i);
                self.tables[pt][pt_i] = (pa & ADDR_MASK) | PTE_PRESENT | PTE_WRITE;
                self.entries_written += 1;
            }
            _ => return Err(Errno::Inval),
        }
        Ok(())
    }

    /// Software page walk: translates `va` to a physical address.
    pub fn translate(&self, va: u64) -> Option<u64> {
        let pml4_i = ((va >> 39) & 0x1ff) as usize;
        let pdpt_i = ((va >> 30) & 0x1ff) as usize;
        let pd_i = ((va >> 21) & 0x1ff) as usize;
        let pt_i = ((va >> 12) & 0x1ff) as usize;

        let e = self.tables[0][pml4_i];
        if e & PTE_PRESENT == 0 {
            return None;
        }
        let pdpt = ((e & ADDR_MASK) >> 12) as usize;
        let e = self.tables[pdpt][pdpt_i];
        if e & PTE_PRESENT == 0 {
            return None;
        }
        let pd = ((e & ADDR_MASK) >> 12) as usize;
        let e = self.tables[pd][pd_i];
        if e & PTE_PRESENT == 0 {
            return None;
        }
        if e & PTE_HUGE != 0 {
            return Some((e & ADDR_MASK) | (va & (PAGE_2M - 1)));
        }
        let pt = ((e & ADDR_MASK) >> 12) as usize;
        let e = self.tables[pt][pt_i];
        if e & PTE_PRESENT == 0 {
            return None;
        }
        Some((e & ADDR_MASK) | (va & (PAGE_4K - 1)))
    }

    /// Number of 4 KiB table frames in use.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Leaf + intermediate entries written so far.
    pub fn entries_written(&self) -> u64 {
        self.entries_written
    }

    /// Bytes of RAM covered by the identity mapping.
    pub fn mapped_bytes(&self) -> u64 {
        self.mapped
    }

    /// Builds the *static* prebuilt table for `ram` bytes (image build
    /// time, not boot time). Boot then merely "loads CR3".
    pub fn prebuilt(ram: u64) -> Self {
        let mut pt = PageTables::new();
        pt.map_identity(ram, PAGE_2M).expect("prebuilt mapping");
        pt
    }
}

/// The boot-time paging step: what runs *inside* the guest.
///
/// Returns the active tables (if any). The caller measures its duration;
/// `Static` only swaps in the prebuilt tables (CR3 write), `Dynamic` does
/// the full per-entry population, `Disabled` does nothing.
pub fn boot_paging(mode: PagingMode, ram: u64, prebuilt: Option<PageTables>) -> Option<PageTables> {
    match mode {
        PagingMode::Disabled => None,
        PagingMode::Static => {
            // CR3 write: adopt the image-embedded tables as-is.
            Some(prebuilt.expect("static mode requires a prebuilt table"))
        }
        PagingMode::Dynamic => {
            let mut pt = PageTables::new();
            pt.map_identity(ram, PAGE_2M).expect("dynamic mapping");
            Some(pt)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB: u64 = 1 << 30;

    #[test]
    fn identity_map_translates_correctly() {
        let mut pt = PageTables::new();
        pt.map_identity(64 * 1024 * 1024, PAGE_2M).unwrap();
        for va in [0u64, 4096, 2 * 1024 * 1024 + 123, 63 * 1024 * 1024] {
            assert_eq!(pt.translate(va), Some(va));
        }
        assert_eq!(pt.translate(65 * 1024 * 1024), None);
    }

    #[test]
    fn table_count_scales_with_ram_for_2m_pages() {
        let mut small = PageTables::new();
        small.map_identity(GIB, PAGE_2M).unwrap();
        let mut big = PageTables::new();
        big.map_identity(3 * GIB, PAGE_2M).unwrap();
        // 1 GiB = 512 PDEs = 1 PD; 3 GiB = 3 PDs.
        assert_eq!(small.table_count(), 3); // PML4 + PDPT + 1 PD
        assert_eq!(big.table_count(), 5); // PML4 + PDPT + 3 PDs
        assert_eq!(small.entries_written(), 2 + 512);
        assert_eq!(big.entries_written(), 4 + 3 * 512);
    }

    #[test]
    fn four_k_pages_need_page_tables() {
        let mut pt = PageTables::new();
        pt.map_identity(4 * 1024 * 1024, PAGE_4K).unwrap();
        // PML4 + PDPT + PD + 2 PTs.
        assert_eq!(pt.table_count(), 5);
        assert_eq!(pt.translate(4096 * 3 + 17), Some(4096 * 3 + 17));
    }

    #[test]
    fn non_identity_mapping() {
        let mut pt = PageTables::new();
        pt.map_one(0x4000_0000, 0x1000, PAGE_4K).unwrap();
        assert_eq!(pt.translate(0x4000_0123), Some(0x1123));
        assert_eq!(pt.translate(0x4000_1000), None);
    }

    #[test]
    fn misaligned_mapping_rejected() {
        let mut pt = PageTables::new();
        assert_eq!(pt.map_one(123, 0, PAGE_4K).unwrap_err(), Errno::Inval);
        assert_eq!(
            pt.map_identity(GIB, 8192).unwrap_err(),
            Errno::Inval,
            "only 4K/2M page sizes"
        );
    }

    #[test]
    fn static_mode_writes_nothing_at_boot() {
        let pre = PageTables::prebuilt(GIB);
        let written_before = pre.entries_written();
        let pt = boot_paging(PagingMode::Static, GIB, Some(pre)).unwrap();
        assert_eq!(pt.entries_written(), written_before, "no boot-time writes");
    }

    #[test]
    fn dynamic_mode_scales_with_ram() {
        let a = boot_paging(PagingMode::Dynamic, GIB, None).unwrap();
        let b = boot_paging(PagingMode::Dynamic, 2 * GIB, None).unwrap();
        assert!(b.entries_written() > a.entries_written());
    }

    #[test]
    fn disabled_mode_builds_nothing() {
        assert!(boot_paging(PagingMode::Disabled, GIB, None).is_none());
    }
}
