//! Criterion bench: UDP KV store per mode (Table 4).

use criterion::{criterion_group, criterion_main, Criterion};
use ukapps::udpkv::{UdpKvMode, UdpKvServer, BATCH};
use ukplat::time::Tsc;

fn bench_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("udpkv_batch32");
    let requests: Vec<Vec<u8>> = (0..BATCH)
        .map(|i| format!("G key{:04}", i % 16).into_bytes())
        .collect();
    let refs: Vec<&[u8]> = requests.iter().map(|r| r.as_slice()).collect();
    for mode in UdpKvMode::all() {
        let (setup, m) = mode.label();
        g.bench_function(format!("{setup}/{m}"), |b| {
            let tsc = Tsc::new(ukplat::cost::CPU_FREQ_HZ);
            let mut server = UdpKvServer::new(mode, &tsc);
            for i in 0..16 {
                server.handle(format!("S key{i:04} v").as_bytes());
            }
            b.iter(|| std::hint::black_box(server.serve_batch(&refs)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
