//! Shared readiness cells — the producer side of the subsystem.
//!
//! A [`ReadySource`] plays the role the wait-queue head inside a Linux
//! `struct file` plays for `poll`: the object's owner publishes its
//! current readiness here, and every [`EventQueue`](crate::EventQueue)
//! holding the object in its interest list observes the change. Edge
//! (`EPOLLET`) consumers additionally see a monotonically increasing
//! *edge sequence* that is bumped whenever a bit rises 0→1, which is
//! what makes edge-triggered one-shot delivery possible without the
//! queue rescanning every object.

use std::cell::RefCell;
use std::rc::{Rc, Weak};

use crate::mask::EventMask;
use crate::queue::QueueShared;

pub(crate) struct SourceInner {
    /// Current level-triggered readiness.
    events: EventMask,
    /// Bumped on every rising edge of any bit.
    edge_seq: u64,
    /// Queues watching this source.
    watchers: Vec<Weak<RefCell<QueueShared>>>,
}

/// A shared, cloneable readiness cell for one file-like object.
///
/// Clones share state (like `Rc`); the producing subsystem keeps one
/// clone and updates it, while event queues keep another in their
/// interest lists.
#[derive(Clone)]
pub struct ReadySource {
    inner: Rc<RefCell<SourceInner>>,
}

impl Default for ReadySource {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ReadySource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("ReadySource")
            .field("events", &inner.events)
            .field("edge_seq", &inner.edge_seq)
            .field("watchers", &inner.watchers.len())
            .finish()
    }
}

impl ReadySource {
    /// Creates a cell with no readiness.
    pub fn new() -> Self {
        ReadySource {
            inner: Rc::new(RefCell::new(SourceInner {
                events: EventMask::EMPTY,
                edge_seq: 0,
                watchers: Vec::new(),
            })),
        }
    }

    /// Whether two handles refer to the same cell.
    pub fn same_as(&self, other: &ReadySource) -> bool {
        Rc::ptr_eq(&self.inner, &other.inner)
    }

    /// Current level-triggered readiness.
    pub fn current(&self) -> EventMask {
        self.inner.borrow().events
    }

    /// Current edge sequence number.
    pub fn edge_seq(&self) -> u64 {
        self.inner.borrow().edge_seq
    }

    /// Replaces the level state with `events`. Bits that rise 0→1 count
    /// as an edge: the sequence number is bumped and watching queues are
    /// woken. Falling bits update the level silently (nobody is woken by
    /// a buffer becoming empty).
    pub fn set_level(&self, events: EventMask) {
        let rising = {
            let mut inner = self.inner.borrow_mut();
            let rising = events - inner.events;
            inner.events = events;
            if !rising.is_empty() {
                inner.edge_seq += 1;
            }
            rising
        };
        if !rising.is_empty() {
            self.notify_watchers();
        }
    }

    /// Sets bits (rising edges wake watchers), leaving other bits alone.
    pub fn raise(&self, events: EventMask) {
        let current = self.current();
        self.set_level(current | events);
    }

    /// Signals fresh activity without a level transition: bumps the edge
    /// sequence and wakes watchers even though the bits are unchanged.
    /// Producers call this when *more* data arrives while the readable
    /// level is already high — Linux re-triggers `EPOLLET` consumers on
    /// every new arrival, not only on empty→non-empty transitions.
    pub fn pulse(&self) {
        self.inner.borrow_mut().edge_seq += 1;
        self.notify_watchers();
    }

    /// Clears bits without waking anyone.
    pub fn clear(&self, events: EventMask) {
        let current = self.current();
        self.set_level(current - events);
    }

    pub(crate) fn subscribe(&self, queue: &Rc<RefCell<QueueShared>>) {
        let mut inner = self.inner.borrow_mut();
        // Prune dead queues while we're here.
        inner.watchers.retain(|w| w.strong_count() > 0);
        if !inner
            .watchers
            .iter()
            .any(|w| w.as_ptr() == Rc::as_ptr(queue))
        {
            inner.watchers.push(Rc::downgrade(queue));
        }
    }

    pub(crate) fn unsubscribe(&self, queue: &Rc<RefCell<QueueShared>>) {
        self.inner
            .borrow_mut()
            .watchers
            .retain(|w| w.strong_count() > 0 && w.as_ptr() != Rc::as_ptr(queue));
    }

    fn notify_watchers(&self) {
        // Collect strong refs first: waking may re-enter user code that
        // touches this source.
        let watchers: Vec<Rc<RefCell<QueueShared>>> = {
            let inner = self.inner.borrow();
            inner.watchers.iter().filter_map(Weak::upgrade).collect()
        };
        for q in watchers {
            q.borrow_mut().on_readiness();
        }
    }
}

/// Implemented by fd-bearing objects that can be placed on an
/// [`EventQueue`](crate::EventQueue) — the analog of Linux's
/// `file_operations.poll`.
pub trait Pollable {
    /// The object's current level-triggered readiness.
    fn poll_events(&self) -> EventMask;

    /// The shared cell edges are published through. Must return clones
    /// of the same cell on every call.
    fn ready_source(&self) -> ReadySource;
}

/// A bare cell is trivially pollable (used when a subsystem hands out
/// raw sources, as `uknetstack` does for sockets).
impl Pollable for ReadySource {
    fn poll_events(&self) -> EventMask {
        self.current()
    }

    fn ready_source(&self) -> ReadySource {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let a = ReadySource::new();
        let b = a.clone();
        a.raise(EventMask::IN);
        assert!(b.current().contains(EventMask::IN));
        assert!(a.same_as(&b));
        assert!(!a.same_as(&ReadySource::new()));
    }

    #[test]
    fn rising_edge_bumps_seq_falling_does_not() {
        let s = ReadySource::new();
        assert_eq!(s.edge_seq(), 0);
        s.raise(EventMask::IN);
        assert_eq!(s.edge_seq(), 1);
        s.raise(EventMask::IN); // already set: no edge
        assert_eq!(s.edge_seq(), 1);
        s.clear(EventMask::IN); // falling: no edge
        assert_eq!(s.edge_seq(), 1);
        s.raise(EventMask::IN); // rises again
        assert_eq!(s.edge_seq(), 2);
    }

    #[test]
    fn set_level_mixed_transition_is_one_edge() {
        let s = ReadySource::new();
        s.set_level(EventMask::IN | EventMask::OUT);
        assert_eq!(s.edge_seq(), 1);
        // OUT falls, RDHUP rises: net one more edge.
        s.set_level(EventMask::IN | EventMask::RDHUP);
        assert_eq!(s.edge_seq(), 2);
        assert_eq!(s.current(), EventMask::IN | EventMask::RDHUP);
    }
}
