//! Shared harness utilities.

use std::time::Instant;

use ukplat::time::Tsc;

/// Result of timing a run that mixes real computation and virtually
/// charged host costs.
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    /// Real wall-clock nanoseconds.
    pub real_ns: u64,
    /// Virtual (charged) nanoseconds.
    pub virtual_ns: u64,
}

impl Timing {
    /// Combined time.
    pub fn total_ns(&self) -> u64 {
        self.real_ns + self.virtual_ns
    }
}

/// Times `f`, capturing both real and virtual elapsed time.
pub fn time_mixed(tsc: &Tsc, mut f: impl FnMut()) -> Timing {
    let v0 = tsc.now_cycles();
    let t0 = Instant::now();
    f();
    Timing {
        real_ns: t0.elapsed().as_nanos() as u64,
        virtual_ns: tsc.cycles_to_ns(tsc.now_cycles() - v0),
    }
}

/// Runs `f` `iters` times, returning the median total nanoseconds.
pub fn median_ns(iters: usize, mut f: impl FnMut() -> u64) -> u64 {
    let mut samples: Vec<u64> = (0..iters.max(1)).map(|_| f()).collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Formats nanoseconds human-readably.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Formats a rate (per second) human-readably.
pub fn fmt_rate(per_sec: f64) -> String {
    if per_sec >= 1e6 {
        format!("{:.2} M/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.1} K/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.0} /s")
    }
}

/// Writes a DOT file under `out/`, returning its path (best effort).
pub fn write_dot(name: &str, dot: &str) -> Option<String> {
    let dir = std::path::Path::new("out");
    std::fs::create_dir_all(dir).ok()?;
    let path = dir.join(format!("{name}.dot"));
    std::fs::write(&path, dot).ok()?;
    Some(path.display().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_mixed_captures_both_components() {
        let tsc = Tsc::new(1_000_000_000);
        let t = time_mixed(&tsc, || tsc.advance_ns(12_345));
        assert_eq!(t.virtual_ns, 12_345);
        assert!(t.total_ns() >= 12_345);
    }

    #[test]
    fn median_is_stable() {
        let mut v = [5u64, 1, 9].into_iter();
        let m = median_ns(3, || v.next().unwrap());
        assert_eq!(m, 5);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_ns(500), "500 ns");
        assert_eq!(fmt_ns(1_500), "1.50 us");
        assert_eq!(fmt_ns(2_500_000), "2.50 ms");
        assert_eq!(fmt_rate(2_680_000.0), "2.68 M/s");
    }
}
