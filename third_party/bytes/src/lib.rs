//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the tiny subset of the `bytes` API that
//! `uknetdev::netbuf` uses: a growable byte buffer with `Deref` access.
//! Semantics match `bytes::BytesMut` for this subset (no shared views).

use std::ops::{Deref, DerefMut};

#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self { inner: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self { inner: Vec::with_capacity(cap) }
    }

    pub fn zeroed(len: usize) -> Self {
        Self { inner: vec![0; len] }
    }

    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.inner.resize(new_len, value);
    }

    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.inner.extend_from_slice(extend);
    }

    pub fn clear(&mut self) {
        self.inner.clear();
    }

    pub fn truncate(&mut self, len: usize) {
        self.inner.truncate(len);
    }

    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }

    pub fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    pub fn freeze(self) -> Vec<u8> {
        self.inner
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.inner
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        Self { inner: v }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        Self { inner: v.to_vec() }
    }
}
