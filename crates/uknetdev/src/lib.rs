//! Network device micro-library (`uknetdev`).
//!
//! §3.1 of the paper: `uknetdev` decouples network drivers from network
//! stacks. Its design points, all reproduced here:
//!
//! - burst send/receive (`uk_netdev_tx_burst` / `uk_netdev_rx_burst`)
//!   taking arrays of [`netbuf::Netbuf`]s, with in/out count parameters
//!   and "more room / more packets" flags;
//! - memory management belongs to the *application*: drivers never
//!   allocate; packet buffers come either from a pre-allocated
//!   [`netbuf::NetbufPool`] (performance path) or the general heap;
//! - **zero-copy headroom discipline**: a [`netbuf::Netbuf`] reserves
//!   headroom in front of the payload so protocol layers *prepend*
//!   their headers in place (`push_header` / `push_header_uninit`)
//!   instead of re-serializing — one buffer travels from application
//!   write to wire, and back up through `pull_header` on receive. The
//!   whole datapath performs zero heap allocations per packet in
//!   steady state: buffers circulate pool → tx ring → done-list →
//!   recycle (see the `netbuf` module docs for the ownership rules);
//! - polling, interrupt-driven, or mixed queue operation: a queue runs
//!   polled by default; the driver enables its interrupt line only when it
//!   runs out of work, avoiding interrupt storms and transitioning back to
//!   polling under load;
//! - multiple queues per device, driver capabilities exposed for the
//!   application to pick from.
//!
//! The device model is virtio-net with two host backends, matching the
//! paper's Figure 19 setup: `vhost-net` (kernel backend: kick + copy per
//! burst) and `vhost-user` (DPDK-style shared-memory polling backend:
//! no kicks, no copies).

pub mod backend;
pub mod csum;
pub mod dev;
pub mod gso;
pub mod netbuf;
pub mod ring;
pub mod virtio;

pub use backend::{HostBackend, VhostKind, Wire};
pub use dev::{BurstStats, NetDev, NetDevConf, NetDevInfo, QueueMode};
pub use netbuf::{GsoRequest, Netbuf, NetbufPool, TcpHold};
pub use ring::DescRing;
pub use virtio::VirtioNet;

/// Maximum burst the API moves per call (matches common driver limits).
pub const MAX_BURST: usize = 64;

/// Default Ethernet MTU used by examples and benches.
pub const MTU: usize = 1500;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn constants_sane() {
        assert!(MAX_BURST >= 32);
        assert_eq!(MTU, 1500);
    }
}
