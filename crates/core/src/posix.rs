//! The POSIX compatibility layer: syscalls backed by real subsystems.
//!
//! §4 of the paper: "each library that implements a system call handler
//! registers it, via a macro, with this micro-library" — `vfscore`
//! registers the file syscalls, `posix-process` the process ones, and
//! so on. This module performs those registrations: it binds a
//! [`SyscallShim`] to a live [`Vfs`], so that invoking `open`/`read`/
//! `write`/`close`/`lseek` *by syscall number* actually performs
//! filesystem operations — at function-call cost, which is the whole
//! point of the shim.
//!
//! Since syscall handlers pass raw `u64` arguments, the layer keeps an
//! argument-translation table mapping "user pointers" to byte buffers,
//! the role the single address space plays in a real unikernel.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use ukevent::{EventFd, EventMask, EventQueue, ReadySource};
use ukplat::time::Tsc;
use ukplat::Errno;
use uksyscall::shim::{SyscallMode, SyscallShim};
use ukvfs::vfscore::Fd;
use ukvfs::{RamFs, Vfs};

/// First fd number handed out by the event table; keeps epoll/eventfd
/// descriptors clear of the VFS fd space so `read`/`write`/`close` can
/// route by range, the way a real unikernel's unified fd table would.
pub const EVENT_FD_BASE: u64 = 0x1000;

/// `EPOLL_CTL_ADD`.
pub const EPOLL_CTL_ADD: u64 = 1;
/// `EPOLL_CTL_DEL`.
pub const EPOLL_CTL_DEL: u64 = 2;
/// `EPOLL_CTL_MOD`.
pub const EPOLL_CTL_MOD: u64 = 3;

/// The fd table behind the epoll/eventfd syscalls.
#[derive(Default)]
struct EventTable {
    epolls: HashMap<u64, EventQueue>,
    eventfds: HashMap<u64, EventFd>,
    /// Readiness cells installed for objects living outside the table
    /// (e.g. `uknetstack` sockets), keyed by their assigned fd.
    external: HashMap<u64, ReadySource>,
    next_fd: u64,
}

impl EventTable {
    fn alloc_fd(&mut self) -> u64 {
        if self.next_fd == 0 {
            self.next_fd = EVENT_FD_BASE;
        }
        let fd = self.next_fd;
        self.next_fd += 1;
        fd
    }

    /// The readiness cell for `fd`, whether it is an eventfd or an
    /// installed external source.
    fn source_of(&self, fd: u64) -> Option<ReadySource> {
        if let Some(efd) = self.eventfds.get(&fd) {
            return Some(ukevent::Pollable::ready_source(efd));
        }
        self.external.get(&fd).cloned()
    }
}

/// A POSIX process environment over a unikernel's subsystems.
pub struct PosixEnv {
    shim: SyscallShim,
    /// "User memory": buffer id → bytes. Syscall args carry buffer ids.
    buffers: Rc<RefCell<HashMap<u64, Vec<u8>>>>,
    next_buf: u64,
    vfs: Rc<RefCell<Vfs>>,
    events: Rc<RefCell<EventTable>>,
}

impl std::fmt::Debug for PosixEnv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PosixEnv")
            .field("registered", &self.shim.registered().len())
            .finish()
    }
}

impl PosixEnv {
    /// Builds a POSIX environment with a fresh ramfs root.
    pub fn new(tsc: &Tsc) -> Self {
        let mut vfs = Vfs::new();
        vfs.mount("/", Box::new(RamFs::new())).expect("mount ramfs");
        Self::with_vfs(tsc, vfs)
    }

    /// Builds a POSIX environment over an existing VFS.
    pub fn with_vfs(tsc: &Tsc, vfs: Vfs) -> Self {
        let vfs = Rc::new(RefCell::new(vfs));
        let buffers: Rc<RefCell<HashMap<u64, Vec<u8>>>> =
            Rc::new(RefCell::new(HashMap::new()));
        let events: Rc<RefCell<EventTable>> = Rc::new(RefCell::new(EventTable::default()));
        let mut shim = SyscallShim::new(SyscallMode::UnikraftNative, tsc);

        // open(path_buf, flags) → fd. O_CREAT (0x40) creates.
        {
            let vfs = vfs.clone();
            let bufs = buffers.clone();
            shim.register(
                2,
                Box::new(move |args| {
                    let path = match bufs.borrow().get(&args[0]) {
                        Some(b) => String::from_utf8_lossy(b).into_owned(),
                        None => return -i64::from(Errno::Inval.code()),
                    };
                    let creat = args.get(1).map(|f| f & 0x40 != 0).unwrap_or(false);
                    let r = if creat {
                        vfs.borrow_mut().create(&path)
                    } else {
                        vfs.borrow_mut().open(&path)
                    };
                    match r {
                        Ok(fd) => fd.0 as i64,
                        Err(e) => -i64::from(e.code()),
                    }
                }),
            );
        }
        // read(fd, buf, count) → n; bytes land in the buffer. Event fds
        // (fd >= EVENT_FD_BASE) read their 8-byte counter; VFS fds read
        // file bytes.
        {
            let vfs = vfs.clone();
            let bufs = buffers.clone();
            let ev = events.clone();
            shim.register(
                0,
                Box::new(move |args| {
                    if args[0] >= EVENT_FD_BASE {
                        let mut t = ev.borrow_mut();
                        let Some(efd) = t.eventfds.get_mut(&args[0]) else {
                            return -i64::from(Errno::BadF.code());
                        };
                        if (args[2] as usize) < 8 {
                            return -i64::from(Errno::Inval.code());
                        }
                        return match efd.read() {
                            Ok(v) => {
                                bufs.borrow_mut().insert(args[1], v.to_le_bytes().to_vec());
                                8
                            }
                            Err(e) => -i64::from(e.code()),
                        };
                    }
                    let fd = Fd(args[0] as usize);
                    let count = args[2] as usize;
                    match vfs.borrow_mut().read(fd, count) {
                        Ok(data) => {
                            let n = data.len() as i64;
                            bufs.borrow_mut().insert(args[1], data);
                            n
                        }
                        Err(e) => -i64::from(e.code()),
                    }
                }),
            );
        }
        // write(fd, buf, count) → n. Event fds add their 8-byte value.
        {
            let vfs = vfs.clone();
            let bufs = buffers.clone();
            let ev = events.clone();
            shim.register(
                1,
                Box::new(move |args| {
                    let data = match bufs.borrow().get(&args[1]) {
                        Some(b) => b.clone(),
                        None => return -i64::from(Errno::Inval.code()),
                    };
                    if args[0] >= EVENT_FD_BASE {
                        let mut t = ev.borrow_mut();
                        let Some(efd) = t.eventfds.get_mut(&args[0]) else {
                            return -i64::from(Errno::BadF.code());
                        };
                        if data.len() < 8 {
                            return -i64::from(Errno::Inval.code());
                        }
                        let v = u64::from_le_bytes(data[..8].try_into().expect("8 bytes"));
                        return match efd.write(v) {
                            Ok(()) => 8,
                            Err(e) => -i64::from(e.code()),
                        };
                    }
                    let fd = Fd(args[0] as usize);
                    let count = (args[2] as usize).min(data.len());
                    match vfs.borrow_mut().write(fd, &data[..count]) {
                        Ok(n) => n as i64,
                        Err(e) => -i64::from(e.code()),
                    }
                }),
            );
        }
        // close(fd): event table fds first, then VFS. Closing a watched
        // fd removes it from every epoll interest list, as Linux does on
        // the final close — otherwise a dead fd's frozen readiness would
        // generate spurious wakeups forever.
        {
            let vfs = vfs.clone();
            let ev = events.clone();
            shim.register(
                3,
                Box::new(move |args| {
                    if args[0] >= EVENT_FD_BASE {
                        let mut t = ev.borrow_mut();
                        let hit = t.epolls.remove(&args[0]).is_some()
                            || t.eventfds.remove(&args[0]).is_some()
                            || t.external.remove(&args[0]).is_some();
                        if hit {
                            for q in t.epolls.values_mut() {
                                let _ = q.ctl_del(args[0]);
                            }
                            return 0;
                        }
                        return -i64::from(Errno::BadF.code());
                    }
                    match vfs.borrow_mut().close(Fd(args[0] as usize)) {
                        Ok(()) => 0,
                        Err(e) => -i64::from(e.code()),
                    }
                }),
            );
        }
        // lseek(fd, offset, whence=SEEK_SET).
        {
            let vfs = vfs.clone();
            shim.register(
                8,
                Box::new(move |args| {
                    match vfs.borrow_mut().lseek(Fd(args[0] as usize), args[1]) {
                        Ok(off) => off as i64,
                        Err(e) => -i64::from(e.code()),
                    }
                }),
            );
        }
        // mkdir(path_buf).
        {
            let vfs = vfs.clone();
            let bufs = buffers.clone();
            shim.register(
                83,
                Box::new(move |args| {
                    let path = match bufs.borrow().get(&args[0]) {
                        Some(b) => String::from_utf8_lossy(b).into_owned(),
                        None => return -i64::from(Errno::Inval.code()),
                    };
                    match vfs.borrow_mut().mkdir(&path) {
                        Ok(()) => 0,
                        Err(e) => -i64::from(e.code()),
                    }
                }),
            );
        }
        // unlink(path_buf).
        {
            let vfs = vfs.clone();
            let bufs = buffers.clone();
            shim.register(
                87,
                Box::new(move |args| {
                    let path = match bufs.borrow().get(&args[0]) {
                        Some(b) => String::from_utf8_lossy(b).into_owned(),
                        None => return -i64::from(Errno::Inval.code()),
                    };
                    match vfs.borrow_mut().unlink(&path) {
                        Ok(()) => 0,
                        Err(e) => -i64::from(e.code()),
                    }
                }),
            );
        }
        // getpid: single-process unikernel → always 1.
        shim.register(39, Box::new(|_| 1));

        // --- ukevent: the epoll/eventfd family (§4.1's missing piece) --

        // eventfd2(initval, flags) → fd; eventfd(initval) is the
        // pre-flags entry point sharing the handler with flags pinned
        // to zero.
        for nr in [290u32, 284] {
            let ev = events.clone();
            shim.register(
                nr,
                Box::new(move |args| {
                    let initval = args.first().copied().unwrap_or(0);
                    let flags = if nr == 290 {
                        args.get(1).copied().unwrap_or(0) as u32
                    } else {
                        0
                    };
                    match EventFd::new(initval, flags) {
                        Ok(efd) => {
                            let mut t = ev.borrow_mut();
                            let fd = t.alloc_fd();
                            t.eventfds.insert(fd, efd);
                            fd as i64
                        }
                        Err(e) => -i64::from(e.code()),
                    }
                }),
            );
        }
        // epoll_create1(flags) → epfd; epoll_create(size) likewise (the
        // size hint has been ignored since Linux 2.6.8).
        for nr in [291u32, 213] {
            let ev = events.clone();
            shim.register(
                nr,
                Box::new(move |_args| {
                    let mut t = ev.borrow_mut();
                    let fd = t.alloc_fd();
                    t.epolls.insert(fd, EventQueue::new());
                    fd as i64
                }),
            );
        }
        // epoll_ctl(epfd, op, fd, events).
        {
            let ev = events.clone();
            shim.register(
                233,
                Box::new(move |args| {
                    if args.len() < 3 {
                        return -i64::from(Errno::Inval.code());
                    }
                    let (epfd, op, fd) = (args[0], args[1], args[2]);
                    let mask = EventMask(args.get(3).copied().unwrap_or(0) as u32);
                    let mut t = ev.borrow_mut();
                    // Look up the target's readiness cell before borrowing
                    // the epoll instance mutably.
                    let source = t.source_of(fd);
                    let Some(q) = t.epolls.get_mut(&epfd) else {
                        return -i64::from(Errno::BadF.code());
                    };
                    let r = match op {
                        EPOLL_CTL_ADD => match source {
                            Some(s) => q.ctl_add(fd, &s, mask),
                            None => Err(Errno::BadF),
                        },
                        EPOLL_CTL_MOD => q.ctl_mod(fd, mask),
                        EPOLL_CTL_DEL => q.ctl_del(fd),
                        _ => Err(Errno::Inval),
                    };
                    match r {
                        Ok(()) => 0,
                        Err(e) => -i64::from(e.code()),
                    }
                }),
            );
        }
        // epoll_wait(epfd, events_buf, maxevents, timeout): ready events
        // are serialized into the user buffer as packed 12-byte records
        // (u32 events, u64 data), the x86_64 `struct epoll_event` layout.
        // The shim itself never sleeps — a blocking wait is the
        // scheduler-integrated `EventQueue::wait` path, and a timed one
        // is `EventQueue::wait_until` with its deadline expired by a
        // timer wheel driving `fire_deadlines`.
        {
            let ev = events.clone();
            let bufs = buffers.clone();
            shim.register(
                232,
                Box::new(move |args| {
                    if args.len() < 3 {
                        return -i64::from(Errno::Inval.code());
                    }
                    // Linux: maxevents <= 0 is EINVAL.
                    if args[2] == 0 || args[2] > i32::MAX as u64 {
                        return -i64::from(Errno::Inval.code());
                    }
                    let mut t = ev.borrow_mut();
                    let Some(q) = t.epolls.get_mut(&args[0]) else {
                        return -i64::from(Errno::BadF.code());
                    };
                    let max = args[2] as usize;
                    let ready = q.poll_ready(max);
                    let mut blob = Vec::with_capacity(ready.len() * 12);
                    for e in &ready {
                        blob.extend_from_slice(&e.events.bits().to_le_bytes());
                        blob.extend_from_slice(&e.token.to_le_bytes());
                    }
                    bufs.borrow_mut().insert(args[1], blob);
                    ready.len() as i64
                }),
            );
        }

        PosixEnv {
            shim,
            buffers,
            next_buf: 1,
            vfs,
            events,
        }
    }

    /// Places bytes into "user memory", returning the buffer id to pass
    /// as a pointer argument.
    pub fn user_buf(&mut self, data: &[u8]) -> u64 {
        let id = self.next_buf;
        self.next_buf += 1;
        self.buffers.borrow_mut().insert(id, data.to_vec());
        id
    }

    /// Reads back a buffer a syscall filled.
    pub fn read_buf(&self, id: u64) -> Option<Vec<u8>> {
        self.buffers.borrow().get(&id).cloned()
    }

    /// Issues a syscall by number.
    pub fn syscall(&mut self, nr: u32, args: &[u64]) -> i64 {
        self.shim.invoke(nr, args)
    }

    /// The underlying shim (for stats and extra registrations).
    pub fn shim_mut(&mut self) -> &mut SyscallShim {
        &mut self.shim
    }

    /// Direct VFS access (shares state with the syscalls).
    pub fn vfs(&self) -> Rc<RefCell<Vfs>> {
        self.vfs.clone()
    }

    /// Installs an external readiness cell (e.g. a `uknetstack` socket's
    /// [`ReadySource`]) into the fd table, returning the fd to use with
    /// `epoll_ctl`. This is the unified-fd-table role a real unikernel's
    /// socket layer plays.
    pub fn install_source(&mut self, source: ReadySource) -> u64 {
        let mut t = self.events.borrow_mut();
        let fd = t.alloc_fd();
        t.external.insert(fd, source);
        fd
    }

    /// Runs `f` against the epoll instance behind `epfd` (tests, and
    /// scheduler glue that needs `wait`/`take_wakeups`).
    pub fn with_event_queue<R>(
        &mut self,
        epfd: u64,
        f: impl FnOnce(&mut EventQueue) -> R,
    ) -> Option<R> {
        let mut t = self.events.borrow_mut();
        t.epolls.get_mut(&epfd).map(f)
    }

    /// Decodes an `epoll_wait` result buffer back into (events, token)
    /// pairs — the inverse of the packed 12-byte record serialization.
    pub fn decode_epoll_events(buf: &[u8]) -> Vec<(EventMask, u64)> {
        buf.chunks_exact(12)
            .map(|c| {
                let events = EventMask(u32::from_le_bytes(c[..4].try_into().expect("4")));
                let token = u64::from_le_bytes(c[4..12].try_into().expect("8"));
                (events, token)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> PosixEnv {
        PosixEnv::new(&Tsc::new(3_600_000_000))
    }

    const O_CREAT: u64 = 0x40;

    #[test]
    fn open_write_read_close_via_syscalls() {
        let mut p = env();
        let path = p.user_buf(b"/notes.txt");
        let fd = p.syscall(2, &[path, O_CREAT]);
        assert!(fd >= 0, "open failed: {fd}");
        let payload = p.user_buf(b"written through the shim");
        assert_eq!(p.syscall(1, &[fd as u64, payload, 24]), 24);
        assert_eq!(p.syscall(8, &[fd as u64, 0]), 0); // lseek
        let out = p.user_buf(b"");
        assert_eq!(p.syscall(0, &[fd as u64, out, 100]), 24);
        assert_eq!(p.read_buf(out).unwrap(), b"written through the shim");
        assert_eq!(p.syscall(3, &[fd as u64]), 0);
        // Reading a closed fd fails with -EBADF.
        assert_eq!(p.syscall(0, &[fd as u64, out, 1]), -9);
    }

    #[test]
    fn open_missing_returns_negative_enoent() {
        let mut p = env();
        let path = p.user_buf(b"/ghost");
        assert_eq!(p.syscall(2, &[path, 0]), -2);
    }

    #[test]
    fn mkdir_and_unlink_via_syscalls() {
        let mut p = env();
        let dir = p.user_buf(b"/data");
        assert_eq!(p.syscall(83, &[dir]), 0);
        let path = p.user_buf(b"/data/f");
        let fd = p.syscall(2, &[path, O_CREAT]);
        assert!(fd >= 0);
        p.syscall(3, &[fd as u64]);
        assert_eq!(p.syscall(87, &[path]), 0);
        assert_eq!(p.syscall(2, &[path, 0]), -2, "unlinked");
    }

    #[test]
    fn syscalls_share_state_with_direct_vfs() {
        let mut p = env();
        // Create through the VFS directly...
        {
            let vfs = p.vfs();
            let mut vfs = vfs.borrow_mut();
            let fd = vfs.create("/direct").unwrap();
            vfs.write(fd, b"hi").unwrap();
            vfs.close(fd).unwrap();
        }
        // ...and see it through the syscall interface.
        let path = p.user_buf(b"/direct");
        let fd = p.syscall(2, &[path, 0]);
        assert!(fd >= 0);
        let out = p.user_buf(b"");
        assert_eq!(p.syscall(0, &[fd as u64, out, 10]), 2);
    }

    #[test]
    fn getpid_is_one() {
        let mut p = env();
        assert_eq!(p.syscall(39, &[]), 1);
    }

    #[test]
    fn unregistered_syscall_is_enosys() {
        let mut p = env();
        assert_eq!(p.syscall(57, &[]), -38); // fork
    }

    #[test]
    fn eventfd2_read_write_by_syscall_number() {
        let mut p = env();
        let fd = p.syscall(290, &[5, 0]); // eventfd2(5, 0)
        assert!(fd as u64 >= EVENT_FD_BASE, "event fd space: {fd}");
        // write(fd, buf, 8) adds to the counter.
        let add = p.user_buf(&7u64.to_le_bytes());
        assert_eq!(p.syscall(1, &[fd as u64, add, 8]), 8);
        // read(fd, buf, 8) returns the whole counter.
        let out = p.user_buf(b"");
        assert_eq!(p.syscall(0, &[fd as u64, out, 8]), 8);
        let bytes = p.read_buf(out).unwrap();
        assert_eq!(u64::from_le_bytes(bytes[..8].try_into().unwrap()), 12);
        // Empty counter reads EAGAIN.
        assert_eq!(p.syscall(0, &[fd as u64, out, 8]), -11);
        assert_eq!(p.syscall(3, &[fd as u64]), 0); // close
        assert_eq!(p.syscall(0, &[fd as u64, out, 8]), -9); // EBADF
    }

    #[test]
    fn eventfd_semaphore_flag_via_syscall() {
        let mut p = env();
        let fd = p.syscall(290, &[2, 1]) as u64; // EFD_SEMAPHORE
        let out = p.user_buf(b"");
        for _ in 0..2 {
            assert_eq!(p.syscall(0, &[fd, out, 8]), 8);
            let bytes = p.read_buf(out).unwrap();
            assert_eq!(u64::from_le_bytes(bytes[..8].try_into().unwrap()), 1);
        }
        assert_eq!(p.syscall(0, &[fd, out, 8]), -11);
    }

    #[test]
    fn epoll_family_by_syscall_number() {
        let mut p = env();
        let epfd = p.syscall(291, &[0]) as u64; // epoll_create1
        assert!(epfd >= EVENT_FD_BASE);
        let efd = p.syscall(290, &[0, 0]) as u64; // eventfd2
        // ADD with EPOLLIN interest.
        assert_eq!(
            p.syscall(233, &[epfd, EPOLL_CTL_ADD, efd, u64::from(EventMask::IN.bits())]),
            0
        );
        // Nothing ready yet.
        let evbuf = p.user_buf(b"");
        assert_eq!(p.syscall(232, &[epfd, evbuf, 8, 0]), 0);
        // Make the eventfd readable, then epoll_wait reports it.
        let add = p.user_buf(&1u64.to_le_bytes());
        assert_eq!(p.syscall(1, &[efd, add, 8]), 8);
        assert_eq!(p.syscall(232, &[epfd, evbuf, 8, 0]), 1);
        let events = PosixEnv::decode_epoll_events(&p.read_buf(evbuf).unwrap());
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].1, efd, "token is the fd");
        assert!(events[0].0.contains(EventMask::IN));
        // The live queue is reachable for scheduler glue and stats.
        let delivered = p.with_event_queue(epfd, |q| q.delivered()).unwrap();
        assert_eq!(delivered, 1);
        // DEL then wait is quiet again.
        assert_eq!(p.syscall(233, &[epfd, EPOLL_CTL_DEL, efd, 0]), 0);
        assert_eq!(p.syscall(232, &[epfd, evbuf, 8, 0]), 0);
    }

    #[test]
    fn epoll_ctl_errors_by_syscall_number() {
        let mut p = env();
        let epfd = p.syscall(291, &[0]) as u64;
        let efd = p.syscall(290, &[0, 0]) as u64;
        // Unknown target fd.
        assert_eq!(p.syscall(233, &[epfd, EPOLL_CTL_ADD, 0x9999, 1]), -9);
        // Unknown epfd.
        assert_eq!(p.syscall(233, &[0x9999, EPOLL_CTL_ADD, efd, 1]), -9);
        // Double add → EEXIST.
        assert_eq!(p.syscall(233, &[epfd, EPOLL_CTL_ADD, efd, 1]), 0);
        assert_eq!(p.syscall(233, &[epfd, EPOLL_CTL_ADD, efd, 1]), -17);
        // Bad op → EINVAL.
        assert_eq!(p.syscall(233, &[epfd, 99, efd, 1]), -22);
        // epoll_wait on a non-epoll fd → EBADF.
        assert_eq!(p.syscall(232, &[efd, 0, 8, 0]), -9);
    }

    #[test]
    fn external_sources_join_the_fd_table() {
        let mut p = env();
        let src = ReadySource::new();
        let fd = p.install_source(src.clone());
        let epfd = p.syscall(291, &[0]) as u64;
        assert_eq!(
            p.syscall(233, &[epfd, EPOLL_CTL_ADD, fd, u64::from(EventMask::IN.bits())]),
            0
        );
        let evbuf = p.user_buf(b"");
        assert_eq!(p.syscall(232, &[epfd, evbuf, 8, 0]), 0);
        src.raise(EventMask::IN);
        assert_eq!(p.syscall(232, &[epfd, evbuf, 8, 0]), 1);
        let events = PosixEnv::decode_epoll_events(&p.read_buf(evbuf).unwrap());
        assert_eq!(events[0].1, fd);
    }

    #[test]
    fn epoll_create_legacy_number_works_too() {
        let mut p = env();
        let epfd = p.syscall(213, &[16]); // epoll_create(size)
        assert!(epfd as u64 >= EVENT_FD_BASE);
    }

    #[test]
    fn closing_fd_removes_it_from_epoll_sets() {
        let mut p = env();
        let epfd = p.syscall(291, &[0]) as u64;
        let efd = p.syscall(290, &[1, 0]) as u64; // readable immediately
        assert_eq!(
            p.syscall(233, &[epfd, EPOLL_CTL_ADD, efd, u64::from(EventMask::IN.bits())]),
            0
        );
        let evbuf = p.user_buf(b"");
        assert_eq!(p.syscall(232, &[epfd, evbuf, 8, 0]), 1);
        // close() without EPOLL_CTL_DEL: Linux drops the registration on
        // final close; a frozen-ready dead fd must not wake us forever.
        assert_eq!(p.syscall(3, &[efd]), 0);
        assert_eq!(p.syscall(232, &[epfd, evbuf, 8, 0]), 0);
    }

    #[test]
    fn epoll_wait_zero_maxevents_is_einval() {
        let mut p = env();
        let epfd = p.syscall(291, &[0]) as u64;
        let evbuf = p.user_buf(b"");
        assert_eq!(p.syscall(232, &[epfd, evbuf, 0, 0]), -22);
    }

    #[test]
    fn legacy_eventfd_284_ignores_flags_arg() {
        let mut p = env();
        // eventfd(2) has no flags parameter; stray bits must not make
        // the counter a semaphore.
        let fd = p.syscall(284, &[2, 1]) as u64;
        let out = p.user_buf(b"");
        assert_eq!(p.syscall(0, &[fd, out, 8]), 8);
        let bytes = p.read_buf(out).unwrap();
        assert_eq!(
            u64::from_le_bytes(bytes[..8].try_into().unwrap()),
            2,
            "whole counter, not a semaphore decrement"
        );
    }
}
