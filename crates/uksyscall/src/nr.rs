//! Syscall numbers (x86_64 Linux ABI) and Unikraft's supported set.
//!
//! The supported set is taken square-by-square from the paper's Figure 5
//! heatmap annotation — the numbered squares are the syscalls Unikraft
//! implements, and they sum to exactly the 146 the paper claims in §4.1.

use std::sync::LazyLock;

/// x86_64 syscall numbers for the names that appear in our application
/// requirement database and micro-libraries.
pub static SYSCALL_TABLE: &[(u32, &str)] = &[
    (0, "read"),
    (1, "write"),
    (2, "open"),
    (3, "close"),
    (4, "stat"),
    (5, "fstat"),
    (6, "lstat"),
    (7, "poll"),
    (8, "lseek"),
    (9, "mmap"),
    (10, "mprotect"),
    (11, "munmap"),
    (12, "brk"),
    (13, "rt_sigaction"),
    (14, "rt_sigprocmask"),
    (15, "rt_sigreturn"),
    (16, "ioctl"),
    (17, "pread64"),
    (18, "pwrite64"),
    (19, "readv"),
    (20, "writev"),
    (21, "access"),
    (22, "pipe"),
    (23, "select"),
    (24, "sched_yield"),
    (25, "mremap"),
    (26, "msync"),
    (27, "mincore"),
    (28, "madvise"),
    (29, "shmget"),
    (30, "shmat"),
    (31, "shmctl"),
    (32, "dup"),
    (33, "dup2"),
    (34, "pause"),
    (35, "nanosleep"),
    (36, "getitimer"),
    (37, "alarm"),
    (38, "setitimer"),
    (39, "getpid"),
    (40, "sendfile"),
    (41, "socket"),
    (42, "connect"),
    (43, "accept"),
    (44, "sendto"),
    (45, "recvfrom"),
    (46, "sendmsg"),
    (47, "recvmsg"),
    (48, "shutdown"),
    (49, "bind"),
    (50, "listen"),
    (51, "getsockname"),
    (52, "getpeername"),
    (53, "socketpair"),
    (54, "setsockopt"),
    (55, "getsockopt"),
    (56, "clone"),
    (57, "fork"),
    (58, "vfork"),
    (59, "execve"),
    (60, "exit"),
    (61, "wait4"),
    (62, "kill"),
    (63, "uname"),
    (64, "semget"),
    (65, "semop"),
    (66, "semctl"),
    (67, "shmdt"),
    (68, "msgget"),
    (69, "msgsnd"),
    (70, "msgrcv"),
    (71, "msgctl"),
    (72, "fcntl"),
    (73, "flock"),
    (74, "fsync"),
    (75, "fdatasync"),
    (76, "truncate"),
    (77, "ftruncate"),
    (78, "getdents"),
    (79, "getcwd"),
    (80, "chdir"),
    (81, "fchdir"),
    (82, "rename"),
    (83, "mkdir"),
    (84, "rmdir"),
    (85, "creat"),
    (86, "link"),
    (87, "unlink"),
    (88, "symlink"),
    (89, "readlink"),
    (90, "chmod"),
    (91, "fchmod"),
    (92, "chown"),
    (93, "fchown"),
    (94, "lchown"),
    (95, "umask"),
    (96, "gettimeofday"),
    (97, "getrlimit"),
    (98, "getrusage"),
    (99, "sysinfo"),
    (100, "times"),
    (101, "ptrace"),
    (102, "getuid"),
    (103, "syslog"),
    (104, "getgid"),
    (105, "setuid"),
    (106, "setgid"),
    (107, "geteuid"),
    (108, "getegid"),
    (109, "setpgid"),
    (110, "getppid"),
    (111, "getpgrp"),
    (112, "setsid"),
    (113, "setreuid"),
    (114, "setregid"),
    (115, "getgroups"),
    (116, "setgroups"),
    (117, "setresuid"),
    (118, "getresuid"),
    (119, "setresgid"),
    (120, "getresgid"),
    (121, "getpgid"),
    (122, "setfsuid"),
    (123, "setfsgid"),
    (124, "getsid"),
    (125, "capget"),
    (126, "capset"),
    (127, "rt_sigpending"),
    (128, "rt_sigtimedwait"),
    (130, "rt_sigsuspend"),
    (131, "sigaltstack"),
    (132, "utime"),
    (133, "mknod"),
    (137, "statfs"),
    (138, "fstatfs"),
    (140, "getpriority"),
    (141, "setpriority"),
    (145, "sched_getscheduler"),
    (146, "sched_get_priority_max"),
    (147, "sched_get_priority_min"),
    (157, "prctl"),
    (158, "arch_prctl"),
    (160, "setrlimit"),
    (161, "chroot"),
    (162, "sync"),
    (165, "mount"),
    (166, "umount2"),
    (170, "sethostname"),
    (186, "gettid"),
    (200, "tkill"),
    (201, "time"),
    (202, "futex"),
    (203, "sched_setaffinity"),
    (204, "sched_getaffinity"),
    (205, "set_thread_area"),
    (211, "get_thread_area"),
    (213, "epoll_create"),
    (217, "getdents64"),
    (218, "set_tid_address"),
    (228, "clock_gettime"),
    (229, "clock_getres"),
    (230, "clock_nanosleep"),
    (231, "exit_group"),
    (232, "epoll_wait"),
    (233, "epoll_ctl"),
    (235, "utimes"),
    (247, "waitid"),
    (257, "openat"),
    (258, "mkdirat"),
    (261, "futimesat"),
    (262, "newfstatat"),
    (263, "unlinkat"),
    (269, "faccessat"),
    (271, "ppoll"),
    (273, "set_robust_list"),
    (280, "utimensat"),
    (281, "epoll_pwait"),
    (284, "eventfd"),
    (285, "fallocate"),
    (288, "accept4"),
    (290, "eventfd2"),
    (291, "epoll_create1"),
    (292, "dup3"),
    (293, "pipe2"),
    (295, "preadv"),
    (296, "pwritev"),
    (299, "recvmmsg"),
    (302, "prlimit64"),
    (307, "sendmmsg"),
    (314, "sched_setattr"),
    (318, "getrandom"),
];

/// Looks up a syscall name by number.
pub fn syscall_name(nr: u32) -> Option<&'static str> {
    SYSCALL_TABLE
        .iter()
        .find(|(n, _)| *n == nr)
        .map(|(_, name)| *name)
}

/// Looks up a syscall number by name.
pub fn syscall_nr(name: &str) -> Option<u32> {
    SYSCALL_TABLE
        .iter()
        .find(|(_, n)| *n == name)
        .map(|(nr, _)| *nr)
}

/// The 146 syscalls Unikraft implements (paper Figure 5, square by
/// square; the ranges below sum to exactly 146).
pub static UNIKRAFT_SUPPORTED: LazyLock<Vec<u32>> = LazyLock::new(|| {
    let mut v: Vec<u32> = Vec::with_capacity(146);
    v.extend(0..=24); // read .. sched_yield
    v.extend([26, 28]);
    v.extend([32, 33, 34, 35, 37, 38, 39, 40, 41, 42, 43, 44]);
    v.extend(45..=56); // recvfrom .. clone
    v.push(59); // execve (stubbed)
    v.extend([60, 61, 62, 63, 72, 73, 74]);
    v.extend(75..=89); // fdatasync .. readlink
    v.extend([90, 91, 92, 93, 95, 96, 97, 98, 99, 100, 102, 103, 104]);
    v.extend(105..=119); // setuid .. setresgid
    v.extend([120, 121, 124, 132, 133]);
    v.extend([140, 141]);
    v.extend([157, 158, 160, 161]);
    v.extend([165, 166, 170]);
    v.extend([201, 202, 204, 205]);
    v.extend([211, 213, 217, 218]);
    v.extend([228, 230, 231, 232, 233, 235]);
    v.extend([257, 261, 269]);
    v.extend([271, 273, 280, 281]);
    v.extend([285, 288, 291, 292, 293, 295, 296]);
    v.extend([302, 314]);
    debug_assert_eq!(v.len(), 146);
    v
});

/// The syscalls *this* reproduction implements: the paper's Figure 5 set
/// plus the epoll/eventfd family that §4.1 listed as work in progress —
/// `ukevent` now provides `eventfd` (284) and `eventfd2` (290), and the
/// epoll numbers (213/232/233/291) that were already in the Figure 5 set
/// are backed by real `EventQueue` handlers in `core::posix`.
pub static UNIKRAFT_RS_SUPPORTED: LazyLock<Vec<u32>> = LazyLock::new(|| {
    let mut v = UNIKRAFT_SUPPORTED.clone();
    for nr in [284, 290] {
        if !v.contains(&nr) {
            v.push(nr);
        }
    }
    v.sort_unstable();
    v
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_no_duplicate_numbers() {
        let mut nrs: Vec<u32> = SYSCALL_TABLE.iter().map(|(n, _)| *n).collect();
        nrs.sort_unstable();
        let before = nrs.len();
        nrs.dedup();
        assert_eq!(nrs.len(), before);
    }

    #[test]
    fn supported_set_is_sorted_and_unique() {
        let s = &*UNIKRAFT_SUPPORTED;
        for w in s.windows(2) {
            assert!(w[0] < w[1], "{} !< {}", w[0], w[1]);
        }
    }

    #[test]
    fn supported_includes_core_io() {
        for name in ["read", "write", "close", "recvmsg", "sendmsg"] {
            let nr = syscall_nr(name).unwrap();
            assert!(UNIKRAFT_SUPPORTED.contains(&nr), "{name} missing");
        }
    }

    #[test]
    fn epoll_wait_supported_eventfd_not() {
        // History (§4.1): the paper's Figure 5 snapshot listed
        // epoll/eventfd as work in progress — eventfd (284) was absent
        // while the epoll family largely existed. The `ukevent` crate
        // has since closed the gap: this repo's own coverage includes
        // the whole epoll family *and* both eventfd entry points.
        assert!(UNIKRAFT_SUPPORTED.contains(&232));
        assert!(!UNIKRAFT_SUPPORTED.contains(&284));
        for nr in [213, 232, 233, 291, 284, 290] {
            assert!(
                UNIKRAFT_RS_SUPPORTED.contains(&nr),
                "syscall {nr} should be supported with ukevent"
            );
        }
        assert_eq!(
            UNIKRAFT_RS_SUPPORTED.len(),
            UNIKRAFT_SUPPORTED.len() + 2,
            "exactly eventfd + eventfd2 were added"
        );
    }

    #[test]
    fn rs_supported_is_sorted_superset() {
        for w in UNIKRAFT_RS_SUPPORTED.windows(2) {
            assert!(w[0] < w[1]);
        }
        for nr in UNIKRAFT_SUPPORTED.iter() {
            assert!(UNIKRAFT_RS_SUPPORTED.contains(nr));
        }
    }

    #[test]
    fn name_lookup_roundtrips() {
        for (nr, name) in SYSCALL_TABLE {
            assert_eq!(syscall_nr(name), Some(*nr));
            assert_eq!(syscall_name(*nr), Some(*name));
        }
    }
}
