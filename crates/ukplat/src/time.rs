//! Virtual time-stamp counter and clock utilities.
//!
//! Guest-side computation in this reproduction is real Rust code measured
//! with [`std::time::Instant`]; host-side effects (traps, DMA, VMM work)
//! cannot be physically incurred, so they are *charged* to a shared virtual
//! TSC. Experiments that mix both report them separately (see
//! `EXPERIMENTS.md`).

use std::cell::Cell;
use std::rc::Rc;
use std::time::Instant;

/// A shareable virtual time-stamp counter.
///
/// Cloning a [`Tsc`] yields a handle onto the same counter, mirroring how
/// every device on a platform reads the same hardware TSC.
///
/// # Examples
///
/// ```
/// use ukplat::time::Tsc;
///
/// let tsc = Tsc::new(3_600_000_000);
/// let h = tsc.clone();
/// tsc.advance(3_600); // 3600 cycles at 3.6 GHz = 1 us
/// assert_eq!(h.now_cycles(), 3_600);
/// assert_eq!(h.cycles_to_ns(h.now_cycles()), 1_000);
/// ```
#[derive(Debug, Clone)]
pub struct Tsc {
    cycles: Rc<Cell<u64>>,
    freq_hz: u64,
}

impl Tsc {
    /// Creates a counter ticking at `freq_hz` cycles per second.
    ///
    /// # Panics
    ///
    /// Panics if `freq_hz` is zero.
    pub fn new(freq_hz: u64) -> Self {
        assert!(freq_hz > 0, "TSC frequency must be non-zero");
        Tsc {
            cycles: Rc::new(Cell::new(0)),
            freq_hz,
        }
    }

    /// Current virtual cycle count.
    pub fn now_cycles(&self) -> u64 {
        self.cycles.get()
    }

    /// Advances the counter by `cycles`.
    pub fn advance(&self, cycles: u64) {
        self.cycles.set(self.cycles.get().saturating_add(cycles));
    }

    /// Advances the counter by `ns` nanoseconds worth of cycles.
    pub fn advance_ns(&self, ns: u64) {
        self.advance(self.ns_to_cycles(ns));
    }

    /// Converts a cycle count to nanoseconds at this counter's frequency.
    pub fn cycles_to_ns(&self, cycles: u64) -> u64 {
        // Split to avoid overflow for large cycle counts.
        let secs = cycles / self.freq_hz;
        let rem = cycles % self.freq_hz;
        secs * 1_000_000_000 + rem * 1_000_000_000 / self.freq_hz
    }

    /// Converts nanoseconds to cycles at this counter's frequency.
    pub fn ns_to_cycles(&self, ns: u64) -> u64 {
        let secs = ns / 1_000_000_000;
        let rem = ns % 1_000_000_000;
        secs * self.freq_hz + rem * self.freq_hz / 1_000_000_000
    }

    /// The counter frequency in Hz.
    pub fn freq_hz(&self) -> u64 {
        self.freq_hz
    }

    /// Resets the counter to zero. Used between benchmark iterations.
    pub fn reset(&self) {
        self.cycles.set(0);
    }
}

/// A stopwatch combining real wall-clock time with virtual TSC time.
///
/// `elapsed_ns` reports the *sum*: real guest computation plus charged
/// host-side costs. This is the quantity every figure harness reports.
#[derive(Debug)]
pub struct Stopwatch {
    start_real: Instant,
    start_virtual: u64,
    tsc: Tsc,
}

impl Stopwatch {
    /// Starts timing against the given virtual counter.
    pub fn start(tsc: &Tsc) -> Self {
        Stopwatch {
            start_real: Instant::now(),
            start_virtual: tsc.now_cycles(),
            tsc: tsc.clone(),
        }
    }

    /// Nanoseconds of real wall-clock time since start.
    pub fn real_ns(&self) -> u64 {
        self.start_real.elapsed().as_nanos() as u64
    }

    /// Nanoseconds of virtual (charged) time since start.
    pub fn virtual_ns(&self) -> u64 {
        self.tsc
            .cycles_to_ns(self.tsc.now_cycles() - self.start_virtual)
    }

    /// Combined real + virtual nanoseconds since start.
    pub fn elapsed_ns(&self) -> u64 {
        self.real_ns() + self.virtual_ns()
    }
}

/// Monotonic clock exposed to guests (`clock_gettime` backing).
///
/// Reads cost one TSC sample; under para-virtual clocks (kvm-clock,
/// Xen shared info page) no trap is required, which is why reads are cheap.
#[derive(Debug, Clone)]
pub struct MonotonicClock {
    tsc: Tsc,
}

impl MonotonicClock {
    /// Creates a clock over the platform TSC.
    pub fn new(tsc: &Tsc) -> Self {
        MonotonicClock { tsc: tsc.clone() }
    }

    /// Current monotonic time in nanoseconds (virtual).
    pub fn now_ns(&self) -> u64 {
        self.tsc.cycles_to_ns(self.tsc.now_cycles())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsc_advance_and_read() {
        let tsc = Tsc::new(1_000_000_000);
        assert_eq!(tsc.now_cycles(), 0);
        tsc.advance(123);
        assert_eq!(tsc.now_cycles(), 123);
    }

    #[test]
    fn tsc_clone_shares_counter() {
        let a = Tsc::new(1_000_000_000);
        let b = a.clone();
        a.advance(10);
        b.advance(5);
        assert_eq!(a.now_cycles(), 15);
        assert_eq!(b.now_cycles(), 15);
    }

    #[test]
    fn cycle_ns_roundtrip_at_1ghz() {
        let tsc = Tsc::new(1_000_000_000);
        assert_eq!(tsc.cycles_to_ns(1_000), 1_000);
        assert_eq!(tsc.ns_to_cycles(1_000), 1_000);
    }

    #[test]
    fn cycle_ns_conversion_at_3_6ghz() {
        let tsc = Tsc::new(3_600_000_000);
        // 3600 cycles at 3.6 GHz is exactly 1000 ns.
        assert_eq!(tsc.cycles_to_ns(3_600), 1_000);
        assert_eq!(tsc.ns_to_cycles(1_000), 3_600);
    }

    #[test]
    fn conversion_no_overflow_for_large_values() {
        let tsc = Tsc::new(3_600_000_000);
        // One hour of cycles must not overflow.
        let hour_cycles = 3_600_000_000u64 * 3_600;
        let ns = tsc.cycles_to_ns(hour_cycles);
        assert_eq!(ns, 3_600 * 1_000_000_000);
    }

    #[test]
    fn advance_saturates() {
        let tsc = Tsc::new(1_000);
        tsc.advance(u64::MAX);
        tsc.advance(10);
        assert_eq!(tsc.now_cycles(), u64::MAX);
    }

    #[test]
    fn stopwatch_tracks_virtual_time() {
        let tsc = Tsc::new(1_000_000_000);
        let sw = Stopwatch::start(&tsc);
        tsc.advance(500);
        assert_eq!(sw.virtual_ns(), 500);
        assert!(sw.elapsed_ns() >= 500);
    }

    #[test]
    fn monotonic_clock_follows_tsc() {
        let tsc = Tsc::new(1_000_000_000);
        let clk = MonotonicClock::new(&tsc);
        assert_eq!(clk.now_ns(), 0);
        tsc.advance_ns(42);
        assert_eq!(clk.now_ns(), 42);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_frequency_panics() {
        let _ = Tsc::new(0);
    }
}
