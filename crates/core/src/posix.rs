//! The POSIX compatibility layer: syscalls backed by real subsystems.
//!
//! §4 of the paper: "each library that implements a system call handler
//! registers it, via a macro, with this micro-library" — `vfscore`
//! registers the file syscalls, `posix-process` the process ones, and
//! so on. This module performs those registrations: it binds a
//! [`SyscallShim`] to a live [`Vfs`], so that invoking `open`/`read`/
//! `write`/`close`/`lseek` *by syscall number* actually performs
//! filesystem operations — at function-call cost, which is the whole
//! point of the shim.
//!
//! Since syscall handlers pass raw `u64` arguments, the layer keeps an
//! argument-translation table mapping "user pointers" to byte buffers,
//! the role the single address space plays in a real unikernel.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use ukplat::time::Tsc;
use ukplat::Errno;
use uksyscall::shim::{SyscallMode, SyscallShim};
use ukvfs::vfscore::Fd;
use ukvfs::{RamFs, Vfs};

/// A POSIX process environment over a unikernel's subsystems.
pub struct PosixEnv {
    shim: SyscallShim,
    /// "User memory": buffer id → bytes. Syscall args carry buffer ids.
    buffers: Rc<RefCell<HashMap<u64, Vec<u8>>>>,
    next_buf: u64,
    vfs: Rc<RefCell<Vfs>>,
}

impl std::fmt::Debug for PosixEnv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PosixEnv")
            .field("registered", &self.shim.registered().len())
            .finish()
    }
}

impl PosixEnv {
    /// Builds a POSIX environment with a fresh ramfs root.
    pub fn new(tsc: &Tsc) -> Self {
        let mut vfs = Vfs::new();
        vfs.mount("/", Box::new(RamFs::new())).expect("mount ramfs");
        Self::with_vfs(tsc, vfs)
    }

    /// Builds a POSIX environment over an existing VFS.
    pub fn with_vfs(tsc: &Tsc, vfs: Vfs) -> Self {
        let vfs = Rc::new(RefCell::new(vfs));
        let buffers: Rc<RefCell<HashMap<u64, Vec<u8>>>> =
            Rc::new(RefCell::new(HashMap::new()));
        let mut shim = SyscallShim::new(SyscallMode::UnikraftNative, tsc);

        // open(path_buf, flags) → fd. O_CREAT (0x40) creates.
        {
            let vfs = vfs.clone();
            let bufs = buffers.clone();
            shim.register(
                2,
                Box::new(move |args| {
                    let path = match bufs.borrow().get(&args[0]) {
                        Some(b) => String::from_utf8_lossy(b).into_owned(),
                        None => return -i64::from(Errno::Inval.code()),
                    };
                    let creat = args.get(1).map(|f| f & 0x40 != 0).unwrap_or(false);
                    let r = if creat {
                        vfs.borrow_mut().create(&path)
                    } else {
                        vfs.borrow_mut().open(&path)
                    };
                    match r {
                        Ok(fd) => fd.0 as i64,
                        Err(e) => -i64::from(e.code()),
                    }
                }),
            );
        }
        // read(fd, buf, count) → n; bytes land in the buffer.
        {
            let vfs = vfs.clone();
            let bufs = buffers.clone();
            shim.register(
                0,
                Box::new(move |args| {
                    let fd = Fd(args[0] as usize);
                    let count = args[2] as usize;
                    match vfs.borrow_mut().read(fd, count) {
                        Ok(data) => {
                            let n = data.len() as i64;
                            bufs.borrow_mut().insert(args[1], data);
                            n
                        }
                        Err(e) => -i64::from(e.code()),
                    }
                }),
            );
        }
        // write(fd, buf, count) → n.
        {
            let vfs = vfs.clone();
            let bufs = buffers.clone();
            shim.register(
                1,
                Box::new(move |args| {
                    let fd = Fd(args[0] as usize);
                    let data = match bufs.borrow().get(&args[1]) {
                        Some(b) => b.clone(),
                        None => return -i64::from(Errno::Inval.code()),
                    };
                    let count = (args[2] as usize).min(data.len());
                    match vfs.borrow_mut().write(fd, &data[..count]) {
                        Ok(n) => n as i64,
                        Err(e) => -i64::from(e.code()),
                    }
                }),
            );
        }
        // close(fd).
        {
            let vfs = vfs.clone();
            shim.register(
                3,
                Box::new(move |args| {
                    match vfs.borrow_mut().close(Fd(args[0] as usize)) {
                        Ok(()) => 0,
                        Err(e) => -i64::from(e.code()),
                    }
                }),
            );
        }
        // lseek(fd, offset, whence=SEEK_SET).
        {
            let vfs = vfs.clone();
            shim.register(
                8,
                Box::new(move |args| {
                    match vfs.borrow_mut().lseek(Fd(args[0] as usize), args[1]) {
                        Ok(off) => off as i64,
                        Err(e) => -i64::from(e.code()),
                    }
                }),
            );
        }
        // mkdir(path_buf).
        {
            let vfs = vfs.clone();
            let bufs = buffers.clone();
            shim.register(
                83,
                Box::new(move |args| {
                    let path = match bufs.borrow().get(&args[0]) {
                        Some(b) => String::from_utf8_lossy(b).into_owned(),
                        None => return -i64::from(Errno::Inval.code()),
                    };
                    match vfs.borrow_mut().mkdir(&path) {
                        Ok(()) => 0,
                        Err(e) => -i64::from(e.code()),
                    }
                }),
            );
        }
        // unlink(path_buf).
        {
            let vfs = vfs.clone();
            let bufs = buffers.clone();
            shim.register(
                87,
                Box::new(move |args| {
                    let path = match bufs.borrow().get(&args[0]) {
                        Some(b) => String::from_utf8_lossy(b).into_owned(),
                        None => return -i64::from(Errno::Inval.code()),
                    };
                    match vfs.borrow_mut().unlink(&path) {
                        Ok(()) => 0,
                        Err(e) => -i64::from(e.code()),
                    }
                }),
            );
        }
        // getpid: single-process unikernel → always 1.
        shim.register(39, Box::new(|_| 1));

        PosixEnv {
            shim,
            buffers,
            next_buf: 1,
            vfs,
        }
    }

    /// Places bytes into "user memory", returning the buffer id to pass
    /// as a pointer argument.
    pub fn user_buf(&mut self, data: &[u8]) -> u64 {
        let id = self.next_buf;
        self.next_buf += 1;
        self.buffers.borrow_mut().insert(id, data.to_vec());
        id
    }

    /// Reads back a buffer a syscall filled.
    pub fn read_buf(&self, id: u64) -> Option<Vec<u8>> {
        self.buffers.borrow().get(&id).cloned()
    }

    /// Issues a syscall by number.
    pub fn syscall(&mut self, nr: u32, args: &[u64]) -> i64 {
        self.shim.invoke(nr, args)
    }

    /// The underlying shim (for stats and extra registrations).
    pub fn shim_mut(&mut self) -> &mut SyscallShim {
        &mut self.shim
    }

    /// Direct VFS access (shares state with the syscalls).
    pub fn vfs(&self) -> Rc<RefCell<Vfs>> {
        self.vfs.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> PosixEnv {
        PosixEnv::new(&Tsc::new(3_600_000_000))
    }

    const O_CREAT: u64 = 0x40;

    #[test]
    fn open_write_read_close_via_syscalls() {
        let mut p = env();
        let path = p.user_buf(b"/notes.txt");
        let fd = p.syscall(2, &[path, O_CREAT]);
        assert!(fd >= 0, "open failed: {fd}");
        let payload = p.user_buf(b"written through the shim");
        assert_eq!(p.syscall(1, &[fd as u64, payload, 24]), 24);
        assert_eq!(p.syscall(8, &[fd as u64, 0]), 0); // lseek
        let out = p.user_buf(b"");
        assert_eq!(p.syscall(0, &[fd as u64, out, 100]), 24);
        assert_eq!(p.read_buf(out).unwrap(), b"written through the shim");
        assert_eq!(p.syscall(3, &[fd as u64]), 0);
        // Reading a closed fd fails with -EBADF.
        assert_eq!(p.syscall(0, &[fd as u64, out, 1]), -9);
    }

    #[test]
    fn open_missing_returns_negative_enoent() {
        let mut p = env();
        let path = p.user_buf(b"/ghost");
        assert_eq!(p.syscall(2, &[path, 0]), -2);
    }

    #[test]
    fn mkdir_and_unlink_via_syscalls() {
        let mut p = env();
        let dir = p.user_buf(b"/data");
        assert_eq!(p.syscall(83, &[dir]), 0);
        let path = p.user_buf(b"/data/f");
        let fd = p.syscall(2, &[path, O_CREAT]);
        assert!(fd >= 0);
        p.syscall(3, &[fd as u64]);
        assert_eq!(p.syscall(87, &[path]), 0);
        assert_eq!(p.syscall(2, &[path, 0]), -2, "unlinked");
    }

    #[test]
    fn syscalls_share_state_with_direct_vfs() {
        let mut p = env();
        // Create through the VFS directly...
        {
            let vfs = p.vfs();
            let mut vfs = vfs.borrow_mut();
            let fd = vfs.create("/direct").unwrap();
            vfs.write(fd, b"hi").unwrap();
            vfs.close(fd).unwrap();
        }
        // ...and see it through the syscall interface.
        let path = p.user_buf(b"/direct");
        let fd = p.syscall(2, &[path, 0]);
        assert!(fd >= 0);
        let out = p.user_buf(b"");
        assert_eq!(p.syscall(0, &[fd as u64, out, 10]), 2);
    }

    #[test]
    fn getpid_is_one() {
        let mut p = env();
        assert_eq!(p.syscall(39, &[]), 1);
    }

    #[test]
    fn unregistered_syscall_is_enosys() {
        let mut p = env();
        assert_eq!(p.syscall(57, &[]), -38); // fork
    }
}
