//! The staged boot sequence.
//!
//! Reproduces `ukboot`'s flow: VMM setup (modelled), then inside the
//! guest — memory-region discovery, paging, allocator init, IRQ setup,
//! per-library constructors, driver probes — all real code, individually
//! timed so Figure 14's stacked per-library breakdown can be regenerated.

use std::time::Instant;

use ukalloc::registry::AllocId;
use ukalloc::{AllocBackend, AllocRegistry};
use ukplat::memregion::RegionKind;
use ukplat::vmm::VmmKind;
use ukplat::{Errno, Platform, Result};

use crate::ctors::{CtorPriority, CtorTable};
use crate::paging::{boot_paging, PageTables, PagingMode};

/// Configuration of a unikernel boot (the Kconfig choices that matter to
/// boot time).
#[derive(Debug, Clone)]
pub struct BootConfig {
    /// Application name (for reports).
    pub app: String,
    /// Which VMM hosts the guest.
    pub vmm: VmmKind,
    /// Guest RAM in bytes.
    pub ram_bytes: u64,
    /// Paging mode (Fig 21).
    pub paging: PagingMode,
    /// Allocator backend for the main heap (Fig 14).
    pub allocator: AllocBackend,
    /// Number of virtio NICs to attach/probe.
    pub nics: u32,
    /// Number of block devices.
    pub blks: u32,
    /// Number of 9pfs shares.
    pub p9_shares: u32,
}

impl BootConfig {
    /// Minimal hello-world configuration on the given VMM.
    pub fn hello(vmm: VmmKind) -> Self {
        BootConfig {
            app: "helloworld".into(),
            vmm,
            ram_bytes: 8 * 1024 * 1024,
            paging: PagingMode::Static,
            allocator: AllocBackend::BootAlloc,
            nics: 0,
            blks: 0,
            p9_shares: 0,
        }
    }

    /// nginx-like configuration (one NIC, ramfs, general allocator).
    pub fn nginx(vmm: VmmKind, allocator: AllocBackend) -> Self {
        BootConfig {
            app: "nginx".into(),
            vmm,
            ram_bytes: 16 * 1024 * 1024,
            paging: PagingMode::Static,
            allocator,
            nics: 1,
            blks: 0,
            p9_shares: 0,
        }
    }
}

/// One named boot stage and its measured duration.
#[derive(Debug, Clone)]
pub struct BootStage {
    /// Stage/micro-library name (e.g. "alloc", "virtio", "plat").
    pub name: String,
    /// Real guest-side nanoseconds spent.
    pub ns: u64,
}

/// The result of a boot: per-stage breakdown plus totals.
#[derive(Debug, Clone)]
pub struct BootReport {
    /// App that booted.
    pub app: String,
    /// VMM model used.
    pub vmm: VmmKind,
    /// VMM-side setup time (modelled), ns.
    pub vmm_ns: u64,
    /// Guest-side boot time (measured), ns.
    pub guest_ns: u64,
    /// Per-stage breakdown of `guest_ns`.
    pub stages: Vec<BootStage>,
}

impl BootReport {
    /// Total boot time: VMM + guest.
    pub fn total_ns(&self) -> u64 {
        self.vmm_ns + self.guest_ns
    }

    /// Duration of a named stage, if present.
    pub fn stage_ns(&self, name: &str) -> Option<u64> {
        self.stages.iter().find(|s| s.name == name).map(|s| s.ns)
    }
}

/// Extra per-library init work to run during boot (driver probes,
/// filesystem mounts, the app's own constructors).
type StageFn = Box<dyn FnMut(&Platform, &mut AllocRegistry) -> Result<()>>;

/// Drives a configurable boot and produces a [`BootReport`].
pub struct BootSequence {
    config: BootConfig,
    extra_stages: Vec<(String, StageFn)>,
    ctors: CtorTable,
    /// Artifacts available after `run`.
    registry: Option<AllocRegistry>,
    heap_id: Option<AllocId>,
    page_tables: Option<PageTables>,
    platform: Option<Platform>,
}

impl std::fmt::Debug for BootSequence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BootSequence")
            .field("config", &self.config)
            .field("extra_stages", &self.extra_stages.len())
            .finish()
    }
}

impl BootSequence {
    /// Creates a sequence for `config`.
    pub fn new(config: BootConfig) -> Self {
        BootSequence {
            config,
            extra_stages: Vec::new(),
            ctors: CtorTable::new(),
            registry: None,
            heap_id: None,
            page_tables: None,
            platform: None,
        }
    }

    /// Adds a named library-init stage, run after core init in
    /// registration order.
    pub fn add_stage(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&Platform, &mut AllocRegistry) -> Result<()> + 'static,
    ) -> &mut Self {
        self.extra_stages.push((name.into(), Box::new(f)));
        self
    }

    /// Access to the constructor table for pre-boot registration.
    pub fn ctors_mut(&mut self) -> &mut CtorTable {
        &mut self.ctors
    }

    /// Runs the boot, consuming the configured stages.
    pub fn run(&mut self) -> Result<BootReport> {
        let cfg = self.config.clone();
        let mut stages = Vec::new();

        // --- VMM side (modelled) -------------------------------------
        let platform = Platform::with_memory(cfg.vmm, cfg.ram_bytes);
        let vmm_ns = platform
            .vmm()
            .setup_ns(cfg.nics, cfg.blks, cfg.p9_shares);

        // --- Guest side (real, timed per stage) ----------------------
        // Stage: plat — memory-region discovery and carve-outs.
        let t = Instant::now();
        let mut regions = platform.regions().clone();
        let heap_region = *regions.largest_free().ok_or(Errno::NoMem)?;
        let _stack = regions.carve(64 * 1024, RegionKind::BootStack);
        stages.push(BootStage {
            name: "plat".into(),
            ns: t.elapsed().as_nanos() as u64,
        });

        // Stage: paging (static: adopt prebuilt; dynamic: populate).
        let prebuilt = match cfg.paging {
            PagingMode::Static => Some(PageTables::prebuilt(cfg.ram_bytes)),
            _ => None,
        };
        let t = Instant::now();
        let pt = boot_paging(cfg.paging, cfg.ram_bytes, prebuilt);
        stages.push(BootStage {
            name: "paging".into(),
            ns: t.elapsed().as_nanos() as u64,
        });

        // Stage: alloc — initialize the heap allocator (Fig 14's "alloc").
        let t = Instant::now();
        let mut registry = AllocRegistry::new();
        let heap_len = heap_region.len.min(cfg.ram_bytes) as usize;
        let heap_id = registry.register(cfg.allocator, heap_region.base, heap_len)?;
        stages.push(BootStage {
            name: "alloc".into(),
            ns: t.elapsed().as_nanos() as u64,
        });

        // Stage: ukbus/irq — interrupt controller bring-up.
        let t = Instant::now();
        for line in 0..4 {
            platform.irq().enable(line);
        }
        stages.push(BootStage {
            name: "ukbus".into(),
            ns: t.elapsed().as_nanos() as u64,
        });

        // Extra library stages (drivers, filesystems, app init).
        for (name, f) in &mut self.extra_stages {
            let t = Instant::now();
            f(&platform, &mut registry)?;
            stages.push(BootStage {
                name: name.clone(),
                ns: t.elapsed().as_nanos() as u64,
            });
        }

        // Stage: ctors — run registered constructor tables.
        let t = Instant::now();
        self.ctors
            .run_all()
            .map_err(|(_, e)| e)?;
        stages.push(BootStage {
            name: "ctors".into(),
            ns: t.elapsed().as_nanos() as u64,
        });

        let guest_ns = stages.iter().map(|s| s.ns).sum();
        self.registry = Some(registry);
        self.heap_id = Some(heap_id);
        self.page_tables = pt;
        self.platform = Some(platform);

        Ok(BootReport {
            app: cfg.app,
            vmm: cfg.vmm,
            vmm_ns,
            guest_ns,
            stages,
        })
    }

    /// The allocator registry built during boot.
    pub fn registry_mut(&mut self) -> Option<&mut AllocRegistry> {
        self.registry.as_mut()
    }

    /// The id of the main heap allocator.
    pub fn heap_id(&self) -> Option<AllocId> {
        self.heap_id
    }

    /// The active page tables, if paging is enabled.
    pub fn page_tables(&self) -> Option<&PageTables> {
        self.page_tables.as_ref()
    }

    /// The platform the guest booted on.
    pub fn platform(&self) -> Option<&Platform> {
        self.platform.as_ref()
    }

    /// Registers a constructor shorthand.
    pub fn register_ctor(
        &mut self,
        name: &'static str,
        prio: CtorPriority,
        f: impl FnMut() -> Result<()> + 'static,
    ) {
        self.ctors.register(name, prio, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_boots_with_report() {
        let mut seq = BootSequence::new(BootConfig::hello(VmmKind::Firecracker));
        let r = seq.run().unwrap();
        assert_eq!(r.app, "helloworld");
        assert!(r.vmm_ns > 0);
        assert!(r.guest_ns > 0);
        assert!(r.total_ns() >= r.vmm_ns);
        assert!(r.stage_ns("alloc").is_some());
        assert!(seq.registry_mut().is_some());
    }

    #[test]
    fn vmm_dominates_total_boot() {
        // Fig 10's key observation: total boot is dominated by the VMM.
        let mut seq = BootSequence::new(BootConfig::hello(VmmKind::Qemu));
        let r = seq.run().unwrap();
        assert!(
            r.vmm_ns > 10 * r.guest_ns,
            "vmm {} vs guest {}",
            r.vmm_ns,
            r.guest_ns
        );
    }

    #[test]
    fn extra_stage_runs_and_is_timed() {
        let mut seq = BootSequence::new(BootConfig::nginx(
            VmmKind::Firecracker,
            AllocBackend::Tlsf,
        ));
        seq.add_stage("virtio", |_p, reg| {
            // Probe: allocate a few descriptors from the heap.
            let id = reg.default_id().unwrap();
            for _ in 0..16 {
                reg.malloc(id, 256).ok_or(Errno::NoMem)?;
            }
            Ok(())
        });
        let r = seq.run().unwrap();
        assert!(r.stage_ns("virtio").is_some());
    }

    #[test]
    fn failing_stage_aborts_boot() {
        let mut seq = BootSequence::new(BootConfig::hello(VmmKind::Solo5));
        seq.add_stage("bad-driver", |_, _| Err(Errno::Io));
        assert_eq!(seq.run().unwrap_err(), Errno::Io);
    }

    #[test]
    fn ctors_run_during_boot() {
        let hits = std::rc::Rc::new(std::cell::Cell::new(0));
        let h = hits.clone();
        let mut seq = BootSequence::new(BootConfig::hello(VmmKind::Solo5));
        seq.register_ctor("app-init", CtorPriority::App, move || {
            h.set(h.get() + 1);
            Ok(())
        });
        seq.run().unwrap();
        assert_eq!(hits.get(), 1);
    }

    #[test]
    fn dynamic_paging_maps_all_ram() {
        let mut cfg = BootConfig::hello(VmmKind::Firecracker);
        cfg.paging = PagingMode::Dynamic;
        cfg.ram_bytes = 32 * 1024 * 1024;
        let mut seq = BootSequence::new(cfg);
        seq.run().unwrap();
        let pt = seq.page_tables().unwrap();
        assert!(pt.mapped_bytes() >= 32 * 1024 * 1024);
    }

    #[test]
    fn buddy_alloc_stage_slower_than_bootalloc() {
        // Fig 14: buddy init dominates; compare the "alloc" stage.
        let run = |b| {
            let mut cfg = BootConfig::nginx(VmmKind::Firecracker, b);
            cfg.ram_bytes = 64 * 1024 * 1024;
            let mut seq = BootSequence::new(cfg);
            let mut best = u64::MAX;
            for _ in 0..5 {
                let r = seq_run_fresh(&mut seq, b);
                best = best.min(r);
            }
            best
        };
        fn seq_run_fresh(_seq: &mut BootSequence, b: AllocBackend) -> u64 {
            let mut cfg = BootConfig::nginx(VmmKind::Firecracker, b);
            cfg.ram_bytes = 64 * 1024 * 1024;
            let mut s = BootSequence::new(cfg);
            s.run().unwrap().stage_ns("alloc").unwrap()
        }
        let buddy = run(AllocBackend::Buddy);
        let boot = run(AllocBackend::BootAlloc);
        assert!(
            buddy > boot,
            "buddy alloc stage ({buddy} ns) must exceed bootalloc ({boot} ns)"
        );
    }
}
