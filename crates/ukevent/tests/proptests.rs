//! Property-based tests for the readiness subsystem.

use proptest::prelude::*;

use ukevent::{EventFd, EventMask, EventQueue, Pollable, ReadySource, EFD_SEMAPHORE};

/// An operation against an eventfd-backed event loop.
#[derive(Debug, Clone, Copy)]
enum KvOp {
    /// Producer adds `n` (1..=1000) to the counter.
    Write(u64),
    /// Consumer turns the loop: poll the queue, and on `EPOLLIN` drain
    /// the counter completely.
    Turn,
}

fn op_strategy() -> impl Strategy<Value = KvOp> {
    prop_oneof![
        (1u64..1000).prop_map(KvOp::Write),
        (0u64..1).prop_map(|_| KvOp::Turn),
    ]
}

/// Runs `ops` against a fresh eventfd watched with `mask`, draining the
/// counter on every delivered `EPOLLIN`. Returns (deliveries, total
/// consumed).
fn run_consumer(ops: &[KvOp], mask: EventMask, rearm: bool) -> (u64, u64) {
    let mut efd = EventFd::new(0, 0).unwrap();
    let mut q = EventQueue::new();
    q.ctl_add(1, &efd, mask).unwrap();
    let mut deliveries = 0u64;
    let mut consumed = 0u64;
    for op in ops {
        match op {
            KvOp::Write(n) => {
                efd.write(*n).unwrap();
            }
            KvOp::Turn => {
                for ev in q.poll_ready(4) {
                    if ev.events.contains(EventMask::IN) {
                        deliveries += 1;
                        consumed += efd.read().unwrap_or(0);
                        if rearm {
                            q.ctl_mod(1, mask).unwrap();
                        }
                    }
                }
            }
        }
    }
    (deliveries, consumed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Level-triggered with drain-on-delivery and edge-triggered with
    /// drain-on-delivery observe exactly the same deliveries and bytes:
    /// draining re-arms LT naturally, and each post-drain write is a
    /// fresh edge for ET. This is the "LT re-arm vs ET one-shot"
    /// equivalence the subsystem's correctness hangs on.
    #[test]
    fn lt_drain_equals_et_drain(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let (lt_deliveries, lt_consumed) = run_consumer(&ops, EventMask::IN, false);
        let (et_deliveries, et_consumed) =
            run_consumer(&ops, EventMask::IN | EventMask::ET, false);
        prop_assert_eq!(lt_deliveries, et_deliveries);
        prop_assert_eq!(lt_consumed, et_consumed);
        // Nothing written is lost by either discipline: whatever was not
        // consumed is still in the counter, checked below per-run by the
        // conservation property.
    }

    /// `EPOLLONESHOT` with an explicit re-arm after every consumption is
    /// equivalent to plain level-triggered drain-on-delivery.
    #[test]
    fn oneshot_rearm_equals_lt(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let (lt_deliveries, lt_consumed) = run_consumer(&ops, EventMask::IN, false);
        let (os_deliveries, os_consumed) =
            run_consumer(&ops, EventMask::IN | EventMask::ONESHOT, true);
        prop_assert_eq!(lt_deliveries, os_deliveries);
        prop_assert_eq!(lt_consumed, os_consumed);
    }

    /// The eventfd counter conserves every unit under arbitrary
    /// interleavings of writes and reads, in both normal and semaphore
    /// mode: written == read + residual at every step, with refused
    /// operations (EAGAIN) contributing nothing.
    #[test]
    fn eventfd_counter_never_lost(
        semaphore in any::<bool>(),
        ops in proptest::collection::vec(
            prop_oneof![
                (1u64..10_000).prop_map(Some),
                (0u64..1).prop_map(|_| None),
            ],
            1..80,
        )
    ) {
        let flags = if semaphore { EFD_SEMAPHORE } else { 0 };
        let mut efd = EventFd::new(0, flags).unwrap();
        let mut written = 0u64;
        let mut read = 0u64;
        for op in &ops {
            match op {
                Some(n) => {
                    if efd.write(*n).is_ok() {
                        written += n;
                    }
                }
                None => {
                    if let Ok(v) = efd.read() {
                        prop_assert!(v > 0, "successful read returns units");
                        if semaphore {
                            prop_assert_eq!(v, 1, "semaphore reads one unit");
                        }
                        read += v;
                    }
                }
            }
            prop_assert_eq!(written, read + efd.value(), "conservation");
            // Readiness always mirrors the counter.
            prop_assert_eq!(
                efd.poll_events().contains(EventMask::IN),
                efd.value() > 0
            );
        }
    }

    /// Queues never deliver payload bits outside interest ∪ {ERR, HUP},
    /// and a level-triggered entry fires exactly when its level
    /// intersects that set.
    #[test]
    fn delivery_respects_interest_mask(
        interest_bits in 0u32..8,
        level_bits in proptest::collection::vec(0u32..64, 1..30),
    ) {
        // Map small ints onto meaningful payload masks.
        let lanes = [
            EventMask::IN,
            EventMask::OUT,
            EventMask::RDHUP,
            EventMask::HUP,
            EventMask::PRI,
            EventMask::ERR,
        ];
        let mut interest = EventMask::EMPTY;
        for (i, lane) in lanes.iter().enumerate().take(3) {
            if interest_bits & (1 << i) != 0 {
                interest |= *lane;
            }
        }
        let s = ReadySource::new();
        let mut q = EventQueue::new();
        q.ctl_add(9, &s, interest).unwrap();
        for bits in &level_bits {
            let mut level = EventMask::EMPTY;
            for (i, lane) in lanes.iter().enumerate() {
                if bits & (1 << i) != 0 {
                    level |= *lane;
                }
            }
            s.set_level(level);
            let wanted = interest | EventMask::ALWAYS;
            let delivered = q.poll_ready(4);
            if (level & wanted).is_empty() {
                prop_assert!(delivered.is_empty());
            } else {
                prop_assert_eq!(delivered.len(), 1);
                prop_assert_eq!(delivered[0].events, level & wanted);
            }
        }
    }

    /// Edge-triggered entries deliver at most once per rising edge: the
    /// number of ET deliveries never exceeds the number of 0→1
    /// transitions the source went through.
    #[test]
    fn et_deliveries_bounded_by_edges(
        raises in proptest::collection::vec(any::<bool>(), 1..80)
    ) {
        let s = ReadySource::new();
        let mut q = EventQueue::new();
        q.ctl_add(1, &s, EventMask::IN | EventMask::ET).unwrap();
        let mut edges = 0u64;
        let mut deliveries = 0u64;
        let mut level_high = false;
        for raise in &raises {
            if *raise {
                if !level_high {
                    edges += 1;
                }
                level_high = true;
                s.raise(EventMask::IN);
            } else {
                level_high = false;
                s.clear(EventMask::IN);
            }
            deliveries += q.poll_ready(4).len() as u64;
            prop_assert!(deliveries <= edges, "{} deliveries > {} edges", deliveries, edges);
        }
    }
}
