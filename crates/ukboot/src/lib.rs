//! Boot micro-library (`ukboot`).
//!
//! Unikraft's `ukboot` drives the guest boot: platform init, memory-region
//! discovery, paging setup, allocator initialization (§3.2: "allocators
//! must specify an initialization function which is called by ukboot at an
//! early stage of the boot process"), IRQ setup, constructor tables, and
//! finally `main()`. The paper evaluates this layer three ways:
//!
//! - Figure 10: guest boot is tens–hundreds of microseconds, dwarfed by
//!   the VMM;
//! - Figure 14: the chosen allocator dominates guest boot time;
//! - Figure 21: static (prebuilt) page tables boot in constant time while
//!   dynamic page-table population scales with RAM size.
//!
//! All boot-stage work in this crate is *real computation* timed with
//! `Instant`; only the VMM-side portion comes from `ukplat::vmm` models.

pub mod ctors;
pub mod paging;
pub mod sequence;

pub use ctors::{CtorPriority, CtorTable};
pub use paging::{PageTables, PagingMode, PAGE_2M, PAGE_4K};
pub use sequence::{BootConfig, BootReport, BootSequence, BootStage};
