//! Guest physical memory map.
//!
//! At boot, Unikraft's platform code walks the memory map handed over by
//! the VMM (multiboot info on KVM, start_info on Xen) and builds a region
//! table: kernel image, initrd, usable heap, MMIO holes. `ukboot` consumes
//! this table to place the heap and the page tables.

use serde::Serialize;

/// What a region of guest-physical memory is used for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum RegionKind {
    /// The loaded unikernel image (text + data + bss).
    KernelImage,
    /// Boot stack.
    BootStack,
    /// Page-table area reserved by the platform.
    PageTables,
    /// Initial ramdisk / embedded filesystem image.
    Initrd,
    /// Free RAM available to the allocators.
    Free,
    /// Device MMIO hole; never usable as RAM.
    Mmio,
}

/// One contiguous region of guest-physical memory.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct MemRegion {
    /// First byte of the region (guest-physical).
    pub base: u64,
    /// Length in bytes.
    pub len: u64,
    /// Role of this region.
    pub kind: RegionKind,
}

impl MemRegion {
    /// One past the last byte.
    pub fn end(&self) -> u64 {
        self.base + self.len
    }

    /// Whether `addr` falls inside this region.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.end()
    }
}

/// The full memory map of a guest.
#[derive(Debug, Clone, Serialize)]
pub struct MemRegionTable {
    regions: Vec<MemRegion>,
}

impl MemRegionTable {
    /// Builds the canonical single-application layout used by our guests:
    /// image at 1 MiB, boot stack and page-table scratch above it, the rest
    /// of RAM free, and a standard MMIO hole.
    ///
    /// # Panics
    ///
    /// Panics if `ram_bytes` is smaller than 4 MiB — Unikraft itself needs
    /// 2–6 MiB to run real applications (paper Fig 11).
    pub fn standard_layout(ram_bytes: u64) -> Self {
        const MIB: u64 = 1024 * 1024;
        assert!(ram_bytes >= 4 * MIB, "guests need at least 4 MiB RAM");
        let image_base = MIB;
        let image_len = MIB; // Reserve 1 MiB for the image; real ones are smaller.
        let stack_len = 64 * 1024;
        let pt_len = 512 * 1024;
        let free_base = image_base + image_len + stack_len + pt_len;
        let regions = vec![
            MemRegion {
                base: 0,
                len: image_base,
                kind: RegionKind::Mmio,
            },
            MemRegion {
                base: image_base,
                len: image_len,
                kind: RegionKind::KernelImage,
            },
            MemRegion {
                base: image_base + image_len,
                len: stack_len,
                kind: RegionKind::BootStack,
            },
            MemRegion {
                base: image_base + image_len + stack_len,
                len: pt_len,
                kind: RegionKind::PageTables,
            },
            MemRegion {
                base: free_base,
                len: ram_bytes - free_base,
                kind: RegionKind::Free,
            },
        ];
        MemRegionTable { regions }
    }

    /// All regions in ascending base order.
    pub fn iter(&self) -> impl Iterator<Item = &MemRegion> {
        self.regions.iter()
    }

    /// Total bytes of RAM (everything but MMIO holes).
    pub fn total_ram(&self) -> u64 {
        self.regions
            .iter()
            .filter(|r| r.kind != RegionKind::Mmio)
            .map(|r| r.len)
            .sum::<u64>()
            + self
                .regions
                .iter()
                .filter(|r| r.kind == RegionKind::Mmio)
                .map(|r| r.len)
                .sum::<u64>()
    }

    /// The largest free region — where `ukboot` places the heap.
    pub fn largest_free(&self) -> Option<&MemRegion> {
        self.regions
            .iter()
            .filter(|r| r.kind == RegionKind::Free)
            .max_by_key(|r| r.len)
    }

    /// Sum of bytes usable as heap.
    pub fn free_bytes(&self) -> u64 {
        self.regions
            .iter()
            .filter(|r| r.kind == RegionKind::Free)
            .map(|r| r.len)
            .sum()
    }

    /// Splits `len` bytes off the front of the largest free region, marking
    /// them with `kind`. Models early-boot carve-outs (e.g. an initrd).
    ///
    /// Returns the new region, or `None` if no free region is large enough.
    pub fn carve(&mut self, len: u64, kind: RegionKind) -> Option<MemRegion> {
        let idx = self
            .regions
            .iter()
            .position(|r| r.kind == RegionKind::Free && r.len >= len)?;
        let base = self.regions[idx].base;
        self.regions[idx].base += len;
        self.regions[idx].len -= len;
        let carved = MemRegion { base, len, kind };
        self.regions.insert(idx, carved);
        Some(carved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIB: u64 = 1024 * 1024;

    #[test]
    fn standard_layout_partitions_ram() {
        let t = MemRegionTable::standard_layout(64 * MIB);
        assert_eq!(t.total_ram(), 64 * MIB);
        assert!(t.free_bytes() > 60 * MIB);
    }

    #[test]
    fn regions_are_contiguous_and_sorted() {
        let t = MemRegionTable::standard_layout(16 * MIB);
        let regs: Vec<_> = t.iter().collect();
        for w in regs.windows(2) {
            assert_eq!(w[0].end(), w[1].base, "regions must tile RAM");
        }
    }

    #[test]
    fn largest_free_is_the_heap_candidate() {
        let t = MemRegionTable::standard_layout(32 * MIB);
        let f = t.largest_free().unwrap();
        assert_eq!(f.kind, RegionKind::Free);
        assert!(f.len > 28 * MIB);
    }

    #[test]
    fn carve_splits_free_region() {
        let mut t = MemRegionTable::standard_layout(32 * MIB);
        let before = t.free_bytes();
        let initrd = t.carve(2 * MIB, RegionKind::Initrd).unwrap();
        assert_eq!(initrd.len, 2 * MIB);
        assert_eq!(t.free_bytes(), before - 2 * MIB);
        // Still contiguous.
        let regs: Vec<_> = t.iter().collect();
        for w in regs.windows(2) {
            assert_eq!(w[0].end(), w[1].base);
        }
    }

    #[test]
    fn carve_fails_when_too_large() {
        let mut t = MemRegionTable::standard_layout(8 * MIB);
        assert!(t.carve(100 * MIB, RegionKind::Initrd).is_none());
    }

    #[test]
    fn contains_checks_bounds() {
        let r = MemRegion {
            base: 100,
            len: 10,
            kind: RegionKind::Free,
        };
        assert!(r.contains(100));
        assert!(r.contains(109));
        assert!(!r.contains(110));
        assert!(!r.contains(99));
    }

    #[test]
    #[should_panic(expected = "at least 4 MiB")]
    fn tiny_ram_rejected() {
        let _ = MemRegionTable::standard_layout(MIB);
    }
}
