//! The developer porting-effort survey of Figure 6.
//!
//! §4.2: the authors surveyed the ~70 developers who ported libraries or
//! applications, asking how long the port itself took, how long its
//! dependencies took, and how much time went into missing OS or build
//! system primitives. Figure 6 aggregates the answers per quarter and
//! shows the effort collapsing as the common code base matured.

/// Effort categories of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EffortCategory {
    /// Porting the library/application itself.
    Libraries,
    /// Porting its dependencies (e.g. memcached needs libevent).
    LibraryDependencies,
    /// Implementing missing OS primitives (e.g. `poll()`).
    OsPrimitives,
    /// Extending the build system.
    BuildSystemPrimitives,
}

impl EffortCategory {
    /// All categories in the figure's legend order.
    pub fn all() -> [EffortCategory; 4] {
        [
            EffortCategory::Libraries,
            EffortCategory::LibraryDependencies,
            EffortCategory::OsPrimitives,
            EffortCategory::BuildSystemPrimitives,
        ]
    }

    /// Legend label.
    pub fn label(self) -> &'static str {
        match self {
            EffortCategory::Libraries => "Libraries",
            EffortCategory::LibraryDependencies => "Library dependencies",
            EffortCategory::OsPrimitives => "OS primitives",
            EffortCategory::BuildSystemPrimitives => "Build system primitives",
        }
    }
}

/// One quarter of survey data: total working days per category
/// (Figure 6's stacked bars).
#[derive(Debug, Clone, Copy)]
pub struct QuarterEffort {
    /// Quarter label.
    pub quarter: &'static str,
    /// Days porting libraries.
    pub libraries: u32,
    /// Days porting dependencies.
    pub dependencies: u32,
    /// Days implementing OS primitives.
    pub os_primitives: u32,
    /// Days extending the build system.
    pub build_system: u32,
}

impl QuarterEffort {
    /// Total days in the quarter.
    pub fn total(&self) -> u32 {
        self.libraries + self.dependencies + self.os_primitives + self.build_system
    }
}

/// The Figure 6 dataset.
pub static SURVEY: &[QuarterEffort] = &[
    QuarterEffort {
        quarter: "Q2 2019",
        libraries: 132,
        dependencies: 88,
        os_primitives: 43,
        build_system: 24,
    },
    QuarterEffort {
        quarter: "Q3 2019",
        libraries: 60,
        dependencies: 22,
        os_primitives: 1,
        build_system: 0,
    },
    QuarterEffort {
        quarter: "Q4 2019",
        libraries: 31,
        dependencies: 21,
        os_primitives: 46,
        build_system: 4,
    },
    QuarterEffort {
        quarter: "Q1 2020",
        libraries: 16,
        dependencies: 18,
        os_primitives: 0,
        build_system: 0,
    },
];

/// Whether the trend shows the maturing-code-base effect: the last
/// quarter's total effort is far below the first's.
pub fn effort_declines() -> bool {
    let first = SURVEY.first().map(QuarterEffort::total).unwrap_or(0);
    let last = SURVEY.last().map(QuarterEffort::total).unwrap_or(0);
    last * 3 < first
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_quarters() {
        assert_eq!(SURVEY.len(), 4);
        assert_eq!(SURVEY[0].quarter, "Q2 2019");
    }

    #[test]
    fn figure6_peak_total() {
        // Q2 2019 peaks at 132 + 88 + 43 + 24 = 287 days.
        assert_eq!(SURVEY[0].total(), 287);
    }

    #[test]
    fn porting_effort_declines_as_base_matures() {
        assert!(effort_declines());
        assert!(SURVEY[3].total() < SURVEY[0].total());
    }

    #[test]
    fn categories_have_labels() {
        for c in EffortCategory::all() {
            assert!(!c.label().is_empty());
        }
    }
}
