//! Explore the micro-library build system (§3, Figures 2, 3, 8).
//!
//! ```text
//! cargo run --example build_explorer
//! ```
//!
//! Resolves build configurations through the Kconfig-style resolver,
//! prints the dependency graphs the paper contrasts with Linux, and
//! shows how subtractive specialization (dropping lwip + the scheduler
//! for a uknetdev appliance) shrinks the image.

use unikraft_rs::build::config::BuildConfig;
use unikraft_rs::build::graph::DepGraph;
use unikraft_rs::build::image::{link_image, LinkPass};
use unikraft_rs::build::registry::LibRegistry;

fn main() {
    let reg = LibRegistry::standard();

    println!("== dependency graphs (Figures 1-3) ==");
    let linux = DepGraph::linux();
    println!(
        "Linux kernel : {:>2} components, {:>3} edges, avg degree {:.1}",
        linux.nodes.len(),
        linux.edges.len(),
        linux.avg_degree()
    );
    for app in ["app-helloworld", "app-nginx"] {
        let g = DepGraph::from_config(&reg, &BuildConfig::new(app)).expect("resolves");
        println!(
            "{:<13}: {:>2} micro-libs,  {:>3} edges, avg degree {:.1}",
            app,
            g.nodes.len(),
            g.edges.len(),
            g.avg_degree()
        );
    }

    println!("\n== image sizes across link passes (Figure 8) ==");
    for app in ["app-helloworld", "app-nginx", "app-redis", "app-sqlite"] {
        print!("{app:<16}");
        for pass in LinkPass::all() {
            let rep = link_image(&reg, &BuildConfig::new(app), pass).expect("links");
            print!(" {:>9.1} KB", rep.size_kb());
        }
        println!();
    }

    println!("\n== subtractive specialization (the §6.4 appliance) ==");
    let full = link_image(&reg, &BuildConfig::new("app-nginx"), LinkPass::DceLto)
        .expect("links");
    let slim_cfg = BuildConfig::new("app-nginx")
        .without_lib("lwip")
        .without_lib("ukschedcoop")
        .with_lib("uknetdev");
    let slim = link_image(&reg, &slim_cfg, LinkPass::DceLto).expect("links");
    println!(
        "full socket-path image : {:>8.1} KB ({} libs)",
        full.size_kb(),
        full.libs.len()
    );
    println!(
        "uknetdev appliance     : {:>8.1} KB ({} libs)",
        slim.size_kb(),
        slim.libs.len()
    );
    println!(
        "dropped: {:?}",
        full.libs
            .iter()
            .filter(|l| !slim.libs.contains(l))
            .collect::<Vec<_>>()
    );
}
