//! An nginx-style HTTP/1.1 static file server.
//!
//! Serves a static page over keep-alive connections, like the paper's
//! wrk benchmark (Figure 13: "static 612B page"). Request and response
//! buffers are allocated from a `ukalloc` backend per request, so the
//! allocator choice shows up in throughput exactly as in Figure 15.

use std::collections::HashMap;

use ukalloc::Allocator;
use uknetstack::stack::{NetStack, SocketHandle};
use ukplat::{Errno, Result};

/// The paper's standard test page size.
pub const DEFAULT_PAGE_SIZE: usize = 612;

/// Builds the standard 612-byte index page.
pub fn default_page() -> Vec<u8> {
    let mut body = b"<html><head><title>unikraft-rs</title></head><body>".to_vec();
    while body.len() < DEFAULT_PAGE_SIZE - 14 {
        body.extend_from_slice(b"A");
    }
    body.extend_from_slice(b"</body></html>");
    body.truncate(DEFAULT_PAGE_SIZE);
    body
}

struct Conn {
    sock: SocketHandle,
    buf: Vec<u8>,
    closed: bool,
}

/// The HTTP server.
pub struct Httpd {
    listener: SocketHandle,
    conns: Vec<Conn>,
    files: HashMap<String, Vec<u8>>,
    alloc: Box<dyn Allocator>,
    served: u64,
    errors: u64,
}

impl std::fmt::Debug for Httpd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Httpd")
            .field("conns", &self.conns.len())
            .field("served", &self.served)
            .finish()
    }
}

impl Httpd {
    /// Starts listening on `port` of `stack`, serving buffers from
    /// `alloc` (already initialized).
    pub fn new(stack: &mut NetStack, port: u16, alloc: Box<dyn Allocator>) -> Result<Self> {
        let listener = stack.tcp_listen(port)?;
        let mut files = HashMap::new();
        files.insert("/index.html".to_string(), default_page());
        files.insert("/".to_string(), default_page());
        Ok(Httpd {
            listener,
            conns: Vec::new(),
            files,
            alloc,
            served: 0,
            errors: 0,
        })
    }

    /// Adds (or replaces) a served file.
    pub fn add_file(&mut self, path: impl Into<String>, contents: Vec<u8>) {
        self.files.insert(path.into(), contents);
    }

    /// Requests served so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Malformed requests seen.
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Allocator statistics (live allocations should return to zero
    /// between requests).
    pub fn alloc_stats(&self) -> ukalloc::AllocStats {
        self.alloc.stats()
    }

    /// Accepts new connections and serves any complete requests.
    /// Returns the number of responses written this call.
    pub fn poll(&mut self, stack: &mut NetStack) -> u64 {
        while let Some(sock) = stack.tcp_accept(self.listener) {
            self.conns.push(Conn {
                sock,
                buf: Vec::new(),
                closed: false,
            });
        }
        let mut newly_served = 0;
        for conn in &mut self.conns {
            if conn.closed {
                continue;
            }
            // Pull whatever arrived.
            if let Ok(data) = stack.tcp_recv(conn.sock, 64 * 1024) {
                conn.buf.extend_from_slice(&data);
            }
            // Serve every complete request in the buffer (pipelining).
            while let Some(end) = find_header_end(&conn.buf) {
                // Request buffer from the allocator (as nginx would).
                let req_gp = self.alloc.malloc(end.max(64));
                let request = conn.buf[..end].to_vec();
                conn.buf.drain(..end);
                let response = match parse_request(&request) {
                    Ok(path) => match self.files.get(&path) {
                        Some(body) => {
                            let resp_gp = self.alloc.malloc(body.len() + 128);
                            let r = render_response(200, "OK", body);
                            if let Some(gp) = resp_gp {
                                self.alloc.free(gp);
                            }
                            self.served += 1;
                            newly_served += 1;
                            r
                        }
                        None => {
                            self.errors += 1;
                            render_response(404, "Not Found", b"not found")
                        }
                    },
                    Err(_) => {
                        self.errors += 1;
                        conn.closed = true;
                        render_response(400, "Bad Request", b"bad request")
                    }
                };
                if let Some(gp) = req_gp {
                    self.alloc.free(gp);
                }
                let _ = stack.tcp_send(conn.sock, &response);
                if conn.closed {
                    let _ = stack.tcp_close(conn.sock);
                    break;
                }
            }
            if stack.tcp_peer_closed(conn.sock) && conn.buf.is_empty() {
                let _ = stack.tcp_close(conn.sock);
                conn.closed = true;
            }
        }
        self.conns.retain(|c| !c.closed);
        newly_served
    }
}

/// Index one past the `\r\n\r\n` terminating the header block.
fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// Parses the request line, returning the path.
fn parse_request(req: &[u8]) -> Result<String> {
    let line_end = req
        .windows(2)
        .position(|w| w == b"\r\n")
        .ok_or(Errno::Inval)?;
    let line = std::str::from_utf8(&req[..line_end]).map_err(|_| Errno::Inval)?;
    let mut parts = line.split(' ');
    let method = parts.next().ok_or(Errno::Inval)?;
    let path = parts.next().ok_or(Errno::Inval)?;
    let version = parts.next().ok_or(Errno::Inval)?;
    if method != "GET" && method != "HEAD" {
        return Err(Errno::Inval);
    }
    if !version.starts_with("HTTP/1.") {
        return Err(Errno::Inval);
    }
    Ok(path.to_string())
}

fn render_response(code: u16, reason: &str, body: &[u8]) -> Vec<u8> {
    let mut r = format!(
        "HTTP/1.1 {code} {reason}\r\nServer: unikraft-rs\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
        body.len()
    )
    .into_bytes();
    r.extend_from_slice(body);
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use ukalloc::AllocBackend;
    use uknetdev::backend::VhostKind;
    use uknetdev::dev::{NetDev, NetDevConf};
    use uknetdev::VirtioNet;
    use uknetstack::stack::StackConfig;
    use uknetstack::testnet::Network;
    use uknetstack::{Endpoint, Ipv4Addr};
    use ukplat::time::Tsc;

    fn mk_stack(n: u8) -> NetStack {
        let tsc = Tsc::new(3_600_000_000);
        let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
        dev.configure(NetDevConf::default()).unwrap();
        NetStack::new(StackConfig::node(n), Box::new(dev))
    }

    fn mk_alloc() -> Box<dyn Allocator> {
        let mut a = AllocBackend::Tlsf.instantiate();
        a.init(1 << 22, 8 << 20).unwrap();
        a
    }

    #[test]
    fn default_page_is_612_bytes() {
        assert_eq!(default_page().len(), DEFAULT_PAGE_SIZE);
    }

    #[test]
    fn parse_request_extracts_path() {
        assert_eq!(
            parse_request(b"GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n").unwrap(),
            "/index.html"
        );
        assert!(parse_request(b"POST / HTTP/1.1\r\n\r\n").is_err());
        assert!(parse_request(b"garbage").is_err());
    }

    #[test]
    fn serves_request_over_real_stack() {
        let mut net = Network::new();
        let client_idx = net.attach(mk_stack(1));
        let mut server_stack = mk_stack(2);
        let mut httpd = Httpd::new(&mut server_stack, 80, mk_alloc()).unwrap();
        let server_idx = net.attach(server_stack);

        let server_ep = Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 80);
        let conn = net.stack(client_idx).tcp_connect(server_ep).unwrap();
        for _ in 0..8 {
            net.run_until_quiet(16);
            httpd.poll(net.stack(server_idx));
        }
        net.stack(client_idx)
            .tcp_send(conn, b"GET /index.html HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        for _ in 0..8 {
            net.run_until_quiet(16);
            httpd.poll(net.stack(server_idx));
        }
        let resp = net.stack(client_idx).tcp_recv(conn, 64 * 1024).unwrap();
        let text = String::from_utf8_lossy(&resp);
        assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
        assert!(text.contains("Content-Length: 612"));
        assert_eq!(httpd.served(), 1);
        // No allocator leaks across requests.
        assert_eq!(httpd.alloc_stats().cur_bytes, 0);
    }

    #[test]
    fn missing_file_is_404() {
        let mut net = Network::new();
        let ci = net.attach(mk_stack(1));
        let mut ss = mk_stack(2);
        let mut httpd = Httpd::new(&mut ss, 80, mk_alloc()).unwrap();
        let si = net.attach(ss);
        let conn = net
            .stack(ci)
            .tcp_connect(Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 80))
            .unwrap();
        for _ in 0..4 {
            net.run_until_quiet(16);
            httpd.poll(net.stack(si));
        }
        net.stack(ci)
            .tcp_send(conn, b"GET /ghost HTTP/1.1\r\n\r\n")
            .unwrap();
        for _ in 0..4 {
            net.run_until_quiet(16);
            httpd.poll(net.stack(si));
        }
        let resp = net.stack(ci).tcp_recv(conn, 4096).unwrap();
        assert!(String::from_utf8_lossy(&resp).starts_with("HTTP/1.1 404"));
        assert_eq!(httpd.errors(), 1);
    }
}
