//! Property-based tests for the build-system resolver and size passes.

use proptest::prelude::*;

use ukbuild::config::BuildConfig;
use ukbuild::image::{link_image, LinkPass};
use ukbuild::registry::LibRegistry;

static APPS: &[&str] = &[
    "app-helloworld",
    "app-nginx",
    "app-redis",
    "app-sqlite",
    "app-webcache",
];

/// Non-app libraries a config may add or remove.
static TWEAKABLE: &[&str] = &[
    "lwip",
    "ukschedcoop",
    "ukschedpreempt",
    "uknetdev",
    "ukblockdev",
    "9pfs",
    "shfs",
    "ukdebug",
    "mimalloc",
    "tinyalloc",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Resolution is closed: every dependency of every selected library
    /// is itself selected (unless removed, in which case nothing
    /// reachable only through it survives).
    #[test]
    fn closure_is_dependency_closed(
        app_idx in 0usize..APPS.len(),
        adds in proptest::collection::vec(0usize..TWEAKABLE.len(), 0..4),
        removes in proptest::collection::vec(0usize..TWEAKABLE.len(), 0..3),
    ) {
        let reg = LibRegistry::standard();
        let mut cfg = BuildConfig::new(APPS[app_idx]);
        for a in &adds {
            cfg = cfg.with_lib(TWEAKABLE[*a]);
        }
        let removed: Vec<&str> = removes.iter().map(|r| TWEAKABLE[*r]).collect();
        for r in &removed {
            cfg = cfg.without_lib(r);
        }
        // Adding then removing the same lib: removal wins; skip the
        // contradictory combinations where the *app root* would break.
        let libs = match cfg.resolve(&reg) {
            Ok(l) => l,
            Err(_) => return Ok(()),
        };
        for name in &libs {
            prop_assert!(!removed.contains(name), "{name} was removed");
            for dep in reg.get(name).unwrap().deps {
                prop_assert!(
                    libs.contains(dep) || removed.contains(dep),
                    "{name} depends on {dep} which is neither selected nor removed"
                );
            }
        }
    }

    /// The size passes are monotone: DCE and LTO never grow an image,
    /// and both together are the smallest.
    #[test]
    fn size_passes_monotone(app_idx in 0usize..APPS.len()) {
        let reg = LibRegistry::standard();
        let cfg = BuildConfig::new(APPS[app_idx]);
        let d = link_image(&reg, &cfg, LinkPass::Default).unwrap().size_bytes;
        let lto = link_image(&reg, &cfg, LinkPass::Lto).unwrap().size_bytes;
        let dce = link_image(&reg, &cfg, LinkPass::Dce).unwrap().size_bytes;
        let both = link_image(&reg, &cfg, LinkPass::DceLto).unwrap().size_bytes;
        prop_assert!(lto <= d);
        prop_assert!(dce <= d);
        prop_assert!(both <= lto && both <= dce);
    }

    /// Removing libraries never grows the image.
    #[test]
    fn removal_never_grows(
        app_idx in 0usize..APPS.len(),
        removes in proptest::collection::vec(0usize..TWEAKABLE.len(), 1..3),
    ) {
        let reg = LibRegistry::standard();
        let base = link_image(&reg, &BuildConfig::new(APPS[app_idx]), LinkPass::Default)
            .unwrap()
            .size_bytes;
        let mut cfg = BuildConfig::new(APPS[app_idx]);
        for r in &removes {
            cfg = cfg.without_lib(TWEAKABLE[*r]);
        }
        if let Ok(slim) = link_image(&reg, &cfg, LinkPass::Default) {
            prop_assert!(slim.size_bytes <= base);
        }
    }
}
