//! The §6.4 specialized UDP key-value store (Table 4).
//!
//! A tiny text protocol over UDP: `G <key>` and `S <key> <value>`.
//! The *server logic* (parsing, hash-table work, reply building) is the
//! same real code in every configuration; what changes is how packets
//! reach it:
//!
//! - `LinuxSingle` / `LinuxGuestSingle`: one `recvmsg` + one `sendmsg`
//!   trap per packet (plus the vhost-net path for the guest);
//! - `LinuxBatch` / `LinuxGuestBatch`: `recvmmsg`/`sendmmsg` amortize the
//!   two traps over a batch (the paper's ~50% improvement);
//! - `LinuxGuestDpdk`: no syscalls, DPDK PMD per-packet cost — but burns
//!   a dedicated host core;
//! - `UnikraftLwip`: through our real socket stack (the slow path the
//!   paper measures at 319 K req/s);
//! - `UnikraftUknetdev` / `UnikraftDpdk`: polling burst I/O, no syscalls,
//!   no stack — the 6.3 M req/s configuration.

use std::collections::HashMap;

use ukevent::{EventMask, EventQueue};
use uknetstack::stack::{NetStack, SocketHandle};
use uknetstack::Endpoint;
use ukplat::cost;
use ukplat::time::Tsc;
use ukplat::Result;

/// Batch size for the batched/burst modes (one descriptor burst).
pub const BATCH: usize = 32;

/// Operating modes of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UdpKvMode {
    /// Linux bare metal, one syscall pair per packet.
    LinuxSingle,
    /// Linux bare metal, batched msg syscalls.
    LinuxBatch,
    /// Linux guest, one syscall pair per packet (+ virtio path).
    LinuxGuestSingle,
    /// Linux guest, batched (+ virtio path).
    LinuxGuestBatch,
    /// Linux guest running DPDK (second core polls).
    LinuxGuestDpdk,
    /// Unikraft through the lwip-path socket stack.
    UnikraftLwip,
    /// Unikraft coded directly against `uknetdev`, polling mode.
    UnikraftUknetdev,
    /// Unikraft running the DPDK port.
    UnikraftDpdk,
}

impl UdpKvMode {
    /// All modes in Table 4's order.
    pub fn all() -> [UdpKvMode; 8] {
        [
            UdpKvMode::LinuxSingle,
            UdpKvMode::LinuxBatch,
            UdpKvMode::LinuxGuestSingle,
            UdpKvMode::LinuxGuestBatch,
            UdpKvMode::LinuxGuestDpdk,
            UdpKvMode::UnikraftLwip,
            UdpKvMode::UnikraftUknetdev,
            UdpKvMode::UnikraftDpdk,
        ]
    }

    /// Display (setup, mode) labels matching Table 4.
    pub fn label(self) -> (&'static str, &'static str) {
        match self {
            UdpKvMode::LinuxSingle => ("Linux baremetal", "Single"),
            UdpKvMode::LinuxBatch => ("Linux baremetal", "Batch"),
            UdpKvMode::LinuxGuestSingle => ("Linux guest", "Single"),
            UdpKvMode::LinuxGuestBatch => ("Linux guest", "Batch"),
            UdpKvMode::LinuxGuestDpdk => ("Linux guest", "DPDK"),
            UdpKvMode::UnikraftLwip => ("Unikraft guest", "LWIP"),
            UdpKvMode::UnikraftUknetdev => ("Unikraft guest", "uknetdev"),
            UdpKvMode::UnikraftDpdk => ("Unikraft guest", "DPDK"),
        }
    }

    /// Host/guest cycles charged for a batch of `n` packets of `bytes`
    /// total, covering the I/O path (the request handling itself is real
    /// computation done by [`UdpKvServer`]).
    pub fn io_cycles(self, n: usize, bytes: usize) -> u64 {
        let n64 = n as u64;
        let per_pkt_copy = cost::copy_cost_cycles(bytes / n.max(1));
        match self {
            UdpKvMode::LinuxSingle => {
                // recvmsg + sendmsg per packet, native kernel UDP path.
                n64 * (2 * cost::LINUX_SYSCALL_CYCLES + 2 * per_pkt_copy + 2_800)
            }
            UdpKvMode::LinuxBatch => {
                // Two syscalls per batch; kernel path still per packet.
                2 * cost::LINUX_SYSCALL_CYCLES + n64 * (2 * per_pkt_copy + 2_800)
            }
            UdpKvMode::LinuxGuestSingle => {
                n64 * (2 * cost::LINUX_SYSCALL_CYCLES
                    + 2 * per_pkt_copy
                    + 2_800
                    + cost::VHOST_NET_PKT_CYCLES)
                    + n64 * cost::VMEXIT_CYCLES
            }
            UdpKvMode::LinuxGuestBatch => {
                2 * cost::LINUX_SYSCALL_CYCLES
                    + cost::VMEXIT_CYCLES
                    + n64 * (2 * per_pkt_copy + 2_800 + cost::VHOST_NET_PKT_CYCLES)
            }
            UdpKvMode::LinuxGuestDpdk => {
                // PMD polling: pure per-packet driver cost, zero copy.
                n64 * (cost::DPDK_GUEST_PKT_CYCLES + cost::VHOST_USER_PKT_CYCLES)
            }
            UdpKvMode::UnikraftLwip => {
                // Function-call "syscalls", but the full stack runs per
                // packet: IP/UDP parse + checksum + pbuf management.
                n64 * (2 * cost::FUNCTION_CALL_CYCLES
                    + 2 * per_pkt_copy
                    + 9_500
                    + cost::VHOST_NET_PKT_CYCLES)
                    + n64 * cost::VMEXIT_CYCLES
            }
            UdpKvMode::UnikraftUknetdev | UdpKvMode::UnikraftDpdk => {
                // Burst polling directly on the rings, vhost-user host.
                n64 * (cost::DPDK_GUEST_PKT_CYCLES + cost::VHOST_USER_PKT_CYCLES)
            }
        }
    }

    /// Guest CPU cores the configuration occupies (Table 4's text: the
    /// DPDK guest "uses two cores in the VM, one exclusively for DPDK").
    pub fn cores(self) -> u32 {
        match self {
            UdpKvMode::LinuxGuestDpdk => 2,
            _ => 1,
        }
    }
}

/// The key-value server: real parsing and hash-table work.
#[derive(Debug)]
pub struct UdpKvServer {
    store: HashMap<Vec<u8>, Vec<u8>>,
    mode: UdpKvMode,
    tsc: Tsc,
    requests: u64,
}

impl UdpKvServer {
    /// Creates a server in `mode`.
    pub fn new(mode: UdpKvMode, tsc: &Tsc) -> Self {
        UdpKvServer {
            store: HashMap::new(),
            mode,
            tsc: tsc.clone(),
            requests: 0,
        }
    }

    /// Handles one request payload (real work), returning the reply.
    pub fn handle(&mut self, payload: &[u8]) -> Vec<u8> {
        self.requests += 1;
        let mut parts = payload.splitn(3, |b| *b == b' ');
        match (parts.next(), parts.next(), parts.next()) {
            (Some(b"G"), Some(key), None) => match self.store.get(key) {
                Some(v) => {
                    let mut r = b"V ".to_vec();
                    r.extend_from_slice(v);
                    r
                }
                None => b"M".to_vec(),
            },
            (Some(b"S"), Some(key), Some(value)) => {
                self.store.insert(key.to_vec(), value.to_vec());
                b"O".to_vec()
            }
            _ => b"E".to_vec(),
        }
    }

    /// Serves a batch of datagrams: charges the mode's I/O cycles, then
    /// does the real per-request work. Returns the replies.
    pub fn serve_batch(&mut self, payloads: &[&[u8]]) -> Vec<Vec<u8>> {
        let bytes: usize = payloads.iter().map(|p| p.len()).sum();
        self.tsc.advance(self.mode.io_cycles(payloads.len(), bytes));
        payloads.iter().map(|p| self.handle(p)).collect()
    }

    /// Requests served.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Keys stored.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }
}

/// The socket-path front-end: [`UdpKvServer`] behind a real UDP socket,
/// driven by readiness events from one [`EventQueue`] instead of
/// unconditional `udp_recv_from` polling. This is the `UnikraftLwip`
/// row of Table 4 restructured the way the event subsystem intends —
/// and, since the receive-side fast path landed, the way zero-copy
/// receive intends: each `EPOLLIN` event takes up to [`BATCH`] queued
/// datagrams *as the pooled netbufs they arrived in*
/// ([`NetStack::udp_recv_netbuf`] — no flat-buffer copy anywhere on
/// the request path), serves them as one [`UdpKvServer::serve_batch`]
/// (which still charges the mode's I/O cost model), pushes all replies
/// back with one [`NetStack::udp_send_burst`], and recycles every
/// request buffer to the stack's pool.
pub struct UdpKvNetServer {
    sock: SocketHandle,
    queue: EventQueue,
    server: UdpKvServer,
    /// One batch of in-flight request buffers: the sender endpoint and
    /// the pooled netbuf its datagram arrived in (reused, recycled
    /// after every batch).
    rx_nbs: Vec<(Endpoint, uknetdev::netbuf::Netbuf)>,
}

impl std::fmt::Debug for UdpKvNetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdpKvNetServer")
            .field("requests", &self.server.requests())
            .finish()
    }
}

impl UdpKvNetServer {
    /// Binds `port` on `stack` and registers the socket for `EPOLLIN`.
    pub fn new(stack: &mut NetStack, port: u16, mode: UdpKvMode, tsc: &Tsc) -> Result<Self> {
        let sock = stack.udp_bind(port)?;
        let mut queue = EventQueue::new();
        let src = stack.ready_source(sock);
        queue.ctl_add(sock.0 as u64, &src, EventMask::IN)?;
        Ok(UdpKvNetServer {
            sock,
            queue,
            server: UdpKvServer::new(mode, tsc),
            rx_nbs: Vec::with_capacity(BATCH),
        })
    }

    /// One turn of the event loop: for each `EPOLLIN` event, takes up
    /// to [`BATCH`] queued datagrams as their pooled netbufs (the
    /// zero-copy receive path — request bytes are read in place),
    /// serves each batch, pushes its replies as one `udp_send_burst`,
    /// and recycles the request buffers. Returns requests served.
    pub fn poll(&mut self, stack: &mut NetStack) -> u64 {
        let mut served = 0;
        for ev in self.queue.poll_ready(16) {
            if !ev.events.intersects(EventMask::IN) {
                continue;
            }
            loop {
                self.rx_nbs.clear();
                while self.rx_nbs.len() < BATCH {
                    match stack.udp_recv_netbuf(self.sock) {
                        Some(msg) => self.rx_nbs.push(msg),
                        None => break,
                    }
                }
                if self.rx_nbs.is_empty() {
                    break;
                }
                let refs: Vec<&[u8]> =
                    self.rx_nbs.iter().map(|(_, nb)| nb.payload()).collect();
                let replies = self.server.serve_batch(&refs);
                served += replies.len() as u64;
                drop(refs);
                let _ = stack.udp_send_burst(
                    self.sock,
                    replies
                        .iter()
                        .zip(&self.rx_nbs)
                        .map(|(reply, &(from, _))| (&reply[..], from)),
                );
                for (_, nb) in self.rx_nbs.drain(..) {
                    stack.recycle(nb);
                }
            }
        }
        served
    }

    /// The underlying protocol server (store inspection, request count).
    pub fn server(&self) -> &UdpKvServer {
        &self.server
    }

    /// The server's event queue (for scheduler glue).
    pub fn event_queue_mut(&mut self) -> &mut EventQueue {
        &mut self.queue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tsc() -> Tsc {
        Tsc::new(cost::CPU_FREQ_HZ)
    }

    #[test]
    fn protocol_get_set_miss() {
        let t = tsc();
        let mut s = UdpKvServer::new(UdpKvMode::UnikraftUknetdev, &t);
        assert_eq!(s.handle(b"G nokey"), b"M");
        assert_eq!(s.handle(b"S k hello"), b"O");
        assert_eq!(s.handle(b"G k"), b"V hello");
        assert_eq!(s.handle(b"garbage"), b"E");
        assert_eq!(s.requests(), 4);
    }

    #[test]
    fn batching_amortizes_syscalls() {
        let single = UdpKvMode::LinuxSingle.io_cycles(BATCH, BATCH * 64);
        let batch = UdpKvMode::LinuxBatch.io_cycles(BATCH, BATCH * 64);
        assert!(batch < single);
        // The saving is roughly the syscall pair per extra packet.
        let saving = single - batch;
        assert!(saving >= (BATCH as u64 - 1) * 2 * cost::LINUX_SYSCALL_CYCLES);
    }

    #[test]
    fn table4_ordering_holds() {
        // Per-packet cost ordering must reproduce Table 4:
        // uknetdev ≈ DPDK << batch < single; lwip slowest of Unikraft.
        let per_pkt = |m: UdpKvMode| m.io_cycles(BATCH, BATCH * 64) / BATCH as u64;
        assert!(per_pkt(UdpKvMode::UnikraftUknetdev) < per_pkt(UdpKvMode::LinuxBatch));
        assert!(per_pkt(UdpKvMode::LinuxBatch) < per_pkt(UdpKvMode::LinuxSingle));
        assert!(per_pkt(UdpKvMode::LinuxGuestBatch) < per_pkt(UdpKvMode::LinuxGuestSingle));
        assert!(per_pkt(UdpKvMode::UnikraftLwip) > per_pkt(UdpKvMode::LinuxGuestSingle));
        assert_eq!(
            per_pkt(UdpKvMode::UnikraftUknetdev),
            per_pkt(UdpKvMode::UnikraftDpdk),
            "uknetdev matches DPDK"
        );
    }

    #[test]
    fn dpdk_needs_two_cores() {
        assert_eq!(UdpKvMode::LinuxGuestDpdk.cores(), 2);
        assert_eq!(UdpKvMode::UnikraftUknetdev.cores(), 1);
    }

    #[test]
    fn serve_batch_charges_and_replies() {
        let t = tsc();
        let mut s = UdpKvServer::new(UdpKvMode::LinuxGuestSingle, &t);
        let reqs: Vec<&[u8]> = vec![b"S a 1", b"G a"];
        let replies = s.serve_batch(&reqs);
        assert_eq!(replies, vec![b"O".to_vec(), b"V 1".to_vec()]);
        assert!(t.now_cycles() > 0);
    }

    mod net_server {
        use super::*;
        use uknetdev::backend::VhostKind;
        use uknetdev::dev::{NetDev, NetDevConf};
        use uknetdev::VirtioNet;
        use uknetstack::stack::{NetStack, StackConfig};
        use uknetstack::testnet::Network;
        use uknetstack::{Endpoint, Ipv4Addr};

        fn mk_stack(n: u8) -> NetStack {
            let tsc = Tsc::new(3_600_000_000);
            let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
            dev.configure(NetDevConf::default()).unwrap();
            NetStack::new(StackConfig::node(n), Box::new(dev))
        }

        #[test]
        fn serves_get_set_over_real_packets_event_driven() {
            let t = tsc();
            let mut net = Network::new();
            let ci = net.attach(mk_stack(1));
            let mut ss = mk_stack(2);
            let mut kv = UdpKvNetServer::new(&mut ss, 9100, UdpKvMode::UnikraftLwip, &t).unwrap();
            let si = net.attach(ss);

            let csock = net.stack(ci).udp_bind(5000).unwrap();
            let ep = Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 9100);
            // Idle poll serves nothing (no busy work without readiness).
            assert_eq!(kv.poll(net.stack(si)), 0);
            net.stack(ci).udp_send_to(csock, b"S k hello", ep).unwrap();
            net.stack(ci).udp_send_to(csock, b"G k", ep).unwrap();
            net.run_until_quiet(16);
            assert_eq!(kv.poll(net.stack(si)), 2, "both requests in one turn");
            net.run_until_quiet(16);
            let mut replies = Vec::new();
            while let Some((_, data)) = net.stack(ci).udp_recv_from(csock) {
                replies.push(data);
            }
            assert_eq!(replies, vec![b"O".to_vec(), b"V hello".to_vec()]);
            assert_eq!(kv.server().requests(), 2);
        }
    }
}
