//! Figures 1–3 (dependency graphs) and 8–9 (image sizes).

use ukbaselines::{EnvModel, ExecEnv};
use ukbuild::config::BuildConfig;
use ukbuild::graph::DepGraph;
use ukbuild::image::{link_image, LinkPass};
use ukbuild::registry::LibRegistry;

use crate::util::write_dot;

/// Figure 1: the Linux kernel component dependency graph.
pub fn fig1_linux_graph() -> String {
    let g = DepGraph::linux();
    let dot = g.to_dot("linux-components");
    let path = write_dot("fig1_linux", &dot);
    format!(
        "Figure 1: Linux kernel component dependencies\n\
         components: {}  edges: {}  avg out-degree: {:.1}  total cross-calls: {}\n\
         dot: {}\n",
        g.nodes.len(),
        g.edges.len(),
        g.avg_degree(),
        g.total_weight(),
        path.unwrap_or_else(|| "(not written)".into())
    )
}

fn unikraft_graph(app: &'static str, figure: &str, fname: &str) -> String {
    let reg = LibRegistry::standard();
    let g = DepGraph::from_config(&reg, &BuildConfig::new(app)).expect("resolves");
    let dot = g.to_dot(app);
    let path = write_dot(fname, &dot);
    let linux = DepGraph::linux();
    format!(
        "{figure}: Unikraft dependency graph for {app}\n\
         micro-libraries: {}  edges: {}  avg out-degree: {:.1} (Linux: {:.1})\n\
         libs: {:?}\n\
         dot: {}\n",
        g.nodes.len(),
        g.edges.len(),
        g.avg_degree(),
        linux.avg_degree(),
        g.nodes,
        path.unwrap_or_else(|| "(not written)".into())
    )
}

/// Figure 2: nginx Unikraft dependency graph.
pub fn fig2_nginx_graph() -> String {
    unikraft_graph("app-nginx", "Figure 2", "fig2_nginx")
}

/// Figure 3: helloworld Unikraft dependency graph.
pub fn fig3_hello_graph() -> String {
    unikraft_graph("app-helloworld", "Figure 3", "fig3_hello")
}

/// Figure 8: image sizes with/without DCE and LTO.
pub fn fig8_image_sizes() -> String {
    let reg = LibRegistry::standard();
    let apps = ["app-helloworld", "app-nginx", "app-redis", "app-sqlite"];
    let mut out = String::new();
    out.push_str("Figure 8: Unikraft image sizes with and without LTO/DCE\n");
    out.push_str(&format!(
        "{:<16} {:>14} {:>14} {:>14} {:>14}\n",
        "app", "default", "+LTO", "+DCE", "+DCE+LTO"
    ));
    for app in apps {
        let mut row = format!("{app:<16}");
        for pass in LinkPass::all() {
            let rep = link_image(&reg, &BuildConfig::new(app), pass).expect("links");
            row.push_str(&format!(" {:>11.1} KB", rep.size_kb()));
        }
        out.push_str(&row);
        out.push('\n');
    }
    out.push_str("shape check: every image < 2 MB; DCE+LTO smallest\n");
    out
}

/// Figure 9: image sizes across OSes (paper data + our builds).
pub fn fig9_cross_os_sizes() -> String {
    use ukbaselines::env::AppId;
    let mut out = String::new();
    out.push_str("Figure 9: image sizes across OSes (MB, stripped, no LTO/DCE)\n");
    out.push_str(&format!(
        "{:<16} {:>8} {:>8} {:>8} {:>8}\n",
        "OS", "hello", "nginx", "redis", "sqlite"
    ));
    let envs = [
        ExecEnv::UnikraftKvm,
        ExecEnv::HermituxUhyve,
        ExecEnv::LinuxNative,
        ExecEnv::LupineKvm,
        ExecEnv::MirageSolo5,
        ExecEnv::OsvKvm,
        ExecEnv::RumpKvm,
    ];
    for env in envs {
        let m = EnvModel::new(env);
        let cell = |app| {
            m.image_size_mb(app)
                .map(|v| format!("{v:>8.2}"))
                .unwrap_or_else(|| format!("{:>8}", "-"))
        };
        out.push_str(&format!(
            "{:<16} {} {} {} {}\n",
            env.name(),
            cell(AppId::Hello),
            cell(AppId::Nginx),
            cell(AppId::Redis),
            cell(AppId::Sqlite)
        ));
    }
    // Our actual built sizes, for the Unikraft row cross-check.
    let reg = LibRegistry::standard();
    let ours = ["app-helloworld", "app-nginx", "app-redis", "app-sqlite"]
        .map(|a| link_image(&reg, &BuildConfig::new(a), LinkPass::Default).unwrap());
    out.push_str(&format!(
        "{:<16} {:>8.2} {:>8.2} {:>8.2} {:>8.2}   (our build system)\n",
        "unikraft-rs",
        ours[0].size_bytes as f64 / 1e6,
        ours[1].size_bytes as f64 / 1e6,
        ours[2].size_bytes as f64 / 1e6,
        ours[3].size_bytes as f64 / 1e6,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_reports_dense_graph() {
        let t = fig1_linux_graph();
        assert!(t.contains("components: 10"));
    }

    #[test]
    fn fig3_smaller_than_fig2() {
        let hello = fig3_hello_graph();
        let nginx = fig2_nginx_graph();
        let n = |s: &str| -> usize {
            s.lines()
                .find(|l| l.starts_with("micro-libraries:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
                .unwrap()
        };
        assert!(n(&hello) < n(&nginx));
    }

    #[test]
    fn fig8_and_fig9_render() {
        assert!(fig8_image_sizes().contains("app-nginx"));
        assert!(fig9_cross_os_sizes().contains("Unikraft"));
    }
}
