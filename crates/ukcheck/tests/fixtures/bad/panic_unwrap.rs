// Known-bad: unwrap/expect on the datapath.
pub fn front(q: &[u8]) -> u8 {
    let first = *q.first().unwrap();
    let second = *q.get(1).expect("second byte");
    first ^ second
}
