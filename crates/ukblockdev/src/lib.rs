//! Block device micro-library (`ukblockdev`).
//!
//! The paper's architecture exposes `ukblockdev` (scenario ➇ in Figure 4)
//! so disk-bound applications can bypass the VFS and "optimize throughput
//! by coding against the ukblock API". Mirroring `uknetdev`, requests are
//! queued and completed asynchronously, queues can be polled or
//! interrupt-driven, and the application owns all buffers.
//!
//! Backends:
//! - [`ramdisk::RamDisk`] — sector store in memory (real reads/writes);
//! - [`virtio::VirtioBlk`] — wraps a ramdisk, charging the virtio kick +
//!   host copy costs per request, like a KVM `virtio-blk` device.

pub mod ramdisk;
pub mod virtio;

pub use ramdisk::RamDisk;
pub use virtio::VirtioBlk;

use ukplat::Result;

/// Sector size every backend uses.
pub const SECTOR_SIZE: usize = 512;

/// A block I/O request.
#[derive(Debug, Clone)]
pub enum BlockReq {
    /// Read `count` sectors starting at `lba`.
    Read {
        /// First sector.
        lba: u64,
        /// Sector count.
        count: u32,
    },
    /// Write the given data (multiple of the sector size) at `lba`.
    Write {
        /// First sector.
        lba: u64,
        /// Data to write.
        data: Vec<u8>,
    },
    /// Flush volatile caches.
    Flush,
}

/// A completed request.
#[derive(Debug, Clone)]
pub struct BlockCompletion {
    /// Token the request was submitted with.
    pub token: u64,
    /// Result: read data, or empty for writes/flushes.
    pub result: Result<Vec<u8>>,
}

/// Device geometry and capabilities.
#[derive(Debug, Clone, Copy)]
pub struct BlockDevInfo {
    /// Total sectors.
    pub sectors: u64,
    /// Sector size in bytes.
    pub sector_size: usize,
    /// Maximum sectors per request.
    pub max_sectors_per_req: u32,
    /// Whether the device is read-only.
    pub read_only: bool,
}

/// The `ukblockdev` interface.
pub trait BlockDev {
    /// Device geometry.
    fn info(&self) -> BlockDevInfo;

    /// Submits a request under a caller-chosen token.
    fn submit(&mut self, token: u64, req: BlockReq) -> Result<()>;

    /// Polls for completions, appending them to `out`; returns the count.
    fn poll(&mut self, out: &mut Vec<BlockCompletion>) -> usize;

    /// Convenience: synchronous read of whole sectors.
    fn read_sync(&mut self, lba: u64, count: u32) -> Result<Vec<u8>> {
        self.submit(u64::MAX, BlockReq::Read { lba, count })?;
        let mut done = Vec::new();
        self.poll(&mut done);
        done.pop()
            .expect("backends complete synchronously in this model")
            .result
    }

    /// Convenience: synchronous write.
    fn write_sync(&mut self, lba: u64, data: &[u8]) -> Result<()> {
        self.submit(
            u64::MAX,
            BlockReq::Write {
                lba,
                data: data.to_vec(),
            },
        )?;
        let mut done = Vec::new();
        self.poll(&mut done);
        done.pop()
            .expect("backends complete synchronously in this model")
            .result
            .map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sector_size_is_standard() {
        assert_eq!(SECTOR_SIZE, 512);
    }

    #[test]
    fn sync_helpers_roundtrip_on_ramdisk() {
        let mut d = RamDisk::new(128);
        let data = vec![0xabu8; SECTOR_SIZE * 2];
        d.write_sync(10, &data).unwrap();
        assert_eq!(d.read_sync(10, 2).unwrap(), data);
    }
}
