//! Mutex primitive.
//!
//! The mutex is a state machine over thread (context) ids rather than an OS
//! lock: in a single-address-space unikernel with a cooperative scheduler,
//! a mutex is just an owner field and a FIFO of waiters. Under
//! [`LockConfig::BARE`](crate::LockConfig::BARE) acquisition always succeeds
//! and no state is kept — the compile-out case of §3.3.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::LockConfig;

/// Outcome of a lock attempt by a context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Acquire {
    /// The caller now owns the mutex.
    Acquired,
    /// The mutex is held; the caller was queued and must block.
    MustWait,
}

#[derive(Debug, Default)]
struct MutexInner {
    owner: Option<u64>,
    waiters: VecDeque<u64>,
    contended: u64,
    acquisitions: u64,
}

/// A FIFO mutex over scheduler context ids.
///
/// # Examples
///
/// ```
/// use uklock::{LockConfig, Mutex};
/// use uklock::mutex::Acquire;
///
/// let m = Mutex::new(LockConfig::THREADED);
/// assert_eq!(m.lock(1), Acquire::Acquired);
/// assert_eq!(m.lock(2), Acquire::MustWait);
/// assert_eq!(m.unlock(1), Some(2)); // 2 should be woken and now owns it
/// ```
#[derive(Debug, Clone)]
pub struct Mutex {
    config: LockConfig,
    inner: Rc<RefCell<MutexInner>>,
}

impl Mutex {
    /// Creates a mutex under the given lock configuration.
    pub fn new(config: LockConfig) -> Self {
        Mutex {
            config,
            inner: Rc::new(RefCell::new(MutexInner::default())),
        }
    }

    /// Attempts to acquire for context `ctx`.
    ///
    /// Under `BARE` config this always succeeds (there is nobody to race).
    pub fn lock(&self, ctx: u64) -> Acquire {
        if !self.config.needs_state() {
            return Acquire::Acquired;
        }
        let mut inner = self.inner.borrow_mut();
        match inner.owner {
            None => {
                inner.owner = Some(ctx);
                inner.acquisitions += 1;
                Acquire::Acquired
            }
            Some(owner) if owner == ctx => {
                // Non-recursive: relocking is a bug in Unikraft too, but we
                // surface it as contention rather than deadlocking the sim.
                inner.contended += 1;
                inner.waiters.push_back(ctx);
                Acquire::MustWait
            }
            Some(_) => {
                inner.contended += 1;
                inner.waiters.push_back(ctx);
                Acquire::MustWait
            }
        }
    }

    /// Non-blocking attempt; never queues the caller.
    pub fn try_lock(&self, ctx: u64) -> bool {
        if !self.config.needs_state() {
            return true;
        }
        let mut inner = self.inner.borrow_mut();
        if inner.owner.is_none() {
            inner.owner = Some(ctx);
            inner.acquisitions += 1;
            true
        } else {
            false
        }
    }

    /// Releases the mutex held by `ctx`. Hands ownership to the first
    /// waiter, returning its context id so the scheduler can wake it.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` does not own the mutex (a genuine bug, matching
    /// Unikraft's `UK_ASSERT`).
    pub fn unlock(&self, ctx: u64) -> Option<u64> {
        if !self.config.needs_state() {
            return None;
        }
        let mut inner = self.inner.borrow_mut();
        assert_eq!(
            inner.owner,
            Some(ctx),
            "mutex unlocked by non-owner context {ctx}"
        );
        match inner.waiters.pop_front() {
            Some(next) => {
                inner.owner = Some(next);
                inner.acquisitions += 1;
                Some(next)
            }
            None => {
                inner.owner = None;
                None
            }
        }
    }

    /// Current owner, if any.
    pub fn owner(&self) -> Option<u64> {
        if !self.config.needs_state() {
            return None;
        }
        self.inner.borrow().owner
    }

    /// Number of lock attempts that had to wait.
    pub fn contended_count(&self) -> u64 {
        self.inner.borrow().contended
    }

    /// Number of successful acquisitions (including hand-offs).
    pub fn acquisition_count(&self) -> u64 {
        self.inner.borrow().acquisitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_lock_unlock() {
        let m = Mutex::new(LockConfig::THREADED);
        assert_eq!(m.lock(1), Acquire::Acquired);
        assert_eq!(m.owner(), Some(1));
        assert_eq!(m.unlock(1), None);
        assert_eq!(m.owner(), None);
    }

    #[test]
    fn contended_lock_queues_fifo() {
        let m = Mutex::new(LockConfig::THREADED);
        assert_eq!(m.lock(1), Acquire::Acquired);
        assert_eq!(m.lock(2), Acquire::MustWait);
        assert_eq!(m.lock(3), Acquire::MustWait);
        assert_eq!(m.unlock(1), Some(2));
        assert_eq!(m.owner(), Some(2));
        assert_eq!(m.unlock(2), Some(3));
        assert_eq!(m.unlock(3), None);
        assert_eq!(m.contended_count(), 2);
        assert_eq!(m.acquisition_count(), 3);
    }

    #[test]
    fn try_lock_never_queues() {
        let m = Mutex::new(LockConfig::THREADED);
        assert!(m.try_lock(1));
        assert!(!m.try_lock(2));
        assert_eq!(m.contended_count(), 0);
    }

    #[test]
    fn bare_config_is_noop() {
        let m = Mutex::new(LockConfig::BARE);
        assert_eq!(m.lock(1), Acquire::Acquired);
        assert_eq!(m.lock(2), Acquire::Acquired);
        assert_eq!(m.unlock(9), None);
        assert_eq!(m.owner(), None);
    }

    #[test]
    #[should_panic(expected = "non-owner")]
    fn unlock_by_non_owner_panics() {
        let m = Mutex::new(LockConfig::THREADED);
        m.lock(1);
        m.unlock(2);
    }
}
