//! libc micro-libraries and the automated-porting link model.
//!
//! §4 of the paper: Unikraft ports musl ("largely glibc-compatible but
//! more resource efficient") and newlib, plus provides `nolibc`, a
//! minimal Unikraft-specific libc. Applications are built with their
//! *native* build systems and the resulting static archives are linked
//! against Unikraft; whether that link succeeds depends on which symbols
//! the chosen libc provides. A glibc compatibility layer — "a series of
//! musl patches and 20 other functions that we implement by hand (mostly
//! 64-bit versions of file operations such as pread or pwrite)" — closes
//! the remaining gaps, which is what Table 2's "compat layer" column
//! shows.
//!
//! [`profile::LibcProfile`] models the symbol sets; [`linker::link`] is
//! the resolver that reproduces Table 2's outcomes mechanically.

pub mod linker;
pub mod profile;

pub use linker::{link, AppArchive, LinkOutcome};
pub use profile::{LibcKind, LibcProfile};
