// Known-bad: panicking macros on the datapath.
pub fn demux(kind: u8) -> u8 {
    match kind {
        6 => 1,
        17 => 2,
        _ => unreachable!("unknown protocol"),
    }
}
