//! Integration: failure injection across subsystem boundaries.
//!
//! A production OS library must fail loudly and cleanly: boots abort on
//! driver errors, allocators report exhaustion instead of corrupting,
//! rings drop instead of overrunning, and filesystems return errno.

use unikraft_rs::alloc::AllocBackend;
use unikraft_rs::boot::sequence::{BootConfig, BootSequence};
use unikraft_rs::core::UnikernelBuilder;
use unikraft_rs::netdev::backend::VhostKind;
use unikraft_rs::netdev::dev::{NetDev, NetDevConf};
use unikraft_rs::netdev::netbuf::Netbuf;
use unikraft_rs::netdev::VirtioNet;
use unikraft_rs::plat::time::Tsc;
use unikraft_rs::plat::vmm::VmmKind;
use unikraft_rs::plat::Errno;

#[test]
fn failing_driver_aborts_boot_cleanly() {
    let mut seq = BootSequence::new(BootConfig::hello(VmmKind::Firecracker));
    seq.add_stage("flaky-nic", |_, _| Err(Errno::Io));
    assert_eq!(seq.run().unwrap_err(), Errno::Io);
    // Nothing half-initialized leaks out.
    assert!(seq.registry_mut().is_none());
}

#[test]
fn boot_time_allocation_failure_propagates() {
    let mut seq = BootSequence::new(BootConfig::hello(VmmKind::Solo5));
    seq.add_stage("greedy-driver", |_, reg| {
        let id = reg.default_id().ok_or(Errno::NoMem)?;
        // Demand far more than the 8 MiB hello heap.
        for _ in 0..10_000 {
            reg.malloc(id, 64 * 1024).ok_or(Errno::NoMem)?;
        }
        Ok(())
    });
    assert_eq!(seq.run().unwrap_err(), Errno::NoMem);
}

#[test]
fn rx_ring_overflow_drops_instead_of_growing() {
    let tsc = Tsc::new(3_600_000_000);
    let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
    dev.configure(NetDevConf {
        ring_size: 64,
        ..Default::default()
    })
    .unwrap();
    let frames: Vec<Netbuf> = (0..200)
        .map(|_| {
            let mut nb = Netbuf::alloc(128, 0);
            nb.set_len(60);
            nb
        })
        .collect();
    let mut frames = frames;
    let injected = dev.inject_rx(0, &mut frames).unwrap();
    assert_eq!(frames.len(), 200 - 64, "overflow stays with the caller");
    assert_eq!(injected.frames, 64, "ring capacity bounds acceptance");
    assert_eq!(injected.drops, 200 - 64, "overflow counted as drops");
    let mut out = Vec::new();
    let st = dev.rx_burst(0, &mut out, 256).unwrap();
    assert!(st.received <= 64);
}

#[test]
fn allocator_exhaustion_is_reported_not_fatal() {
    for backend in AllocBackend::all() {
        let mut a = backend.instantiate();
        a.init(1 << 20, 256 * 1024).unwrap();
        let mut taken = Vec::new();
        // 2 KiB blocks: enough of them that even Oscar's 64-block
        // quarantine drains during the free phase below.
        while let Some(p) = a.malloc(2048) {
            taken.push(p);
            assert!(taken.len() < 10_000, "{:?} never exhausts", backend.name());
        }
        assert!(a.stats().failed_count > 0, "{}", backend.name());
        // After frees, a same-sized request succeeds again (size-class
        // sharded allocators only reuse within the class; Oscar delays
        // reuse behind its quarantine, so drain everything for it).
        if a.reclaims() && !taken.is_empty() {
            for p in taken.drain(..) {
                a.free(p);
            }
            assert!(a.malloc(2048).is_some(), "{}", backend.name());
        }
    }
}

#[test]
fn vfs_errors_map_to_errnos() {
    let mut uk = UnikernelBuilder::new("errs").build().unwrap();
    uk.boot().unwrap();
    let vfs = uk.vfs_mut().unwrap();
    assert_eq!(vfs.open("/missing").unwrap_err(), Errno::NoEnt);
    assert_eq!(vfs.open("relative").unwrap_err(), Errno::Inval);
    vfs.mkdir("/d").unwrap();
    assert_eq!(vfs.open("/d").unwrap_err(), Errno::IsDir);
    let fd = vfs.create("/f").unwrap();
    vfs.close(fd).unwrap();
    assert_eq!(vfs.read(fd, 1).unwrap_err(), Errno::BadF);
}

#[test]
fn oversized_workset_fails_but_unikernel_survives() {
    let mut uk = UnikernelBuilder::new("survivor")
        .memory(8 * 1024 * 1024)
        .allocator(AllocBackend::Tlsf)
        .build()
        .unwrap();
    uk.boot().unwrap();
    assert_eq!(
        uk.allocate_workset(1 << 30).unwrap_err(),
        Errno::NoMem
    );
    // The VFS still functions after the failed allocation burst.
    let vfs = uk.vfs_mut().unwrap();
    let fd = vfs.create("/still-alive").unwrap();
    vfs.write(fd, b"ok").unwrap();
}

#[test]
fn stack_rejects_traffic_for_foreign_addresses() {
    use unikraft_rs::netstack::stack::{NetStack, StackConfig};
    let tsc = Tsc::new(3_600_000_000);
    let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
    dev.configure(NetDevConf::default()).unwrap();
    let mut stack = NetStack::new(StackConfig::node(1), Box::new(dev));
    // Inject a frame addressed to someone else's MAC.
    let mut frame = Vec::new();
    frame.extend_from_slice(&[0x02, 0, 0, 0, 0, 99]); // dst: node 99
    frame.extend_from_slice(&[0x02, 0, 0, 0, 0, 2]); // src
    frame.extend_from_slice(&0x0800u16.to_be_bytes());
    frame.extend_from_slice(&[0u8; 28]);
    let mut nb = Netbuf::alloc(frame.len().max(64), 0);
    nb.set_payload(&frame);
    stack.deliver_frame(nb);
    stack.pump();
    assert_eq!(stack.stats().dropped, 1);
}
