//! Criterion benches for the zero-copy pooled **burst** datapath.
//!
//! Measures full stack round-trips over the in-process wire (client
//! stack → device → wire → server stack and back) in the ablation
//! matrix of the burst-datapath PR:
//!
//! - **per_frame vs burst32** — one echo per turn (every layer crossed
//!   once per packet) vs 32 echoes per turn (one staged TX burst, one
//!   `inject_rx` per wire hop, one demux sweep per `rx_burst` batch);
//! - **offload vs no_offload** — TCP/UDP checksums stamped as partial
//!   pseudo-header sums and completed by the virtio model vs computed
//!   in software by the stack;
//! - **pooled vs heap_bufs** — the PR 2 buffer-pool ablation, kept for
//!   trajectory continuity.
//!
//! Since the large-transfer fast path landed, the report also carries
//! a **bulk-throughput matrix**: 4 KB / 64 KB / 1 MB client→server
//! transfers across the `{tso, rx_csum_offload}` ablation grid —
//! bytes/s and allocs/frame per cell, with the 64 KB TSO-vs-software
//! speedup as the headline number.
//!
//! Since the receive-side fast path landed, a **receive-path matrix**
//! rides along: a per-MSS (non-TSO) sender streams 64 KB / 1 MB while
//! only the *receiver's* time is on the clock (`Network::transfer`
//! moves the wire, the two pumps are driven — and timed — separately),
//! across the `{gro, netbuf-vs-copy recv}` grid. The headline is the
//! 64 KB GRO-on vs GRO-off receive throughput.
//!
//! Since loss-tolerant TCP landed, a **goodput-vs-loss matrix** rides
//! along: a per-MSS sender streams 1 MB per rep through a wire
//! dropping every {∞, 64th, 16th, 8th} frame, with the virtual clock
//! arming the retransmission timers and NewReno switchable — goodput
//! (recovery overhead included) per cell, plus what the recovery did
//! (retransmits, fast retransmits, RTO fires). The headline asserts
//! goodput at 1/64 drop holds ≥ 50% of the lossless baseline.
//!
//! Since the lifecycle control plane landed, a **connection-scale
//! grid** rides along: 1K / 10K / 100K established-idle connections
//! on one lean-TCB stack (forged handshakes completed through the
//! wire capture), measuring establishment rate, resident bytes per
//! connection (linear in conn count, enforced), and the echo hot path
//! threading the idle population (allocation-free at every scale,
//! enforced) — plus connect/close churn rate through TIME_WAIT and
//! accept throughput under a 10×-backlog SYN flood.
//!
//! Since surgical loss recovery landed, a **recovery grid** rides
//! along: wire {lossless, 1/8 drop, adjacent reorder, both} ×
//! recovery {off, sack, rack, sack+rack, sack+rack+pacing}, cc on.
//! Each cell records wall-clock goodput *and* the deterministic
//! virtual wire-step count (the A/B gates compare steps, immune to
//! host noise): sack must not cost wire time vs rack-only, sack+rack
//! must beat blind go-back-N outright and hold ≥ 32% of lossless at a
//! 1-in-8 drop (2× the PR 7 figure), reorder-only cells must show
//! zero false fast retransmits, and lossless cells stay
//! allocation-free.
//!
//! The binary installs `ukalloc::stats::CountingAlloc` as its global
//! allocator, so alongside the ns/iter numbers it prints measured
//! **allocations per frame** (expected: 0.000 on every pooled config,
//! enforced), round-trips/s and ns/RTT. With `--json <path>` the
//! ablation table is also written as machine-readable JSON
//! (`make bench-json` → `BENCH_PR9.json`), so the perf trajectory is
//! diffable across PRs. Since the observability layer landed, each
//! JSON cell carries the `ukstats` counter deltas measured inside its
//! timed window (what the datapath *did*, not just how long it took),
//! the document ends with a full registry snapshot, and the human
//! tables ride the `ukcore` leveled log macros — `--json` runs drop
//! the level to `Warn`, so nothing pollutes machine-readable output.

use std::time::Instant;

use criterion::{criterion_group, Criterion};
use ukalloc::stats::AllocCounter;
use uknetdev::backend::VhostKind;
use uknetdev::dev::{NetDev, NetDevConf};
use uknetdev::VirtioNet;
use uknetstack::stack::{NetStack, SocketHandle, StackConfig};
use uknetstack::testnet::Network;
use uknetstack::{Endpoint, Ipv4Addr};
use ukplat::time::Tsc;

#[global_allocator]
static COUNTING: ukalloc::stats::CountingAlloc = ukalloc::stats::CountingAlloc;

/// Non-zero `ukstats` counter deltas since `base`, as a JSON object.
/// Called only after the cell's `AllocCounter` window closed —
/// snapshotting allocates.
fn stats_delta_json(base: &ukstats::Snapshot) -> String {
    let mut out = String::from("{");
    for (i, c) in ukstats::snapshot().counters_since(base).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", c.name, c.value));
    }
    out.push('}');
    out
}

/// Echoes per burst turn (matches `MAX_BURST / 2` and the zero-alloc
/// guard's batch).
const BURST: usize = 32;

fn mk_stack(n: u8, pools: bool, offload: bool) -> NetStack {
    mk_stack_cfg(n, pools, offload, true, true)
}

fn mk_stack_cfg(n: u8, pools: bool, offload: bool, tso: bool, rx_csum: bool) -> NetStack {
    let tsc = Tsc::new(ukplat::cost::CPU_FREQ_HZ);
    let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
    dev.configure(NetDevConf::default()).unwrap();
    let mut cfg = StackConfig::node(n);
    cfg.use_pools = pools;
    cfg.tx_csum_offload = offload;
    cfg.tso = tso;
    cfg.rx_csum_offload = rx_csum;
    NetStack::new(cfg, Box::new(dev))
}

/// A stack for the receive-path matrix: TSO switchable on the sender
/// (off = the per-MSS workload GRO targets), GRO switchable on the
/// receiver.
fn mk_stack_recv(n: u8, tso: bool, gro: bool) -> NetStack {
    let tsc = Tsc::new(ukplat::cost::CPU_FREQ_HZ);
    let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
    dev.configure(NetDevConf::default()).unwrap();
    let mut cfg = StackConfig::node(n);
    cfg.tso = tso;
    cfg.gro = gro;
    NetStack::new(cfg, Box::new(dev))
}

/// A warmed-up two-node net with an established TCP echo connection.
struct TcpHarness {
    net: Network,
    ci: usize,
    si: usize,
    client: SocketHandle,
    server: SocketHandle,
    buf: Vec<u8>,
}

impl TcpHarness {
    fn new(pools: bool, offload: bool) -> Self {
        let mut net = Network::new();
        let ci = net.attach(mk_stack(1, pools, offload));
        let si = net.attach(mk_stack(2, pools, offload));
        let listener = net.stack(si).tcp_listen(7).unwrap();
        let client = net
            .stack(ci)
            .tcp_connect(Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 7))
            .unwrap();
        net.run_until_quiet(32);
        let server = net.stack(si).tcp_accept(listener).unwrap();
        let mut h = TcpHarness {
            net,
            ci,
            si,
            client,
            server,
            buf: vec![0; 4096],
        };
        for _ in 0..8 {
            h.round_trip(&[0x42; 512]);
        }
        for _ in 0..4 {
            h.burst_round_trip(&[0x42; 512]);
        }
        h
    }

    /// One echo per turn: the per-frame baseline.
    fn round_trip(&mut self, payload: &[u8]) {
        self.net.stack(self.ci).tcp_send(self.client, payload).unwrap();
        self.net.run_until_quiet(32);
        let n = self
            .net
            .stack(self.si)
            .tcp_recv_into(self.server, &mut self.buf)
            .unwrap();
        let buf = std::mem::take(&mut self.buf);
        self.net.stack(self.si).tcp_send(self.server, &buf[..n]).unwrap();
        self.buf = buf;
        self.net.run_until_quiet(32);
        self.net
            .stack(self.ci)
            .tcp_recv_into(self.client, &mut self.buf)
            .unwrap();
    }

    /// [`BURST`] echoes per turn through the burst path: requests are
    /// queued (`tcp_send_queued`) and emitted as one staged TX burst
    /// (`flush_output`); the wire then moves each hop's frames with
    /// one `deliver_burst` per step and the server echoes the whole
    /// batch back the same way.
    fn burst_round_trip(&mut self, payload: &[u8]) {
        for _ in 0..BURST {
            self.net
                .stack(self.ci)
                .tcp_send_queued(self.client, payload)
                .unwrap();
        }
        self.net.stack(self.ci).flush_output().unwrap();
        self.net.run_until_quiet(64);
        loop {
            let n = self
                .net
                .stack(self.si)
                .tcp_recv_into(self.server, &mut self.buf)
                .unwrap();
            if n == 0 {
                break;
            }
            let buf = std::mem::take(&mut self.buf);
            self.net
                .stack(self.si)
                .tcp_send_queued(self.server, &buf[..n])
                .unwrap();
            self.buf = buf;
        }
        self.net.stack(self.si).flush_output().unwrap();
        self.net.run_until_quiet(64);
        loop {
            let n = self
                .net
                .stack(self.ci)
                .tcp_recv_into(self.client, &mut self.buf)
                .unwrap();
            if n == 0 {
                break;
            }
        }
    }

    fn tx_frames(&mut self) -> u64 {
        self.net.stack(self.ci).stats().tx_frames + self.net.stack(self.si).stats().tx_frames
    }
}

/// A warmed-up two-node net with bound UDP sockets and resolved ARP.
struct UdpHarness {
    net: Network,
    ci: usize,
    si: usize,
    cs: SocketHandle,
    ss: SocketHandle,
    ep: Endpoint,
    buf: Vec<u8>,
    msgs: Vec<(Endpoint, usize)>,
}

impl UdpHarness {
    fn new(pools: bool, offload: bool) -> Self {
        let mut net = Network::new();
        let ci = net.attach(mk_stack(1, pools, offload));
        let si = net.attach(mk_stack(2, pools, offload));
        let ss = net.stack(si).udp_bind(9).unwrap();
        let cs = net.stack(ci).udp_bind(5000).unwrap();
        let ep = Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 9);
        let mut h = UdpHarness {
            net,
            ci,
            si,
            cs,
            ss,
            ep,
            buf: vec![0; BURST * 2048],
            msgs: Vec::with_capacity(BURST),
        };
        for _ in 0..8 {
            h.round_trip(&[0x5a; 256]);
        }
        for _ in 0..4 {
            h.burst_round_trip(&[0x5a; 256]);
        }
        h
    }

    fn round_trip(&mut self, payload: &[u8]) {
        self.net.stack(self.ci).udp_send_to(self.cs, payload, self.ep).unwrap();
        self.net.run_until_quiet(16);
        let (from, n) = self
            .net
            .stack(self.si)
            .udp_recv_into(self.ss, &mut self.buf)
            .unwrap();
        let buf = std::mem::take(&mut self.buf);
        self.net.stack(self.si).udp_send_to(self.ss, &buf[..n], from).unwrap();
        self.buf = buf;
        self.net.run_until_quiet(16);
        self.net
            .stack(self.ci)
            .udp_recv_into(self.cs, &mut self.buf)
            .unwrap();
    }

    /// [`BURST`] datagrams per turn through `udp_send_burst` /
    /// `udp_recv_burst_into` (the recvmmsg/sendmmsg shape).
    fn burst_round_trip(&mut self, payload: &[u8]) {
        let ep = self.ep;
        let sent = self
            .net
            .stack(self.ci)
            .udp_send_burst(self.cs, std::iter::repeat((payload, ep)).take(BURST))
            .unwrap();
        assert_eq!(sent, BURST);
        self.net.run_until_quiet(16);
        self.msgs.clear();
        let n = self
            .net
            .stack(self.si)
            .udp_recv_burst_into(self.ss, &mut self.buf, &mut self.msgs, BURST);
        assert_eq!(n, BURST);
        let buf = std::mem::take(&mut self.buf);
        let mut off = 0;
        let replies = self.msgs.iter().map(|&(from, len)| {
            let s = &buf[off..off + len];
            off += len;
            (s, from)
        });
        self.net.stack(self.si).udp_send_burst(self.ss, replies).unwrap();
        self.buf = buf;
        self.net.run_until_quiet(16);
        self.msgs.clear();
        let m = self
            .net
            .stack(self.ci)
            .udp_recv_burst_into(self.cs, &mut self.buf, &mut self.msgs, BURST);
        assert_eq!(m, BURST);
    }
}

/// A warmed-up two-node net moving bulk data client → server: the
/// large-transfer fast path (scatter-gather super-segments + TSO
/// cutting + RX checksum offload), with both offloads switchable for
/// the ablation matrix.
struct BulkHarness {
    net: Network,
    ci: usize,
    si: usize,
    client: SocketHandle,
    server: SocketHandle,
    buf: Vec<u8>,
}

impl BulkHarness {
    fn new(tso: bool, rx_csum: bool) -> Self {
        let mut net = Network::new();
        let ci = net.attach(mk_stack_cfg(1, true, true, tso, rx_csum));
        let si = net.attach(mk_stack_cfg(2, true, true, tso, rx_csum));
        let listener = net.stack(si).tcp_listen(9000).unwrap();
        let client = net
            .stack(ci)
            .tcp_connect(Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 9000))
            .unwrap();
        net.run_until_quiet(32);
        let server = net.stack(si).tcp_accept(listener).unwrap();
        let mut h = BulkHarness {
            net,
            ci,
            si,
            client,
            server,
            buf: vec![0; 64 * 1024],
        };
        for _ in 0..3 {
            h.transfer(64 * 1024);
        }
        h
    }

    /// Streams `total` bytes client → server, draining as they
    /// arrive (window stays open).
    fn transfer(&mut self, total: usize) {
        const CHUNK: [u8; 64 * 1024] = [0x6b; 64 * 1024];
        let mut sent = 0;
        let mut got = 0;
        while got < total {
            if sent < total {
                let want = CHUNK.len().min(total - sent);
                let n = self
                    .net
                    .stack(self.ci)
                    .tcp_send_queued(self.client, &CHUNK[..want])
                    .unwrap_or(0);
                sent += n;
                self.net.stack(self.ci).flush_output().unwrap();
            }
            self.net.step();
            loop {
                let n = self
                    .net
                    .stack(self.si)
                    .tcp_recv_into(self.server, &mut self.buf)
                    .unwrap();
                if n == 0 {
                    break;
                }
                got += n;
            }
        }
    }

    fn tx_frames(&mut self) -> u64 {
        self.net.stack(self.ci).stats().tx_frames + self.net.stack(self.si).stats().tx_frames
    }
}

/// The receive-path harness: a per-MSS (non-TSO) sender streaming to a
/// receiver whose GRO and receive mode (zero-copy netbuf vs copy) are
/// the ablation axes. Unlike [`BulkHarness`] it drives the wire and
/// the two pumps separately (`Network::transfer`), timing **only the
/// receiver's share** — the pump that ingests the burst plus the
/// drain — so the cells isolate receive-path cost instead of diluting
/// it with sender-side segmentation.
struct RecvHarness {
    net: Network,
    ci: usize,
    si: usize,
    client: SocketHandle,
    server: SocketHandle,
    buf: Vec<u8>,
    bufs: Vec<uknetdev::netbuf::Netbuf>,
}

impl RecvHarness {
    fn new(gro: bool) -> Self {
        let mut net = Network::new();
        let ci = net.attach(mk_stack_recv(1, false, gro)); // tso off: per-MSS frames.
        let si = net.attach(mk_stack_recv(2, false, gro));
        let listener = net.stack(si).tcp_listen(9100).unwrap();
        let client = net
            .stack(ci)
            .tcp_connect(Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 9100))
            .unwrap();
        net.run_until_quiet(32);
        let server = net.stack(si).tcp_accept(listener).unwrap();
        let mut h = RecvHarness {
            net,
            ci,
            si,
            client,
            server,
            buf: vec![0; 64 * 1024],
            bufs: Vec::with_capacity(64),
        };
        for _ in 0..3 {
            h.transfer(64 * 1024, true);
            h.transfer(64 * 1024, false);
        }
        h
    }

    /// Streams `total` bytes client → server and returns the seconds
    /// spent on the receiver's side (ingest pump + drain). `netbuf`
    /// selects the zero-copy drain (`tcp_recv_burst_netbuf`, buffers
    /// recycled) vs the copy drain (`tcp_recv_into`).
    fn transfer(&mut self, total: usize, netbuf: bool) -> f64 {
        const CHUNK: [u8; 64 * 1024] = [0x6b; 64 * 1024];
        let mut recv_secs = 0.0;
        let mut sent = 0;
        let mut got = 0;
        while got < total {
            if sent < total {
                let want = CHUNK.len().min(total - sent);
                let n = self
                    .net
                    .stack(self.ci)
                    .tcp_send_queued(self.client, &CHUNK[..want])
                    .unwrap_or(0);
                sent += n;
                self.net.stack(self.ci).flush_output().unwrap();
            }
            self.net.transfer(); // Data frames to the receiver.
            let t0 = Instant::now();
            self.net.stack(self.si).pump();
            if netbuf {
                loop {
                    let n = self
                        .net
                        .stack(self.si)
                        .tcp_recv_burst_netbuf(self.server, &mut self.bufs, 64);
                    if n == 0 {
                        break;
                    }
                    for nb in self.bufs.drain(..) {
                        got += nb.payload().len();
                        self.net.stack(self.si).recycle(nb);
                    }
                }
            } else {
                loop {
                    let n = self
                        .net
                        .stack(self.si)
                        .tcp_recv_into(self.server, &mut self.buf)
                        .unwrap();
                    if n == 0 {
                        break;
                    }
                    got += n;
                }
            }
            recv_secs += t0.elapsed().as_secs_f64();
            self.net.transfer(); // ACKs / window updates back.
            self.net.stack(self.ci).pump();
        }
        recv_secs
    }

    fn rx_frames(&mut self) -> u64 {
        self.net.stack(self.si).stats().rx_frames
    }

    fn gro_runs(&mut self) -> u64 {
        self.net.stack(self.si).stats().gro_runs
    }
}

/// The loss-recovery harness: a per-MSS (non-TSO) sender — the frame
/// shape the testnet fault injector acts on — streaming through a
/// lossy wire with a shared virtual clock arming the retransmission
/// timers. The congestion-control ablation switch and the drop cadence
/// are the matrix axes; goodput is application bytes delivered per
/// wall-clock second, recovery overhead included.
struct LossHarness {
    net: Network,
    ci: usize,
    si: usize,
    client: SocketHandle,
    server: SocketHandle,
    buf: Vec<u8>,
    /// Wire steps driven so far (5 ms of virtual time each). The
    /// recovery grid measures goodput against this virtual clock —
    /// deterministic given the deterministic fault schedule, so its
    /// gates are exact instead of wall-clock-noise-tolerant.
    steps: u64,
}

impl LossHarness {
    /// The PR 7 matrix shape: stack-default recovery (SACK + RACK on,
    /// pacing off), drop cadence as the only fault.
    fn new(cc: bool, drop_every: u64) -> Self {
        Self::with_recovery(cc, drop_every, 0, true, true, false)
    }

    /// Full-grid constructor: the three recovery switches and the
    /// adjacent-reorder cadence become axes alongside the drop rate.
    fn with_recovery(
        cc: bool,
        drop_every: u64,
        reorder_every: u64,
        sack: bool,
        rack: bool,
        pacing: bool,
    ) -> Self {
        let mk = |n: u8| {
            let tsc = Tsc::new(ukplat::cost::CPU_FREQ_HZ);
            let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
            dev.configure(NetDevConf::default()).unwrap();
            let mut cfg = StackConfig::node(n);
            cfg.tso = false; // Plain per-MSS frames: droppable.
            cfg.congestion_control = cc;
            cfg.sack = sack;
            cfg.rack = rack;
            cfg.pacing = pacing;
            NetStack::new(cfg, Box::new(dev))
        };
        let mut net = Network::new();
        let ci = net.attach(mk(1));
        let si = net.attach(mk(2));
        let clock = Tsc::new(1_000_000_000); // 1 cycle = 1 ns.
        net.set_clock(&clock);
        // 5 ms of virtual time per step: RTO waits (200 ms floor) cost
        // tens of steps, not thousands, while lossless cells never wait.
        net.set_step_ns(5_000_000);
        // Establish on a clean wire, then arm the schedule.
        let listener = net.stack(si).tcp_listen(9200).unwrap();
        let client = net
            .stack(ci)
            .tcp_connect(Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 9200))
            .unwrap();
        net.run_until_quiet(32);
        let server = net.stack(si).tcp_accept(listener).unwrap();
        net.set_drop_every(drop_every);
        net.set_reorder_every(reorder_every);
        let mut h = LossHarness {
            net,
            ci,
            si,
            client,
            server,
            buf: vec![0; 64 * 1024],
            steps: 0,
        };
        for _ in 0..3 {
            h.transfer(64 * 1024);
        }
        h
    }

    /// Streams `total` bytes client → server through the lossy wire,
    /// draining as they arrive.
    fn transfer(&mut self, total: usize) {
        const CHUNK: [u8; 64 * 1024] = [0x6b; 64 * 1024];
        let mut sent = 0;
        let mut got = 0;
        while got < total {
            if sent < total {
                let want = CHUNK.len().min(total - sent);
                let n = self
                    .net
                    .stack(self.ci)
                    .tcp_send_queued(self.client, &CHUNK[..want])
                    .unwrap_or(0);
                sent += n;
                self.net.stack(self.ci).flush_output().unwrap();
            }
            self.net.step();
            self.steps += 1;
            loop {
                let n = self
                    .net
                    .stack(self.si)
                    .tcp_recv_into(self.server, &mut self.buf)
                    .unwrap();
                if n == 0 {
                    break;
                }
                got += n;
            }
        }
    }

    /// `(rto_fires, retransmits, fast_retransmits)` on the sender.
    fn loss_stats(&mut self) -> (u64, u64, u64) {
        let (rto, rtx, fast, _) = self.net.stack(self.ci).tcp_loss_stats(self.client);
        (rto, rtx, fast)
    }

    /// `(sack_rtx, spurious_rtx, tlp_probes, paced_releases)` on the
    /// sender.
    fn recovery_stats(&mut self) -> (u64, u64, u64, u64) {
        let (sack_rtx, spur, tlp, paced, _) =
            self.net.stack(self.ci).tcp_recovery_stats(self.client);
        (sack_rtx, spur, tlp, paced)
    }

    fn tx_frames(&mut self) -> u64 {
        self.net.stack(self.ci).stats().tx_frames + self.net.stack(self.si).stats().tx_frames
    }
}

/// Resident-set size of this process (Linux `statm`), the basis of the
/// memory-vs-connection-count cells. Coarse (page granularity, shared
/// pages included) but the deltas at 10K–100K connections are tens of
/// megabytes — far above the noise.
fn rss_bytes() -> u64 {
    let statm = std::fs::read_to_string("/proc/self/statm").unwrap_or_default();
    let pages: u64 = statm
        .split_whitespace()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    pages * 4096
}

/// Reads one `ukstats` counter (0 when stats are compiled out).
fn stat_counter(name: &str) -> u64 {
    ukstats::snapshot().counter(name).unwrap_or(0)
}

/// The connection-scale harness: one lean-TCB server stack holding
/// thousands of established-but-idle connections (forged handshakes
/// from spoofed peers, completed through the wire capture), plus one
/// real client connection threading the population so the hot path
/// can be timed — and allocation-checked — at scale.
struct ScaleHarness {
    net: Network,
    ci: usize,
    si: usize,
    listener: SocketHandle,
    client: SocketHandle,
    server: SocketHandle,
    established: Vec<SocketHandle>,
    next_peer: usize,
    buf: Vec<u8>,
}

impl ScaleHarness {
    fn new() -> Self {
        let mk = |n: u8, lean: bool| {
            let tsc = Tsc::new(ukplat::cost::CPU_FREQ_HZ);
            let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
            dev.configure(NetDevConf::default()).unwrap();
            let mut cfg = StackConfig::node(n);
            cfg.lean_tcbs = lean;
            cfg.listen_backlog = 1024;
            NetStack::new(cfg, Box::new(dev))
        };
        let mut net = Network::new();
        let ci = net.attach(mk(1, false));
        let si = net.attach(mk(2, true));
        let clock = Tsc::new(1_000_000_000); // 1 cycle = 1 ns.
        net.set_clock(&clock);
        net.set_step_ns(1_000_000); // 1 ms per step.
        let listener = net.stack(si).tcp_listen(9300).unwrap();
        let client = net
            .stack(ci)
            .tcp_connect(Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 9300))
            .unwrap();
        net.run_until_quiet(32);
        let server = net.stack(si).tcp_accept(listener).unwrap();
        let mut h = ScaleHarness {
            net,
            ci,
            si,
            listener,
            client,
            server,
            established: Vec::new(),
            next_peer: 0,
            buf: vec![0; 4096],
        };
        for _ in 0..8 {
            h.echo();
        }
        h
    }

    /// Grows the idle population to `target` established connections,
    /// in waves sized to the accept backlog.
    fn grow_to(&mut self, target: usize) {
        while self.established.len() < target {
            let wave = (target - self.established.len()).min(512);
            let done = self
                .net
                .forge_established(self.si, 9300, self.next_peer, wave, 64);
            assert_eq!(done, wave, "every forged handshake completed");
            self.next_peer += wave;
            while let Some(h) = self.net.stack(self.si).tcp_accept(self.listener) {
                self.established.push(h);
            }
        }
        assert_eq!(self.established.len(), target, "population reached");
    }

    /// One 512 B echo round-trip on the live connection threading the
    /// idle population — the hot path whose cost and allocation count
    /// the scale cells measure.
    fn echo(&mut self) {
        self.net
            .stack(self.ci)
            .tcp_send(self.client, &[0x42; 512])
            .unwrap();
        self.net.run_until_quiet(32);
        let n = self
            .net
            .stack(self.si)
            .tcp_recv_into(self.server, &mut self.buf)
            .unwrap();
        let buf = std::mem::take(&mut self.buf);
        self.net
            .stack(self.si)
            .tcp_send(self.server, &buf[..n])
            .unwrap();
        self.buf = buf;
        self.net.run_until_quiet(32);
        self.net
            .stack(self.ci)
            .tcp_recv_into(self.client, &mut self.buf)
            .unwrap();
    }
}

/// One row of the connection-scale grid.
struct ScaleRow {
    name: String,
    conns: usize,
    setup_per_s: f64,
    rss_bytes_per_conn: f64,
    echo_rtt_per_s: f64,
    allocs_per_rtt: f64,
    stats: String,
}

/// Connect/accept/close cycle rate on a clocked two-node net (active
/// closer walks FIN_WAIT → TIME_WAIT; the wheel reaps 2MSL parks as
/// virtual time advances, so TIME_WAIT population stays bounded while
/// cycles run back-to-back).
fn conn_churn_rate(cycles: usize) -> (f64, u64) {
    let mk = |n: u8| {
        let tsc = Tsc::new(ukplat::cost::CPU_FREQ_HZ);
        let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
        dev.configure(NetDevConf::default()).unwrap();
        NetStack::new(StackConfig::node(n), Box::new(dev))
    };
    let mut net = Network::new();
    let ci = net.attach(mk(1));
    let si = net.attach(mk(2));
    let clock = Tsc::new(1_000_000_000);
    net.set_clock(&clock);
    net.set_step_ns(5_000_000); // 5 ms: TIME_WAIT drains across cycles.
    let listener = net.stack(si).tcp_listen(9400).unwrap();
    let ep = Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 9400);
    // Warmup.
    for _ in 0..16 {
        let c = net.stack(ci).tcp_connect(ep).unwrap();
        net.run_until_quiet(32);
        let s = net.stack(si).tcp_accept(listener).unwrap();
        net.stack(ci).tcp_close(c).unwrap();
        net.stack(si).tcp_close(s).unwrap();
        net.run_until_quiet(32);
    }
    let tw0 = stat_counter("netstack.tcp.timewait");
    let start = Instant::now();
    for _ in 0..cycles {
        let c = net.stack(ci).tcp_connect(ep).unwrap();
        net.run_until_quiet(32);
        let s = net.stack(si).tcp_accept(listener).expect("cycle accepted");
        net.stack(ci).tcp_close(c).unwrap();
        net.stack(si).tcp_close(s).unwrap();
        net.run_until_quiet(32);
    }
    let elapsed = start.elapsed().as_secs_f64();
    (
        cycles as f64 / elapsed,
        stat_counter("netstack.tcp.timewait") - tw0,
    )
}

/// Accept throughput for a legitimate client while a SYN flood ten
/// times the listener's backlog hammers the same port each round.
/// Returns `(accepts_per_s, syn_overflow_delta)` — and panics if the
/// legitimate client ever fails to get through, since surviving the
/// flood is the property the cell exists to measure.
fn accept_rate_under_flood(rounds: usize) -> (f64, u64) {
    let mk = |n: u8| {
        let tsc = Tsc::new(ukplat::cost::CPU_FREQ_HZ);
        let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
        dev.configure(NetDevConf::default()).unwrap();
        NetStack::new(StackConfig::node(n), Box::new(dev)) // backlog 64.
    };
    let mut net = Network::new();
    let ci = net.attach(mk(1));
    let si = net.attach(mk(2));
    let clock = Tsc::new(1_000_000_000);
    net.set_clock(&clock);
    net.set_step_ns(5_000_000);
    let listener = net.stack(si).tcp_listen(9500).unwrap();
    let ep = Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 9500);
    let backlog = 64;
    let mut base = 0;
    let overflow0 = stat_counter("netstack.tcp.syn_overflow");
    let start = Instant::now();
    for _ in 0..rounds {
        net.syn_flood(si, 9500, base, 10 * backlog, 32);
        base += 10 * backlog;
        let c = net.stack(ci).tcp_connect(ep).unwrap();
        net.run_until_quiet(48);
        let s = net
            .stack(si)
            .tcp_accept(listener)
            .expect("legitimate client accepted despite the flood");
        net.stack(ci).tcp_close(c).unwrap();
        net.stack(si).tcp_close(s).unwrap();
        net.run_until_quiet(32);
    }
    let elapsed = start.elapsed().as_secs_f64();
    (
        rounds as f64 / elapsed,
        stat_counter("netstack.tcp.syn_overflow") - overflow0,
    )
}

fn bench_tcp_echo(c: &mut Criterion) {
    let mut g = c.benchmark_group("netpath/tcp_echo_512B");
    for (label, pools) in [("pooled", true), ("heap_bufs", false)] {
        g.bench_function(label, |b| {
            let mut h = TcpHarness::new(pools, true);
            b.iter(|| h.round_trip(&[0x42; 512]));
        });
    }
    g.bench_function("burst32", |b| {
        let mut h = TcpHarness::new(true, true);
        b.iter(|| h.burst_round_trip(&[0x42; 512]));
    });
    g.finish();
}

fn bench_udp_rtt(c: &mut Criterion) {
    let mut g = c.benchmark_group("netpath/udp_rtt_256B");
    for (label, pools) in [("pooled", true), ("heap_bufs", false)] {
        g.bench_function(label, |b| {
            let mut h = UdpHarness::new(pools, true);
            b.iter(|| h.round_trip(&[0x5a; 256]));
        });
    }
    g.bench_function("burst32", |b| {
        let mut h = UdpHarness::new(true, true);
        b.iter(|| h.burst_round_trip(&[0x5a; 256]));
    });
    g.finish();
}

/// One row of the ablation report.
struct Row {
    name: &'static str,
    proto: &'static str,
    mode: &'static str,
    pooled: bool,
    csum_offload: bool,
    rtt_per_s: f64,
    ns_per_rtt: f64,
    allocs_per_frame: f64,
    /// `ukstats` counter deltas inside the timed window (JSON object).
    stats: String,
}

/// One row of the bulk-throughput ablation matrix.
struct BulkRow {
    name: String,
    transfer_bytes: usize,
    tso: bool,
    rx_csum: bool,
    bytes_per_s: f64,
    mib_per_s: f64,
    allocs_per_frame: f64,
    stats: String,
}

/// One row of the receive-path ablation matrix (per-MSS sender;
/// receiver-side time only).
struct RecvRow {
    name: String,
    transfer_bytes: usize,
    gro: bool,
    netbuf_recv: bool,
    recv_bytes_per_s: f64,
    recv_mib_per_s: f64,
    allocs_per_frame: f64,
    stats: String,
}

/// One row of the goodput-vs-loss matrix (per-MSS sender over a lossy
/// wire; congestion control as the ablation switch).
struct LossRow {
    name: String,
    drop_every: u64,
    cc: bool,
    bytes_per_s: f64,
    mib_per_s: f64,
    goodput_vs_lossless: f64,
    rto_fires: u64,
    retransmits: u64,
    fast_retransmits: u64,
    stats: String,
}

/// One row of the recovery grid: loss × reorder wire cells crossed
/// with the three recovery switches (cc always on — the deployment
/// shape the recovery machinery has to win in).
struct RecoveryRow {
    name: String,
    drop_every: u64,
    reorder_every: u64,
    sack: bool,
    rack: bool,
    pacing: bool,
    bytes_per_s: f64,
    mib_per_s: f64,
    goodput_vs_lossless: f64,
    /// Virtual wire steps (5 ms each) to complete the cell's
    /// transfers — deterministic, the basis of the A/B gates.
    wire_steps: u64,
    allocs_per_frame: f64,
    rto_fires: u64,
    retransmits: u64,
    fast_retransmits: u64,
    sack_rtx: u64,
    spurious_rtx: u64,
    tlp_probes: u64,
    paced_releases: u64,
    stats: String,
}

/// The ablation matrix: per-frame vs burst, offload on/off, pooled vs
/// heap — rtt/s, ns/RTT and allocs/frame for each. Zero allocations
/// per frame is a hard guarantee on every pooled configuration.
fn ablation_report(json_path: Option<&str>) {
    const ROUNDS: u64 = 2_000;
    const BURST_ROUNDS: u64 = 250;

    /// Times `rounds` turns, each worth `rtts_per_round` round-trips.
    fn run_tcp(
        h: &mut TcpHarness,
        rounds: u64,
        burst: bool,
    ) -> (f64, f64, f64, String) {
        let before = h.tx_frames();
        let sbase = ukstats::snapshot();
        let counter = AllocCounter::start();
        let start = Instant::now();
        for _ in 0..rounds {
            if burst {
                h.burst_round_trip(&[0x42; 512]);
            } else {
                h.round_trip(&[0x42; 512]);
            }
        }
        let elapsed = start.elapsed();
        let allocs = counter.allocs();
        let rtts = (rounds * if burst { BURST as u64 } else { 1 }) as f64;
        let frames = (h.tx_frames() - before).max(1);
        (
            rtts / elapsed.as_secs_f64(),
            elapsed.as_nanos() as f64 / rtts,
            allocs as f64 / frames as f64,
            stats_delta_json(&sbase),
        )
    }

    let mut rows: Vec<Row> = Vec::new();
    for (name, mode, pooled, offload) in [
        ("tcp_per_frame/offload", "per_frame", true, true),
        ("tcp_per_frame/no_offload", "per_frame", true, false),
        ("tcp_burst32/offload", "burst32", true, true),
        ("tcp_burst32/no_offload", "burst32", true, false),
        // The PR 2 pooled-vs-heap ablation, kept for continuity.
        ("tcp_per_frame/heap_bufs", "per_frame", false, true),
    ] {
        let burst = mode == "burst32";
        let mut h = TcpHarness::new(pooled, offload);
        let rounds = if burst { BURST_ROUNDS } else { ROUNDS };
        let (rtt_per_s, ns_per_rtt, allocs_per_frame, stats) = run_tcp(&mut h, rounds, burst);
        rows.push(Row {
            name,
            proto: "tcp_512B",
            mode,
            pooled,
            csum_offload: offload,
            rtt_per_s,
            ns_per_rtt,
            allocs_per_frame,
            stats,
        });
    }

    for (name, mode, offload) in [
        ("udp_per_frame/offload", "per_frame", true),
        ("udp_burst32/offload", "burst32", true),
        ("udp_burst32/no_offload", "burst32", false),
    ] {
        let mut h = UdpHarness::new(true, offload);
        let sbase = ukstats::snapshot();
        let counter = AllocCounter::start();
        let start = Instant::now();
        let rtts = if mode == "per_frame" {
            for _ in 0..ROUNDS {
                h.round_trip(&[0x5a; 256]);
            }
            ROUNDS as f64
        } else {
            for _ in 0..BURST_ROUNDS {
                h.burst_round_trip(&[0x5a; 256]);
            }
            (BURST_ROUNDS * BURST as u64) as f64
        };
        let elapsed = start.elapsed();
        let allocs = counter.allocs();
        // Each UDP round-trip is exactly two frames.
        rows.push(Row {
            name,
            proto: "udp_256B",
            mode,
            pooled: true,
            csum_offload: offload,
            rtt_per_s: rtts / elapsed.as_secs_f64(),
            ns_per_rtt: elapsed.as_nanos() as f64 / rtts,
            allocs_per_frame: allocs as f64 / (rtts * 2.0),
            stats: stats_delta_json(&sbase),
        });
    }

    ukcore::log_info!(
        "{:<28} {:>12} {:>10} {:>14}",
        "netpath/ablation", "rtt/s", "ns/RTT", "allocs/frame"
    );
    for r in &rows {
        ukcore::log_info!(
            "{:<28} {:>12.0} {:>10.0} {:>14.3}",
            r.name, r.rtt_per_s, r.ns_per_rtt, r.allocs_per_frame
        );
        if r.pooled {
            assert_eq!(
                r.allocs_per_frame, 0.0,
                "pooled datapath must not touch the heap ({})",
                r.name
            );
        }
    }

    // --- Bulk-throughput matrix: {4 KB, 64 KB, 1 MB} × tso × rx_csum.
    let mut bulk_rows: Vec<BulkRow> = Vec::new();
    for (size, label, reps) in [
        (4 * 1024, "4KB", 600u64),
        (64 * 1024, "64KB", 120u64),
        (1024 * 1024, "1MB", 10u64),
    ] {
        for (tso, rx_csum) in [(true, true), (true, false), (false, true), (false, false)] {
            let mut h = BulkHarness::new(tso, rx_csum);
            // Per-size warmup: scratch and ring capacities reach the
            // steady state of *this* transfer size before counting
            // (the deepest backlogs take a few transfers to appear).
            for _ in 0..8 {
                h.transfer(size);
            }
            let frames_before = h.tx_frames();
            let sbase = ukstats::snapshot();
            let counter = AllocCounter::start();
            let start = Instant::now();
            for _ in 0..reps {
                h.transfer(size);
            }
            let elapsed = start.elapsed().as_secs_f64();
            let allocs = counter.allocs();
            let stats = stats_delta_json(&sbase);
            let frames = (h.tx_frames() - frames_before).max(1);
            let total = (size as u64 * reps) as f64;
            bulk_rows.push(BulkRow {
                name: format!(
                    "tcp_bulk_{label}/{}{}",
                    if tso { "tso" } else { "sw_seg" },
                    if rx_csum { "" } else { "+rx_sw_csum" }
                ),
                transfer_bytes: size,
                tso,
                rx_csum,
                bytes_per_s: total / elapsed,
                mib_per_s: total / elapsed / (1024.0 * 1024.0),
                allocs_per_frame: allocs as f64 / frames as f64,
                stats,
            });
        }
    }
    ukcore::log_info!(
        "{:<28} {:>12} {:>14}",
        "netpath/bulk", "MiB/s", "allocs/frame"
    );
    for r in &bulk_rows {
        ukcore::log_info!(
            "{:<28} {:>12.1} {:>14.3}",
            r.name, r.mib_per_s, r.allocs_per_frame
        );
        assert_eq!(
            r.allocs_per_frame, 0.0,
            "bulk pooled datapath must not touch the heap ({})",
            r.name
        );
    }
    // --- Receive-path matrix: {64 KB, 1 MB} × gro × {netbuf, copy}.
    // A per-MSS (non-TSO) sender streams; only the *receiver's* time
    // (ingest pump + drain) is on the clock, so the cells measure what
    // GRO coalescing and zero-copy receive actually buy on ingest.
    let mut recv_rows: Vec<RecvRow> = Vec::new();
    for (size, label, reps) in [(64 * 1024, "64KB", 1200u64), (1024 * 1024, "1MB", 80u64)] {
        for (gro, netbuf) in [(true, true), (true, false), (false, true), (false, false)] {
            let mut h = RecvHarness::new(gro);
            for _ in 0..12 {
                h.transfer(size, netbuf);
            }
            let frames_before = h.rx_frames();
            let runs_before = h.gro_runs();
            let sbase = ukstats::snapshot();
            let counter = AllocCounter::start();
            let mut recv_secs = 0.0;
            for _ in 0..reps {
                recv_secs += h.transfer(size, netbuf);
            }
            let allocs = counter.allocs();
            let stats = stats_delta_json(&sbase);
            let frames = (h.rx_frames() - frames_before).max(1);
            if gro {
                assert!(h.gro_runs() > runs_before, "GRO engaged on {label}");
            }
            let total = (size as u64 * reps) as f64;
            recv_rows.push(RecvRow {
                name: format!(
                    "tcp_recv_{label}/{}+{}",
                    if gro { "gro" } else { "nogro" },
                    if netbuf { "netbuf" } else { "copy" }
                ),
                transfer_bytes: size,
                gro,
                netbuf_recv: netbuf,
                recv_bytes_per_s: total / recv_secs,
                recv_mib_per_s: total / recv_secs / (1024.0 * 1024.0),
                allocs_per_frame: allocs as f64 / frames as f64,
                stats,
            });
        }
    }
    ukcore::log_info!(
        "{:<28} {:>12} {:>14}",
        "netpath/recv (rx-side)", "MiB/s", "allocs/frame"
    );
    for r in &recv_rows {
        ukcore::log_info!(
            "{:<28} {:>12.1} {:>14.3}",
            r.name, r.recv_mib_per_s, r.allocs_per_frame
        );
        assert_eq!(
            r.allocs_per_frame, 0.0,
            "pooled receive path must not touch the heap ({})",
            r.name
        );
    }
    let recv_cell = |size: usize, gro: bool, netbuf: bool| {
        recv_rows
            .iter()
            .find(|r| r.transfer_bytes == size && r.gro == gro && r.netbuf_recv == netbuf)
            .expect("recv cell")
    };
    let recv_gro_speedup = recv_cell(64 * 1024, true, true).recv_bytes_per_s
        / recv_cell(64 * 1024, false, true).recv_bytes_per_s;
    let recv_gro_speedup_copy = recv_cell(64 * 1024, true, false).recv_bytes_per_s
        / recv_cell(64 * 1024, false, false).recv_bytes_per_s;
    let recv_netbuf_speedup = recv_cell(64 * 1024, true, true).recv_bytes_per_s
        / recv_cell(64 * 1024, true, false).recv_bytes_per_s;
    ukcore::log_info!(
        "netpath/recv 64KB speedups: gro {recv_gro_speedup:.2}x (netbuf recv; \
         {recv_gro_speedup_copy:.2}x under copy recv), netbuf-vs-copy {recv_netbuf_speedup:.2}x"
    );

    // --- Goodput-vs-loss matrix: drop ∈ {0, 1/64, 1/16, 1/8} × cc.
    // A per-MSS sender streams 1 MB per rep through a lossy wire with
    // the retransmission timers armed; goodput is application bytes
    // per wall-clock second with all recovery overhead (dup-ACKs,
    // retransmits, RTO waits) on the bill. Each cell also records what
    // the recovery actually did.
    let mut loss_rows: Vec<LossRow> = Vec::new();
    const LOSS_TOTAL: usize = 1024 * 1024;
    for cc in [true, false] {
        for (drop_every, label, reps) in [
            (0u64, "lossless", 8u64),
            (64, "1_64", 4),
            (16, "1_16", 4),
            (8, "1_8", 2),
        ] {
            let mut h = LossHarness::new(cc, drop_every);
            for _ in 0..2 {
                h.transfer(LOSS_TOTAL);
            }
            let (rto0, rtx0, fast0) = h.loss_stats();
            let sbase = ukstats::snapshot();
            let start = Instant::now();
            for _ in 0..reps {
                h.transfer(LOSS_TOTAL);
            }
            let elapsed = start.elapsed().as_secs_f64();
            let stats = stats_delta_json(&sbase);
            let (rto, rtx, fast) = h.loss_stats();
            let total = (LOSS_TOTAL as u64 * reps) as f64;
            loss_rows.push(LossRow {
                name: format!(
                    "tcp_loss_1mb/drop_{label}/{}",
                    if cc { "cc" } else { "nocc" }
                ),
                drop_every,
                cc,
                bytes_per_s: total / elapsed,
                mib_per_s: total / elapsed / (1024.0 * 1024.0),
                goodput_vs_lossless: 0.0, // Filled against the baseline below.
                rto_fires: rto - rto0,
                retransmits: rtx - rtx0,
                fast_retransmits: fast - fast0,
                stats,
            });
        }
    }
    for i in 0..loss_rows.len() {
        let base = loss_rows
            .iter()
            .find(|r| r.cc == loss_rows[i].cc && r.drop_every == 0)
            .expect("lossless baseline")
            .bytes_per_s;
        loss_rows[i].goodput_vs_lossless = loss_rows[i].bytes_per_s / base;
        if loss_rows[i].drop_every > 0 {
            assert!(
                loss_rows[i].retransmits > 0,
                "losses were repaired by retransmission ({})",
                loss_rows[i].name
            );
        }
    }
    ukcore::log_info!(
        "{:<28} {:>12} {:>12} {:>8} {:>8} {:>8}",
        "netpath/loss", "MiB/s", "vs lossless", "rtx", "fast", "rto"
    );
    for r in &loss_rows {
        ukcore::log_info!(
            "{:<28} {:>12.1} {:>11.0}% {:>8} {:>8} {:>8}",
            r.name,
            r.mib_per_s,
            r.goodput_vs_lossless * 100.0,
            r.retransmits,
            r.fast_retransmits,
            r.rto_fires
        );
    }
    let loss_cell = |drop: u64, cc: bool| {
        loss_rows
            .iter()
            .find(|r| r.drop_every == drop && r.cc == cc)
            .expect("loss cell")
    };
    let goodput_1_64 = loss_cell(64, true).goodput_vs_lossless;
    ukcore::log_info!(
        "netpath/loss headline: {:.0}% of lossless goodput at 1/64 drop (cc on), \
         {:.0}% at 1/16, {:.0}% at 1/8",
        goodput_1_64 * 100.0,
        loss_cell(16, true).goodput_vs_lossless * 100.0,
        loss_cell(8, true).goodput_vs_lossless * 100.0
    );
    assert!(
        goodput_1_64 >= 0.5,
        "goodput at 1/64 drop must hold at least half the lossless baseline \
         (got {:.0}%)",
        goodput_1_64 * 100.0
    );

    // --- Recovery grid: wire ∈ {lossless, 1/8 drop, reorder, both} ×
    // recovery ∈ {off, sack, rack, sack+rack, sack+rack+pacing}, cc
    // on. Same per-MSS 1 MB stream as the loss matrix. Each cell
    // records two clocks: wall-clock goodput (comparable to the loss
    // matrix and the PR 7 baseline) and the *virtual* wire-step count
    // — the testnet and its fault schedule are deterministic, so step
    // counts are exactly reproducible and the A/B gates below compare
    // steps, immune to host scheduling noise. Each cell also records
    // what the scoreboard, the reordering window and the pacing gate
    // actually did, and the lossless cells stay allocation-free.
    let mut rec_rows: Vec<RecoveryRow> = Vec::new();
    for (sack, rack, pacing, rlabel) in [
        (false, false, false, "off"),
        (true, false, false, "sack"),
        (false, true, false, "rack"),
        (true, true, false, "sack_rack"),
        (true, true, true, "full"),
    ] {
        for (drop_every, reorder_every, wlabel) in [
            (0u64, 0u64, "lossless"),
            (8, 0, "drop_1_8"),
            (0, 3, "reorder_3"),
            (8, 3, "drop_1_8_reorder_3"),
        ] {
            let mut h =
                LossHarness::with_recovery(true, drop_every, reorder_every, sack, rack, pacing);
            for _ in 0..3 {
                h.transfer(LOSS_TOTAL); // Warm reps on the armed wire.
            }
            let (rto0, rtx0, fast0) = h.loss_stats();
            let (srtx0, spur0, tlp0, paced0) = h.recovery_stats();
            let frames0 = h.tx_frames();
            let steps0 = h.steps;
            let sbase = ukstats::snapshot();
            let counter = AllocCounter::start();
            let start = Instant::now();
            let reps = 2u64;
            for _ in 0..reps {
                h.transfer(LOSS_TOTAL);
            }
            let elapsed = start.elapsed().as_secs_f64();
            let wire_steps = h.steps - steps0;
            let allocs = counter.allocs();
            let stats = stats_delta_json(&sbase);
            let frames = (h.tx_frames() - frames0).max(1);
            let (rto, rtx, fast) = h.loss_stats();
            let (srtx, spur, tlp, paced) = h.recovery_stats();
            let total = (LOSS_TOTAL as u64 * reps) as f64;
            rec_rows.push(RecoveryRow {
                name: format!("tcp_recovery_1mb/{wlabel}/{rlabel}"),
                drop_every,
                reorder_every,
                sack,
                rack,
                pacing,
                bytes_per_s: total / elapsed,
                mib_per_s: total / elapsed / (1024.0 * 1024.0),
                goodput_vs_lossless: 0.0, // Filled below.
                wire_steps,
                allocs_per_frame: allocs as f64 / frames as f64,
                rto_fires: rto - rto0,
                retransmits: rtx - rtx0,
                fast_retransmits: fast - fast0,
                sack_rtx: srtx - srtx0,
                spurious_rtx: spur - spur0,
                tlp_probes: tlp - tlp0,
                paced_releases: paced - paced0,
                stats,
            });
        }
    }
    for i in 0..rec_rows.len() {
        let base = rec_rows
            .iter()
            .find(|r| {
                r.sack == rec_rows[i].sack
                    && r.rack == rec_rows[i].rack
                    && r.pacing == rec_rows[i].pacing
                    && r.drop_every == 0
                    && r.reorder_every == 0
            })
            .expect("recovery lossless baseline")
            .bytes_per_s;
        rec_rows[i].goodput_vs_lossless = rec_rows[i].bytes_per_s / base;
    }
    ukcore::log_info!(
        "{:<44} {:>9} {:>11} {:>6} {:>6} {:>6} {:>6} {:>8} {:>6} {:>6}",
        "netpath/recovery", "MiB/s", "vs lossless", "steps", "rtx", "fast", "rto", "sack", "tlp",
        "paced"
    );
    for r in &rec_rows {
        ukcore::log_info!(
            "{:<44} {:>9.1} {:>10.0}% {:>6} {:>6} {:>6} {:>6} {:>8} {:>6} {:>6}",
            r.name,
            r.mib_per_s,
            r.goodput_vs_lossless * 100.0,
            r.wire_steps,
            r.retransmits,
            r.fast_retransmits,
            r.rto_fires,
            r.sack_rtx,
            r.tlp_probes,
            r.paced_releases
        );
    }
    let rec_cell = |drop: u64, reord: u64, sack: bool, rack: bool, pacing: bool| {
        rec_rows
            .iter()
            .find(|r| {
                r.drop_every == drop
                    && r.reorder_every == reord
                    && r.sack == sack
                    && r.rack == rack
                    && r.pacing == pacing
            })
            .expect("recovery cell")
    };
    // Gate (deterministic, on wire steps): with a time-based loss
    // detector armed (RACK — without it, cc-on recovery is RTO-bound
    // and the scoreboard never engages: the sack_rtx column is zero),
    // turning the scoreboard on must not cost wire time on any lossy
    // cell, and the full sack+rack stack must beat blind go-back-N
    // recovery outright.
    for (drop, reord) in [(8u64, 0u64), (8, 3)] {
        let sack_off = rec_cell(drop, reord, false, true, false).wire_steps;
        let sack_on = rec_cell(drop, reord, true, true, false).wire_steps;
        assert!(
            sack_on <= sack_off + sack_off / 50,
            "sack-on must not cost wire time vs sack-off at drop={drop} reorder={reord} \
             ({sack_on} vs {sack_off} steps)"
        );
        let blind = rec_cell(drop, reord, false, false, false).wire_steps;
        assert!(
            sack_on < blind,
            "sack+rack must beat blind recovery at drop={drop} reorder={reord} \
             ({sack_on} vs {blind} steps)"
        );
    }
    // Gate: the full tentpole (sack+rack) holds ≥ 32% of its lossless
    // baseline at a 1-in-8 drop — twice the PR 7 figure (16%).
    let headline_1_8 = rec_cell(8, 0, true, true, false).goodput_vs_lossless;
    ukcore::log_info!(
        "netpath/recovery headline: {:.0}% of lossless goodput at 1/8 drop \
         (cc on, sack+rack); reorder-only false fast-rtx = {}",
        headline_1_8 * 100.0,
        rec_cell(0, 3, true, true, false).fast_retransmits
    );
    assert!(
        headline_1_8 >= 0.32,
        "sack+rack goodput at 1/8 drop must hold at least 32% of lossless \
         (2x the PR 7 baseline; got {:.0}%)",
        headline_1_8 * 100.0
    );
    // Gate: reorder-only wires never trigger a false fast retransmit
    // with the reordering window armed.
    for (sack, rack, pacing) in [(true, true, false), (true, true, true)] {
        let cell = rec_cell(0, 3, sack, rack, pacing);
        assert_eq!(
            cell.fast_retransmits, 0,
            "zero false fast retransmits on the reorder-only wire ({})",
            cell.name
        );
        assert_eq!(
            cell.retransmits, 0,
            "zero spurious data retransmissions on the reorder-only wire ({})",
            cell.name
        );
    }
    // Gate: lossless cells stay allocation-free per frame regardless
    // of which recovery machinery is armed.
    for r in rec_rows.iter().filter(|r| r.drop_every == 0 && r.reorder_every == 0) {
        assert_eq!(
            r.allocs_per_frame, 0.0,
            "lossless recovery cell must stay allocation-free ({})",
            r.name
        );
    }

    // --- Connection-scale grid: 1K / 10K / 100K established-idle
    // connections resident on one lean-TCB stack (forged handshakes
    // completed through the wire capture). Each cell records the
    // establishment rate, resident memory per connection (linear in
    // conn count is the claim), and the echo hot path threading the
    // idle population — which must stay allocation-free at every
    // scale.
    let mut scale_rows: Vec<ScaleRow> = Vec::new();
    {
        let mut h = ScaleHarness::new();
        let rss0 = rss_bytes();
        let mut prev_conns = 0usize;
        for (target, echo_reps) in [(1_000usize, 400u64), (10_000, 200), (100_000, 100)] {
            let sbase = ukstats::snapshot();
            let start = Instant::now();
            h.grow_to(target);
            let setup_secs = start.elapsed().as_secs_f64();
            let setup_per_s = (target - prev_conns) as f64 / setup_secs;
            prev_conns = target;
            let rss_per_conn = rss_bytes().saturating_sub(rss0) as f64 / target as f64;
            for _ in 0..8 {
                h.echo(); // Re-warm after the growth phase.
            }
            let counter = AllocCounter::start();
            let start = Instant::now();
            for _ in 0..echo_reps {
                h.echo();
            }
            let elapsed = start.elapsed().as_secs_f64();
            let allocs = counter.allocs();
            let stats = stats_delta_json(&sbase);
            scale_rows.push(ScaleRow {
                name: format!("tcp_scale/{}k_conns", target / 1000),
                conns: target,
                setup_per_s,
                rss_bytes_per_conn: rss_per_conn,
                echo_rtt_per_s: echo_reps as f64 / elapsed,
                allocs_per_rtt: allocs as f64 / echo_reps as f64,
                stats,
            });
        }
    }
    ukcore::log_info!(
        "{:<28} {:>10} {:>12} {:>12} {:>12}",
        "netpath/scale", "conns", "setup/s", "B/conn", "echo rtt/s"
    );
    for r in &scale_rows {
        ukcore::log_info!(
            "{:<28} {:>10} {:>12.0} {:>12.0} {:>12.0}",
            r.name, r.conns, r.setup_per_s, r.rss_bytes_per_conn, r.echo_rtt_per_s
        );
        assert_eq!(
            r.allocs_per_rtt, 0.0,
            "echo hot path must stay allocation-free with {} idle conns resident",
            r.conns
        );
    }
    let scale_cell = |conns: usize| {
        scale_rows
            .iter()
            .find(|r| r.conns == conns)
            .expect("scale cell")
    };
    let b_100k = scale_cell(100_000).rss_bytes_per_conn;
    let b_10k = scale_cell(10_000).rss_bytes_per_conn;
    assert!(
        b_100k < 4096.0,
        "an idle connection must stay small ({b_100k:.0} B/conn at 100K)"
    );
    assert!(
        b_100k <= 3.0 * b_10k.max(256.0),
        "memory must stay linear in connection count \
         ({b_10k:.0} B/conn at 10K vs {b_100k:.0} B/conn at 100K)"
    );
    ukcore::log_info!(
        "netpath/scale headline: {b_100k:.0} B/conn resident at 100K idle connections, \
         hot path allocation-free at every scale"
    );

    // --- Lifecycle rates: connect/close churn (TIME_WAIT walked and
    // reaped by the wheel) and accept throughput under a 10×-backlog
    // SYN flood.
    let (churn_per_s, churn_timewait) = conn_churn_rate(800);
    let (flood_accepts_per_s, flood_overflow) = accept_rate_under_flood(24);
    assert!(
        churn_timewait >= 800,
        "every churn cycle parks in TIME_WAIT (saw {churn_timewait})"
    );
    assert!(
        flood_overflow > 0,
        "the flood must overflow the SYN queue for the cell to mean anything"
    );
    ukcore::log_info!(
        "netpath/lifecycle: {churn_per_s:.0} connect/close cycles/s, \
         {flood_accepts_per_s:.1} accepts/s under 10x-backlog SYN flood \
         ({flood_overflow} evictions)"
    );

    // The PR's headline: the 64 KB fast path (TSO + RX csum offload)
    // vs the all-software segmentation ablation.
    let fast = bulk_rows
        .iter()
        .find(|r| r.transfer_bytes == 64 * 1024 && r.tso && r.rx_csum)
        .expect("fast cell");
    let soft = bulk_rows
        .iter()
        .find(|r| r.transfer_bytes == 64 * 1024 && !r.tso && !r.rx_csum)
        .expect("software cell");
    let speedup_64k = fast.bytes_per_s / soft.bytes_per_s;
    let soft_tso_only = bulk_rows
        .iter()
        .find(|r| r.transfer_bytes == 64 * 1024 && !r.tso && r.rx_csum)
        .expect("tso-off cell");
    let speedup_64k_tso_only = fast.bytes_per_s / soft_tso_only.bytes_per_s;
    ukcore::log_info!(
        "netpath/bulk 64KB speedup: fast-path {speedup_64k:.2}x vs all-software \
         ({speedup_64k_tso_only:.2}x vs tso-off alone)"
    );

    if let Some(path) = json_path {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"bench\": \"netpath\",\n");
        out.push_str("  \"baseline_pr2\": { \"name\": \"tcp_per_frame/pooled\", \"rtt_per_s\": 470000, \"allocs_per_frame\": 0.0 },\n");
        out.push_str("  \"configs\": [\n");
        for (i, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"name\": \"{}\", \"proto\": \"{}\", \"mode\": \"{}\", \"pooled\": {}, \"csum_offload\": {}, \"rtt_per_s\": {:.0}, \"ns_per_rtt\": {:.1}, \"allocs_per_frame\": {:.3}, \"stats\": {} }}{}\n",
                r.name,
                r.proto,
                r.mode,
                r.pooled,
                r.csum_offload,
                r.rtt_per_s,
                r.ns_per_rtt,
                r.allocs_per_frame,
                r.stats,
                if i + 1 == rows.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"bulk_configs\": [\n");
        for (i, r) in bulk_rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"name\": \"{}\", \"transfer_bytes\": {}, \"tso\": {}, \"rx_csum_offload\": {}, \"bytes_per_s\": {:.0}, \"mib_per_s\": {:.1}, \"allocs_per_frame\": {:.3}, \"stats\": {} }}{}\n",
                r.name,
                r.transfer_bytes,
                r.tso,
                r.rx_csum,
                r.bytes_per_s,
                r.mib_per_s,
                r.allocs_per_frame,
                r.stats,
                if i + 1 == bulk_rows.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"recv_configs\": [\n");
        for (i, r) in recv_rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"name\": \"{}\", \"transfer_bytes\": {}, \"gro\": {}, \"netbuf_recv\": {}, \"recv_bytes_per_s\": {:.0}, \"recv_mib_per_s\": {:.1}, \"allocs_per_frame\": {:.3}, \"stats\": {} }}{}\n",
                r.name,
                r.transfer_bytes,
                r.gro,
                r.netbuf_recv,
                r.recv_bytes_per_s,
                r.recv_mib_per_s,
                r.allocs_per_frame,
                r.stats,
                if i + 1 == recv_rows.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"loss_configs\": [\n");
        for (i, r) in loss_rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"name\": \"{}\", \"drop_every\": {}, \"congestion_control\": {}, \"bytes_per_s\": {:.0}, \"mib_per_s\": {:.1}, \"goodput_vs_lossless\": {:.3}, \"retransmits\": {}, \"fast_retransmits\": {}, \"rto_fires\": {}, \"stats\": {} }}{}\n",
                r.name,
                r.drop_every,
                r.cc,
                r.bytes_per_s,
                r.mib_per_s,
                r.goodput_vs_lossless,
                r.retransmits,
                r.fast_retransmits,
                r.rto_fires,
                r.stats,
                if i + 1 == loss_rows.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"recovery_configs\": [\n");
        for (i, r) in rec_rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"name\": \"{}\", \"drop_every\": {}, \"reorder_every\": {}, \"sack\": {}, \"rack\": {}, \"pacing\": {}, \"bytes_per_s\": {:.0}, \"mib_per_s\": {:.1}, \"goodput_vs_lossless\": {:.3}, \"wire_steps\": {}, \"allocs_per_frame\": {:.3}, \"retransmits\": {}, \"fast_retransmits\": {}, \"rto_fires\": {}, \"sack_rtx\": {}, \"spurious_rtx\": {}, \"tlp_probes\": {}, \"paced_releases\": {}, \"stats\": {} }}{}\n",
                r.name,
                r.drop_every,
                r.reorder_every,
                r.sack,
                r.rack,
                r.pacing,
                r.bytes_per_s,
                r.mib_per_s,
                r.goodput_vs_lossless,
                r.wire_steps,
                r.allocs_per_frame,
                r.retransmits,
                r.fast_retransmits,
                r.rto_fires,
                r.sack_rtx,
                r.spurious_rtx,
                r.tlp_probes,
                r.paced_releases,
                r.stats,
                if i + 1 == rec_rows.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"conn_scale_configs\": [\n");
        for (i, r) in scale_rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"name\": \"{}\", \"conns\": {}, \"setup_per_s\": {:.0}, \"rss_bytes_per_conn\": {:.0}, \"echo_rtt_per_s\": {:.0}, \"allocs_per_rtt\": {:.3}, \"stats\": {} }}{}\n",
                r.name,
                r.conns,
                r.setup_per_s,
                r.rss_bytes_per_conn,
                r.echo_rtt_per_s,
                r.allocs_per_rtt,
                r.stats,
                if i + 1 == scale_rows.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"conn_churn_cycles_per_s\": {churn_per_s:.0},\n"
        ));
        out.push_str(&format!(
            "  \"accept_per_s_under_10x_syn_flood\": {flood_accepts_per_s:.1},\n"
        ));
        out.push_str(&format!(
            "  \"loss_1_64_goodput_vs_lossless\": {goodput_1_64:.3},\n"
        ));
        out.push_str(&format!(
            "  \"recovery_1_8_goodput_vs_lossless_sack_rack\": {headline_1_8:.3},\n"
        ));
        out.push_str(&format!(
            "  \"recv_64k_gro_speedup\": {recv_gro_speedup:.2},\n"
        ));
        out.push_str(&format!(
            "  \"recv_64k_gro_speedup_copy_recv\": {recv_gro_speedup_copy:.2},\n"
        ));
        out.push_str(&format!(
            "  \"recv_64k_netbuf_vs_copy_speedup\": {recv_netbuf_speedup:.2},\n"
        ));
        out.push_str(&format!(
            "  \"bulk_64k_speedup_vs_all_software\": {speedup_64k:.2},\n"
        ));
        out.push_str(&format!(
            "  \"bulk_64k_speedup_vs_tso_off\": {speedup_64k_tso_only:.2},\n"
        ));
        // The whole registry as the run left it — heap gauges included
        // — so the snapshot in the file matches what `/stats` serves.
        ukalloc::stats::publish_heap_stats();
        out.push_str(&format!("  \"registry\": {}\n", ukstats::snapshot().to_json()));
        out.push_str("}\n");
        std::fs::write(path, out).expect("write bench json");
        ukcore::log_warn!("netpath/ablation written to {path}");
    }
}

criterion_group!(benches, bench_tcp_echo, bench_udp_rtt);

fn main() {
    benches();
    let args: Vec<String> = std::env::args().collect();
    let json = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    if json.is_some() {
        // Machine-readable run: suppress the Info-level tables so the
        // only bench output is the JSON file (and Warn+ diagnostics on
        // stderr).
        ukcore::ukdebug::set_global_level(ukcore::ukdebug::LogLevel::Warn);
    }
    ablation_report(json.as_deref());
}
