//! An in-process network: wires stacks together through their devices.
//!
//! Frames harvested from one stack's TX completions are injected into the
//! destination stack's RX ring, selected by destination MAC (broadcast
//! goes everywhere). This replaces the paper's physical 10 GbE cable
//! between two Shuttle machines with a lossless in-memory link — the code
//! under test (drivers, stack, sockets) is identical.
//!
//! The wire moves *netbufs*, not owned byte vectors: TX completions are
//! reclaimed as pooled buffers ([`NetStack::harvest_tx`]), each frame is
//! "DMA"-copied onto a buffer posted from the receiver's own pool (one
//! copy, exactly what a NIC does on the cable) and injected, and the
//! sender's buffer is recycled. In steady state a `step` performs zero
//! heap allocations — buffers just circulate through the two pools.

use uknetdev::netbuf::Netbuf;

use crate::eth::EthHeader;
use crate::stack::NetStack;
use crate::Mac;

/// A hub connecting multiple stacks.
#[derive(Debug, Default)]
pub struct Network {
    stacks: Vec<NetStack>,
    /// Harvest scratch, reused across steps.
    wire_scratch: Vec<Netbuf>,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a stack; returns its index.
    pub fn attach(&mut self, stack: NetStack) -> usize {
        self.stacks.push(stack);
        self.stacks.len() - 1
    }

    /// Access a stack by index.
    pub fn stack(&mut self, idx: usize) -> &mut NetStack {
        &mut self.stacks[idx]
    }

    /// Moves frames between stacks once; returns frames moved.
    pub fn step(&mut self) -> usize {
        let mut moved = 0;
        let mut scratch = std::mem::take(&mut self.wire_scratch);
        for src in 0..self.stacks.len() {
            self.stacks[src].harvest_tx(&mut scratch);
            for nb in scratch.drain(..) {
                let dst = match EthHeader::decode(nb.payload()) {
                    Ok((h, _)) => h.dst,
                    Err(_) => {
                        self.stacks[src].recycle(nb);
                        continue;
                    }
                };
                for i in 0..self.stacks.len() {
                    if i == src {
                        continue;
                    }
                    if dst == self.stacks[i].mac() || dst == Mac::BROADCAST {
                        // Wire "DMA": copy the frame onto a buffer from
                        // the receiver's pool and inject it.
                        let mut rx = self.stacks[i].take_rx_buf();
                        rx.set_payload(nb.payload());
                        self.stacks[i].deliver_frame(rx);
                        moved += 1;
                    }
                }
                self.stacks[src].recycle(nb);
            }
        }
        self.wire_scratch = scratch;
        // Let every stack process what arrived.
        for s in &mut self.stacks {
            s.pump();
        }
        moved
    }

    /// Steps until no frames move (or `max_rounds` to bound livelock).
    pub fn run_until_quiet(&mut self, max_rounds: usize) -> usize {
        let mut total = 0;
        for _ in 0..max_rounds {
            let moved = self.step();
            total += moved;
            if moved == 0 {
                break;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::{SocketHandle, StackConfig};
    use crate::tcp::TcpState;
    use crate::{Endpoint, Ipv4Addr};
    use uknetdev::backend::VhostKind;
    use uknetdev::dev::{NetDev, NetDevConf};
    use uknetdev::VirtioNet;
    use ukplat::time::Tsc;

    fn mk_stack(n: u8) -> NetStack {
        let tsc = Tsc::new(3_600_000_000);
        let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
        dev.configure(NetDevConf::default()).unwrap();
        NetStack::new(StackConfig::node(n), Box::new(dev))
    }

    fn two_node_net() -> Network {
        let mut net = Network::new();
        net.attach(mk_stack(1));
        net.attach(mk_stack(2));
        net
    }

    #[test]
    fn udp_round_trip_through_real_packets() {
        let mut net = two_node_net();
        let server_sock = net.stack(1).udp_bind(7).unwrap();
        let client_sock = net.stack(0).udp_bind(5000).unwrap();
        let server_ep = Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 7);
        net.stack(0)
            .udp_send_to(client_sock, b"echo me", server_ep)
            .unwrap();
        net.run_until_quiet(16);
        let (from, data) = net.stack(1).udp_recv_from(server_sock).unwrap();
        assert_eq!(data, b"echo me");
        assert_eq!(from.addr, Ipv4Addr::new(10, 0, 0, 1));
        // Reply.
        net.stack(1).udp_send_to(server_sock, b"reply", from).unwrap();
        net.run_until_quiet(16);
        let (_, data) = net.stack(0).udp_recv_from(client_sock).unwrap();
        assert_eq!(data, b"reply");
    }

    #[test]
    fn tcp_connect_accept_exchange() {
        let mut net = two_node_net();
        let listener = net.stack(1).tcp_listen(80).unwrap();
        let server_ep = Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 80);
        let client = net.stack(0).tcp_connect(server_ep).unwrap();
        net.run_until_quiet(32);
        assert_eq!(net.stack(0).tcp_state(client), Some(TcpState::Established));
        let server_conn: SocketHandle = net.stack(1).tcp_accept(listener).unwrap();
        assert_eq!(
            net.stack(1).tcp_state(server_conn),
            Some(TcpState::Established)
        );
        // Request/response.
        net.stack(0).tcp_send(client, b"GET /\r\n").unwrap();
        net.run_until_quiet(32);
        let req = net.stack(1).tcp_recv(server_conn, 1024).unwrap();
        assert_eq!(req, b"GET /\r\n");
        net.stack(1).tcp_send(server_conn, b"200 OK\r\n").unwrap();
        net.run_until_quiet(32);
        let resp = net.stack(0).tcp_recv(client, 1024).unwrap();
        assert_eq!(resp, b"200 OK\r\n");
        // Teardown.
        net.stack(0).tcp_close(client).unwrap();
        net.run_until_quiet(32);
        assert!(net.stack(1).tcp_peer_closed(server_conn));
    }

    #[test]
    fn large_tcp_transfer_crosses_segmentation() {
        let mut net = two_node_net();
        let listener = net.stack(1).tcp_listen(9000).unwrap();
        let server_ep = Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 9000);
        let client = net.stack(0).tcp_connect(server_ep).unwrap();
        net.run_until_quiet(32);
        let conn = net.stack(1).tcp_accept(listener).unwrap();
        let blob: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        net.stack(0).tcp_send(client, &blob).unwrap();
        net.run_until_quiet(64);
        let got = net.stack(1).tcp_recv(conn, usize::MAX).unwrap();
        assert_eq!(got, blob);
    }

    #[test]
    fn et_retriggers_on_new_data_while_level_high() {
        use ukevent::{EventMask, EventQueue};
        let mut net = two_node_net();
        let listener = net.stack(1).tcp_listen(8100).unwrap();
        let client = net
            .stack(0)
            .tcp_connect(Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 8100))
            .unwrap();
        net.run_until_quiet(32);
        let conn = net.stack(1).tcp_accept(listener).unwrap();
        let src = net.stack(1).ready_source(conn);
        let mut q = EventQueue::new();
        q.ctl_add(1, &src, EventMask::IN | EventMask::ET).unwrap();

        net.stack(0).tcp_send(client, b"first").unwrap();
        net.run_until_quiet(32);
        assert_eq!(q.poll_ready(4).len(), 1);
        assert!(q.poll_ready(4).is_empty(), "edge consumed");
        // More data lands while the first is still unread: the level
        // never falls, but Linux ET re-triggers on each new arrival.
        net.stack(0).tcp_send(client, b"second").unwrap();
        net.run_until_quiet(32);
        assert_eq!(
            q.poll_ready(4).len(),
            1,
            "new arrival must re-trigger the edge watcher"
        );
    }

    #[test]
    fn window_closed_is_visible_through_stack_api() {
        let mut net = two_node_net();
        let listener = net.stack(1).tcp_listen(8000).unwrap();
        let client = net
            .stack(0)
            .tcp_connect(Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 8000))
            .unwrap();
        net.run_until_quiet(32);
        let conn = net.stack(1).tcp_accept(listener).unwrap();
        assert!(!net.stack(0).tcp_window_closed(client));

        // Flood more than one receive window; the server does not read.
        let big = vec![0x11u8; 80_000];
        let accepted = net.stack(0).tcp_send(client, &big).unwrap();
        assert_eq!(accepted, crate::tcp::SND_BUF_CAP, "partial write at cap");
        net.run_until_quiet(64);
        assert!(net.stack(0).tcp_window_closed(client), "peer window exhausted");
        assert!(net.stack(0).tcp_send_capacity(client) < crate::tcp::SND_BUF_CAP);

        // Server drains; the window update reopens the sender.
        let got = net.stack(1).tcp_recv(conn, usize::MAX).unwrap();
        assert_eq!(got.len(), crate::tcp::RCV_BUF_CAP);
        net.run_until_quiet(64);
        assert!(!net.stack(0).tcp_window_closed(client));
        let rest = net.stack(1).tcp_recv(conn, usize::MAX).unwrap();
        assert_eq!(got.len() + rest.len(), accepted, "no byte lost");
    }

    #[test]
    fn ping_round_trip() {
        let mut net = two_node_net();
        net.stack(0)
            .ping(Ipv4Addr::new(10, 0, 0, 2), 0x77, 1)
            .unwrap();
        net.run_until_quiet(16);
        let replies = net.stack(0).ping_replies();
        assert_eq!(replies, vec![(Ipv4Addr::new(10, 0, 0, 2), 0x77, 1)]);
        // The target recorded no stray replies.
        assert!(net.stack(1).ping_replies().is_empty());
    }

    #[test]
    fn three_stacks_share_the_wire() {
        let mut net = Network::new();
        net.attach(mk_stack(1));
        net.attach(mk_stack(2));
        net.attach(mk_stack(3));
        let s2 = net.stack(1).udp_bind(1000).unwrap();
        let s3 = net.stack(2).udp_bind(1000).unwrap();
        let c = net.stack(0).udp_bind(2000).unwrap();
        net.stack(0)
            .udp_send_to(c, b"to-2", Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 1000))
            .unwrap();
        net.stack(0)
            .udp_send_to(c, b"to-3", Endpoint::new(Ipv4Addr::new(10, 0, 0, 3), 1000))
            .unwrap();
        net.run_until_quiet(16);
        assert_eq!(net.stack(1).udp_recv_from(s2).unwrap().1, b"to-2");
        assert_eq!(net.stack(2).udp_recv_from(s3).unwrap().1, b"to-3");
    }
}
