//! Integration: scheduler + lock primitives cooperating.
//!
//! `uklock`'s primitives return the contexts to wake; `uksched`
//! schedulers do the waking. This is the §3.3 interplay: mutexes park
//! threads, releases hand ownership FIFO, semaphores gate producers and
//! consumers.

use std::cell::RefCell;
use std::rc::Rc;

use unikraft_rs::lock::mutex::Acquire;
use unikraft_rs::lock::{LockConfig, Mutex, Semaphore};
use unikraft_rs::plat::time::Tsc;
use unikraft_rs::sched::{CoopScheduler, Scheduler, StepResult, Thread, ThreadId};

#[test]
fn mutex_serializes_critical_sections() {
    let tsc = Tsc::new(3_600_000_000);
    let mut sched = CoopScheduler::new(&tsc);
    let mutex = Mutex::new(LockConfig::THREADED);
    let log: Rc<RefCell<Vec<(u64, &str)>>> = Rc::new(RefCell::new(Vec::new()));
    // Map scheduler threads to lock contexts by spawn order (1, 2, 3).
    let mut pending_wakes: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));

    for ctx in 1..=3u64 {
        let m = mutex.clone();
        let l = log.clone();
        let wakes = pending_wakes.clone();
        let mut phase = 0;
        sched.spawn(Thread::new(format!("t{ctx}"), move || {
            match phase {
                0 => match m.lock(ctx) {
                    Acquire::Acquired => {
                        phase = 2;
                        l.borrow_mut().push((ctx, "enter"));
                        StepResult::Continue
                    }
                    Acquire::MustWait => {
                        phase = 1;
                        StepResult::Block
                    }
                },
                1 => {
                    // Woken with ownership already transferred.
                    if m.owner() == Some(ctx) {
                        l.borrow_mut().push((ctx, "enter"));
                    }
                    phase = 2;
                    StepResult::Continue
                }
                _ => {
                    l.borrow_mut().push((ctx, "exit"));
                    if let Some(next) = m.unlock(ctx) {
                        wakes.borrow_mut().push(next);
                    }
                    StepResult::Exit
                }
            }
        }));
    }

    // Drive: run, delivering wakeups between rounds.
    for _ in 0..32 {
        sched.run_to_idle();
        let wakes: Vec<u64> = pending_wakes.borrow_mut().drain(..).collect();
        if wakes.is_empty() && sched.alive() == 0 {
            break;
        }
        for ctx in wakes {
            sched.wake(ThreadId(ctx)).unwrap();
        }
    }
    assert_eq!(sched.alive(), 0, "all threads finished");
    // Critical sections must be properly nested: enter/exit pairs with
    // no interleaving.
    let log = log.borrow();
    let mut inside: Option<u64> = None;
    for (ctx, ev) in log.iter() {
        match *ev {
            "enter" => {
                assert!(inside.is_none(), "overlapping critical sections: {log:?}");
                inside = Some(*ctx);
            }
            "exit" => {
                assert_eq!(inside, Some(*ctx), "mismatched exit: {log:?}");
                inside = None;
            }
            _ => unreachable!(),
        }
    }
    assert!(inside.is_none());
    assert_eq!(log.iter().filter(|(_, e)| *e == "enter").count(), 3);
    drop(log);
    let _ = &mut pending_wakes;
}

#[test]
fn semaphore_bounds_concurrent_holders() {
    let sem = Semaphore::new(LockConfig::THREADED, 2);
    // Three contexts race for two units.
    assert!(sem.down(1));
    assert!(sem.down(2));
    assert!(!sem.down(3), "third holder must block");
    assert_eq!(sem.waiter_count(), 1);
    // Releasing hands the unit straight to the waiter.
    assert_eq!(sem.up(), Some(3));
    assert_eq!(sem.count(), 0);
    assert_eq!(sem.up(), None);
    assert_eq!(sem.count(), 1);
}

#[test]
fn producer_consumer_through_scheduler_and_semaphore() {
    let tsc = Tsc::new(3_600_000_000);
    let mut sched = CoopScheduler::new(&tsc);
    let items = Semaphore::new(LockConfig::THREADED, 0);
    let queue: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
    let consumed: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
    let wakes: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));

    // Consumer is lock context 1.
    {
        let items = items.clone();
        let queue = queue.clone();
        let consumed = consumed.clone();
        sched.spawn(Thread::new("consumer", move || {
            if consumed.borrow().len() == 5 {
                return StepResult::Exit;
            }
            if items.try_down() || {
                // Blocked path: register as waiter.
                !items.down(1)
            } {
                if let Some(v) = queue.borrow_mut().pop() {
                    consumed.borrow_mut().push(v);
                }
                StepResult::Yield
            } else {
                StepResult::Block
            }
        }));
    }
    // Producer.
    {
        let items = items.clone();
        let queue = queue.clone();
        let wakes = wakes.clone();
        let mut produced = 0u32;
        sched.spawn(Thread::new("producer", move || {
            if produced == 5 {
                return StepResult::Exit;
            }
            queue.borrow_mut().push(produced);
            produced += 1;
            if let Some(ctx) = items.up() {
                wakes.borrow_mut().push(ctx);
            }
            StepResult::Yield
        }));
    }

    for _ in 0..64 {
        sched.run_to_idle();
        let w: Vec<u64> = wakes.borrow_mut().drain(..).collect();
        if w.is_empty() && sched.alive() == 0 {
            break;
        }
        for ctx in w {
            // Context 1 is the consumer (ThreadId 1 by spawn order).
            let _ = sched.wake(ThreadId(ctx));
        }
    }
    assert_eq!(consumed.borrow().len(), 5, "all items consumed");
}

#[test]
fn bare_config_compiles_out_under_scheduler() {
    // A single-threaded build: lock ops are no-ops, so a "contended"
    // sequence cannot deadlock the (sole) thread.
    let m = Mutex::new(LockConfig::BARE);
    assert_eq!(m.lock(1), Acquire::Acquired);
    assert_eq!(m.lock(1), Acquire::Acquired); // Relock: fine when compiled out.
    assert_eq!(m.unlock(1), None);
}
