//! Integration: complete unikernel servers under client load.
//!
//! Builds server unikernels through the full `ukcore` composition, wires
//! their stacks to client nodes over the in-process network, and drives
//! real HTTP and RESP traffic through every layer: load generator →
//! TCP/IP stack → virtio rings → server stack → application → back.

use unikraft_rs::alloc::AllocBackend;
use unikraft_rs::apps::httpd::Httpd;
use unikraft_rs::apps::kvstore::KvStore;
use unikraft_rs::apps::loadgen::{HttpLoadGen, RespLoadGen, RespOp};
use unikraft_rs::core::UnikernelBuilder;
use unikraft_rs::netdev::backend::VhostKind;
use unikraft_rs::netdev::dev::{NetDev, NetDevConf};
use unikraft_rs::netdev::VirtioNet;
use unikraft_rs::netstack::stack::{NetStack, StackConfig};
use unikraft_rs::netstack::testnet::Network;
use unikraft_rs::netstack::{Endpoint, Ipv4Addr};
use unikraft_rs::plat::time::Tsc;
use unikraft_rs::plat::vmm::VmmKind;
use unikraft_rs::sched::SchedPolicy;

fn client_stack(node: u8) -> NetStack {
    let tsc = Tsc::new(3_600_000_000);
    let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
    dev.configure(NetDevConf::default()).unwrap();
    NetStack::new(StackConfig::node(node), Box::new(dev))
}

fn server_unikernel(name: &str, node: u8) -> NetStack {
    let mut uk = UnikernelBuilder::new(name)
        .platform(VmmKind::Firecracker)
        .allocator(AllocBackend::Tlsf)
        .scheduler(SchedPolicy::Coop)
        .with_net(VhostKind::VhostUser, node)
        .build()
        .unwrap();
    uk.boot().unwrap();
    uk.take_stack().unwrap()
}

#[test]
fn http_requests_flow_through_booted_unikernel() {
    let mut server_stack = server_unikernel("nginx-e2e", 2);
    let mut alloc = AllocBackend::Mimalloc.instantiate();
    alloc.init(1 << 26, 32 << 20).unwrap();
    let mut httpd = Httpd::new(&mut server_stack, 80, alloc).unwrap();

    let mut net = Network::new();
    let ci = net.attach(client_stack(1));
    let si = net.attach(server_stack);

    let target = Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 80);
    let mut wrk = HttpLoadGen::new(net.stack(ci), target, "/index.html", 6, 3, 300).unwrap();
    let mut idle = 0;
    while !wrk.done() && idle < 500 {
        let mut p = wrk.poll(net.stack(ci));
        net.step();
        httpd.poll(net.stack(si));
        net.step();
        p += wrk.poll(net.stack(ci));
        idle = if p == 0 { idle + 1 } else { 0 };
    }
    assert_eq!(wrk.completed(), 300);
    assert_eq!(httpd.served(), 300);
    assert_eq!(httpd.errors(), 0);
    // 612-byte page + headers per request.
    assert!(wrk.bytes_read() >= 300 * 612);
}

#[test]
fn resp_pipeline_flows_through_booted_unikernel() {
    let mut server_stack = server_unikernel("redis-e2e", 2);
    let mut alloc = AllocBackend::Mimalloc.instantiate();
    alloc.init(1 << 26, 32 << 20).unwrap();
    let mut kv = KvStore::new(&mut server_stack, 6379, alloc).unwrap();

    let mut net = Network::new();
    let ci = net.attach(client_stack(1));
    let si = net.attach(server_stack);

    let target = Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 6379);
    // SET phase.
    let mut setgen =
        RespLoadGen::new(net.stack(ci), target, RespOp::Set, 4, 16, 100, 400).unwrap();
    let mut idle = 0;
    while !setgen.done() && idle < 500 {
        let mut p = setgen.poll(net.stack(ci));
        net.step();
        kv.poll(net.stack(si));
        net.step();
        p += setgen.poll(net.stack(ci));
        idle = if p == 0 { idle + 1 } else { 0 };
    }
    assert_eq!(setgen.completed(), 400);
    assert_eq!(kv.sets(), 400);
    assert_eq!(kv.len(), 100, "keyspace of 100 keys");

    // GET phase on a fresh client node.
    let ci2 = net.attach(client_stack(3));
    let mut getgen =
        RespLoadGen::new(net.stack(ci2), target, RespOp::Get, 4, 16, 100, 400).unwrap();
    let mut idle = 0;
    while !getgen.done() && idle < 500 {
        let mut p = getgen.poll(net.stack(ci2));
        net.step();
        kv.poll(net.stack(si));
        net.step();
        p += getgen.poll(net.stack(ci2));
        idle = if p == 0 { idle + 1 } else { 0 };
    }
    assert_eq!(getgen.completed(), 400);
    assert_eq!(kv.gets(), 400);
}

#[test]
fn two_unikernels_talk_to_each_other() {
    // "possibly different applications talking to each other through
    // networked communications" (§2): two unikernels, one network.
    let mut s1 = server_unikernel("node-a", 2);
    let s2 = server_unikernel("node-b", 3);
    let mut alloc = AllocBackend::Tlsf.instantiate();
    alloc.init(1 << 26, 16 << 20).unwrap();
    let mut httpd = Httpd::new(&mut s1, 80, alloc).unwrap();

    let mut net = Network::new();
    let ai = net.attach(s1);
    let bi = net.attach(s2);

    // Unikernel B fetches from unikernel A.
    let target = Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 80);
    let conn = net.stack(bi).tcp_connect(target).unwrap();
    for _ in 0..8 {
        net.run_until_quiet(16);
        httpd.poll(net.stack(ai));
    }
    net.stack(bi)
        .tcp_send(conn, b"GET / HTTP/1.1\r\nHost: a\r\n\r\n")
        .unwrap();
    for _ in 0..8 {
        net.run_until_quiet(16);
        httpd.poll(net.stack(ai));
    }
    let resp = net.stack(bi).tcp_recv(conn, 64 * 1024).unwrap();
    assert!(String::from_utf8_lossy(&resp).starts_with("HTTP/1.1 200 OK"));
}
