//! The lint manifest: which files are "hot", which crates are
//! Relaxed-only, and what the workspace walker skips.
//!
//! This is the written-down form of the repo's datapath map. A module
//! belongs here when a per-frame or per-segment code path runs through
//! it — the no-alloc and panic-free invariants apply to the whole
//! file, with justified allow escapes for the init-time and
//! cold-export islands inside it.

/// Files on which the hot-path passes (no-alloc, panic-free) run.
pub const HOT_FILES: &[&str] = &[
    // The TCP engine: segment ingest, emission, retransmission.
    "crates/uknetstack/src/tcp.rs",
    // The per-pump sweep: demux, GRO, ARP, socket queues.
    "crates/uknetstack/src/stack.rs",
    // Flow-table lookups run once per demuxed segment.
    "crates/uknetstack/src/flow.rs",
    // The timer wheel: armed/cancelled per segment, advanced per pump.
    "crates/uknetstack/src/timer.rs",
    // The buffer pool: every frame takes and recycles through it.
    "crates/uknetdev/src/netbuf.rs",
    // Checksums run over every frame's bytes.
    "crates/uknetdev/src/csum.rs",
    // TSO cutting runs per super-segment on the host path.
    "crates/uknetdev/src/gso.rs",
];

/// Crate source directories that are hot in their entirety.
pub const HOT_DIRS: &[&str] = &["crates/ukstats/src/", "crates/uktrace/src/"];

/// Crates whose atomics must be `Relaxed`: their hot ops are
/// fire-and-forget counter RMWs, and anything stronger on those paths
/// is either a bug or needs a written justification.
pub const RELAXED_ONLY_DIRS: &[&str] = &["crates/ukstats/src/", "crates/uktrace/src/"];

/// Directory names the workspace walker never descends into.
pub const SKIP_DIRS: &[&str] = &[
    "target",
    "third_party", // vendored stand-ins, not this repo's code
    "tests",       // test harnesses may unwrap/allocate freely
    "benches",
    "examples",
    "fixtures", // ukcheck's own known-bad corpus
    "out",
    ".git",
];

/// Whether the hot-path passes apply to `rel` (a `/`-separated path
/// relative to the workspace root).
pub fn is_hot(rel: &str) -> bool {
    HOT_FILES.contains(&rel) || HOT_DIRS.iter().any(|d| rel.starts_with(d))
}

/// Whether the Relaxed-only atomics policy applies to `rel`.
pub fn is_relaxed_only(rel: &str) -> bool {
    RELAXED_ONLY_DIRS.iter().any(|d| rel.starts_with(d))
}
