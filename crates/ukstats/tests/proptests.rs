//! Property tests: histogram quantiles against a naive sorted-vec
//! reference over arbitrary sample streams.
//!
//! The contract under test (see `Histogram::quantile_bounds`): for any
//! stream of samples and any quantile `q`, the naive reference quantile
//! `sorted[max(1, ceil(q·n)) - 1]` lies inside the inclusive bucket
//! bounds the histogram reports — i.e. log-bucketing costs at most one
//! bucket's width (≤ 12.5 %) of precision, never rank error.

#![cfg(feature = "stats")]

use proptest::prelude::*;

use ukstats::Histogram;

/// The naive reference: rank-select on the sorted samples.
fn naive_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

/// Each proptest case needs a fresh histogram (samples from a previous
/// case sharing the slot would break the rank math); the registry dedups
/// by name, so hand out one name per case from a static pool.
fn fresh_hist() -> Histogram {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static NAMES: [&str; 16] = [
        "proptest.h0",
        "proptest.h1",
        "proptest.h2",
        "proptest.h3",
        "proptest.h4",
        "proptest.h5",
        "proptest.h6",
        "proptest.h7",
        "proptest.h8",
        "proptest.h9",
        "proptest.h10",
        "proptest.h11",
        "proptest.h12",
        "proptest.h13",
        "proptest.h14",
        "proptest.h15",
    ];
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    Histogram::register(NAMES[NEXT.fetch_add(1, Ordering::Relaxed) % NAMES.len()])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For every headline quantile, the naive sorted-vec quantile falls
    /// inside the histogram's reported bucket bounds.
    #[test]
    fn quantiles_bracket_the_naive_reference(
        samples in proptest::collection::vec(0u64..1_000_000, 1..512),
    ) {
        let h = fresh_hist();
        // The 16-name pool outlasts the 8 configured cases; a reused
        // slot would corrupt the rank math, so skip one defensively.
        if h.count() != 0 {
            return Ok(());
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for &v in &samples {
            h.record(v);
        }
        for &q in &[0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let naive = naive_quantile(&sorted, q);
            let (lo, hi) = h.quantile_bounds(q).expect("non-empty");
            prop_assert!(
                lo <= naive && naive <= hi,
                "q={q}: naive {naive} outside histogram bucket [{lo},{hi}]"
            );
            // And the headline accessor returns the same bucket's upper
            // bound, so reported quantiles never under-estimate.
            prop_assert_eq!(h.quantile(q), hi);
        }
    }
}

#[test]
fn min_max_sum_track_exactly() {
    let h = Histogram::register("proptest.minmax");
    let samples = [9u64, 1, 500, 77, 3];
    for &v in &samples {
        h.record(v);
    }
    let snap = ukstats::snapshot();
    let hs = snap.hist("proptest.minmax").expect("registered");
    assert_eq!(hs.count, samples.len() as u64);
    assert_eq!(hs.sum, samples.iter().sum::<u64>());
    assert_eq!(hs.min, 1);
    assert_eq!(hs.max, 500);
}
