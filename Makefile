# unikraft-rs — tier-1 verification and common developer targets.
#
# `make verify` is the one-command tier-1 check (build + tests for the
# root crate, as the ROADMAP specifies); `make verify-workspace` sweeps
# every crate in the workspace, which is what CI should run.

CARGO ?= cargo

.PHONY: verify verify-trace-off verify-fault-matrix verify-churn verify-sanitize verify-workspace lint test bench bench-event bench-smoke bench-json examples clean

## Tier-1: release build + root-crate tests (ROADMAP's check).
verify:
	$(CARGO) build --release
	$(CARGO) test -q

## The compile-out guarantee: build and test the datapath with
## tracing (and the uktrace/ukstats default features) off. The
## `trace_noop` cfg test asserts the no-op ring is zero-sized and that
## the echo scenario records nothing — i.e. the tracepoints added no
## code to `pump` and friends.
verify-trace-off:
	$(CARGO) test -q -p uknetstack --no-default-features
	$(CARGO) test -q -p ukstats --no-default-features
	$(CARGO) test -q -p uktrace --no-default-features

## The loss-tolerance property in both feature modes: the
## fault-schedule proptest (arbitrary drop × dup × reorder × corrupt ×
## burst schedules crossed with the {sack, rack, pacing} recovery
## switches must deliver byte-identical TCP streams in both
## directions), the SACK conformance proptests (receiver block
## generation vs an RFC 2018 reference, sender scoreboard vs a naive
## bitmap) and the wire-level recovery suite run with the
## observability features on (default) and compiled out — the recovery
## machinery must not depend on stats/tracing being present.
verify-fault-matrix:
	$(CARGO) test -q -p uknetstack --test proptests any_fault_schedule
	$(CARGO) test -q -p uknetstack --test proptests sack_
	$(CARGO) test -q -p uknetstack --test tcp_recovery
	$(CARGO) test -q -p uknetstack --no-default-features --test proptests any_fault_schedule
	$(CARGO) test -q -p uknetstack --no-default-features --test proptests sack_
	$(CARGO) test -q -p uknetstack --no-default-features --test tcp_recovery

## The connection-lifecycle properties in both feature modes: the
## wire-level lifecycle suite (SYN-flood survival and reclamation,
## handshake-timeout reaping, TIME_WAIT 2MSL + port recycling,
## keepalive dead-peer teardown, RST discipline, churn leak-checks)
## and the timer-wheel-vs-reference proptest run with the
## observability features on (default) and compiled out — the control
## plane must not depend on stats/tracing being present.
verify-churn:
	$(CARGO) test -q -p uknetstack --test tcp_lifecycle
	$(CARGO) test -q -p uknetstack --test proptests timer_wheel_matches
	$(CARGO) test -q -p uknetstack --no-default-features --test tcp_lifecycle
	$(CARGO) test -q -p uknetstack --no-default-features --test proptests timer_wheel_matches

## Repo-native invariant linter (crates/ukcheck): no-alloc hot path,
## panic-free datapath, SAFETY-commented unsafe, atomic-ordering
## policy. Exits non-zero on any unescaped violation; every escape
## must carry a written justification (see crates/ukcheck/README.md).
lint:
	$(CARGO) run -q --release -p ukcheck -- --root $(CURDIR)

## The dynamic counterpart of `lint`: the pool suites with the
## `netbuf-sanitizer` feature on, so double-recycle, cross-pool
## give-back, use-after-recycle and end-of-test leaks panic at the
## faulting site instead of surfacing as downstream corruption. The
## zero_alloc guard runs sanitized too — poisoning is a byte fill and
## provenance is `&'static Location`, so even the sanitized pool must
## circulate without touching the heap.
verify-sanitize:
	$(CARGO) test -q -p uknetdev --features netbuf-sanitizer
	$(CARGO) test -q -p uknetstack --features netbuf-sanitizer --lib
	$(CARGO) test -q -p uknetstack --features netbuf-sanitizer --test zero_alloc
	$(CARGO) test -q -p uknetstack --features netbuf-sanitizer --test tcp_recovery

## The full sweep: every workspace crate's unit, integration and prop
## tests, the static invariant lint, the sanitized pool suites, plus
## bench/example compilation and the netpath smoke bench (which
## asserts 0.000 allocs/frame on the pooled datapath).
verify-workspace:
	$(CARGO) build --release --workspace --benches --examples
	$(CARGO) test -q --workspace
	$(MAKE) lint
	$(MAKE) verify-sanitize
	$(MAKE) verify-trace-off
	$(MAKE) verify-fault-matrix
	$(MAKE) verify-churn
	$(MAKE) bench-smoke

test:
	$(CARGO) test -q --workspace

## All criterion benches (smoke harness — prints ns/iter).
bench:
	$(CARGO) bench

## Just the ukevent readiness benches.
bench-event:
	$(CARGO) bench -p ukbench --bench event

## Cheap datapath smoke: runs the netpath bench in test mode (the
## offline criterion stand-in keeps runs short) and prints the
## allocs-per-frame figures — RTT matrix plus the bulk-transfer
## matrix, whose pooled cells (including the 1 MB TSO transfers) are
## asserted at 0.000 allocs/frame.
bench-smoke:
	$(CARGO) bench -p ukbench --bench netpath -- --test

## Machine-readable perf trajectory: runs the netpath ablation
## matrices — the PR 3 RTT cells (per-frame vs burst, checksum offload
## on/off, pooled vs heap), the PR 4 bulk-throughput grid
## (4KB/64KB/1MB × tso × rx_csum, bytes/s, allocs/frame), the PR 5
## receive-path grid (64KB/1MB per-MSS ingest × gro on/off ×
## netbuf-recv vs copy-recv, receiver-side bytes/s, allocs/frame), and
## the PR 7 goodput-vs-loss grid (1MB per-MSS transfers × drop rate
## {0, 1/64, 1/16, 1/8} × congestion control on/off, goodput with
## recovery overhead included plus retransmit/RTO counts), and the
## PR 8 connection-scale grid (1K/10K/100K established-idle
## connections: establishment rate, resident bytes/conn, echo hot
## path at scale, plus connect/close churn rate and accept rate under
## a 10×-backlog SYN flood), and the PR 9 recovery grid (1MB per-MSS
## transfers × wire {lossless, 1/8 drop, reorder, drop+reorder} ×
## recovery {off, sack, sack+rack, sack+rack+pacing}, goodput plus
## scoreboard/RACK/TLP/pacing counters, gated: sack never loses to
## blind recovery on a lossy wire, sack+rack holds ≥ 32% of lossless
## at 1/8 drop, reorder-only cells see zero false fast-retransmits,
## lossless cells stay 0.000 allocs/frame) — and writes them to
## BENCH_PR9.json. Since PR 6 each cell also embeds the ukstats
## counter deltas measured inside its timed window and the document
## ends with a full registry snapshot; the human tables are suppressed
## (leveled logging drops to Warn in --json mode).
bench-json:
	$(CARGO) bench -p ukbench --bench netpath -- --test --json $(CURDIR)/BENCH_PR9.json

examples:
	$(CARGO) build --release --examples

clean:
	$(CARGO) clean
