//! Table 2: automated porting of externally-built archives.
//!
//! Each row is a library built with its own build system and linked
//! against Unikraft via musl or newlib, with and without the glibc
//! compatibility layer. The symbol requirements below are chosen by
//! what each library actually uses: glibc-fortified builds import
//! `_chk`/64-bit-file symbols (fail on plain musl), poll/mmap users fail
//! on plain newlib, and pure-ANSI libraries link everywhere.

use uklibc::linker::{link, AppArchive};
use uklibc::profile::{LibcKind, LibcProfile};

/// Outcome row for Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Library name.
    pub name: &'static str,
    /// Image size against musl (MB).
    pub musl_size_mb: f64,
    /// Plain musl link succeeds ("std" column).
    pub musl_std: bool,
    /// musl + compat layer link succeeds.
    pub musl_compat: bool,
    /// Image size against newlib (MB).
    pub newlib_size_mb: f64,
    /// Plain newlib link succeeds.
    pub newlib_std: bool,
    /// newlib + compat layer link succeeds.
    pub newlib_compat: bool,
    /// Glue code lines the port needed.
    pub glue_loc: u32,
}

/// Symbol shorthand sets.
const ANSI: &[&str] = &["memcpy", "memset", "strlen", "strcmp", "malloc", "free", "snprintf"];
const POSIX_FILE: &[&str] = &["open", "read", "write", "close", "lseek", "stat"];
const MMAP: &[&str] = &["mmap", "munmap"];
const POLL: &[&str] = &["poll"];
const SOCKETS: &[&str] = &["socket", "bind", "listen", "accept", "setsockopt", "recvmsg", "sendmsg"];
const THREADS: &[&str] = &["pthread_create", "pthread_mutex_lock", "pthread_mutex_unlock"];
const GLIBC_FORTIFY: &[&str] = &["__printf_chk", "__memcpy_chk"];
const GLIBC_FILE64: &[&str] = &["pread64", "pwrite64", "fopen64"];

fn archive(
    name: &'static str,
    musl_mb: f64,
    newlib_mb: f64,
    glue: u32,
    families: &[&[&'static str]],
) -> AppArchive {
    AppArchive {
        name,
        required_symbols: families.iter().flat_map(|f| f.iter().copied()).collect(),
        musl_size_mb: musl_mb,
        newlib_size_mb: newlib_mb,
        glue_loc: glue,
    }
}

/// The 24 library archives of Table 2, with sizes and glue LoC from the
/// paper and symbol imports that reproduce its ✓/✗ pattern.
pub fn table2_archives() -> Vec<AppArchive> {
    vec![
        archive("lib-axtls", 0.364, 0.436, 0, &[ANSI, POSIX_FILE, GLIBC_FORTIFY]),
        archive("lib-bzip2", 0.324, 0.388, 0, &[ANSI, POSIX_FILE, GLIBC_FILE64]),
        archive("lib-c-ares", 0.328, 0.424, 0, &[ANSI, SOCKETS, GLIBC_FORTIFY]),
        archive("lib-duktape", 0.756, 0.856, 7, &[ANSI, POSIX_FILE, MMAP]),
        archive("lib-farmhash", 0.256, 0.340, 0, &[ANSI]),
        archive("lib-fft2d", 0.364, 0.440, 0, &[ANSI, MMAP]),
        archive("lib-helloworld", 0.248, 0.332, 0, &[ANSI]),
        archive("lib-httpreply", 0.252, 0.372, 0, &[ANSI, POLL]),
        archive("lib-libucontext", 0.248, 0.332, 0, &[ANSI, MMAP]),
        archive("lib-libunwind", 0.248, 0.328, 0, &[ANSI]),
        archive("lib-lighttpd", 0.676, 0.788, 6, &[ANSI, SOCKETS, GLIBC_FILE64]),
        archive("lib-memcached", 0.536, 0.660, 6, &[ANSI, SOCKETS, THREADS, GLIBC_FORTIFY]),
        archive("lib-micropython", 0.648, 0.708, 7, &[ANSI, POSIX_FILE, MMAP]),
        archive("lib-nginx", 0.704, 0.792, 5, &[ANSI, SOCKETS, GLIBC_FILE64]),
        archive("lib-open62541", 0.252, 0.336, 13, &[ANSI]),
        archive("lib-openssl", 2.9, 3.0, 0, &[ANSI, POSIX_FILE, GLIBC_FORTIFY]),
        archive("lib-pcre", 0.356, 0.432, 0, &[ANSI, MMAP]),
        archive("lib-python3", 3.1, 3.2, 26, &[ANSI, POSIX_FILE, THREADS, GLIBC_FILE64]),
        archive("lib-redis-client", 0.660, 0.764, 29, &[ANSI, SOCKETS, GLIBC_FORTIFY]),
        archive("lib-redis-server", 1.3, 1.4, 32, &[ANSI, SOCKETS, THREADS, GLIBC_FILE64]),
        archive("lib-ruby", 5.6, 5.7, 37, &[ANSI, POSIX_FILE, THREADS, GLIBC_FILE64]),
        archive("lib-sqlite", 1.4, 1.4, 5, &[ANSI, POSIX_FILE, GLIBC_FILE64]),
        archive("lib-zlib", 0.368, 0.432, 0, &[ANSI, POSIX_FILE, GLIBC_FORTIFY]),
        archive("lib-zydis", 0.688, 0.756, 0, &[ANSI, MMAP]),
    ]
}

/// Runs the four link configurations for every archive.
pub fn generate_table2() -> Vec<Table2Row> {
    let musl = LibcProfile::new(LibcKind::Musl);
    let musl_c = LibcProfile::new(LibcKind::Musl).with_compat_layer();
    let newlib = LibcProfile::new(LibcKind::Newlib);
    let newlib_c = LibcProfile::new(LibcKind::Newlib).with_compat_layer();
    table2_archives()
        .iter()
        .map(|a| Table2Row {
            name: a.name,
            musl_size_mb: a.musl_size_mb,
            musl_std: link(a, &musl).success,
            musl_compat: link(a, &musl_c).success,
            newlib_size_mb: a.newlib_size_mb,
            newlib_std: link(a, &newlib).success,
            newlib_compat: link(a, &newlib_c).success,
            glue_loc: a.glue_loc,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_four_rows() {
        assert_eq!(generate_table2().len(), 24);
    }

    #[test]
    fn compat_layer_fixes_everything() {
        // Table 2: "this layer allows for almost all libraries and
        // applications to compile and link" — every compat cell is ✓.
        for row in generate_table2() {
            assert!(row.musl_compat, "{} musl+compat", row.name);
            assert!(row.newlib_compat, "{} newlib+compat", row.name);
        }
    }

    #[test]
    fn musl_std_matches_paper_pattern() {
        let expect_ok = [
            "lib-duktape",
            "lib-farmhash",
            "lib-fft2d",
            "lib-helloworld",
            "lib-httpreply",
            "lib-libucontext",
            "lib-libunwind",
            "lib-micropython",
            "lib-open62541",
            "lib-pcre",
            "lib-zydis",
        ];
        for row in generate_table2() {
            let want = expect_ok.contains(&row.name);
            assert_eq!(row.musl_std, want, "{} musl std", row.name);
        }
    }

    #[test]
    fn newlib_std_matches_paper_pattern() {
        // §4: "this approach is not effective with newlib" — only the
        // pure-ANSI libraries link.
        let expect_ok = [
            "lib-farmhash",
            "lib-helloworld",
            "lib-libunwind",
            "lib-open62541",
        ];
        for row in generate_table2() {
            let want = expect_ok.contains(&row.name);
            assert_eq!(row.newlib_std, want, "{} newlib std", row.name);
        }
    }

    #[test]
    fn newlib_images_are_larger_than_musl() {
        for row in generate_table2() {
            assert!(
                row.newlib_size_mb >= row.musl_size_mb,
                "{}: newlib {} < musl {}",
                row.name,
                row.newlib_size_mb,
                row.musl_size_mb
            );
        }
    }

    #[test]
    fn glue_loc_is_small() {
        // §4.2: manual porting needs only "few lines of glue code".
        for row in generate_table2() {
            assert!(row.glue_loc <= 40, "{}: {}", row.name, row.glue_loc);
        }
    }
}
