//! IPv4 header codec with real header checksums.

use uknetdev::netbuf::Netbuf;
use ukplat::{Errno, Result};

use crate::{inet_checksum, Ipv4Addr};

/// IPv4 header length (no options).
pub const IPV4_HDR_LEN: usize = 20;

/// Transport protocols we carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpProto {
    /// ICMP (1).
    Icmp,
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
}

impl IpProto {
    fn to_u8(self) -> u8 {
        match self {
            IpProto::Icmp => 1,
            IpProto::Tcp => 6,
            IpProto::Udp => 17,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(IpProto::Icmp),
            6 => Some(IpProto::Tcp),
            17 => Some(IpProto::Udp),
            _ => None,
        }
    }
}

/// A parsed IPv4 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Payload protocol.
    pub proto: IpProto,
    /// Payload length in bytes.
    pub payload_len: usize,
    /// Time to live.
    pub ttl: u8,
}

impl Ipv4Header {
    /// Serializes to 20 bytes with a correct header checksum.
    pub fn encode(&self) -> [u8; IPV4_HDR_LEN] {
        let mut b = [0u8; IPV4_HDR_LEN];
        b[0] = 0x45; // v4, IHL 5
        let total = (IPV4_HDR_LEN + self.payload_len) as u16;
        b[2..4].copy_from_slice(&total.to_be_bytes());
        b[8] = self.ttl;
        b[9] = self.proto.to_u8();
        b[12..16].copy_from_slice(&self.src.octets());
        b[16..20].copy_from_slice(&self.dst.octets());
        let ck = inet_checksum(&b, 0);
        b[10..12].copy_from_slice(&ck.to_be_bytes());
        b
    }

    /// Prepends the 20-byte header (correct checksum included) into
    /// `nb`'s headroom; the transport packet already in the buffer is
    /// untouched. Byte-identical to [`encode`](Self::encode).
    ///
    /// # Panics
    ///
    /// Panics if `nb` has less than [`IPV4_HDR_LEN`] bytes of headroom.
    pub fn encode_into(&self, nb: &mut Netbuf) {
        let hdr = self.encode();
        nb.push_header(&hdr);
    }

    /// Parses and checksum-verifies a packet; returns header + payload.
    pub fn decode(data: &[u8]) -> Result<(Ipv4Header, &[u8])> {
        Self::decode_inner(data, true)
    }

    /// [`decode`](Self::decode) for a frame the wire/device already
    /// marked checksum-validated (`VIRTIO_NET_F_GUEST_CSUM`):
    /// structural validation only, the header checksum pass is
    /// skipped.
    pub fn decode_trusted(data: &[u8]) -> Result<(Ipv4Header, &[u8])> {
        Self::decode_inner(data, false)
    }

    fn decode_inner(data: &[u8], verify_csum: bool) -> Result<(Ipv4Header, &[u8])> {
        if data.len() < IPV4_HDR_LEN {
            return Err(Errno::Inval);
        }
        if data[0] != 0x45 {
            return Err(Errno::ProtoNoSupport); // v4 without options only
        }
        if verify_csum && inet_checksum(&data[..IPV4_HDR_LEN], 0) != 0 {
            return Err(Errno::Io); // Corrupt header.
        }
        let total = u16::from_be_bytes([data[2], data[3]]) as usize;
        if total < IPV4_HDR_LEN || total > data.len() {
            return Err(Errno::Inval);
        }
        let proto = IpProto::from_u8(data[9]).ok_or(Errno::ProtoNoSupport)?;
        let h = Ipv4Header {
            src: Ipv4Addr(u32::from_be_bytes([data[12], data[13], data[14], data[15]])),
            dst: Ipv4Addr(u32::from_be_bytes([data[16], data[17], data[18], data[19]])),
            proto,
            payload_len: total - IPV4_HDR_LEN,
            ttl: data[8],
        };
        Ok((h, &data[IPV4_HDR_LEN..total]))
    }

    /// The pseudo-header checksum seed for UDP/TCP.
    pub fn pseudo_header_sum(&self) -> u32 {
        let s = self.src.octets();
        let d = self.dst.octets();
        let mut sum = 0u32;
        sum += u32::from(u16::from_be_bytes([s[0], s[1]]));
        sum += u32::from(u16::from_be_bytes([s[2], s[3]]));
        sum += u32::from(u16::from_be_bytes([d[0], d[1]]));
        sum += u32::from(u16::from_be_bytes([d[2], d[3]]));
        sum += u32::from(self.proto.to_u8());
        sum += self.payload_len as u32;
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hdr() -> Ipv4Header {
        Ipv4Header {
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(10, 0, 0, 2),
            proto: IpProto::Udp,
            payload_len: 8,
            ttl: 64,
        }
    }

    #[test]
    fn roundtrip() {
        let h = hdr();
        let mut pkt = h.encode().to_vec();
        pkt.extend_from_slice(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let (h2, payload) = Ipv4Header::decode(&pkt).unwrap();
        assert_eq!(h, h2);
        assert_eq!(payload, &[1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn corrupted_header_detected() {
        let h = hdr();
        let mut pkt = h.encode().to_vec();
        pkt.extend_from_slice(&[0; 8]);
        pkt[14] ^= 0xff; // Flip a src byte.
        assert_eq!(Ipv4Header::decode(&pkt).unwrap_err(), Errno::Io);
    }

    #[test]
    fn truncated_packet_rejected() {
        let h = hdr();
        let pkt = h.encode(); // Claims 8 payload bytes but has none.
        assert_eq!(Ipv4Header::decode(&pkt).unwrap_err(), Errno::Inval);
    }

    #[test]
    fn trailing_bytes_ignored() {
        let h = Ipv4Header {
            payload_len: 2,
            ..hdr()
        };
        let mut pkt = h.encode().to_vec();
        pkt.extend_from_slice(&[9, 9]);
        pkt.extend_from_slice(&[0xaa; 10]); // Ethernet padding.
        let (_, payload) = Ipv4Header::decode(&pkt).unwrap();
        assert_eq!(payload, &[9, 9]);
    }
}
