//! TSO/GSO segmentation: cutting MSS wire frames from a super-segment.
//!
//! The `VIRTIO_NET_F_HOST_TSO4` contract: the guest driver hands the
//! device *one* oversized TCP frame — here a scatter-gather
//! [`Netbuf`] chain whose head carries the Ethernet/IPv4/TCP headers
//! of the whole super-segment plus a [`GsoRequest`] — and the **host
//! side** cuts it into wire frames of at most `mss` TCP payload bytes
//! each. [`cut_frame`] is that host-side cutter, shared by:
//!
//! - the in-process wire (`uknetstack::testnet`), which plays the
//!   vhost backend: it cuts each harvested GSO frame straight onto
//!   buffers posted from the *receiver's* pool — the cut and the wire
//!   DMA are the same copy, so TSO adds no extra pass over the bytes;
//! - any software-GSO fallback that must pre-cut frames for a peer
//!   that does not accept oversized frames.
//!
//! Per cut frame the helper replicates the 54-byte header template and
//! fixes it up exactly as a real NIC does: IPv4 total length rewritten
//! and the header checksum recomputed (cached across the equal-sized
//! full-MSS frames), TCP sequence number advanced by the payload
//! offset, PSH kept only on the final frame, and the TCP checksum
//! completed over the frame's own pseudo-header — the same
//! `0 → 0xffff` congruence the device's [`CsumRequest`] completion
//! uses, so the frames are **byte-identical** to what the software
//! per-MSS segmentation path puts on the wire (property-tested in
//! `uknetstack`).
//!
//! [`GsoRequest`]: crate::netbuf::GsoRequest
//! [`CsumRequest`]: crate::netbuf::CsumRequest

use ukplat::{Errno, Result};

use crate::csum::inet_checksum;
use crate::netbuf::Netbuf;

/// Ethernet header bytes in the template.
const ETH_LEN: usize = 14;
/// IPv4 header bytes (no options).
const IP_LEN: usize = 20;
/// TCP header bytes (no options).
const TCP_LEN: usize = 20;
/// Full header template: Ethernet + IPv4 + TCP.
const HDRS: usize = ETH_LEN + IP_LEN + TCP_LEN;

/// Cuts a GSO super-segment into per-MSS wire frames.
///
/// `superframe` must be an Ethernet/IPv4/TCP frame (headers wholly in
/// the head buffer, payload possibly continuing through chain
/// fragments) whose IPv4 total length covers the entire chain.
/// `take_buf` supplies one empty buffer per cut frame (no headroom,
/// capacity at least `HDRS + mss`); finished frames are pushed onto
/// `out`. Returns the number of frames produced.
///
/// The cutter consumes no state from the netbuf's offload requests —
/// callers pass the `mss` from the frame's
/// [`GsoRequest`](crate::netbuf::GsoRequest) — and leaves
/// `superframe` untouched, so the caller still owns and recycles the
/// whole chain afterwards.
pub fn cut_frame<F>(
    superframe: &Netbuf,
    mss: u16,
    mut take_buf: F,
    out: &mut Vec<Netbuf>,
) -> Result<usize>
where
    F: FnMut() -> Netbuf,
{
    let mss = mss as usize;
    let head = superframe.payload();
    if mss == 0 || head.len() < HDRS {
        return Err(Errno::Inval);
    }
    let total = superframe.chain_len();
    // Structural checks: IPv4 without options carrying TCP without
    // options, length field spanning the whole chain.
    if head[12..14] != [0x08, 0x00]
        || head[ETH_LEN] != 0x45
        || head[ETH_LEN + 9] != 6
        || head[ETH_LEN + IP_LEN + 12] >> 4 != 5
    {
        return Err(Errno::Inval);
    }
    let ip_total = u16::from_be_bytes([head[16], head[17]]) as usize;
    if ip_total != total - ETH_LEN {
        return Err(Errno::Inval);
    }
    let payload_total = total - HDRS;
    if payload_total == 0 {
        return Err(Errno::Inval);
    }

    let template: &[u8] = &head[..HDRS];
    let seq0 = u32::from_be_bytes([head[38], head[39], head[40], head[41]]);
    let flags = head[47];
    // Pseudo-header sum without the length term: addresses + protocol.
    let ip = &head[ETH_LEN..ETH_LEN + IP_LEN];
    let pseudo_base: u32 = u32::from(u16::from_be_bytes([ip[12], ip[13]]))
        + u32::from(u16::from_be_bytes([ip[14], ip[15]]))
        + u32::from(u16::from_be_bytes([ip[16], ip[17]]))
        + u32::from(u16::from_be_bytes([ip[18], ip[19]]))
        + 6;

    // Forward-only cursor over the chain's payload bytes, starting
    // just past the headers in the head extent.
    let mut segs = superframe.chain_segments();
    // `chain_segments` starts with `iter::once(head)`, so a missing
    // head extent is structurally impossible; degrade to a malformed-
    // frame error rather than carrying a panicking path.
    let Some(mut cur) = segs.next() else {
        debug_assert!(false, "chain_segments yielded no head extent");
        return Err(Errno::Inval);
    };
    let mut cur_off = HDRS;

    // The IPv4 header differs between frames only in its length field
    // (all full-MSS frames share one), so its checksum is computed
    // once per distinct frame size.
    let mut cached_ip_csum: Option<(usize, u16)> = None;

    let mut produced = 0;
    let mut done = 0;
    while done < payload_total {
        let plen = mss.min(payload_total - done);
        let last = done + plen == payload_total;
        let mut nb = take_buf();
        assert!(
            nb.headroom() == 0 && nb.capacity() >= HDRS + plen,
            "cut buffer too small for an MSS frame"
        );
        nb.set_len(HDRS + plen);
        let frame = nb.payload_mut();
        frame[..HDRS].copy_from_slice(template);
        // IPv4: rewrite the length, restamp the header checksum.
        let ip_total_i = (IP_LEN + TCP_LEN + plen) as u16;
        frame[16..18].copy_from_slice(&ip_total_i.to_be_bytes());
        frame[24..26].copy_from_slice(&[0, 0]);
        let ip_ck = match cached_ip_csum {
            Some((l, ck)) if l == plen => ck,
            _ => {
                let ck = inet_checksum(&frame[ETH_LEN..ETH_LEN + IP_LEN], 0);
                cached_ip_csum = Some((plen, ck));
                ck
            }
        };
        frame[24..26].copy_from_slice(&ip_ck.to_be_bytes());
        // TCP: advance the sequence, keep PSH only on the final cut.
        frame[38..42].copy_from_slice(&seq0.wrapping_add(done as u32).to_be_bytes());
        frame[47] = if last { flags } else { flags & !0x08 };
        frame[50..52].copy_from_slice(&[0, 0]);
        // Payload: one copy out of the chain into the wire frame.
        let mut filled = HDRS;
        while filled < HDRS + plen {
            if cur_off == cur.len() {
                cur = segs.next().ok_or(Errno::Inval)?;
                cur_off = 0;
                continue;
            }
            let take = (cur.len() - cur_off).min(HDRS + plen - filled);
            frame[filled..filled + take].copy_from_slice(&cur[cur_off..cur_off + take]);
            cur_off += take;
            filled += take;
        }
        // TCP checksum over this frame's own pseudo-header; a computed
        // 0 is emitted as the congruent 0xffff, matching the device's
        // CsumRequest completion byte for byte.
        let pseudo = pseudo_base + (TCP_LEN + plen) as u32;
        let ck = match inet_checksum(&frame[ETH_LEN + IP_LEN..HDRS + plen], pseudo) {
            0 => 0xffff,
            ck => ck,
        };
        frame[50..52].copy_from_slice(&ck.to_be_bytes());
        out.push(nb);
        produced += 1;
        done += plen;
    }
    Ok(produced)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-builds a GSO super-segment chain: 54 bytes of headers in
    /// the head, `payload` spread across the head and `frag_size`d
    /// fragments.
    fn superframe(payload: &[u8], head_take: usize, frag_size: usize) -> Netbuf {
        let mut head = Netbuf::alloc(2048, 64);
        let hdr = head.push_header_uninit(HDRS);
        // Ethernet: junk MACs, IPv4 ethertype.
        hdr[12..14].copy_from_slice(&[0x08, 0x00]);
        // IPv4: v4/IHL5, total length over the whole chain, TTL 64,
        // proto TCP, 10.0.0.1 → 10.0.0.2, header checksum valid.
        hdr[14] = 0x45;
        let total = (IP_LEN + TCP_LEN + payload.len()) as u16;
        hdr[16..18].copy_from_slice(&total.to_be_bytes());
        hdr[22] = 64;
        hdr[23] = 6;
        hdr[26..30].copy_from_slice(&[10, 0, 0, 1]);
        hdr[30..34].copy_from_slice(&[10, 0, 0, 2]);
        let ip_ck = inet_checksum(&hdr[14..34].to_vec(), 0);
        hdr[24..26].copy_from_slice(&ip_ck.to_be_bytes());
        // TCP: ports 1→2, seq 1000, ack set, PSH|ACK, window 512.
        hdr[34..36].copy_from_slice(&1u16.to_be_bytes());
        hdr[36..38].copy_from_slice(&2u16.to_be_bytes());
        hdr[38..42].copy_from_slice(&1000u32.to_be_bytes());
        hdr[46] = 5 << 4;
        hdr[47] = 0x18; // PSH|ACK
        hdr[48..50].copy_from_slice(&512u16.to_be_bytes());
        head.append(&payload[..head_take]);
        let mut off = head_take;
        while off < payload.len() {
            let n = frag_size.min(payload.len() - off);
            let mut f = Netbuf::alloc(2048, 0);
            f.set_payload(&payload[off..off + n]);
            head.chain_append(f);
            off += n;
        }
        head
    }

    fn fresh_buf() -> Netbuf {
        Netbuf::alloc(2048, 0)
    }

    #[test]
    fn cuts_full_and_tail_frames_with_valid_checksums() {
        let payload: Vec<u8> = (0..3500u32).map(|i| (i % 251) as u8).collect();
        let sf = superframe(&payload, 700, 1000);
        let mut out = Vec::new();
        let n = cut_frame(&sf, 1460, fresh_buf, &mut out).unwrap();
        assert_eq!(n, 3, "3500 bytes at mss 1460 → 1460 + 1460 + 580");
        assert_eq!(out.len(), 3);
        let mut reassembled = Vec::new();
        for (i, f) in out.iter().enumerate() {
            let b = f.payload();
            let plen = b.len() - HDRS;
            // IPv4 length + checksum verify to zero.
            assert_eq!(
                u16::from_be_bytes([b[16], b[17]]) as usize,
                IP_LEN + TCP_LEN + plen
            );
            assert_eq!(inet_checksum(&b[14..34], 0), 0, "frame {i} ip csum");
            // Sequence advances by the payload cut so far.
            let seq = u32::from_be_bytes([b[38], b[39], b[40], b[41]]);
            assert_eq!(seq, 1000 + reassembled.len() as u32, "frame {i} seq");
            // PSH only on the last frame.
            assert_eq!(b[47] & 0x08 != 0, i == 2, "frame {i} psh");
            // TCP checksum verifies against this frame's pseudo-header.
            let pseudo = {
                let ip = &b[14..34];
                u32::from(u16::from_be_bytes([ip[12], ip[13]]))
                    + u32::from(u16::from_be_bytes([ip[14], ip[15]]))
                    + u32::from(u16::from_be_bytes([ip[16], ip[17]]))
                    + u32::from(u16::from_be_bytes([ip[18], ip[19]]))
                    + 6
                    + (TCP_LEN + plen) as u32
            };
            assert_eq!(inet_checksum(&b[34..], pseudo), 0, "frame {i} tcp csum");
            reassembled.extend_from_slice(&b[HDRS..]);
        }
        assert_eq!(reassembled, payload, "payload survives the cut intact");
    }

    #[test]
    fn cut_respects_arbitrary_mss_and_fragment_layout() {
        let payload: Vec<u8> = (0..997u32).map(|i| (i.wrapping_mul(37) % 256) as u8).collect();
        for (head_take, frag, mss) in [(0, 100, 129), (997, 64, 1460), (13, 7, 997)] {
            let sf = superframe(&payload, head_take, frag.max(1));
            let mut out = Vec::new();
            let n = cut_frame(&sf, mss, fresh_buf, &mut out).unwrap();
            assert_eq!(n, payload.len().div_ceil(mss as usize));
            let got: Vec<u8> = out.iter().flat_map(|f| f.payload()[HDRS..].to_vec()).collect();
            assert_eq!(got, payload, "head_take={head_take} frag={frag} mss={mss}");
        }
    }

    #[test]
    fn malformed_superframes_rejected() {
        let payload = vec![1u8; 100];
        let sf = superframe(&payload, 50, 50);
        let mut out = Vec::new();
        assert_eq!(
            cut_frame(&sf, 0, fresh_buf, &mut out).unwrap_err(),
            Errno::Inval,
            "zero mss"
        );
        let mut short = Netbuf::alloc(64, 0);
        short.set_payload(&[0u8; 20]);
        assert_eq!(
            cut_frame(&short, 100, fresh_buf, &mut out).unwrap_err(),
            Errno::Inval,
            "no room for headers"
        );
        // Length field inconsistent with the chain.
        let mut bad = superframe(&payload, 50, 50);
        bad.payload_mut()[16..18].copy_from_slice(&9999u16.to_be_bytes());
        assert_eq!(
            cut_frame(&bad, 100, fresh_buf, &mut out).unwrap_err(),
            Errno::Inval,
            "ip length must span the chain"
        );
        assert!(out.is_empty());
    }
}
