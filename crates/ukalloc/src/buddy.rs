//! Binary-buddy allocator.
//!
//! The heritage allocator Unikraft inherited from Mini-OS (`mm.c`): memory
//! is carved into power-of-two blocks; allocation splits larger blocks,
//! free coalesces buddies. Initialization walks the whole heap building
//! the page bitmap, which is why the paper's Figure 14 shows the buddy
//! allocator booting ~6x slower than the region allocator (3.07 ms vs
//! 0.49 ms for nginx) — we reproduce that by doing the same per-page work.
//!
//! Blocks are absolutely size-aligned, so a block's buddy is `addr ^ size`.

use std::collections::HashMap;

use ukplat::{Errno, Result};

use crate::stats::AllocStats;
use crate::{align_up, Allocator, GpAddr, MIN_ALIGN};

/// Smallest block the buddy allocator hands out.
const MIN_BLOCK: usize = 32;
/// Largest supported block (1 GiB).
const MAX_ORDER: u8 = 25; // MIN_BLOCK << 25 = 1 GiB

/// Simulated page size for the init-time frame bitmap.
const PAGE: usize = 4096;

fn order_for(size: usize) -> Option<u8> {
    let size = size.max(MIN_BLOCK);
    let mut order = 0u8;
    let mut block = MIN_BLOCK;
    while block < size {
        block <<= 1;
        order += 1;
        if order > MAX_ORDER {
            return None;
        }
    }
    Some(order)
}

fn block_size(order: u8) -> usize {
    MIN_BLOCK << order
}

/// The buddy allocator state.
#[derive(Debug, Default)]
pub struct BuddyAlloc {
    base: GpAddr,
    len: usize,
    /// Per-order stacks of free block addresses (lazily invalidated).
    free_lists: Vec<Vec<GpAddr>>,
    /// Ground truth of free blocks: address → order.
    free_set: HashMap<GpAddr, u8>,
    /// Live allocations: address → order.
    allocated: HashMap<GpAddr, u8>,
    /// Page-frame bitmap built at init (one bit per 4 KiB page) — the
    /// Mini-OS-style init work that dominates buddy boot time.
    frame_bitmap: Vec<u64>,
    stats: AllocStats,
    initialized: bool,
}

impl BuddyAlloc {
    /// Creates an uninitialized buddy allocator.
    pub fn new() -> Self {
        Self::default()
    }

    fn push_free(&mut self, addr: GpAddr, order: u8) {
        self.free_set.insert(addr, order);
        self.free_lists[order as usize].push(addr);
    }

    /// Pops a genuinely free block of exactly `order`, skipping stale
    /// entries left behind by coalescing.
    fn pop_free(&mut self, order: u8) -> Option<GpAddr> {
        while let Some(addr) = self.free_lists[order as usize].pop() {
            if self.free_set.get(&addr) == Some(&order) {
                self.free_set.remove(&addr);
                return Some(addr);
            }
        }
        None
    }

    fn alloc_order(&mut self, order: u8) -> Option<GpAddr> {
        if let Some(addr) = self.pop_free(order) {
            return Some(addr);
        }
        // Split the next larger block.
        if order >= MAX_ORDER {
            return None;
        }
        let parent = self.alloc_order(order + 1)?;
        let half = block_size(order) as u64;
        self.push_free(parent + half, order);
        Some(parent)
    }
}

impl Allocator for BuddyAlloc {
    fn name(&self) -> &'static str {
        "Binary buddy"
    }

    fn init(&mut self, base: GpAddr, len: usize) -> Result<()> {
        if self.initialized {
            return Err(Errno::Busy);
        }
        if len < MIN_BLOCK * 2 {
            return Err(Errno::Inval);
        }
        let base = align_up(base, MIN_BLOCK as u64);
        self.base = base;
        self.len = len;
        self.free_lists = vec![Vec::new(); MAX_ORDER as usize + 1];

        // Mini-OS-style init: mark every page frame free, one bit at a
        // time. This is the real per-page cost Figure 14 measures.
        let pages = len / PAGE;
        self.frame_bitmap = vec![0u64; pages.div_ceil(64)];
        for p in 0..pages {
            self.frame_bitmap[p / 64] |= 1 << (p % 64);
        }

        // Carve the region into maximal absolutely-aligned blocks.
        let mut cur = base;
        let end = base + len as u64;
        while cur + MIN_BLOCK as u64 <= end {
            let align_limit = if cur == 0 {
                block_size(MAX_ORDER)
            } else {
                1usize << cur.trailing_zeros().min(40)
            };
            let remaining = (end - cur) as usize;
            let mut order = MAX_ORDER;
            while order > 0
                && (block_size(order) > remaining || block_size(order) > align_limit)
            {
                order -= 1;
            }
            if block_size(order) > remaining {
                break;
            }
            self.push_free(cur, order);
            cur += block_size(order) as u64;
        }
        self.stats.meta_bytes = self.frame_bitmap.len() * 8;
        self.initialized = true;
        Ok(())
    }

    fn malloc(&mut self, size: usize) -> Option<GpAddr> {
        let order = match order_for(size) {
            Some(o) => o,
            None => {
                self.stats.on_fail();
                return None;
            }
        };
        match self.alloc_order(order) {
            Some(addr) => {
                self.allocated.insert(addr, order);
                self.stats.on_alloc(block_size(order));
                Some(addr)
            }
            None => {
                self.stats.on_fail();
                None
            }
        }
    }

    fn memalign(&mut self, align: usize, size: usize) -> Option<GpAddr> {
        // A buddy block of size >= align is align-aligned by construction.
        self.malloc(size.max(align).max(MIN_ALIGN))
    }

    fn free(&mut self, ptr: GpAddr) {
        let mut order = self
            .allocated
            .remove(&ptr)
            .unwrap_or_else(|| panic!("buddy: free of unallocated address {ptr:#x}"));
        self.stats.on_free(block_size(order));
        // Coalesce with the buddy while possible.
        let mut addr = ptr;
        while order < MAX_ORDER {
            let buddy = addr ^ block_size(order) as u64;
            if self.free_set.get(&buddy) == Some(&order) {
                self.free_set.remove(&buddy);
                addr = addr.min(buddy);
                order += 1;
            } else {
                break;
            }
        }
        self.push_free(addr, order);
    }

    fn available(&self) -> usize {
        self.free_set
            .iter()
            .map(|(_, &o)| block_size(o))
            .sum::<usize>()
    }

    fn stats(&self) -> AllocStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(len: usize) -> BuddyAlloc {
        let mut b = BuddyAlloc::new();
        b.init(1 << 20, len).unwrap();
        b
    }

    #[test]
    fn order_for_rounds_to_power_of_two() {
        assert_eq!(order_for(1), Some(0));
        assert_eq!(order_for(32), Some(0));
        assert_eq!(order_for(33), Some(1));
        assert_eq!(order_for(4096), Some(7));
        assert!(order_for(2 << 30).is_none());
    }

    #[test]
    fn split_and_coalesce_roundtrip() {
        let mut b = mk(1 << 20);
        let before = b.available();
        let p = b.malloc(100).unwrap();
        assert!(b.available() < before);
        b.free(p);
        assert_eq!(b.available(), before, "full coalescing must restore");
    }

    #[test]
    fn blocks_are_size_aligned() {
        let mut b = mk(1 << 20);
        let p = b.malloc(8192).unwrap();
        assert_eq!(p % 8192, 0);
        let q = b.memalign(4096, 64).unwrap();
        assert_eq!(q % 4096, 0);
    }

    #[test]
    fn distinct_allocations_do_not_overlap() {
        let mut b = mk(1 << 20);
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for i in 0..64 {
            let sz = 32 + i * 17;
            let p = b.malloc(sz).unwrap();
            let blk = block_size(order_for(sz).unwrap()) as u64;
            for &(s, e) in &spans {
                assert!(p + blk <= s || p >= e, "overlap at {p:#x}");
            }
            spans.push((p, p + blk));
        }
    }

    #[test]
    fn exhaustion_returns_none_and_counts_failure() {
        let mut b = mk(64 * 1024);
        let mut ptrs = Vec::new();
        while let Some(p) = b.malloc(4096) {
            ptrs.push(p);
        }
        assert!(b.stats().failed_count >= 1);
        assert!(!ptrs.is_empty());
        for p in ptrs {
            b.free(p);
        }
    }

    #[test]
    fn non_power_of_two_region_is_carved_fully() {
        // 1 MiB + 96 KiB region must expose nearly all of it.
        let mut b = BuddyAlloc::new();
        b.init(1 << 20, (1 << 20) + 96 * 1024).unwrap();
        assert!(b.available() >= (1 << 20) + 64 * 1024);
    }

    #[test]
    fn double_init_fails() {
        let mut b = mk(1 << 20);
        assert_eq!(b.init(0, 1 << 20).unwrap_err(), Errno::Busy);
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn double_free_panics() {
        let mut b = mk(1 << 20);
        let p = b.malloc(64).unwrap();
        b.free(p);
        b.free(p);
    }

    #[test]
    fn stats_track_block_sizes() {
        let mut b = mk(1 << 20);
        let p = b.malloc(100).unwrap(); // Rounds to 128-block.
        assert_eq!(b.stats().cur_bytes, 128);
        b.free(p);
        assert_eq!(b.stats().cur_bytes, 0);
        assert_eq!(b.stats().alloc_count, 1);
        assert_eq!(b.stats().free_count, 1);
    }
}
