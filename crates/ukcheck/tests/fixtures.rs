//! Fixture corpus driven through the `ukcheck` binary itself: every
//! known-bad snippet must exit 1 naming the expected lint, every
//! known-good snippet must exit 0 — so the exit-code contract `make
//! lint` relies on is itself under test.

use std::path::PathBuf;
use std::process::Command;

fn fixture(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rel)
}

/// Runs the built binary on one fixture as a hot-path file, returning
/// (exit code, stdout).
fn run_hot(rel: &str) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_ukcheck"))
        .arg("--files")
        .arg(fixture(rel))
        .arg("--hot")
        .output()
        .expect("spawn ukcheck");
    (
        out.status.code().expect("exit code"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn bad_fixtures_fail_with_the_expected_lint() {
    // (fixture, lint tag that must appear, minimum violation count)
    let cases = [
        ("bad/alloc_ctor.rs", "[alloc]", 1),
        ("bad/alloc_macro.rs", "[alloc]", 2),
        ("bad/alloc_method.rs", "[alloc]", 2),
        ("bad/panic_unwrap.rs", "[panic]", 2),
        ("bad/panic_macro.rs", "[panic]", 1),
        ("bad/unsafe_bare.rs", "[unsafe]", 1),
        ("bad/seqcst.rs", "[atomics]", 1),
        ("bad/escape_unjustified.rs", "[escape]", 1),
    ];
    for (rel, tag, min) in cases {
        let (code, stdout) = run_hot(rel);
        assert_eq!(code, 1, "{rel} should exit 1; output:\n{stdout}");
        let hits = stdout.matches(tag).count();
        assert!(
            hits >= min,
            "{rel}: wanted >= {min} {tag} findings, got {hits}:\n{stdout}"
        );
    }
}

#[test]
fn good_fixtures_pass_clean() {
    for rel in [
        "good/clean.rs",
        "good/escaped.rs",
        "good/safety.rs",
        "good/test_code.rs",
        "good/tricky_lexing.rs",
    ] {
        let (code, stdout) = run_hot(rel);
        assert_eq!(code, 0, "{rel} should exit 0; output:\n{stdout}");
    }
}

#[test]
fn missing_file_is_a_usage_error_not_a_pass() {
    let (code, _) = run_hot("no/such/file.rs");
    assert_eq!(code, 2, "IO failures must be distinguishable from clean runs");
}
