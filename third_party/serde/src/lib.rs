//! Offline stand-in for `serde`.
//!
//! The workspace only uses `#[derive(Serialize)]` as metadata on config
//! structs; nothing serializes through the trait at run time. This stub
//! provides marker traits plus the derive macros so those annotations
//! compile without crates.io access.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize {}
