//! Counting semaphore.
//!
//! Used by drivers to signal completions to waiting threads (e.g. the
//! interrupt callback of a `uknetdev` queue unblocking a receiver, §3.1).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::LockConfig;

#[derive(Debug)]
struct SemInner {
    count: i64,
    waiters: VecDeque<u64>,
}

/// A counting semaphore over scheduler context ids.
///
/// # Examples
///
/// ```
/// use uklock::{LockConfig, Semaphore};
///
/// let s = Semaphore::new(LockConfig::THREADED, 0);
/// assert!(!s.down(7));          // Nothing available: ctx 7 blocks.
/// assert_eq!(s.up(), Some(7));  // Post wakes ctx 7.
/// ```
#[derive(Debug, Clone)]
pub struct Semaphore {
    config: LockConfig,
    inner: Rc<RefCell<SemInner>>,
}

impl Semaphore {
    /// Creates a semaphore with the given initial count.
    pub fn new(config: LockConfig, initial: i64) -> Self {
        Semaphore {
            config,
            inner: Rc::new(RefCell::new(SemInner {
                count: initial,
                waiters: VecDeque::new(),
            })),
        }
    }

    /// P operation for context `ctx`. Returns `true` if a unit was taken,
    /// `false` if the caller was queued and must block.
    pub fn down(&self, ctx: u64) -> bool {
        if !self.config.needs_state() {
            return true;
        }
        let mut inner = self.inner.borrow_mut();
        if inner.count > 0 {
            inner.count -= 1;
            true
        } else {
            inner.waiters.push_back(ctx);
            false
        }
    }

    /// Non-blocking P; never queues.
    pub fn try_down(&self) -> bool {
        if !self.config.needs_state() {
            return true;
        }
        let mut inner = self.inner.borrow_mut();
        if inner.count > 0 {
            inner.count -= 1;
            true
        } else {
            false
        }
    }

    /// V operation. If a context is waiting it receives the unit directly;
    /// its id is returned so the scheduler can wake it.
    pub fn up(&self) -> Option<u64> {
        if !self.config.needs_state() {
            return None;
        }
        let mut inner = self.inner.borrow_mut();
        if let Some(ctx) = inner.waiters.pop_front() {
            Some(ctx)
        } else {
            inner.count += 1;
            None
        }
    }

    /// Current count (may be 0 with waiters queued).
    pub fn count(&self) -> i64 {
        self.inner.borrow().count
    }

    /// Number of queued waiters.
    pub fn waiter_count(&self) -> usize {
        self.inner.borrow().waiters.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn down_decrements_when_available() {
        let s = Semaphore::new(LockConfig::THREADED, 2);
        assert!(s.down(1));
        assert!(s.down(2));
        assert_eq!(s.count(), 0);
        assert!(!s.down(3));
        assert_eq!(s.waiter_count(), 1);
    }

    #[test]
    fn up_wakes_fifo() {
        let s = Semaphore::new(LockConfig::THREADED, 0);
        assert!(!s.down(1));
        assert!(!s.down(2));
        assert_eq!(s.up(), Some(1));
        assert_eq!(s.up(), Some(2));
        assert_eq!(s.up(), None);
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn try_down_does_not_queue() {
        let s = Semaphore::new(LockConfig::THREADED, 0);
        assert!(!s.try_down());
        assert_eq!(s.waiter_count(), 0);
    }

    #[test]
    fn bare_semaphore_is_noop() {
        let s = Semaphore::new(LockConfig::BARE, 0);
        assert!(s.down(1));
        assert_eq!(s.up(), None);
    }
}
