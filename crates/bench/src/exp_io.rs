//! Table 4 and Figures 19, 20, 22: I/O-path experiments.

use ukapps::udpkv::{UdpKvMode, UdpKvServer, BATCH};
use ukapps::webcache::{CacheBackend, WebCache};
use uknetdev::backend::{VhostKind, Wire};
use uknetdev::dev::{NetDev, NetDevConf};
use uknetdev::netbuf::NetbufPool;
use uknetdev::VirtioNet;
use ukplat::cost;
use ukplat::time::{Stopwatch, Tsc};
use ukvfs::ninep::{NinePClient, NinePHost, VirtioP9Transport};
use ukvfs::vfscore::FileSystem;
use ukvfs::RamFs;

use crate::util::{fmt_rate, time_mixed};

/// Table 4: specialized UDP key-value store throughput per mode.
pub fn tab4_udp_kv() -> String {
    const REQUESTS: usize = 200_000;
    let mut out = String::new();
    out.push_str("Table 4: UDP key-value store throughput\n");
    out.push_str(&format!(
        "{:<18} {:<10} {:>12} {:>6}\n",
        "setup", "mode", "throughput", "cores"
    ));
    // Pre-render request payloads (seeded store, then GET loop).
    let requests: Vec<Vec<u8>> = (0..BATCH)
        .map(|i| format!("G key{:04}", i % 64).into_bytes())
        .collect();
    let req_refs: Vec<&[u8]> = requests.iter().map(|r| r.as_slice()).collect();

    for mode in UdpKvMode::all() {
        let tsc = Tsc::new(cost::CPU_FREQ_HZ);
        let mut server = UdpKvServer::new(mode, &tsc);
        // Seed.
        for i in 0..64 {
            server.handle(format!("S key{i:04} value-{i}").as_bytes());
        }
        let batches = REQUESTS / BATCH;
        let timing = time_mixed(&tsc, || {
            for _ in 0..batches {
                let replies = server.serve_batch(&req_refs);
                std::hint::black_box(&replies);
            }
        });
        let rate = (batches * BATCH) as f64 * 1e9 / timing.total_ns() as f64;
        let (setup, m) = mode.label();
        out.push_str(&format!(
            "{:<18} {:<10} {:>12} {:>6}\n",
            setup,
            m,
            fmt_rate(rate),
            mode.cores()
        ));
    }
    out.push_str("shape check: uknetdev ~ DPDK >> batch > single; lwip slowest guest\n");
    out
}

/// Figure 19: TX throughput vs packet size, uknetdev vs DPDK-in-VM.
pub fn fig19_tx_throughput() -> String {
    const PACKETS: usize = 100_000;
    let sizes = [64usize, 128, 256, 512, 1024, 1500];
    let mut out = String::new();
    out.push_str("Figure 19: TX throughput (packets/s) vs packet size\n");
    out.push_str(&format!(
        "{:<6} {:>16} {:>16} {:>16} {:>16} {:>12}\n",
        "size",
        "uknetdev/vh-user",
        "uknetdev/vh-net",
        "DPDK-VM/vh-user",
        "DPDK-VM/vh-net",
        "wire max"
    ));
    for size in sizes {
        // Real driver path: netbuf pool + burst TX through VirtioNet.
        let measure = |kind: VhostKind| -> f64 {
            let tsc = Tsc::new(cost::CPU_FREQ_HZ);
            let mut dev = VirtioNet::new(kind, &tsc);
            dev.configure(NetDevConf::default()).expect("configure");
            let mut pool = NetbufPool::new(2 * BATCH, 2048, 64);
            let sw = Stopwatch::start(&tsc);
            let mut sent = 0usize;
            while sent < PACKETS {
                let mut burst = Vec::with_capacity(BATCH);
                for _ in 0..BATCH {
                    let mut nb = pool.take().expect("pool sized for burst");
                    nb.set_len(size);
                    burst.push(nb);
                }
                let st = dev.tx_burst(0, &mut burst).expect("tx");
                sent += st.sent();
                let mut done = Vec::new();
                dev.reclaim_tx(0, &mut done).expect("reclaim");
                for nb in done {
                    pool.give_back(nb);
                }
            }
            sent as f64 * 1e9 / sw.elapsed_ns() as f64
        };
        // DPDK-in-a-Linux-VM model: guest PMD cost + backend per packet.
        let dpdk = |kind: VhostKind| -> f64 {
            let per_pkt = match kind {
                VhostKind::VhostUser => {
                    cost::DPDK_GUEST_PKT_CYCLES + cost::VHOST_USER_PKT_CYCLES
                }
                VhostKind::VhostNet => {
                    cost::DPDK_GUEST_PKT_CYCLES
                        + cost::VHOST_NET_PKT_CYCLES
                        + cost::copy_cost_cycles(size)
                        + cost::VMEXIT_CYCLES / BATCH as u64
                }
            };
            let cpu_ns = cost::cycles_to_ns_f64(per_pkt);
            let wire_ns = Wire::default().frame_ns(size) as f64;
            1e9 / cpu_ns.max(wire_ns)
        };
        out.push_str(&format!(
            "{:<6} {:>16} {:>16} {:>16} {:>16} {:>12}\n",
            size,
            fmt_rate(measure(VhostKind::VhostUser)),
            fmt_rate(measure(VhostKind::VhostNet)),
            fmt_rate(dpdk(VhostKind::VhostUser)),
            fmt_rate(dpdk(VhostKind::VhostNet)),
            fmt_rate(Wire::default().max_pps(size)),
        ));
    }
    out.push_str("shape check: vhost-user ~ DPDK (wire-bound); vhost-net CPU-bound at small sizes\n");
    out
}

/// Figure 20: 9pfs read/write latency vs block size, vs a Linux VM.
pub fn fig20_9pfs_latency() -> String {
    let sizes = [4usize, 8, 16, 32, 64]; // KiB
    let mut out = String::new();
    out.push_str("Figure 20: 9pfs latency per operation vs block size\n");
    out.push_str(&format!(
        "{:<8} {:>14} {:>14} {:>14} {:>14}\n",
        "block", "uk read", "uk write", "linux read", "linux write"
    ));
    for kb in sizes {
        let len = kb * 1024;
        let blob = vec![0x5au8; len];
        // Unikraft guest: real 9P messages over the virtio transport.
        let run = |write: bool, extra_cycles_per_op: u64| -> u64 {
            let tsc = Tsc::new(cost::CPU_FREQ_HZ);
            let mut host_fs = RamFs::new();
            host_fs.add_file("data.bin", &vec![0u8; 1 << 20]).unwrap();
            let mut client =
                NinePClient::new(VirtioP9Transport::kvm(NinePHost::new(host_fs), &tsc));
            let (ino, _) = client.lookup("data.bin").expect("lookup");
            const OPS: u64 = 200;
            let sw = Stopwatch::start(&tsc);
            for i in 0..OPS {
                let off = (i % 8) * len as u64;
                if write {
                    client.write(ino, off, &blob).expect("write");
                } else {
                    client.read(ino, off, len).expect("read");
                }
                tsc.advance(extra_cycles_per_op);
            }
            sw.elapsed_ns() / OPS
        };
        let uk_r = run(false, 0);
        let uk_w = run(true, 0);
        // Linux VM: same message traffic + guest VFS/page-cache path and
        // syscall traps per request.
        let linux_extra = cost::LINUX_GUEST_FILE_REQ_CYCLES + 2 * cost::LINUX_SYSCALL_CYCLES;
        let lx_r = run(false, linux_extra);
        let lx_w = run(true, linux_extra);
        out.push_str(&format!(
            "{:<8} {:>12}us {:>12}us {:>12}us {:>12}us\n",
            format!("{kb}K"),
            uk_r / 1_000,
            uk_w / 1_000,
            lx_r / 1_000,
            lx_w / 1_000
        ));
    }
    out.push_str("shape check: latency grows with block size; Unikraft below Linux\n");
    out
}

/// Figure 22: specialized SHFS vs vfscore vs Linux VM `open()` latency.
pub fn fig22_shfs_vs_vfs() -> String {
    const OPENS: u64 = 1_000;
    let files: Vec<(String, Vec<u8>)> = (0..100)
        .map(|i| (format!("file-{i:03}.html"), vec![b'x'; 612]))
        .collect();
    let file_refs: Vec<(&str, &[u8])> = files
        .iter()
        .map(|(n, d)| (n.as_str(), d.as_slice()))
        .collect();
    let mut out = String::new();
    out.push_str("Figure 22: web-cache open() latency (1000 opens)\n");
    out.push_str(&format!(
        "{:<16} {:>14} {:>14}\n",
        "backend", "file exists", "no file"
    ));
    let mut vfs_hit = 0u64;
    let mut shfs_hit = 0u64;
    for backend in [CacheBackend::Shfs, CacheBackend::Vfs, CacheBackend::LinuxVm] {
        let tsc = Tsc::new(cost::CPU_FREQ_HZ);
        let mut cache = WebCache::new(backend, &file_refs, &tsc).expect("cache");
        let mut run = |exists: bool| -> u64 {
            let sw = Stopwatch::start(&tsc);
            for i in 0..OPENS {
                let name = if exists {
                    format!("file-{:03}.html", i % 100)
                } else {
                    format!("missing-{i}.html")
                };
                let _ = std::hint::black_box(cache.open_request(&name));
            }
            sw.elapsed_ns() / OPENS
        };
        let hit = run(true);
        let miss = run(false);
        match backend {
            CacheBackend::Shfs => shfs_hit = hit,
            CacheBackend::Vfs => vfs_hit = hit,
            CacheBackend::LinuxVm => {}
        }
        out.push_str(&format!(
            "{:<16} {:>12}ns {:>12}ns\n",
            backend.name(),
            hit,
            miss
        ));
    }
    if shfs_hit > 0 {
        out.push_str(&format!(
            "speedup SHFS vs VFS (hit): {:.1}x\n",
            vfs_hit as f64 / shfs_hit as f64
        ));
    }
    out.push_str("shape check: SHFS severalfold faster than VFS; Linux VM slowest\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig22_shows_speedup() {
        let t = fig22_shfs_vs_vfs();
        assert!(t.contains("SHFS"));
        assert!(t.contains("speedup"));
    }

    #[test]
    fn fig20_latency_orders() {
        let t = fig20_9pfs_latency();
        assert!(t.contains("4K"));
        assert!(t.contains("64K"));
    }
}
