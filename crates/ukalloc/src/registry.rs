//! The `ukalloc` multiplexing facility.
//!
//! §3.2: "The internal allocation interface serves as a multiplexing
//! facility that enables the presence of multiple memory allocation
//! backends within the same unikernel" — e.g. a fast region allocator for
//! boot code plus a general-purpose allocator for the application, or a
//! separate pool feeding the network stack. The registry owns the
//! backends, assigns each its own memory region, and routes `uk_malloc`
//! calls by allocator id.

use ukplat::{Errno, Result};

use crate::stats::AllocStats;
use crate::{AllocBackend, Allocator, GpAddr};

/// Identifier of a registered allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AllocId(pub usize);

/// The allocator registry: `struct uk_alloc *` handles by id.
pub struct AllocRegistry {
    allocators: Vec<Box<dyn Allocator>>,
    default_id: Option<AllocId>,
}

impl std::fmt::Debug for AllocRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AllocRegistry")
            .field("count", &self.allocators.len())
            .field("default", &self.default_id)
            .finish()
    }
}

impl Default for AllocRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl AllocRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        AllocRegistry {
            allocators: Vec::new(),
            default_id: None,
        }
    }

    /// Instantiates `backend`, initializes it over `[base, base+len)` and
    /// registers it. The first registered allocator becomes the default.
    ///
    /// Mirrors the boot-time flow: "the boot process sets the association
    /// between memory allocators and memory sources".
    pub fn register(
        &mut self,
        backend: AllocBackend,
        base: GpAddr,
        len: usize,
    ) -> Result<AllocId> {
        let mut a = backend.instantiate();
        a.init(base, len)?;
        let id = AllocId(self.allocators.len());
        self.allocators.push(a);
        if self.default_id.is_none() {
            self.default_id = Some(id);
        }
        Ok(id)
    }

    /// Registers an externally constructed allocator (e.g. a GC-fronted
    /// one) that is already initialized.
    pub fn register_custom(&mut self, a: Box<dyn Allocator>) -> AllocId {
        let id = AllocId(self.allocators.len());
        self.allocators.push(a);
        if self.default_id.is_none() {
            self.default_id = Some(id);
        }
        id
    }

    /// The default allocator id (what plain `malloc` uses).
    pub fn default_id(&self) -> Option<AllocId> {
        self.default_id
    }

    /// Re-points the default allocator — the GC-handoff trick of §3.2
    /// (boot with a simple allocator, switch to the main one once its
    /// service thread runs).
    pub fn set_default(&mut self, id: AllocId) -> Result<()> {
        if id.0 >= self.allocators.len() {
            return Err(Errno::Inval);
        }
        self.default_id = Some(id);
        Ok(())
    }

    /// Number of registered allocators.
    pub fn len(&self) -> usize {
        self.allocators.len()
    }

    /// Whether no allocator is registered.
    pub fn is_empty(&self) -> bool {
        self.allocators.is_empty()
    }

    /// `uk_malloc(a, size)`.
    pub fn malloc(&mut self, id: AllocId, size: usize) -> Option<GpAddr> {
        self.allocators.get_mut(id.0)?.malloc(size)
    }

    /// `uk_memalign(a, align, size)`.
    pub fn memalign(&mut self, id: AllocId, align: usize, size: usize) -> Option<GpAddr> {
        self.allocators.get_mut(id.0)?.memalign(align, size)
    }

    /// `uk_free(a, ptr)`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is invalid or the backend rejects the pointer.
    pub fn free(&mut self, id: AllocId, ptr: GpAddr) {
        self.allocators
            .get_mut(id.0)
            .expect("invalid allocator id")
            .free(ptr);
    }

    /// Default-allocator `malloc` (the libc path).
    pub fn malloc_default(&mut self, size: usize) -> Option<GpAddr> {
        let id = self.default_id?;
        self.malloc(id, size)
    }

    /// Default-allocator `free`.
    pub fn free_default(&mut self, ptr: GpAddr) {
        let id = self.default_id.expect("no default allocator");
        self.free(id, ptr);
    }

    /// Stats for one allocator.
    pub fn stats(&self, id: AllocId) -> Option<AllocStats> {
        self.allocators.get(id.0).map(|a| a.stats())
    }

    /// Name of one allocator.
    pub fn name(&self, id: AllocId) -> Option<&'static str> {
        self.allocators.get(id.0).map(|a| a.name())
    }

    /// Aggregate statistics across all backends.
    pub fn total_stats(&self) -> AllocStats {
        let mut t = AllocStats::default();
        for a in &self.allocators {
            let s = a.stats();
            t.cur_bytes += s.cur_bytes;
            t.peak_bytes += s.peak_bytes;
            t.alloc_count += s.alloc_count;
            t.free_count += s.free_count;
            t.failed_count += s.failed_count;
            t.meta_bytes += s.meta_bytes;
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_registered_is_default() {
        let mut r = AllocRegistry::new();
        let boot = r.register(AllocBackend::BootAlloc, 0, 1 << 16).unwrap();
        let main = r.register(AllocBackend::Tlsf, 1 << 20, 1 << 20).unwrap();
        assert_eq!(r.default_id(), Some(boot));
        r.set_default(main).unwrap();
        assert_eq!(r.default_id(), Some(main));
    }

    #[test]
    fn two_allocators_coexist_with_separate_regions() {
        let mut r = AllocRegistry::new();
        let a = r.register(AllocBackend::BootAlloc, 0, 1 << 16).unwrap();
        let b = r.register(AllocBackend::Buddy, 1 << 20, 1 << 20).unwrap();
        let pa = r.malloc(a, 64).unwrap();
        let pb = r.malloc(b, 64).unwrap();
        assert!(pa < (1 << 16));
        assert!(pb >= (1 << 20));
        r.free(b, pb);
    }

    #[test]
    fn default_malloc_routes() {
        let mut r = AllocRegistry::new();
        r.register(AllocBackend::Tlsf, 0, 1 << 20).unwrap();
        let p = r.malloc_default(128).unwrap();
        r.free_default(p);
        let s = r.total_stats();
        assert_eq!(s.alloc_count, 1);
        assert_eq!(s.free_count, 1);
    }

    #[test]
    fn set_default_validates_id() {
        let mut r = AllocRegistry::new();
        assert_eq!(r.set_default(AllocId(3)).unwrap_err(), Errno::Inval);
    }

    #[test]
    fn gc_handoff_pattern() {
        // §3.2: boot with bootalloc, then switch the default to mimalloc
        // once its "GC thread" would be up.
        let mut r = AllocRegistry::new();
        let early = r.register(AllocBackend::BootAlloc, 0, 1 << 16).unwrap();
        let p_boot = r.malloc_default(64).unwrap();
        assert!(p_boot < (1 << 16));
        let main = r.register(AllocBackend::Mimalloc, 1 << 22, 8 << 20).unwrap();
        r.set_default(main).unwrap();
        let p_app = r.malloc_default(64).unwrap();
        assert!(p_app >= (1 << 22));
        assert_ne!(early, main);
    }
}
