//! Reader-writer lock.
//!
//! §3.3 notes that with multi-core enabled the primitives would use
//! spin-locks and RCU; the reader-writer lock is the read-mostly building
//! block. Writer-preferring to avoid writer starvation.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::LockConfig;

/// Which side a queued context is waiting on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Want {
    Read,
    Write,
}

#[derive(Debug, Default)]
struct RwInner {
    readers: Vec<u64>,
    writer: Option<u64>,
    queue: VecDeque<(u64, Want)>,
}

/// A writer-preferring reader-writer lock over scheduler context ids.
#[derive(Debug, Clone)]
pub struct RwLock {
    config: LockConfig,
    inner: Rc<RefCell<RwInner>>,
}

impl RwLock {
    /// Creates an unlocked rwlock.
    pub fn new(config: LockConfig) -> Self {
        RwLock {
            config,
            inner: Rc::new(RefCell::new(RwInner::default())),
        }
    }

    /// Acquires a read lock for `ctx`. Returns `false` if queued.
    pub fn read_lock(&self, ctx: u64) -> bool {
        if !self.config.needs_state() {
            return true;
        }
        let mut inner = self.inner.borrow_mut();
        let writer_waiting = inner.queue.iter().any(|(_, w)| *w == Want::Write);
        if inner.writer.is_none() && !writer_waiting {
            inner.readers.push(ctx);
            true
        } else {
            inner.queue.push_back((ctx, Want::Read));
            false
        }
    }

    /// Acquires the write lock for `ctx`. Returns `false` if queued.
    pub fn write_lock(&self, ctx: u64) -> bool {
        if !self.config.needs_state() {
            return true;
        }
        let mut inner = self.inner.borrow_mut();
        if inner.writer.is_none() && inner.readers.is_empty() {
            inner.writer = Some(ctx);
            true
        } else {
            inner.queue.push_back((ctx, Want::Write));
            false
        }
    }

    /// Releases a read lock held by `ctx`; returns contexts to wake.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` holds no read lock.
    pub fn read_unlock(&self, ctx: u64) -> Vec<u64> {
        if !self.config.needs_state() {
            return Vec::new();
        }
        let mut inner = self.inner.borrow_mut();
        let pos = inner
            .readers
            .iter()
            .position(|r| *r == ctx)
            .unwrap_or_else(|| panic!("context {ctx} holds no read lock"));
        inner.readers.swap_remove(pos);
        Self::promote(&mut inner)
    }

    /// Releases the write lock held by `ctx`; returns contexts to wake.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is not the writer.
    pub fn write_unlock(&self, ctx: u64) -> Vec<u64> {
        if !self.config.needs_state() {
            return Vec::new();
        }
        let mut inner = self.inner.borrow_mut();
        assert_eq!(inner.writer, Some(ctx), "context {ctx} is not the writer");
        inner.writer = None;
        Self::promote(&mut inner)
    }

    /// Number of active readers.
    pub fn reader_count(&self) -> usize {
        self.inner.borrow().readers.len()
    }

    /// Whether a writer currently holds the lock.
    pub fn has_writer(&self) -> bool {
        self.inner.borrow().writer.is_some()
    }

    fn promote(inner: &mut RwInner) -> Vec<u64> {
        let mut woken = Vec::new();
        if inner.writer.is_some() || !inner.readers.is_empty() {
            // A writer can only enter when fully free; readers may still
            // be active, in which case only more readers could enter, but
            // writer preference forbids that too, so nothing to do.
            if inner.writer.is_some() {
                return woken;
            }
        }
        match inner.queue.front() {
            Some((_, Want::Write)) if inner.readers.is_empty() => {
                let (ctx, _) = inner.queue.pop_front().unwrap();
                inner.writer = Some(ctx);
                woken.push(ctx);
            }
            Some((_, Want::Read)) => {
                // Admit the leading run of readers.
                while matches!(inner.queue.front(), Some((_, Want::Read))) {
                    let (ctx, _) = inner.queue.pop_front().unwrap();
                    inner.readers.push(ctx);
                    woken.push(ctx);
                }
            }
            _ => {}
        }
        woken
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiple_readers_coexist() {
        let l = RwLock::new(LockConfig::THREADED);
        assert!(l.read_lock(1));
        assert!(l.read_lock(2));
        assert_eq!(l.reader_count(), 2);
    }

    #[test]
    fn writer_excludes_readers() {
        let l = RwLock::new(LockConfig::THREADED);
        assert!(l.write_lock(1));
        assert!(!l.read_lock(2));
        let woken = l.write_unlock(1);
        assert_eq!(woken, vec![2]);
        assert_eq!(l.reader_count(), 1);
    }

    #[test]
    fn writer_preference_blocks_new_readers() {
        let l = RwLock::new(LockConfig::THREADED);
        assert!(l.read_lock(1));
        assert!(!l.write_lock(2)); // Writer queued behind reader 1.
        assert!(!l.read_lock(3)); // New reader must queue behind writer.
        let woken = l.read_unlock(1);
        assert_eq!(woken, vec![2]); // Writer admitted first.
        assert!(l.has_writer());
        let woken = l.write_unlock(2);
        assert_eq!(woken, vec![3]); // Then the queued reader.
    }

    #[test]
    fn queued_reader_run_admitted_together() {
        let l = RwLock::new(LockConfig::THREADED);
        assert!(l.write_lock(1));
        assert!(!l.read_lock(2));
        assert!(!l.read_lock(3));
        let woken = l.write_unlock(1);
        assert_eq!(woken, vec![2, 3]);
        assert_eq!(l.reader_count(), 2);
    }

    #[test]
    #[should_panic(expected = "not the writer")]
    fn wrong_writer_unlock_panics() {
        let l = RwLock::new(LockConfig::THREADED);
        l.write_lock(1);
        l.write_unlock(2);
    }

    #[test]
    fn bare_config_noop() {
        let l = RwLock::new(LockConfig::BARE);
        assert!(l.write_lock(1));
        assert!(l.read_lock(2));
        assert!(l.write_unlock(9).is_empty());
    }
}
