//! Hierarchical timer wheel — the connection-lifecycle substrate.
//!
//! One wheel per stack drives *every* TCP timer: retransmission,
//! persist probes, delayed ACKs, the SYN-RECEIVED handshake timeout,
//! TIME_WAIT's 2MSL expiry, FIN-WAIT-2 orphan reaping and keepalive
//! probing. The design is the classic hashed hierarchical wheel
//! (Varghese & Lauck): `LEVELS` levels of `SLOTS` slots each, where
//! level 0 resolves single ticks and each higher level covers
//! `SLOTS`× the span below it. Arming, cancelling and advancing are
//! all O(1) amortised — advancing walks one slot per elapsed tick and
//! occasionally cascades a coarse slot down a level.
//!
//! # Zero-alloc steady state
//!
//! Timer entries live in a slab (`Vec<Entry>`) threaded into
//! per-slot intrusive doubly-linked lists by index; arming pops the
//! free list and cancelling/firing pushes back onto it, so once the
//! slab has grown to the connection count's high-water mark no
//! operation allocates. [`TimerWheel::with_capacity`] pre-reserves the
//! slab so a sized deployment never allocates at all.
//!
//! # Tokens and generations
//!
//! [`arm`](TimerWheel::arm) returns a [`TimerToken`] — slab index +
//! generation. Each slot reuse bumps the generation, so a stale token
//! held by a connection that raced its timer's firing cancels nothing
//! (ABA-safe). Cancel is idempotent: cancelling a token that already
//! fired or was cancelled is a no-op returning `false`.
//!
//! # Firing semantics
//!
//! Deadlines are nanoseconds on the same virtual clock the stack
//! runs on ([`ukplat::time::Tsc`]). [`advance`](TimerWheel::advance)
//! fires every armed entry whose deadline tick is at or before the
//! new time — including entries armed *in the past*, which fire on
//! the very next advance even if the clock did not move. A timer
//! never fires early relative to its tick: an entry armed for
//! deadline `d` fires on the first advance where
//! `now_ns ≥ floor(d / tick_ns) * tick_ns`. Callers that need exact
//! sub-tick deadlines (the RTO path does) re-check the true deadline
//! on fire and re-arm for the remainder.

/// Slots per level. 64 keeps cascade work tiny and slot indexing a
/// mask.
pub const SLOTS: usize = 64;
/// Hierarchy depth. With a 1 ms tick, 4 levels span 64⁴ ms ≈ 4.7 h;
/// deadlines beyond that clamp to the furthest slot and re-clamp on
/// cascade, so arbitrarily far deadlines still fire (just with extra
/// cascades).
pub const LEVELS: usize = 4;
/// Default tick granularity: 1 ms in virtual-clock nanoseconds.
pub const DEFAULT_TICK_NS: u64 = 1_000_000;

const NIL: u32 = u32::MAX;
/// Pseudo-slot for entries armed at-or-before the current tick: they
/// fire on the next advance regardless of clock movement.
const READY_SLOT: u32 = (LEVELS * SLOTS) as u32;
/// Slot marker for free-list entries.
const FREE_SLOT: u32 = READY_SLOT + 1;

/// Handle to an armed timer; survives slab reuse via a generation tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerToken {
    idx: u32,
    gen: u32,
}

impl TimerToken {
    /// A token that never matches an armed entry (useful as a "no
    /// timer" default before the first arm).
    pub const NONE: TimerToken = TimerToken { idx: NIL, gen: 0 };

    /// True if this is the [`NONE`](Self::NONE) sentinel.
    pub fn is_none(self) -> bool {
        self.idx == NIL
    }
}

impl Default for TimerToken {
    fn default() -> Self {
        TimerToken::NONE
    }
}

#[derive(Debug, Clone)]
struct Entry {
    /// Caller's payload, handed back verbatim on fire.
    key: u64,
    /// Absolute deadline in ticks (used to re-place on cascade).
    deadline_tick: u64,
    /// Exact deadline in ns (for `fired` callbacks that want it).
    deadline_ns: u64,
    gen: u32,
    prev: u32,
    next: u32,
    /// Which list this entry is on: a wheel slot, `READY_SLOT`, or
    /// `FREE_SLOT`.
    slot: u32,
}

/// The hierarchical wheel. See the module docs for the design.
#[derive(Debug)]
pub struct TimerWheel {
    /// Slot list heads: `LEVELS * SLOTS` wheel slots followed by the
    /// ready list.
    heads: Vec<u32>,
    entries: Vec<Entry>,
    free_head: u32,
    /// Ticks fully processed so far.
    current_tick: u64,
    tick_ns: u64,
    armed: usize,
    /// Scratch list reused by `advance` while re-placing cascaded
    /// entries (kept so cascades stay zero-alloc after warm-up).
    cascade_scratch: Vec<u32>,
}

impl TimerWheel {
    /// A wheel with the default 1 ms tick starting at time zero.
    pub fn new() -> Self {
        Self::with_tick(DEFAULT_TICK_NS)
    }

    /// A wheel with a custom tick granularity (ns per tick).
    // ukcheck: allow(alloc) -- one-time construction of the slot heads;
    // the entry slab starts empty and is sized via `reserve`
    pub fn with_tick(tick_ns: u64) -> Self {
        assert!(tick_ns > 0, "tick must be positive");
        TimerWheel {
            heads: vec![NIL; LEVELS * SLOTS + 1],
            entries: Vec::new(),
            free_head: NIL,
            current_tick: 0,
            tick_ns,
            armed: 0,
            cascade_scratch: Vec::new(),
        }
    }

    /// A wheel pre-sized for `cap` concurrent timers: nothing
    /// allocates until the armed count exceeds `cap`.
    // ukcheck: allow(alloc) -- construction-time warm-up so the armed
    // path stays allocation-free
    pub fn with_capacity(cap: usize) -> Self {
        let mut w = Self::new();
        w.reserve(cap);
        w
    }

    /// Grows the slab so `extra` more timers can be armed without
    /// allocating.
    // ukcheck: allow(alloc) -- explicit warm-up entry point; callers
    // invoke it at setup, and zero_alloc asserts steady state stays flat
    pub fn reserve(&mut self, extra: usize) {
        let start = self.entries.len();
        self.entries.reserve(extra);
        for i in 0..extra {
            let idx = (start + i) as u32;
            self.entries.push(Entry {
                key: 0,
                deadline_tick: 0,
                deadline_ns: 0,
                gen: 1,
                prev: NIL,
                next: self.free_head,
                slot: FREE_SLOT,
            });
            self.free_head = idx;
        }
        if self.cascade_scratch.capacity() < SLOTS {
            self.cascade_scratch.reserve(SLOTS - self.cascade_scratch.capacity());
        }
    }

    /// Timers currently armed.
    pub fn len(&self) -> usize {
        self.armed
    }

    /// True when no timer is armed.
    pub fn is_empty(&self) -> bool {
        self.armed == 0
    }

    /// The wheel's notion of "now", rounded down to its tick.
    pub fn now_ns(&self) -> u64 {
        self.current_tick * self.tick_ns
    }

    /// Slab capacity (armed + free entries) — tests assert steady
    /// state keeps this flat.
    pub fn slab_capacity(&self) -> usize {
        self.entries.len()
    }

    fn alloc_entry(&mut self) -> u32 {
        if self.free_head == NIL {
            // Grow geometrically so a warm wheel stops allocating.
            let grow = (self.entries.len().max(8)).min(64 * 1024);
            // ukcheck: allow(alloc) -- cold slab-exhausted branch only;
            // geometric growth means a warm wheel never re-enters it
            self.reserve(grow);
        }
        let idx = self.free_head;
        self.free_head = self.entries[idx as usize].next;
        idx
    }

    fn link(&mut self, idx: u32, slot: u32) {
        let head = self.heads[slot as usize];
        {
            let e = &mut self.entries[idx as usize];
            e.slot = slot;
            e.prev = NIL;
            e.next = head;
        }
        if head != NIL {
            self.entries[head as usize].prev = idx;
        }
        self.heads[slot as usize] = idx;
    }

    fn unlink(&mut self, idx: u32) {
        let (prev, next, slot) = {
            let e = &self.entries[idx as usize];
            (e.prev, e.next, e.slot)
        };
        if prev != NIL {
            self.entries[prev as usize].next = next;
        } else {
            self.heads[slot as usize] = next;
        }
        if next != NIL {
            self.entries[next as usize].prev = prev;
        }
    }

    fn free_entry(&mut self, idx: u32) {
        let e = &mut self.entries[idx as usize];
        e.gen = e.gen.wrapping_add(1).max(1);
        e.slot = FREE_SLOT;
        e.prev = NIL;
        e.next = self.free_head;
        self.free_head = idx;
    }

    /// Picks the wheel slot for `deadline_tick` relative to
    /// `current_tick`. Past-or-now deadlines go to the ready list.
    fn place_slot(&self, deadline_tick: u64) -> u32 {
        if deadline_tick <= self.current_tick {
            return READY_SLOT;
        }
        let delta = deadline_tick - self.current_tick;
        let mut span = SLOTS as u64;
        for level in 0..LEVELS {
            if delta < span {
                let shift = 6 * level as u32;
                let slot = (deadline_tick >> shift) as usize & (SLOTS - 1);
                return (level * SLOTS + slot) as u32;
            }
            span = span.saturating_mul(SLOTS as u64);
        }
        // Beyond the hierarchy's span: park in the furthest top-level
        // slot; cascade re-places (and re-clamps) it as time passes.
        let shift = 6 * (LEVELS - 1) as u32;
        let slot = ((self.current_tick >> shift).wrapping_sub(1)) as usize & (SLOTS - 1);
        (((LEVELS - 1) * SLOTS) + slot) as u32
    }

    /// Arms a timer for `deadline_ns`, returning its token. `key` is
    /// handed back verbatim when the timer fires. O(1); allocates only
    /// when the slab is exhausted.
    pub fn arm(&mut self, deadline_ns: u64, key: u64) -> TimerToken {
        let idx = self.alloc_entry();
        let deadline_tick = deadline_ns / self.tick_ns;
        {
            let e = &mut self.entries[idx as usize];
            e.key = key;
            e.deadline_tick = deadline_tick;
            e.deadline_ns = deadline_ns;
        }
        let slot = self.place_slot(deadline_tick);
        self.link(idx, slot);
        self.armed += 1;
        TimerToken {
            idx,
            gen: self.entries[idx as usize].gen,
        }
    }

    /// Cancels an armed timer. Returns `true` if the token was live;
    /// stale tokens (already fired, cancelled, or `NONE`) are no-ops.
    pub fn cancel(&mut self, token: TimerToken) -> bool {
        if token.idx == NIL {
            return false;
        }
        let Some(e) = self.entries.get(token.idx as usize) else {
            return false;
        };
        if e.gen != token.gen || e.slot == FREE_SLOT {
            return false;
        }
        self.unlink(token.idx);
        self.free_entry(token.idx);
        self.armed -= 1;
        true
    }

    /// Advances the wheel to `now_ns`, invoking `fire(key,
    /// deadline_ns)` for every timer due at or before it. Entries
    /// armed in the past fire even when the clock has not moved. Time
    /// never goes backwards: an earlier `now_ns` only drains the
    /// ready list.
    pub fn advance(&mut self, now_ns: u64, mut fire: impl FnMut(u64, u64)) {
        // Entries armed at-or-before the current tick.
        self.drain_ready(&mut fire);
        let target_tick = now_ns / self.tick_ns;
        while self.current_tick < target_tick {
            self.current_tick += 1;
            let t = self.current_tick;
            // Cascade coarse levels whose period boundary we just
            // crossed, innermost first so re-placed entries can land
            // in the level-0 slot we're about to expire.
            for level in 1..LEVELS {
                let shift = 6 * level as u32;
                if t & ((1u64 << shift) - 1) != 0 {
                    break;
                }
                let slot = ((level * SLOTS) + ((t >> shift) as usize & (SLOTS - 1))) as u32;
                self.cascade(slot);
            }
            let slot0 = (t as usize & (SLOTS - 1)) as u32;
            self.expire_slot(slot0, &mut fire);
            self.drain_ready(&mut fire);
        }
    }

    /// Re-places every entry in a coarse slot one level down (or to
    /// the ready list if its tick has arrived).
    fn cascade(&mut self, slot: u32) {
        let mut scratch = std::mem::take(&mut self.cascade_scratch);
        scratch.clear();
        let mut cur = self.heads[slot as usize];
        while cur != NIL {
            scratch.push(cur);
            cur = self.entries[cur as usize].next;
        }
        self.heads[slot as usize] = NIL;
        for idx in scratch.drain(..) {
            let dt = self.entries[idx as usize].deadline_tick;
            let new_slot = self.place_slot(dt);
            self.link(idx, new_slot);
        }
        self.cascade_scratch = scratch;
    }

    /// Fires every entry in a level-0 slot whose tick has arrived.
    /// (All entries in the slot match the current tick by
    /// construction once cascades have run.)
    fn expire_slot(&mut self, slot: u32, fire: &mut impl FnMut(u64, u64)) {
        loop {
            let idx = self.heads[slot as usize];
            if idx == NIL {
                break;
            }
            let dt = self.entries[idx as usize].deadline_tick;
            if dt > self.current_tick {
                // A same-slot entry for a later wheel revolution
                // (possible after a clamped far-future arm): move it
                // aside via re-place.
                self.unlink(idx);
                let new_slot = self.place_slot(dt);
                debug_assert_ne!(new_slot, slot, "re-place must make progress");
                self.link(idx, new_slot);
                continue;
            }
            let (key, dns) = {
                let e = &self.entries[idx as usize];
                (e.key, e.deadline_ns)
            };
            self.unlink(idx);
            self.free_entry(idx);
            self.armed -= 1;
            fire(key, dns);
        }
    }

    fn drain_ready(&mut self, fire: &mut impl FnMut(u64, u64)) {
        loop {
            let idx = self.heads[READY_SLOT as usize];
            if idx == NIL {
                break;
            }
            let (key, dns) = {
                let e = &self.entries[idx as usize];
                (e.key, e.deadline_ns)
            };
            self.unlink(idx);
            self.free_entry(idx);
            self.armed -= 1;
            fire(key, dns);
        }
    }
}

impl Default for TimerWheel {
    fn default() -> Self {
        TimerWheel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    fn collect_fires(w: &mut TimerWheel, now_ns: u64) -> Vec<u64> {
        let mut v = Vec::new();
        w.advance(now_ns, |k, _| v.push(k));
        v
    }

    #[test]
    fn fires_at_deadline_not_before() {
        let mut w = TimerWheel::new();
        w.arm(10 * MS, 1);
        assert!(collect_fires(&mut w, 9 * MS).is_empty());
        assert_eq!(collect_fires(&mut w, 10 * MS), vec![1]);
        assert!(w.is_empty());
    }

    #[test]
    fn past_deadline_fires_on_next_advance_even_without_time() {
        let mut w = TimerWheel::new();
        w.advance(100 * MS, |_, _| panic!("nothing armed"));
        w.arm(5 * MS, 7); // Already in the past.
        assert_eq!(collect_fires(&mut w, 100 * MS), vec![7]);
    }

    #[test]
    fn cancel_prevents_fire_and_is_idempotent() {
        let mut w = TimerWheel::new();
        let t = w.arm(10 * MS, 1);
        assert!(w.cancel(t));
        assert!(!w.cancel(t));
        assert!(!w.cancel(TimerToken::NONE));
        assert!(collect_fires(&mut w, 20 * MS).is_empty());
    }

    #[test]
    fn stale_token_after_fire_cancels_nothing() {
        let mut w = TimerWheel::new();
        let t = w.arm(1 * MS, 1);
        assert_eq!(collect_fires(&mut w, 2 * MS), vec![1]);
        // The slab slot is reused by a new timer; the old token must
        // not cancel it.
        let _t2 = w.arm(50 * MS, 2);
        assert!(!w.cancel(t));
        assert_eq!(collect_fires(&mut w, 60 * MS), vec![2]);
    }

    #[test]
    fn long_deadlines_cascade_down() {
        let mut w = TimerWheel::new();
        // Spread across all levels: 5 ms, 300 ms, 20 s, 30 min.
        w.arm(5 * MS, 1);
        w.arm(300 * MS, 2);
        w.arm(20_000 * MS, 3);
        w.arm(1_800_000 * MS, 4);
        assert_eq!(collect_fires(&mut w, 6 * MS), vec![1]);
        assert_eq!(collect_fires(&mut w, 301 * MS), vec![2]);
        assert!(collect_fires(&mut w, 19_000 * MS).is_empty());
        assert_eq!(collect_fires(&mut w, 20_001 * MS), vec![3]);
        assert_eq!(collect_fires(&mut w, 1_800_001 * MS), vec![4]);
        assert!(w.is_empty());
    }

    #[test]
    fn beyond_hierarchy_span_still_fires() {
        let mut w = TimerWheel::new();
        // 64^4 ms ≈ 4.66 h; arm a deadline past the whole span.
        let span_ms = 64u64 * 64 * 64 * 64;
        let deadline = (span_ms + 1000) * MS;
        w.arm(deadline, 9);
        assert!(collect_fires(&mut w, deadline - MS).is_empty());
        assert_eq!(collect_fires(&mut w, deadline), vec![9]);
    }

    #[test]
    fn big_clock_jump_fires_everything_in_between() {
        let mut w = TimerWheel::new();
        for i in 1..=100u64 {
            w.arm(i * 7 * MS, i);
        }
        let fired = collect_fires(&mut w, 1000 * MS);
        assert_eq!(fired.len(), 100);
        // Each key exactly once.
        let mut sorted = fired.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (1..=100).collect::<Vec<_>>());
    }

    #[test]
    fn steady_state_rearm_is_slab_flat() {
        let mut w = TimerWheel::new();
        let mut now = 0;
        let mut tokens: Vec<TimerToken> = Vec::new();
        let mut warm_cap = 0;
        for round in 0..1000u64 {
            now += 3 * MS;
            // Cancel half, let the rest ride until they fire, re-arm
            // a full set every round.
            for (i, t) in tokens.drain(..).enumerate() {
                if i % 2 == 0 {
                    w.cancel(t);
                }
            }
            w.advance(now, |_, _| {});
            for i in 0..32u64 {
                tokens.push(w.arm(now + (1 + (round + i) % 50) * MS, i));
            }
            if round == 100 {
                warm_cap = w.slab_capacity();
            }
        }
        assert_eq!(
            w.slab_capacity(),
            warm_cap,
            "steady state must not grow the slab after warm-up"
        );
    }

    #[test]
    fn sub_tick_deadline_rounds_down() {
        // An entry armed for 1.5 ticks fires when the wheel crosses
        // tick 1 — never later than its deadline's tick.
        let mut w = TimerWheel::new();
        w.arm(MS + MS / 2, 1);
        assert_eq!(collect_fires(&mut w, MS), vec![1]);
    }
}
