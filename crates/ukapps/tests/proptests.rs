//! Property-based tests for the application protocol engines.

use proptest::prelude::*;

use ukalloc::AllocBackend;
use ukapps::kvstore::{parse_resp, resp_command, RespValue};
use ukapps::sqldb::{parse, SqlDb, Statement, Value};
use ukapps::udpkv::{UdpKvMode, UdpKvServer};
use ukplat::time::Tsc;

fn db() -> SqlDb {
    let mut a = AllocBackend::Tlsf.instantiate();
    a.init(1 << 24, 32 << 20).unwrap();
    SqlDb::new(a)
}

proptest! {
    /// RESP values roundtrip through encode/parse.
    #[test]
    fn resp_roundtrip(words in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..40), 1..6)
    ) {
        let refs: Vec<&[u8]> = words.iter().map(|w| w.as_slice()).collect();
        let encoded = resp_command(&refs);
        let (value, used) = parse_resp(&encoded).unwrap();
        prop_assert_eq!(used, encoded.len());
        match value {
            RespValue::Array(items) => {
                prop_assert_eq!(items.len(), words.len());
                for (item, w) in items.iter().zip(&words) {
                    prop_assert_eq!(item, &RespValue::Bulk(Some(w.clone())));
                }
            }
            other => prop_assert!(false, "expected array, got {other:?}"),
        }
    }

    /// Truncating an encoded RESP command yields "incomplete", never a
    /// wrong parse or a panic.
    #[test]
    fn resp_truncation_is_incomplete(words in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 1..20), 1..4),
        cut in 1usize..10,
    ) {
        let refs: Vec<&[u8]> = words.iter().map(|w| w.as_slice()).collect();
        let encoded = resp_command(&refs);
        let cut = cut.min(encoded.len() - 1);
        prop_assert!(parse_resp(&encoded[..encoded.len() - cut]).is_none());
    }

    /// Arbitrary bytes never panic the RESP parser.
    #[test]
    fn resp_parser_tolerates_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..80)) {
        let _ = parse_resp(&bytes);
    }

    /// Integer inserts always read back exactly through SELECT.
    #[test]
    fn sql_insert_select_consistency(values in proptest::collection::vec(any::<i32>(), 1..40)) {
        let mut db = db();
        db.execute("CREATE TABLE t (k, v)").unwrap();
        for (i, v) in values.iter().enumerate() {
            db.execute(&format!("INSERT INTO t VALUES ({i}, {v})")).unwrap();
        }
        let rows = db.execute("SELECT v FROM t").unwrap();
        prop_assert_eq!(rows.len(), values.len());
        for (i, v) in values.iter().enumerate() {
            let rows = db.execute(&format!("SELECT v FROM t WHERE k = {i}")).unwrap();
            prop_assert_eq!(&rows, &vec![vec![Value::Int(*v as i64)]]);
        }
    }

    /// Deleting every row frees every record allocation.
    #[test]
    fn sql_delete_releases_memory(n in 1u64..60) {
        let mut db = db();
        db.execute("CREATE TABLE t (k)").unwrap();
        for i in 0..n {
            db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        for i in 0..n {
            db.execute(&format!("DELETE FROM t WHERE k = {i}")).unwrap();
        }
        prop_assert_eq!(db.row_count("t"), 0);
        prop_assert_eq!(db.alloc_stats().live(), 0);
    }

    /// The SQL parser never panics on arbitrary input strings.
    #[test]
    fn sql_parser_tolerates_garbage(s in "\\PC{0,80}") {
        let _ = parse(&s);
    }

    /// Text values with awkward (but quote-free) content survive the
    /// tokenizer.
    #[test]
    fn sql_text_roundtrip(s in "[a-zA-Z0-9 _.,!-]{0,30}") {
        let stmt = format!("INSERT INTO t VALUES ('{s}')");
        match parse(&stmt).unwrap() {
            Statement::Insert { values, .. } => {
                prop_assert_eq!(values, vec![Value::Text(s)]);
            }
            other => prop_assert!(false, "{other:?}"),
        }
    }

    /// The UDP KV server: SET-then-GET returns the stored value for
    /// arbitrary keys/values (space-free tokens per the protocol).
    #[test]
    fn udpkv_set_get_consistency(pairs in proptest::collection::vec(
        ("[a-z0-9]{1,12}", "[a-zA-Z0-9]{1,24}"), 1..30)
    ) {
        let tsc = Tsc::new(3_600_000_000);
        let mut server = UdpKvServer::new(UdpKvMode::UnikraftUknetdev, &tsc);
        for (k, v) in &pairs {
            let reply = server.handle(format!("S {k} {v}").as_bytes());
            prop_assert_eq!(reply, b"O".to_vec());
        }
        // Later writes win; reads agree with a model map.
        let mut model = std::collections::HashMap::new();
        for (k, v) in &pairs {
            model.insert(k.clone(), v.clone());
        }
        for (k, v) in &model {
            let reply = server.handle(format!("G {k}").as_bytes());
            prop_assert_eq!(reply, format!("V {v}").into_bytes());
        }
    }
}
