//! Criterion benches for the ukalloc backends (Figures 14–18 hot paths).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ukalloc::AllocBackend;

fn bench_malloc_free(c: &mut Criterion) {
    let mut g = c.benchmark_group("malloc_free_256B");
    for backend in AllocBackend::all() {
        g.bench_function(backend.name(), |b| {
            b.iter_batched_ref(
                || {
                    let mut a = backend.instantiate();
                    a.init(1 << 26, 32 << 20).unwrap();
                    a
                },
                |a| {
                    let p = a.malloc(256).unwrap();
                    if a.reclaims() {
                        a.free(p);
                    }
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_init(c: &mut Criterion) {
    let mut g = c.benchmark_group("allocator_init_64MB");
    for backend in AllocBackend::all() {
        g.bench_function(backend.name(), |b| {
            b.iter(|| {
                let mut a = backend.instantiate();
                a.init(1 << 26, 64 << 20).unwrap();
                std::hint::black_box(&a);
            });
        });
    }
    g.finish();
}

fn bench_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("churn_64_blocks");
    for backend in [AllocBackend::Buddy, AllocBackend::Tlsf, AllocBackend::Mimalloc, AllocBackend::TinyAlloc] {
        g.bench_function(backend.name(), |b| {
            b.iter_batched_ref(
                || {
                    let mut a = backend.instantiate();
                    a.init(1 << 26, 32 << 20).unwrap();
                    a
                },
                |a| {
                    let mut ptrs = Vec::with_capacity(64);
                    for i in 0..64 {
                        ptrs.push(a.malloc(32 + i * 13).unwrap());
                    }
                    for p in ptrs {
                        a.free(p);
                    }
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, bench_malloc_free, bench_init, bench_churn);
criterion_main!(benches);
