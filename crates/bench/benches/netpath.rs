//! Criterion benches for the zero-copy pooled datapath.
//!
//! Measures full stack round-trips over the in-process wire (client
//! stack → device → wire → server stack and back): the paths that used
//! to allocate per packet at every layer (`encode().to_vec()` in each
//! codec, `harvest_tx_frames`'s `Vec<Vec<u8>>` copy-out, per-datagram
//! rx `Vec`s) and are now allocation-free behind netbuf headroom.
//!
//! The binary installs `ukalloc::stats::CountingAlloc` as its global
//! allocator, so alongside the ns/iter numbers it prints the measured
//! **allocations per frame** for the pooled datapath (expected: 0.000)
//! and for the heap-buffer ablation (`use_pools = false`), plus the
//! achieved round-trips/s — the pps-style figure recorded in
//! CHANGES.md.

use std::time::Instant;

use criterion::{criterion_group, Criterion};
use ukalloc::stats::AllocCounter;
use uknetdev::backend::VhostKind;
use uknetdev::dev::{NetDev, NetDevConf};
use uknetdev::VirtioNet;
use uknetstack::stack::{NetStack, SocketHandle, StackConfig};
use uknetstack::testnet::Network;
use uknetstack::{Endpoint, Ipv4Addr};
use ukplat::time::Tsc;

#[global_allocator]
static COUNTING: ukalloc::stats::CountingAlloc = ukalloc::stats::CountingAlloc;

fn mk_stack(n: u8, pools: bool) -> NetStack {
    let tsc = Tsc::new(ukplat::cost::CPU_FREQ_HZ);
    let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
    dev.configure(NetDevConf::default()).unwrap();
    let mut cfg = StackConfig::node(n);
    cfg.use_pools = pools;
    NetStack::new(cfg, Box::new(dev))
}

/// A warmed-up two-node net with an established TCP echo connection.
struct TcpHarness {
    net: Network,
    ci: usize,
    si: usize,
    client: SocketHandle,
    server: SocketHandle,
    buf: Vec<u8>,
}

impl TcpHarness {
    fn new(pools: bool) -> Self {
        let mut net = Network::new();
        let ci = net.attach(mk_stack(1, pools));
        let si = net.attach(mk_stack(2, pools));
        let listener = net.stack(si).tcp_listen(7).unwrap();
        let client = net
            .stack(ci)
            .tcp_connect(Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 7))
            .unwrap();
        net.run_until_quiet(32);
        let server = net.stack(si).tcp_accept(listener).unwrap();
        let mut h = TcpHarness {
            net,
            ci,
            si,
            client,
            server,
            buf: vec![0; 4096],
        };
        for _ in 0..8 {
            h.round_trip(&[0x42; 512]);
        }
        h
    }

    fn round_trip(&mut self, payload: &[u8]) {
        self.net.stack(self.ci).tcp_send(self.client, payload).unwrap();
        self.net.run_until_quiet(32);
        let n = self
            .net
            .stack(self.si)
            .tcp_recv_into(self.server, &mut self.buf)
            .unwrap();
        let buf = std::mem::take(&mut self.buf);
        self.net.stack(self.si).tcp_send(self.server, &buf[..n]).unwrap();
        self.buf = buf;
        self.net.run_until_quiet(32);
        self.net
            .stack(self.ci)
            .tcp_recv_into(self.client, &mut self.buf)
            .unwrap();
    }

    fn tx_frames(&mut self) -> u64 {
        self.net.stack(self.ci).stats().tx_frames + self.net.stack(self.si).stats().tx_frames
    }
}

fn bench_tcp_echo(c: &mut Criterion) {
    let mut g = c.benchmark_group("netpath/tcp_echo_512B");
    for (label, pools) in [("pooled", true), ("heap_bufs", false)] {
        g.bench_function(label, |b| {
            let mut h = TcpHarness::new(pools);
            b.iter(|| h.round_trip(&[0x42; 512]));
        });
    }
    g.finish();
}

fn bench_udp_rtt(c: &mut Criterion) {
    let mut g = c.benchmark_group("netpath/udp_rtt_256B");
    for (label, pools) in [("pooled", true), ("heap_bufs", false)] {
        g.bench_function(label, |b| {
            let mut net = Network::new();
            let ci = net.attach(mk_stack(1, pools));
            let si = net.attach(mk_stack(2, pools));
            let ss = net.stack(si).udp_bind(9).unwrap();
            let cs = net.stack(ci).udp_bind(5000).unwrap();
            let ep = Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 9);
            let mut buf = [0u8; 2048];
            let payload = [0x5a; 256];
            // Warm up (resolves ARP, sizes every scratch vector).
            for _ in 0..8 {
                net.stack(ci).udp_send_to(cs, &payload, ep).unwrap();
                net.run_until_quiet(16);
                let (from, n) = net.stack(si).udp_recv_into(ss, &mut buf).unwrap();
                net.stack(si).udp_send_to(ss, &buf[..n], from).unwrap();
                net.run_until_quiet(16);
                net.stack(ci).udp_recv_into(cs, &mut buf).unwrap();
            }
            b.iter(|| {
                net.stack(ci).udp_send_to(cs, &payload, ep).unwrap();
                net.run_until_quiet(16);
                let (from, n) = net.stack(si).udp_recv_into(ss, &mut buf).unwrap();
                net.stack(si).udp_send_to(ss, &buf[..n], from).unwrap();
                net.run_until_quiet(16);
                net.stack(ci).udp_recv_into(cs, &mut buf).unwrap();
            });
        });
    }
    g.finish();
}

/// The allocs-per-frame / round-trips-per-second figure (printed after
/// the criterion groups; this is the number the zero-alloc guard test
/// pins at exactly zero for the pooled path).
fn alloc_report() {
    const ROUNDS: u64 = 2_000;
    for (label, pools) in [("pooled", true), ("heap_bufs", false)] {
        let mut h = TcpHarness::new(pools);
        let frames_before = h.tx_frames();
        let counter = AllocCounter::start();
        let start = Instant::now();
        for _ in 0..ROUNDS {
            h.round_trip(&[0x42; 512]);
        }
        let elapsed = start.elapsed();
        let allocs = counter.allocs();
        let frames = h.tx_frames() - frames_before;
        let rtps = ROUNDS as f64 / elapsed.as_secs_f64();
        println!(
            "netpath/alloc_report/{label:<9} {:>8.3} allocs/frame ({allocs} allocs / {frames} frames), {rtps:>10.0} tcp-echo round-trips/s",
            allocs as f64 / frames as f64,
        );
        // The pooled path's zero-allocation property is a hard
        // guarantee, so the smoke bench enforces it too.
        if pools {
            assert_eq!(allocs, 0, "pooled datapath must not touch the heap");
        }
    }
}

criterion_group!(benches, bench_tcp_echo, bench_udp_rtt);

fn main() {
    benches();
    alloc_report();
}
