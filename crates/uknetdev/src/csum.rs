//! The Internet checksum (RFC 1071), shared by the device model and
//! the network stack.
//!
//! Lives in `uknetdev` (not the stack) because checksum offload makes
//! the *device* a checksum producer too: when a TX netbuf carries a
//! [`CsumRequest`](crate::netbuf::CsumRequest), the virtio model
//! completes the transport checksum from the partial pseudo-header sum
//! the stack stamped into the header — exactly the split a real NIC
//! implements. The stack re-exports [`inet_checksum`] for its codecs'
//! no-offload fallback and RX verification.
//!
//! The implementation is the hot-loop rewrite: one pass of
//! native-endian 64-bit loads summed with end-around carry, exploiting
//! RFC 1071's two classic identities. One's-complement 16-bit
//! arithmetic is mod 65535 and `2^16 ≡ 1 (mod 65535)`, so a wide word
//! contributes exactly its 16-bit pieces and a carry out of the
//! accumulator wraps around as `+1`; and the one's-complement sum is
//! byte-order independent — sum in machine order, swap the folded
//! result once (§2(B), "parallel summation"). The single end fold
//! replaces the old per-word loop's folding, and the 8-byte loads
//! replace its 2-byte loads: ~4× fewer adds on the dependency chain
//! than even the autovectorized byte-pair form. Bit-identical to the
//! naive reference (property tested in `uknetstack/tests/proptests.rs`
//! over arbitrary lengths, alignments and seeds; the `chunks_exact(8)`
//! remainder always starts at an even offset, which is what keeps the
//! byte-swap trick exact).

/// Folds a one's-complement accumulator to 16 bits (end-around carry),
/// *without* the final complement — the form a partial pseudo-header
/// sum is stamped into a checksum field for the device to complete.
pub fn fold_partial_sum(mut sum: u64) -> u16 {
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    sum as u16
}

/// The Internet checksum over `data`, seeded with `initial` (a
/// pseudo-header sum, or 0): the complement of the folded
/// one's-complement sum of all 16-bit big-endian words, an odd
/// trailing byte padded with zero.
pub fn inet_checksum(data: &[u8], initial: u32) -> u16 {
    // Bulk: native-endian u64 loads, carries re-injected (≡ +1 each).
    let mut sum: u64 = 0;
    let mut carries: u64 = 0;
    let mut blocks = data.chunks_exact(8);
    for b in &mut blocks {
        // `chunks_exact(8)` guarantees the width, so the indexed array
        // form carries no failure path (and LLVM elides the bounds
        // checks against the exact-chunk length).
        let v = u64::from_ne_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]);
        let (s, c) = sum.overflowing_add(v);
        sum = s;
        carries += u64::from(c);
    }
    let folded = fold_partial_sum((sum & 0xffff_ffff) + (sum >> 32) + carries);
    let machine_order = if cfg!(target_endian = "little") {
        folded.swap_bytes()
    } else {
        folded
    };
    // Tail (< 8 bytes, always at an even offset): plain 16-bit words.
    let mut tail_sum = u64::from(machine_order) + u64::from(initial);
    let tail = blocks.remainder();
    let mut words = tail.chunks_exact(2);
    for w in &mut words {
        tail_sum += u64::from(u16::from_be_bytes([w[0], w[1]]));
    }
    if let [last] = words.remainder() {
        tail_sum += u64::from(*last) << 8;
    }
    !fold_partial_sum(tail_sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The textbook byte-pair reference implementation (64-bit
    /// accumulator so extreme seeds cannot drop an end-around carry).
    fn naive(data: &[u8], initial: u32) -> u16 {
        let mut sum = u64::from(initial);
        let mut chunks = data.chunks_exact(2);
        for c in &mut chunks {
            sum += u64::from(u16::from_be_bytes([c[0], c[1]]));
        }
        if let [last] = chunks.remainder() {
            sum += u64::from(u16::from_be_bytes([*last, 0]));
        }
        !fold_partial_sum(sum)
    }

    #[test]
    fn rfc1071_example() {
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(inet_checksum(&data, 0), 0x220d);
    }

    #[test]
    fn matches_naive_across_lengths_and_seeds() {
        let data: Vec<u8> = (0..257u32).map(|i| (i.wrapping_mul(97) % 251) as u8).collect();
        for len in 0..data.len() {
            for seed in [0u32, 1, 0xffff, 0x1234_5678] {
                assert_eq!(
                    inet_checksum(&data[..len], seed),
                    naive(&data[..len], seed),
                    "len {len} seed {seed:#x}"
                );
            }
        }
    }

    #[test]
    fn matches_naive_across_alignments() {
        let data = vec![0xabu8; 96];
        for off in 0..33 {
            assert_eq!(
                inet_checksum(&data[off..], 7),
                naive(&data[off..], 7),
                "offset {off}"
            );
        }
    }

    #[test]
    fn partial_fold_is_uncomplemented() {
        assert_eq!(fold_partial_sum(0x1_0001), 2);
        assert_eq!(fold_partial_sum(0xffff), 0xffff);
        assert_eq!(fold_partial_sum(0), 0);
    }
}
