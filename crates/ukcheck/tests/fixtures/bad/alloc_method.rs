// Known-bad: allocating method calls on the hot path.
pub fn copy_out(data: &[u8]) -> Vec<u8> {
    data.to_vec()
}

pub fn gather(it: impl Iterator<Item = u8>) -> Vec<u8> {
    it.collect()
}
