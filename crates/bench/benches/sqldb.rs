//! Criterion bench: SQL insert workload per allocator (Fig 16/17).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ukalloc::AllocBackend;
use ukapps::sqldb::SqlDb;

fn bench_inserts(c: &mut Criterion) {
    let mut g = c.benchmark_group("sql_1000_inserts");
    g.sample_size(20);
    for backend in [
        AllocBackend::Mimalloc,
        AllocBackend::Tlsf,
        AllocBackend::Buddy,
        AllocBackend::TinyAlloc,
    ] {
        g.bench_function(backend.name(), |b| {
            b.iter_batched(
                || {
                    let mut a = backend.instantiate();
                    a.init(1 << 26, 64 << 20).unwrap();
                    SqlDb::new(a)
                },
                |mut db| {
                    db.insert_workload(1000).unwrap();
                    std::hint::black_box(db.row_count("kv"));
                },
                BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

fn bench_select(c: &mut Criterion) {
    let mut a = AllocBackend::Tlsf.instantiate();
    a.init(1 << 26, 64 << 20).unwrap();
    let mut db = SqlDb::new(a);
    db.insert_workload(5_000).unwrap();
    c.bench_function("sql_point_select", |b| {
        b.iter(|| {
            let rows = db
                .execute("SELECT body FROM kv WHERE id = 2500")
                .unwrap();
            std::hint::black_box(rows);
        });
    });
}

criterion_group!(benches, bench_inserts, bench_select);
criterion_main!(benches);
