# unikraft-rs — tier-1 verification and common developer targets.
#
# `make verify` is the one-command tier-1 check (build + tests for the
# root crate, as the ROADMAP specifies); `make verify-workspace` sweeps
# every crate in the workspace, which is what CI should run.

CARGO ?= cargo

.PHONY: verify verify-workspace test bench bench-event examples clean

## Tier-1: release build + root-crate tests (ROADMAP's check).
verify:
	$(CARGO) build --release
	$(CARGO) test -q

## The full sweep: every workspace crate's unit, integration and prop
## tests, plus bench/example compilation.
verify-workspace:
	$(CARGO) build --release --workspace --benches --examples
	$(CARGO) test -q --workspace

test:
	$(CARGO) test -q --workspace

## All criterion benches (smoke harness — prints ns/iter).
bench:
	$(CARGO) bench

## Just the ukevent readiness benches.
bench-event:
	$(CARGO) bench -p ukbench --bench event

examples:
	$(CARGO) build --release --examples

clean:
	$(CARGO) clean
