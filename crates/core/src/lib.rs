//! `ukcore`: composing micro-libraries into a unikernel.
//!
//! This crate is the "final link step" at run time: a
//! [`UnikernelBuilder`] takes the Kconfig-style choices (platform,
//! allocator, scheduler, network backend, filesystems, libc) and
//! produces a [`Unikernel`] that boots through `ukboot`'s staged
//! sequence and exposes the selected subsystems to the application.
//!
//! It also hosts [`ukdebug`], the debugging micro-library of §7
//! (log levels, tracepoints, configurable assertions).

pub mod posix;
pub mod ukdebug;
pub mod unikernel;

pub use posix::PosixEnv;
pub use ukdebug::{LogLevel, Logger, TraceBuffer};
pub use unikernel::{Unikernel, UnikernelBuilder, UnikernelConfig};
