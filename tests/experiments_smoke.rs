//! Integration: every experiment harness produces a sane report.
//!
//! The heavyweight throughput experiments are exercised at reduced scale
//! by their own crate tests; here we smoke the cheap/deterministic ones
//! end to end through the public `ukbench` entry point.

use ukbench::run_experiment;

fn report(id: &str) -> String {
    run_experiment(id).unwrap_or_else(|| panic!("experiment {id} missing"))
}

#[test]
fn tab1_contains_paper_numbers() {
    let r = report("tab1");
    assert!(r.contains("222"));
    assert!(r.contains("84"));
    assert!(r.contains("61.67"));
}

#[test]
fn tab2_reproduces_porting_matrix() {
    let r = report("tab2");
    assert!(r.contains("lib-sqlite"));
    // 24 libraries, all compat cells green (checked by unit tests);
    // here: std column has both successes and failures.
    assert!(r.contains("ok"));
    assert!(r.contains('X'));
}

#[test]
fn graph_figures_emit_metrics() {
    assert!(report("fig1").contains("avg out-degree"));
    assert!(report("fig2").contains("app-nginx"));
    assert!(report("fig3").contains("app-helloworld"));
}

#[test]
fn fig5_and_fig7_cover_thirty_apps() {
    let f5 = report("fig5");
    assert!(f5.contains("146"));
    let f7 = report("fig7");
    for app in ["apache", "nginx", "redis", "sqlite3", "postgresql"] {
        assert!(f7.contains(app), "{app} missing");
    }
}

#[test]
fn fig6_shows_declining_effort() {
    let r = report("fig6");
    assert!(r.contains("Q2 2019"));
    assert!(r.contains("287"));
}

#[test]
fn fig8_fig9_report_sizes() {
    let r8 = report("fig8");
    assert!(r8.contains("+DCE+LTO"));
    let r9 = report("fig9");
    assert!(r9.contains("Unikraft"));
    assert!(r9.contains("OSv"));
}

#[test]
fn fig10_boot_breakdown() {
    let r = report("fig10");
    assert!(r.contains("Firecracker"));
    assert!(r.contains("QEMU (MicroVM)"));
}

#[test]
fn fig21_static_vs_dynamic() {
    let r = report("fig21");
    assert!(r.contains("static 1GB"));
    assert!(r.contains("dynamic 3GB"));
}

#[test]
fn fig22_shfs_speedup() {
    let r = report("fig22");
    assert!(r.contains("Unikraft SHFS"));
    assert!(r.contains("speedup"));
}

#[test]
fn tab4_runs_all_modes() {
    let r = report("tab4");
    assert!(r.contains("uknetdev"));
    assert!(r.contains("LWIP"));
    assert!(r.contains("baremetal"));
}

#[test]
fn unknown_id_is_rejected() {
    assert!(run_experiment("fig99").is_none());
}
