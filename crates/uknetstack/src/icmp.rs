//! ICMP echo (ping): codec and reply logic.
//!
//! Rounds out the stack the way lwIP does: echo requests are answered
//! by the stack itself, and applications can issue pings to probe
//! reachability (useful when bringing up driver + wiring).

use ukplat::{Errno, Result};

use crate::inet_checksum;

/// ICMP header length for echo messages.
pub const ICMP_ECHO_LEN: usize = 8;

/// An ICMP echo message (request or reply).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IcmpEcho {
    /// `true` for echo request (type 8), `false` for reply (type 0).
    pub request: bool,
    /// Identifier (like a process id).
    pub ident: u16,
    /// Sequence number.
    pub seq: u16,
    /// Payload carried back verbatim.
    pub payload: Vec<u8>,
}

impl IcmpEcho {
    /// Serializes with a correct ICMP checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(ICMP_ECHO_LEN + self.payload.len());
        b.push(if self.request { 8 } else { 0 });
        b.push(0); // code
        b.extend_from_slice(&[0, 0]); // checksum placeholder
        b.extend_from_slice(&self.ident.to_be_bytes());
        b.extend_from_slice(&self.seq.to_be_bytes());
        b.extend_from_slice(&self.payload);
        let ck = inet_checksum(&b, 0);
        b[2..4].copy_from_slice(&ck.to_be_bytes());
        b
    }

    /// Parses and checksum-verifies an echo message.
    pub fn decode(data: &[u8]) -> Result<IcmpEcho> {
        if data.len() < ICMP_ECHO_LEN {
            return Err(Errno::Inval);
        }
        if inet_checksum(data, 0) != 0 {
            return Err(Errno::Io);
        }
        let request = match data[0] {
            8 => true,
            0 => false,
            _ => return Err(Errno::ProtoNoSupport),
        };
        Ok(IcmpEcho {
            request,
            ident: u16::from_be_bytes([data[4], data[5]]),
            seq: u16::from_be_bytes([data[6], data[7]]),
            payload: data[ICMP_ECHO_LEN..].to_vec(),
        })
    }

    /// Builds the reply to this request (payload echoed back).
    ///
    /// # Panics
    ///
    /// Panics if called on a reply.
    pub fn reply(&self) -> IcmpEcho {
        assert!(self.request, "only requests are answered");
        IcmpEcho {
            request: false,
            ident: self.ident,
            seq: self.seq,
            payload: self.payload.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let e = IcmpEcho {
            request: true,
            ident: 0x1234,
            seq: 7,
            payload: b"ping-data".to_vec(),
        };
        assert_eq!(IcmpEcho::decode(&e.encode()).unwrap(), e);
    }

    #[test]
    fn corruption_detected() {
        let e = IcmpEcho {
            request: true,
            ident: 1,
            seq: 1,
            payload: vec![1, 2, 3, 4],
        };
        let mut b = e.encode();
        b[9] ^= 0xff;
        assert_eq!(IcmpEcho::decode(&b).unwrap_err(), Errno::Io);
    }

    #[test]
    fn reply_mirrors_request() {
        let req = IcmpEcho {
            request: true,
            ident: 9,
            seq: 3,
            payload: b"abc".to_vec(),
        };
        let rep = req.reply();
        assert!(!rep.request);
        assert_eq!(rep.ident, 9);
        assert_eq!(rep.seq, 3);
        assert_eq!(rep.payload, b"abc");
    }

    #[test]
    #[should_panic(expected = "only requests")]
    fn reply_to_reply_panics() {
        let rep = IcmpEcho {
            request: false,
            ident: 0,
            seq: 0,
            payload: Vec::new(),
        };
        let _ = rep.reply();
    }
}
