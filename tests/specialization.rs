//! Integration: the paper's specialization claims hold end to end.

use unikraft_rs::apps::udpkv::{UdpKvMode, UdpKvServer, BATCH};
use unikraft_rs::apps::webcache::{CacheBackend, WebCache};
use unikraft_rs::build::config::BuildConfig;
use unikraft_rs::build::image::{link_image, LinkPass};
use unikraft_rs::build::registry::LibRegistry;
use unikraft_rs::plat::cost;
use unikraft_rs::plat::time::{Stopwatch, Tsc};

/// Figure 22's claim: the SHFS open path beats the vfscore path, which
/// beats the Linux VM.
#[test]
fn shfs_beats_vfs_beats_linux() {
    let files: Vec<(String, Vec<u8>)> = (0..64)
        .map(|i| (format!("f{i}.html"), vec![0u8; 612]))
        .collect();
    let refs: Vec<(&str, &[u8])> = files.iter().map(|(n, d)| (n.as_str(), d.as_slice())).collect();
    let run = |backend: CacheBackend| -> u64 {
        let tsc = Tsc::new(cost::CPU_FREQ_HZ);
        let mut cache = WebCache::new(backend, &refs, &tsc).unwrap();
        // Warm up (dentry cache etc.), then measure.
        for i in 0..64 {
            let _ = cache.open_request(&format!("f{i}.html"));
        }
        let sw = Stopwatch::start(&tsc);
        for round in 0..20 {
            for i in 0..64 {
                let _ = round;
                cache.open_request(&format!("f{i}.html")).unwrap();
            }
        }
        sw.elapsed_ns() / (20 * 64)
    };
    // Take the best of three to de-noise CI machines.
    let best = |b: CacheBackend| (0..3).map(|_| run(b)).min().unwrap();
    let shfs = best(CacheBackend::Shfs);
    let vfs = best(CacheBackend::Vfs);
    let linux = best(CacheBackend::LinuxVm);
    assert!(shfs < vfs, "shfs {shfs} ns !< vfs {vfs} ns");
    assert!(vfs < linux, "vfs {vfs} ns !< linux {linux} ns");
    assert!(
        vfs as f64 / shfs as f64 >= 1.5,
        "specialization should be a clear multiple: {shfs} vs {vfs}"
    );
}

/// Table 4's claim: raw uknetdev matches DPDK and crushes the socket
/// paths, batching beats single-syscall mode.
#[test]
fn udp_kv_mode_ordering() {
    let requests: Vec<Vec<u8>> = (0..BATCH)
        .map(|i| format!("G k{i}").into_bytes())
        .collect();
    let refs: Vec<&[u8]> = requests.iter().map(|r| r.as_slice()).collect();
    let rate_once = |mode: UdpKvMode| -> f64 {
        let tsc = Tsc::new(cost::CPU_FREQ_HZ);
        let mut server = UdpKvServer::new(mode, &tsc);
        for i in 0..BATCH {
            server.handle(format!("S k{i} v").as_bytes());
        }
        let sw = Stopwatch::start(&tsc);
        for _ in 0..200 {
            std::hint::black_box(server.serve_batch(&refs));
        }
        (200 * BATCH) as f64 * 1e9 / sw.elapsed_ns() as f64
    };
    // Best of five to de-noise unoptimized test builds.
    let rate = |mode: UdpKvMode| -> f64 {
        (0..5)
            .map(|_| rate_once(mode))
            .fold(0.0f64, |a, b| a.max(b))
    };
    let uknetdev = rate(UdpKvMode::UnikraftUknetdev);
    let dpdk = rate(UdpKvMode::UnikraftDpdk);
    let lwip = rate(UdpKvMode::UnikraftLwip);
    let guest_single = rate(UdpKvMode::LinuxGuestSingle);
    let guest_batch = rate(UdpKvMode::LinuxGuestBatch);
    let bare_single = rate(UdpKvMode::LinuxSingle);
    let bare_batch = rate(UdpKvMode::LinuxBatch);

    // In unoptimized test builds the real per-request hash-table work
    // (identical across modes) compresses the ratio; release runs show
    // the paper's ~20x. The pure I/O-path gap is asserted exactly in
    // `ukapps::udpkv`'s unit tests.
    assert!(
        uknetdev > 2.0 * guest_single,
        "specialization >> sockets ({uknetdev:.0} vs {guest_single:.0})"
    );
    assert!(
        (uknetdev / dpdk - 1.0).abs() < 0.5,
        "uknetdev ~ DPDK ({uknetdev:.0} vs {dpdk:.0}; identical I/O costs, real-time noise only)"
    );
    assert!(guest_batch > guest_single, "batching wins in the guest");
    assert!(bare_batch > bare_single, "batching wins bare metal");
    assert!(lwip < guest_single, "paper: lwip slowest socket path");
}

/// §6.4's image claim: the specialized appliance is smaller than the
/// socket-path build.
#[test]
fn specialized_build_is_smaller() {
    let reg = LibRegistry::standard();
    let full = link_image(&reg, &BuildConfig::new("app-nginx"), LinkPass::DceLto).unwrap();
    let slim = link_image(
        &reg,
        &BuildConfig::new("app-nginx")
            .without_lib("lwip")
            .without_lib("ukschedcoop")
            .with_lib("uknetdev"),
        LinkPass::DceLto,
    )
    .unwrap();
    assert!(slim.size_bytes < full.size_bytes);
    assert!(!slim.libs.contains(&"lwip"));
    assert!(!slim.libs.contains(&"uksched"));
}

/// Fig 8's claim: every default image stays under 2 MB and DCE+LTO is
/// the smallest configuration.
#[test]
fn images_stay_small() {
    let reg = LibRegistry::standard();
    for app in ["app-helloworld", "app-nginx", "app-redis", "app-sqlite"] {
        let default = link_image(&reg, &BuildConfig::new(app), LinkPass::Default).unwrap();
        let best = link_image(&reg, &BuildConfig::new(app), LinkPass::DceLto).unwrap();
        assert!(default.size_bytes < 2_000_000, "{app}");
        assert!(best.size_bytes < default.size_bytes, "{app}");
    }
}
