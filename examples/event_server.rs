//! An event-driven server pair over the `ukevent` subsystem.
//!
//! ```text
//! cargo run --release --example event_server
//! ```
//!
//! Demonstrates the epoll/eventfd layer §4.1 of the paper listed as
//! work in progress, now landed as `ukevent`:
//!
//! 1. an event-driven `Httpd` multiplexing several concurrent
//!    keep-alive connections over one `EventQueue` (no accept
//!    busy-polling);
//! 2. an event-driven UDP key-value server on the same machine;
//! 3. the whole family driven *by syscall number* through the shim —
//!    `eventfd2`/`epoll_create1`/`epoll_ctl`/`epoll_wait` at
//!    function-call cost.

use unikraft_rs::alloc::AllocBackend;
use unikraft_rs::apps::httpd::Httpd;
use unikraft_rs::apps::udpkv::{UdpKvMode, UdpKvNetServer};
use unikraft_rs::core::posix::EPOLL_CTL_ADD;
use unikraft_rs::core::PosixEnv;
use unikraft_rs::event::EventMask;
use unikraft_rs::netdev::backend::VhostKind;
use unikraft_rs::netdev::dev::{NetDev, NetDevConf};
use unikraft_rs::netdev::VirtioNet;
use unikraft_rs::netstack::stack::{NetStack, StackConfig};
use unikraft_rs::netstack::testnet::Network;
use unikraft_rs::netstack::{Endpoint, Ipv4Addr};
use unikraft_rs::plat::time::Tsc;

const CLIENTS: usize = 4;

fn mk_stack(n: u8) -> NetStack {
    let tsc = Tsc::new(3_600_000_000);
    let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
    dev.configure(NetDevConf::default()).unwrap();
    NetStack::new(StackConfig::node(n), Box::new(dev))
}

fn main() {
    let tsc = Tsc::new(3_600_000_000);

    // --- 1. Event-driven HTTP: one queue, many connections ------------
    let mut net = Network::new();
    let clients: Vec<usize> = (0..CLIENTS)
        .map(|i| net.attach(mk_stack(10 + i as u8)))
        .collect();
    let mut server_stack = mk_stack(2);
    let mut alloc = AllocBackend::Tlsf.instantiate();
    alloc.init(1 << 22, 8 << 20).unwrap();
    let mut httpd = Httpd::new(&mut server_stack, 80, alloc).expect("listen");
    let mut kv = UdpKvNetServer::new(&mut server_stack, 9100, UdpKvMode::UnikraftLwip, &tsc)
        .expect("bind");
    let si = net.attach(server_stack);
    let http_ep = Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 80);
    let kv_ep = Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 9100);

    let conns: Vec<_> = clients
        .iter()
        .map(|&ci| net.stack(ci).tcp_connect(http_ep).unwrap())
        .collect();
    for _ in 0..8 {
        net.run_until_quiet(32);
        httpd.poll(net.stack(si));
    }
    println!(
        "httpd: {} connections multiplexed over one EventQueue ({} interest entries)",
        httpd.conn_count(),
        httpd.event_queue_mut().len(),
    );

    for (&ci, &conn) in clients.iter().zip(&conns) {
        net.stack(ci)
            .tcp_send(conn, b"GET /index.html HTTP/1.1\r\nHost: uk\r\n\r\n")
            .unwrap();
    }
    // The KV clients share the wire with the HTTP traffic.
    let kv_sock = net.stack(clients[0]).udp_bind(5001).unwrap();
    net.stack(clients[0])
        .udp_send_to(kv_sock, b"S greeting hello-unikraft", kv_ep)
        .unwrap();
    net.stack(clients[0])
        .udp_send_to(kv_sock, b"G greeting", kv_ep)
        .unwrap();

    for _ in 0..12 {
        net.run_until_quiet(32);
        httpd.poll(net.stack(si));
        kv.poll(net.stack(si));
    }
    let mut ok = 0;
    for (&ci, &conn) in clients.iter().zip(&conns) {
        let resp = net.stack(ci).tcp_recv(conn, 64 * 1024).unwrap();
        if resp.starts_with(b"HTTP/1.1 200 OK") {
            ok += 1;
        }
    }
    let kv_reply = net
        .stack(clients[0])
        .udp_recv_from(kv_sock)
        .and_then(|_| net.stack(clients[0]).udp_recv_from(kv_sock))
        .map(|(_, d)| String::from_utf8_lossy(&d).into_owned())
        .unwrap_or_default();
    println!(
        "httpd: {ok}/{CLIENTS} responses OK, served={} | udpkv: {} requests, reply {kv_reply:?}",
        httpd.served(),
        kv.server().requests(),
    );

    // --- 2. The same subsystem by syscall number ----------------------
    let mut posix = PosixEnv::new(&tsc);
    let epfd = posix.syscall(291, &[0]) as u64; // epoll_create1
    let efd = posix.syscall(290, &[3, 0]) as u64; // eventfd2(initval=3)
    posix.syscall(233, &[epfd, EPOLL_CTL_ADD, efd, u64::from(EventMask::IN.bits())]);
    let evbuf = posix.user_buf(b"");
    let n = posix.syscall(232, &[epfd, evbuf, 8, 0]); // epoll_wait
    let events = PosixEnv::decode_epoll_events(&posix.read_buf(evbuf).unwrap());
    let out = posix.user_buf(b"");
    posix.syscall(0, &[efd, out, 8]); // read(efd)
    let counter = u64::from_le_bytes(posix.read_buf(out).unwrap()[..8].try_into().unwrap());
    println!(
        "syscall shim: epoll_wait -> {n} event(s) {:?}, eventfd counter read {counter}",
        events
            .iter()
            .map(|(m, t)| format!("fd {t}: {m}"))
            .collect::<Vec<_>>(),
    );
}
