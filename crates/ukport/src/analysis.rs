//! Coverage analysis: Figures 5 and 7.

use std::collections::HashMap;

use uksyscall::UNIKRAFT_SUPPORTED;

use crate::appdb::{AppRequirements, TOP30_APPS};

/// How many of the 30 apps need each syscall (Figure 5's color scale).
pub fn usage_counts() -> HashMap<u32, u32> {
    let mut counts = HashMap::new();
    for a in TOP30_APPS.iter() {
        for nr in &a.syscalls {
            *counts.entry(*nr).or_insert(0) += 1;
        }
    }
    counts
}

/// (supported, total) requirement coverage for one app against the
/// Unikraft-supported set.
pub fn coverage(app: &AppRequirements) -> (usize, usize) {
    let supported = app
        .syscalls
        .iter()
        .filter(|nr| UNIKRAFT_SUPPORTED.contains(nr))
        .count();
    (supported, app.syscalls.len())
}

/// Coverage assuming `extra` syscalls were additionally implemented
/// (Figure 7's "if top 5 / top 10 implemented" projections).
pub fn coverage_with_extra(app: &AppRequirements, extra: &[u32]) -> (usize, usize) {
    let supported = app
        .syscalls
        .iter()
        .filter(|nr| UNIKRAFT_SUPPORTED.contains(nr) || extra.contains(nr))
        .count();
    (supported, app.syscalls.len())
}

/// The `n` unsupported syscalls most frequently required across all 30
/// apps — the paper's "next 5 / next 10 most common syscalls".
pub fn top_missing(n: usize) -> Vec<u32> {
    let counts = usage_counts();
    let mut missing: Vec<(u32, u32)> = counts
        .into_iter()
        .filter(|(nr, _)| !UNIKRAFT_SUPPORTED.contains(nr))
        .collect();
    // Highest demand first; stable tie-break on number.
    missing.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    missing.into_iter().take(n).map(|(nr, _)| nr).collect()
}

/// Figure 5 summary: of all syscalls any app needs, how many Unikraft
/// supports, and how many exist overall.
pub fn heatmap_summary() -> (usize, usize, usize) {
    let needed = usage_counts();
    let needed_supported = needed
        .keys()
        .filter(|nr| UNIKRAFT_SUPPORTED.contains(nr))
        .count();
    (needed_supported, needed.len(), 314)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_app_is_mostly_supported() {
        // Fig 7's first take-away: "all applications are close to having
        // full support (the graph is mostly green)".
        for a in TOP30_APPS.iter() {
            let (s, t) = coverage(a);
            let pct = s as f64 / t as f64;
            assert!(pct >= 0.55, "{}: only {:.0}%", a.name, pct * 100.0);
        }
    }

    #[test]
    fn no_app_is_fully_supported_yet() {
        // Even nginx/sqlite bars are not all green in the paper (some
        // syscalls are stubbed), and fork-family calls are unsupported.
        let all_full = TOP30_APPS.iter().all(|a| {
            let (s, t) = coverage(a);
            s == t
        });
        assert!(!all_full);
    }

    #[test]
    fn top_missing_projections_increase_coverage() {
        let top5 = top_missing(5);
        let top10 = top_missing(10);
        assert_eq!(top5.len(), 5);
        assert_eq!(top10.len(), 10);
        assert_eq!(&top10[..5], &top5[..]);
        let mut improved = 0;
        for a in TOP30_APPS.iter() {
            let (s0, _) = coverage(a);
            let (s5, _) = coverage_with_extra(a, &top5);
            let (s10, t) = coverage_with_extra(a, &top10);
            assert!(s5 >= s0);
            assert!(s10 >= s5);
            assert!(s10 <= t);
            if s5 > s0 {
                improved += 1;
            }
        }
        assert!(improved >= 10, "top-5 must help many apps, got {improved}");
    }

    #[test]
    fn more_than_half_of_all_syscalls_unneeded() {
        // §4.1: "more than half the syscalls are not even needed in
        // order to support popular applications".
        let (_, needed, total) = heatmap_summary();
        assert!(needed * 2 < total + needed, "needed {needed} of {total}");
        assert!(needed < 200);
    }

    #[test]
    fn write_is_needed_by_all_apps() {
        let counts = usage_counts();
        assert_eq!(counts[&1], 30, "Fig 5: square 1 (write) is black");
    }

    #[test]
    fn futex_and_eventfd_among_missing() {
        // eventfd (284/290) is WIP per §4.1; fork (57) unsupported.
        let missing = top_missing(30);
        assert!(missing.contains(&284) || missing.contains(&290));
        assert!(missing.contains(&57));
    }
}
