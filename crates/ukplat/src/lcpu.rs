//! Logical CPU abstraction.
//!
//! Unikraft's `plat` layer provides only the raw mechanisms a scheduler
//! needs — context save/restore and a timer — while scheduling *policy*
//! lives in `uksched` micro-libraries. This module models the mechanism
//! side: a logical CPU with a current context, a context-switch primitive
//! that charges its real-world cost, and a one-shot timer used by the
//! preemptive scheduler.

use std::cell::RefCell;
use std::rc::Rc;

use crate::cost;
use crate::time::Tsc;

/// Identifier of a thread context known to the platform.
pub type CtxId = u64;

/// A one-shot timer deadline in virtual nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerDeadline(pub u64);

#[derive(Debug)]
struct LcpuInner {
    current: CtxId,
    switches: u64,
    timer: Option<TimerDeadline>,
}

/// A logical CPU.
///
/// Each scheduler instance in `uksched` owns one `Lcpu` — the paper notes
/// that Unikraft can instantiate one scheduler per virtual CPU.
#[derive(Debug, Clone)]
pub struct Lcpu {
    id: u32,
    tsc: Tsc,
    inner: Rc<RefCell<LcpuInner>>,
}

impl Lcpu {
    /// Creates logical CPU `id` running bootstrap context 0.
    pub fn new(id: u32, tsc: &Tsc) -> Self {
        Lcpu {
            id,
            tsc: tsc.clone(),
            inner: Rc::new(RefCell::new(LcpuInner {
                current: 0,
                switches: 0,
                timer: None,
            })),
        }
    }

    /// This CPU's index.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The context currently executing.
    pub fn current(&self) -> CtxId {
        self.inner.borrow().current
    }

    /// Switches to `next`, charging the cooperative or preemptive
    /// context-switch cost to the TSC.
    pub fn switch_to(&self, next: CtxId, preemptive: bool) {
        let mut inner = self.inner.borrow_mut();
        if inner.current == next {
            return;
        }
        inner.current = next;
        inner.switches += 1;
        let c = if preemptive {
            cost::CTX_SWITCH_PREEMPT_CYCLES
        } else {
            cost::CTX_SWITCH_COOP_CYCLES
        };
        self.tsc.advance(c);
    }

    /// Number of context switches performed so far.
    pub fn switch_count(&self) -> u64 {
        self.inner.borrow().switches
    }

    /// Arms the one-shot preemption timer for `deadline`.
    pub fn arm_timer(&self, deadline: TimerDeadline) {
        self.inner.borrow_mut().timer = Some(deadline);
    }

    /// Disarms the timer.
    pub fn disarm_timer(&self) {
        self.inner.borrow_mut().timer = None;
    }

    /// Checks whether the armed timer has expired at the current virtual
    /// time; if so, disarms it and returns `true`.
    pub fn timer_fired(&self) -> bool {
        let now_ns = self.tsc.cycles_to_ns(self.tsc.now_cycles());
        let mut inner = self.inner.borrow_mut();
        match inner.timer {
            Some(TimerDeadline(d)) if now_ns >= d => {
                inner.timer = None;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tsc() -> Tsc {
        Tsc::new(1_000_000_000)
    }

    #[test]
    fn switch_changes_current_and_charges() {
        let t = tsc();
        let cpu = Lcpu::new(0, &t);
        assert_eq!(cpu.current(), 0);
        cpu.switch_to(7, false);
        assert_eq!(cpu.current(), 7);
        assert_eq!(cpu.switch_count(), 1);
        assert_eq!(t.now_cycles(), cost::CTX_SWITCH_COOP_CYCLES);
    }

    #[test]
    fn switch_to_self_is_free() {
        let t = tsc();
        let cpu = Lcpu::new(0, &t);
        cpu.switch_to(0, false);
        assert_eq!(cpu.switch_count(), 0);
        assert_eq!(t.now_cycles(), 0);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn preemptive_switch_costs_more() {
        let t = tsc();
        let cpu = Lcpu::new(0, &t);
        cpu.switch_to(1, true);
        assert_eq!(t.now_cycles(), cost::CTX_SWITCH_PREEMPT_CYCLES);
        assert!(cost::CTX_SWITCH_PREEMPT_CYCLES > cost::CTX_SWITCH_COOP_CYCLES);
    }

    #[test]
    fn timer_fires_once() {
        let t = tsc();
        let cpu = Lcpu::new(0, &t);
        cpu.arm_timer(TimerDeadline(100));
        assert!(!cpu.timer_fired());
        t.advance_ns(150);
        assert!(cpu.timer_fired());
        // One-shot: does not fire again.
        assert!(!cpu.timer_fired());
    }

    #[test]
    fn disarm_cancels() {
        let t = tsc();
        let cpu = Lcpu::new(0, &t);
        cpu.arm_timer(TimerDeadline(10));
        cpu.disarm_timer();
        t.advance_ns(100);
        assert!(!cpu.timer_fired());
    }
}
