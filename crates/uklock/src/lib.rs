//! Synchronization micro-library (`uklock`).
//!
//! §3.3 of the paper: `uklock` provides mutexes and semaphores whose
//! implementation is selected by the unikernel configuration along two
//! dimensions — threading and multi-core. In the simplest case (no
//! threading, single core) the primitives compile out entirely; our
//! [`LockConfig`] reproduces that selection and the primitives record
//! whether they actually perform work.

pub mod mutex;
pub mod rwlock;
pub mod semaphore;

pub use mutex::Mutex;
pub use rwlock::RwLock;
pub use semaphore::Semaphore;

/// Build-time lock configuration (threading x multi-core).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockConfig {
    /// Whether the image contains a scheduler / more than one thread.
    pub threading: bool,
    /// Whether more than one vCPU is configured (paper: not yet supported
    /// upstream; we model it for completeness).
    pub multicore: bool,
}

impl LockConfig {
    /// Single-threaded, single-core: everything compiles out.
    pub const BARE: LockConfig = LockConfig { threading: false, multicore: false };
    /// Threaded, single core: counting state, no atomics needed.
    pub const THREADED: LockConfig = LockConfig { threading: true, multicore: false };
    /// Threaded, multi-core: full spinlock-backed primitives.
    pub const SMP: LockConfig = LockConfig { threading: true, multicore: true };

    /// Whether mutual exclusion state is needed at all.
    pub fn needs_state(&self) -> bool {
        self.threading
    }

    /// Whether atomic spin loops are needed.
    pub fn needs_spin(&self) -> bool {
        self.multicore
    }
}

impl Default for LockConfig {
    fn default() -> Self {
        LockConfig::THREADED
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_config_compiles_out() {
        assert!(!LockConfig::BARE.needs_state());
        assert!(!LockConfig::BARE.needs_spin());
    }

    #[test]
    fn smp_needs_everything() {
        assert!(LockConfig::SMP.needs_state());
        assert!(LockConfig::SMP.needs_spin());
    }

    #[test]
    fn threaded_single_core_skips_spin() {
        assert!(LockConfig::THREADED.needs_state());
        assert!(!LockConfig::THREADED.needs_spin());
    }
}
