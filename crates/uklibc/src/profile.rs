//! Symbol profiles for nolibc, musl and newlib (+ glibc compat layer).
//!
//! Symbols are grouped into families; a profile provides a set of
//! families plus individual symbols. The families below are the ones
//! whose presence/absence decides Table 2's outcomes.

use std::collections::HashSet;

/// Which libc a build selects (Kconfig choice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LibcKind {
    /// Unikraft's minimal built-in libc: "only provides a basic minimal
    /// set of functionality such as memcpy and string processing" (§3).
    NoLibc,
    /// The musl port.
    Musl,
    /// The newlib port.
    Newlib,
}

impl LibcKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            LibcKind::NoLibc => "nolibc",
            LibcKind::Musl => "musl",
            LibcKind::Newlib => "newlib",
        }
    }
}

/// ANSI C basics every libc provides.
pub static ANSI_C: &[&str] = &[
    "memcpy", "memset", "memmove", "memcmp", "strlen", "strcmp", "strncmp", "strcpy", "strncpy",
    "strchr", "strstr", "strtol", "atoi", "qsort", "bsearch", "snprintf", "sprintf", "sscanf",
    "malloc", "calloc", "realloc", "free", "abort", "exit", "rand", "srand",
];

/// POSIX file and process interfaces.
pub static POSIX_IO: &[&str] = &[
    "open", "close", "read", "write", "lseek", "stat", "fstat", "unlink", "mkdir", "rename",
    "fcntl", "ioctl", "dup", "dup2", "pipe", "poll", "select", "access", "getcwd", "chdir",
    "fsync", "ftruncate", "readdir", "opendir", "closedir", "mmap", "munmap", "getenv",
    "setenv", "gettimeofday", "clock_gettime", "nanosleep",
];

/// POSIX sockets.
pub static POSIX_NET: &[&str] = &[
    "socket", "bind", "listen", "accept", "connect", "send", "recv", "sendto", "recvfrom",
    "sendmsg", "recvmsg", "setsockopt", "getsockopt", "getaddrinfo", "freeaddrinfo",
    "inet_ntop", "inet_pton", "htons", "ntohs", "shutdown",
];

/// POSIX threads.
pub static PTHREAD: &[&str] = &[
    "pthread_create", "pthread_join", "pthread_detach", "pthread_self",
    "pthread_mutex_init", "pthread_mutex_lock", "pthread_mutex_unlock",
    "pthread_cond_init", "pthread_cond_wait", "pthread_cond_signal",
    "pthread_key_create", "pthread_setspecific", "pthread_getspecific",
];

/// glibc-specific symbols: fortify `_chk` interfaces plus the 64-bit file
/// operations the paper's authors implemented by hand (§4).
pub static GLIBC_EXT: &[&str] = &[
    "__printf_chk", "__fprintf_chk", "__snprintf_chk", "__sprintf_chk", "__memcpy_chk",
    "__memset_chk", "__strcpy_chk", "__strncpy_chk", "__strcat_chk", "__vfprintf_chk",
    "__read_chk", "__poll_chk", "__realpath_chk", "__explicit_bzero_chk",
    "pread64", "pwrite64", "lseek64", "fopen64", "fseeko64", "ftello64", "mmap64",
    "open64", "stat64", "fstat64", "readdir64", "getrlimit64", "posix_fadvise64",
    "qsort_r", "secure_getenv", "reallocarray", "gnu_get_libc_version", "backtrace",
];

/// A libc's provided-symbol set.
#[derive(Debug, Clone)]
pub struct LibcProfile {
    kind: LibcKind,
    symbols: HashSet<&'static str>,
    compat_layer: bool,
}

impl LibcProfile {
    /// Builds the symbol profile for `kind`.
    pub fn new(kind: LibcKind) -> Self {
        let mut symbols: HashSet<&'static str> = HashSet::new();
        match kind {
            LibcKind::NoLibc => {
                // memcpy-and-strings only (§3's helloworld image).
                symbols.extend(
                    ANSI_C
                        .iter()
                        .filter(|s| s.starts_with("mem") || s.starts_with("str")),
                );
                symbols.extend(["snprintf", "abort", "exit"]);
            }
            LibcKind::Musl => {
                symbols.extend(ANSI_C);
                symbols.extend(POSIX_IO);
                symbols.extend(POSIX_NET);
                symbols.extend(PTHREAD);
            }
            LibcKind::Newlib => {
                // Embedded-targeted: ANSI plus file I/O, but no sockets
                // and no threads of its own ("many glibc functions are
                // not implemented at all", §4).
                symbols.extend(ANSI_C);
                symbols.extend(POSIX_IO.iter().filter(|s| {
                    !matches!(**s, "poll" | "select" | "mmap" | "munmap")
                }));
            }
        }
        LibcProfile {
            kind,
            symbols,
            compat_layer: false,
        }
    }

    /// Enables the glibc compatibility layer (Table 2's second column):
    /// the `_chk` fortify interfaces and hand-written 64-bit file ops.
    /// For newlib it additionally pulls in the missing POSIX pieces
    /// (sockets via lwip glue, pthreads via `uksched` glue).
    pub fn with_compat_layer(mut self) -> Self {
        self.symbols.extend(GLIBC_EXT);
        if self.kind == LibcKind::Newlib {
            self.symbols.extend(POSIX_NET);
            self.symbols.extend(PTHREAD);
            self.symbols.extend(["poll", "select", "mmap", "munmap"]);
        }
        self.compat_layer = true;
        self
    }

    /// Which libc this is.
    pub fn kind(&self) -> LibcKind {
        self.kind
    }

    /// Whether the compat layer is active.
    pub fn has_compat_layer(&self) -> bool {
        self.compat_layer
    }

    /// Whether `symbol` resolves against this profile.
    pub fn provides(&self, symbol: &str) -> bool {
        self.symbols.contains(symbol)
    }

    /// Number of provided symbols.
    pub fn symbol_count(&self) -> usize {
        self.symbols.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nolibc_is_minimal() {
        let p = LibcProfile::new(LibcKind::NoLibc);
        assert!(p.provides("memcpy"));
        assert!(p.provides("strlen"));
        assert!(!p.provides("open"));
        assert!(!p.provides("socket"));
    }

    #[test]
    fn musl_covers_posix_but_not_glibc_ext() {
        let p = LibcProfile::new(LibcKind::Musl);
        assert!(p.provides("socket"));
        assert!(p.provides("pthread_create"));
        assert!(!p.provides("__printf_chk"));
        assert!(!p.provides("pread64"));
    }

    #[test]
    fn compat_layer_adds_glibc_symbols() {
        let p = LibcProfile::new(LibcKind::Musl).with_compat_layer();
        assert!(p.provides("__printf_chk"));
        assert!(p.provides("pread64"));
        assert!(p.has_compat_layer());
    }

    #[test]
    fn newlib_lacks_sockets_until_compat() {
        let p = LibcProfile::new(LibcKind::Newlib);
        assert!(!p.provides("socket"));
        assert!(!p.provides("pthread_create"));
        let p = p.with_compat_layer();
        assert!(p.provides("socket"));
        assert!(p.provides("pthread_create"));
    }

    #[test]
    fn profiles_grow_monotonically() {
        for kind in [LibcKind::NoLibc, LibcKind::Musl, LibcKind::Newlib] {
            let base = LibcProfile::new(kind).symbol_count();
            let compat = LibcProfile::new(kind).with_compat_layer().symbol_count();
            assert!(compat > base);
        }
    }
}
