// Known-good: unsafe with a SAFETY contract above it.
pub fn peek(p: *const u8) -> u8 {
    // SAFETY: callers pass a pointer into a live, pool-owned buffer;
    // the pool keeps the storage alive for the read's duration.
    unsafe { *p }
}
