//! Ablations of the design choices DESIGN.md calls out.
//!
//! Beyond the paper's own figures, these isolate the contribution of
//! individual mechanisms:
//!
//! - `ablate-batch`: TX burst-size sweep — how much of Table 4's win is
//!   batching alone (kick amortization under vhost-net);
//! - `ablate-pools`: pre-allocated netbuf pools vs heap allocation on
//!   the HTTP path (§5.3 "switching on memory pools in Unikraft's
//!   networking stack");
//! - `ablate-sched`: cooperative vs preemptive scheduler overhead for a
//!   run-to-completion-style workload (§3.3's jitter argument).

use ukalloc::AllocBackend;
use uknetdev::backend::VhostKind;
use uknetdev::dev::{NetDev, NetDevConf};
use uknetdev::netbuf::NetbufPool;
use uknetdev::VirtioNet;
use ukplat::time::{Stopwatch, Tsc};
use uksched::{CoopScheduler, PreemptScheduler, Scheduler, Thread};

use crate::util::fmt_rate;

/// Burst-size sweep: one kick per burst means bigger bursts amortize
/// the VM exit. Reports packets/s per burst size under vhost-net.
pub fn ablate_batching() -> String {
    const PACKETS: usize = 50_000;
    let mut out = String::new();
    out.push_str("Ablation: TX burst size vs throughput (vhost-net, 64B)\n");
    out.push_str(&format!("{:<12} {:>14} {:>12}\n", "burst", "throughput", "kicks"));
    for burst in [1usize, 2, 4, 8, 16, 32, 64] {
        let tsc = Tsc::new(ukplat::cost::CPU_FREQ_HZ);
        let mut dev = VirtioNet::new(VhostKind::VhostNet, &tsc);
        dev.configure(NetDevConf::default()).expect("configure");
        let mut pool = NetbufPool::new(2 * burst, 2048, 64);
        let sw = Stopwatch::start(&tsc);
        let mut sent = 0usize;
        while sent < PACKETS {
            let mut b = Vec::with_capacity(burst);
            for _ in 0..burst {
                let mut nb = pool.take().expect("pool sized");
                nb.set_len(64);
                b.push(nb);
            }
            sent += dev.tx_burst(0, &mut b).expect("tx").sent();
            let mut done = Vec::new();
            dev.reclaim_tx(0, &mut done).expect("reclaim");
            for nb in done {
                pool.give_back(nb);
            }
        }
        let rate = sent as f64 * 1e9 / sw.elapsed_ns() as f64;
        out.push_str(&format!(
            "{:<12} {:>14} {:>12}\n",
            burst,
            fmt_rate(rate),
            dev.backend().kicks()
        ));
    }
    out.push_str("take-away: kicks fall 1/burst; throughput rises until per-packet costs dominate\n");
    out
}

/// Netbuf pools vs heap allocation on the HTTP serving path.
pub fn ablate_pools() -> String {
    use crate::netharness;
    let mut out = String::new();
    out.push_str("Ablation: pre-allocated netbuf pools vs heap buffers (HTTP path)\n");
    // The harness always enables pools; compare against a pool-less
    // stack by re-running with the config flag off.
    let pooled = netharness::run_http_bench(
        AllocBackend::Mimalloc,
        VhostKind::VhostUser,
        8,
        4,
        3_000,
    );
    let heap = netharness::run_http_bench_heap_bufs(
        AllocBackend::Mimalloc,
        VhostKind::VhostUser,
        8,
        4,
        3_000,
    );
    out.push_str(&format!(
        "{:<18} {:>12}\n{:<18} {:>12}\n",
        "with pools",
        fmt_rate(pooled.rate()),
        "heap buffers",
        fmt_rate(heap.rate())
    ));
    out.push_str("take-away: pools avoid per-frame allocation on the hot path\n");
    out
}

/// Scheduler overhead: the same step workload under coop vs preempt.
pub fn ablate_scheduler() -> String {
    const THREADS: usize = 8;
    const STEPS: u64 = 5_000;
    let mut out = String::new();
    out.push_str("Ablation: cooperative vs preemptive scheduler (virtual cycles)\n");
    let run = |preempt: bool| -> (u64, u64) {
        let tsc = Tsc::new(ukplat::cost::CPU_FREQ_HZ);
        let mut sched: Box<dyn Scheduler> = if preempt {
            Box::new(PreemptScheduler::new(&tsc))
        } else {
            Box::new(CoopScheduler::new(&tsc))
        };
        for i in 0..THREADS {
            sched.spawn(Thread::count_steps(format!("w{i}"), STEPS));
        }
        sched.run_to_idle();
        (tsc.now_cycles(), sched.context_switches())
    };
    let (coop_cycles, coop_switches) = run(false);
    let (pre_cycles, pre_switches) = run(true);
    out.push_str(&format!(
        "{:<14} {:>14} cycles {:>10} switches\n",
        "ukschedcoop", coop_cycles, coop_switches
    ));
    out.push_str(&format!(
        "{:<14} {:>14} cycles {:>10} switches\n",
        "ukschedpreempt", pre_cycles, pre_switches
    ));
    out.push_str(&format!(
        "take-away: preemption costs {:.1}x the scheduling cycles — the jitter\n\
         run-to-completion images avoid entirely (0 cycles)\n",
        pre_cycles as f64 / coop_cycles.max(1) as f64
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batching_ablation_monotone_kicks() {
        let t = ablate_batching();
        assert!(t.contains("burst"));
        assert!(t.contains("take-away"));
    }

    #[test]
    fn scheduler_ablation_shows_preempt_cost() {
        let t = ablate_scheduler();
        assert!(t.contains("ukschedcoop"));
        assert!(t.contains("ukschedpreempt"));
    }
}
