//! `ukevent`: readiness notification (epoll/eventfd) micro-library.
//!
//! The paper's §4.1 lists epoll and eventfd as *work in progress* in
//! Unikraft's POSIX layer; this crate closes that gap for unikraft-rs.
//! It provides the readiness-notification substrate that sits between
//! the network stack (producer side) and server applications (consumer
//! side), so that `httpd`-style servers multiplex a listener plus N
//! connections over one wait loop instead of busy-polling every socket.
//!
//! # Linux counterparts
//!
//! | unikraft-rs type | Linux counterpart | notes |
//! |---|---|---|
//! | [`EventQueue`] | `epoll` instance (`epoll_create1`) | interest list + ready scan |
//! | [`EventQueue::ctl_add`] / [`ctl_mod`](EventQueue::ctl_mod) / [`ctl_del`](EventQueue::ctl_del) | `epoll_ctl(EPOLL_CTL_ADD/MOD/DEL)` | same EEXIST/ENOENT errors |
//! | [`EventQueue::wait`] | `epoll_wait` | parks on a [`uksched::WaitQueue`] instead of spinning |
//! | [`EventMask`] | `epoll_events` bits (`EPOLLIN`, `EPOLLOUT`, …) | includes `EPOLLET` / `EPOLLONESHOT` |
//! | [`EventFd`] | `eventfd2` | counter semantics incl. `EFD_SEMAPHORE` |
//! | [`ReadySource`] | the wait-queue head inside a `struct file` | producers publish edges here |
//! | [`Pollable`] | `file_operations.poll` | fd-bearing subsystems implement it |
//!
//! # Architecture
//!
//! A [`ReadySource`] is a small shared cell holding the current
//! level-triggered readiness of one file-like object. The producing
//! subsystem (a TCP connection in `uknetstack`, an [`EventFd`] counter)
//! updates it with [`ReadySource::set_level`]; the cell detects rising
//! edges, bumps an edge sequence number (consumed by `EPOLLET`
//! subscribers) and wakes every [`EventQueue`] watching it. A parked
//! `epoll_wait` caller is woken through the queue's
//! [`uksched::WaitQueue`] — wakeups are collected with
//! [`EventQueue::take_wakeups`] and handed to the scheduler, which is
//! exactly the "interrupt callback unblocks a receiving thread" shape
//! of §3.1 applied to readiness notification.
//!
//! # Example
//!
//! ```
//! use ukevent::{EventFd, EventQueue, EventMask};
//!
//! let mut q = EventQueue::new();
//! let mut efd = EventFd::new(0, 0).unwrap();
//! q.ctl_add(7, &efd, EventMask::IN).unwrap();
//!
//! assert!(q.poll_ready(8).is_empty()); // counter is zero
//! efd.write(3).unwrap();
//! let events = q.poll_ready(8);
//! assert_eq!(events.len(), 1);
//! assert_eq!(events[0].token, 7);
//! assert!(events[0].events.contains(EventMask::IN));
//! assert_eq!(efd.read().unwrap(), 3);
//! ```

pub mod eventfd;
pub mod mask;
pub mod queue;
pub mod source;

pub use eventfd::{EventFd, EFD_NONBLOCK, EFD_SEMAPHORE};
pub use mask::EventMask;
pub use queue::{Event, EventQueue, WaitOutcome};
pub use source::{Pollable, ReadySource};
