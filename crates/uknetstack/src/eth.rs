//! Ethernet II framing.

use uknetdev::netbuf::Netbuf;
use ukplat::{Errno, Result};

use crate::Mac;

/// Ethernet header length.
pub const ETH_HDR_LEN: usize = 14;

/// EtherType values we speak.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// ARP (0x0806).
    Arp,
}

impl EtherType {
    fn to_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
        }
    }

    fn from_u16(v: u16) -> Option<Self> {
        match v {
            0x0800 => Some(EtherType::Ipv4),
            0x0806 => Some(EtherType::Arp),
            _ => None,
        }
    }
}

/// A parsed Ethernet header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthHeader {
    /// Destination MAC.
    pub dst: Mac,
    /// Source MAC.
    pub src: Mac,
    /// Payload protocol.
    pub ethertype: EtherType,
}

impl EthHeader {
    /// Serializes into 14 bytes.
    pub fn encode(&self) -> [u8; ETH_HDR_LEN] {
        let mut b = [0u8; ETH_HDR_LEN];
        b[0..6].copy_from_slice(&self.dst.0);
        b[6..12].copy_from_slice(&self.src.0);
        b[12..14].copy_from_slice(&self.ethertype.to_u16().to_be_bytes());
        b
    }

    /// Prepends the 14-byte header into `nb`'s headroom in place: the
    /// packet already in the buffer becomes the frame payload without
    /// being copied (zero-copy pooled datapath).
    ///
    /// # Panics
    ///
    /// Panics if `nb` has less than [`ETH_HDR_LEN`] bytes of headroom.
    pub fn encode_into(&self, nb: &mut Netbuf) {
        let b = nb.push_header_uninit(ETH_HDR_LEN);
        b[0..6].copy_from_slice(&self.dst.0);
        b[6..12].copy_from_slice(&self.src.0);
        b[12..14].copy_from_slice(&self.ethertype.to_u16().to_be_bytes());
    }

    /// Parses a frame, returning the header and the payload slice.
    pub fn decode(frame: &[u8]) -> Result<(EthHeader, &[u8])> {
        if frame.len() < ETH_HDR_LEN {
            return Err(Errno::Inval);
        }
        let ethertype = EtherType::from_u16(u16::from_be_bytes([frame[12], frame[13]]))
            .ok_or(Errno::ProtoNoSupport)?;
        let mut dst = [0u8; 6];
        dst.copy_from_slice(&frame[0..6]);
        let mut src = [0u8; 6];
        src.copy_from_slice(&frame[6..12]);
        Ok((
            EthHeader {
                dst: Mac(dst),
                src: Mac(src),
                ethertype,
            },
            &frame[ETH_HDR_LEN..],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Frame building for tests goes through the headroom path — the
    /// same code the stack uses (no parallel `encode().to_vec()` frame
    /// assembly to keep in sync).
    fn frame(h: &EthHeader, payload: &[u8]) -> Netbuf {
        let mut nb = Netbuf::alloc(256, ETH_HDR_LEN);
        nb.append(payload);
        h.encode_into(&mut nb);
        nb
    }

    #[test]
    fn roundtrip() {
        let h = EthHeader {
            dst: Mac::node(2),
            src: Mac::node(1),
            ethertype: EtherType::Ipv4,
        };
        let nb = frame(&h, b"payload");
        let (h2, payload) = EthHeader::decode(nb.payload()).unwrap();
        assert_eq!(h, h2);
        assert_eq!(payload, b"payload");
    }

    #[test]
    fn short_frame_rejected() {
        assert_eq!(EthHeader::decode(&[0; 5]).unwrap_err(), Errno::Inval);
    }

    #[test]
    fn unknown_ethertype_rejected() {
        let h = EthHeader {
            dst: Mac::BROADCAST,
            src: Mac::node(1),
            ethertype: EtherType::Arp,
        };
        let mut nb = frame(&h, &[]);
        nb.payload_mut()[12] = 0x86;
        nb.payload_mut()[13] = 0xdd; // IPv6
        assert_eq!(
            EthHeader::decode(nb.payload()).unwrap_err(),
            Errno::ProtoNoSupport
        );
    }
}
