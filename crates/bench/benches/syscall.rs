//! Criterion benches for syscall dispatch (Table 1).

use criterion::{criterion_group, criterion_main, Criterion};
use ukplat::time::Tsc;
use uksyscall::microbench;
use uksyscall::shim::{SyscallMode, SyscallShim};

fn bench_shim_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("syscall_dispatch");
    for mode in [
        SyscallMode::UnikraftNative,
        SyscallMode::UnikraftBinCompat,
        SyscallMode::LinuxTrap,
        SyscallMode::LinuxTrapNoMitigations,
    ] {
        let tsc = Tsc::new(ukplat::cost::CPU_FREQ_HZ);
        let mut shim = SyscallShim::new(mode, &tsc);
        shim.register(39, Box::new(|_| 0));
        g.bench_function(mode.name(), |b| {
            b.iter(|| std::hint::black_box(shim.invoke(39, &[])));
        });
    }
    g.finish();
}

fn bench_real_calls(c: &mut Criterion) {
    let mut g = c.benchmark_group("real_host");
    g.bench_function("function_call", |b| {
        b.iter(|| std::hint::black_box(microbench::noop_function(42)));
    });
    if microbench::raw_getpid().is_some() {
        g.bench_function("raw_getpid_syscall", |b| {
            b.iter(|| std::hint::black_box(microbench::raw_getpid()));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_shim_modes, bench_real_calls);
criterion_main!(benches);
