// Known-bad: unsafe block with no SAFETY comment.
pub fn peek(p: *const u8) -> u8 {
    unsafe { *p }
}
