//! Execution environments and their cost structure.

use uksyscall::shim::SyscallMode;

use crate::data;

/// The applications the comparison figures use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppId {
    /// Hello world.
    Hello,
    /// nginx-style web server.
    Nginx,
    /// Redis-style key-value server.
    Redis,
    /// SQLite-style embedded database.
    Sqlite,
}

/// Workloads with distinct per-request cost structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Redis GET (pipelined).
    RedisGet,
    /// Redis SET (pipelined).
    RedisSet,
    /// nginx static-page request.
    NginxRequest,
}

/// Every environment the paper's comparison figures include.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecEnv {
    /// Unikraft on QEMU/KVM (our system, measured not modelled).
    UnikraftKvm,
    /// Native Linux process.
    LinuxNative,
    /// Linux guest on QEMU/KVM.
    LinuxKvm,
    /// Linux guest on Firecracker.
    LinuxFirecracker,
    /// Docker container on the native kernel.
    DockerNative,
    /// Lupine (KML-specialized Linux) on QEMU/KVM.
    LupineKvm,
    /// Lupine on Firecracker.
    LupineFirecracker,
    /// OSv on QEMU/KVM.
    OsvKvm,
    /// Rumprun on QEMU/KVM.
    RumpKvm,
    /// HermiTux on uHyve.
    HermituxUhyve,
    /// MirageOS on Solo5.
    MirageSolo5,
}

impl ExecEnv {
    /// All environments.
    pub fn all() -> [ExecEnv; 11] {
        [
            ExecEnv::UnikraftKvm,
            ExecEnv::LinuxNative,
            ExecEnv::LinuxKvm,
            ExecEnv::LinuxFirecracker,
            ExecEnv::DockerNative,
            ExecEnv::LupineKvm,
            ExecEnv::LupineFirecracker,
            ExecEnv::OsvKvm,
            ExecEnv::RumpKvm,
            ExecEnv::HermituxUhyve,
            ExecEnv::MirageSolo5,
        ]
    }

    /// Display name matching the figures.
    pub fn name(self) -> &'static str {
        match self {
            ExecEnv::UnikraftKvm => "Unikraft KVM",
            ExecEnv::LinuxNative => "Linux Native",
            ExecEnv::LinuxKvm => "Linux KVM",
            ExecEnv::LinuxFirecracker => "Linux FC",
            ExecEnv::DockerNative => "Docker Native",
            ExecEnv::LupineKvm => "Lupine KVM",
            ExecEnv::LupineFirecracker => "Lupine FC",
            ExecEnv::OsvKvm => "OSv KVM",
            ExecEnv::RumpKvm => "Rump KVM",
            ExecEnv::HermituxUhyve => "Hermitux uHyve",
            ExecEnv::MirageSolo5 => "Mirage Solo5",
        }
    }

    /// How syscalls are dispatched in this environment — the mechanical
    /// part of the model (Table 1 costs apply per syscall).
    pub fn syscall_mode(self) -> SyscallMode {
        match self {
            // Unikernels: single protection domain, function calls —
            // except HermiTux/OSv-style binary compat, which traps and
            // translates.
            ExecEnv::UnikraftKvm | ExecEnv::MirageSolo5 => SyscallMode::UnikraftNative,
            ExecEnv::OsvKvm | ExecEnv::RumpKvm | ExecEnv::HermituxUhyve => {
                SyscallMode::UnikraftBinCompat
            }
            // Lupine runs the app in kernel mode (KML): syscalls are
            // calls, but the kernel around them is stock Linux.
            ExecEnv::LupineKvm | ExecEnv::LupineFirecracker => SyscallMode::UnikraftNative,
            // Linux everywhere else: full trap with mitigations.
            ExecEnv::LinuxNative
            | ExecEnv::LinuxKvm
            | ExecEnv::LinuxFirecracker
            | ExecEnv::DockerNative => SyscallMode::LinuxTrap,
        }
    }

    /// Whether this environment runs under a hypervisor (guest I/O pays
    /// the virtio/vhost path).
    pub fn is_virtualized(self) -> bool {
        !matches!(self, ExecEnv::LinuxNative | ExecEnv::DockerNative)
    }
}

/// The full model for one environment.
#[derive(Debug, Clone, Copy)]
pub struct EnvModel {
    /// Which environment.
    pub env: ExecEnv,
}

impl EnvModel {
    /// Creates the model for `env`.
    pub fn new(env: ExecEnv) -> Self {
        EnvModel { env }
    }

    /// Residual per-request overhead of this environment relative to
    /// Unikraft, in nanoseconds, for a workload.
    ///
    /// Derived from the paper's published throughput (Figures 12/13):
    /// `1/thr(env) − 1/thr(unikraft)`. This residual captures everything
    /// our mechanical models do not (guest kernel bloat, scheduler
    /// mismatch, allocator differences). The Unikraft row is always 0 —
    /// its cost is genuinely measured from our implementation.
    pub fn request_overhead_ns(&self, w: Workload) -> Option<f64> {
        let (this, uk) = match w {
            Workload::RedisGet => (
                data::redis_throughput(self.env)?.0,
                data::redis_throughput(ExecEnv::UnikraftKvm)?.0,
            ),
            Workload::RedisSet => (
                data::redis_throughput(self.env)?.1,
                data::redis_throughput(ExecEnv::UnikraftKvm)?.1,
            ),
            Workload::NginxRequest => (
                data::nginx_throughput(self.env)?,
                data::nginx_throughput(ExecEnv::UnikraftKvm)?,
            ),
        };
        Some((1e9 / this - 1e9 / uk).max(0.0))
    }

    /// Image size for an app (Figure 9).
    pub fn image_size_mb(&self, app: AppId) -> Option<f64> {
        data::image_size_mb(self.env, app)
    }

    /// Minimum memory for an app (Figure 11).
    pub fn min_memory_mb(&self, app: AppId) -> Option<u32> {
        data::min_memory_mb(self.env, app)
    }

    /// Guest boot time (None for Unikraft: measure it with `ukboot`).
    pub fn guest_boot_ns(&self) -> Option<u64> {
        data::guest_boot_ns(self.env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unikraft_overhead_is_zero() {
        let m = EnvModel::new(ExecEnv::UnikraftKvm);
        for w in [Workload::RedisGet, Workload::RedisSet, Workload::NginxRequest] {
            assert_eq!(m.request_overhead_ns(w), Some(0.0));
        }
    }

    #[test]
    fn slower_envs_have_positive_overhead() {
        for env in ExecEnv::all() {
            if env == ExecEnv::UnikraftKvm {
                continue;
            }
            let m = EnvModel::new(env);
            if let Some(o) = m.request_overhead_ns(Workload::RedisGet) {
                assert!(o > 0.0, "{env:?}");
            }
        }
    }

    #[test]
    fn hermitux_cannot_run_nginx() {
        let m = EnvModel::new(ExecEnv::HermituxUhyve);
        assert!(m.request_overhead_ns(Workload::NginxRequest).is_none());
    }

    #[test]
    fn syscall_modes_partition_sensibly() {
        assert_eq!(
            ExecEnv::UnikraftKvm.syscall_mode(),
            SyscallMode::UnikraftNative
        );
        assert_eq!(ExecEnv::LinuxKvm.syscall_mode(), SyscallMode::LinuxTrap);
        assert_eq!(
            ExecEnv::HermituxUhyve.syscall_mode(),
            SyscallMode::UnikraftBinCompat
        );
    }

    #[test]
    fn virtualization_flag() {
        assert!(!ExecEnv::LinuxNative.is_virtualized());
        assert!(!ExecEnv::DockerNative.is_virtualized());
        assert!(ExecEnv::LinuxKvm.is_virtualized());
        assert!(ExecEnv::UnikraftKvm.is_virtualized());
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<_> =
            ExecEnv::all().iter().map(|e| e.name()).collect();
        assert_eq!(names.len(), ExecEnv::all().len());
    }
}
