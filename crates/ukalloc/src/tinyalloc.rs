//! tinyalloc-style allocator.
//!
//! A port of the design of thi.ng's `tinyalloc`: a small block table,
//! first-fit search over an address-ordered free list, and eager
//! compaction of adjacent free blocks. Cheap for small, short-lived
//! workloads; the ordered-insert + compaction pass makes it progressively
//! more expensive as the number of live blocks grows — exactly the
//! behaviour behind the paper's Figure 16 (tinyalloc fastest below ~1000
//! SQLite queries, suboptimal above).

use std::collections::HashMap;

use ukplat::{Errno, Result};

use crate::stats::AllocStats;
use crate::{align_up, Allocator, GpAddr, MIN_ALIGN};

/// Smallest usable split remainder.
const MIN_SPLIT: usize = 32;

/// The tinyalloc state.
#[derive(Debug, Default)]
pub struct TinyAlloc {
    base: GpAddr,
    end: GpAddr,
    /// Bump pointer for fresh blocks.
    top: GpAddr,
    /// Address-ordered free blocks `(addr, size)`.
    free: Vec<(GpAddr, usize)>,
    /// Live blocks `addr → size`.
    used: HashMap<GpAddr, usize>,
    stats: AllocStats,
    initialized: bool,
}

impl TinyAlloc {
    /// Creates an uninitialized tinyalloc.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a block into the ordered free list and merges neighbours.
    /// The O(n) ordered insert + compaction is tinyalloc's signature cost.
    fn insert_free(&mut self, addr: GpAddr, size: usize) {
        let pos = self.free.partition_point(|&(a, _)| a < addr);
        self.free.insert(pos, (addr, size));
        // Merge with successor.
        if pos + 1 < self.free.len() {
            let (na, ns) = self.free[pos + 1];
            if addr + self.free[pos].1 as u64 == na {
                self.free[pos].1 += ns;
                self.free.remove(pos + 1);
            }
        }
        // Merge with predecessor.
        if pos > 0 {
            let (pa, ps) = self.free[pos - 1];
            if pa + ps as u64 == self.free[pos].0 {
                let sz = self.free[pos].1;
                self.free[pos - 1].1 += sz;
                self.free.remove(pos);
            }
        }
        // Compaction against the bump frontier: if the top-most free block
        // touches `top`, return it to the fresh area.
        if let Some(&(la, ls)) = self.free.last() {
            if la + ls as u64 == self.top {
                self.top = la;
                self.free.pop();
            }
        }
    }

    fn take_first_fit(&mut self, size: usize, align: usize) -> Option<GpAddr> {
        for i in 0..self.free.len() {
            let (addr, bsize) = self.free[i];
            let aligned = align_up(addr, align as u64);
            let pad = (aligned - addr) as usize;
            if pad + size <= bsize {
                self.free.remove(i);
                if pad > 0 {
                    self.insert_free(addr, pad);
                }
                let rem = bsize - pad - size;
                if rem >= MIN_SPLIT {
                    self.insert_free(aligned + size as u64, rem);
                    self.used.insert(aligned, size);
                } else {
                    self.used.insert(aligned, size + rem);
                }
                return Some(aligned);
            }
        }
        None
    }

    fn bump(&mut self, size: usize, align: usize) -> Option<GpAddr> {
        let aligned = align_up(self.top, align as u64);
        let end = aligned.checked_add(size as u64)?;
        if end > self.end {
            return None;
        }
        if aligned > self.top {
            // The alignment gap becomes a free fragment.
            let gap = (aligned - self.top) as usize;
            if gap >= MIN_SPLIT {
                let t = self.top;
                self.top = aligned; // Must move top before insert_free sees it.
                self.insert_free(t, gap);
            }
        }
        self.top = end;
        self.used.insert(aligned, size);
        Some(aligned)
    }
}

impl Allocator for TinyAlloc {
    fn name(&self) -> &'static str {
        "tinyalloc"
    }

    fn init(&mut self, base: GpAddr, len: usize) -> Result<()> {
        if self.initialized {
            return Err(Errno::Busy);
        }
        if len < MIN_SPLIT * 2 {
            return Err(Errno::Inval);
        }
        let base = align_up(base, MIN_ALIGN as u64);
        self.base = base;
        self.end = base + len as u64;
        self.top = base;
        // tinyalloc init is tiny: clear the (pre-sized) block table.
        self.free = Vec::with_capacity(256);
        self.stats.meta_bytes = 256 * std::mem::size_of::<(GpAddr, usize)>();
        self.initialized = true;
        Ok(())
    }

    fn malloc(&mut self, size: usize) -> Option<GpAddr> {
        let size = align_up(size.max(1) as u64, MIN_ALIGN as u64) as usize;
        let r = self
            .take_first_fit(size, MIN_ALIGN)
            .or_else(|| self.bump(size, MIN_ALIGN));
        match r {
            Some(p) => {
                self.stats.on_alloc(size);
                Some(p)
            }
            None => {
                self.stats.on_fail();
                None
            }
        }
    }

    fn memalign(&mut self, align: usize, size: usize) -> Option<GpAddr> {
        let size = align_up(size.max(1) as u64, MIN_ALIGN as u64) as usize;
        let align = align.max(MIN_ALIGN);
        let r = self
            .take_first_fit(size, align)
            .or_else(|| self.bump(size, align));
        match r {
            Some(p) => {
                self.stats.on_alloc(size);
                Some(p)
            }
            None => {
                self.stats.on_fail();
                None
            }
        }
    }

    fn free(&mut self, ptr: GpAddr) {
        let size = self
            .used
            .remove(&ptr)
            .unwrap_or_else(|| panic!("tinyalloc: free of unallocated address {ptr:#x}"));
        self.stats.on_free(size);
        self.insert_free(ptr, size);
    }

    fn available(&self) -> usize {
        (self.end - self.top) as usize + self.free.iter().map(|&(_, s)| s).sum::<usize>()
    }

    fn stats(&self) -> AllocStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(len: usize) -> TinyAlloc {
        let mut t = TinyAlloc::new();
        t.init(1 << 20, len).unwrap();
        t
    }

    #[test]
    fn bump_then_reuse() {
        let mut t = mk(1 << 20);
        let a = t.malloc(100).unwrap();
        let b = t.malloc(100).unwrap();
        assert!(b > a);
        t.free(a);
        // First-fit reuses the freed block.
        let c = t.malloc(50).unwrap();
        assert_eq!(c, a);
        t.free(b);
        t.free(c);
    }

    #[test]
    fn free_compaction_restores_top() {
        let mut t = mk(1 << 20);
        let total = t.available();
        let a = t.malloc(128).unwrap();
        let b = t.malloc(128).unwrap();
        let c = t.malloc(128).unwrap();
        t.free(a);
        t.free(b);
        t.free(c);
        assert_eq!(t.available(), total);
        assert!(t.free.is_empty(), "all blocks compacted into fresh area");
    }

    #[test]
    fn adjacent_frees_merge() {
        let mut t = mk(1 << 20);
        let a = t.malloc(64).unwrap();
        let b = t.malloc(64).unwrap();
        let _c = t.malloc(64).unwrap(); // Keeps top away.
        t.free(a);
        t.free(b);
        assert_eq!(t.free.len(), 1, "a and b must merge");
        assert_eq!(t.free[0], (a, 128));
    }

    #[test]
    fn memalign_respects_alignment() {
        let mut t = mk(1 << 20);
        let _pad = t.malloc(48).unwrap();
        let p = t.memalign(4096, 100).unwrap();
        assert_eq!(p % 4096, 0);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut t = mk(4096);
        let mut n = 0;
        while t.malloc(512).is_some() {
            n += 1;
        }
        assert!(n >= 7);
        assert!(t.stats().failed_count > 0);
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn wild_free_panics() {
        let mut t = mk(1 << 20);
        t.free(12345);
    }
}
