//! The `ukcheck` binary: `make lint`'s engine.
//!
//! ```text
//! ukcheck [--root DIR]            scan the workspace (default: cwd)
//! ukcheck --files F... [--hot]    scan specific files; --hot applies
//!                                 the hot-path passes to all of them
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(".");
    let mut files: Vec<PathBuf> = Vec::new();
    let mut files_mode = false;
    let mut hot = false;
    let mut quiet = false;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(d) => root = PathBuf::from(d),
                None => return usage("--root needs a directory"),
            },
            "--files" => files_mode = true,
            "--hot" => hot = true,
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                eprintln!(
                    "ukcheck: repo-native invariant linter\n\
                     usage: ukcheck [--root DIR] | ukcheck --files F... [--hot]"
                );
                return ExitCode::SUCCESS;
            }
            f if files_mode && !f.starts_with("--") => files.push(PathBuf::from(f)),
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let result = if files_mode {
        if files.is_empty() {
            return usage("--files needs at least one path");
        }
        ukcheck::walk::check_files(&files, hot)
    } else {
        ukcheck::walk::check_workspace(&root)
    };

    match result {
        Err(e) => {
            eprintln!("ukcheck: error: {e}");
            ExitCode::from(2)
        }
        Ok(violations) if violations.is_empty() => {
            if !quiet {
                println!("ukcheck: clean");
            }
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!("ukcheck: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("ukcheck: {msg} (try --help)");
    ExitCode::from(2)
}
