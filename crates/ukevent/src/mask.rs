//! Event bit masks, mirroring Linux `epoll_events` values.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitOrAssign, Not, Sub};

/// A set of readiness/interest bits. Values match the Linux ABI so the
/// mask travels unchanged through the syscall shim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct EventMask(pub u32);

impl EventMask {
    /// No bits.
    pub const EMPTY: EventMask = EventMask(0);
    /// `EPOLLIN`: readable (data queued, accept-queue non-empty).
    pub const IN: EventMask = EventMask(0x001);
    /// `EPOLLPRI`: exceptional condition.
    pub const PRI: EventMask = EventMask(0x002);
    /// `EPOLLOUT`: writable (tx buffer has room).
    pub const OUT: EventMask = EventMask(0x004);
    /// `EPOLLERR`: error; always reported, never needs subscribing.
    pub const ERR: EventMask = EventMask(0x008);
    /// `EPOLLHUP`: hangup; always reported, never needs subscribing.
    pub const HUP: EventMask = EventMask(0x010);
    /// `EPOLLRDHUP`: peer closed its write direction (FIN seen).
    pub const RDHUP: EventMask = EventMask(0x2000);
    /// `EPOLLONESHOT`: disarm after one delivery until re-armed by MOD.
    pub const ONESHOT: EventMask = EventMask(0x4000_0000);
    /// `EPOLLET`: edge-triggered delivery.
    pub const ET: EventMask = EventMask(0x8000_0000);

    /// Bits that are reported even when the watcher did not ask for them
    /// (Linux: `EPOLLERR | EPOLLHUP`).
    pub const ALWAYS: EventMask = EventMask(Self::ERR.0 | Self::HUP.0);

    /// The readiness payload bits (mode bits `ET`/`ONESHOT` stripped).
    pub fn payload(self) -> EventMask {
        EventMask(self.0 & !(Self::ET.0 | Self::ONESHOT.0))
    }

    /// Whether every bit of `other` is set.
    pub fn contains(self, other: EventMask) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether any bit of `other` is set.
    pub fn intersects(self, other: EventMask) -> bool {
        self.0 & other.0 != 0
    }

    /// Whether no bits are set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Raw bits.
    pub fn bits(self) -> u32 {
        self.0
    }
}

impl BitOr for EventMask {
    type Output = EventMask;
    fn bitor(self, rhs: EventMask) -> EventMask {
        EventMask(self.0 | rhs.0)
    }
}

impl BitOrAssign for EventMask {
    fn bitor_assign(&mut self, rhs: EventMask) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for EventMask {
    type Output = EventMask;
    fn bitand(self, rhs: EventMask) -> EventMask {
        EventMask(self.0 & rhs.0)
    }
}

impl Sub for EventMask {
    type Output = EventMask;
    fn sub(self, rhs: EventMask) -> EventMask {
        EventMask(self.0 & !rhs.0)
    }
}

impl Not for EventMask {
    type Output = EventMask;
    fn not(self) -> EventMask {
        EventMask(!self.0)
    }
}

impl fmt::Display for EventMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = [
            (Self::IN, "IN"),
            (Self::PRI, "PRI"),
            (Self::OUT, "OUT"),
            (Self::ERR, "ERR"),
            (Self::HUP, "HUP"),
            (Self::RDHUP, "RDHUP"),
            (Self::ONESHOT, "ONESHOT"),
            (Self::ET, "ET"),
        ];
        let mut first = true;
        for (bit, name) in names {
            if self.contains(bit) {
                if !first {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        if first {
            write!(f, "(empty)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linux_abi_values() {
        assert_eq!(EventMask::IN.bits(), 0x001);
        assert_eq!(EventMask::OUT.bits(), 0x004);
        assert_eq!(EventMask::ERR.bits(), 0x008);
        assert_eq!(EventMask::HUP.bits(), 0x010);
        assert_eq!(EventMask::RDHUP.bits(), 0x2000);
        assert_eq!(EventMask::ET.bits(), 1 << 31);
        assert_eq!(EventMask::ONESHOT.bits(), 1 << 30);
    }

    #[test]
    fn set_operations() {
        let m = EventMask::IN | EventMask::OUT;
        assert!(m.contains(EventMask::IN));
        assert!(m.intersects(EventMask::OUT));
        assert!(!m.contains(EventMask::IN | EventMask::HUP));
        assert_eq!(m - EventMask::IN, EventMask::OUT);
        assert!((m & EventMask::HUP).is_empty());
    }

    #[test]
    fn payload_strips_mode_bits() {
        let m = EventMask::IN | EventMask::ET | EventMask::ONESHOT;
        assert_eq!(m.payload(), EventMask::IN);
    }

    #[test]
    fn display_names_bits() {
        assert_eq!((EventMask::IN | EventMask::HUP).to_string(), "IN|HUP");
        assert_eq!(EventMask::EMPTY.to_string(), "(empty)");
    }
}
