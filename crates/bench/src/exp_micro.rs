//! Table 1: cost of binary compatibility / syscalls.

use ukplat::cost;
use ukplat::time::Tsc;
use uksyscall::microbench;
use uksyscall::shim::{SyscallMode, SyscallShim};

/// Regenerates Table 1: modelled cycle costs for each dispatch mode,
/// plus *real* measurements of a function call and (where the host
/// allows) a genuine `getpid` syscall.
pub fn tab1_syscall_costs() -> String {
    let mut out = String::new();
    out.push_str("Table 1: cost of binary compatibility / syscalls\n");
    out.push_str(&format!(
        "{:<45} {:>10} {:>10}\n",
        "Routine", "#Cycles", "nsecs"
    ));

    // Modelled rows (paper Table 1), exercised through the real shim.
    for mode in [
        SyscallMode::LinuxTrap,
        SyscallMode::LinuxTrapNoMitigations,
        SyscallMode::UnikraftBinCompat,
        SyscallMode::UnikraftNative,
    ] {
        let tsc = Tsc::new(cost::CPU_FREQ_HZ);
        let mut shim = SyscallShim::new(mode, &tsc);
        shim.register(39, Box::new(|_| 0)); // getpid no-op handler
        let iters = 10_000u64;
        for _ in 0..iters {
            shim.invoke(39, &[]);
        }
        let cycles = tsc.now_cycles() / iters;
        out.push_str(&format!(
            "{:<45} {:>10} {:>10.2}\n",
            mode.name(),
            cycles,
            cost::cycles_to_ns_f64(cycles)
        ));
    }

    // Real host measurements.
    let fncall = microbench::function_call_ns(200_000);
    out.push_str(&format!(
        "{:<45} {:>10} {:>10.2}   (measured on this host)\n",
        "Function call (real)",
        "-",
        fncall
    ));
    match microbench::real_getpid_ns(50_000) {
        Some(ns) => out.push_str(&format!(
            "{:<45} {:>10} {:>10.2}   (measured on this host)\n",
            "Linux getpid via syscall insn (real)",
            "-",
            ns
        )),
        None => out.push_str("Real syscall measurement unavailable on this target\n"),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reports_all_modes() {
        let t = tab1_syscall_costs();
        assert!(t.contains("Linux/KVM system call"));
        assert!(t.contains("Unikraft function call"));
        assert!(t.contains("222"));
        assert!(t.contains("84"));
    }
}
