//! A Redis-style RESP key-value server.
//!
//! Speaks enough RESP (REdis Serialization Protocol) for
//! `redis-benchmark`-style GET/SET load with pipelining (the paper's
//! Figure 12 runs 30 connections, 100k requests, pipelining 16). Values
//! are stored in memory allocated from a `ukalloc` backend, so allocator
//! choice affects SET throughput as in Figure 18.

use std::collections::HashMap;

use ukalloc::{Allocator, GpAddr};
use uknetstack::stack::{NetStack, SocketHandle};
use ukplat::Result;

/// A RESP value parsed from the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RespValue {
    /// `+OK\r\n`
    Simple(String),
    /// `-ERR ...\r\n`
    Error(String),
    /// `$n\r\n...\r\n` (None = `$-1\r\n`, the nil bulk string).
    Bulk(Option<Vec<u8>>),
    /// `*n\r\n...`
    Array(Vec<RespValue>),
    /// `:n\r\n`
    Integer(i64),
}

/// Serializes a RESP value.
pub fn encode_resp(v: &RespValue, out: &mut Vec<u8>) {
    match v {
        RespValue::Simple(s) => {
            out.push(b'+');
            out.extend_from_slice(s.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        RespValue::Error(s) => {
            out.push(b'-');
            out.extend_from_slice(s.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        RespValue::Bulk(None) => out.extend_from_slice(b"$-1\r\n"),
        RespValue::Bulk(Some(d)) => {
            out.extend_from_slice(format!("${}\r\n", d.len()).as_bytes());
            out.extend_from_slice(d);
            out.extend_from_slice(b"\r\n");
        }
        RespValue::Array(items) => {
            out.extend_from_slice(format!("*{}\r\n", items.len()).as_bytes());
            for i in items {
                encode_resp(i, out);
            }
        }
        RespValue::Integer(n) => {
            out.extend_from_slice(format!(":{n}\r\n").as_bytes());
        }
    }
}

/// Parses one RESP value; returns it plus the bytes consumed, or `None`
/// if the buffer is incomplete.
pub fn parse_resp(buf: &[u8]) -> Option<(RespValue, usize)> {
    let line_end = buf.windows(2).position(|w| w == b"\r\n")?;
    let line = std::str::from_utf8(&buf[1..line_end]).ok()?;
    let consumed = line_end + 2;
    match buf.first()? {
        b'+' => Some((RespValue::Simple(line.to_string()), consumed)),
        b'-' => Some((RespValue::Error(line.to_string()), consumed)),
        b':' => Some((RespValue::Integer(line.parse().ok()?), consumed)),
        b'$' => {
            let n: i64 = line.parse().ok()?;
            if n < 0 {
                return Some((RespValue::Bulk(None), consumed));
            }
            let n = n as usize;
            if buf.len() < consumed + n + 2 {
                return None;
            }
            let data = buf[consumed..consumed + n].to_vec();
            Some((RespValue::Bulk(Some(data)), consumed + n + 2))
        }
        b'*' => {
            let n: usize = line.parse().ok()?;
            let mut items = Vec::with_capacity(n);
            let mut off = consumed;
            for _ in 0..n {
                let (v, used) = parse_resp(&buf[off..])?;
                items.push(v);
                off += used;
            }
            Some((RespValue::Array(items), off))
        }
        _ => None,
    }
}

struct StoredValue {
    bytes: Vec<u8>,
    gp: GpAddr,
}

struct Conn {
    sock: SocketHandle,
    buf: Vec<u8>,
    /// Reply bytes the socket has not yet accepted (partial writes).
    out: Vec<u8>,
    /// Connection failed; dropped from the table at the end of `poll`.
    dead: bool,
}

/// The key-value server.
pub struct KvStore {
    listener: SocketHandle,
    conns: Vec<Conn>,
    data: HashMap<Vec<u8>, StoredValue>,
    alloc: Box<dyn Allocator>,
    gets: u64,
    sets: u64,
    errors: u64,
}

impl std::fmt::Debug for KvStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvStore")
            .field("keys", &self.data.len())
            .field("gets", &self.gets)
            .field("sets", &self.sets)
            .finish()
    }
}

impl KvStore {
    /// Starts listening on `port`.
    pub fn new(stack: &mut NetStack, port: u16, alloc: Box<dyn Allocator>) -> Result<Self> {
        let listener = stack.tcp_listen(port)?;
        Ok(KvStore {
            listener,
            conns: Vec::new(),
            data: HashMap::new(),
            alloc,
            gets: 0,
            sets: 0,
            errors: 0,
        })
    }

    /// GET operations served.
    pub fn gets(&self) -> u64 {
        self.gets
    }

    /// SET operations served.
    pub fn sets(&self) -> u64 {
        self.sets
    }

    /// Protocol errors.
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Keys stored.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    fn exec(&mut self, cmd: &RespValue) -> RespValue {
        let items = match cmd {
            RespValue::Array(items) if !items.is_empty() => items,
            _ => {
                self.errors += 1;
                return RespValue::Error("ERR protocol".into());
            }
        };
        let word = |v: &RespValue| -> Option<Vec<u8>> {
            match v {
                RespValue::Bulk(Some(d)) => Some(d.clone()),
                RespValue::Simple(s) => Some(s.clone().into_bytes()),
                _ => None,
            }
        };
        let name = match word(&items[0]) {
            Some(n) => n.to_ascii_uppercase(),
            None => {
                self.errors += 1;
                return RespValue::Error("ERR protocol".into());
            }
        };
        match (name.as_slice(), items.len()) {
            (b"PING", 1) => RespValue::Simple("PONG".into()),
            (b"GET", 2) => {
                self.gets += 1;
                match word(&items[1]).and_then(|k| self.data.get(&k)) {
                    Some(v) => RespValue::Bulk(Some(v.bytes.clone())),
                    None => RespValue::Bulk(None),
                }
            }
            (b"SET", 3) => {
                let (k, v) = match (word(&items[1]), word(&items[2])) {
                    (Some(k), Some(v)) => (k, v),
                    _ => {
                        self.errors += 1;
                        return RespValue::Error("ERR protocol".into());
                    }
                };
                self.sets += 1;
                // Value storage comes from the ukalloc backend.
                let gp = match self.alloc.malloc(v.len().max(16)) {
                    Some(gp) => gp,
                    None => return RespValue::Error("OOM".into()),
                };
                if let Some(old) = self.data.insert(k, StoredValue { bytes: v, gp }) {
                    self.alloc.free(old.gp);
                }
                RespValue::Simple("OK".into())
            }
            (b"DEL", 2) => {
                let removed = word(&items[1])
                    .and_then(|k| self.data.remove(&k))
                    .map(|old| {
                        self.alloc.free(old.gp);
                        1
                    })
                    .unwrap_or(0);
                RespValue::Integer(removed)
            }
            _ => {
                self.errors += 1;
                RespValue::Error("ERR unknown command".into())
            }
        }
    }

    /// Accepts connections and serves every complete pipelined command.
    /// Returns responses written this call.
    pub fn poll(&mut self, stack: &mut NetStack) -> u64 {
        while let Some(sock) = stack.tcp_accept(self.listener) {
            self.conns.push(Conn {
                sock,
                buf: Vec::new(),
                out: Vec::new(),
                dead: false,
            });
        }
        let mut served = 0;
        for i in 0..self.conns.len() {
            if self.conns[i].dead {
                continue;
            }
            if let Ok(data) = stack.tcp_recv(self.conns[i].sock, 256 * 1024) {
                self.conns[i].buf.extend_from_slice(&data);
            }
            let mut out = Vec::new();
            loop {
                let parsed = parse_resp(&self.conns[i].buf);
                match parsed {
                    Some((cmd, used)) => {
                        self.conns[i].buf.drain(..used);
                        let reply = self.exec(&cmd);
                        encode_resp(&reply, &mut out);
                        served += 1;
                    }
                    None => break,
                }
            }
            // Queue replies behind any earlier partial write, then push
            // as much as the socket's send buffer accepts.
            self.conns[i].out.extend_from_slice(&out);
            let sock = self.conns[i].sock;
            if !crate::flush_partial(stack, sock, &mut self.conns[i].out) {
                self.conns[i].dead = true;
            }
        }
        self.conns.retain(|c| !c.dead);
        served
    }
}

/// Builds a RESP command array from words.
pub fn resp_command(words: &[&[u8]]) -> Vec<u8> {
    let arr = RespValue::Array(
        words
            .iter()
            .map(|w| RespValue::Bulk(Some(w.to_vec())))
            .collect(),
    );
    let mut out = Vec::new();
    encode_resp(&arr, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ukalloc::AllocBackend;
    use uknetdev::backend::VhostKind;
    use uknetdev::dev::{NetDev, NetDevConf};
    use uknetdev::VirtioNet;
    use uknetstack::stack::StackConfig;
    use uknetstack::testnet::Network;
    use uknetstack::{Endpoint, Ipv4Addr};
    use ukplat::time::Tsc;

    fn mk_stack(n: u8) -> NetStack {
        let tsc = Tsc::new(3_600_000_000);
        let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
        dev.configure(NetDevConf::default()).unwrap();
        NetStack::new(StackConfig::node(n), Box::new(dev))
    }

    fn mk_alloc() -> Box<dyn Allocator> {
        let mut a = AllocBackend::Mimalloc.instantiate();
        a.init(1 << 22, 16 << 20).unwrap();
        a
    }

    #[test]
    fn resp_roundtrip() {
        let cmd = resp_command(&[b"SET", b"k", b"v"]);
        let (v, used) = parse_resp(&cmd).unwrap();
        assert_eq!(used, cmd.len());
        match v {
            RespValue::Array(items) => assert_eq!(items.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_incomplete_returns_none() {
        let cmd = resp_command(&[b"GET", b"key"]);
        assert!(parse_resp(&cmd[..cmd.len() - 3]).is_none());
    }

    #[test]
    fn pipelined_get_set_over_network() {
        let mut net = Network::new();
        let ci = net.attach(mk_stack(1));
        let mut ss = mk_stack(2);
        let mut kv = KvStore::new(&mut ss, 6379, mk_alloc()).unwrap();
        let si = net.attach(ss);
        let conn = net
            .stack(ci)
            .tcp_connect(Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 6379))
            .unwrap();
        for _ in 0..4 {
            net.run_until_quiet(16);
            kv.poll(net.stack(si));
        }
        // Pipeline: SET a 1, SET b 2, GET a, GET missing.
        let mut pipeline = Vec::new();
        pipeline.extend(resp_command(&[b"SET", b"a", b"1"]));
        pipeline.extend(resp_command(&[b"SET", b"b", b"2"]));
        pipeline.extend(resp_command(&[b"GET", b"a"]));
        pipeline.extend(resp_command(&[b"GET", b"missing"]));
        net.stack(ci).tcp_send(conn, &pipeline).unwrap();
        for _ in 0..6 {
            net.run_until_quiet(16);
            kv.poll(net.stack(si));
        }
        let resp = net.stack(ci).tcp_recv(conn, 64 * 1024).unwrap();
        let text = String::from_utf8_lossy(&resp);
        assert_eq!(text, "+OK\r\n+OK\r\n$1\r\n1\r\n$-1\r\n");
        assert_eq!(kv.sets(), 2);
        assert_eq!(kv.gets(), 2);
    }

    #[test]
    fn set_overwrite_frees_old_allocation() {
        let mut ss = mk_stack(2);
        let mut kv = KvStore::new(&mut ss, 6379, mk_alloc()).unwrap();
        let set = |kv: &mut KvStore, v: &[u8]| {
            let cmd = RespValue::Array(vec![
                RespValue::Bulk(Some(b"SET".to_vec())),
                RespValue::Bulk(Some(b"k".to_vec())),
                RespValue::Bulk(Some(v.to_vec())),
            ]);
            kv.exec(&cmd)
        };
        set(&mut kv, b"first");
        set(&mut kv, b"second");
        assert_eq!(kv.len(), 1);
        let stats = kv.alloc.stats();
        assert_eq!(stats.alloc_count - stats.free_count, 1, "one live value");
    }

    #[test]
    fn unknown_command_is_error() {
        let mut ss = mk_stack(2);
        let mut kv = KvStore::new(&mut ss, 6379, mk_alloc()).unwrap();
        let cmd = RespValue::Array(vec![RespValue::Bulk(Some(b"FLUSHALL".to_vec()))]);
        match kv.exec(&cmd) {
            RespValue::Error(e) => assert!(e.contains("unknown")),
            other => panic!("{other:?}"),
        }
    }
}
