//! Figures 12, 13, 15, 16, 17, 18: application throughput experiments.
//!
//! The Unikraft rows are *measured*: the real servers (`ukapps`) run over
//! the real stack (`uknetstack`) and devices (`uknetdev`), with host-side
//! costs charged virtually. Baseline rows add each environment's
//! per-request residual overhead (derived from the paper's own numbers,
//! see `ukbaselines::data`), so the comparison keeps the published shape
//! while Unikraft's absolute cost comes from this codebase.

use std::time::Instant;

use ukalloc::AllocBackend;
use ukapps::loadgen::RespOp;
use ukapps::sqldb::SqlDb;
use ukbaselines::{EnvModel, ExecEnv, Workload};
use uknetdev::backend::VhostKind;
use ukplat::cost;

use crate::netharness::{run_http_bench, run_resp_bench};
use crate::util::fmt_rate;

/// Request counts tuned for harness runtime; raise for more precision.
const RESP_REQUESTS: u64 = 20_000;
const HTTP_REQUESTS: u64 = 6_000;
const PER_ALLOC_REQUESTS: u64 = 5_000;

fn env_rows(base_ns: f64, w: Workload) -> String {
    let mut rows: Vec<(String, f64)> = Vec::new();
    for env in ExecEnv::all() {
        let m = EnvModel::new(env);
        if let Some(extra) = m.request_overhead_ns(w) {
            rows.push((env.name().to_string(), 1e9 / (base_ns + extra)));
        }
    }
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    let mut out = String::new();
    for (name, rate) in rows {
        out.push_str(&format!("{name:<18} {:>12}\n", fmt_rate(rate)));
    }
    out
}

/// Figure 12: Redis throughput across platforms.
pub fn fig12_redis_throughput() -> String {
    let mut out = String::new();
    out.push_str("Figure 12: Redis GET/SET throughput (pipelining 16)\n");
    for (op, w, label) in [
        (RespOp::Get, Workload::RedisGet, "GET"),
        (RespOp::Set, Workload::RedisSet, "SET"),
    ] {
        let t = run_resp_bench(
            AllocBackend::Mimalloc,
            VhostKind::VhostNet,
            op,
            8,
            16,
            RESP_REQUESTS,
        );
        let base_ns = t.elapsed_ns as f64 / t.requests.max(1) as f64;
        out.push_str(&format!(
            "\n[{label}] Unikraft measured: {} ({} reqs, {:.0} ns/req)\n",
            fmt_rate(t.rate()),
            t.requests,
            base_ns
        ));
        out.push_str(&env_rows(base_ns, w));
    }
    out.push_str("\nshape check: Unikraft fastest; HermiTux slowest; native Linux 2nd\n");
    out
}

/// Figure 13: nginx throughput across platforms.
pub fn fig13_nginx_throughput() -> String {
    let t = run_http_bench(
        AllocBackend::Mimalloc,
        VhostKind::VhostNet,
        8,
        4,
        HTTP_REQUESTS,
    );
    let base_ns = t.elapsed_ns as f64 / t.requests.max(1) as f64;
    let mut out = String::new();
    out.push_str("Figure 13: nginx throughput (wrk-style, static 612B page)\n");
    out.push_str(&format!(
        "Unikraft measured: {} ({} reqs, {:.0} ns/req)\n\n",
        fmt_rate(t.rate()),
        t.requests,
        base_ns
    ));
    out.push_str(&env_rows(base_ns, Workload::NginxRequest));
    out.push_str("\nshape check: Unikraft fastest; Mirage slowest; ~2.8x over Linux KVM\n");
    out
}

/// Figure 15: nginx throughput per allocator.
pub fn fig15_nginx_per_allocator() -> String {
    let mut out = String::new();
    out.push_str("Figure 15: nginx throughput per allocator\n");
    for b in [
        AllocBackend::Mimalloc,
        AllocBackend::Tlsf,
        AllocBackend::Buddy,
        AllocBackend::TinyAlloc,
    ] {
        let t = run_http_bench(b, VhostKind::VhostUser, 8, 4, PER_ALLOC_REQUESTS);
        out.push_str(&format!("{:<14} {:>12}\n", b.name(), fmt_rate(t.rate())));
    }
    out.push_str("shape check: mimalloc/TLSF/buddy close; tinyalloc behind\n");
    out
}

/// Figure 16: SQLite execution speedup relative to mimalloc.
pub fn fig16_sqlite_speedup() -> String {
    let queries = [10u64, 100, 1_000, 10_000, 60_000, 100_000];
    let backends = [
        AllocBackend::Buddy,
        AllocBackend::TinyAlloc,
        AllocBackend::Tlsf,
    ];
    let run_once = |b: AllocBackend, n: u64| -> u64 {
        let mut a = b.instantiate();
        a.init(1 << 26, 256 << 20).expect("init");
        let mut db = SqlDb::new(a);
        let t = Instant::now();
        db.insert_workload(n).expect("workload");
        t.elapsed().as_nanos() as u64
    };
    // Median of several runs: the smallest query counts are dominated by
    // first-touch effects and need de-noising.
    let run = |b: AllocBackend, n: u64| -> u64 {
        let reps = if n <= 1_000 { 7 } else { 3 };
        crate::util::median_ns(reps, || run_once(b, n))
    };
    let mut out = String::new();
    out.push_str("Figure 16: SQLite insert speedup relative to mimalloc (%)\n");
    out.push_str(&format!(
        "{:<10} {:>12} {:>12} {:>12}\n",
        "queries", "buddy", "tinyalloc", "TLSF"
    ));
    for n in queries {
        let mi = run(AllocBackend::Mimalloc, n).max(1);
        let mut row = format!("{n:<10}");
        for b in backends {
            let t = run(b, n);
            let speedup = (mi as f64 - t as f64) / t as f64 * 100.0;
            row.push_str(&format!(" {speedup:>11.1}%"));
        }
        out.push_str(&row);
        out.push('\n');
    }
    out.push_str("shape check: small runs favour simple allocators; mimalloc wins at scale\n");
    out
}

/// Figure 17: time for 60k SQLite insertions across libc configurations.
pub fn fig17_sqlite_insert_time() -> String {
    const N: u64 = 60_000;
    // The manually ported musl build: fully measured.
    let mut a = AllocBackend::Tlsf.instantiate();
    a.init(1 << 26, 256 << 20).expect("init");
    let mut db = SqlDb::new(a);
    let t = Instant::now();
    db.insert_workload(N).expect("workload");
    let musl_ns = t.elapsed().as_nanos() as u64;

    // Mechanical deltas per statement:
    // Linux native: the syscalls SQLite's VFS makes per insert
    // (write + fdatasync + time queries ≈ 8 traps) plus buffer copies.
    let linux_extra =
        N * cost::cycles_to_ns_f64(8 * cost::LINUX_SYSCALL_CYCLES + 2 * 700) as u64;
    // newlib: slower string/malloc routines, ~1000 cycles/stmt.
    let newlib_extra = N * cost::cycles_to_ns_f64(1_000) as u64;
    // Automatically ported archive: extra call indirection at the
    // archive boundary and no cross-archive inlining (paper: ~1.5%).
    let external_extra = musl_ns / 66 + N * cost::cycles_to_ns_f64(8) as u64;

    let mut out = String::new();
    out.push_str("Figure 17: 60k SQLite insertions\n");
    out.push_str(&format!(
        "{:<22} {:>12}\n",
        "configuration", "time"
    ));
    for (label, ns) in [
        ("Linux (native)", musl_ns + linux_extra),
        ("newlib (native)", musl_ns + newlib_extra),
        ("musl (native)", musl_ns),
        ("musl (external)", musl_ns + external_extra),
    ] {
        out.push_str(&format!("{:<22} {:>12}\n", label, crate::util::fmt_ns(ns)));
    }
    out.push_str("shape check: musl-native fastest; external ~1.5% slower; Linux slowest\n");
    out
}

/// Figure 18: Redis throughput per allocator.
pub fn fig18_redis_per_allocator() -> String {
    let mut out = String::new();
    out.push_str("Figure 18: Redis throughput per allocator\n");
    out.push_str(&format!(
        "{:<14} {:>12} {:>12}\n",
        "allocator", "GET", "SET"
    ));
    for b in [
        AllocBackend::Mimalloc,
        AllocBackend::Tlsf,
        AllocBackend::Buddy,
        AllocBackend::TinyAlloc,
    ] {
        let g = run_resp_bench(b, VhostKind::VhostUser, RespOp::Get, 8, 16, PER_ALLOC_REQUESTS);
        let s = run_resp_bench(b, VhostKind::VhostUser, RespOp::Set, 8, 16, PER_ALLOC_REQUESTS);
        out.push_str(&format!(
            "{:<14} {:>12} {:>12}\n",
            b.name(),
            fmt_rate(g.rate()),
            fmt_rate(s.rate())
        ));
    }
    out.push_str("shape check: GET > SET; no allocator optimal for all workloads\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig16_small_scale_runs() {
        // Exercise the speedup harness at tiny scale.
        let out = fig16_sqlite_speedup_small();
        assert!(out.contains("buddy"));
    }

    fn fig16_sqlite_speedup_small() -> String {
        let run = |b: AllocBackend, n: u64| -> u64 {
            let mut a = b.instantiate();
            a.init(1 << 26, 64 << 20).unwrap();
            let mut db = SqlDb::new(a);
            let t = Instant::now();
            db.insert_workload(n).unwrap();
            t.elapsed().as_nanos() as u64
        };
        let mi = run(AllocBackend::Mimalloc, 50).max(1);
        let bu = run(AllocBackend::Buddy, 50);
        format!("buddy {:.1}%", (mi as f64 - bu as f64) / bu as f64 * 100.0)
    }
}
