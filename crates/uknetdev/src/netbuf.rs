//! `uk_netbuf`: the packet-buffer wrapper.
//!
//! "In order to develop application-independent network drivers while
//! using the application's or network stack's memory management we
//! introduce a network packet buffer wrapper structure called
//! `uk_netbuf`" (§3.1). The struct carries the metadata the driver needs
//! (headroom, length) while the *allocation policy* stays with the
//! application: performance-critical code uses a pre-allocated
//! [`NetbufPool`], memory-frugal code allocates from the heap.
//!
//! # The headroom/ownership model
//!
//! A netbuf is one contiguous storage area split into three regions:
//!
//! ```text
//! [ headroom ............ ][ payload ............ ][ tailroom ... ]
//! ^ offset counts down     ^ offset               ^ offset + len
//! ```
//!
//! The DPDK/Unikraft zero-copy discipline falls out of two operations:
//!
//! - **producers write payload once** into the buffer body ([`append`])
//!   at an offset that leaves all protocol headers' worth of headroom
//!   in front;
//! - **each protocol layer prepends its header in place**
//!   ([`push_header`] / [`push_header_uninit`]) by moving `offset`
//!   *down* into the headroom — no copy of the payload, no intermediate
//!   allocation, one buffer from application to wire.
//!
//! On receive the same buffer walks the stack upward with
//! [`pull_header`]/[`truncate`], so a frame is parsed, demultiplexed
//! and queued on a socket without ever being copied.
//!
//! Ownership follows the buffer, not the layer: whoever holds the
//! `Netbuf` owns it, and when the packet's life ends the holder hands
//! it back to its [`NetbufPool`] (checked by a per-pool identity tag).
//! Drivers never allocate — they only move netbufs between rings.
//!
//! # The burst lifecycle
//!
//! Since the burst datapath, netbufs cross every layer boundary in
//! *batches*, and a buffer's steady-state life is a loop:
//!
//! ```text
//!         ┌───────────────────────────────────────────────────┐
//!         ▼                                                   │
//!  pool ─take─▶ payload + headers (headroom) ─▶ tx_burst      │
//!  (device completes any CsumRequest) ─▶ done-list ─▶         │
//!  harvest/reclaim ─▶ wire ─▶ receiver pool's RX buffer ─▶    │
//!  inject_rx (whole burst) ─▶ rx_burst ─▶ demux sweep ─▶      │
//!  socket queue ─▶ recv_into ─▶ recycle ──────────────────────┘
//! ```
//!
//! A buffer may also carry a transmit-side [`CsumRequest`]: the stack
//! stamps the transport header with the partial pseudo-header sum and
//! the *device* finishes the Internet checksum at `tx_burst` time —
//! checksum offload without any extra buffer walk.
//!
//! # Scatter-gather chains
//!
//! A payload larger than one buffer travels as a *chain*: one head
//! netbuf (headers in its headroom, the first payload bytes in its
//! body) owning a list of fragment buffers ([`chain_append`]) that
//! hold the rest. This is `uk_netbuf`'s `next`/`prev` scatter-gather
//! list recast for ownership semantics: instead of intrusive sibling
//! pointers, the head *owns* its fragments, so a chain moves through
//! rings, staging vectors and the wire as one `Netbuf` value and can
//! never be torn apart by a partial transfer. Chain invariants:
//!
//! - only the **head** carries protocol headers, a [`CsumRequest`] or a
//!   [`GsoRequest`]; fragments are raw payload extents (no headroom);
//! - fragments never nest: appending flattens ([`chain_append`] panics
//!   on a fragment that itself has fragments);
//! - [`len`](Netbuf::len) stays the *head's* extent; chain-aware
//!   accounting uses [`chain_len`]/[`chain_segments`];
//! - recycling is whole-chain: the holder pops every fragment back to
//!   its owning pool before returning the head (pools pre-reserve the
//!   fragment list's capacity so steady-state chain building performs
//!   no heap allocation).
//!
//! [`append`]: Netbuf::append
//! [`chain_append`]: Netbuf::chain_append
//! [`chain_len`]: Netbuf::chain_len
//! [`chain_segments`]: Netbuf::chain_segments
//! [`push_header`]: Netbuf::push_header
//! [`push_header_uninit`]: Netbuf::push_header_uninit
//! [`pull_header`]: Netbuf::pull_header
//! [`truncate`]: Netbuf::truncate

use std::sync::atomic::{AtomicU64, Ordering};

use bytes::BytesMut;

/// Monotonic source of pool identities (so a buffer can never be
/// returned to a pool it did not come from).
static NEXT_POOL_ID: AtomicU64 = AtomicU64::new(1);

/// The byte pattern the `netbuf-sanitizer` feature writes over a
/// buffer's entire storage on give-back. A pool-resident buffer must
/// stay wall-to-wall poison until its next `take`; any other content
/// means someone wrote through a stale handle while the pool owned
/// the bytes.
#[cfg(feature = "netbuf-sanitizer")]
pub const SANITIZER_POISON: u8 = 0xA5;

/// Per-slot provenance the sanitizer tracks alongside the pool.
///
/// Compiled to nothing without the `netbuf-sanitizer` feature — the
/// zero-alloc bench gates prove the default build pays nothing.
#[cfg(feature = "netbuf-sanitizer")]
#[derive(Debug, Clone, Copy, Default)]
struct SlotSan {
    /// Buffer is out in the datapath (`true`) or home in the pool.
    live: bool,
    /// Call site of the `take` that made the slot live.
    last_take: Option<&'static core::panic::Location<'static>>,
    /// Call site of the most recent give-back.
    last_give_back: Option<&'static core::panic::Location<'static>>,
}

/// A transmit checksum-offload request riding on a netbuf — the role
/// of `virtio_net_hdr`'s `csum_start`/`csum_offset` pair.
///
/// The stack stamps the transport header with the *partial*
/// pseudo-header sum ([`crate::csum::fold_partial_sum`],
/// uncomplemented) and attaches this request; the device completes the
/// Internet checksum over the trailing `region_len` bytes of the frame
/// (the transport header + payload — prepending more headers in front
/// later does not move the region relative to the tail) and stores it
/// at `field_off` within that region.
/// Field widths are deliberately narrow (a checksum region is at most
/// one frame) so the `Option<CsumRequest>` rides in one word of the
/// [`Netbuf`] — the struct is moved through rings and staging vectors
/// constantly, and its size is hot-path relevant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsumRequest {
    /// Bytes covered, counted back from the end of the payload (the
    /// end of the *chain* payload for a scatter-gather chain).
    pub region_len: u32,
    /// Offset of the 16-bit checksum field within the region.
    pub field_off: u16,
}

/// A TSO/GSO segmentation-offload request riding on a netbuf — the
/// role of `virtio_net_hdr`'s `gso_type`/`gso_size` pair
/// (`VIRTIO_NET_F_HOST_TSO4` shape).
///
/// The stack hands the device one oversized TCP frame (usually a
/// scatter-gather chain) whose headers describe the whole
/// super-segment; the host side cuts it into wire frames of at most
/// `mss` payload bytes each, replicating and fixing up the IPv4/TCP
/// headers and completing per-frame checksums (see [`crate::gso`]).
/// A GSO frame must also carry a [`CsumRequest`] — virtio requires
/// `VIRTIO_NET_F_CSUM` alongside TSO for exactly this reason: the
/// per-frame checksums only exist after the cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GsoRequest {
    /// Maximum TCP payload bytes per cut frame.
    pub mss: u16,
}

/// A retransmission hold riding on an in-flight TCP data frame.
///
/// The stack tags every TCP frame that carries payload bytes with the
/// owning connection and the sequence range of those bytes. When the
/// frame comes back from the device/wire (TX reclaim, ARP-park
/// eviction, testnet recycle), the stack intercepts the recycle and
/// files the still-unacknowledged payload into the connection's
/// retransmission queue instead of the pool — retransmission without
/// ever re-copying application bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpHold {
    /// Connection handle the payload belongs to.
    pub conn: u64,
    /// TCP sequence number of the first payload byte.
    pub seq: u32,
    /// Payload byte count (excludes all headers).
    pub payload_len: u32,
    /// Virtual-clock time the frame was (last) transmitted; rides
    /// back with the extent so the sender's RACK logic can judge the
    /// extent's freshness against the reordering window.
    pub sent_ns: u64,
}

/// A packet buffer with driver metadata.
#[derive(Debug)]
pub struct Netbuf {
    /// Backing storage (headroom + payload + tailroom).
    data: BytesMut,
    /// Offset of the packet start (headroom in front).
    offset: usize,
    /// Payload length.
    len: usize,
    /// Pool slot this buffer came from, if pooled.
    pool_slot: Option<usize>,
    /// Identity of the owning pool (0 for heap buffers).
    pool_id: u64,
    /// Pending checksum-offload request, if any.
    csum: Option<CsumRequest>,
    /// Pending segmentation-offload request, if any (head of a chain).
    gso: Option<GsoRequest>,
    /// RX: the wire/device validated this frame's checksums
    /// (`VIRTIO_NET_F_GUEST_CSUM` shape); the stack may skip software
    /// verification.
    csum_verified: bool,
    /// TX: unacknowledged TCP payload rides in this frame; recycling
    /// must route it back to the owning connection's retransmission
    /// queue, not the pool.
    tcp_hold: Option<TcpHold>,
    /// Scatter-gather fragments owned by this (head) buffer.
    frags: Vec<Netbuf>,
}

impl Netbuf {
    /// Allocates a standalone (heap) netbuf with `cap` bytes of storage
    /// and `headroom` reserved in front.
    // ukcheck: allow(alloc) -- the explicit heap-buffer constructor: pools
    // call it at build time, and the memory-frugal path allocates here by
    // design (§3.1); the steady-state datapath only circulates pooled bufs
    pub fn alloc(cap: usize, headroom: usize) -> Self {
        assert!(headroom <= cap, "headroom exceeds capacity");
        let mut data = BytesMut::with_capacity(cap);
        data.resize(cap, 0);
        Netbuf {
            data,
            offset: headroom,
            len: 0,
            pool_slot: None,
            pool_id: 0,
            csum: None,
            gso: None,
            csum_verified: false,
            tcp_hold: None,
            frags: Vec::new(),
        }
    }

    /// Current payload.
    pub fn payload(&self) -> &[u8] {
        &self.data[self.offset..self.offset + self.len]
    }

    /// Mutable payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.data[self.offset..self.offset + self.len]
    }

    /// Sets the payload, copying `bytes` in after the headroom.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` does not fit.
    pub fn set_payload(&mut self, bytes: &[u8]) {
        assert!(
            self.offset + bytes.len() <= self.data.len(),
            "payload too large"
        );
        self.data[self.offset..self.offset + bytes.len()].copy_from_slice(bytes);
        self.len = bytes.len();
    }

    /// Appends `bytes` into the tailroom (payload body write).
    ///
    /// # Panics
    ///
    /// Panics if the tailroom is too small.
    pub fn append(&mut self, bytes: &[u8]) {
        let end = self.offset + self.len;
        assert!(
            end + bytes.len() <= self.data.len(),
            "insufficient tailroom"
        );
        self.data[end..end + bytes.len()].copy_from_slice(bytes);
        self.len += bytes.len();
    }

    /// Sets the payload length without copying (zero-copy fill).
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds the space after the headroom.
    pub fn set_len(&mut self, len: usize) {
        assert!(self.offset + len <= self.data.len(), "len too large");
        self.len = len;
    }

    /// Shrinks the payload to at most `len` bytes (drops the tail; used
    /// to discard Ethernet padding after decoding a length field).
    pub fn truncate(&mut self, len: usize) {
        self.len = self.len.min(len);
    }

    /// Payload length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remaining headroom in front of the payload.
    pub fn headroom(&self) -> usize {
        self.offset
    }

    /// Remaining tailroom behind the payload.
    pub fn tailroom(&self) -> usize {
        self.data.len() - self.offset - self.len
    }

    /// Prepends `bytes` into the headroom (protocol header push).
    ///
    /// # Panics
    ///
    /// Panics if the headroom is too small.
    pub fn push_header(&mut self, bytes: &[u8]) {
        let dst = self.push_header_uninit(bytes.len());
        dst.copy_from_slice(bytes);
    }

    /// Grows the payload front by `n` bytes into the headroom and
    /// returns the new region for in-place header writing (the
    /// zero-copy `encode_into` primitive).
    ///
    /// # Panics
    ///
    /// Panics if the headroom is too small.
    pub fn push_header_uninit(&mut self, n: usize) -> &mut [u8] {
        assert!(n <= self.offset, "insufficient headroom");
        self.offset -= n;
        self.len += n;
        let off = self.offset;
        &mut self.data[off..off + n]
    }

    /// Strips `n` bytes from the front (protocol header pull).
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the payload.
    pub fn pull_header(&mut self, n: usize) {
        assert!(n <= self.len, "pull beyond payload");
        self.offset += n;
        self.len -= n;
    }

    /// Total storage capacity.
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Pool slot, if this buffer belongs to a pool.
    pub fn pool_slot(&self) -> Option<usize> {
        self.pool_slot
    }

    /// Whether this buffer came from a pool (and must be recycled).
    pub fn is_pooled(&self) -> bool {
        self.pool_slot.is_some()
    }

    /// Resets to an empty buffer with `headroom` reserved. The caller
    /// must have popped any chain fragments first ([`pop_frag`]) —
    /// resetting cannot return them to their pool.
    ///
    /// [`pop_frag`]: Netbuf::pop_frag
    pub fn reset(&mut self, headroom: usize) {
        assert!(headroom <= self.data.len());
        debug_assert!(self.frags.is_empty(), "reset with live chain fragments");
        self.offset = headroom;
        self.len = 0;
        self.csum = None;
        self.gso = None;
        self.csum_verified = false;
        self.tcp_hold = None;
    }

    /// Attaches a checksum-offload request: the device must compute
    /// the Internet checksum over the trailing `region_len` payload
    /// bytes and store it `field_off` bytes into that region.
    ///
    /// # Panics
    ///
    /// Panics if the region exceeds the (chain) payload or the field
    /// does not fit inside it.
    pub fn request_csum(&mut self, region_len: usize, field_off: usize) {
        assert!(region_len <= self.chain_len(), "csum region beyond payload");
        assert!(field_off + 2 <= region_len, "csum field outside region");
        self.csum = Some(CsumRequest {
            region_len: region_len as u32,
            field_off: field_off as u16,
        });
    }

    /// The pending checksum-offload request, if any.
    pub fn csum_request(&self) -> Option<CsumRequest> {
        self.csum
    }

    /// Takes the pending checksum-offload request (the device calls
    /// this when it completes the checksum).
    pub fn take_csum_request(&mut self) -> Option<CsumRequest> {
        self.csum.take()
    }

    /// Attaches a segmentation-offload request: the host side must cut
    /// this (chained) frame into wire frames of at most `mss` payload
    /// bytes each.
    ///
    /// # Panics
    ///
    /// Panics if `mss` is zero.
    pub fn request_gso(&mut self, mss: u16) {
        assert!(mss > 0, "GSO with a zero mss");
        self.gso = Some(GsoRequest { mss });
    }

    /// The pending segmentation-offload request, if any.
    pub fn gso_request(&self) -> Option<GsoRequest> {
        self.gso
    }

    /// Takes the pending segmentation-offload request (whoever cuts
    /// the frame calls this).
    pub fn take_gso_request(&mut self) -> Option<GsoRequest> {
        self.gso.take()
    }

    /// Marks this received frame's checksums as validated by the
    /// wire/device (`VIRTIO_NET_F_GUEST_CSUM`): the stack may skip
    /// software verification.
    pub fn mark_csum_verified(&mut self) {
        self.csum_verified = true;
    }

    /// Whether the wire/device validated this frame's checksums.
    pub fn csum_verified(&self) -> bool {
        self.csum_verified
    }

    /// Clears the checksum-validated mark. A wire model that mutates
    /// frame bytes in flight (payload corruption faults) must drop the
    /// mark so the receiver falls back to software verification and
    /// actually catches the damage.
    pub fn clear_csum_verified(&mut self) {
        self.csum_verified = false;
    }

    /// Tags this frame's payload as unacknowledged TCP data (see
    /// [`TcpHold`]). Set by the stack when it emits a data frame;
    /// `sent_ns` stamps the transmission on the virtual clock.
    pub fn set_tcp_hold(&mut self, conn: u64, seq: u32, payload_len: u32, sent_ns: u64) {
        self.tcp_hold = Some(TcpHold {
            conn,
            seq,
            payload_len,
            sent_ns,
        });
    }

    /// The retransmission hold, if any.
    pub fn tcp_hold(&self) -> Option<TcpHold> {
        self.tcp_hold
    }

    /// Takes the retransmission hold (the recycle interception calls
    /// this exactly once per returning frame).
    pub fn take_tcp_hold(&mut self) -> Option<TcpHold> {
        self.tcp_hold.take()
    }

    // --- Scatter-gather chains ---------------------------------------

    /// Appends a fragment to this buffer's chain. The fragment's
    /// payload extends the chain payload; its headroom is dead space.
    ///
    /// # Panics
    ///
    /// Panics if `frag` itself has fragments (chains never nest).
    pub fn chain_append(&mut self, frag: Netbuf) {
        assert!(frag.frags.is_empty(), "chain fragments never nest");
        self.frags.push(frag);
    }

    /// Whether this buffer heads a chain.
    pub fn has_frags(&self) -> bool {
        !self.frags.is_empty()
    }

    /// Buffers in the chain (1 for an unchained buffer).
    pub fn frag_count(&self) -> usize {
        1 + self.frags.len()
    }

    /// Total payload bytes across the whole chain.
    pub fn chain_len(&self) -> usize {
        self.len + self.frags.iter().map(|f| f.len).sum::<usize>()
    }

    /// The chain payload as its contiguous extents, head first.
    pub fn chain_segments(&self) -> impl Iterator<Item = &[u8]> {
        std::iter::once(self.payload()).chain(self.frags.iter().map(|f| f.payload()))
    }

    /// Pops the last fragment off the chain (recycling walks the chain
    /// with this until `None`, returning each buffer to its pool; the
    /// fragment list's capacity stays with the head for reuse).
    pub fn pop_frag(&mut self) -> Option<Netbuf> {
        self.frags.pop()
    }

    /// Detaches every fragment into `out` in chain order, leaving the
    /// head flat. This is the receive-side flattening primitive: a
    /// big-receive chain is split into its extents so each buffer can
    /// be retained (queued on a socket) or recycled independently. The
    /// head keeps its fragment-list *capacity* — a pooled buffer
    /// flattened this way still builds chains allocation-free after
    /// recycling.
    pub fn take_frags_into(&mut self, out: &mut Vec<Netbuf>) {
        out.extend(self.frags.drain(..));
    }

    /// Allocates a standalone (heap) netbuf holding exactly `bytes`,
    /// with no headroom — the owned form of a borrowed payload extent
    /// (the slice-based TCP ingest path uses this to adapt to the
    /// buffer-owning receive queue).
    pub fn from_slice(bytes: &[u8]) -> Self {
        let mut nb = Netbuf::alloc(bytes.len(), 0);
        nb.set_payload(bytes);
        nb
    }

    /// Pre-reserves capacity for `n` chain fragments (pools call this
    /// once at construction so steady-state chain building never
    /// allocates).
    pub fn reserve_frags(&mut self, n: usize) {
        // ukcheck: allow(alloc) -- called once per buffer at pool construction
        self.frags.reserve(n);
    }

    /// Overwrites the whole storage with the sanitizer poison pattern.
    #[cfg(feature = "netbuf-sanitizer")]
    fn poison(&mut self) {
        self.data.fill(SANITIZER_POISON);
    }

    /// Whether the storage is still wall-to-wall poison.
    #[cfg(feature = "netbuf-sanitizer")]
    fn poison_intact(&self) -> bool {
        self.data.iter().all(|&b| b == SANITIZER_POISON)
    }
}

/// A fixed pool of pre-allocated netbufs.
///
/// "Performance critical workloads can make use of pre-allocated network
/// buffer pools, while memory efficient applications can reduce memory
/// footprint by allocating buffers from the standard heap" (§3.1).
///
/// In steady state buffers only *circulate*: taken for TX/RX, handed
/// through rings and sockets, and recycled with [`give_back`] — the
/// pool is the reason the datapath performs zero heap allocations per
/// packet.
///
/// [`give_back`]: NetbufPool::give_back
#[derive(Debug)]
pub struct NetbufPool {
    id: u64,
    bufs: Vec<Option<Netbuf>>,
    free: Vec<usize>,
    buf_cap: usize,
    headroom: usize,
    /// Fewest free buffers ever observed — the occupancy high-water
    /// mark is `capacity - low_water`. Plain integer math on the hot
    /// path; exported through the stats plane by the pool's owner.
    low_water: usize,
    /// Per-slot provenance (live/recycled state, last take/give-back
    /// sites). Only present with the `netbuf-sanitizer` feature.
    #[cfg(feature = "netbuf-sanitizer")]
    san: Vec<SlotSan>,
}

impl NetbufPool {
    /// Pre-allocates `count` buffers of `cap` bytes with `headroom`.
    pub fn new(count: usize, cap: usize, headroom: usize) -> Self {
        Self::with_chain_capacity(count, cap, headroom, 0)
    }

    /// Like [`new`](Self::new), but every buffer pre-reserves room for
    /// `chain_frags` scatter-gather fragments, so chain heads built
    /// from this pool never grow their fragment list on the hot path
    /// (the capacity survives recycling).
    // ukcheck: allow(alloc) -- pool construction is the one-time
    // pre-allocation that makes the per-frame path allocation-free
    pub fn with_chain_capacity(
        count: usize,
        cap: usize,
        headroom: usize,
        chain_frags: usize,
    ) -> Self {
        let id = NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed);
        let mut bufs = Vec::with_capacity(count);
        let mut free = Vec::with_capacity(count);
        for slot in 0..count {
            let mut nb = Netbuf::alloc(cap, headroom);
            nb.pool_slot = Some(slot);
            nb.pool_id = id;
            nb.reserve_frags(chain_frags);
            // Pool-resident storage is poison from birth, so the very
            // first take can already verify integrity.
            #[cfg(feature = "netbuf-sanitizer")]
            nb.poison();
            bufs.push(Some(nb));
            free.push(slot);
        }
        NetbufPool {
            id,
            bufs,
            free,
            buf_cap: cap,
            headroom,
            low_water: count,
            #[cfg(feature = "netbuf-sanitizer")]
            san: vec![SlotSan::default(); count],
        }
    }

    /// Takes a buffer from the pool, or `None` if exhausted.
    // ukcheck: allow(panic) -- the only panic inside is the sanitizer's
    // use-after-recycle report, compiled out of the default build
    #[cfg_attr(feature = "netbuf-sanitizer", track_caller)]
    pub fn take(&mut self) -> Option<Netbuf> {
        let slot = self.free.pop()?;
        self.low_water = self.low_water.min(self.free.len());
        let Some(mut nb) = self.bufs[slot].take() else {
            // The free list named a slot whose buffer is gone — the
            // pool's own bookkeeping is corrupt. Surface it in debug
            // builds; in release, treat the pool as exhausted rather
            // than bringing down the datapath.
            debug_assert!(false, "free list names an empty slot {slot}");
            return None;
        };
        #[cfg(feature = "netbuf-sanitizer")]
        {
            if !nb.poison_intact() {
                panic!(
                    "netbuf sanitizer: use-after-recycle on pool {} slot {slot}: \
                     storage was modified while the pool owned it \
                     (last give-back at {}, last take at {})",
                    self.id,
                    site(self.san[slot].last_give_back),
                    site(self.san[slot].last_take),
                );
            }
            self.san[slot].live = true;
            self.san[slot].last_take = Some(core::panic::Location::caller());
        }
        nb.reset(self.headroom);
        Some(nb)
    }

    /// Whether `nb` was allocated by this pool.
    pub fn owns(&self, nb: &Netbuf) -> bool {
        nb.pool_slot.is_some() && nb.pool_id == self.id
    }

    /// Returns a buffer to its slot. For a chain head, pop the
    /// fragments first (or use [`give_back_chain`](Self::give_back_chain)).
    ///
    /// # Panics
    ///
    /// Panics if the buffer is not from this pool, the slot is
    /// occupied, or the buffer still owns chain fragments.
    #[cfg_attr(feature = "netbuf-sanitizer", track_caller)]
    pub fn give_back(&mut self, nb: Netbuf) {
        // ukcheck: allow(panic) -- documented API contract: recycling a heap
        // buffer or a forged/duplicate slot is a caller bug the pool must
        // refuse loudly, not absorb.
        let slot = nb.pool_slot.expect("netbuf is not pooled");
        #[cfg(feature = "netbuf-sanitizer")]
        {
            if nb.pool_id != self.id {
                // ukcheck: allow(panic) -- the sanitizer exists to turn
                // ownership violations into immediate loud failures
                panic!(
                    "netbuf sanitizer: cross-pool give-back: buffer from pool {} \
                     (slot {slot}) returned to pool {}",
                    nb.pool_id, self.id,
                );
            }
            if slot >= self.san.len() || !self.san[slot].live {
                // ukcheck: allow(panic) -- the sanitizer exists to turn
                // ownership violations into immediate loud failures
                panic!(
                    "netbuf sanitizer: double-recycle of pool {} slot {slot}: \
                     slot is not live (previous give-back at {}, take at {})",
                    self.id,
                    site(self.san.get(slot).and_then(|s| s.last_give_back)),
                    site(self.san.get(slot).and_then(|s| s.last_take)),
                );
            }
        }
        assert!(nb.pool_id == self.id, "netbuf belongs to another pool");
        assert!(nb.frags.is_empty(), "give_back with live chain fragments");
        assert!(self.bufs[slot].is_none(), "double give_back for slot {slot}");
        #[cfg(feature = "netbuf-sanitizer")]
        let nb = {
            let mut nb = nb;
            nb.poison();
            self.san[slot].live = false;
            self.san[slot].last_give_back = Some(core::panic::Location::caller());
            nb
        };
        self.bufs[slot] = Some(nb);
        self.free.push(slot);
    }

    /// Returns a whole chain to this pool: every fragment and then the
    /// head. Fragments not owned by this pool (heap buffers, foreign
    /// pools) are dropped — except under the `netbuf-sanitizer`
    /// feature, where silently dropping a *pooled* foreign fragment is
    /// reported as a cross-pool give-back (it would surface later as a
    /// leak in the owning pool anyway; the sanitizer names the site).
    #[cfg_attr(feature = "netbuf-sanitizer", track_caller)]
    pub fn give_back_chain(&mut self, mut nb: Netbuf) {
        while let Some(frag) = nb.pop_frag() {
            if self.owns(&frag) {
                self.give_back(frag);
            } else {
                #[cfg(feature = "netbuf-sanitizer")]
                if frag.is_pooled() {
                    // ukcheck: allow(panic) -- the sanitizer exists to turn
                    // ownership violations into immediate loud failures
                    panic!(
                        "netbuf sanitizer: cross-pool give-back via chain: \
                         fragment from pool {} dropped into pool {}",
                        frag.pool_id, self.id,
                    );
                }
            }
        }
        if self.owns(&nb) {
            self.give_back(nb);
        } else {
            #[cfg(feature = "netbuf-sanitizer")]
            if nb.is_pooled() {
                // ukcheck: allow(panic) -- the sanitizer exists to turn
                // ownership violations into immediate loud failures
                panic!(
                    "netbuf sanitizer: cross-pool give-back via chain: head \
                     from pool {} dropped into pool {}",
                    nb.pool_id, self.id,
                );
            }
        }
    }

    /// Buffers currently available.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Total buffers in the pool.
    pub fn capacity(&self) -> usize {
        self.bufs.len()
    }

    /// Per-buffer storage size.
    pub fn buf_capacity(&self) -> usize {
        self.buf_cap
    }

    /// Fewest free buffers ever observed; `capacity() - low_water()` is
    /// the pool-occupancy high-water mark.
    pub fn low_water(&self) -> usize {
        self.low_water
    }

    /// The headroom buffers are reset to on `take`.
    pub fn headroom(&self) -> usize {
        self.headroom
    }

    /// End-of-test leak check: panics if any buffer is still out,
    /// naming each leaked slot and the call site that took it. Only
    /// present with the `netbuf-sanitizer` feature — call it after the
    /// datapath has quiesced and every buffer should be home.
    // ukcheck: allow(alloc) -- sanitizer-only diagnostic rendering,
    // compiled out of the default build
    // ukcheck: allow(panic) -- the sanitizer exists to fail loudly
    #[cfg(feature = "netbuf-sanitizer")]
    pub fn sanitize_assert_all_returned(&self) {
        let leaked: Vec<String> = self
            .san
            .iter()
            .enumerate()
            .filter(|(_, s)| s.live)
            .map(|(slot, s)| format!("slot {slot} (taken at {})", site(s.last_take)))
            .collect();
        if !leaked.is_empty() {
            // ukcheck: allow(panic) -- the sanitizer exists to turn
            // ownership violations into immediate loud failures
            panic!(
                "netbuf sanitizer: {} buffer(s) leaked from pool {}: {}",
                leaked.len(),
                self.id,
                leaked.join(", "),
            );
        }
    }

    /// How many buffers the sanitizer currently tracks as live (out in
    /// the datapath). Only present with the `netbuf-sanitizer` feature.
    #[cfg(feature = "netbuf-sanitizer")]
    pub fn sanitize_live_count(&self) -> usize {
        self.san.iter().filter(|s| s.live).count()
    }
}

/// Renders an optional sanitizer call site for a panic message.
// ukcheck: allow(alloc) -- sanitizer-only diagnostic rendering, compiled
// out of the default build
#[cfg(feature = "netbuf-sanitizer")]
fn site(loc: Option<&'static core::panic::Location<'static>>) -> String {
    match loc {
        Some(l) => format!("{}:{}:{}", l.file(), l.line(), l.column()),
        None => "<never>".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_read_payload() {
        let mut nb = Netbuf::alloc(256, 64);
        nb.set_payload(b"hello");
        assert_eq!(nb.payload(), b"hello");
        assert_eq!(nb.len(), 5);
        assert_eq!(nb.headroom(), 64);
        assert_eq!(nb.tailroom(), 256 - 64 - 5);
    }

    #[test]
    fn append_extends_payload_in_tailroom() {
        let mut nb = Netbuf::alloc(64, 16);
        nb.append(b"abc");
        nb.append(b"def");
        assert_eq!(nb.payload(), b"abcdef");
        assert_eq!(nb.headroom(), 16, "headroom untouched by appends");
    }

    #[test]
    #[should_panic(expected = "insufficient tailroom")]
    fn append_beyond_tailroom_panics() {
        let mut nb = Netbuf::alloc(8, 4);
        nb.append(b"too-long-payload");
    }

    #[test]
    fn header_push_pull_roundtrip() {
        let mut nb = Netbuf::alloc(256, 64);
        nb.set_payload(b"payload");
        nb.push_header(b"HDR!");
        assert_eq!(nb.payload(), b"HDR!payload");
        assert_eq!(nb.headroom(), 60);
        nb.pull_header(4);
        assert_eq!(nb.payload(), b"payload");
    }

    #[test]
    fn push_header_uninit_exposes_new_front() {
        let mut nb = Netbuf::alloc(64, 8);
        nb.set_payload(b"data");
        let hdr = nb.push_header_uninit(2);
        hdr.copy_from_slice(b"ab");
        assert_eq!(nb.payload(), b"abdata");
    }

    #[test]
    fn truncate_drops_tail_only() {
        let mut nb = Netbuf::alloc(64, 0);
        nb.set_payload(b"frame+padding");
        nb.truncate(5);
        assert_eq!(nb.payload(), b"frame");
        nb.truncate(100); // never grows
        assert_eq!(nb.len(), 5);
    }

    #[test]
    #[should_panic(expected = "insufficient headroom")]
    fn push_beyond_headroom_panics() {
        let mut nb = Netbuf::alloc(64, 2);
        nb.set_payload(b"x");
        nb.push_header(b"too-long-header");
    }

    #[test]
    fn pool_take_and_give_back() {
        let mut pool = NetbufPool::new(4, 2048, 64);
        assert_eq!(pool.available(), 4);
        let a = pool.take().unwrap();
        let b = pool.take().unwrap();
        assert_eq!(pool.available(), 2);
        assert!(pool.owns(&a));
        pool.give_back(a);
        pool.give_back(b);
        assert_eq!(pool.available(), 4);
    }

    #[test]
    fn pool_exhaustion_returns_none() {
        let mut pool = NetbufPool::new(1, 128, 0);
        let a = pool.take().unwrap();
        assert!(pool.take().is_none());
        pool.give_back(a);
        assert!(pool.take().is_some());
    }

    #[test]
    fn pooled_buffer_resets_on_take() {
        let mut pool = NetbufPool::new(1, 128, 32);
        let mut a = pool.take().unwrap();
        a.set_payload(b"dirty");
        a.pull_header(2);
        pool.give_back(a);
        let b = pool.take().unwrap();
        assert_eq!(b.len(), 0);
        assert_eq!(b.headroom(), 32);
    }

    #[test]
    fn foreign_pool_buffers_are_not_owned() {
        let mut p1 = NetbufPool::new(1, 128, 0);
        let mut p2 = NetbufPool::new(1, 128, 0);
        let a = p1.take().unwrap();
        assert!(!p2.owns(&a));
        assert!(!p1.owns(&Netbuf::alloc(64, 0)), "heap buffers unowned");
        p1.give_back(a);
        let _ = p2.take();
    }

    // The sanitizer intercepts ownership violations before the plain
    // asserts and reports with provenance, so the expected panic
    // message differs per feature mode.
    #[test]
    #[cfg_attr(not(feature = "netbuf-sanitizer"), should_panic(expected = "another pool"))]
    #[cfg_attr(feature = "netbuf-sanitizer", should_panic(expected = "cross-pool give-back"))]
    fn cross_pool_give_back_panics() {
        let mut p1 = NetbufPool::new(1, 128, 0);
        let mut p2 = NetbufPool::new(1, 128, 0);
        let a = p1.take().unwrap();
        p2.give_back(a);
    }

    #[test]
    fn chain_append_and_len_and_segments() {
        let mut head = Netbuf::alloc(128, 32);
        head.set_payload(b"head");
        let mut f1 = Netbuf::alloc(64, 0);
        f1.set_payload(b"-mid-");
        let mut f2 = Netbuf::alloc(64, 0);
        f2.set_payload(b"tail");
        head.chain_append(f1);
        head.chain_append(f2);
        assert_eq!(head.frag_count(), 3);
        assert!(head.has_frags());
        assert_eq!(head.len(), 4, "len stays the head's extent");
        assert_eq!(head.chain_len(), 13);
        let all: Vec<u8> = head.chain_segments().flatten().copied().collect();
        assert_eq!(all, b"head-mid-tail");
    }

    #[test]
    #[should_panic(expected = "never nest")]
    fn nested_chains_panic() {
        let mut inner = Netbuf::alloc(64, 0);
        inner.chain_append(Netbuf::alloc(64, 0));
        let mut head = Netbuf::alloc(64, 0);
        head.chain_append(inner);
    }

    #[test]
    fn chain_recycles_whole_to_owning_pool() {
        let mut pool = NetbufPool::with_chain_capacity(4, 128, 16, 4);
        let mut head = pool.take().unwrap();
        head.chain_append(pool.take().unwrap());
        head.chain_append(pool.take().unwrap());
        assert_eq!(pool.available(), 1);
        pool.give_back_chain(head);
        assert_eq!(pool.available(), 4, "head and every fragment returned");
    }

    #[test]
    fn take_frags_into_flattens_in_order_and_keeps_capacity() {
        let mut pool = NetbufPool::with_chain_capacity(4, 128, 16, 4);
        let mut head = pool.take().unwrap();
        head.set_payload(b"head");
        let mut f1 = pool.take().unwrap();
        f1.set_payload(b"one");
        let mut f2 = pool.take().unwrap();
        f2.set_payload(b"two");
        head.chain_append(f1);
        head.chain_append(f2);
        let mut out = Vec::new();
        head.take_frags_into(&mut out);
        assert!(!head.has_frags(), "head flat after detach");
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].payload(), b"one", "chain order preserved");
        assert_eq!(out[1].payload(), b"two");
        // The head's reserved fragment capacity survives the detach
        // (steady-state chain building stays allocation-free).
        assert!(head.frags.capacity() >= 4);
        for nb in out {
            pool.give_back(nb);
        }
        pool.give_back(head);
        assert_eq!(pool.available(), 4);
    }

    #[test]
    fn from_slice_wraps_bytes_with_no_headroom() {
        let nb = Netbuf::from_slice(b"exact bytes");
        assert_eq!(nb.payload(), b"exact bytes");
        assert_eq!(nb.headroom(), 0);
        assert_eq!(nb.tailroom(), 0);
        assert!(Netbuf::from_slice(&[]).is_empty());
    }

    #[test]
    fn gso_request_rides_and_is_taken() {
        let mut nb = Netbuf::alloc(128, 0);
        nb.set_payload(b"data");
        assert!(nb.gso_request().is_none());
        nb.request_gso(1460);
        assert_eq!(nb.gso_request(), Some(GsoRequest { mss: 1460 }));
        assert_eq!(nb.take_gso_request(), Some(GsoRequest { mss: 1460 }));
        assert!(nb.gso_request().is_none());
    }

    #[test]
    fn reset_clears_gso_and_verified_mark() {
        let mut nb = Netbuf::alloc(128, 16);
        nb.set_payload(b"x");
        nb.request_gso(100);
        nb.mark_csum_verified();
        nb.reset(16);
        assert!(nb.gso_request().is_none());
        assert!(!nb.csum_verified());
    }

    #[test]
    #[cfg_attr(not(feature = "netbuf-sanitizer"), should_panic(expected = "double give_back"))]
    #[cfg_attr(feature = "netbuf-sanitizer", should_panic(expected = "double-recycle"))]
    fn double_give_back_panics() {
        let mut pool = NetbufPool::new(2, 128, 0);
        let a = pool.take().unwrap();
        let slot = a.pool_slot().unwrap();
        // Forge a second buffer claiming the same slot.
        let mut forged = Netbuf::alloc(128, 0);
        forged.pool_slot = Some(slot);
        forged.pool_id = a.pool_id;
        pool.give_back(a);
        pool.give_back(forged);
    }

    /// Seeded use-after-recycle: a stale pointer writes into pool-owned
    /// storage after give-back; the next take must catch the broken
    /// poison and name both provenance sites.
    #[test]
    #[cfg(feature = "netbuf-sanitizer")]
    #[should_panic(expected = "use-after-recycle")]
    fn sanitizer_catches_use_after_recycle() {
        let mut pool = NetbufPool::new(1, 128, 0);
        let mut nb = pool.take().unwrap();
        nb.append(&[1, 2, 3, 4]);
        let stale = nb.payload_mut().as_mut_ptr();
        pool.give_back(nb);
        // SAFETY: deliberately unsound — this models a datapath bug
        // (writing through a reference that outlived the recycle). The
        // storage itself is still alive inside the pool, so the write
        // lands in valid memory; the sanitizer must detect it.
        unsafe { stale.write(0xFF) };
        let _ = pool.take();
    }

    /// Clean recycling leaves the poison intact: the same slot can
    /// cycle repeatedly without tripping the use-after-recycle check.
    #[test]
    #[cfg(feature = "netbuf-sanitizer")]
    fn sanitizer_passes_clean_cycles() {
        let mut pool = NetbufPool::new(1, 128, 0);
        for round in 0..8u8 {
            let mut nb = pool.take().unwrap();
            nb.append(&[round; 16]);
            pool.give_back(nb);
        }
        assert_eq!(pool.sanitize_live_count(), 0);
        pool.sanitize_assert_all_returned();
    }

    /// Seeded double-recycle through the *forged-slot* route: the slot
    /// is marked dead by the first give-back, so the sanitizer fires
    /// before the plain slot-occupancy assert can.
    #[test]
    #[cfg(feature = "netbuf-sanitizer")]
    #[should_panic(expected = "double-recycle")]
    fn sanitizer_names_double_recycle() {
        let mut pool = NetbufPool::new(2, 128, 0);
        let a = pool.take().unwrap();
        let slot = a.pool_slot().unwrap();
        let mut forged = Netbuf::alloc(128, 0);
        forged.pool_slot = Some(slot);
        forged.pool_id = a.pool_id;
        pool.give_back(a);
        pool.give_back(forged);
    }
}
