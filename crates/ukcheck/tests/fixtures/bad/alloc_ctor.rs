// Known-bad: heap constructor on the hot path, no escape.
pub fn stage() -> Vec<u8> {
    let staged = Vec::new();
    staged
}
