//! Property-based tests for the packet codecs and the TCP machine.

use proptest::prelude::*;

use uknetstack::arp::{ArpOp, ArpPacket};
use uknetstack::eth::{EthHeader, EtherType};
use uknetstack::ipv4::{IpProto, Ipv4Header};
use uknetstack::tcp::{
    Tcb, TcpFlags, TcpHeader, TcpOptions, TcpState, MAX_SACK_BLOCKS, SACK_PERMITTED_OPT,
    TCP_MAX_OPT_LEN,
};
use uknetstack::udp::UdpHeader;
use uknetstack::{inet_checksum, Ipv4Addr, Mac};

fn arb_mac() -> impl Strategy<Value = Mac> {
    proptest::array::uniform6(any::<u8>()).prop_map(Mac)
}

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr)
}

proptest! {
    /// Ethernet encode/decode is the identity on headers + payload.
    #[test]
    fn eth_roundtrip(dst in arb_mac(), src in arb_mac(), ipv4 in any::<bool>(),
                     payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let h = EthHeader {
            dst,
            src,
            ethertype: if ipv4 { EtherType::Ipv4 } else { EtherType::Arp },
        };
        let mut frame = h.encode().to_vec();
        frame.extend_from_slice(&payload);
        let (h2, p2) = EthHeader::decode(&frame).unwrap();
        prop_assert_eq!(h, h2);
        prop_assert_eq!(p2, &payload[..]);
    }

    /// ARP encode/decode is the identity.
    #[test]
    fn arp_roundtrip(sha in arb_mac(), tha in arb_mac(),
                     spa in arb_ip(), tpa in arb_ip(), req in any::<bool>()) {
        let p = ArpPacket {
            op: if req { ArpOp::Request } else { ArpOp::Reply },
            sha, spa, tha, tpa,
        };
        prop_assert_eq!(ArpPacket::decode(&p.encode()).unwrap(), p);
    }

    /// IPv4 headers verify and roundtrip; any single-byte corruption of
    /// the header is caught by the checksum.
    #[test]
    fn ipv4_roundtrip_and_corruption(
        src in arb_ip(), dst in arb_ip(), ttl in 1u8..255,
        payload in proptest::collection::vec(any::<u8>(), 0..128),
        flip_byte in 0usize..20, flip_bits in 1u8..255,
    ) {
        let h = Ipv4Header {
            src, dst,
            proto: IpProto::Udp,
            payload_len: payload.len(),
            ttl,
        };
        let mut pkt = h.encode().to_vec();
        pkt.extend_from_slice(&payload);
        let (h2, p2) = Ipv4Header::decode(&pkt).unwrap();
        prop_assert_eq!(h, h2);
        prop_assert_eq!(p2, &payload[..]);
        // Corrupt one header byte.
        pkt[flip_byte] ^= flip_bits;
        prop_assert!(Ipv4Header::decode(&pkt).is_err());
    }

    /// UDP datagrams roundtrip; payload corruption is detected.
    #[test]
    fn udp_roundtrip_and_corruption(
        sp in 1u16..u16::MAX, dp in 1u16..u16::MAX,
        payload in proptest::collection::vec(any::<u8>(), 1..200),
        flip in any::<u8>(),
    ) {
        let ip = Ipv4Header {
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(10, 0, 0, 2),
            proto: IpProto::Udp,
            payload_len: 8 + payload.len(),
            ttl: 64,
        };
        let h = UdpHeader { src_port: sp, dst_port: dp };
        let dgram = h.encode(&ip, &payload);
        let (h2, p2) = UdpHeader::decode(&ip, &dgram).unwrap();
        prop_assert_eq!(h, h2);
        prop_assert_eq!(p2, &payload[..]);
        if flip != 0 {
            let mut bad = dgram.clone();
            let idx = 8 + (flip as usize % payload.len());
            bad[idx] ^= flip;
            prop_assert!(UdpHeader::decode(&ip, &bad).is_err());
        }
    }

    /// Checksum of data + its checksum is always zero.
    #[test]
    fn checksum_self_verifies(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        // Pad to even length: the trailing-byte rule makes appending the
        // checksum after an odd payload shift the fold.
        let mut data = data;
        if data.len() % 2 == 1 {
            data.push(0);
        }
        let ck = inet_checksum(&data, 0);
        data.extend_from_slice(&ck.to_be_bytes());
        prop_assert_eq!(inet_checksum(&data, 0), 0);
    }

    /// Arbitrary bytes never panic the decoders.
    #[test]
    fn decoders_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = EthHeader::decode(&bytes);
        let _ = ArpPacket::decode(&bytes);
        let _ = Ipv4Header::decode(&bytes);
        let ip = Ipv4Header {
            src: Ipv4Addr::new(1, 1, 1, 1),
            dst: Ipv4Addr::new(2, 2, 2, 2),
            proto: IpProto::Tcp,
            payload_len: bytes.len(),
            ttl: 64,
        };
        let _ = UdpHeader::decode(&ip, &bytes);
        let _ = TcpHeader::decode(&ip, &bytes);
    }

    /// TCP data transfer preserves arbitrary byte streams across
    /// handshake, segmentation and reassembly, in both directions.
    #[test]
    fn tcp_stream_integrity(
        c2s in proptest::collection::vec(any::<u8>(), 0..8000),
        s2c in proptest::collection::vec(any::<u8>(), 0..8000),
    ) {
        let mut server = Tcb::listen(80);
        let mut client = Tcb::connect(5000, 80, 7);
        pump(&mut client, &mut server);
        prop_assert_eq!(client.state, TcpState::Established);
        client.app_send(&c2s).unwrap();
        server.app_send(&s2c).unwrap();
        pump(&mut client, &mut server);
        prop_assert_eq!(server.app_recv(usize::MAX), c2s);
        prop_assert_eq!(client.app_recv(usize::MAX), s2c);
        // Orderly close still works afterwards.
        client.app_close();
        pump(&mut client, &mut server);
        server.app_close();
        pump(&mut client, &mut server);
        prop_assert_eq!(client.state, TcpState::Closed);
        prop_assert_eq!(server.state, TcpState::Closed);
    }

    /// A TCB never panics on arbitrary incoming segments.
    #[test]
    fn tcb_tolerates_garbage_segments(
        seq in any::<u32>(), ack in any::<u32>(), flags_bits in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        established in any::<bool>(),
    ) {
        let mut tcb = if established {
            let mut server = Tcb::listen(80);
            let mut client = Tcb::connect(5000, 80, 1);
            pump(&mut client, &mut server);
            server
        } else {
            Tcb::listen(80)
        };
        let h = TcpHeader {
            src_port: 5000,
            dst_port: 80,
            seq,
            ack,
            flags: TcpFlags {
                syn: flags_bits & 1 != 0,
                ack: flags_bits & 2 != 0,
                fin: flags_bits & 4 != 0,
                rst: flags_bits & 8 != 0,
                psh: flags_bits & 16 != 0,
            },
            window: 65535,
        };
        tcb.on_segment(&h, &payload);
        let _ = tcb.poll_output();
    }
}

// --- encode_into ≡ encode (headroom path vs. reference codec) --------
//
// The zero-copy datapath prepends headers into a pooled netbuf's
// headroom (`encode_into`); the `encode()` methods remain as the
// reference serialization. For every protocol and any payload up to
// MTU size, the two must produce byte-identical packets.

/// A netbuf with the payload appended behind standard TX headroom.
fn nb_with_payload(payload: &[u8]) -> uknetdev::netbuf::Netbuf {
    let mut nb = uknetdev::netbuf::Netbuf::alloc(2048, 64);
    nb.append(payload);
    nb
}

proptest! {
    /// Ethernet: headroom path matches `encode()` + payload concat.
    #[test]
    fn eth_encode_into_matches_encode(
        dst in arb_mac(), src in arb_mac(), ipv4 in any::<bool>(),
        payload in proptest::collection::vec(any::<u8>(), 0..1486),
    ) {
        let h = EthHeader {
            dst,
            src,
            ethertype: if ipv4 { EtherType::Ipv4 } else { EtherType::Arp },
        };
        let mut reference = h.encode().to_vec();
        reference.extend_from_slice(&payload);
        let mut nb = nb_with_payload(&payload);
        h.encode_into(&mut nb);
        prop_assert_eq!(nb.payload(), &reference[..]);
    }

    /// IPv4: headroom path matches `encode()` + payload concat.
    #[test]
    fn ipv4_encode_into_matches_encode(
        src in arb_ip(), dst in arb_ip(), ttl in 1u8..255,
        payload in proptest::collection::vec(any::<u8>(), 0..1480),
    ) {
        let h = Ipv4Header {
            src, dst,
            proto: IpProto::Udp,
            payload_len: payload.len(),
            ttl,
        };
        let mut reference = h.encode().to_vec();
        reference.extend_from_slice(&payload);
        let mut nb = nb_with_payload(&payload);
        h.encode_into(&mut nb);
        prop_assert_eq!(nb.payload(), &reference[..]);
    }

    /// UDP: headroom path matches the reference datagram (checksum
    /// included, zero-checksum substitution included).
    #[test]
    fn udp_encode_into_matches_encode(
        sp in 1u16..u16::MAX, dp in 1u16..u16::MAX,
        src in arb_ip(), dst in arb_ip(),
        payload in proptest::collection::vec(any::<u8>(), 0..1472),
    ) {
        let h = UdpHeader { src_port: sp, dst_port: dp };
        let ip = Ipv4Header {
            src, dst,
            proto: IpProto::Udp,
            payload_len: 8 + payload.len(),
            ttl: 64,
        };
        let reference = h.encode(&ip, &payload);
        let mut nb = nb_with_payload(&payload);
        h.encode_into(&ip, &mut nb);
        prop_assert_eq!(nb.payload(), &reference[..]);
    }

    /// TCP: headroom path matches the reference segment.
    #[test]
    fn tcp_encode_into_matches_encode(
        sp in 1u16..u16::MAX, dp in 1u16..u16::MAX,
        seq in any::<u32>(), ack in any::<u32>(),
        flags_bits in any::<u8>(), window in any::<u16>(),
        src in arb_ip(), dst in arb_ip(),
        payload in proptest::collection::vec(any::<u8>(), 0..1460),
    ) {
        let h = TcpHeader {
            src_port: sp,
            dst_port: dp,
            seq,
            ack,
            flags: TcpFlags {
                syn: flags_bits & 1 != 0,
                ack: flags_bits & 2 != 0,
                fin: flags_bits & 4 != 0,
                rst: flags_bits & 8 != 0,
                psh: flags_bits & 16 != 0,
            },
            window,
        };
        let ip = Ipv4Header {
            src, dst,
            proto: IpProto::Tcp,
            payload_len: 20 + payload.len(),
            ttl: 64,
        };
        let reference = h.encode(&ip, &payload);
        let mut nb = nb_with_payload(&payload);
        h.encode_into(&ip, &mut nb);
        prop_assert_eq!(nb.payload(), &reference[..]);
    }

    /// ICMP echo: headroom path matches the reference message.
    #[test]
    fn icmp_encode_into_matches_encode(
        request in any::<bool>(), ident in any::<u16>(), seq in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..1472),
    ) {
        let e = uknetstack::icmp::IcmpEcho {
            request,
            ident,
            seq,
            payload: payload.clone(),
        };
        let reference = e.encode();
        let mut nb = nb_with_payload(&payload);
        uknetstack::icmp::encode_echo_into(request, ident, seq, &mut nb);
        prop_assert_eq!(nb.payload(), &reference[..]);
    }
}

// --- burst datapath properties ---------------------------------------

/// The textbook byte-pair reference implementation of RFC 1071 (the
/// shape the stack used before the one-pass wide-load rewrite), with a
/// 64-bit accumulator so an extreme seed cannot drop an end-around
/// carry the way the old u32 form silently would.
fn naive_checksum(data: &[u8], initial: u32) -> u16 {
    let mut sum = u64::from(initial);
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u64::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u64::from(u16::from_be_bytes([*last, 0]));
    }
    let mut sum = (sum & 0xffff) + (sum >> 16);
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

proptest! {
    /// The optimized one-pass unrolled `inet_checksum` is bit-identical
    /// to the naive reference over arbitrary lengths, alignments (the
    /// slice starts at any offset into the buffer) and pseudo-header
    /// seeds.
    #[test]
    fn inet_checksum_matches_naive_reference(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        offset in 0usize..64,
        seed in any::<u32>(),
    ) {
        let off = offset.min(data.len());
        let slice = &data[off..];
        prop_assert_eq!(inet_checksum(slice, seed), naive_checksum(slice, seed));
    }

    /// Device-completed checksum offload produces wire frames the
    /// software decoders accept, for any payload: `encode_into_partial`
    /// stamps the folded pseudo-header sum, the virtio model completes
    /// it at `tx_burst`, and the standard checksum-verifying decode
    /// recovers the exact payload.
    #[test]
    fn offloaded_udp_checksum_completes_to_a_valid_datagram(
        sp in 1u16..u16::MAX, dp in 1u16..u16::MAX,
        payload in proptest::collection::vec(any::<u8>(), 0..1400),
    ) {
        use uknetdev::backend::VhostKind;
        use uknetdev::dev::{NetDev, NetDevConf};
        use uknetdev::VirtioNet;
        use ukplat::time::Tsc;

        let ip = Ipv4Header {
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(10, 0, 0, 2),
            proto: IpProto::Udp,
            payload_len: 8 + payload.len(),
            ttl: 64,
        };
        let h = UdpHeader { src_port: sp, dst_port: dp };
        let mut nb = nb_with_payload(&payload);
        h.encode_into_partial(&ip, &mut nb);
        prop_assert!(nb.csum_request().is_some(), "request attached");
        ip.encode_into(&mut nb);
        EthHeader {
            dst: Mac::node(2),
            src: Mac::node(1),
            ethertype: EtherType::Ipv4,
        }
        .encode_into(&mut nb);

        // The device completes the checksum as the frame crosses.
        let tsc = Tsc::new(3_600_000_000);
        let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
        dev.configure(NetDevConf::default()).unwrap();
        let mut burst = vec![nb];
        dev.tx_burst(0, &mut burst).unwrap();
        let mut done = Vec::new();
        dev.reclaim_tx(0, &mut done).unwrap();
        let frame = done.pop().expect("frame completed");
        prop_assert!(frame.csum_request().is_none(), "request serviced");

        // The ordinary verifying decode path accepts the result.
        let (eh, ip_pkt) = EthHeader::decode(frame.payload()).unwrap();
        prop_assert_eq!(eh.ethertype, EtherType::Ipv4);
        let (ih, dgram) = Ipv4Header::decode(ip_pkt).unwrap();
        let (h2, p2) = UdpHeader::decode(&ih, dgram).unwrap();
        prop_assert_eq!(h, h2);
        prop_assert_eq!(p2, &payload[..]);
    }

    /// Burst UDP send/recv round-trips arbitrary datagram batches
    /// losslessly (sizes, contents, count and order all preserved),
    /// with checksum offload on or off.
    #[test]
    fn udp_burst_round_trips_arbitrary_batches(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..900), 1..13),
        offload in any::<bool>(),
    ) {
        use uknetdev::backend::VhostKind;
        use uknetdev::dev::{NetDev, NetDevConf};
        use uknetdev::VirtioNet;
        use uknetstack::stack::{NetStack, StackConfig};
        use uknetstack::testnet::Network;
        use uknetstack::Endpoint;
        use ukplat::time::Tsc;

        let mk = |n: u8| {
            let tsc = Tsc::new(3_600_000_000);
            let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
            dev.configure(NetDevConf::default()).unwrap();
            let mut cfg = StackConfig::node(n);
            cfg.tx_csum_offload = offload;
            NetStack::new(cfg, Box::new(dev))
        };
        let mut net = Network::new();
        let ci = net.attach(mk(1));
        let si = net.attach(mk(2));
        let ss = net.stack(si).udp_bind(7).unwrap();
        let cs = net.stack(ci).udp_bind(5000).unwrap();
        let ep = Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 7);

        // Batches stay under the ARP parking cap, so the unresolved
        // first burst parks whole and releases whole.
        let sent = net
            .stack(ci)
            .udp_send_burst(cs, payloads.iter().map(|p| (&p[..], ep)))
            .unwrap();
        prop_assert_eq!(sent, payloads.len());
        net.run_until_quiet(32);

        let mut buf = vec![0u8; payloads.len() * 2048];
        let mut msgs = Vec::new();
        let n = net.stack(si).udp_recv_burst_into(ss, &mut buf, &mut msgs, 64);
        prop_assert_eq!(n, payloads.len(), "no datagram lost or duplicated");
        let mut off = 0;
        for (i, &(from, len)) in msgs.iter().enumerate() {
            prop_assert_eq!(from.addr, Ipv4Addr::new(10, 0, 0, 1));
            prop_assert_eq!(&buf[off..off + len], &payloads[i][..], "datagram {} intact", i);
            off += len;
        }
    }
}

// --- TSO device cutting ≡ software per-MSS segmentation --------------

/// Runs one bulk client→server transfer (plus teardown) over a fresh
/// two-node net and returns every wire frame delivered, in order —
/// post-TSO-cut, i.e. exactly the frames the receiver's RX ring saw.
/// `drain` bytes are read per step, so small values squeeze the
/// receive window and force super-segments to split at window edges.
///
/// The receiver runs with RX checksum offload *off*, which (per the
/// virtio feature rules) also disables big receive — so the host-side
/// cutter must produce complete per-MSS frames with valid checksums,
/// and those are what the capture compares against the software path.
fn bulk_wire_frames(tso: bool, mss: usize, data: &[u8], drain: usize) -> Vec<Vec<u8>> {
    use uknetdev::backend::VhostKind;
    use uknetdev::dev::{NetDev, NetDevConf};
    use uknetdev::VirtioNet;
    use uknetstack::stack::{NetStack, StackConfig};
    use uknetstack::testnet::Network;
    use uknetstack::Endpoint;
    use ukplat::time::Tsc;

    let mk = |n: u8| {
        let tsc = Tsc::new(3_600_000_000);
        let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
        dev.configure(NetDevConf::default()).unwrap();
        let mut cfg = StackConfig::node(n);
        cfg.tso = tso;
        cfg.mss = mss;
        // Full software verification on receive: forces the host-side
        // MSS cut (no big receive) and checks every cut checksum.
        cfg.rx_csum_offload = false;
        NetStack::new(cfg, Box::new(dev))
    };
    let mut net = Network::new();
    let ci = net.attach(mk(1));
    let si = net.attach(mk(2));
    assert_eq!(net.stack(ci).tso(), tso);
    let listener = net.stack(si).tcp_listen(80).unwrap();
    let client = net
        .stack(ci)
        .tcp_connect(Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 80))
        .unwrap();
    net.run_until_quiet(32);
    let conn = net.stack(si).tcp_accept(listener).unwrap();

    net.start_wire_capture();
    let mut buf = vec![0u8; 64 * 1024];
    let mut sent = 0;
    let mut got: Vec<u8> = Vec::with_capacity(data.len());
    for _ in 0..20_000 {
        if sent < data.len() {
            let n = net
                .stack(ci)
                .tcp_send_queued(client, &data[sent..])
                .unwrap_or(0);
            sent += n;
            net.stack(ci).flush_output().unwrap();
        }
        net.step();
        let room = drain.min(buf.len());
        let n = net.stack(si).tcp_recv_into(conn, &mut buf[..room]).unwrap();
        got.extend_from_slice(&buf[..n]);
        if sent == data.len() && got.len() == data.len() {
            break;
        }
    }
    assert_eq!(got.len(), data.len(), "transfer completed (tso={tso})");
    assert_eq!(got, data, "stream intact (tso={tso})");
    // Teardown rides the capture too: FIN ordering behind queued data
    // must also be identical.
    net.stack(ci).tcp_close(client).unwrap();
    net.run_until_quiet(64);
    net.take_wire_capture()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// TSO device cutting ≡ software segmentation: for arbitrary
    /// payload sizes, MSS values and window states (the receiver
    /// drains in arbitrary-size chunks, squeezing the window so
    /// super-segments split mid-cut), the sequence of frames on the
    /// wire — data, ACKs and teardown, both directions — is
    /// **byte-identical** between `tso = on` (the stack emits GSO
    /// super-segment chains, the host cuts) and `tso = off` (the
    /// stack cuts per-MSS in software).
    #[test]
    fn tso_framing_is_byte_identical_to_software_segmentation(
        len in 1usize..100_000,
        mss in 300usize..1461,
        drain in 500usize..65_536,
        seed in any::<u8>(),
    ) {
        let data: Vec<u8> = (0..len)
            .map(|i| ((i as u32).wrapping_mul(31).wrapping_add(seed as u32) % 251) as u8)
            .collect();
        let hw = bulk_wire_frames(true, mss, &data, drain);
        let sw = bulk_wire_frames(false, mss, &data, drain);
        prop_assert_eq!(
            hw.len(),
            sw.len(),
            "same wire frame count (mss={}, len={}, drain={})",
            mss, len, drain
        );
        for (i, (a, b)) in hw.iter().zip(sw.iter()).enumerate() {
            prop_assert_eq!(a, b, "wire frame {} differs (mss={}, len={})", i, mss, len);
        }
    }
}

// --- GRO coalescing ≡ per-segment delivery ---------------------------

/// Runs one bulk client→server transfer over a per-MSS (non-TSO)
/// sender and returns `(received stream, wire frames)` — the receiver
/// either GRO-coalesces consecutive segments before ingest or takes
/// them one at a time. `drain` bytes are read per step, so small
/// values squeeze the receive window and vary the burst shapes.
fn gro_transfer(gro: bool, mss: usize, data: &[u8], drain: usize) -> (Vec<u8>, Vec<Vec<u8>>) {
    use uknetdev::backend::VhostKind;
    use uknetdev::dev::{NetDev, NetDevConf};
    use uknetdev::VirtioNet;
    use uknetstack::stack::{NetStack, StackConfig};
    use uknetstack::testnet::Network;
    use uknetstack::Endpoint;
    use ukplat::time::Tsc;

    let mk = |n: u8, gro: bool| {
        let tsc = Tsc::new(3_600_000_000);
        let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
        dev.configure(NetDevConf::default()).unwrap();
        let mut cfg = StackConfig::node(n);
        cfg.tso = false; // Per-MSS wire frames: the GRO target shape.
        cfg.mss = mss;
        cfg.gro = gro;
        NetStack::new(cfg, Box::new(dev))
    };
    let mut net = Network::new();
    let ci = net.attach(mk(1, gro));
    let si = net.attach(mk(2, gro));
    let listener = net.stack(si).tcp_listen(80).unwrap();
    let client = net
        .stack(ci)
        .tcp_connect(Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 80))
        .unwrap();
    net.run_until_quiet(32);
    let conn = net.stack(si).tcp_accept(listener).unwrap();

    net.start_wire_capture();
    let mut buf = vec![0u8; 64 * 1024];
    let mut sent = 0;
    let mut got: Vec<u8> = Vec::with_capacity(data.len());
    for _ in 0..20_000 {
        if sent < data.len() {
            let n = net
                .stack(ci)
                .tcp_send_queued(client, &data[sent..])
                .unwrap_or(0);
            sent += n;
            net.stack(ci).flush_output().unwrap();
        }
        net.step();
        let room = drain.min(buf.len());
        let n = net.stack(si).tcp_recv_into(conn, &mut buf[..room]).unwrap();
        got.extend_from_slice(&buf[..n]);
        if sent == data.len() && got.len() == data.len() {
            break;
        }
    }
    assert_eq!(got.len(), data.len(), "transfer completed (gro={gro})");
    // Teardown rides the capture too.
    net.stack(ci).tcp_close(client).unwrap();
    net.run_until_quiet(64);
    if gro && data.len() >= 8 * mss {
        // Enough consecutive segments flow per burst that at least one
        // multi-frame run must have formed.
        assert!(
            net.stack(si).stats().gro_runs > 0,
            "GRO engaged on the coalescing run (mss={mss})"
        );
    }
    (got, net.take_wire_capture())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// GRO-coalesced delivery ≡ per-segment delivery: for arbitrary
    /// payload sizes, MSS values and receiver drain rates, both the
    /// received byte stream *and* the full wire conversation — data
    /// segments, coalesced ACKs, window updates and teardown — are
    /// byte-identical with GRO on and off. Coalescing may change how
    /// the receiver does its work, never what the peer observes.
    #[test]
    fn gro_delivery_is_byte_identical_to_per_segment(
        len in 1usize..80_000,
        mss in 300usize..1461,
        drain in 500usize..65_536,
        seed in any::<u8>(),
    ) {
        let data: Vec<u8> = (0..len)
            .map(|i| ((i as u32).wrapping_mul(17).wrapping_add(seed as u32) % 251) as u8)
            .collect();
        let (on_stream, on_wire) = gro_transfer(true, mss, &data, drain);
        let (off_stream, off_wire) = gro_transfer(false, mss, &data, drain);
        prop_assert_eq!(&on_stream, &data, "GRO stream exact");
        prop_assert_eq!(on_stream, off_stream, "identical delivered streams");
        prop_assert_eq!(
            on_wire.len(),
            off_wire.len(),
            "same wire frame count (mss={}, len={}, drain={})",
            mss, len, drain
        );
        for (i, (a, b)) in on_wire.iter().zip(off_wire.iter()).enumerate() {
            prop_assert_eq!(a, b, "wire frame {} differs (mss={}, len={})", i, mss, len);
        }
    }
}

// --- fault-schedule recovery: the loss-tolerance property ------------

/// Runs one bidirectional TCP transfer over a two-node net with the
/// given fault schedule armed and a shared virtual clock driving the
/// retransmission timers; returns `(server's received stream, client's
/// received stream, faults injected)`.
///
/// The testnet's fault injector acts on plain wire frames, so with
/// `tso = on` both stacks run `rx_csum_offload = false`: that declines
/// big receive, the host-side GSO cutter turns every super-segment
/// into plain per-MSS frames, and the schedule applies to those.
#[allow(clippy::too_many_arguments)]
fn fault_schedule_transfer(
    tso: bool,
    gro: bool,
    recovery: (bool, bool, bool), // (sack, rack, pacing) ablation switches
    drop_every: u64,
    dup_every: u64,
    reorder_every: u64,
    corrupt_every: u64,
    burst: (u64, u64),
    c2s: &[u8],
    s2c: &[u8],
) -> (Vec<u8>, Vec<u8>, u64) {
    use uknetdev::backend::VhostKind;
    use uknetdev::dev::{NetDev, NetDevConf};
    use uknetdev::VirtioNet;
    use uknetstack::stack::{NetStack, StackConfig};
    use uknetstack::testnet::Network;
    use uknetstack::Endpoint;
    use ukplat::time::Tsc;

    let mk = |n: u8| {
        let tsc = Tsc::new(3_600_000_000);
        let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
        dev.configure(NetDevConf::default()).unwrap();
        let mut cfg = StackConfig::node(n);
        cfg.tso = tso;
        cfg.gro = gro;
        cfg.sack = recovery.0;
        cfg.rack = recovery.1;
        cfg.pacing = recovery.2;
        if tso {
            cfg.rx_csum_offload = false; // Decline big receive: host cuts.
        }
        NetStack::new(cfg, Box::new(dev))
    };
    let mut net = Network::new();
    net.attach(mk(1));
    net.attach(mk(2));
    let clock = Tsc::new(1_000_000_000); // 1 cycle = 1 ns.
    net.set_clock(&clock);
    // 50 ms per step: bursts can eat whole retransmit exchanges and
    // back the RTO off hard, so each round must buy real virtual time.
    net.set_step_ns(50_000_000);

    // Establish on a clean wire so ARP and the handshake cannot be
    // eaten — the property under test is the data path.
    let listener = net.stack(1).tcp_listen(80).unwrap();
    let client = net
        .stack(0)
        .tcp_connect(Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 80))
        .unwrap();
    net.run_until_quiet(32);
    let conn = net.stack(1).tcp_accept(listener).unwrap();

    net.set_drop_every(drop_every);
    net.set_dup_every(dup_every);
    net.set_reorder_every(reorder_every);
    net.set_corrupt_every(corrupt_every);
    net.set_drop_burst(burst.0, burst.1);

    let mut buf = vec![0u8; 64 * 1024];
    let mut got_s: Vec<u8> = Vec::with_capacity(c2s.len());
    let mut got_c: Vec<u8> = Vec::with_capacity(s2c.len());
    let (mut sent_c, mut sent_s) = (0, 0);
    for _ in 0..20_000 {
        if sent_c < c2s.len() {
            sent_c += net
                .stack(0)
                .tcp_send_queued(client, &c2s[sent_c..])
                .unwrap_or(0);
            net.stack(0).flush_output().unwrap();
        }
        if sent_s < s2c.len() {
            sent_s += net
                .stack(1)
                .tcp_send_queued(conn, &s2c[sent_s..])
                .unwrap_or(0);
            net.stack(1).flush_output().unwrap();
        }
        net.step();
        loop {
            let n = net.stack(1).tcp_recv_into(conn, &mut buf).unwrap();
            if n == 0 {
                break;
            }
            got_s.extend_from_slice(&buf[..n]);
        }
        loop {
            let n = net.stack(0).tcp_recv_into(client, &mut buf).unwrap();
            if n == 0 {
                break;
            }
            got_c.extend_from_slice(&buf[..n]);
        }
        if got_s.len() == c2s.len() && got_c.len() == s2c.len() {
            break;
        }
    }
    let faults = net.faults_injected();
    // Heal the wire and let straggling ACKs settle, then account for
    // every pooled buffer: recovery queues must not leak under faults.
    net.set_drop_every(0);
    net.set_dup_every(0);
    net.set_reorder_every(0);
    net.set_corrupt_every(0);
    net.set_drop_burst(0, 0);
    net.run_until_quiet(64);
    assert_eq!(
        net.stack(0).pool_available(),
        Some(512),
        "client pool whole after recovery"
    );
    assert_eq!(
        net.stack(1).pool_available(),
        Some(512),
        "server pool whole after recovery"
    );
    (got_s, got_c, faults)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole property: **any** fault schedule — drop cadence ×
    /// duplication × adjacent reorder × payload corruption × loss
    /// bursts, composed — still delivers byte-identical streams in
    /// both directions, with GRO and TSO on or off and every
    /// combination of the `{sack, rack, pacing}` recovery ablation
    /// switches, and returns every pooled buffer afterwards.
    #[test]
    fn any_fault_schedule_delivers_byte_identical_streams(
        drop_every in prop_oneof![Just(0u64), 6u64..16],
        dup_every in prop_oneof![Just(0u64), 4u64..12],
        reorder_every in prop_oneof![Just(0u64), 4u64..12],
        corrupt_every in prop_oneof![Just(0u64), 6u64..14],
        burst in prop_oneof![Just((0u64, 0u64)), (48u64..96, 2u64..7)],
        tso in any::<bool>(),
        gro in any::<bool>(),
        sack in any::<bool>(),
        rack in any::<bool>(),
        pacing in any::<bool>(),
        len_c in 16_000usize..48_000,
        len_s in 16_000usize..48_000,
        seed in any::<u8>(),
    ) {
        let c2s: Vec<u8> = (0..len_c)
            .map(|i| ((i as u32).wrapping_mul(13).wrapping_add(seed as u32) % 251) as u8)
            .collect();
        let s2c: Vec<u8> = (0..len_s)
            .map(|i| ((i as u32).wrapping_mul(29).wrapping_add(seed as u32) % 251) as u8)
            .collect();
        let (got_s, got_c, faults) = fault_schedule_transfer(
            tso, gro, (sack, rack, pacing),
            drop_every, dup_every, reorder_every, corrupt_every, burst,
            &c2s, &s2c,
        );
        prop_assert_eq!(
            got_s.len(),
            c2s.len(),
            "client→server complete (drop={}, dup={}, reorder={}, corrupt={}, burst={:?}, tso={}, gro={}, sack={}, rack={}, pacing={})",
            drop_every, dup_every, reorder_every, corrupt_every, burst, tso, gro, sack, rack, pacing
        );
        prop_assert_eq!(got_s, c2s, "client→server byte-identical");
        prop_assert_eq!(
            got_c.len(),
            s2c.len(),
            "server→client complete (drop={}, dup={}, reorder={}, corrupt={}, burst={:?}, tso={}, gro={}, sack={}, rack={}, pacing={})",
            drop_every, dup_every, reorder_every, corrupt_every, burst, tso, gro, sack, rack, pacing
        );
        prop_assert_eq!(got_c, s2c, "server→client byte-identical");
        // Drop and dup cadences fire deterministically once enough
        // frames flow; reorder needs two frames staged at its tick,
        // corruption only touches IPv4 frames, and bursts have long
        // cadences, so none of those are guaranteed to land.
        if drop_every > 0 || dup_every > 0 {
            prop_assert!(
                faults > 0,
                "the schedule really perturbed the wire (drop={}, dup={}, reorder={}, corrupt={}, burst={:?}, tso={}, gro={}, len_c={}, len_s={})",
                drop_every, dup_every, reorder_every, corrupt_every, burst, tso, gro, len_c, len_s
            );
        }
    }
}

// --- SACK generation / scoreboard ≡ naive references -----------------
//
// Two sides of the SACK machinery, each checked against the obvious
// model: the receiver's block generation against RFC 2018/2883 rules
// computed from a set of received chunks, and the sender's scoreboard
// against a per-byte bitmap. Chunk-aligned ingest keeps the receiver
// reference exact (an arriving chunk is either entirely new or an
// exact duplicate of a queued one); the sender side uses arbitrary
// byte ranges because `sack_merge` is a pure union.

/// Establishes a server-side TCB with SACK negotiated (the peer's
/// SACK-permitted SYN replayed through `process_options`), returning
/// it alongside its `rcv_nxt` base.
fn sack_receiver(iss: u32) -> (Tcb, u32) {
    let mut server = Tcb::listen(80);
    let mut client = Tcb::connect(5000, 80, iss);
    pump(&mut client, &mut server);
    assert_eq!(server.state, TcpState::Established);
    server.set_sack(true);
    let syn = TcpHeader {
        src_port: 5000,
        dst_port: 80,
        seq: iss,
        ack: 0,
        flags: TcpFlags::SYN,
        window: 65535,
    };
    server.process_options(&syn, &TcpOptions::parse(&SACK_PERMITTED_OPT));
    let base = server.rcv_nxt();
    (server, base)
}

proptest! {
    /// Receiver SACK generation matches the RFC 2018/2883 reference:
    /// at most 3 regular blocks, the block containing the most
    /// recently received data first, remaining blocks ascending,
    /// blocks are exactly the maximal contiguous received ranges, and
    /// a duplicate arrival leads with a D-SACK block (RFC 2883).
    #[test]
    fn sack_blocks_match_rfc2018_reference(
        iss in prop_oneof![Just(7u32), Just(u32::MAX - 3_000)],
        chunks in proptest::collection::vec(1u32..61, 1..24),
    ) {
        const C: u32 = 100; // Chunk size (bytes); index 0 stays a hole.
        let (mut server, base) = sack_receiver(iss);
        let peer_ack = server.snd_nxt();
        let payload = [0xABu8; C as usize];
        let mut received: Vec<bool> = vec![false; 62];
        let mut last_new: u32 = 0;
        for &idx in &chunks {
            let seq = base.wrapping_add(idx * C);
            let dup = received[idx as usize];
            let h = TcpHeader {
                src_port: 5000,
                dst_port: 80,
                seq,
                ack: peer_ack,
                flags: TcpFlags { ack: true, psh: true, ..TcpFlags::default() },
                window: 65535,
            };
            server.on_segment(&h, &payload);
            received[idx as usize] = true;
            if !dup {
                last_new = idx;
            }
            let mut buf = [0u8; TCP_MAX_OPT_LEN];
            let n = server.fill_sack_option(&mut buf);
            prop_assert!(n > 0, "data is queued out of order: something to report");
            prop_assert!(n <= TCP_MAX_OPT_LEN);
            let opts = TcpOptions::parse(&buf[..n]);
            prop_assert_eq!(n, 4 + 8 * opts.sack_count, "layout: NOP NOP 5 len + 8/block");
            // Reference: maximal contiguous runs of received chunks.
            let mut runs: Vec<(u32, u32)> = Vec::new();
            for i in 1..62u32 {
                if received[i as usize] {
                    match runs.last_mut() {
                        Some(r) if r.1 == i => r.1 = i + 1,
                        _ => runs.push((i, i + 1)),
                    }
                }
            }
            let to_seq =
                |r: (u32, u32)| (base.wrapping_add(r.0 * C), base.wrapping_add(r.1 * C));
            let recent = runs
                .iter()
                .copied()
                .find(|r| r.0 <= last_new && last_new < r.1)
                .expect("the most recent new chunk is in some run");
            let mut expect: Vec<(u32, u32)> = Vec::new();
            if dup {
                // RFC 2883: the duplicate chunk itself, reported first.
                expect.push((seq, seq.wrapping_add(C)));
            }
            expect.push(to_seq(recent));
            for r in runs.iter().copied().filter(|&r| r != recent) {
                expect.push(to_seq(r));
            }
            expect.truncate(if dup { 4 } else { 3 }); // ≤ 3 regular blocks.
            prop_assert_eq!(
                &opts.sack_blocks[..opts.sack_count],
                &expect[..],
                "blocks = [D-SACK?] ++ [recent] ++ ascending rest (dup={}, idx={})",
                dup, idx
            );
            // The D-SACK was consumed: a second fill in the same poll
            // round would report only the regular blocks.
            let mut buf2 = [0u8; TCP_MAX_OPT_LEN];
            let n2 = server.fill_sack_option(&mut buf2);
            let opts2 = TcpOptions::parse(&buf2[..n2]);
            prop_assert_eq!(opts2.sack_count, runs.len().min(3));
        }
    }

    /// Sender scoreboard matches a naive per-byte bitmap under
    /// arbitrary SACK blocks and cumulative-ACK advances: the merged
    /// ranges are exactly the bitmap's maximal runs above `snd_una`,
    /// and D-SACK classification (first block at/below the cumulative
    /// ACK or re-reporting covered bytes) counts spurious
    /// retransmissions instead of merging.
    #[test]
    fn sack_scoreboard_matches_bitmap_reference(
        iss in prop_oneof![Just(7u32), Just(u32::MAX - 60_000)],
        ops in proptest::collection::vec(
            (0u32..3000, proptest::collection::vec((0u32..40_000, 1u32..2500), 0..4)),
            1..10,
        ),
    ) {
        const N: u32 = 40_000;
        let mut server = Tcb::listen(80);
        let mut client = Tcb::connect(5000, 80, iss);
        pump(&mut client, &mut server);
        prop_assert_eq!(client.state, TcpState::Established);
        client.set_sack(true);
        let synack = TcpHeader {
            src_port: 80,
            dst_port: 5000,
            seq: 0,
            ack: 0,
            flags: TcpFlags { syn: true, ack: true, ..TcpFlags::default() },
            window: 65535,
        };
        client.process_options(&synack, &TcpOptions::parse(&SACK_PERMITTED_OPT));
        let base = client.snd_una();
        client.app_send(&vec![0x5Au8; N as usize]).unwrap();
        while client.snd_nxt().wrapping_sub(base) < N {
            let segs = client.poll_output();
            prop_assert!(!segs.is_empty(), "window admits the whole buffer");
        }
        prop_assert_eq!(client.snd_nxt().wrapping_sub(base), N);

        let mut bits = vec![false; N as usize];
        let mut cum: u32 = 0; // Relative cumulative ACK.
        let mut expect_spurious: u64 = 0;
        for (delta, blocks) in &ops {
            let new_cum = (cum + delta).min(N);
            let ack = base.wrapping_add(new_cum);
            let mut opts = TcpOptions::default();
            for (i, &(s_rel, len)) in blocks.iter().take(MAX_SACK_BLOCKS).enumerate() {
                let e_rel = (s_rel + len).min(N);
                opts.sack_blocks[i] =
                    (base.wrapping_add(s_rel), base.wrapping_add(e_rel));
                opts.sack_count = i + 1;
            }
            let h = TcpHeader {
                src_port: 80,
                dst_port: 5000,
                seq: client.rcv_nxt(),
                ack,
                flags: TcpFlags { ack: true, ..TcpFlags::default() },
                window: 65535,
            };
            client.process_options(&h, &opts);
            client.on_segment(&h, &[]);
            // Reference: the same classification rules over the bitmap.
            for (i, &(s, e)) in opts.sack_blocks[..opts.sack_count].iter().enumerate() {
                let (s_rel, e_rel) = (s.wrapping_sub(base), e.wrapping_sub(base));
                if s_rel >= e_rel {
                    continue;
                }
                let covered = bits[s_rel as usize..e_rel as usize].iter().all(|&b| b);
                if i == 0 && (e_rel <= new_cum || covered) {
                    expect_spurious += 1; // D-SACK: delivered twice.
                    continue;
                }
                if new_cum < s_rel && e_rel <= N {
                    bits[s_rel as usize..e_rel as usize].fill(true);
                }
            }
            if new_cum > cum {
                bits[..new_cum as usize].fill(false); // Retired by the ACK.
            }
            cum = new_cum;
            prop_assert_eq!(client.snd_una().wrapping_sub(base), cum);
            let mut expect: Vec<(u32, u32)> = Vec::new();
            for (i, &b) in bits.iter().enumerate() {
                if b {
                    let i = i as u32;
                    match expect.last_mut() {
                        Some(r) if r.1 == base.wrapping_add(i) => {
                            r.1 = base.wrapping_add(i + 1)
                        }
                        _ => expect
                            .push((base.wrapping_add(i), base.wrapping_add(i + 1))),
                    }
                }
            }
            prop_assert_eq!(
                client.sacked_ranges(),
                &expect[..],
                "scoreboard == bitmap maximal runs (cum={}, op={:?})",
                cum, (delta, blocks)
            );
            prop_assert_eq!(client.spurious_rtx(), expect_spurious, "D-SACK classification");
        }
    }
}

// --- timer wheel ≡ naive sorted-list reference -----------------------
//
// The hierarchical wheel's contract: a timer armed for deadline `d`
// fires on the first advance where the wheel's tick reaches
// `floor(d / tick)`; arms in the past fire on the very next advance;
// cancel is exact and idempotent, stale tokens cancel nothing. The
// reference below is the obvious O(n) list every one of those words
// maps onto directly — the wheel must be indistinguishable from it
// under arbitrary interleavings of arm/cancel/advance, including
// clock jumps crossing cascade boundaries and jumps beyond the whole
// hierarchy span.

#[derive(Debug, Clone)]
enum WheelOp {
    /// Arm at `now + delta_ms` (negative = in the past).
    Arm { delta_ms: i64 },
    /// Cancel one of the tokens issued so far (stale ones included).
    Cancel { pick: usize },
    /// Advance the clock by `delta_ms` (0 = drain ready list only).
    Advance { delta_ms: u64 },
}

fn arb_wheel_op() -> impl Strategy<Value = WheelOp> {
    prop_oneof![
        4 => (-50i64..500).prop_map(|delta_ms| WheelOp::Arm { delta_ms }),
        2 => (0usize..4096).prop_map(|pick| WheelOp::Cancel { pick }),
        3 => prop_oneof![
            // Ordinary ticks, level-crossing jumps, and rare jumps
            // beyond the wheel's full span (64^4 ticks ≈ 4.7 h).
            8 => 0u64..150,
            3 => 1_000u64..600_000,
            1 => 17_000_000u64..20_000_000,
        ]
        .prop_map(|delta_ms| WheelOp::Advance { delta_ms }),
    ]
}

proptest! {
    /// The wheel is observationally identical to the naive reference:
    /// same fired keys (as a set — intra-advance order is
    /// unspecified), same cancel outcomes, same armed count, at every
    /// step of any operation sequence.
    #[test]
    fn timer_wheel_matches_naive_reference(
        ops in proptest::collection::vec(arb_wheel_op(), 1..80),
    ) {
        use uknetstack::timer::{TimerToken, TimerWheel, DEFAULT_TICK_NS};
        let mut wheel = TimerWheel::new();
        let mut now: u64 = 0;
        let mut next_id: u64 = 0;
        // The reference: armed timers as (id, deadline_tick), plus
        // every token ever issued so cancels can target stale ones.
        let mut model: Vec<(u64, u64)> = Vec::new();
        let mut issued: Vec<(TimerToken, u64)> = Vec::new();
        for op in ops {
            match op {
                WheelOp::Arm { delta_ms } => {
                    let deadline = now.saturating_add_signed(delta_ms * 1_000_000);
                    let id = next_id;
                    next_id += 1;
                    let tok = wheel.arm(deadline, id);
                    model.push((id, deadline / DEFAULT_TICK_NS));
                    issued.push((tok, id));
                }
                WheelOp::Cancel { pick } => {
                    if issued.is_empty() {
                        continue;
                    }
                    let (tok, id) = issued[pick % issued.len()];
                    let wheel_hit = wheel.cancel(tok);
                    let model_pos = model.iter().position(|&(mid, _)| mid == id);
                    if let Some(pos) = model_pos {
                        model.swap_remove(pos);
                    }
                    prop_assert_eq!(
                        wheel_hit,
                        model_pos.is_some(),
                        "cancel outcome diverged for id {}", id
                    );
                }
                WheelOp::Advance { delta_ms } => {
                    now += delta_ms * 1_000_000;
                    let mut fired = Vec::new();
                    wheel.advance(now, |key, _| fired.push(key));
                    let tick = now / DEFAULT_TICK_NS;
                    let mut expected: Vec<u64> = model
                        .iter()
                        .filter(|&&(_, dt)| dt <= tick)
                        .map(|&(id, _)| id)
                        .collect();
                    model.retain(|&(_, dt)| dt > tick);
                    fired.sort_unstable();
                    expected.sort_unstable();
                    prop_assert_eq!(fired, expected, "fired set diverged at now={}", now);
                }
            }
            prop_assert_eq!(wheel.len(), model.len(), "armed count diverged");
        }
        // Drain everything: advance past the furthest deadline.
        let horizon = now + 30_000_000_000_000; // +8.3 h: beyond any arm.
        let mut fired = Vec::new();
        wheel.advance(horizon, |key, _| fired.push(key));
        let mut expected: Vec<u64> = model.iter().map(|&(id, _)| id).collect();
        fired.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(fired, expected, "final drain diverged");
        prop_assert!(wheel.is_empty());
    }
}

// --- delayed ACK ≡ immediate ACK on delivery -------------------------

/// Runs one client→server transfer on a clocked two-node net with the
/// delayed-ACK switch set as given; returns the bytes the server read.
fn delack_transfer(delayed_ack: bool, data: &[u8]) -> Vec<u8> {
    use uknetdev::backend::VhostKind;
    use uknetdev::dev::{NetDev, NetDevConf};
    use uknetdev::VirtioNet;
    use uknetstack::stack::{NetStack, StackConfig};
    use uknetstack::testnet::Network;
    use uknetstack::Endpoint;
    use ukplat::time::Tsc;

    let mk = |n: u8| {
        let tsc = Tsc::new(3_600_000_000);
        let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
        dev.configure(NetDevConf::default()).unwrap();
        let mut cfg = StackConfig::node(n);
        cfg.delayed_ack = delayed_ack;
        NetStack::new(cfg, Box::new(dev))
    };
    let mut net = Network::new();
    net.attach(mk(1));
    net.attach(mk(2));
    let clock = Tsc::new(1_000_000_000);
    net.set_clock(&clock);
    net.set_step_ns(1_000_000); // 1 ms per step: the delack cadence.
    let listener = net.stack(1).tcp_listen(80).unwrap();
    let client = net
        .stack(0)
        .tcp_connect(Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 80))
        .unwrap();
    net.run_until_quiet(32);
    let conn = net.stack(1).tcp_accept(listener).unwrap();

    let mut buf = vec![0u8; 64 * 1024];
    let mut sent = 0;
    let mut got: Vec<u8> = Vec::with_capacity(data.len());
    for _ in 0..20_000 {
        if sent < data.len() {
            sent += net
                .stack(0)
                .tcp_send_queued(client, &data[sent..])
                .unwrap_or(0);
            net.stack(0).flush_output().unwrap();
        }
        net.step();
        loop {
            let n = net.stack(1).tcp_recv_into(conn, &mut buf).unwrap();
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
        }
        if sent == data.len() && got.len() == data.len() {
            break;
        }
    }
    // The final ACK may be parked on the delack timer (40 ms) — buy
    // enough virtual time for it to fire before accounting for pools,
    // since unacked tail data pins retransmit-queue buffers.
    for _ in 0..64 {
        net.step();
    }
    net.run_until_quiet(64);
    assert_eq!(net.stack(0).pool_available(), Some(512), "client pool whole");
    assert_eq!(net.stack(1).pool_available(), Some(512), "server pool whole");
    got
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Delayed ACKs change when acknowledgements travel, never what
    /// the application receives: for arbitrary payloads, delivery is
    /// byte-identical with the switch on and off, and neither mode
    /// leaks a buffer.
    #[test]
    fn delayed_ack_delivery_is_byte_identical(
        len in 1usize..60_000,
        seed in any::<u8>(),
    ) {
        let data: Vec<u8> = (0..len)
            .map(|i| ((i as u32).wrapping_mul(23).wrapping_add(seed as u32) % 251) as u8)
            .collect();
        let with = delack_transfer(true, &data);
        let without = delack_transfer(false, &data);
        prop_assert_eq!(&with, &data, "delayed-ACK stream exact");
        prop_assert_eq!(with, without, "identical delivery either way");
    }
}

// --- SYN flood interleaved with live transfers -----------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A SYN flood pounding the same listener an established
    /// connection came from — at arbitrary burst sizes and cadences —
    /// never corrupts the established stream and never leaks: the
    /// embryos the flood parks are reclaimed by the handshake timer
    /// and every pooled buffer comes home.
    #[test]
    fn syn_flood_interleaving_preserves_established_streams(
        len in 4_000usize..40_000,
        burst in 2usize..12,
        cadence in 2usize..8,
        backlog in 8usize..32,
        seed in any::<u8>(),
    ) {
        use uknetdev::backend::VhostKind;
        use uknetdev::dev::{NetDev, NetDevConf};
        use uknetdev::VirtioNet;
        use uknetstack::stack::{NetStack, StackConfig, HANDSHAKE_TIMEOUT_NS};
        use uknetstack::testnet::Network;
        use uknetstack::Endpoint;
        use ukplat::time::Tsc;

        let mk = |n: u8| {
            let tsc = Tsc::new(3_600_000_000);
            let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
            dev.configure(NetDevConf::default()).unwrap();
            let mut cfg = StackConfig::node(n);
            cfg.listen_backlog = backlog;
            NetStack::new(cfg, Box::new(dev))
        };
        let mut net = Network::new();
        net.attach(mk(1));
        net.attach(mk(2));
        let clock = Tsc::new(1_000_000_000);
        net.set_clock(&clock);
        net.set_step_ns(5_000_000); // 5 ms per step.
        let listener = net.stack(1).tcp_listen(80).unwrap();
        let client = net
            .stack(0)
            .tcp_connect(Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 80))
            .unwrap();
        net.run_until_quiet(32);
        let conn = net.stack(1).tcp_accept(listener).unwrap();

        let data: Vec<u8> = (0..len)
            .map(|i| ((i as u32).wrapping_mul(41).wrapping_add(seed as u32) % 251) as u8)
            .collect();
        let mut buf = vec![0u8; 64 * 1024];
        let mut sent = 0;
        let mut flooded = 0;
        let mut got: Vec<u8> = Vec::with_capacity(data.len());
        for round in 0..20_000 {
            if round % cadence == 0 {
                net.syn_flood(1, 80, flooded, burst, burst);
                flooded += burst;
            }
            if sent < data.len() {
                sent += net
                    .stack(0)
                    .tcp_send_queued(client, &data[sent..])
                    .unwrap_or(0);
                net.stack(0).flush_output().unwrap();
            }
            net.step();
            loop {
                let n = net.stack(1).tcp_recv_into(conn, &mut buf).unwrap();
                if n == 0 {
                    break;
                }
                got.extend_from_slice(&buf[..n]);
            }
            if sent == data.len() && got.len() == data.len() {
                break;
            }
        }
        prop_assert_eq!(&got, &data, "established stream intact through the flood");

        // Every embryo the flood parked is reclaimed by the handshake
        // timer, and nothing leaked anywhere.
        for _ in 0..(HANDSHAKE_TIMEOUT_NS / 5_000_000) as usize + 8 {
            net.step();
        }
        prop_assert_eq!(
            net.stack(1).tcp_conn_count(),
            1,
            "only the established connection survives"
        );
        net.run_until_quiet(32);
        prop_assert_eq!(net.stack(1).pool_available(), Some(512), "server pool whole");
        prop_assert_eq!(net.stack(0).pool_available(), Some(512), "client pool whole");
    }
}

/// Drives two TCBs against each other until quiescent.
fn pump(a: &mut Tcb, b: &mut Tcb) {
    for _ in 0..64 {
        let fa = a.poll_output();
        let fb = b.poll_output();
        if fa.is_empty() && fb.is_empty() {
            break;
        }
        for s in fa {
            b.on_segment(&s.header, &s.payload);
        }
        for s in fb {
            a.on_segment(&s.header, &s.payload);
        }
    }
}
