//! The lint passes: the repo's written-down invariants, machine-checked.
//!
//! Every pass works on the token stream from [`crate::lexer`] plus the
//! comment side-table; none of them parse Rust properly — they match
//! token *sequences*, which is exactly enough for invariants of the
//! form "this identifier must not appear here without a justification
//! next to it". See `crates/ukcheck/README.md` for the invariant
//! catalogue and the escape contract.

use std::collections::{HashMap, HashSet};

use crate::lexer::{lex, Comment, Tok};

/// Which invariant a violation belongs to. The lint's name doubles as
/// the key accepted inside an allow-escape comment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lint {
    /// Heap allocation in a manifest-listed hot module.
    Alloc,
    /// Panicking construct (`unwrap`/`expect`/`panic!`/…) in a hot
    /// module.
    Panic,
    /// `unsafe` without an adjacent `// SAFETY:` comment. Not
    /// escapable via `allow` — the SAFETY comment *is* the escape.
    Unsafe,
    /// Atomic-ordering policy: `SeqCst` anywhere, or any non-Relaxed
    /// ordering inside the `ukstats`/`uktrace` hot crates.
    Atomics,
    /// A malformed escape comment (unknown lint name, missing `--`
    /// justification) — escapes are part of the contract and are
    /// themselves linted.
    Escape,
}

impl Lint {
    pub fn name(self) -> &'static str {
        match self {
            Lint::Alloc => "alloc",
            Lint::Panic => "panic",
            Lint::Unsafe => "unsafe",
            Lint::Atomics => "atomics",
            Lint::Escape => "escape",
        }
    }

    fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "alloc" => Lint::Alloc,
            "panic" => Lint::Panic,
            "atomics" => Lint::Atomics,
            _ => return None,
        })
    }
}

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Violation {
    pub file: String,
    pub line: u32,
    pub lint: Lint,
    pub msg: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.lint.name(),
            self.msg
        )
    }
}

/// Allocation-performing constructors: `Type::method` pairs forbidden
/// on the hot path. (`Vec::new` itself does not allocate, but it is
/// the seed of lazy growth — the exact bug class the zero-alloc gates
/// kept catching at runtime — so it is flagged with the rest.)
const ALLOC_CTORS: &[&str] = &[
    "Vec", "VecDeque", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "Box", "String", "Rc",
    "Arc",
];
const ALLOC_CTOR_METHODS: &[&str] = &["new", "from", "with_capacity", "from_iter"];

/// Allocating methods: `.method(` forms forbidden on the hot path.
/// `reserve` is here because on-demand growth *is* an allocation —
/// three of these hid behind warm-up in earlier PRs.
const ALLOC_METHODS: &[&str] = &[
    "to_vec",
    "to_string",
    "to_owned",
    "collect",
    "reserve",
    "reserve_exact",
];

/// Allocating macros: `name!` forms forbidden on the hot path.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Panicking macros forbidden on the datapath.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Panicking methods (`.unwrap()` / `.expect(…)`) forbidden on the
/// datapath. Exact-identifier matches only — `unwrap_or` is fine.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// Checks one source file. `hot` applies the hot-path-only passes
/// (alloc, panic) in addition to the workspace-wide ones (unsafe,
/// atomics, escape); `relaxed_only` additionally restricts atomic
/// orderings to `Relaxed` (the ukstats/uktrace policy).
pub fn check_source(file: &str, src: &str, hot: bool, relaxed_only: bool) -> Vec<Violation> {
    let lexed = lex(src);
    let active = active_mask(&lexed.toks);
    let (allows, mut out) = parse_escapes(file, &lexed.comments);
    let safety_lines = safety_comment_lines(&lexed.comments);
    let comment_lines = comment_line_set(&lexed.comments);

    let toks = &lexed.toks;
    let ranges = allow_ranges(toks, &allows);
    let allowed = |line: u32, lint: Lint| -> bool {
        ranges
            .iter()
            .any(|r| r.lint == lint && r.start <= line && line <= r.end)
    };
    let push = |line: u32, lint: Lint, msg: String, out: &mut Vec<Violation>| {
        if !allowed(line, lint) {
            out.push(Violation {
                file: file.to_string(),
                line,
                lint,
                msg,
            });
        }
    };

    for i in 0..toks.len() {
        if !active[i] {
            continue;
        }
        let t = &toks[i];
        let id = match t.ident() {
            Some(id) => id,
            None => continue,
        };
        let prev_dot = i > 0 && toks[i - 1].is_punct('.');
        let next_bang = matches!(toks.get(i + 1), Some(n) if n.is_punct('!'));
        let next_paren_after_bang =
            matches!(toks.get(i + 2), Some(n) if n.is_punct('(') || n.is_punct('[') || n.is_punct('{'));

        // --- hot-path passes ---------------------------------------
        if hot {
            // `Type::{new,from,with_capacity,…}`
            if ALLOC_CTORS.contains(&id)
                && matches!(toks.get(i + 1), Some(n) if n.is_punct(':'))
                && matches!(toks.get(i + 2), Some(n) if n.is_punct(':'))
            {
                if let Some(m) = toks.get(i + 3).and_then(|t| t.ident()) {
                    if ALLOC_CTOR_METHODS.contains(&m) {
                        push(
                            t.line,
                            Lint::Alloc,
                            format!("`{id}::{m}` allocates (or seeds lazy growth) in a hot module"),
                            &mut out,
                        );
                    }
                }
            }
            // `.to_vec(` / `.collect(` / `.reserve(` …
            if prev_dot
                && ALLOC_METHODS.contains(&id)
                && matches!(toks.get(i + 1), Some(n) if n.is_punct('(') || n.is_punct(':'))
            {
                push(
                    t.line,
                    Lint::Alloc,
                    format!("`.{id}()` allocates in a hot module"),
                    &mut out,
                );
            }
            // `vec![` / `format!(`
            if ALLOC_MACROS.contains(&id) && next_bang && next_paren_after_bang && !prev_dot {
                push(
                    t.line,
                    Lint::Alloc,
                    format!("`{id}!` allocates in a hot module"),
                    &mut out,
                );
            }
            // `.unwrap()` / `.expect(`
            if prev_dot
                && PANIC_METHODS.contains(&id)
                && matches!(toks.get(i + 1), Some(n) if n.is_punct('('))
            {
                push(
                    t.line,
                    Lint::Panic,
                    format!("`.{id}()` can panic on the datapath — return an error or drop the segment"),
                    &mut out,
                );
            }
            // `panic!` / `unreachable!` / …
            if PANIC_MACROS.contains(&id) && next_bang && next_paren_after_bang && !prev_dot {
                push(
                    t.line,
                    Lint::Panic,
                    format!("`{id}!` on the datapath — the kernel must not have panicking paths"),
                    &mut out,
                );
            }
        }

        // --- workspace-wide passes ---------------------------------
        if id == "unsafe" {
            if !has_safety_comment(t.line, &safety_lines, &comment_lines) {
                out.push(Violation {
                    file: file.to_string(),
                    line: t.line,
                    lint: Lint::Unsafe,
                    msg: "`unsafe` without an adjacent `// SAFETY:` comment".to_string(),
                });
            }
        }
        if id == "SeqCst" {
            push(
                t.line,
                Lint::Atomics,
                "`SeqCst` ordering — justify why Relaxed/Acquire/Release is insufficient"
                    .to_string(),
                &mut out,
            );
        } else if relaxed_only && matches!(id, "Acquire" | "Release" | "AcqRel") {
            // Only flag actual ordering arguments (`Ordering::Acquire`),
            // not arbitrary identifiers that happen to share the name.
            let after_colons = i >= 3
                && toks[i - 1].is_punct(':')
                && toks[i - 2].is_punct(':')
                && toks[i - 3].ident() == Some("Ordering");
            if after_colons {
                push(
                    t.line,
                    Lint::Atomics,
                    format!("`Ordering::{id}` in a Relaxed-only crate — hot counters must be Relaxed"),
                    &mut out,
                );
            }
        }
    }

    out.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.msg.cmp(&b.msg)));
    out
}

/// Marks which tokens are "active" (not under a `#[test]`- or
/// `#[cfg(test)]`-guarded item). Test code may unwrap and allocate
/// freely — the invariants protect the image, not the test harness.
fn active_mask(toks: &[Tok]) -> Vec<bool> {
    let mut active = vec![true; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_punct('#') {
            i += 1;
            continue;
        }
        // `#[...]` or `#![...]`
        let mut j = i + 1;
        if matches!(toks.get(j), Some(t) if t.is_punct('!')) {
            j += 1;
        }
        if !matches!(toks.get(j), Some(t) if t.is_punct('[')) {
            i += 1;
            continue;
        }
        let (attr_end, mentions_test) = scan_attr(toks, j);
        if !mentions_test {
            i = attr_end;
            continue;
        }
        // Deactivate this attribute, any stacked attributes after it,
        // and the item they decorate (to its `;` or matching `}`).
        for t in active.iter_mut().take(attr_end).skip(i) {
            *t = false;
        }
        let mut k = attr_end;
        while matches!(toks.get(k), Some(t) if t.is_punct('#')) {
            let mut a = k + 1;
            if matches!(toks.get(a), Some(t) if t.is_punct('!')) {
                a += 1;
            }
            if !matches!(toks.get(a), Some(t) if t.is_punct('[')) {
                break;
            }
            let (end, _) = scan_attr(toks, a);
            for t in active.iter_mut().take(end).skip(k) {
                *t = false;
            }
            k = end;
        }
        let mut depth = 0i32;
        let mut inner = 0i32; // parens/brackets: `[u8; 4]` must not end the item
        while k < toks.len() {
            active[k] = false;
            if toks[k].is_punct('{') {
                depth += 1;
            } else if toks[k].is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    k += 1;
                    break;
                }
            } else if toks[k].is_punct('(') || toks[k].is_punct('[') {
                inner += 1;
            } else if toks[k].is_punct(')') || toks[k].is_punct(']') {
                inner -= 1;
            } else if toks[k].is_punct(';') && depth == 0 && inner == 0 {
                k += 1;
                break;
            }
            k += 1;
        }
        i = k;
    }
    active
}

/// Scans an attribute starting at its `[` token; returns (index past
/// the closing `]`, whether the attribute mentions the ident `test`).
fn scan_attr(toks: &[Tok], open: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut mentions_test = false;
    let mut k = open;
    while k < toks.len() {
        if toks[k].is_punct('[') {
            depth += 1;
        } else if toks[k].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return (k + 1, mentions_test);
            }
        } else if toks[k].ident() == Some("test") {
            mentions_test = true;
        }
        k += 1;
    }
    (k, mentions_test)
}

/// A resolved escape: `lint` is allowed on lines `start..=end`.
struct AllowRange {
    lint: Lint,
    start: u32,
    end: u32,
}

/// Resolves parsed escapes into line ranges:
///
/// - a **trailing** escape (code on the same line) covers that line;
/// - a **standalone** escape covers the next code line;
/// - a standalone escape whose next code line starts an `fn` item
///   covers the whole function body — one justified escape above a
///   constructor, not one per field.
fn allow_ranges(toks: &[Tok], allows: &HashMap<u32, HashSet<Lint>>) -> Vec<AllowRange> {
    let mut out = Vec::new();
    for (&line, set) in allows {
        let trailing = toks.iter().any(|t| t.line == line);
        let (start, end) = if trailing {
            (line, line)
        } else {
            // First token past the comment, skipping over attributes
            // (`#[cfg(...)]` lines between the escape and its item).
            let Some(mut first) = toks.iter().position(|t| t.line > line) else {
                continue;
            };
            while toks[first].is_punct('#') {
                let mut a = first + 1;
                if matches!(toks.get(a), Some(t) if t.is_punct('!')) {
                    a += 1;
                }
                if !matches!(toks.get(a), Some(t) if t.is_punct('[')) {
                    break;
                }
                let (end, _) = scan_attr(toks, a);
                if end >= toks.len() {
                    break;
                }
                first = end;
            }
            let code_line = toks[first].line;
            let fn_on_line = toks[first..]
                .iter()
                .take_while(|t| t.line == code_line)
                .any(|t| t.ident() == Some("fn"));
            if fn_on_line {
                (code_line, item_end_line(toks, first))
            } else {
                (code_line, code_line)
            }
        };
        for &lint in set {
            out.push(AllowRange { lint, start, end });
        }
    }
    out
}

/// The last line of the item starting at token `from`: its matching
/// close brace, or its `;` for a body-less declaration.
fn item_end_line(toks: &[Tok], from: usize) -> u32 {
    let mut depth = 0i32;
    let mut inner = 0i32;
    let mut k = from;
    while k < toks.len() {
        if toks[k].is_punct('{') {
            depth += 1;
        } else if toks[k].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return toks[k].line;
            }
        } else if toks[k].is_punct('(') || toks[k].is_punct('[') {
            inner += 1;
        } else if toks[k].is_punct(')') || toks[k].is_punct(']') {
            inner -= 1;
        } else if toks[k].is_punct(';') && depth == 0 && inner == 0 {
            return toks[k].line;
        }
        k += 1;
    }
    toks.last().map_or(0, |t| t.line)
}

/// Parses every allow escape (the lint name in parentheses, a `--`,
/// then a mandatory justification) out of the comments. Returns the
/// per-line allow sets (keyed by the comment's *end* line, so both
/// trailing and preceding-line comments work) and any violations for
/// malformed escapes.
fn parse_escapes(
    file: &str,
    comments: &[Comment],
) -> (HashMap<u32, HashSet<Lint>>, Vec<Violation>) {
    let mut allows: HashMap<u32, HashSet<Lint>> = HashMap::new();
    let mut out = Vec::new();
    for c in comments {
        let mut rest = c.text.as_str();
        while let Some(pos) = rest.find("ukcheck:") {
            rest = &rest[pos + "ukcheck:".len()..];
            let body = rest.trim_start();
            let Some(args) = body.strip_prefix("allow(") else {
                out.push(Violation {
                    file: file.to_string(),
                    line: c.end_line,
                    lint: Lint::Escape,
                    msg: "malformed escape: expected `ukcheck: allow(<lint>) -- <why>`"
                        .to_string(),
                });
                continue;
            };
            let Some(close) = args.find(')') else {
                out.push(Violation {
                    file: file.to_string(),
                    line: c.end_line,
                    lint: Lint::Escape,
                    msg: "malformed escape: unterminated `allow(`".to_string(),
                });
                continue;
            };
            let name = args[..close].trim();
            let after = args[close + 1..].trim_start();
            let Some(lint) = Lint::from_name(name) else {
                out.push(Violation {
                    file: file.to_string(),
                    line: c.end_line,
                    lint: Lint::Escape,
                    msg: format!(
                        "unknown lint `{name}` in escape (valid: alloc, panic, atomics; \
                         `unsafe` is escaped by a `// SAFETY:` comment)"
                    ),
                });
                continue;
            };
            let justification = after
                .strip_prefix("--")
                .map(str::trim_start)
                .filter(|j| !j.is_empty());
            if justification.is_none() {
                out.push(Violation {
                    file: file.to_string(),
                    line: c.end_line,
                    lint: Lint::Escape,
                    msg: format!(
                        "escape `allow({name})` without a justification — write \
                         `ukcheck: allow({name}) -- <why this is safe here>`"
                    ),
                });
                continue;
            }
            allows.entry(c.end_line).or_default().insert(lint);
        }
    }
    (allows, out)
}

/// Lines on which a comment containing `SAFETY:` ends.
fn safety_comment_lines(comments: &[Comment]) -> HashSet<u32> {
    comments
        .iter()
        .filter(|c| c.text.contains("SAFETY:"))
        .flat_map(|c| c.start_line..=c.end_line)
        .collect()
}

/// Every line touched by any comment (for walking up a contiguous
/// comment block above an `unsafe`).
fn comment_line_set(comments: &[Comment]) -> HashSet<u32> {
    comments
        .iter()
        .flat_map(|c| c.start_line..=c.end_line)
        .collect()
}

/// An `unsafe` on line L is justified if a `SAFETY:` comment sits on
/// L itself (trailing) or anywhere in the contiguous run of
/// comment-bearing lines immediately above L.
fn has_safety_comment(
    line: u32,
    safety_lines: &HashSet<u32>,
    comment_lines: &HashSet<u32>,
) -> bool {
    if safety_lines.contains(&line) {
        return true;
    }
    let mut l = line.saturating_sub(1);
    while l >= 1 && comment_lines.contains(&l) {
        if safety_lines.contains(&l) {
            return true;
        }
        l -= 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_hot(src: &str) -> Vec<Violation> {
        check_source("test.rs", src, true, false)
    }

    #[test]
    fn flags_unwrap_and_alloc_in_hot_code() {
        let v = check_hot("fn f(x: Option<u8>) { x.unwrap(); let v = Vec::new(); }");
        assert_eq!(v.len(), 2);
        assert!(v.iter().any(|v| v.lint == Lint::Panic));
        assert!(v.iter().any(|v| v.lint == Lint::Alloc));
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let v = check_hot("fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn allow_escape_with_justification_suppresses() {
        let src = "fn f() {\n    // ukcheck: allow(alloc) -- init-time only\n    let v: Vec<u8> = Vec::new();\n}";
        assert!(check_hot(src).is_empty());
        let trailing =
            "fn f() { let v: Vec<u8> = Vec::new(); } // ukcheck: allow(alloc) -- init";
        assert!(check_hot(trailing).is_empty());
    }

    #[test]
    fn allow_without_justification_is_itself_flagged() {
        let src = "// ukcheck: allow(alloc)\nfn f() { let v: Vec<u8> = Vec::new(); }";
        let v = check_hot(src);
        assert!(v.iter().any(|v| v.lint == Lint::Escape), "{v:?}");
        assert!(v.iter().any(|v| v.lint == Lint::Alloc), "escape invalid → lint still fires");
    }

    #[test]
    fn wrong_lint_name_does_not_suppress() {
        let src = "// ukcheck: allow(panic) -- wrong lint\nfn f() { let v: Vec<u8> = Vec::new(); }";
        let v = check_hot(src);
        assert!(v.iter().any(|v| v.lint == Lint::Alloc));
    }

    #[test]
    fn fn_scoped_escape_covers_the_whole_function() {
        let src = "// ukcheck: allow(alloc) -- constructor runs once at boot\n\
                   pub fn new() -> Self {\n\
                       let a: Vec<u8> = Vec::new();\n\
                       let b: Vec<u8> = Vec::new();\n\
                       Self { a, b }\n\
                   }\n\
                   fn hot() { let c: Vec<u8> = Vec::new(); }";
        let v = check_hot(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 7, "escape must not leak past the fn body");
    }

    #[test]
    fn fn_scoped_escape_skips_attributes() {
        let src = "// ukcheck: allow(panic) -- feature-gated diagnostic\n\
                   #[cfg(feature = \"x\")]\n\
                   fn diag() { panic!(\"boom\"); }";
        assert!(check_hot(src).is_empty());
    }

    #[test]
    fn cfg_test_module_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u8>.unwrap(); let v = vec![1]; }\n}";
        assert!(check_hot(src).is_empty());
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = "// calls unwrap() and panic!\nfn f() { let s = \"x.unwrap()\"; }";
        assert!(check_hot(src).is_empty());
    }

    #[test]
    fn unsafe_needs_safety_comment() {
        let bad = "fn f() { unsafe { core(); } }";
        let v = check_source("t.rs", bad, false, false);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, Lint::Unsafe);

        let good = "fn f() {\n    // SAFETY: core() has no preconditions here.\n    unsafe { core(); }\n}";
        assert!(check_source("t.rs", good, false, false).is_empty());

        let multiline = "fn f() {\n    // SAFETY: the pointer is valid because\n    // the pool pins the slab.\n    unsafe { core(); }\n}";
        assert!(check_source("t.rs", multiline, false, false).is_empty());
    }

    #[test]
    fn seqcst_needs_justification_everywhere() {
        let bad = "fn f() { X.load(Ordering::SeqCst); }";
        let v = check_source("t.rs", bad, false, false);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, Lint::Atomics);
        let good = "fn f() {\n    // ukcheck: allow(atomics) -- total order required for the epoch fence\n    X.load(Ordering::SeqCst);\n}";
        assert!(check_source("t.rs", good, false, false).is_empty());
    }

    #[test]
    fn relaxed_only_crates_reject_acquire() {
        let src = "fn f() { X.load(Ordering::Acquire); }";
        assert!(check_source("t.rs", src, false, false).is_empty());
        let v = check_source("t.rs", src, false, true);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, Lint::Atomics);
    }
}
