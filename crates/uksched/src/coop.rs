//! Cooperative round-robin scheduler (`ukschedcoop`).
//!
//! The paper selects this scheduler for Redis "since it fits well with
//! Redis's single threaded approach" (§5.3): threads run until they yield,
//! block, sleep or exit; there is no preemption and thus no timer jitter.

use std::collections::{HashMap, VecDeque};

use ukplat::lcpu::Lcpu;
use ukplat::time::Tsc;
use ukplat::{Errno, Result};

use crate::thread::{StepResult, Thread, ThreadId, ThreadState};
use crate::Scheduler;

/// The cooperative scheduler over one logical CPU.
#[derive(Debug)]
pub struct CoopScheduler {
    lcpu: Lcpu,
    tsc: Tsc,
    threads: HashMap<ThreadId, Thread>,
    runq: VecDeque<ThreadId>,
    next_id: u64,
    steps: u64,
}

impl CoopScheduler {
    /// Creates a scheduler on CPU 0 of the given TSC domain.
    pub fn new(tsc: &Tsc) -> Self {
        CoopScheduler {
            lcpu: Lcpu::new(0, tsc),
            tsc: tsc.clone(),
            threads: HashMap::new(),
            runq: VecDeque::new(),
            next_id: 1,
            steps: 0,
        }
    }

    /// Creates a scheduler for a specific vCPU (the paper: "each CPU core
    /// can run a different scheduler").
    pub fn on_cpu(cpu: u32, tsc: &Tsc) -> Self {
        let mut s = Self::new(tsc);
        s.lcpu = Lcpu::new(cpu, tsc);
        s
    }

    /// Wakes sleepers whose deadline has passed.
    fn wake_sleepers(&mut self) {
        let now = self.tsc.cycles_to_ns(self.tsc.now_cycles());
        let due: Vec<ThreadId> = self
            .threads
            .iter()
            .filter_map(|(id, t)| match t.state {
                ThreadState::Sleeping(until) if until <= now => Some(*id),
                _ => None,
            })
            .collect();
        for id in due {
            if let Some(t) = self.threads.get_mut(&id) {
                t.state = ThreadState::Ready;
                self.runq.push_back(id);
            }
        }
    }

    /// If everything is sleeping, advance virtual time to the earliest
    /// deadline (the idle loop programming the timer).
    fn idle_until_next_deadline(&mut self) -> bool {
        let next = self
            .threads
            .values()
            .filter_map(|t| match t.state {
                ThreadState::Sleeping(until) => Some(until),
                _ => None,
            })
            .min();
        match next {
            Some(deadline) => {
                let now = self.tsc.cycles_to_ns(self.tsc.now_cycles());
                if deadline > now {
                    self.tsc.advance_ns(deadline - now);
                }
                self.wake_sleepers();
                true
            }
            None => false,
        }
    }

    /// Runs one thread until it gives up the CPU. Returns steps executed,
    /// or `None` if no thread was runnable.
    fn run_one(&mut self, budget: u64) -> Option<u64> {
        self.wake_sleepers();
        let id = loop {
            match self.runq.pop_front() {
                Some(id) => {
                    if matches!(
                        self.threads.get(&id).map(|t| t.state),
                        Some(ThreadState::Ready)
                    ) {
                        break id;
                    }
                    // Stale queue entry (woken twice, etc.); skip.
                }
                None => {
                    if self.idle_until_next_deadline() {
                        continue;
                    }
                    return None;
                }
            }
        };
        self.lcpu.switch_to(id.0, false);
        let t = self.threads.get_mut(&id).expect("thread exists");
        t.state = ThreadState::Running;
        let mut ran = 0;
        loop {
            if ran >= budget {
                // Out of step budget: put the thread back as ready.
                t.state = ThreadState::Ready;
                self.runq.push_back(id);
                break;
            }
            let r = (t.step)();
            t.steps_run += 1;
            self.steps += 1;
            ran += 1;
            match r {
                StepResult::Continue => continue,
                StepResult::Yield => {
                    t.state = ThreadState::Ready;
                    self.runq.push_back(id);
                    break;
                }
                StepResult::Block => {
                    t.state = ThreadState::Blocked;
                    break;
                }
                StepResult::Sleep(ns) => {
                    let now = self.tsc.cycles_to_ns(self.tsc.now_cycles());
                    t.state = ThreadState::Sleeping(now + ns);
                    break;
                }
                StepResult::Exit => {
                    t.state = ThreadState::Exited;
                    break;
                }
            }
        }
        Some(ran)
    }
}

impl Scheduler for CoopScheduler {
    fn spawn(&mut self, thread: Thread) -> ThreadId {
        let id = ThreadId(self.next_id);
        self.next_id += 1;
        self.threads.insert(id, thread);
        self.runq.push_back(id);
        id
    }

    fn wake(&mut self, id: ThreadId) -> Result<()> {
        let t = self.threads.get_mut(&id).ok_or(Errno::Inval)?;
        match t.state {
            ThreadState::Blocked | ThreadState::Sleeping(_) => {
                t.state = ThreadState::Ready;
                self.runq.push_back(id);
                Ok(())
            }
            ThreadState::Exited => Err(Errno::Inval),
            _ => Ok(()), // Already runnable.
        }
    }

    fn run_to_idle(&mut self) -> u64 {
        let mut total = 0;
        while let Some(n) = self.run_one(u64::MAX) {
            total += n;
        }
        total
    }

    fn run_steps(&mut self, n: u64) -> u64 {
        let mut total = 0;
        while total < n {
            match self.run_one(n - total) {
                Some(k) => total += k,
                None => break,
            }
        }
        total
    }

    fn alive(&self) -> usize {
        self.threads
            .values()
            .filter(|t| t.state != ThreadState::Exited)
            .count()
    }

    fn context_switches(&self) -> u64 {
        self.lcpu.switch_count()
    }

    fn name(&self) -> &'static str {
        "ukschedcoop"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn tsc() -> Tsc {
        Tsc::new(1_000_000_000)
    }

    #[test]
    fn round_robin_interleaves_yielding_threads() {
        let t = tsc();
        let mut s = CoopScheduler::new(&t);
        let log = Rc::new(RefCell::new(Vec::new()));
        for name in ["a", "b"] {
            let l = log.clone();
            let mut left = 2;
            s.spawn(Thread::new(name, move || {
                if left == 0 {
                    return StepResult::Exit;
                }
                left -= 1;
                l.borrow_mut().push(name);
                StepResult::Yield
            }));
        }
        s.run_to_idle();
        assert_eq!(&*log.borrow(), &["a", "b", "a", "b"]);
        assert_eq!(s.alive(), 0);
    }

    #[test]
    fn continue_keeps_thread_on_cpu() {
        let t = tsc();
        let mut s = CoopScheduler::new(&t);
        let log = Rc::new(RefCell::new(Vec::new()));
        {
            let l = log.clone();
            let mut left = 3;
            s.spawn(Thread::new("hog", move || {
                if left == 0 {
                    return StepResult::Exit;
                }
                left -= 1;
                l.borrow_mut().push("hog");
                StepResult::Continue
            }));
        }
        {
            let l = log.clone();
            let mut done = false;
            s.spawn(Thread::new("meek", move || {
                if done {
                    return StepResult::Exit;
                }
                done = true;
                l.borrow_mut().push("meek");
                StepResult::Yield
            }));
        }
        s.run_to_idle();
        // Cooperative: the hog runs all its steps before meek gets a turn.
        assert_eq!(&*log.borrow(), &["hog", "hog", "hog", "meek"]);
    }

    #[test]
    fn block_and_wake() {
        let t = tsc();
        let mut s = CoopScheduler::new(&t);
        let mut first = true;
        let id = s.spawn(Thread::new("b", move || {
            if first {
                first = false;
                StepResult::Block
            } else {
                StepResult::Exit
            }
        }));
        s.run_to_idle();
        assert_eq!(s.alive(), 1, "blocked thread still alive");
        s.wake(id).unwrap();
        s.run_to_idle();
        assert_eq!(s.alive(), 0);
    }

    #[test]
    fn sleep_advances_virtual_clock_when_idle() {
        let t = tsc();
        let mut s = CoopScheduler::new(&t);
        let mut slept = false;
        s.spawn(Thread::new("sleeper", move || {
            if slept {
                StepResult::Exit
            } else {
                slept = true;
                StepResult::Sleep(1_000_000)
            }
        }));
        s.run_to_idle();
        assert_eq!(s.alive(), 0);
        assert!(t.cycles_to_ns(t.now_cycles()) >= 1_000_000);
    }

    #[test]
    fn wake_of_exited_thread_fails() {
        let t = tsc();
        let mut s = CoopScheduler::new(&t);
        let id = s.spawn(Thread::new("x", || StepResult::Exit));
        s.run_to_idle();
        assert_eq!(s.wake(id).unwrap_err(), Errno::Inval);
    }

    #[test]
    fn context_switches_charged() {
        let t = tsc();
        let mut s = CoopScheduler::new(&t);
        s.spawn(Thread::count_steps("a", 3));
        s.spawn(Thread::count_steps("b", 3));
        s.run_to_idle();
        assert!(s.context_switches() >= 6);
        assert!(t.now_cycles() > 0, "switch cost charged to TSC");
    }

    #[test]
    fn run_steps_bounds_execution() {
        let t = tsc();
        let mut s = CoopScheduler::new(&t);
        s.spawn(Thread::count_steps("a", 100));
        let ran = s.run_steps(10);
        assert_eq!(ran, 10);
        assert_eq!(s.alive(), 1);
    }
}
