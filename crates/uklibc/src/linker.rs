//! The external-archive link model.
//!
//! §4: "we rely on the target application's native build system, and use
//! the statically-compiled object files to link them back into Unikraft's
//! final linking step." Whether that link succeeds is a symbol-resolution
//! question; this module is the resolver.

use crate::profile::LibcProfile;

/// A statically-built application archive: the symbols it imports and
/// its measured sizes (Table 2's data columns).
#[derive(Debug, Clone)]
pub struct AppArchive {
    /// Library name (e.g. "lib-nginx").
    pub name: &'static str,
    /// Undefined symbols the archive needs the libc to provide.
    pub required_symbols: Vec<&'static str>,
    /// Image size in MB when linked against musl (Table 2).
    pub musl_size_mb: f64,
    /// Image size in MB when linked against newlib (Table 2).
    pub newlib_size_mb: f64,
    /// Lines of glue code the port needed (Table 2's last column).
    pub glue_loc: u32,
}

/// Outcome of linking an archive against a libc profile.
#[derive(Debug, Clone)]
pub struct LinkOutcome {
    /// Whether every symbol resolved.
    pub success: bool,
    /// Symbols that did not resolve.
    pub unresolved: Vec<&'static str>,
}

/// Resolves `app`'s imports against `libc`.
pub fn link(app: &AppArchive, libc: &LibcProfile) -> LinkOutcome {
    let unresolved: Vec<&'static str> = app
        .required_symbols
        .iter()
        .copied()
        .filter(|s| !libc.provides(s))
        .collect();
    LinkOutcome {
        success: unresolved.is_empty(),
        unresolved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{LibcKind, LibcProfile};

    fn app(symbols: &[&'static str]) -> AppArchive {
        AppArchive {
            name: "test-app",
            required_symbols: symbols.to_vec(),
            musl_size_mb: 1.0,
            newlib_size_mb: 1.1,
            glue_loc: 0,
        }
    }

    #[test]
    fn plain_c_app_links_everywhere() {
        let a = app(&["memcpy", "strlen"]);
        for kind in [LibcKind::NoLibc, LibcKind::Musl, LibcKind::Newlib] {
            assert!(link(&a, &LibcProfile::new(kind)).success, "{kind:?}");
        }
    }

    #[test]
    fn glibc_fortified_app_needs_compat() {
        let a = app(&["memcpy", "__printf_chk", "pread64"]);
        let musl = LibcProfile::new(LibcKind::Musl);
        let out = link(&a, &musl);
        assert!(!out.success);
        assert_eq!(out.unresolved, ["__printf_chk", "pread64"]);
        let out = link(&a, &musl.with_compat_layer());
        assert!(out.success);
    }

    #[test]
    fn network_app_fails_on_plain_newlib() {
        let a = app(&["socket", "accept", "recv"]);
        assert!(!link(&a, &LibcProfile::new(LibcKind::Newlib)).success);
        assert!(link(&a, &LibcProfile::new(LibcKind::Newlib).with_compat_layer()).success);
    }
}
