//! Integration: syscall shim + compatibility analysis agree.

use unikraft_rs::core::UnikernelBuilder;
use unikraft_rs::plat::time::Tsc;
use unikraft_rs::port::analysis;
use unikraft_rs::port::appdb::TOP30_APPS;
use unikraft_rs::syscall::shim::{SyscallMode, SyscallShim};
use unikraft_rs::syscall::{syscall_nr, UNIKRAFT_SUPPORTED};
use uksyscall::uk_syscall_register;

#[test]
fn booted_unikernel_serves_the_supported_surface() {
    let mut uk = UnikernelBuilder::new("compat").build().unwrap();
    uk.boot().unwrap();
    let shim = uk.shim_mut();
    // Every supported syscall answers without ENOSYS.
    for &nr in UNIKRAFT_SUPPORTED.iter() {
        assert_ne!(shim.invoke(nr, &[]), -38, "syscall {nr}");
    }
    assert_eq!(shim.enosys_hits(), 0);
    // An unsupported one is auto-stubbed with -ENOSYS (§4.1).
    assert_eq!(shim.invoke(284, &[]), -38);
    assert_eq!(shim.enosys_hits(), 1);
}

#[test]
fn registered_surface_matches_coverage_analysis() {
    let mut uk = UnikernelBuilder::new("coverage").build().unwrap();
    uk.boot().unwrap();
    let registered = uk.shim_mut().registered();
    assert_eq!(registered.len(), UNIKRAFT_SUPPORTED.len());
    // The per-app coverage computed by ukport equals what the live shim
    // would actually serve.
    let nginx = TOP30_APPS.iter().find(|a| a.name == "nginx").unwrap();
    let (supported, total) = analysis::coverage(nginx);
    let live = nginx
        .syscalls
        .iter()
        .filter(|nr| registered.contains(nr))
        .count();
    assert_eq!(supported, live);
    assert!(supported as f64 / total as f64 > 0.9);
}

#[test]
fn app_runs_with_stubbed_syscalls() {
    // "many applications work even if certain syscalls are stubbed or
    // return ENOSYS" — simulate an app probing optional syscalls.
    let tsc = Tsc::new(3_600_000_000);
    let mut shim = SyscallShim::new(SyscallMode::UnikraftNative, &tsc);
    uk_syscall_register!(shim, write, |args: &[u64]| args[2] as i64);
    uk_syscall_register!(shim, getpid, |_args| 1);
    // The app probes eventfd (missing) and falls back to pipes.
    let r = shim.invoke_by_name("eventfd", &[0]).unwrap();
    assert_eq!(r, -38);
    // And keeps working through supported calls.
    assert_eq!(shim.invoke_by_name("write", &[1, 0, 10]).unwrap(), 10);
    assert_eq!(shim.invoke_by_name("getpid", &[]).unwrap(), 1);
    assert_eq!(shim.missing_syscalls(), &[syscall_nr("eventfd").unwrap()]);
}

#[test]
fn mode_costs_are_ordered_like_table1() {
    let cost_of = |mode: SyscallMode| {
        let tsc = Tsc::new(3_600_000_000);
        let mut shim = SyscallShim::new(mode, &tsc);
        shim.register(39, Box::new(|_| 0));
        for _ in 0..100 {
            shim.invoke(39, &[]);
        }
        tsc.now_cycles()
    };
    let native = cost_of(SyscallMode::UnikraftNative);
    let bincompat = cost_of(SyscallMode::UnikraftBinCompat);
    let nomit = cost_of(SyscallMode::LinuxTrapNoMitigations);
    let full = cost_of(SyscallMode::LinuxTrap);
    assert!(native < bincompat);
    assert!(bincompat < nomit);
    assert!(nomit < full);
    // "system calls with run-time translation have a tenfold performance
    // cost compared to function calls".
    assert!(bincompat >= 10 * native);
}
