//! Criterion bench: RESP GET/SET over the full stack (Fig 12/18).

use criterion::{criterion_group, criterion_main, Criterion};
use ukalloc::AllocBackend;
use ukapps::loadgen::RespOp;
use ukbench::netharness::run_resp_bench;
use uknetdev::backend::VhostKind;

fn bench_resp(c: &mut Criterion) {
    let mut g = c.benchmark_group("kvstore_500_requests");
    g.sample_size(10);
    for (label, op) in [("GET", RespOp::Get), ("SET", RespOp::Set)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let t = run_resp_bench(
                    AllocBackend::Mimalloc,
                    VhostKind::VhostUser,
                    op,
                    4,
                    16,
                    500,
                );
                assert_eq!(t.requests, 500);
                std::hint::black_box(t);
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_resp);
criterion_main!(benches);
