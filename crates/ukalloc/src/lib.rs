//! Memory allocation micro-library (`ukalloc`).
//!
//! §3.2 of the paper: Unikraft's allocation subsystem has three layers —
//! a POSIX-facing external API (provided by the libc), the internal
//! `ukalloc` multiplexing interface, and one or more backend allocators,
//! each owning its own memory region. This crate reproduces layers two and
//! three with *real* allocator implementations operating on guest-physical
//! address ranges:
//!
//! - [`buddy`]: binary-buddy allocator (Mini-OS heritage) — slow to
//!   initialize (touches every page), O(log n) alloc/free with coalescing;
//! - [`tlsf`]: Two-Level Segregated Fits — O(1) real-time allocator;
//! - [`tinyalloc`]: small block-table allocator with compaction;
//! - [`mimalloc`]: free-list-sharded allocator in the style of Microsoft's
//!   mimalloc (segments → pages → sharded free lists);
//! - [`bootalloc`]: region (bump) allocator for fast boots — `free` is a
//!   no-op;
//! - [`oscar`]: a guarded wrapper adding canaries and a quarantine, in the
//!   spirit of the Oscar secure allocator.
//!
//! The allocators manage address ranges, not host memory: an allocation
//! returns a guest-physical address and all bookkeeping (free lists,
//! bitmaps, headers, coalescing) is real data-structure work, which is what
//! the paper's Figures 14–18 measure.

pub mod bootalloc;
pub mod buddy;
pub mod mimalloc;
pub mod oscar;
pub mod registry;
pub mod stats;
pub mod tinyalloc;
pub mod tlsf;

pub use bootalloc::BootAlloc;
pub use buddy::BuddyAlloc;
pub use mimalloc::Mimalloc;
pub use oscar::OscarAlloc;
pub use registry::AllocRegistry;
pub use stats::AllocStats;
pub use tinyalloc::TinyAlloc;
pub use tlsf::TlsfAlloc;

use ukplat::{Errno, Result};

/// Minimum alignment every backend guarantees (like `max_align_t`).
pub const MIN_ALIGN: usize = 16;

/// A guest-physical address returned by an allocator.
pub type GpAddr = u64;

/// The paper's five-plus allocator backends, for configuration menus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllocBackend {
    /// Binary buddy system (Mini-OS `mm.c` heritage).
    Buddy,
    /// Two-Level Segregated Fits real-time allocator.
    Tlsf,
    /// tinyalloc block-table allocator.
    TinyAlloc,
    /// mimalloc-style free-list sharding allocator.
    Mimalloc,
    /// Region/bump allocator for boot-time speed.
    BootAlloc,
    /// Oscar-style guarded secure allocator.
    Oscar,
}

impl AllocBackend {
    /// All backends in the order the paper's Figure 14 lists them.
    pub fn all() -> [AllocBackend; 6] {
        [
            AllocBackend::Buddy,
            AllocBackend::Mimalloc,
            AllocBackend::BootAlloc,
            AllocBackend::TinyAlloc,
            AllocBackend::Tlsf,
            AllocBackend::Oscar,
        ]
    }

    /// Display name used in figures.
    pub fn name(self) -> &'static str {
        match self {
            AllocBackend::Buddy => "Binary buddy",
            AllocBackend::Tlsf => "TLSF",
            AllocBackend::TinyAlloc => "tinyalloc",
            AllocBackend::Mimalloc => "Mimalloc",
            AllocBackend::BootAlloc => "Bootalloc",
            AllocBackend::Oscar => "Oscar",
        }
    }

    /// Instantiates an uninitialized allocator of this kind.
    pub fn instantiate(self) -> Box<dyn Allocator> {
        match self {
            AllocBackend::Buddy => Box::new(BuddyAlloc::new()),
            AllocBackend::Tlsf => Box::new(TlsfAlloc::new()),
            AllocBackend::TinyAlloc => Box::new(TinyAlloc::new()),
            AllocBackend::Mimalloc => Box::new(Mimalloc::new()),
            AllocBackend::BootAlloc => Box::new(BootAlloc::new()),
            AllocBackend::Oscar => Box::new(OscarAlloc::new()),
        }
    }
}

/// The internal `ukalloc` interface every backend implements.
///
/// Mirrors `struct uk_alloc`'s function-pointer table: `uk_malloc`,
/// `uk_memalign`, `uk_free`, plus initialization as required by `ukboot`
/// ("allocators must specify an initialization function which is called by
/// ukboot at an early stage of the boot process", §3.2).
pub trait Allocator {
    /// Backend display name.
    fn name(&self) -> &'static str;

    /// Initializes the allocator over `[base, base + len)`.
    ///
    /// Called exactly once by `ukboot` with the heap region. The allocator
    /// must be ready to serve requests when this returns; its cost is what
    /// Figure 14 measures per backend.
    fn init(&mut self, base: GpAddr, len: usize) -> Result<()>;

    /// Allocates `size` bytes at [`MIN_ALIGN`] alignment.
    fn malloc(&mut self, size: usize) -> Option<GpAddr>;

    /// Allocates `size` bytes at the given alignment (a power of two
    /// ≥ [`MIN_ALIGN`]).
    fn memalign(&mut self, align: usize, size: usize) -> Option<GpAddr>;

    /// Frees an allocation previously returned by this allocator.
    ///
    /// # Panics
    ///
    /// Backends panic on frees of unknown addresses (double free / wild
    /// free) — the moral equivalent of `UK_ASSERT` in Unikraft.
    fn free(&mut self, ptr: GpAddr);

    /// Usable bytes remaining (approximate for sharded backends).
    fn available(&self) -> usize;

    /// Allocation statistics.
    fn stats(&self) -> AllocStats;

    /// Whether `free` actually reclaims memory (false for [`BootAlloc`]).
    fn reclaims(&self) -> bool {
        true
    }
}

/// `uk_calloc` equivalent: allocate and conceptually zero `n * size` bytes.
///
/// Returns `None` on multiplication overflow, matching POSIX `calloc`.
pub fn uk_calloc(a: &mut dyn Allocator, n: usize, size: usize) -> Option<GpAddr> {
    let total = n.checked_mul(size)?;
    a.malloc(total)
}

/// `uk_realloc` equivalent over the handle-based interface.
///
/// Since backends track sizes internally, the reproduction models realloc
/// as malloc-new + free-old, which is also Unikraft's fallback path for
/// backends without a native realloc.
pub fn uk_realloc(a: &mut dyn Allocator, ptr: Option<GpAddr>, size: usize) -> Option<GpAddr> {
    let newp = a.malloc(size)?;
    if let Some(old) = ptr {
        a.free(old);
    }
    Some(newp)
}

/// `uk_posix_memalign` equivalent returning `Errno` like the POSIX call.
pub fn uk_posix_memalign(a: &mut dyn Allocator, align: usize, size: usize) -> Result<GpAddr> {
    if !align.is_power_of_two() || align < std::mem::size_of::<usize>() {
        return Err(Errno::Inval);
    }
    a.memalign(align.max(MIN_ALIGN), size).ok_or(Errno::NoMem)
}

/// Rounds `v` up to the next multiple of `align` (power of two).
pub(crate) fn align_up(v: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    (v + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(backend: AllocBackend) {
        let mut a = backend.instantiate();
        a.init(0x10_0000, 4 * 1024 * 1024).unwrap();
        let p1 = a.malloc(100).expect("malloc 100");
        let p2 = a.malloc(4096).expect("malloc 4096");
        assert_ne!(p1, p2);
        assert_eq!(p1 % MIN_ALIGN as u64, 0);
        assert_eq!(p2 % MIN_ALIGN as u64, 0);
        a.free(p1);
        a.free(p2);
    }

    #[test]
    fn every_backend_allocates_aligned_distinct_blocks() {
        for b in AllocBackend::all() {
            exercise(b);
        }
    }

    #[test]
    fn calloc_overflow_returns_none() {
        let mut a = AllocBackend::Tlsf.instantiate();
        a.init(0, 1024 * 1024).unwrap();
        assert!(uk_calloc(a.as_mut(), usize::MAX, 2).is_none());
        assert!(uk_calloc(a.as_mut(), 4, 16).is_some());
    }

    #[test]
    fn posix_memalign_validates_alignment() {
        let mut a = AllocBackend::Tlsf.instantiate();
        a.init(0, 1024 * 1024).unwrap();
        assert_eq!(
            uk_posix_memalign(a.as_mut(), 3, 64).unwrap_err(),
            Errno::Inval
        );
        let p = uk_posix_memalign(a.as_mut(), 256, 64).unwrap();
        assert_eq!(p % 256, 0);
    }

    #[test]
    fn realloc_moves_allocation() {
        let mut a = AllocBackend::Buddy.instantiate();
        a.init(1 << 20, 1024 * 1024).unwrap();
        let p = a.malloc(64).unwrap();
        let q = uk_realloc(a.as_mut(), Some(p), 128).unwrap();
        assert!(q >= (1 << 20));
        a.free(q);
    }

    #[test]
    fn backend_names_are_unique() {
        let names: std::collections::HashSet<_> =
            AllocBackend::all().iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), AllocBackend::all().len());
    }
}
