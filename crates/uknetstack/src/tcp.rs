//! TCP: header codec and a compact connection state machine.
//!
//! Enough TCP to run the paper's request/response servers over real
//! packets — and over a *lossy* wire: three-way handshake, sequence/ack
//! tracking, MSS segmentation, PSH data delivery, FIN teardown, RST on
//! unexpected segments, plus the full loss-recovery suite (see below).
//!
//! Since the large-transfer fast path, the send queue is **zero-copy**:
//! [`Tcb::app_send_with`] writes application bytes once into pooled
//! netbufs, and [`Tcb::poll_output_chain_with`] *moves* those buffers
//! into outgoing frames — as one scatter-gather super-segment of up to
//! a GSO budget when segmentation is offloaded (sequence/window
//! accounting once per super-segment), or per-MSS in software when it
//! is not. Received data is acknowledged with per-poll coalesced ACKs
//! (delayed-ACK shape), and a big-receive super-segment arriving as a
//! buffer chain is ingested in one [`Tcb::on_segment_parts`] call.
//!
//! Since the receive-side fast path, the **receive queue is zero-copy
//! too**: [`Tcb::on_segment_bufs`] *keeps* the RX netbufs the payload
//! arrived in (trimmed to the TCP body) instead of copying bytes into
//! a ring, and readers either copy out
//! ([`app_recv_into_with`](Tcb::app_recv_into_with)) or take whole
//! buffers ([`app_recv_netbuf`](Tcb::app_recv_netbuf) — the
//! `tcp_recv_netbuf` substrate, the receiver's mirror of the zero-copy
//! send queue).
//!
//! # Loss recovery
//!
//! The TCB survives arbitrary drop/dup/reorder fault schedules with
//! byte-identical delivery. Four interlocking pieces:
//!
//! - **Retransmission without re-copying.** Emitted data frames carry a
//!   [`TcpHold`](uknetdev::netbuf::TcpHold) tag; when the frame returns
//!   from the device (TX reclaim / wire recycle), the stack files its
//!   still-unacknowledged payload extents back into the TCB's
//!   retransmission queue ([`Tcb::rtx_return`]) instead of the pool.
//!   The wire only ever destroys the *receiver-side DMA copy* of a
//!   frame — the sender's pooled buffer always comes home, so the
//!   retransmission queue regenerates from the frames themselves and
//!   application bytes are never copied again. ACKs release covered
//!   extents back to the pool ([`Tcb::process_ack`]); partial coverage
//!   trims in place.
//! - **RTO timers on the virtual clock (RFC 6298).** SRTT/RTTVAR
//!   estimation with Karn's rule (samples are invalidated by any
//!   retransmission), exponential backoff, 200 ms floor / 60 s ceiling.
//!   [`Tcb::on_tick`] fires the timer: data at `snd_una` is flagged for
//!   re-emission, a lost SYN/SYN-ACK/FIN is re-queued, and a closed
//!   peer window with queued data turns the timer into a persist
//!   (zero-window probe) timer.
//! - **Fast retransmit / NewReno recovery (RFC 6582).** Three duplicate
//!   ACKs retransmit the segment at `snd_una` without waiting for the
//!   RTO; with congestion control enabled
//!   ([`Tcb::set_congestion_control`], a `StackConfig` ablation) this
//!   also halves `ssthresh`, inflates `cwnd` per extra dup-ACK, and
//!   NewReno partial ACKs retransmit the next hole until the recovery
//!   point is crossed. `cwnd` (slow start / congestion avoidance)
//!   bounds emission alongside the peer window and composes with the
//!   TSO super-segment budget (a super-segment splits at the
//!   `min(cwnd, snd_wnd)` edge exactly like at the window edge).
//! - **Bounded out-of-order reassembly.** A payload extent landing
//!   ahead of `rcv_nxt` is queued (sequence-sorted, overlap-trimmed
//!   against both neighbours and `rcv_nxt`) in a budgeted reassembly
//!   queue instead of being discarded; the hole's arrival drains every
//!   contiguous queued extent in one sweep. Extents that exceed the
//!   budget, duplicate queued data, or land outside the sequence
//!   horizon are recycled to their pool — never leaked. Dropped *or
//!   queued-out-of-order* data still forces a duplicate ACK (capped at
//!   one immediate dup-ACK per ingest sweep) so the peer's fast
//!   retransmit always has its signal without ACK-storming the wire.
//!
//! A FIN is processed only when it lands in sequence, i.e. after every
//! payload byte preceding it was accepted; a FIN riding dropped or
//! queued-out-of-order data neither advances `rcv_nxt` nor changes
//! state (the peer's FIN retransmission recovers it).

use std::collections::VecDeque;

use uknetdev::netbuf::Netbuf;
use ukplat::{Errno, Result};

use crate::inet_checksum;
use crate::ipv4::Ipv4Header;

/// TCP header length (no options).
pub const TCP_HDR_LEN: usize = 20;
/// Maximum segment size used by the stack (Ethernet MTU minus headers).
pub const MSS: usize = 1460;
/// Send-buffer capacity: bytes the application may queue beyond what the
/// peer's receive window has admitted. `app_send` accepts partial writes
/// against this cap, like a non-blocking `send(2)`.
pub const SND_BUF_CAP: usize = 64 * 1024;
/// Storage/headroom shape of the buffers [`Tcb::app_send`] allocates
/// when no pool-backed supplier is given (mirrors the stack's TX
/// buffers).
const SEND_BUF_SHAPE: (usize, usize) = (2048, 64);
/// Receive-buffer capacity; also the largest window we advertise (the
/// field is 16 bits without window scaling).
pub const RCV_BUF_CAP: usize = 65_535;
/// Initial retransmission timeout before the first RTT sample
/// (RFC 6298 §2 says 1 s; we keep it).
const RTO_INITIAL_NS: u64 = 1_000_000_000;
/// RTO floor: the in-process wire's RTT is far below real-network
/// granularity, so the classic 1 s floor would dominate every test —
/// 200 ms keeps backoff doubling observable while staying well above
/// any virtual-clock RTT.
const RTO_MIN_NS: u64 = 200_000_000;
/// RTO ceiling (RFC 6298 §2.4 allows 60 s).
const RTO_MAX_NS: u64 = 60_000_000_000;
/// Reassembly-queue budget, in buffers: each queued out-of-order
/// extent pins a pool buffer, so the queue is capped independently of
/// byte count.
const OOO_QUEUE_BUFS: usize = 64;
/// Reassembly-queue budget, in payload bytes (one receive window).
const OOO_QUEUE_BYTES: usize = RCV_BUF_CAP;
/// How far ahead of `rcv_nxt` an out-of-order extent may start and
/// still be queued; anything beyond is garbage (or an attack) and is
/// recycled immediately.
const OOO_SEQ_HORIZON: u32 = 1 << 17;
/// Initial congestion window, in segments (RFC 6928's IW10).
const INITIAL_CWND_SEGS: usize = 10;
/// Delayed-ACK hold time (RFC 1122 §4.2.3.2 caps it at 500 ms; 40 ms
/// matches Linux's default quick timeout). Only meaningful with
/// [`Tcb::set_delayed_ack`] on — which the stack enables solely when a
/// virtual clock drives the timer wheel.
pub const DELACK_NS: u64 = 40_000_000;
/// Quick-ACK threshold: an ACK is owed immediately once this many
/// in-order segments are unacknowledged (RFC 1122: at least every
/// second full-sized segment).
const DELACK_SEGS: u32 = 2;
/// Most SACK blocks one option ever carries: 3 regular blocks
/// (RFC 2018 §3 with a NOP-NOP-prefixed option) plus one leading
/// D-SACK block (RFC 2883 §4).
pub const MAX_SACK_BLOCKS: usize = 4;
/// Largest TCP option run the stack emits: `NOP NOP kind len` plus
/// [`MAX_SACK_BLOCKS`] 8-byte blocks — already a multiple of 4.
pub const TCP_MAX_OPT_LEN: usize = 4 + 8 * MAX_SACK_BLOCKS;
/// SACK-permitted option (kind 4), NOP-padded to a 4-byte word; rides
/// SYN and SYN-ACK segments only (RFC 2018 §2).
pub const SACK_PERMITTED_OPT: [u8; 4] = [1, 1, 4, 2];
/// Scoreboard capacity: disjoint SACKed ranges tracked per
/// connection. A 64 KB send buffer is ≤ 45 MSS segments, so ≤ 23
/// alternating holes; 32 ranges cover every reachable episode and the
/// `Vec` never reallocates in steady state.
const MAX_SACKED_RANGES: usize = 32;
/// RACK reordering-window floor: how long after loss evidence (first
/// duplicate ACK / SACK advance) the sender waits before declaring
/// loss, so mere reordering can cancel the episode. Half the SRTT,
/// floored here to stay above the virtual wire's delivery quantum.
const RACK_REO_WND_MIN_NS: u64 = 10_000_000;
/// Tail-loss-probe floor (the PTO is `2 * srtt` once an RTT sample
/// exists; before that, half the initial RTO).
const TLP_MIN_NS: u64 = 2_000_000;
/// Pacing-gate release interval floor (the interval is `srtt / 8` —
/// eight sub-bursts per RTT — floored to stay schedulable).
const PACE_INTERVAL_MIN_NS: u64 = 1_000_000;

/// TCP flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    /// SYN.
    pub syn: bool,
    /// ACK.
    pub ack: bool,
    /// FIN.
    pub fin: bool,
    /// RST.
    pub rst: bool,
    /// PSH.
    pub psh: bool,
}

impl TcpFlags {
    /// A SYN.
    pub const SYN: TcpFlags = TcpFlags {
        syn: true,
        ack: false,
        fin: false,
        rst: false,
        psh: false,
    };

    fn to_u8(self) -> u8 {
        (u8::from(self.fin))
            | (u8::from(self.syn) << 1)
            | (u8::from(self.rst) << 2)
            | (u8::from(self.psh) << 3)
            | (u8::from(self.ack) << 4)
    }

    fn from_u8(v: u8) -> Self {
        TcpFlags {
            fin: v & 1 != 0,
            syn: v & 2 != 0,
            rst: v & 4 != 0,
            psh: v & 8 != 0,
            ack: v & 16 != 0,
        }
    }
}

/// A parsed TCP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Flags.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
}

impl TcpHeader {
    /// Serializes header + payload into a segment with a valid checksum.
    // ukcheck: allow(alloc) -- test/tooling codec; the datapath writes
    // headers in place via `encode_into` on pooled buffers
    pub fn encode(&self, ip: &Ipv4Header, payload: &[u8]) -> Vec<u8> {
        let mut seg = Vec::with_capacity(TCP_HDR_LEN + payload.len());
        seg.extend_from_slice(&self.src_port.to_be_bytes());
        seg.extend_from_slice(&self.dst_port.to_be_bytes());
        seg.extend_from_slice(&self.seq.to_be_bytes());
        seg.extend_from_slice(&self.ack.to_be_bytes());
        seg.push(5 << 4); // Data offset 5 words.
        seg.push(self.flags.to_u8());
        seg.extend_from_slice(&self.window.to_be_bytes());
        seg.extend_from_slice(&[0, 0]); // Checksum placeholder.
        seg.extend_from_slice(&[0, 0]); // Urgent pointer.
        seg.extend_from_slice(payload);
        let ck = inet_checksum(&seg, ip.pseudo_header_sum());
        seg[16..18].copy_from_slice(&ck.to_be_bytes());
        seg
    }

    /// Prepends the 20-byte header into `nb`'s headroom; the payload
    /// already in the buffer becomes the segment body without being
    /// copied. The checksum is computed in place over the whole segment
    /// with the pseudo-header seed — byte-identical to
    /// [`encode`](Self::encode).
    ///
    /// # Panics
    ///
    /// Panics if `nb` has less than [`TCP_HDR_LEN`] bytes of headroom.
    pub fn encode_into(&self, ip: &Ipv4Header, nb: &mut Netbuf) {
        let hdr = nb.push_header_uninit(TCP_HDR_LEN);
        hdr[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        hdr[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        hdr[4..8].copy_from_slice(&self.seq.to_be_bytes());
        hdr[8..12].copy_from_slice(&self.ack.to_be_bytes());
        hdr[12] = 5 << 4; // Data offset 5 words.
        hdr[13] = self.flags.to_u8();
        hdr[14..16].copy_from_slice(&self.window.to_be_bytes());
        hdr[16..18].copy_from_slice(&[0, 0]); // Checksum placeholder.
        hdr[18..20].copy_from_slice(&[0, 0]); // Urgent pointer.
        let ck = inet_checksum(nb.payload(), ip.pseudo_header_sum());
        nb.payload_mut()[16..18].copy_from_slice(&ck.to_be_bytes());
    }

    /// The checksum-offload form of [`encode_into`](Self::encode_into):
    /// prepends the header with the checksum field holding only the
    /// *folded pseudo-header sum* (uncomplemented) and attaches a
    /// [`CsumRequest`](uknetdev::netbuf::CsumRequest) to the netbuf, so
    /// the device completes the sum over the whole segment on
    /// `tx_burst` — the frame that reaches the wire is
    /// checksum-equivalent to the software path's (the device emits a
    /// computed `0x0000` as the congruent `0xffff`, which the software
    /// TCP path leaves raw; both verify identically).
    ///
    /// # Panics
    ///
    /// Panics if `nb` has less than [`TCP_HDR_LEN`] bytes of headroom.
    pub fn encode_into_partial(&self, ip: &Ipv4Header, nb: &mut Netbuf) {
        self.push_partial_header(ip, nb);
        nb.request_csum(nb.len(), 16);
    }

    /// The TSO form of [`encode_into_partial`](Self::encode_into_partial)
    /// for a scatter-gather super-segment: prepends the header onto
    /// the *chain head* with the partial pseudo-header sum stamped,
    /// and attaches both a chain-spanning
    /// [`CsumRequest`](uknetdev::netbuf::CsumRequest) and a
    /// [`GsoRequest`](uknetdev::netbuf::GsoRequest) so the host side
    /// cuts per-`mss` wire frames and completes their checksums
    /// (`uknetdev::gso`). `ip.payload_len` must span the whole chain.
    ///
    /// # Panics
    ///
    /// Panics if the head has less than [`TCP_HDR_LEN`] bytes of
    /// headroom or `mss` is zero.
    pub fn encode_into_gso(&self, ip: &Ipv4Header, nb: &mut Netbuf, mss: u16) {
        self.push_partial_header(ip, nb);
        nb.request_csum(nb.chain_len(), 16);
        nb.request_gso(mss);
    }

    /// [`encode_into`](Self::encode_into) with TCP options: prepends a
    /// `20 + opts.len()`-byte header (data offset raised accordingly)
    /// and checksums the whole segment in software. `opts` must
    /// already be NOP-padded to a multiple of 4 and `ip.payload_len`
    /// must include the option bytes. The GSO cutter rejects options,
    /// so only uncut frames — pure ACKs and handshake segments — ever
    /// take this path.
    ///
    /// # Panics
    ///
    /// Panics if `nb` lacks `20 + opts.len()` bytes of headroom or
    /// `opts.len()` is not a multiple of 4.
    pub fn encode_into_opts(&self, ip: &Ipv4Header, nb: &mut Netbuf, opts: &[u8]) {
        let hlen = self.push_opts_header(nb, opts);
        let hdr = &mut nb.payload_mut()[..hlen];
        hdr[16..18].copy_from_slice(&[0, 0]); // Checksum placeholder.
        let ck = inet_checksum(nb.payload(), ip.pseudo_header_sum());
        nb.payload_mut()[16..18].copy_from_slice(&ck.to_be_bytes());
    }

    /// The checksum-offload form of
    /// [`encode_into_opts`](Self::encode_into_opts): the checksum
    /// field holds the folded pseudo-header sum and a
    /// [`CsumRequest`](uknetdev::netbuf::CsumRequest) spanning the
    /// whole segment (header + options + payload) is attached for the
    /// device to complete.
    ///
    /// # Panics
    ///
    /// Same conditions as [`encode_into_opts`](Self::encode_into_opts).
    pub fn encode_into_partial_opts(&self, ip: &Ipv4Header, nb: &mut Netbuf, opts: &[u8]) {
        let hlen = self.push_opts_header(nb, opts);
        let partial = uknetdev::csum::fold_partial_sum(u64::from(ip.pseudo_header_sum()));
        nb.payload_mut()[..hlen][16..18].copy_from_slice(&partial.to_be_bytes());
        nb.request_csum(nb.len(), 16);
    }

    /// Shared prepend of the option-carrying encoders: full header
    /// with `opts` in the option space and the data offset covering
    /// them; the checksum field is left zero for the caller to fill.
    /// Returns the header length.
    fn push_opts_header(&self, nb: &mut Netbuf, opts: &[u8]) -> usize {
        assert_eq!(opts.len() % 4, 0, "options must be padded to 32-bit words");
        let hlen = TCP_HDR_LEN + opts.len();
        let hdr = nb.push_header_uninit(hlen);
        hdr[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        hdr[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        hdr[4..8].copy_from_slice(&self.seq.to_be_bytes());
        hdr[8..12].copy_from_slice(&self.ack.to_be_bytes());
        hdr[12] = ((hlen / 4) as u8) << 4;
        hdr[13] = self.flags.to_u8();
        hdr[14..16].copy_from_slice(&self.window.to_be_bytes());
        hdr[16..18].copy_from_slice(&[0, 0]);
        hdr[18..20].copy_from_slice(&[0, 0]); // Urgent pointer.
        hdr[20..hlen].copy_from_slice(opts);
        hlen
    }

    /// Shared header prepend of the offload encoders: every field
    /// final except the checksum, which holds the folded pseudo-header
    /// sum for a downstream completer.
    fn push_partial_header(&self, ip: &Ipv4Header, nb: &mut Netbuf) {
        let hdr = nb.push_header_uninit(TCP_HDR_LEN);
        hdr[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        hdr[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        hdr[4..8].copy_from_slice(&self.seq.to_be_bytes());
        hdr[8..12].copy_from_slice(&self.ack.to_be_bytes());
        hdr[12] = 5 << 4; // Data offset 5 words.
        hdr[13] = self.flags.to_u8();
        hdr[14..16].copy_from_slice(&self.window.to_be_bytes());
        let partial = uknetdev::csum::fold_partial_sum(u64::from(ip.pseudo_header_sum()));
        hdr[16..18].copy_from_slice(&partial.to_be_bytes());
        hdr[18..20].copy_from_slice(&[0, 0]); // Urgent pointer.
    }

    /// Parses and verifies a segment; returns header + payload.
    pub fn decode<'a>(ip: &Ipv4Header, seg: &'a [u8]) -> Result<(TcpHeader, &'a [u8])> {
        Self::decode_inner(ip, seg, true)
    }

    /// [`decode`](Self::decode) for a frame the wire/device already
    /// marked checksum-validated (`VIRTIO_NET_F_GUEST_CSUM`):
    /// structural validation only, the checksum pass over the segment
    /// is skipped.
    pub fn decode_trusted<'a>(ip: &Ipv4Header, seg: &'a [u8]) -> Result<(TcpHeader, &'a [u8])> {
        Self::decode_inner(ip, seg, false)
    }

    fn decode_inner<'a>(
        ip: &Ipv4Header,
        seg: &'a [u8],
        verify_csum: bool,
    ) -> Result<(TcpHeader, &'a [u8])> {
        if seg.len() < TCP_HDR_LEN {
            return Err(Errno::Inval);
        }
        let doff = (seg[12] >> 4) as usize * 4;
        if doff < TCP_HDR_LEN || doff > seg.len() {
            return Err(Errno::Inval);
        }
        if verify_csum && inet_checksum(seg, ip.pseudo_header_sum()) != 0 {
            return Err(Errno::Io);
        }
        Ok((
            TcpHeader {
                src_port: u16::from_be_bytes([seg[0], seg[1]]),
                dst_port: u16::from_be_bytes([seg[2], seg[3]]),
                seq: u32::from_be_bytes([seg[4], seg[5], seg[6], seg[7]]),
                ack: u32::from_be_bytes([seg[8], seg[9], seg[10], seg[11]]),
                flags: TcpFlags::from_u8(seg[13]),
                window: u16::from_be_bytes([seg[14], seg[15]]),
            },
            &seg[doff..],
        ))
    }
}

/// Parsed TCP options — the subset the stack understands (SACK
/// machinery; everything else is skipped structurally).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpOptions {
    /// SACK-permitted (kind 4) was present — legal on SYN/SYN-ACK
    /// only, which is the only place the stack emits or honors it.
    pub sack_permitted: bool,
    /// SACK blocks (kind 5) in wire order; `sack_count` entries valid.
    pub sack_blocks: [(u32, u32); MAX_SACK_BLOCKS],
    /// Number of valid entries in `sack_blocks`.
    pub sack_count: usize,
}

impl TcpOptions {
    /// Parses the option bytes between the fixed header and the data
    /// offset (`&seg[20..doff]`). Unknown options are skipped by their
    /// length byte; a malformed tail ends the walk (the fixed header
    /// was already validated, so the segment itself stands).
    pub fn parse(opts: &[u8]) -> Self {
        let mut out = TcpOptions::default();
        let mut i = 0;
        while i < opts.len() {
            match opts[i] {
                0 => break,  // End of option list.
                1 => i += 1, // NOP.
                kind => {
                    if i + 1 >= opts.len() {
                        break;
                    }
                    let len = opts[i + 1] as usize;
                    if len < 2 || i + len > opts.len() {
                        break;
                    }
                    if kind == 4 && len == 2 {
                        out.sack_permitted = true;
                    } else if kind == 5 && len >= 10 && (len - 2) % 8 == 0 {
                        let nblocks = (len - 2) / 8;
                        for b in 0..nblocks.min(MAX_SACK_BLOCKS) {
                            let o = i + 2 + b * 8;
                            // Length-validated above (`i + len <= opts.len()`),
                            // so the indexed form has no failure path.
                            let s = u32::from_be_bytes([opts[o], opts[o + 1], opts[o + 2], opts[o + 3]]);
                            let e =
                                u32::from_be_bytes([opts[o + 4], opts[o + 5], opts[o + 6], opts[o + 7]]);
                            out.sack_blocks[out.sack_count] = (s, e);
                            out.sack_count += 1;
                        }
                    }
                    i += len;
                }
            }
        }
        out
    }

    /// Whether anything the stack acts on was present.
    pub fn is_empty(&self) -> bool {
        !self.sack_permitted && self.sack_count == 0
    }
}

/// TCP connection states (subset of RFC 793).
///
/// `FinWait` merges FIN-WAIT-1 and CLOSING; with the connection
/// lifecycle enabled ([`Tcb::set_lifecycle_enabled`], which the stack
/// switches on whenever a virtual clock is installed) an acknowledged
/// FIN promotes to [`FinWait2`](Self::FinWait2) and the final FIN
/// lands the TCB in [`TimeWait`](Self::TimeWait) for the stack's 2MSL
/// reaper instead of closing outright. Raw TCBs (no lifecycle) keep
/// the pre-wheel behavior: FIN exchange ends in
/// [`Closed`](Self::Closed) directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    /// Passive open.
    Listen,
    /// Active open sent.
    SynSent,
    /// Handshake reply sent.
    SynReceived,
    /// Data flows.
    Established,
    /// We sent FIN (FIN-WAIT-1 / CLOSING).
    FinWait,
    /// Our FIN is acknowledged; awaiting the peer's (orphan-reaped by
    /// the stack if it never comes).
    FinWait2,
    /// Peer sent FIN; we may still send.
    CloseWait,
    /// We sent FIN after CloseWait.
    LastAck,
    /// Both FINs exchanged; lingering 2MSL so a retransmitted peer FIN
    /// still finds the TCB (and our final ACK can be regenerated).
    TimeWait,
    /// Done.
    Closed,
}

/// An outgoing segment (flags + payload), produced by the TCB.
///
/// This owned form exists for tests and diagnostics; the stack's hot
/// path uses [`Tcb::poll_output_chain_with`], which hands out the
/// payload as the send queue's own pooled buffers, moved into the
/// outgoing frame chain without a copy.
#[derive(Debug, Clone)]
pub struct OutSegment {
    /// Header to send.
    pub header: TcpHeader,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// A transmission control block.
#[derive(Debug)]
pub struct Tcb {
    /// Connection state.
    pub state: TcpState,
    local_port: u16,
    remote_port: u16,
    snd_nxt: u32,
    rcv_nxt: u32,
    /// Oldest unacknowledged sequence number (flow control).
    snd_una: u32,
    /// Peer's advertised receive window.
    snd_wnd: u32,
    /// Window we advertised in our last segment (zero-window tracking).
    last_adv_wnd: u16,
    /// Application data queued for transmission, held as the pooled
    /// buffers it was written into — the zero-copy send queue.
    /// [`app_send`](Self::app_send) writes bytes once (coalescing into
    /// the last buffer's tailroom); emission *moves* whole buffers
    /// into the outgoing frame chain, so bulk data never takes a
    /// send-ring copy. Only a window split mid-buffer copies, and only
    /// the split-off part.
    send_q: VecDeque<Netbuf>,
    /// Bytes across `send_q` (the send-buffer fill level).
    send_q_len: usize,
    /// Received data, held as the pooled RX buffers it arrived in
    /// (each trimmed to its TCP payload extent) — the zero-copy
    /// receive queue, the mirror of `send_q`. Ingest *moves* buffers
    /// in ([`on_segment_bufs`](Self::on_segment_bufs)); readers copy
    /// out ([`app_recv_into_with`](Self::app_recv_into_with)) or take
    /// buffers whole ([`app_recv_netbuf`](Self::app_recv_netbuf)).
    /// Entries are always flat (chains are flattened at ingest).
    recv_q: VecDeque<Netbuf>,
    /// Bytes across `recv_q` (what [`readable`](Self::readable)
    /// reports and the advertised window subtracts).
    recv_q_len: usize,
    /// Scratch for flattening ingested chains (reused; capacity
    /// reaches steady state after the first big receive).
    flatten_scratch: Vec<Netbuf>,
    /// Monotonic count of bytes ever ingested (readiness progress:
    /// edge-triggered watchers re-trigger on new arrivals even while
    /// data is already pending).
    rx_total: u64,
    /// Immediate duplicate ACKs forced by dropped (old / out-of-order /
    /// out-of-window) ingest data — the loss signal observability
    /// exports per connection.
    dup_acks: u64,
    /// Control segments (no payload) ready to be emitted on the wire.
    /// Data segments are never queued here: their buffers move out of
    /// `send_q` at `poll_output_chain_with` time.
    out: VecDeque<TcpHeader>,
    /// Received data awaits acknowledgement (delayed-ACK coalescing):
    /// instead of one ACK per ingested segment, the next emitted
    /// segment carries the cumulative ACK, and a pure ACK is emitted
    /// at `poll_output` time only if nothing else is leaving. A burst
    /// of 40 MSS segments (one cut super-segment) costs one ACK on the
    /// return path, not 40.
    ack_pending: bool,
    /// Maximum segment size for software segmentation (and the cut
    /// size a GSO super-segment requests).
    mss: usize,
    /// Whether the app asked to close after the send buffer drains.
    closing: bool,
    /// Peer closed its direction.
    peer_fin: bool,
    /// Whether our FIN has been emitted (so the RTO can re-emit it).
    fin_sent: bool,
    /// Retransmission queue: unacknowledged payload extents as
    /// `(seq, sent_ns, buffer)`, sequence-sorted, regenerated from
    /// returning TX frames ([`rtx_return`](Self::rtx_return)) — the
    /// buffers *are* the frames' payload, so retransmission never
    /// re-copies application bytes. `sent_ns` is the extent's last
    /// transmission time off the virtual clock (the RACK freshness
    /// input); a retransmission refreshes it when the frame re-files.
    rtx_q: VecDeque<(u32, u64, Netbuf)>,
    /// Extents fully acknowledged between polls, awaiting recycle (the
    /// next `on_segment_bufs` drains them through its recycle sink).
    rtx_released: Vec<Netbuf>,
    /// Retransmission of the extent at `snd_una` is due at the next
    /// output poll (set by the RTO, fast retransmit, and NewReno
    /// partial ACKs).
    rtx_request: bool,
    /// Virtual-clock time of the most recent stack tick (ns).
    now_ns: u64,
    /// Smoothed RTT (RFC 6298); 0 until the first sample.
    srtt_ns: u64,
    /// RTT variance (RFC 6298).
    rttvar_ns: u64,
    /// Current retransmission timeout (includes backoff).
    rto_ns: u64,
    /// Armed retransmission/persist deadline, if anything is
    /// outstanding.
    rtx_deadline_ns: Option<u64>,
    /// Consecutive RTO fires without forward progress (backoff level).
    backoff: u32,
    /// In-flight RTT measurement: `(end_seq, sent_at_ns)`; Karn's rule
    /// clears it on any retransmission.
    rtt_probe: Option<(u32, u64)>,
    /// A zero-window probe is due at the next output poll (persist
    /// timer fired).
    probe_pending: bool,
    /// Consecutive duplicate ACKs received (fast-retransmit trigger).
    dup_ack_rx: u32,
    /// Whether NewReno fast recovery is active.
    in_recovery: bool,
    /// NewReno recovery point: `snd_nxt` when recovery was entered.
    recover: u32,
    /// Whether the congestion window bounds emission (the
    /// `StackConfig::congestion_control` ablation; raw TCBs default
    /// off).
    cc_enabled: bool,
    /// Congestion window (bytes).
    cwnd: usize,
    /// Slow-start threshold (bytes).
    ssthresh: usize,
    /// An immediate duplicate ACK is owed; the next output poll emits
    /// exactly one pure ACK for it, however many gapped segments the
    /// sweep carried (dup-ACK coalescing).
    dup_ack_now: bool,
    /// Out-of-order reassembly queue: `(seq, extent)` sorted by
    /// sequence, overlap-trimmed, bounded by [`OOO_QUEUE_BUFS`] /
    /// [`OOO_QUEUE_BYTES`].
    ooo_q: VecDeque<(u32, Netbuf)>,
    /// Payload bytes across `ooo_q`.
    ooo_bytes: usize,
    /// Cumulative RTO fires (observability).
    stat_rto_fires: u64,
    /// Cumulative data retransmissions emitted (observability).
    stat_retransmits: u64,
    /// Cumulative fast-retransmit triggers (observability).
    stat_fast_retransmits: u64,
    /// Cumulative extents queued out of order (observability).
    stat_ooo_queued: u64,
    /// Whether the full connection lifecycle (FIN_WAIT_2, TIME_WAIT)
    /// is enabled — the stack switches this on when a virtual clock
    /// drives its timer wheel; raw TCBs keep the direct-to-Closed
    /// behavior so clockless setups need no reaper.
    lifecycle_enabled: bool,
    /// Whether pure ACKs are held for the delayed-ACK timer instead of
    /// being emitted at poll time (`StackConfig::delayed_ack`).
    delack_enabled: bool,
    /// Armed delayed-ACK deadline (the stack mirrors this onto its
    /// timer wheel).
    ack_deadline_ns: Option<u64>,
    /// In-order segments ingested since the last emitted ACK — the
    /// quick-ACK trigger.
    delack_segs: u32,
    /// Whether this side generates and consumes SACK information
    /// (`StackConfig::sack`); the wire still needs the peer's
    /// SACK-permitted handshake option before anything is emitted.
    sack_enabled: bool,
    /// Peer announced SACK-permitted on its SYN/SYN-ACK.
    peer_sack_ok: bool,
    /// Start of the most recently queued out-of-order extent — the
    /// block RFC 2018 §4 requires first in the next SACK option.
    sack_recent: Option<u32>,
    /// Pending duplicate-arrival report (RFC 2883 D-SACK), emitted as
    /// the first block of exactly one SACK option.
    dsack_pending: Option<(u32, u32)>,
    /// Sender scoreboard: disjoint, ascending SACKed ranges strictly
    /// above `snd_una`, merged from the peer's SACK blocks. The
    /// hole-walk retransmits only `rtx_q` extents *not* covered here.
    sacked: Vec<(u32, u32)>,
    /// Highest sequence end the hole-walk has retransmitted this
    /// episode (reset when `snd_una` advances or the RTO fires) — the
    /// RACK-less guard against re-sending the same hole every ACK.
    sack_rtx_mark: u32,
    /// Whether RACK-style time-based loss detection replaces the
    /// 3-dup-ACK threshold (`StackConfig::rack`; needs the virtual
    /// clock, the stack gates it on one being installed).
    rack_enabled: bool,
    /// Armed reordering-window deadline: loss evidence arrived and
    /// the episode opens when it expires — unless cumulative progress
    /// cancels it first (reordering, not loss).
    reo_deadline_ns: Option<u64>,
    /// Armed tail-loss-probe deadline (PTO).
    tlp_deadline_ns: Option<u64>,
    /// A tail-loss probe is due at the next output poll.
    tlp_pending: bool,
    /// A probe was already spent on this tail (one per episode; reset
    /// when `snd_una` advances).
    tlp_consumed: bool,
    /// Whether recovery emission is metered through the pacing gate
    /// (`StackConfig::pacing`; needs the virtual clock).
    pacing_enabled: bool,
    /// Bytes the pacing gate still admits before the next release.
    pace_budget: usize,
    /// Armed pacing-gate release deadline.
    pace_deadline_ns: Option<u64>,
    /// Cumulative scoreboard-driven hole retransmissions beyond the
    /// first hole (observability).
    stat_sack_rtx: u64,
    /// Cumulative spurious retransmissions detected via D-SACK.
    stat_spurious_rtx: u64,
    /// Cumulative tail-loss probes fired.
    stat_tlp_probes: u64,
    /// Cumulative pacing-gate releases.
    stat_paced_releases: u64,
    /// Cumulative out-of-order extents shed under pool pressure.
    stat_ooo_shed: u64,
}

impl Tcb {
    /// Creates a listening TCB (server side).
    pub fn listen(local_port: u16) -> Self {
        Tcb::new(TcpState::Listen, local_port, 0, 0)
    }

    /// Creates a connecting TCB and queues the SYN (client side).
    pub fn connect(local_port: u16, remote_port: u16, iss: u32) -> Self {
        let mut tcb = Tcb::new(TcpState::SynSent, local_port, remote_port, iss);
        tcb.emit(TcpFlags::SYN);
        tcb.snd_nxt = tcb.snd_nxt.wrapping_add(1); // SYN consumes a sequence.
        tcb
    }

    // ukcheck: allow(alloc) -- one-time TCB construction: queues are
    // pre-sized for steady-state bulk depth precisely so the segment
    // path never grows them (the zero_alloc suite enforces it)
    fn new(state: TcpState, local_port: u16, remote_port: u16, iss: u32) -> Self {
        Tcb {
            state,
            local_port,
            remote_port,
            snd_nxt: iss,
            rcv_nxt: 0,
            snd_una: iss,
            snd_wnd: RCV_BUF_CAP as u32,
            last_adv_wnd: RCV_BUF_CAP as u16,
            // Pre-sized for their steady-state bulk depth (the
            // zero-alloc tier-1 invariant): a full send buffer is ~32
            // pool-sized extents; the receive queue holds at most a
            // receive window of per-MSS frames (~46) plus a reassembly
            // drain burst. Recovery timing shifts queue depth between
            // runs, so lazy growth would allocate mid-measurement.
            send_q: VecDeque::with_capacity(OOO_QUEUE_BUFS),
            send_q_len: 0,
            recv_q: VecDeque::with_capacity(2 * OOO_QUEUE_BUFS),
            recv_q_len: 0,
            flatten_scratch: Vec::new(),
            rx_total: 0,
            dup_acks: 0,
            out: VecDeque::new(),
            ack_pending: false,
            mss: MSS,
            closing: false,
            peer_fin: false,
            fin_sent: false,
            // Pre-sized so steady-state loss recovery never touches
            // the heap (the zero-alloc tier-1 invariant): a full send
            // buffer is at most SND_BUF_CAP/MSS ≈ 45 in-flight extents.
            rtx_q: VecDeque::with_capacity(OOO_QUEUE_BUFS),
            rtx_released: Vec::with_capacity(OOO_QUEUE_BUFS),
            rtx_request: false,
            now_ns: 0,
            srtt_ns: 0,
            rttvar_ns: 0,
            rto_ns: RTO_INITIAL_NS,
            rtx_deadline_ns: None,
            backoff: 0,
            rtt_probe: None,
            probe_pending: false,
            dup_ack_rx: 0,
            in_recovery: false,
            recover: iss,
            cc_enabled: false,
            cwnd: INITIAL_CWND_SEGS * MSS,
            ssthresh: SND_BUF_CAP,
            dup_ack_now: false,
            ooo_q: VecDeque::with_capacity(OOO_QUEUE_BUFS),
            ooo_bytes: 0,
            stat_rto_fires: 0,
            stat_retransmits: 0,
            stat_fast_retransmits: 0,
            stat_ooo_queued: 0,
            lifecycle_enabled: false,
            delack_enabled: false,
            ack_deadline_ns: None,
            delack_segs: 0,
            sack_enabled: false,
            peer_sack_ok: false,
            sack_recent: None,
            dsack_pending: None,
            sacked: Vec::with_capacity(MAX_SACKED_RANGES),
            sack_rtx_mark: iss,
            rack_enabled: false,
            reo_deadline_ns: None,
            tlp_deadline_ns: None,
            tlp_pending: false,
            tlp_consumed: false,
            pacing_enabled: false,
            pace_budget: 0,
            pace_deadline_ns: None,
            stat_sack_rtx: 0,
            stat_spurious_rtx: 0,
            stat_tlp_probes: 0,
            stat_paced_releases: 0,
            stat_ooo_shed: 0,
        }
    }

    /// Releases the steady-state queue preallocation while the queues
    /// are still empty, letting them grow on demand instead. For
    /// stacks holding very large numbers of mostly-idle connections
    /// (`StackConfig::lean_tcbs`): an idle TCB then costs its struct
    /// size alone, and an active one reaches the same steady-state
    /// capacity after its first bursts — the zero-alloc invariant is a
    /// steady-state property, so the warmup growth amortizes away.
    // ukcheck: allow(alloc) -- empty VecDeque/Vec::new perform no heap
    // allocation; this *releases* memory for lean idle TCBs
    pub fn shrink_queues(&mut self) {
        debug_assert!(self.send_q.is_empty() && self.recv_q.is_empty());
        self.send_q = VecDeque::new();
        self.recv_q = VecDeque::new();
        self.rtx_q = VecDeque::new();
        self.rtx_released = Vec::new();
        self.ooo_q = VecDeque::new();
        self.sacked = Vec::new();
    }

    /// Overrides the maximum segment size (defaults to [`MSS`]).
    ///
    /// # Panics
    ///
    /// Panics if `mss` is zero.
    pub fn set_mss(&mut self, mss: usize) {
        assert!(mss > 0, "zero mss");
        self.mss = mss;
        // The initial window is denominated in segments (IW10).
        if self.cwnd == INITIAL_CWND_SEGS * MSS {
            self.cwnd = INITIAL_CWND_SEGS * mss;
        }
    }

    /// Enables/disables NewReno congestion control (the
    /// `StackConfig::congestion_control` ablation). Off, emission is
    /// bounded by the peer window alone — the pre-loss-recovery
    /// behavior; fast retransmit and the RTO still work either way.
    pub fn set_congestion_control(&mut self, enabled: bool) {
        self.cc_enabled = enabled;
    }

    /// Current congestion window in bytes (meaningful with the
    /// ablation on; exported as the `netstack.tcp.cwnd` gauge).
    pub fn cwnd(&self) -> usize {
        self.cwnd
    }

    /// Enables/disables the SACK machinery (the `StackConfig::sack`
    /// ablation): generating SACK options from the reassembly queue,
    /// keeping the sender scoreboard, and the surgical hole-walk
    /// retransmission. Off, every recovery path behaves exactly as
    /// before this machinery existed.
    pub fn set_sack(&mut self, enabled: bool) {
        self.sack_enabled = enabled;
        if !enabled {
            self.sacked.clear();
            self.dsack_pending = None;
            self.sack_recent = None;
        }
    }

    /// Whether the SACK ablation is on (the stack's emission path
    /// checks this to decide whether SYN/SYN-ACK carry
    /// SACK-permitted).
    pub fn sack_enabled(&self) -> bool {
        self.sack_enabled
    }

    /// Enables/disables RACK-style time-based loss detection and the
    /// tail-loss probe (the `StackConfig::rack` ablation). Needs the
    /// virtual clock: the stack only switches it on when one drives
    /// its timer wheel, since with no timer the suppressed 3-dup-ACK
    /// threshold would have no time-based replacement.
    pub fn set_rack(&mut self, enabled: bool) {
        self.rack_enabled = enabled;
        if !enabled {
            self.reo_deadline_ns = None;
            self.tlp_deadline_ns = None;
            self.tlp_pending = false;
        }
    }

    /// Whether RACK-style loss detection is on.
    pub fn rack_enabled(&self) -> bool {
        self.rack_enabled
    }

    /// Enables/disables the recovery pacing gate (the
    /// `StackConfig::pacing` ablation; clock-gated like RACK).
    pub fn set_pacing(&mut self, enabled: bool) {
        self.pacing_enabled = enabled;
        if !enabled {
            self.pace_deadline_ns = None;
            self.pace_budget = 0;
        }
    }

    /// The reordering window RACK currently applies before declaring
    /// loss (exported as the `netstack.tcp.rack_reorder_window_ns`
    /// gauge).
    pub fn reo_wnd_ns(&self) -> u64 {
        (self.srtt_ns / 2).max(RACK_REO_WND_MIN_NS)
    }

    /// The sender scoreboard: disjoint ascending SACKed ranges above
    /// `snd_una` (diagnostics; the proptests compare this against a
    /// per-byte bitmap reference).
    pub fn sacked_ranges(&self) -> &[(u32, u32)] {
        &self.sacked
    }

    /// The armed RACK deadline — the nearer of the reordering-window
    /// and tail-loss-probe deadlines (the stack mirrors this onto its
    /// timer wheel).
    pub fn rack_deadline(&self) -> Option<u64> {
        match (self.reo_deadline_ns, self.tlp_deadline_ns) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// The armed pacing-gate deadline (mirrored onto the stack's
    /// wheel like the RACK deadline).
    pub fn pace_deadline(&self) -> Option<u64> {
        self.pace_deadline_ns
    }

    /// RACK timer fired: settle whichever deadlines have passed. An
    /// expired reordering window with the hole still open is loss —
    /// enter fast retransmit exactly as the 3rd duplicate ACK would
    /// have (the dup-ACK count merely *arms* the window with RACK on;
    /// expiry is what declares loss, so reordering that resolves
    /// within the window never triggers a retransmission). An expired
    /// PTO owes the wire a tail-loss probe.
    pub fn on_rack_timeout(&mut self, now_ns: u64) {
        self.set_now(now_ns);
        if self.reo_deadline_ns.is_some_and(|d| d <= now_ns) {
            self.reo_deadline_ns = None;
            if self.snd_una != self.snd_nxt
                && !self.in_recovery
                && (self.dup_ack_rx > 0 || !self.sacked.is_empty())
            {
                self.stat_fast_retransmits += 1;
                self.rtx_request = true;
                self.in_recovery = true;
                self.recover = self.snd_nxt;
                self.sack_rtx_mark = self.snd_una;
                if self.cc_enabled {
                    let flight = self.bytes_in_flight() as usize;
                    self.ssthresh = (flight / 2).max(2 * self.mss);
                    self.cwnd = self.ssthresh + 3 * self.mss;
                }
            }
        }
        if self.tlp_deadline_ns.is_some_and(|d| d <= now_ns) {
            self.tlp_deadline_ns = None;
            if self.snd_una != self.snd_nxt && !self.in_recovery && !self.tlp_consumed {
                self.tlp_pending = true;
                self.tlp_consumed = true;
                self.stat_tlp_probes += 1;
            }
        }
    }

    /// Pacing timer fired: release the next emission quantum.
    pub fn on_pace_timeout(&mut self, now_ns: u64) {
        self.set_now(now_ns);
        if self.pace_deadline_ns.is_some_and(|d| d <= now_ns) {
            self.pace_deadline_ns = None;
            self.pace_budget = self.pace_quantum();
            self.stat_paced_releases += 1;
        }
    }

    /// Whether the pacing gate currently meters emission: only during
    /// a loss episode (recovery or backed-off RTO) — the lossless
    /// path is byte-identical with pacing compiled in and armed.
    fn pacing_active(&self) -> bool {
        self.pacing_enabled && (self.in_recovery || self.backoff > 0)
    }

    /// Bytes one pacing release admits: an eighth of the effective
    /// window, floored at two segments so recovery always progresses.
    fn pace_quantum(&self) -> usize {
        ((self.snd_wnd as usize).min(self.cwnd) / 8).max(2 * self.mss)
    }

    /// Sheds the newest (highest-sequence) reassembly-queue extent
    /// back to the pool — the low-pool graceful-degradation policy.
    /// Newest first because the peer must retransmit shed bytes
    /// anyway and the oldest extents are the ones an imminent hole
    /// fill will drain. Returns whether an extent was shed.
    pub fn shed_newest_ooo<R: FnMut(Netbuf)>(&mut self, recycle: &mut R) -> bool {
        let Some((_, nb)) = self.ooo_q.pop_back() else {
            return false;
        };
        self.ooo_bytes -= nb.len();
        self.stat_ooo_shed += 1;
        recycle(nb);
        true
    }

    /// Enables the full connection lifecycle: an orderly close walks
    /// FIN_WAIT_2 and parks in TIME_WAIT instead of jumping straight
    /// to `Closed`. The stack turns this on when a virtual clock
    /// drives its timer wheel (which then reaps TIME_WAIT after 2MSL);
    /// raw TCBs leave it off so clockless tests need no reaper.
    pub fn set_lifecycle_enabled(&mut self, enabled: bool) {
        self.lifecycle_enabled = enabled;
    }

    /// Enables delayed ACKs (`StackConfig::delayed_ack`): a lone
    /// in-order segment's pure ACK is held up to [`DELACK_NS`] for a
    /// chance to ride a data segment or coalesce with a second
    /// arrival. The stack mirrors [`ack_deadline`](Self::ack_deadline)
    /// onto its timer wheel; without a clock this must stay off or
    /// held ACKs would never fire.
    pub fn set_delayed_ack(&mut self, enabled: bool) {
        self.delack_enabled = enabled;
        if !enabled {
            self.ack_deadline_ns = None;
        }
    }

    /// The armed delayed-ACK deadline, if a pure ACK is being held.
    pub fn ack_deadline(&self) -> Option<u64> {
        self.ack_deadline_ns
    }

    /// Delayed-ACK timer fired: release the held ACK at the next
    /// output poll.
    pub fn on_delack_timeout(&mut self) {
        if self.ack_deadline_ns.is_some() {
            self.ack_deadline_ns = None;
            self.delack_segs = DELACK_SEGS; // Force quick-ACK.
        }
    }

    /// The armed retransmission/persist deadline (the stack mirrors
    /// this onto its timer wheel).
    pub fn rtx_deadline(&self) -> Option<u64> {
        self.rtx_deadline_ns
    }

    /// Advances the TCB's notion of time without running the timer —
    /// the stack stamps active connections from the pump so RTT
    /// probes and newly armed deadlines are measured from fresh time
    /// even though idle connections are never scanned.
    pub fn set_now(&mut self, now_ns: u64) {
        if now_ns > self.now_ns {
            self.now_ns = now_ns;
        }
    }

    /// Queues a keepalive probe: a pure ACK one sequence number below
    /// `snd_nxt`, which is outside the peer's acceptable window and so
    /// forces an immediate ACK from a live peer (RFC 1122 §4.2.3.6).
    /// The stack's keepalive timer drives this on idle connections and
    /// tears the connection down when enough probes go unanswered.
    pub fn emit_keepalive_probe(&mut self) {
        let window = self.rcv_window();
        self.last_adv_wnd = window;
        self.out.push_back(TcpHeader {
            src_port: self.local_port,
            dst_port: self.remote_port,
            seq: self.snd_nxt.wrapping_sub(1),
            ack: self.rcv_nxt,
            flags: TcpFlags {
                ack: true,
                ..Default::default()
            },
            window,
        });
    }

    /// Cumulative retransmission-timeout fires.
    pub fn rto_fires(&self) -> u64 {
        self.stat_rto_fires
    }

    /// Cumulative retransmitted segments (data re-emissions plus
    /// SYN/SYN-ACK/FIN re-emissions).
    pub fn retransmits(&self) -> u64 {
        self.stat_retransmits
    }

    /// Cumulative fast-retransmit triggers (3rd duplicate ACK).
    pub fn fast_retransmits(&self) -> u64 {
        self.stat_fast_retransmits
    }

    /// Cumulative extents filed into the reassembly queue.
    pub fn ooo_queued(&self) -> u64 {
        self.stat_ooo_queued
    }

    /// Cumulative scoreboard-driven retransmissions of holes beyond
    /// the first (the surgical part of SACK recovery).
    pub fn sack_rtx(&self) -> u64 {
        self.stat_sack_rtx
    }

    /// Cumulative spurious retransmissions the peer reported via
    /// D-SACK.
    pub fn spurious_rtx(&self) -> u64 {
        self.stat_spurious_rtx
    }

    /// Cumulative tail-loss probes fired.
    pub fn tlp_probes(&self) -> u64 {
        self.stat_tlp_probes
    }

    /// Cumulative pacing-gate releases.
    pub fn paced_releases(&self) -> u64 {
        self.stat_paced_releases
    }

    /// Cumulative reassembly-queue extents shed under pool pressure.
    pub fn ooo_shed(&self) -> u64 {
        self.stat_ooo_shed
    }

    /// The segment size software segmentation cuts to.
    pub fn mss(&self) -> usize {
        self.mss
    }

    /// The receive window to advertise: free space in the receive buffer.
    fn rcv_window(&self) -> u16 {
        (RCV_BUF_CAP - self.recv_q_len.min(RCV_BUF_CAP)) as u16
    }

    /// Builds the header for the next outgoing segment, recording the
    /// advertised window (zero-window tracking).
    fn make_header(&mut self, flags: TcpFlags) -> TcpHeader {
        let window = self.rcv_window();
        self.last_adv_wnd = window;
        TcpHeader {
            src_port: self.local_port,
            dst_port: self.remote_port,
            seq: self.snd_nxt,
            ack: self.rcv_nxt,
            flags,
            window,
        }
    }

    /// Queues a control (payload-free) segment.
    fn emit(&mut self, flags: TcpFlags) {
        let header = self.make_header(flags);
        self.out.push_back(header);
    }

    /// `a <= b` in sequence space.
    fn seq_le(a: u32, b: u32) -> bool {
        b.wrapping_sub(a) as i32 >= 0
    }

    /// `a < b` in sequence space.
    fn seq_lt(a: u32, b: u32) -> bool {
        (b.wrapping_sub(a) as i32) > 0
    }

    /// Processes a segment's parsed TCP options — called by the stack
    /// before [`on_segment_bufs`](Self::on_segment_bufs) whenever the
    /// data offset exceeded 20. SYN/SYN-ACK latch the peer's
    /// SACK-permitted announcement; SACK blocks feed the sender
    /// scoreboard: a D-SACK first block (at/below the cumulative ACK,
    /// or re-reporting already-SACKed bytes — RFC 2883 §4) counts a
    /// spurious retransmission and undoes the RTO backoff it caused
    /// (the Eifel-style response: the network delivered twice, it
    /// didn't lose), every other valid block merges into the
    /// scoreboard. New scoreboard coverage is loss evidence: it arms
    /// the RACK reordering window and re-requests the hole-walk
    /// mid-episode.
    pub fn process_options(&mut self, h: &TcpHeader, opts: &TcpOptions) {
        if h.flags.syn {
            self.peer_sack_ok = opts.sack_permitted;
        }
        if !self.sack_enabled || !h.flags.ack || opts.sack_count == 0 {
            return;
        }
        let mut advanced = false;
        for i in 0..opts.sack_count {
            let (s, e) = opts.sack_blocks[i];
            if !Self::seq_lt(s, e) {
                continue;
            }
            if i == 0 && (Self::seq_le(e, h.ack) || self.sack_covers(s, e)) {
                // D-SACK: the peer received these bytes twice — our
                // retransmission was spurious. Karn already voided the
                // RTT sample; the backoff the false loss inflicted is
                // undone here.
                self.stat_spurious_rtx += 1;
                if self.backoff > 0 {
                    self.backoff = 0;
                    self.rto_ns = self.computed_rto();
                }
                continue;
            }
            // A usable block lies strictly inside (cumack, snd_nxt].
            if !Self::seq_lt(h.ack, s) || !Self::seq_le(e, self.snd_nxt) {
                continue;
            }
            advanced |= self.sack_merge(s, e);
        }
        if advanced {
            if self.rack_enabled
                && !self.in_recovery
                && self.reo_deadline_ns.is_none()
                && self.snd_una != self.snd_nxt
            {
                self.reo_deadline_ns = Some(self.now_ns.saturating_add(self.reo_wnd_ns()));
            }
            if self.in_recovery {
                // Fresh coverage mid-episode exposes newly confirmed
                // holes below it: run the hole-walk again.
                self.rtx_request = true;
            }
        }
    }

    /// Whether the scoreboard fully covers `[s, e)`.
    fn sack_covers(&self, s: u32, e: u32) -> bool {
        self.sacked
            .iter()
            .any(|&(rs, re)| Self::seq_le(rs, s) && Self::seq_le(e, re))
    }

    /// Merges `[s, e)` into the sorted, disjoint scoreboard. Returns
    /// whether any previously uncovered byte became covered.
    fn sack_merge(&mut self, s: u32, e: u32) -> bool {
        if self.sack_covers(s, e) {
            return false;
        }
        let mut s = s;
        let mut e = e;
        // Absorb every overlapping/touching range into the new one.
        let mut i = 0;
        while i < self.sacked.len() {
            let (rs, re) = self.sacked[i];
            if Self::seq_le(rs, e) && Self::seq_le(s, re) {
                if Self::seq_lt(rs, s) {
                    s = rs;
                }
                if Self::seq_lt(e, re) {
                    e = re;
                }
                self.sacked.remove(i);
            } else {
                i += 1;
            }
        }
        let idx = self
            .sacked
            .iter()
            .position(|&(rs, _)| Self::seq_lt(s, rs))
            .unwrap_or(self.sacked.len());
        if self.sacked.len() < MAX_SACKED_RANGES {
            self.sacked.insert(idx, (s, e));
        }
        // A full scoreboard drops the new range: bounded memory beats
        // completeness — uncovered bytes are merely retransmitted.
        true
    }

    /// Processes the acknowledgement and window fields of a segment.
    /// `seg_payload` is the segment's payload byte count — a pure ACK
    /// (no payload, no SYN/FIN) at `snd_una` with data outstanding is a
    /// *duplicate ACK* (RFC 5681 §2), the fast-retransmit signal.
    fn process_ack(&mut self, h: &TcpHeader, seg_payload: usize) {
        if !h.flags.ack {
            return;
        }
        self.snd_wnd = u32::from(h.window);
        if Self::seq_lt(self.snd_una, h.ack) && Self::seq_le(h.ack, self.snd_nxt) {
            // New data acknowledged: release covered retransmission
            // extents, take the RTT sample, grow/deflate cwnd, restart
            // the timer.
            let acked = h.ack.wrapping_sub(self.snd_una) as usize;
            self.snd_una = h.ack;
            self.dup_ack_rx = 0;
            self.rtx_request = false;
            if self.backoff > 0 {
                self.backoff = 0;
                self.rto_ns = self.computed_rto();
            }
            // Cumulative progress: retire scoreboard ranges the ACK
            // overtook, restart the hole-walk mark, and disarm the
            // RACK deadlines — the hole they watched is gone (loss
            // evidence that persists re-arms them immediately).
            self.sacked.retain(|&(_, e)| Self::seq_lt(self.snd_una, e));
            if let Some(first) = self.sacked.first_mut() {
                if Self::seq_lt(first.0, self.snd_una) {
                    first.0 = self.snd_una;
                }
            }
            self.sack_rtx_mark = self.snd_una;
            self.reo_deadline_ns = None;
            self.tlp_deadline_ns = None;
            self.tlp_consumed = false;
            self.rtx_release();
            if let Some((end, sent_at)) = self.rtt_probe {
                if Self::seq_le(end, h.ack) {
                    let sample = self.now_ns.saturating_sub(sent_at);
                    self.rtt_sample(sample);
                    self.rtt_probe = None;
                }
            }
            if self.in_recovery {
                if Self::seq_le(self.recover, h.ack) {
                    // Full ACK: the loss episode is over.
                    self.in_recovery = false;
                    if self.cc_enabled {
                        self.cwnd = self.ssthresh.max(2 * self.mss);
                    }
                } else {
                    // NewReno partial ACK: the next hole starts at the
                    // new `snd_una` — retransmit it immediately (this
                    // also paces go-back-N recovery of a multi-segment
                    // loss after an RTO: one hole per arriving ACK
                    // instead of one per timeout), deflating by the
                    // bytes this ACK covered when cc is on.
                    self.rtx_request = true;
                    if self.cc_enabled {
                        self.cwnd =
                            self.cwnd.saturating_sub(acked).max(2 * self.mss) + self.mss;
                    }
                }
            }
            if self.cc_enabled && !self.in_recovery {
                if self.cwnd < self.ssthresh {
                    // Slow start: one MSS per ACK (bounded by bytes
                    // actually covered, so stretch ACKs don't over-open).
                    self.cwnd += acked.min(self.mss);
                } else {
                    // Congestion avoidance: ~one MSS per RTT.
                    self.cwnd += (self.mss * self.mss / self.cwnd.max(1)).max(1);
                }
                self.cwnd = self.cwnd.min(4 * SND_BUF_CAP);
            }
            self.rtx_deadline_ns = if self.snd_una == self.snd_nxt {
                None
            } else {
                Some(self.now_ns.saturating_add(self.rto_ns))
            };
        } else if h.ack == self.snd_una
            && seg_payload == 0
            && !h.flags.syn
            && !h.flags.fin
            && self.snd_una != self.snd_nxt
        {
            // Duplicate ACK: the peer is missing the segment at
            // `snd_una`.
            self.dup_ack_rx += 1;
            if self.rack_enabled {
                // RACK: a dup-ACK count is reordering-ambiguous, so it
                // only *arms* the reordering window — expiry with the
                // hole still open declares loss
                // ([`on_rack_timeout`](Self::on_rack_timeout));
                // cumulative progress before that cancels it silently.
                if !self.in_recovery && self.reo_deadline_ns.is_none() {
                    self.reo_deadline_ns =
                        Some(self.now_ns.saturating_add(self.reo_wnd_ns()));
                }
                if self.dup_ack_rx > 3 && self.cc_enabled && self.in_recovery {
                    self.cwnd += self.mss;
                }
            } else if self.dup_ack_rx == 3 {
                self.stat_fast_retransmits += 1;
                self.rtx_request = true;
                if !self.in_recovery {
                    // Enter the loss episode (partial ACKs inside it
                    // retransmit the next hole directly); cwnd surgery
                    // on top only when NewReno is on.
                    self.in_recovery = true;
                    self.recover = self.snd_nxt;
                    self.sack_rtx_mark = self.snd_una;
                    if self.cc_enabled {
                        let flight = self.bytes_in_flight() as usize;
                        self.ssthresh = (flight / 2).max(2 * self.mss);
                        self.cwnd = self.ssthresh + 3 * self.mss;
                    }
                }
            } else if self.dup_ack_rx > 3 && self.cc_enabled && self.in_recovery {
                // Each further dup-ACK means another segment left the
                // network: inflate.
                self.cwnd += self.mss;
            }
        }
    }

    /// Pops retransmission-queue extents fully covered by `snd_una`
    /// into `rtx_released` (recycled at the next ingest) and trims a
    /// partially covered front extent in place.
    fn rtx_release(&mut self) {
        while let Some((seq, _, nb)) = self.rtx_q.front_mut() {
            let end = seq.wrapping_add(nb.len() as u32);
            if Self::seq_le(end, self.snd_una) {
                let Some((_, _, nb)) = self.rtx_q.pop_front() else {
                    // front_mut() above proved the queue is non-empty.
                    debug_assert!(false, "rtx_q emptied between front_mut() and pop_front()");
                    break;
                };
                self.rtx_released.push(nb);
            } else if Self::seq_lt(*seq, self.snd_una) {
                let trim = self.snd_una.wrapping_sub(*seq) as usize;
                nb.pull_header(trim);
                *seq = self.snd_una;
                break;
            } else {
                break;
            }
        }
    }

    /// Files a returning TX frame's payload extent back into the
    /// retransmission queue (sequence-sorted, overlap-trimmed against
    /// both neighbours and `snd_una`). Returns the buffer when its
    /// bytes are already acknowledged or duplicated — the caller
    /// recycles it to the pool. The stack calls this when a frame
    /// tagged with a [`TcpHold`](uknetdev::netbuf::TcpHold) comes back
    /// from the device; `sent_ns` is the hold's transmission stamp —
    /// the extent keeps it in the queue so RACK can judge freshness.
    pub fn rtx_return(&mut self, seq: u32, sent_ns: u64, nb: Netbuf) -> Option<Netbuf> {
        let mut seq = seq;
        let mut nb = nb;
        if nb.is_empty() || self.state == TcpState::Closed {
            return Some(nb);
        }
        let mut end = seq.wrapping_add(nb.len() as u32);
        if Self::seq_le(end, self.snd_una) {
            return Some(nb); // Fully acknowledged while in flight.
        }
        if Self::seq_lt(seq, self.snd_una) {
            let trim = self.snd_una.wrapping_sub(seq) as usize;
            nb.pull_header(trim);
            seq = self.snd_una;
        }
        let mut idx = self.rtx_q.len();
        while idx > 0 && Self::seq_lt(seq, self.rtx_q[idx - 1].0) {
            idx -= 1;
        }
        if idx > 0 {
            // A retransmitted copy of this range may already sit in the
            // queue (original and retransmission both came home): keep
            // only the uncovered tail.
            let (pseq, _, pnb) = &self.rtx_q[idx - 1];
            let pend = pseq.wrapping_add(pnb.len() as u32);
            if Self::seq_le(end, pend) {
                return Some(nb);
            }
            if Self::seq_lt(seq, pend) {
                let trim = pend.wrapping_sub(seq) as usize;
                nb.pull_header(trim);
                seq = pend;
            }
        }
        if idx < self.rtx_q.len() {
            let succ_seq = self.rtx_q[idx].0;
            end = seq.wrapping_add(nb.len() as u32);
            if Self::seq_lt(succ_seq, end) {
                let keep = succ_seq.wrapping_sub(seq) as usize;
                if keep == 0 {
                    return Some(nb);
                }
                nb.truncate(keep);
            }
        }
        self.rtx_q.insert(idx, (seq, sent_ns, nb));
        // Unacknowledged bytes are now held locally: make sure a timer
        // backs them.
        if self.rtx_deadline_ns.is_none() {
            self.rtx_deadline_ns = Some(self.now_ns.saturating_add(self.rto_ns));
        }
        None
    }

    /// Feeds an RTT measurement into the RFC 6298 estimator.
    fn rtt_sample(&mut self, sample_ns: u64) {
        if self.srtt_ns == 0 {
            self.srtt_ns = sample_ns.max(1);
            self.rttvar_ns = sample_ns / 2;
        } else {
            let diff = self.srtt_ns.abs_diff(sample_ns);
            self.rttvar_ns = (3 * self.rttvar_ns + diff) / 4;
            self.srtt_ns = (7 * self.srtt_ns + sample_ns) / 8;
        }
        self.rto_ns = self.computed_rto();
    }

    /// The un-backed-off RTO from the current estimator state.
    fn computed_rto(&self) -> u64 {
        if self.srtt_ns == 0 {
            RTO_INITIAL_NS
        } else {
            (self.srtt_ns + (4 * self.rttvar_ns).max(1)).clamp(RTO_MIN_NS, RTO_MAX_NS)
        }
    }

    /// Advances the TCB's clock and fires the retransmission/persist
    /// timer if its deadline passed. Returns whether the timer fired
    /// (the stack counts fires and polls output afterwards). No clock
    /// installed on the stack means this is never called — lossless
    /// setups keep their exact pre-timer behavior.
    pub fn on_tick(&mut self, now_ns: u64) -> bool {
        self.now_ns = now_ns;
        let Some(deadline) = self.rtx_deadline_ns else {
            return false;
        };
        if now_ns < deadline {
            return false;
        }
        self.stat_rto_fires += 1;
        self.backoff = self.backoff.saturating_add(1);
        self.rto_ns = (self.rto_ns * 2).min(RTO_MAX_NS);
        self.rtt_probe = None; // Karn: samples over retransmits lie.
        match self.state {
            TcpState::SynSent => self.emit_at(self.snd_una, TcpFlags::SYN),
            TcpState::SynReceived => self.emit_at(
                self.snd_una,
                TcpFlags {
                    syn: true,
                    ack: true,
                    ..Default::default()
                },
            ),
            _ => {
                if self
                    .rtx_q
                    .front()
                    .is_some_and(|(seq, _, _)| *seq == self.snd_una)
                {
                    // Timeout: retransmit the oldest hole and open (or
                    // refresh) a loss episode up to `snd_nxt`, so the
                    // partial ACKs that follow walk the remaining holes
                    // one per ACK instead of one per timeout. With cc
                    // on this is a full loss event — restart slow
                    // start. The RTO supersedes any armed RACK
                    // deadlines, and the hole-walk mark resets so the
                    // front hole is eligible again.
                    self.rtx_request = true;
                    self.in_recovery = true;
                    self.recover = self.snd_nxt;
                    self.sack_rtx_mark = self.snd_una;
                    self.reo_deadline_ns = None;
                    self.tlp_deadline_ns = None;
                    // Reneging safeguard (RFC 6675 §5.1): a receiver
                    // under memory pressure may discard data it
                    // already SACKed (see `shed_newest_ooo`), so an
                    // RTO distrusts the whole scoreboard — everything
                    // outstanding is eligible for retransmission
                    // again.
                    self.sacked.clear();
                    if self.cc_enabled {
                        let flight = self.bytes_in_flight() as usize;
                        self.ssthresh = (flight / 2).max(2 * self.mss);
                        self.cwnd = self.mss;
                    }
                } else if self.fin_sent && self.snd_una != self.snd_nxt && self.rtx_q.is_empty()
                {
                    // Only our FIN is unacknowledged: re-emit it.
                    self.emit_at(
                        self.snd_nxt.wrapping_sub(1),
                        TcpFlags {
                            fin: true,
                            ack: true,
                            ..Default::default()
                        },
                    );
                } else if self.snd_una == self.snd_nxt
                    && self.send_q_len > 0
                    && self.window_closed()
                {
                    // Persist timer: the window-update ACK reopening a
                    // zero window may itself have been lost — probe
                    // with one byte beyond the window.
                    self.probe_pending = true;
                }
                // Otherwise the lost bytes are still in flight back to
                // us (not yet reclaimed): keep backing off, the frames
                // re-file themselves via `rtx_return` when they arrive.
            }
        }
        self.rtx_deadline_ns = Some(now_ns.saturating_add(self.rto_ns));
        true
    }

    /// Queues a control segment at an explicit (re)transmission
    /// sequence position — SYN / SYN-ACK / FIN retransmission.
    fn emit_at(&mut self, seq: u32, flags: TcpFlags) {
        let window = self.rcv_window();
        self.last_adv_wnd = window;
        self.stat_retransmits += 1;
        self.out.push_back(TcpHeader {
            src_port: self.local_port,
            dst_port: self.remote_port,
            seq,
            ack: self.rcv_nxt,
            flags,
            window,
        });
    }

    /// Handles an incoming segment (borrowed-payload convenience over
    /// [`on_segment_bufs`](Self::on_segment_bufs); accepted payload is
    /// copied into a heap netbuf — tests and diagnostics only, the
    /// stack's hot path hands the RX buffer itself over).
    pub fn on_segment(&mut self, h: &TcpHeader, payload: &[u8]) {
        self.on_segment_parts(h, std::iter::once(payload))
    }

    /// [`on_segment`](Self::on_segment) for a payload delivered as
    /// several contiguous extents — the shape of a big-receive
    /// (`VIRTIO_NET_F_GUEST_TSO4`) super-segment. The parts are one
    /// segment: control processing happens once, the parts are
    /// ingested back-to-back in sequence order.
    pub fn on_segment_parts<'a, I>(&mut self, h: &TcpHeader, payload: I)
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        self.on_segment_bufs(
            h,
            payload
                .into_iter()
                .filter(|p| !p.is_empty())
                .map(Netbuf::from_slice),
            |_| {},
        )
    }

    /// The zero-copy ingest entry: handles one logical segment whose
    /// payload arrives as *owned* netbufs (consecutive extents starting
    /// at `h.seq` — one trimmed RX buffer, the flattened extents of a
    /// big-receive chain, or a GRO-coalesced run of per-MSS segments).
    /// Accepted buffers **move into the receive queue**; buffers whose
    /// data is not accepted (old/duplicated/out-of-window), and every
    /// buffer of a control segment, are handed to `recycle` so the
    /// caller can return them to their pool.
    ///
    /// Ingest is in-order only, and never silent: dropped data forces
    /// an immediate duplicate ACK (`ack_pending`) so the peer learns
    /// our cumulative position instead of waiting forever.
    pub fn on_segment_bufs<I, R>(&mut self, h: &TcpHeader, payload: I, mut recycle: R)
    where
        I: IntoIterator<Item = Netbuf>,
        R: FnMut(Netbuf),
    {
        let payload = payload.into_iter();
        if h.flags.rst {
            // A listener must survive RSTs: an RST aimed at a LISTEN
            // socket acknowledges nothing and resets nothing (RFC 793
            // p.65 — return to LISTEN) — wedging the listener on a
            // stray RST would let one spoofed packet kill the service.
            if self.state == TcpState::Listen {
                payload.for_each(&mut recycle);
                return;
            }
            self.state = TcpState::Closed;
            payload.for_each(&mut recycle);
            // A dead connection holds nothing back for retransmission
            // or reassembly: return every queued buffer to the pool.
            self.drain_recovery_queues(&mut recycle);
            return;
        }
        match self.state {
            TcpState::Listen => {
                if h.flags.syn {
                    self.remote_port = h.src_port;
                    self.rcv_nxt = h.seq.wrapping_add(1);
                    self.emit(TcpFlags {
                            syn: true,
                            ack: true,
                            ..Default::default()
                        });
                    self.snd_nxt = self.snd_nxt.wrapping_add(1);
                    self.state = TcpState::SynReceived;
                }
                payload.for_each(recycle);
            }
            TcpState::SynSent => {
                if h.flags.syn && h.flags.ack {
                    self.process_ack(h, 0);
                    self.rcv_nxt = h.seq.wrapping_add(1);
                    self.emit(TcpFlags {
                            ack: true,
                            ..Default::default()
                        });
                    self.state = TcpState::Established;
                }
                payload.for_each(recycle);
            }
            TcpState::SynReceived => {
                if h.flags.ack {
                    self.process_ack(h, 0);
                    self.state = TcpState::Established;
                    // The ACK completing the handshake may carry data.
                    self.ingest_bufs(h, payload, &mut recycle);
                } else {
                    payload.for_each(recycle);
                }
            }
            TcpState::Established
            | TcpState::FinWait
            | TcpState::FinWait2
            | TcpState::CloseWait => {
                let seg_end = self.ingest_bufs(h, payload, &mut recycle);
                let seg_payload = seg_end.wrapping_sub(h.seq) as usize;
                self.process_ack(h, seg_payload);
                while let Some(nb) = self.rtx_released.pop() {
                    recycle(nb);
                }
                // With the lifecycle enabled, the ACK covering our FIN
                // promotes FIN-WAIT-1 → FIN-WAIT-2 (a FIN riding the
                // same segment then lands in TIME_WAIT below).
                if self.lifecycle_enabled
                    && self.state == TcpState::FinWait
                    && self.fin_sent
                    && self.snd_una == self.snd_nxt
                {
                    self.state = TcpState::FinWait2;
                }
                // A FIN is in sequence only when it lands exactly at
                // `rcv_nxt` — i.e. after every payload byte preceding
                // it was accepted. A FIN riding dropped (out-of-order
                // or duplicated) data must not advance the sequence
                // space or transition state; the forced duplicate ACK
                // from the drop tells the peer where we really are.
                let fin_in_order = self.rcv_nxt == seg_end;
                if h.flags.fin && !fin_in_order {
                    self.ack_pending = true;
                } else if h.flags.fin && self.state == TcpState::Established {
                    self.rcv_nxt = self.rcv_nxt.wrapping_add(1);
                    self.peer_fin = true;
                    self.emit(TcpFlags {
                            ack: true,
                            ..Default::default()
                        });
                    self.state = TcpState::CloseWait;
                } else if h.flags.fin
                    && matches!(self.state, TcpState::FinWait | TcpState::FinWait2)
                {
                    self.rcv_nxt = self.rcv_nxt.wrapping_add(1);
                    self.peer_fin = true;
                    self.emit(TcpFlags {
                            ack: true,
                            ..Default::default()
                        });
                    // Both FINs exchanged. With the lifecycle on, park
                    // in TIME_WAIT for the stack's 2MSL reaper (a
                    // retransmitted peer FIN still finds us and our
                    // final ACK can be regenerated); without it, the
                    // legacy direct close.
                    self.state = if self.lifecycle_enabled {
                        TcpState::TimeWait
                    } else {
                        TcpState::Closed
                    };
                }
            }
            TcpState::TimeWait => {
                // The peer retransmitting its FIN means our final ACK
                // was lost: regenerate it. Stale data duplicates in
                // 2MSL get the same treatment — re-ACK our position so
                // the peer can converge (RFC 793 p.73).
                let mut had_payload = false;
                for nb in payload {
                    had_payload |= !nb.is_empty();
                    recycle(nb);
                }
                if h.flags.fin || had_payload {
                    self.emit(TcpFlags {
                        ack: true,
                        ..Default::default()
                    });
                }
            }
            TcpState::LastAck => {
                self.process_ack(h, 0);
                // Only the ACK that covers our FIN closes; a stale or
                // duplicate ACK (rampant on a lossy wire) must not.
                if h.flags.ack && h.ack == self.snd_nxt {
                    self.state = TcpState::Closed;
                }
                payload.for_each(&mut recycle);
                while let Some(nb) = self.rtx_released.pop() {
                    recycle(nb);
                }
            }
            TcpState::Closed => {
                // Reply RST to anything but RST.
                self.emit(TcpFlags {
                        rst: true,
                        ack: true,
                        ..Default::default()
                    });
                payload.for_each(recycle);
            }
        }
    }

    /// Moves payload buffers into the receive queue (chains are
    /// flattened). An extent landing exactly at `rcv_nxt` is accepted;
    /// one spanning `rcv_nxt` is overlap-trimmed and its new tail
    /// accepted (a retransmission often re-covers bytes we already
    /// have); one landing ahead is filed into the bounded reassembly
    /// queue; wholly old or out-of-horizon data is recycled. Returns
    /// the segment's end sequence number (`h.seq` + total payload
    /// length) — the position a trailing FIN would occupy.
    fn ingest_bufs<I, R>(&mut self, h: &TcpHeader, payload: I, recycle: &mut R) -> u32
    where
        I: IntoIterator<Item = Netbuf>,
        R: FnMut(Netbuf),
    {
        let mut seq = h.seq;
        let mut ingested = false;
        let mut dropped = false;
        let mut had_payload = false;
        let mut scratch = std::mem::take(&mut self.flatten_scratch);
        for mut head in payload {
            // Flatten a chain into its extents, head first (the
            // detached head keeps its fragment-list capacity, so the
            // buffer still builds chains allocation-free after it is
            // recycled).
            head.take_frags_into(&mut scratch);
            for mut nb in std::iter::once(head).chain(scratch.drain(..)) {
                let len = nb.len();
                if len == 0 {
                    // An empty buffer carries no sequence space: the
                    // segment is still "pure ACK" for the
                    // out-of-window probe check below.
                    recycle(nb);
                    continue;
                }
                had_payload = true;
                let end = seq.wrapping_add(len as u32);
                if seq == self.rcv_nxt {
                    self.accept_in_order(nb, recycle);
                    ingested = true;
                } else if Self::seq_le(end, self.rcv_nxt) {
                    // Wholly old/duplicated: drop — but never silently
                    // (see below); the duplicate arrival is reported
                    // back as a D-SACK so the peer can tell a spurious
                    // retransmission from a lost ACK.
                    dropped = true;
                    self.note_dsack(seq, end);
                    recycle(nb);
                } else if Self::seq_lt(seq, self.rcv_nxt) {
                    // Spans `rcv_nxt`: trim the already-received front,
                    // accept the new tail (a retransmitted segment
                    // whose front we already took must not deadlock).
                    let trim = self.rcv_nxt.wrapping_sub(seq) as usize;
                    nb.pull_header(trim);
                    self.accept_in_order(nb, recycle);
                    ingested = true;
                } else {
                    // Ahead of `rcv_nxt`: reassembly-queue it (bounded;
                    // overflow recycles). Either way it is a hole
                    // signal — count it as dropped so the duplicate
                    // ACK goes out.
                    dropped = true;
                    self.ooo_insert(seq, nb, recycle);
                }
                seq = end;
            }
        }
        self.flatten_scratch = scratch;
        // A zero-length segment that is not at `rcv_nxt` is outside
        // the acceptable window — RFC 793 demands an ACK in reply.
        // This is what answers a keepalive probe (a pure ACK one
        // sequence number below `rcv_nxt`): a live peer acks it
        // immediately, a dead one stays silent.
        if !had_payload && h.seq != self.rcv_nxt && !h.flags.syn && !h.flags.fin {
            dropped = true;
        }
        if ingested {
            // The accepted bytes may have closed the hole in front of
            // the reassembly queue: drain every now-contiguous extent.
            self.ooo_drain(recycle);
            // Delayed-ACK coalescing: the acknowledgement rides the
            // next outgoing segment (or one pure ACK at poll time),
            // so a burst of segments is answered once per poll, not
            // once per segment.
            self.ack_pending = true;
            self.delack_segs = self.delack_segs.saturating_add(1);
        }
        if dropped {
            // Duplicate ACK: dropped or queued-out-of-order data
            // *must* be acknowledged at our current cumulative
            // position, or a peer whose segment was lost in delivery
            // would wait forever for an acknowledgement that never
            // comes. Emit at most one immediate dup-ACK per poll
            // cycle: a burst carrying N gapped segments answers with
            // one dup-ACK, not N (`ack_pending` still guarantees the
            // cumulative position goes out).
            self.ack_pending = true;
            self.dup_acks += 1;
            self.dup_ack_now = true;
        }
        seq
    }

    /// Accepts one extent at `rcv_nxt` into the receive queue,
    /// coalescing into the queue tail's tailroom when the extent fits
    /// (Linux's `tcp_try_coalesce`): the advertised window counts
    /// payload bytes, but each retained buffer pins a whole pool
    /// buffer — a fine-grained sender (many small segments) must not
    /// pin a buffer per segment. The copy touches only small extents;
    /// a full-MSS stream never fits the tail and stays zero-copy.
    fn accept_in_order<R: FnMut(Netbuf)>(&mut self, nb: Netbuf, recycle: &mut R) {
        let len = nb.len();
        self.recv_q_len += len;
        self.rx_total += len as u64;
        self.rcv_nxt = self.rcv_nxt.wrapping_add(len as u32);
        match self.recv_q.back_mut() {
            Some(tail) if len <= tail.tailroom() => {
                tail.append(nb.payload());
                recycle(nb);
            }
            _ => self.recv_q.push_back(nb),
        }
    }

    /// Files an out-of-order extent into the reassembly queue:
    /// sequence-sorted insert, overlap trimmed against both neighbours
    /// (fully covered, over-budget, or out-of-horizon extents are
    /// recycled instead).
    fn ooo_insert<R: FnMut(Netbuf)>(&mut self, seq: u32, nb: Netbuf, recycle: &mut R) {
        let mut seq = seq;
        let mut nb = nb;
        if self.ooo_q.len() >= OOO_QUEUE_BUFS
            || self.ooo_bytes + nb.len() > OOO_QUEUE_BYTES
            || seq.wrapping_sub(self.rcv_nxt) > OOO_SEQ_HORIZON
        {
            recycle(nb);
            return;
        }
        let mut idx = self.ooo_q.len();
        while idx > 0 && Self::seq_lt(seq, self.ooo_q[idx - 1].0) {
            idx -= 1;
        }
        let mut end = seq.wrapping_add(nb.len() as u32);
        if idx > 0 {
            let (pseq, pnb) = &self.ooo_q[idx - 1];
            let pend = pseq.wrapping_add(pnb.len() as u32);
            if Self::seq_le(end, pend) {
                // Fully covered by a queued extent: a duplicate
                // arrival, reported back as a D-SACK.
                self.note_dsack(seq, end);
                recycle(nb);
                return;
            }
            if Self::seq_lt(seq, pend) {
                let trim = pend.wrapping_sub(seq) as usize;
                nb.pull_header(trim);
                seq = pend;
            }
        }
        if idx < self.ooo_q.len() {
            let succ_seq = self.ooo_q[idx].0;
            end = seq.wrapping_add(nb.len() as u32);
            if Self::seq_lt(succ_seq, end) {
                // Keep only the part in front of the queued successor;
                // any tail beyond it is the peer's to retransmit.
                let keep = succ_seq.wrapping_sub(seq) as usize;
                if keep == 0 {
                    self.note_dsack(seq, end);
                    recycle(nb);
                    return;
                }
                nb.truncate(keep);
            }
        }
        self.ooo_bytes += nb.len();
        self.stat_ooo_queued += 1;
        // RFC 2018 §4: the first SACK block must report the block
        // containing the most recently received extent.
        self.sack_recent = Some(seq);
        self.ooo_q.insert(idx, (seq, nb));
    }

    /// Records a duplicate data arrival for D-SACK reporting
    /// (RFC 2883) — only when the SACK machinery is on and the peer
    /// negotiated it; at most one pending report (the newest wins),
    /// emitted as the first block of exactly one SACK option.
    fn note_dsack(&mut self, seq: u32, end: u32) {
        if self.sack_enabled && self.peer_sack_ok {
            self.dsack_pending = Some((seq, end));
        }
    }

    /// Builds the SACK option for the next pure ACK into `buf`,
    /// returning its total length (0 = nothing to report). Layout:
    /// `NOP NOP 5 len` then up to [`MAX_SACK_BLOCKS`] 8-byte blocks —
    /// a pending D-SACK first (RFC 2883), then the merged reassembly
    /// range containing the most recently queued extent (RFC 2018
    /// §4's recency rule), then the remaining merged ranges ascending,
    /// at most 3 non-D-SACK blocks. Consumes the pending D-SACK; the
    /// stack calls this once per output poll and attaches the bytes
    /// to the first pure ACK it emits (data frames can't carry
    /// options — the GSO cutter assumes a bare header).
    pub fn fill_sack_option(&mut self, buf: &mut [u8; TCP_MAX_OPT_LEN]) -> usize {
        if !self.sack_enabled || !self.peer_sack_ok {
            self.dsack_pending = None;
            return 0;
        }
        let dsack = self.dsack_pending.take();
        if dsack.is_none() && self.ooo_q.is_empty() {
            return 0;
        }
        let mut blocks = [(0u32, 0u32); MAX_SACK_BLOCKS];
        let mut n = 0;
        if let Some(d) = dsack {
            blocks[n] = d;
            n += 1;
        }
        // Merge the (sorted, overlap-trimmed) reassembly extents into
        // contiguous ranges on the fly: the range holding the most
        // recent insert is set aside to lead, the rest collect
        // ascending.
        let recent = self.sack_recent;
        let mut recent_block: Option<(u32, u32)> = None;
        let mut asc = [(0u32, 0u32); MAX_SACK_BLOCKS];
        let mut asc_n = 0;
        let file = |r: (u32, u32),
                        recent_block: &mut Option<(u32, u32)>,
                        asc: &mut [(u32, u32); MAX_SACK_BLOCKS],
                        asc_n: &mut usize| {
            if recent.is_some_and(|p| Self::seq_le(r.0, p) && Self::seq_lt(p, r.1)) {
                *recent_block = Some(r);
            } else if *asc_n < asc.len() {
                asc[*asc_n] = r;
                *asc_n += 1;
            }
        };
        let mut cur: Option<(u32, u32)> = None;
        for (seq, nb) in &self.ooo_q {
            let end = seq.wrapping_add(nb.len() as u32);
            match cur {
                Some((s, e)) if e == *seq => cur = Some((s, end)),
                Some(r) => {
                    file(r, &mut recent_block, &mut asc, &mut asc_n);
                    cur = Some((*seq, end));
                }
                None => cur = Some((*seq, end)),
            }
        }
        if let Some(r) = cur {
            file(r, &mut recent_block, &mut asc, &mut asc_n);
        }
        let mut normal = 0;
        if let Some(r) = recent_block {
            blocks[n] = r;
            n += 1;
            normal += 1;
        }
        let mut i = 0;
        while normal < 3 && i < asc_n && n < MAX_SACK_BLOCKS {
            blocks[n] = asc[i];
            n += 1;
            normal += 1;
            i += 1;
        }
        if n == 0 {
            return 0;
        }
        buf[0] = 1; // NOP.
        buf[1] = 1; // NOP.
        buf[2] = 5; // SACK.
        buf[3] = (2 + 8 * n) as u8;
        for (i, (s, e)) in blocks[..n].iter().enumerate() {
            let o = 4 + i * 8;
            buf[o..o + 4].copy_from_slice(&s.to_be_bytes());
            buf[o + 4..o + 8].copy_from_slice(&e.to_be_bytes());
        }
        4 + 8 * n
    }

    /// Drains reassembly-queue extents made contiguous by an advance
    /// of `rcv_nxt` into the receive queue (front-trimming partial
    /// overlap, recycling wholly stale entries).
    fn ooo_drain<R: FnMut(Netbuf)>(&mut self, recycle: &mut R) {
        while let Some(&(seq, _)) = self.ooo_q.front() {
            if Self::seq_lt(self.rcv_nxt, seq) {
                break; // Still a hole in front of the queue.
            }
            let Some((seq, mut nb)) = self.ooo_q.pop_front() else {
                // front() above proved the queue is non-empty.
                debug_assert!(false, "ooo_q emptied between front() and pop_front()");
                break;
            };
            self.ooo_bytes -= nb.len();
            let end = seq.wrapping_add(nb.len() as u32);
            if Self::seq_le(end, self.rcv_nxt) {
                recycle(nb); // Stale: in-order delivery overtook it.
                continue;
            }
            if Self::seq_lt(seq, self.rcv_nxt) {
                let trim = self.rcv_nxt.wrapping_sub(seq) as usize;
                nb.pull_header(trim);
            }
            self.accept_in_order(nb, recycle);
        }
    }

    /// Recycles **every** pooled buffer the TCB holds — send queue,
    /// receive queue, and the recovery queues — and clears the armed
    /// deadlines. The stack's reapers (TIME_WAIT 2MSL, handshake
    /// timeout, keepalive dead-peer, FIN-WAIT-2 orphan, SYN-queue
    /// eviction) call this so a torn-down connection returns its
    /// memory to the pools in full.
    pub fn drain_all_buffers<R: FnMut(Netbuf)>(&mut self, mut recycle: R) {
        while let Some(nb) = self.send_q.pop_front() {
            recycle(nb);
        }
        self.send_q_len = 0;
        while let Some(nb) = self.recv_q.pop_front() {
            recycle(nb);
        }
        self.recv_q_len = 0;
        self.drain_recovery_queues(&mut recycle);
        self.ack_deadline_ns = None;
        self.out.clear();
    }

    /// Recycles every buffer held for loss recovery (retransmission
    /// queue, pending releases, reassembly queue) — called when the
    /// connection dies and can no longer use them.
    fn drain_recovery_queues<R: FnMut(Netbuf)>(&mut self, recycle: &mut R) {
        while let Some((_, _, nb)) = self.rtx_q.pop_front() {
            recycle(nb);
        }
        while let Some(nb) = self.rtx_released.pop() {
            recycle(nb);
        }
        while let Some((_, nb)) = self.ooo_q.pop_front() {
            recycle(nb);
        }
        self.ooo_bytes = 0;
        self.rtx_deadline_ns = None;
        self.sacked.clear();
        self.dsack_pending = None;
        self.sack_recent = None;
        self.reo_deadline_ns = None;
        self.tlp_deadline_ns = None;
        self.tlp_pending = false;
        self.pace_deadline_ns = None;
        self.pace_budget = 0;
    }

    /// Queues application data for transmission, accepting at most the
    /// free send-buffer space — a partial write, like non-blocking
    /// `send(2)`. Returns the bytes accepted; `EAGAIN` when the buffer
    /// is full (tx window closed and backlog at capacity).
    ///
    /// Buffers come from the heap; the stack's pooled path is
    /// [`app_send_with`](Self::app_send_with).
    pub fn app_send(&mut self, data: &[u8]) -> Result<usize> {
        let (cap, headroom) = SEND_BUF_SHAPE;
        self.app_send_with(data, || Netbuf::alloc(cap, headroom))
    }

    /// [`app_send`](Self::app_send) with an explicit buffer supplier:
    /// the bytes are written **once**, straight into supplied buffers
    /// (coalescing into the last queued buffer's tailroom first) —
    /// the single copy bulk data ever takes inside the stack. Supplied
    /// buffers must be empty with enough headroom for all protocol
    /// headers, since the first buffer of every outgoing segment
    /// becomes the frame head.
    pub fn app_send_with<T: FnMut() -> Netbuf>(
        &mut self,
        data: &[u8],
        mut take_buf: T,
    ) -> Result<usize> {
        match self.state {
            TcpState::Established | TcpState::CloseWait | TcpState::SynReceived => {
                let space = SND_BUF_CAP - self.send_q_len.min(SND_BUF_CAP);
                if space == 0 {
                    return Err(Errno::Again);
                }
                let n = data.len().min(space);
                let mut off = 0;
                while off < n {
                    let room = self.send_q.back().map_or(0, |b| b.tailroom());
                    if room == 0 {
                        self.send_q.push_back(take_buf());
                        continue;
                    }
                    let Some(back) = self.send_q.back_mut() else {
                        // room > 0 above implies a back buffer exists;
                        // recover by taking a fresh one if not.
                        debug_assert!(false, "send_q lost its back buffer mid-append");
                        self.send_q.push_back(take_buf());
                        continue;
                    };
                    let take = room.min(n - off);
                    back.append(&data[off..off + take]);
                    off += take;
                }
                self.send_q_len += n;
                Ok(n)
            }
            _ => Err(Errno::NotConn),
        }
    }

    /// Reads up to `max` bytes the peer sent. Draining a buffer that had
    /// advertised a zero window emits a window-update ACK so the peer's
    /// transmission can resume.
    // ukcheck: allow(alloc) -- allocating convenience API; zero-copy
    // callers use `app_recv_into`/`app_recv_into_with`
    pub fn app_recv(&mut self, max: usize) -> Vec<u8> {
        let mut data = vec![0u8; max.min(self.recv_q_len)];
        let n = self.app_recv_into(&mut data);
        data.truncate(n);
        data
    }

    /// Copies up to `out.len()` received bytes into `out` (the
    /// allocation-free receive copy path), returning the count. Spent
    /// queue buffers are dropped — the pooled path is
    /// [`app_recv_into_with`](Self::app_recv_into_with). Same
    /// window-update semantics as [`app_recv`](Self::app_recv).
    pub fn app_recv_into(&mut self, out: &mut [u8]) -> usize {
        self.app_recv_into_with(out, |_| {})
    }

    /// [`app_recv_into`](Self::app_recv_into) with an explicit buffer
    /// sink: queue buffers drained to exhaustion are handed to
    /// `recycle` (the stack returns them to its pool). A buffer only
    /// partially consumed by the copy retains its tail — the start of
    /// its payload advances over the copied bytes and it stays at the
    /// queue front (split-and-retain).
    pub fn app_recv_into_with<R: FnMut(Netbuf)>(&mut self, out: &mut [u8], mut recycle: R) -> usize {
        let mut n = 0;
        while n < out.len() {
            let Some(front) = self.recv_q.front_mut() else {
                break;
            };
            let take = front.len().min(out.len() - n);
            out[n..n + take].copy_from_slice(&front.payload()[..take]);
            front.pull_header(take);
            n += take;
            if front.is_empty() {
                match self.recv_q.pop_front() {
                    Some(spent) => recycle(spent),
                    // front_mut() above proved the queue is non-empty.
                    None => debug_assert!(false, "recv_q emptied between front_mut() and pop_front()"),
                }
            }
        }
        self.recv_q_len -= n;
        if n > 0 {
            self.window_update_after_drain();
        }
        n
    }

    /// Takes the next received buffer whole — the zero-copy receive
    /// path (`tcp_recv_netbuf`): the payload extent the peer's bytes
    /// arrived in moves straight to the application, which owns it and
    /// must hand it back to the stack's pool when done. Same
    /// window-update semantics as [`app_recv`](Self::app_recv).
    pub fn app_recv_netbuf(&mut self) -> Option<Netbuf> {
        let nb = self.recv_q.pop_front()?;
        self.recv_q_len -= nb.len();
        self.window_update_after_drain();
        Some(nb)
    }

    /// Emits a window-update ACK when draining reopens a receive
    /// window that had been advertised as zero.
    fn window_update_after_drain(&mut self) {
        if self.last_adv_wnd == 0 && self.state != TcpState::Closed {
            self.emit(TcpFlags {
                ack: true,
                ..Default::default()
            });
        }
    }

    /// Bytes available to read.
    pub fn readable(&self) -> usize {
        self.recv_q_len
    }

    /// Whether control output (ACKs, handshake segments) is queued —
    /// the cheap "does a flush have anything to do" probe the netbuf
    /// receive paths use to avoid a full output poll per buffer.
    pub fn has_pending_control(&self) -> bool {
        !self.out.is_empty() || self.dup_ack_now
    }

    /// Monotonic count of bytes ever received (readiness progress).
    pub fn rx_total(&self) -> u64 {
        self.rx_total
    }

    /// Immediate duplicate ACKs forced by dropped ingest data.
    pub fn dup_acks(&self) -> u64 {
        self.dup_acks
    }

    /// Whether the peer has closed and all data was read.
    pub fn peer_closed(&self) -> bool {
        self.peer_fin && self.recv_q_len == 0
    }

    /// Whether the peer's FIN has arrived (data may remain buffered) —
    /// the `EPOLLRDHUP` condition.
    pub fn peer_fin_seen(&self) -> bool {
        self.peer_fin
    }

    /// Starts an orderly close once the send buffer drains.
    pub fn app_close(&mut self) {
        self.closing = true;
    }

    /// Bytes sent but not yet acknowledged.
    pub fn bytes_in_flight(&self) -> u32 {
        self.snd_nxt.wrapping_sub(self.snd_una)
    }

    /// Oldest unacknowledged sequence number.
    pub fn snd_una(&self) -> u32 {
        self.snd_una
    }

    /// Next sequence number to be sent.
    pub fn snd_nxt(&self) -> u32 {
        self.snd_nxt
    }

    /// Next sequence number expected from the peer.
    pub fn rcv_nxt(&self) -> u32 {
        self.rcv_nxt
    }

    /// Whether the peer's advertised window admits no more data.
    pub fn window_closed(&self) -> bool {
        self.bytes_in_flight() >= self.snd_wnd
    }

    /// Free space in the send buffer (0 when not in a sendable state).
    pub fn send_capacity(&self) -> usize {
        match self.state {
            TcpState::Established | TcpState::CloseWait | TcpState::SynReceived => {
                SND_BUF_CAP - self.send_q_len.min(SND_BUF_CAP)
            }
            _ => 0,
        }
    }

    /// Assembles the next `n` bytes of the send queue into an outgoing
    /// buffer chain. Whole buffers *move* (the zero-copy path); only
    /// two cases copy:
    ///
    /// - `n` spans several buffers but fits one wire frame
    ///   (`n <= mss`): the parts coalesce into a single fresh buffer,
    ///   since a sub-MSS frame must be one contiguous extent;
    /// - the boundary splits a buffer (window edge or segment cap):
    ///   the split-off front is copied out and the remainder stays
    ///   queued with its headroom grown past the consumed bytes.
    fn assemble_chain<T: FnMut() -> Netbuf>(&mut self, n: usize, take_buf: &mut T) -> Netbuf {
        debug_assert!(n > 0 && n <= self.send_q_len);
        let single_frame = n <= self.mss;
        let mut head: Option<Netbuf> = None;
        let link = |head: &mut Option<Netbuf>, nb: Netbuf| match head.as_mut() {
            None => *head = Some(nb),
            Some(h) => h.chain_append(nb),
        };
        let mut assembled = 0;
        while assembled < n {
            let need = n - assembled;
            let Some(front_len) = self.send_q.front().map(Netbuf::len) else {
                // `send_q_len` accounting (asserted at entry) says more
                // bytes are queued; stop and emit the short chain
                // rather than panic if the queue and counter disagree.
                debug_assert!(false, "send_q ran dry before n assembled bytes");
                break;
            };
            let whole = front_len <= need;
            let take = front_len.min(need);
            if single_frame {
                // A sub-MSS frame must be one contiguous extent: move
                // the front buffer only when it covers the frame by
                // itself; otherwise coalesce the parts by copy. A
                // buffer emptied by the copy still belongs to a pool,
                // so it rides the chain as an empty fragment and gets
                // recycled with the frame.
                if whole && take == n {
                    if let Some(b) = self.send_q.pop_front() {
                        link(&mut head, b);
                    }
                } else {
                    let h = head.get_or_insert_with(|| take_buf());
                    if let Some(front) = self.send_q.front_mut() {
                        h.append(&front.payload()[..take]);
                        front.pull_header(take);
                    }
                    if whole {
                        if let Some(spent) = self.send_q.pop_front() {
                            h.chain_append(spent);
                        }
                    }
                }
            } else if whole {
                // Chain frame: whole buffers move, zero-copy.
                if let Some(b) = self.send_q.pop_front() {
                    link(&mut head, b);
                }
            } else {
                // Boundary splits the buffer: copy out the split-off
                // front, keep the remainder queued (its start advances
                // over the consumed bytes, growing the headroom).
                let mut part = take_buf();
                if let Some(front) = self.send_q.front_mut() {
                    part.append(&front.payload()[..take]);
                    front.pull_header(take);
                }
                link(&mut head, part);
            }
            assembled += take;
        }
        self.send_q_len -= assembled;
        let head = head.unwrap_or_else(|| {
            // Unreachable unless the accounting check above fired: the
            // entry assertion guarantees at least one loop iteration.
            debug_assert!(false, "assemble_chain produced no head buffer");
            take_buf()
        });
        debug_assert_eq!(head.chain_len(), assembled);
        head
    }

    /// Streams pending transmission through `emit`: queued control
    /// segments first, then segmentation of queued data (chunks of up
    /// to `max_seg` bytes, capped by the peer's receive window, PSH on
    /// the last), then FIN once the queue drains, then — only if
    /// nothing else left — a coalesced pure ACK for ingested data.
    ///
    /// `emit` receives each segment's payload as an owned buffer
    /// chain (`None` for control segments): queued buffers move out
    /// whole, headers get prepended into the head's headroom by the
    /// caller — bulk data never takes a send-ring copy. With
    /// `max_seg` equal to the MSS this is software segmentation; with
    /// a GSO budget (e.g. 60 KB) each data `emit` hands out one
    /// super-segment, the sequence/window accounting done **once**
    /// per super-segment, and the caller attaches a
    /// [`GsoRequest`](uknetdev::netbuf::GsoRequest) so the device
    /// cuts the MSS frames. A partial peer window splits a
    /// super-segment at the window edge exactly like an MSS segment:
    /// the tail stays queued, sequence numbers advance only past
    /// emitted bytes.
    pub fn poll_output_chain_with<T, F>(&mut self, max_seg: usize, mut take_buf: T, mut emit: F)
    where
        T: FnMut() -> Netbuf,
        F: FnMut(TcpHeader, Option<Netbuf>),
    {
        let mut emitted_ack = false;
        while let Some(h) = self.out.pop_front() {
            emitted_ack |= h.flags.ack;
            emit(h, None);
        }
        // Owed duplicate ACK: emitted as a *pure* ACK (the peer's
        // dup-ACK counter ignores segments with payload) with the
        // final cumulative position of the sweep, before any data —
        // and at most once per poll cycle, however many gapped
        // segments the sweep carried.
        if self.dup_ack_now && self.state != TcpState::Closed {
            self.dup_ack_now = false;
            let header = self.make_header(TcpFlags {
                ack: true,
                ..Default::default()
            });
            emit(header, None);
            emitted_ack = true;
        }
        // Pacing gate: during a loss episode (recovery or a backed-off
        // RTO) the budget meters how many bytes one poll may emit —
        // retransmissions and post-RTO slow-start data alike — and the
        // timer wheel releases the next quantum over the SRTT instead
        // of the whole window leaving as one burst. Outside an episode
        // the gate is inert: the lossless path is byte-identical with
        // pacing compiled in and armed.
        let pacing = self.pacing_active();
        let mut pace_starved = false;
        if !pacing {
            self.pace_deadline_ns = None;
            self.pace_budget = 0;
        } else if self.pace_budget == 0 && self.pace_deadline_ns.is_none() {
            // Fresh episode: the first quantum is free.
            self.pace_budget = self.pace_quantum();
        }
        // Retransmission first: a requested re-emission (RTO fire,
        // fast retransmit, NewReno partial ACK, SACK evidence) goes
        // out before any new data — the peer is stalled on exactly
        // these bytes. With a populated scoreboard the hole-walk
        // re-emits every known hole surgically; without one, the
        // legacy single extent at `snd_una`. Either way the extent
        // *is* the original frame's payload buffer (headers stripped,
        // headroom restored), moved back out of the retransmission
        // queue without a copy; its next return re-files it.
        if self.rtx_request
            && matches!(
                self.state,
                TcpState::Established
                    | TcpState::CloseWait
                    | TcpState::FinWait
                    | TcpState::LastAck
            )
        {
            let front_home = self
                .rtx_q
                .front()
                .is_some_and(|&(seq, _, _)| seq == self.snd_una);
            if self.sack_enabled && !self.sacked.is_empty() {
                emitted_ack |= self.hole_walk(&mut emit, pacing, &mut pace_starved);
                if front_home {
                    self.rtx_request = false;
                }
            } else if front_home {
                self.rtx_request = false;
                let Some((start, _, nb)) = self.rtx_q.pop_front() else {
                    // `front_home` above proved the front exists; skip
                    // this retransmission rather than panic (the RTO
                    // will re-request it if anything is really lost).
                    debug_assert!(false, "rtx_q emptied between front() and pop_front()");
                    return;
                };
                let window = self.rcv_window();
                self.last_adv_wnd = window;
                let header = TcpHeader {
                    src_port: self.local_port,
                    dst_port: self.remote_port,
                    seq: start,
                    ack: self.rcv_nxt,
                    flags: TcpFlags {
                        ack: true,
                        psh: true,
                        ..Default::default()
                    },
                    window,
                };
                self.stat_retransmits += 1;
                self.rtt_probe = None; // Karn.
                emit(header, Some(nb));
                emitted_ack = true;
            }
            // If the front extent is not at `snd_una` (still in flight
            // back to us), the request stays pending: the next poll
            // after the frame re-files itself satisfies it.
        }
        // Tail-loss probe: re-emit the highest outstanding extent so a
        // dropped flight tail produces the ACK/SACK evidence normal
        // recovery needs, without waiting out a full RTO.
        if self.tlp_pending {
            self.tlp_pending = false;
            if matches!(
                self.state,
                TcpState::Established
                    | TcpState::CloseWait
                    | TcpState::FinWait
                    | TcpState::LastAck
            ) {
                if let Some((start, _, nb)) = self.rtx_q.pop_back() {
                    let window = self.rcv_window();
                    self.last_adv_wnd = window;
                    let header = TcpHeader {
                        src_port: self.local_port,
                        dst_port: self.remote_port,
                        seq: start,
                        ack: self.rcv_nxt,
                        flags: TcpFlags {
                            ack: true,
                            psh: true,
                            ..Default::default()
                        },
                        window,
                    };
                    self.stat_retransmits += 1;
                    self.rtt_probe = None; // Karn.
                    emit(header, Some(nb));
                    emitted_ack = true;
                }
            }
        }
        if matches!(self.state, TcpState::Established | TcpState::CloseWait) {
            while self.send_q_len > 0 {
                let in_flight = self.bytes_in_flight();
                // The peer's window and (when the ablation is on) the
                // congestion window both bound what may be in flight;
                // a TSO super-segment splits at the combined edge.
                let wnd = if self.cc_enabled {
                    (self.snd_wnd as usize).min(self.cwnd)
                } else {
                    self.snd_wnd as usize
                };
                let window_room = wnd.saturating_sub(in_flight as usize);
                if window_room == 0 {
                    break; // Tx window closed; data stays queued.
                }
                if pacing && self.pace_budget == 0 {
                    // Quantum spent: the rest of this window leaves on
                    // the next pacing release, not in this burst.
                    pace_starved = true;
                    break;
                }
                let mut n = self.send_q_len.min(max_seg).min(window_room);
                if pacing {
                    n = n.min(self.pace_budget);
                }
                let last = n == self.send_q_len;
                let header = self.make_header(TcpFlags {
                    ack: true,
                    psh: last,
                    ..Default::default()
                });
                let chain = self.assemble_chain(n, &mut take_buf);
                emit(header, Some(chain));
                emitted_ack = true;
                self.snd_nxt = self.snd_nxt.wrapping_add(n as u32);
                if pacing {
                    self.pace_budget -= n;
                }
                if self.rtt_probe.is_none() && self.backoff == 0 {
                    // Time this flight for the RFC 6298 estimator.
                    self.rtt_probe = Some((self.snd_nxt, self.now_ns));
                }
            }
            if self.probe_pending {
                self.probe_pending = false;
                if self.send_q_len > 0 && self.snd_una == self.snd_nxt && self.snd_wnd == 0 {
                    // Zero-window probe: one byte beyond the window.
                    // The receiver accepts in-order data regardless of
                    // the advertised edge and its ACK re-synchronizes
                    // the window; the byte rides the normal
                    // retransmission machinery if the probe is lost.
                    let header = self.make_header(TcpFlags {
                        ack: true,
                        psh: true,
                        ..Default::default()
                    });
                    let chain = self.assemble_chain(1, &mut take_buf);
                    emit(header, Some(chain));
                    emitted_ack = true;
                    self.snd_nxt = self.snd_nxt.wrapping_add(1);
                }
            }
            if self.closing && self.send_q_len == 0 {
                let header = self.make_header(TcpFlags {
                    fin: true,
                    ack: true,
                    ..Default::default()
                });
                emit(header, None);
                emitted_ack = true;
                self.snd_nxt = self.snd_nxt.wrapping_add(1);
                self.fin_sent = true;
                self.state = if self.state == TcpState::CloseWait {
                    TcpState::LastAck
                } else {
                    TcpState::FinWait
                };
                self.closing = false;
            }
        }
        // Ingested data still unacknowledged and no segment carried
        // the cumulative ACK out: emit one pure ACK for the whole
        // poll's worth of arrivals — unless delayed ACKs are on and
        // this is a lone in-order segment, in which case the ACK is
        // held for the delayed-ACK timer (a data segment queued
        // before the deadline carries it out for free; a second
        // arrival forces it — quick-ACK; the timer fires it at the
        // latest).
        if self.ack_pending && !emitted_ack && self.state != TcpState::Closed {
            let defer = self.delack_enabled
                && self.state == TcpState::Established
                && !self.peer_fin
                && self.delack_segs < DELACK_SEGS;
            if defer {
                if self.ack_deadline_ns.is_none() {
                    self.ack_deadline_ns = Some(self.now_ns.saturating_add(DELACK_NS));
                }
            } else {
                let header = self.make_header(TcpFlags {
                    ack: true,
                    ..Default::default()
                });
                emit(header, None);
                emitted_ack = true;
            }
        }
        if emitted_ack {
            // The cumulative position went out: any held ACK is
            // satisfied.
            self.ack_deadline_ns = None;
            self.delack_segs = 0;
            self.ack_pending = false;
        } else if self.ack_deadline_ns.is_none() {
            self.ack_pending = false;
        }
        // Arm the retransmission/persist timer: anything unacknowledged
        // in the sequence space (data, SYN, FIN) — or queued data
        // behind a closed zero window — must be backed by a deadline.
        if self.state == TcpState::Closed {
            self.rtx_deadline_ns = None;
        } else if self.snd_una != self.snd_nxt || (self.send_q_len > 0 && self.snd_wnd == 0) {
            if self.rtx_deadline_ns.is_none() {
                self.rtx_deadline_ns = Some(self.now_ns.saturating_add(self.rto_ns));
            }
        } else {
            self.rtx_deadline_ns = None;
        }
        // RACK deadlines: nothing outstanding disarms everything; an
        // outstanding tail with no open episode is backed by the
        // tail-loss probe (PTO of two SRTTs — well under the RTO
        // floor, so a dropped last segment is probed, not timed out).
        if self.state == TcpState::Closed || self.snd_una == self.snd_nxt {
            self.reo_deadline_ns = None;
            self.tlp_deadline_ns = None;
            self.pace_deadline_ns = None;
        } else if self.rack_enabled
            && !self.in_recovery
            && !self.tlp_consumed
            && self.tlp_deadline_ns.is_none()
            && matches!(
                self.state,
                TcpState::Established
                    | TcpState::CloseWait
                    | TcpState::FinWait
                    | TcpState::LastAck
            )
        {
            let pto = if self.srtt_ns > 0 {
                2 * self.srtt_ns
            } else {
                RTO_INITIAL_NS / 2
            };
            self.tlp_deadline_ns = Some(self.now_ns.saturating_add(pto.max(TLP_MIN_NS)));
        }
        if pace_starved && self.pace_deadline_ns.is_none() {
            self.pace_deadline_ns = Some(
                self.now_ns
                    .saturating_add((self.srtt_ns / 8).max(PACE_INTERVAL_MIN_NS)),
            );
        }
    }

    /// The SACK scoreboard's surgical retransmission pass (see
    /// [`poll_output_chain_with`](Self::poll_output_chain_with)):
    /// walks the retransmission queue ascending and re-emits only
    /// extents below the highest SACKed byte that the scoreboard does
    /// not cover — the holes. Returns whether anything was emitted.
    ///
    /// Guards against re-sending a hole every ACK: with RACK on, an
    /// extent is eligible only once its last transmission is at least
    /// `srtt + reo_wnd` old (a just-retransmitted extent gets its
    /// round trip); with RACK off, the episode mark admits each hole
    /// once per episode. The pacing/cwnd budget caps the walk's total
    /// bytes, but the first eligible extent always goes (forward
    /// progress).
    fn hole_walk<F>(&mut self, emit: &mut F, pacing: bool, pace_starved: &mut bool) -> bool
    where
        F: FnMut(TcpHeader, Option<Netbuf>),
    {
        let Some(&(_, high)) = self.sacked.last() else {
            return false;
        };
        let mut budget = if pacing {
            self.pace_budget
        } else if self.cc_enabled {
            (self.snd_wnd as usize).min(self.cwnd).max(2 * self.mss)
        } else {
            usize::MAX
        };
        let age_floor = self.srtt_ns + self.reo_wnd_ns();
        let mut emitted = false;
        let mut i = 0;
        while i < self.rtx_q.len() {
            let (seq, sent) = (self.rtx_q[i].0, self.rtx_q[i].1);
            let len = self.rtx_q[i].2.len();
            let end = seq.wrapping_add(len as u32);
            if !Self::seq_lt(seq, high) {
                // Nothing above the highest SACKed byte is known lost
                // (the tail is the probe's and the RTO's business).
                break;
            }
            if self.sack_covers(seq, end) {
                i += 1;
                continue;
            }
            let eligible = if self.rack_enabled {
                self.now_ns.saturating_sub(sent) >= age_floor
            } else {
                Self::seq_le(self.sack_rtx_mark, seq)
            };
            if !eligible {
                i += 1;
                continue;
            }
            if emitted && len > budget {
                if pacing {
                    *pace_starved = true;
                }
                break;
            }
            let Some((start, _, nb)) = self.rtx_q.remove(i) else {
                // The loop condition bounds i below rtx_q.len(); stop
                // the walk rather than panic (RTO covers what's left).
                debug_assert!(false, "rtx_q index went stale during hole walk");
                break;
            };
            let window = self.rcv_window();
            self.last_adv_wnd = window;
            let header = TcpHeader {
                src_port: self.local_port,
                dst_port: self.remote_port,
                seq: start,
                ack: self.rcv_nxt,
                flags: TcpFlags {
                    ack: true,
                    psh: true,
                    ..Default::default()
                },
                window,
            };
            self.stat_retransmits += 1;
            if start != self.snd_una {
                // A hole beyond the first: the retransmission classic
                // go-back-N recovery would only reach a round trip
                // later (or re-send everything in between).
                self.stat_sack_rtx += 1;
            }
            self.rtt_probe = None; // Karn.
            if !self.rack_enabled {
                self.sack_rtx_mark = end;
            }
            budget = budget.saturating_sub(len);
            emit(header, Some(nb));
            emitted = true;
        }
        if pacing {
            self.pace_budget = budget;
        }
        emitted
    }

    /// Owned-segment convenience over
    /// [`poll_output_chain_with`](Self::poll_output_chain_with)
    /// (tests, diagnostics): each segment's payload is collected into
    /// a `Vec`, segmented at the connection's MSS.
    pub fn poll_output(&mut self) -> Vec<OutSegment> {
        let mss = self.mss;
        self.poll_output_seg(mss)
    }

    /// [`poll_output`](Self::poll_output) with an explicit
    /// segmentation bound (tests drive GSO-sized super-segments
    /// through this).
    // ukcheck: allow(alloc) -- owned-segment convenience for tests and
    // diagnostics; the datapath uses `poll_output_chain_with` on
    // pooled buffers
    pub fn poll_output_seg(&mut self, max_seg: usize) -> Vec<OutSegment> {
        let (cap, headroom) = SEND_BUF_SHAPE;
        let mut segs = Vec::new();
        self.poll_output_chain_with(
            max_seg,
            || Netbuf::alloc(cap, headroom),
            |header, chain| {
                let payload = chain
                    .map(|nb| nb.chain_segments().flatten().copied().collect())
                    .unwrap_or_default();
                segs.push(OutSegment { header, payload });
            },
        );
        segs
    }

    /// The local port.
    pub fn local_port(&self) -> u16 {
        self.local_port
    }

    /// The remote port (0 while listening).
    pub fn remote_port(&self) -> u16 {
        self.remote_port
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4::IpProto;
    use crate::Ipv4Addr;

    fn ip(len: usize) -> Ipv4Header {
        Ipv4Header {
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(10, 0, 0, 2),
            proto: IpProto::Tcp,
            payload_len: len,
            ttl: 64,
        }
    }

    #[test]
    fn header_roundtrip() {
        let h = TcpHeader {
            src_port: 4000,
            dst_port: 80,
            seq: 12345,
            ack: 67890,
            flags: TcpFlags {
                syn: true,
                ack: true,
                ..Default::default()
            },
            window: 65535,
        };
        let seg = h.encode(&ip(TCP_HDR_LEN + 3), b"abc");
        let (h2, p) = TcpHeader::decode(&ip(TCP_HDR_LEN + 3), &seg).unwrap();
        assert_eq!(h, h2);
        assert_eq!(p, b"abc");
    }

    /// Drives two TCBs against each other until no segments remain.
    fn pump(a: &mut Tcb, b: &mut Tcb) {
        for _ in 0..32 {
            let from_a = a.poll_output();
            let from_b = b.poll_output();
            if from_a.is_empty() && from_b.is_empty() {
                break;
            }
            for s in from_a {
                b.on_segment(&s.header, &s.payload);
            }
            for s in from_b {
                a.on_segment(&s.header, &s.payload);
            }
        }
    }

    #[test]
    fn three_way_handshake() {
        let mut server = Tcb::listen(80);
        let mut client = Tcb::connect(4000, 80, 1000);
        pump(&mut client, &mut server);
        assert_eq!(client.state, TcpState::Established);
        assert_eq!(server.state, TcpState::Established);
        assert_eq!(server.remote_port(), 4000);
    }

    #[test]
    fn data_transfer_both_directions() {
        let mut server = Tcb::listen(80);
        let mut client = Tcb::connect(4000, 80, 1);
        pump(&mut client, &mut server);
        client.app_send(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        pump(&mut client, &mut server);
        assert_eq!(server.app_recv(1024), b"GET / HTTP/1.1\r\n\r\n");
        server.app_send(b"HTTP/1.1 200 OK\r\n\r\n").unwrap();
        pump(&mut client, &mut server);
        assert_eq!(client.app_recv(1024), b"HTTP/1.1 200 OK\r\n\r\n");
    }

    #[test]
    fn large_payload_is_segmented_by_mss() {
        let mut server = Tcb::listen(80);
        let mut client = Tcb::connect(4000, 80, 1);
        pump(&mut client, &mut server);
        let big = vec![0x5a; MSS * 3 + 100];
        client.app_send(&big).unwrap();
        let segs = client.poll_output();
        let data_segs: Vec<_> = segs.iter().filter(|s| !s.payload.is_empty()).collect();
        assert_eq!(data_segs.len(), 4);
        assert!(data_segs[..3].iter().all(|s| s.payload.len() == MSS));
        assert!(data_segs[3].header.flags.psh);
        for s in segs {
            server.on_segment(&s.header, &s.payload);
        }
        assert_eq!(server.readable(), big.len());
        assert_eq!(server.app_recv(usize::MAX), big);
    }

    #[test]
    fn orderly_close_four_way() {
        let mut server = Tcb::listen(80);
        let mut client = Tcb::connect(4000, 80, 1);
        pump(&mut client, &mut server);
        client.app_close();
        pump(&mut client, &mut server);
        assert_eq!(server.state, TcpState::CloseWait);
        assert!(server.peer_closed());
        server.app_close();
        pump(&mut client, &mut server);
        assert_eq!(server.state, TcpState::Closed);
        assert_eq!(client.state, TcpState::Closed);
    }

    #[test]
    fn send_before_established_fails() {
        let mut c = Tcb::connect(1, 2, 0);
        assert_eq!(c.app_send(b"x").unwrap_err(), Errno::NotConn);
    }

    #[test]
    fn app_send_is_partial_against_buffer_cap() {
        let mut server = Tcb::listen(80);
        let mut client = Tcb::connect(4000, 80, 1);
        pump(&mut client, &mut server);
        let big = vec![0x7fu8; SND_BUF_CAP + 10_000];
        let accepted = client.app_send(&big).unwrap();
        assert_eq!(accepted, SND_BUF_CAP, "partial write at the cap");
        assert_eq!(client.send_capacity(), 0);
        assert_eq!(client.app_send(b"more").unwrap_err(), Errno::Again);
    }

    #[test]
    fn window_closes_then_reopens_on_drain() {
        let mut server = Tcb::listen(80);
        let mut client = Tcb::connect(4000, 80, 1);
        pump(&mut client, &mut server);
        // More than one full receive window, queued at once.
        let big: Vec<u8> = (0..RCV_BUF_CAP + 1)
            .map(|i| (i % 251) as u8)
            .collect();
        let accepted = client.app_send(&big).unwrap();
        assert_eq!(accepted, big.len(), "fits the send buffer");
        pump(&mut client, &mut server);
        // The receiver's window admitted exactly one window's worth; the
        // tail stays queued and the tx window is reported closed.
        assert_eq!(server.readable(), RCV_BUF_CAP);
        assert!(client.window_closed(), "zero window reached");
        // Draining the receiver emits a window update that releases the
        // remaining byte — nothing was dropped.
        let first = server.app_recv(usize::MAX);
        pump(&mut client, &mut server);
        let rest = server.app_recv(usize::MAX);
        assert!(!client.window_closed());
        let mut all = first;
        all.extend_from_slice(&rest);
        assert_eq!(all, big, "stream intact across the closed-window stretch");
    }

    #[test]
    fn fin_waits_for_window_limited_data() {
        let mut server = Tcb::listen(80);
        let mut client = Tcb::connect(4000, 80, 1);
        pump(&mut client, &mut server);
        let big = vec![1u8; RCV_BUF_CAP + 5];
        client.app_send(&big).unwrap();
        client.app_close();
        pump(&mut client, &mut server);
        // FIN must not overtake the queued tail.
        assert!(!server.peer_fin_seen(), "FIN held back behind data");
        server.app_recv(usize::MAX);
        pump(&mut client, &mut server);
        server.app_recv(usize::MAX);
        pump(&mut client, &mut server);
        assert!(server.peer_fin_seen(), "FIN delivered after drain");
    }

    /// The audit pinning super-segment output against the send-queue
    /// and window machinery: every emitted byte range must be
    /// contiguous in sequence space (no double-send), and draining the
    /// receiver must always release the queued tail (no stall) — even
    /// when a partial peer window splits a super-segment mid-buffer,
    /// leaving a partially-consumed buffer at the queue front.
    #[test]
    fn partial_window_splits_super_segment_without_stall_or_double_send() {
        let mut server = Tcb::listen(80);
        let mut client = Tcb::connect(4000, 80, 1);
        pump(&mut client, &mut server);
        let total = SND_BUF_CAP; // One byte beyond the 65535 window.
        let data: Vec<u8> = (0..total).map(|i| (i % 251) as u8).collect();
        assert_eq!(client.app_send(&data).unwrap(), total);

        let gso_budget = 60 * 1024;
        let mut stream: Vec<u8> = Vec::new();
        let mut next_seq: Option<u32> = None;
        for _ in 0..64 {
            let mut progressed = false;
            for s in client.poll_output_seg(gso_budget) {
                if !s.payload.is_empty() {
                    // Sequence space must advance without gap or
                    // overlap across window-split super-segments.
                    if let Some(exp) = next_seq {
                        assert_eq!(s.header.seq, exp, "contiguous super-segments");
                    }
                    next_seq = Some(s.header.seq.wrapping_add(s.payload.len() as u32));
                    stream.extend_from_slice(&s.payload);
                }
                server.on_segment(&s.header, &s.payload);
                progressed = true;
            }
            // The receiver drains slowly, reopening the window a
            // little at a time — the split points move around and
            // land mid-buffer (7000 is not a buffer multiple).
            server.app_recv(7000);
            for s in server.poll_output() {
                client.on_segment(&s.header, &s.payload);
            }
            if !progressed && stream.len() == total && server.readable() == 0 {
                break;
            }
        }
        assert_eq!(stream.len(), total, "no byte stalled behind a split window");
        assert_eq!(stream, data, "byte stream intact, nothing double-sent");
        assert_eq!(client.bytes_in_flight(), 0, "everything acknowledged");
    }

    /// The zero-copy send queue: emitting a super-segment *moves* the
    /// queued buffers into the chain instead of copying — only a
    /// window/budget boundary mid-buffer copies the split-off part.
    #[test]
    fn super_segment_emission_moves_queued_buffers() {
        let mut server = Tcb::listen(80);
        let mut client = Tcb::connect(4000, 80, 1);
        pump(&mut client, &mut server);
        let data = vec![0x3cu8; 10_000];
        client.app_send(&data).unwrap();
        let mut takes = 0usize;
        let mut chains = Vec::new();
        client.poll_output_chain_with(
            60 * 1024,
            || {
                takes += 1;
                Netbuf::alloc(2048, 64)
            },
            |_, chain| chains.push(chain),
        );
        assert_eq!(chains.len(), 1, "one super-segment");
        let chain = chains.pop().unwrap().expect("data segment");
        assert_eq!(chain.chain_len(), 10_000);
        assert!(chain.frag_count() > 1, "payload spans a chain");
        assert_eq!(
            takes, 0,
            "no buffer was taken at emission: the queue's own buffers moved"
        );
    }

    /// The receive buffer is still a byte ring: after drain/refill
    /// cycles its contents wrap the backing storage and
    /// `app_recv_into` reads cross the wrap point as two slices. The
    /// delivered stream must stay exact through the wrap.
    #[test]
    fn recv_ring_wraparound_keeps_stream_exact() {
        let mut server = Tcb::listen(80);
        let mut client = Tcb::connect(4000, 80, 1);
        pump(&mut client, &mut server);
        let mut sent_log: Vec<u8> = Vec::new();
        let mut rcvd_log: Vec<u8> = Vec::new();
        let mut out = vec![0u8; 40_000];
        for round in 0..8u32 {
            // Keep a residue buffered (read less than arrived) so the
            // ring head advances without resetting, forcing wraps.
            let data: Vec<u8> =
                (0..30_000).map(|i| ((i as u32 * 31 + round) % 251) as u8).collect();
            assert_eq!(client.app_send(&data).unwrap(), data.len());
            sent_log.extend_from_slice(&data);
            pump(&mut client, &mut server);
            let n = server.app_recv_into(&mut out[..29_000]);
            rcvd_log.extend_from_slice(&out[..n]);
        }
        // Drain the residue.
        loop {
            let n = server.app_recv_into(&mut out);
            if n == 0 {
                break;
            }
            rcvd_log.extend_from_slice(&out[..n]);
        }
        pump(&mut client, &mut server);
        assert_eq!(rcvd_log.len(), sent_log.len(), "no byte lost across wraps");
        assert_eq!(rcvd_log, sent_log, "stream exact through ring wraps");
    }

    #[test]
    fn acks_coalesce_across_an_ingest_burst() {
        let mut server = Tcb::listen(80);
        let mut client = Tcb::connect(4000, 80, 1);
        pump(&mut client, &mut server);
        client.app_send(&vec![0x11u8; MSS * 8]).unwrap();
        let segs = client.poll_output();
        assert_eq!(segs.len(), 8);
        for s in &segs {
            server.on_segment(&s.header, &s.payload);
        }
        let acks = server.poll_output();
        assert_eq!(acks.len(), 1, "one coalesced ACK for the whole burst");
        assert_eq!(
            acks[0].header.ack,
            segs.last().unwrap().header.seq.wrapping_add(MSS as u32),
            "cumulative acknowledgement"
        );
    }

    /// The silent-drop regression: a duplicated segment (seq <
    /// rcv_nxt) must be answered with an immediate pure ACK at the
    /// cumulative position — the old code dropped it without a word,
    /// so a peer waiting for that acknowledgement wedged forever.
    #[test]
    fn duplicated_segment_gets_an_immediate_dup_ack() {
        let mut server = Tcb::listen(80);
        let mut client = Tcb::connect(4000, 80, 1);
        pump(&mut client, &mut server);
        client.app_send(b"hello dup").unwrap();
        let segs = client.poll_output();
        for s in &segs {
            server.on_segment(&s.header, &s.payload);
        }
        let _ = server.poll_output(); // Drain the first ACK.
        let expected_ack = server.rcv_nxt;
        // The same data segment arrives again (duplicated delivery).
        let data_seg = segs.iter().find(|s| !s.payload.is_empty()).unwrap();
        server.on_segment(&data_seg.header, &data_seg.payload);
        assert_eq!(server.readable(), b"hello dup".len(), "no double ingest");
        let acks = server.poll_output();
        assert_eq!(acks.len(), 1, "dup-ACK emitted, not silence");
        assert!(acks[0].payload.is_empty());
        assert!(acks[0].header.flags.ack);
        assert_eq!(
            acks[0].header.ack, expected_ack,
            "dup-ACK carries the cumulative position"
        );
    }

    /// Out-of-window (future) data is also dropped loudly: the pure
    /// ACK at rcv_nxt is what tells the peer to retransmit the gap.
    #[test]
    fn out_of_order_segment_is_dropped_with_a_dup_ack() {
        let mut server = Tcb::listen(80);
        let mut client = Tcb::connect(4000, 80, 1);
        pump(&mut client, &mut server);
        let rcv_before = server.rcv_nxt;
        let gap = TcpHeader {
            src_port: 4000,
            dst_port: 80,
            seq: rcv_before.wrapping_add(1000), // A hole precedes this.
            ack: server.snd_nxt,
            flags: TcpFlags {
                ack: true,
                psh: true,
                ..Default::default()
            },
            window: 65535,
        };
        server.on_segment(&gap, b"future bytes");
        assert_eq!(server.readable(), 0, "gapped data not ingested");
        assert_eq!(server.rcv_nxt, rcv_before, "sequence space untouched");
        let acks = server.poll_output();
        assert_eq!(acks.len(), 1, "drop is acknowledged, not silent");
        assert_eq!(acks[0].header.ack, rcv_before);
    }

    /// The FIN-desync regression: a FIN riding a segment whose payload
    /// was dropped (out-of-order) must not advance `rcv_nxt` or
    /// transition state — the old code did both, corrupting the
    /// sequence space so the real data could never be accepted.
    #[test]
    fn fin_with_dropped_out_of_order_data_does_not_desync() {
        let mut server = Tcb::listen(80);
        let mut client = Tcb::connect(4000, 80, 1);
        pump(&mut client, &mut server);
        let rcv_before = server.rcv_nxt;
        // An out-of-order data+FIN segment: its payload starts one
        // byte past rcv_nxt, so nothing can be accepted.
        let ooo = TcpHeader {
            src_port: 4000,
            dst_port: 80,
            seq: rcv_before.wrapping_add(1),
            ack: server.snd_nxt,
            flags: TcpFlags {
                ack: true,
                fin: true,
                psh: true,
                ..Default::default()
            },
            window: 65535,
        };
        server.on_segment(&ooo, b"tail");
        assert_eq!(server.state, TcpState::Established, "no bogus CloseWait");
        assert_eq!(server.rcv_nxt, rcv_before, "FIN did not eat a sequence");
        assert!(!server.peer_fin_seen());
        let acks = server.poll_output();
        assert_eq!(acks.len(), 1, "the drop was dup-ACKed");
        assert_eq!(acks[0].header.ack, rcv_before);
        // The stream still works: the in-order bytes and FIN arrive
        // and the connection closes normally.
        client.app_send(b"xtail").unwrap();
        client.app_close();
        pump(&mut client, &mut server);
        assert_eq!(server.app_recv(usize::MAX), b"xtail", "stream intact");
        assert_eq!(server.state, TcpState::CloseWait, "real FIN processed");
        assert!(server.peer_fin_seen());
    }

    /// A FIN-only segment that is itself out of order (retransmitted
    /// duplicate) is ignored but acknowledged.
    #[test]
    fn duplicate_fin_is_not_processed_twice() {
        let mut server = Tcb::listen(80);
        let mut client = Tcb::connect(4000, 80, 1);
        pump(&mut client, &mut server);
        client.app_close();
        let segs = client.poll_output();
        let fin = segs.iter().find(|s| s.header.flags.fin).unwrap();
        server.on_segment(&fin.header, &fin.payload);
        assert_eq!(server.state, TcpState::CloseWait);
        let rcv_after_fin = server.rcv_nxt;
        let _ = server.poll_output();
        // The same FIN again: seq now sits one below rcv_nxt.
        server.on_segment(&fin.header, &fin.payload);
        assert_eq!(server.rcv_nxt, rcv_after_fin, "FIN consumed exactly once");
        assert_eq!(server.state, TcpState::CloseWait);
        let acks = server.poll_output();
        assert_eq!(acks.len(), 1, "duplicate FIN is re-ACKed");
        assert_eq!(acks[0].header.ack, rcv_after_fin);
    }

    /// The zero-copy receive queue: ingested buffers come back out
    /// whole through `app_recv_netbuf`, in order, and mixing the copy
    /// path with the netbuf path preserves the stream (a partially
    /// copied buffer retains its tail at the queue front).
    #[test]
    fn recv_netbuf_hands_out_ingested_buffers_in_order() {
        let mut server = Tcb::listen(80);
        let mut client = Tcb::connect(4000, 80, 1);
        pump(&mut client, &mut server);
        client.app_send(b"first-segment").unwrap();
        for s in client.poll_output() {
            server.on_segment(&s.header, &s.payload);
        }
        client.app_send(b"second-segment").unwrap();
        for s in client.poll_output() {
            server.on_segment(&s.header, &s.payload);
        }
        assert_eq!(server.readable(), 27);
        // Copy out part of the first buffer; the tail must be retained.
        let mut head = [0u8; 6];
        assert_eq!(server.app_recv_into(&mut head), 6);
        assert_eq!(&head, b"first-");
        let nb = server.app_recv_netbuf().expect("retained tail");
        assert_eq!(nb.payload(), b"segment");
        let nb2 = server.app_recv_netbuf().expect("second buffer");
        assert_eq!(nb2.payload(), b"second-segment");
        assert!(server.app_recv_netbuf().is_none());
        assert_eq!(server.readable(), 0);
    }

    #[test]
    fn rst_kills_connection() {
        let mut server = Tcb::listen(80);
        let mut client = Tcb::connect(4000, 80, 1);
        pump(&mut client, &mut server);
        let rst = TcpHeader {
            src_port: 80,
            dst_port: 4000,
            seq: 0,
            ack: 0,
            flags: TcpFlags {
                rst: true,
                ..Default::default()
            },
            window: 0,
        };
        client.on_segment(&rst, &[]);
        assert_eq!(client.state, TcpState::Closed);
    }
}
