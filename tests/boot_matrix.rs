//! Integration: boot unikernels across the configuration matrix.
//!
//! Every combination of VMM x allocator x paging mode must boot, produce
//! a consistent report, and hand back working subsystems.

use unikraft_rs::alloc::AllocBackend;
use unikraft_rs::boot::paging::PagingMode;
use unikraft_rs::core::UnikernelBuilder;
use unikraft_rs::netdev::backend::VhostKind;
use unikraft_rs::plat::vmm::VmmKind;
use unikraft_rs::sched::SchedPolicy;

#[test]
fn full_matrix_boots() {
    for vmm in VmmKind::all() {
        for alloc in AllocBackend::all() {
            for paging in [PagingMode::Static, PagingMode::Dynamic, PagingMode::Disabled] {
                let mut uk = UnikernelBuilder::new("matrix")
                    .platform(vmm)
                    .allocator(alloc)
                    .paging(paging)
                    .memory(16 * 1024 * 1024)
                    .build()
                    .unwrap_or_else(|e| panic!("{vmm:?}/{alloc:?}/{paging:?}: {e}"));
                let report = uk
                    .boot()
                    .unwrap_or_else(|e| panic!("{vmm:?}/{alloc:?}/{paging:?}: {e}"));
                assert!(report.guest_ns > 0, "{vmm:?}/{alloc:?}/{paging:?}");
                assert_eq!(
                    report.guest_ns,
                    report.stages.iter().map(|s| s.ns).sum::<u64>(),
                    "stage sum must equal guest total"
                );
            }
        }
    }
}

#[test]
fn faster_vmm_means_faster_total() {
    let boot = |vmm| {
        let mut uk = UnikernelBuilder::new("x").platform(vmm).build().unwrap();
        uk.boot().unwrap().vmm_ns
    };
    assert!(boot(VmmKind::Firecracker) < boot(VmmKind::QemuMicroVm));
    assert!(boot(VmmKind::QemuMicroVm) < boot(VmmKind::Qemu));
}

#[test]
fn scheduler_and_net_compose() {
    for sched in [SchedPolicy::None, SchedPolicy::Coop, SchedPolicy::Preempt] {
        let mut uk = UnikernelBuilder::new("composed")
            .scheduler(sched)
            .with_net(VhostKind::VhostUser, 5)
            .allocator(AllocBackend::Tlsf)
            .build()
            .unwrap();
        uk.boot().unwrap();
        assert_eq!(uk.sched_mut().is_some(), sched != SchedPolicy::None);
        assert!(uk.stack_mut().is_some());
    }
}

#[test]
fn run_to_completion_image_has_no_scheduler() {
    // The paper's §3.3: scheduling is optional; a run-to-completion
    // unikernel carries no scheduler at all.
    let mut uk = UnikernelBuilder::new("rtc")
        .scheduler(SchedPolicy::None)
        .build()
        .unwrap();
    let report = uk.boot().unwrap();
    assert!(uk.sched_mut().is_none());
    assert!(report.stage_ns("sched").is_none());
}

#[test]
fn boot_reports_allocator_stage_for_every_backend() {
    for alloc in AllocBackend::all() {
        let mut uk = UnikernelBuilder::new("alloc-stage")
            .allocator(alloc)
            .memory(32 * 1024 * 1024)
            .build()
            .unwrap();
        let report = uk.boot().unwrap();
        assert!(report.stage_ns("alloc").is_some(), "{alloc:?}");
        // The booted heap serves allocations.
        let heap = uk.heap_id().unwrap();
        let reg = uk.registry_mut().unwrap();
        let p = reg.malloc(heap, 1024).unwrap();
        if alloc != AllocBackend::BootAlloc {
            reg.free(heap, p);
        }
    }
}

#[test]
fn buddy_has_slowest_alloc_stage() {
    let stage = |alloc| {
        let mut best = u64::MAX;
        for _ in 0..5 {
            let mut uk = UnikernelBuilder::new("t")
                .allocator(alloc)
                .memory(64 * 1024 * 1024)
                .build()
                .unwrap();
            let r = uk.boot().unwrap();
            best = best.min(r.stage_ns("alloc").unwrap());
        }
        best
    };
    // Fig 14's shape: buddy's per-page init dominates.
    assert!(stage(AllocBackend::Buddy) > stage(AllocBackend::BootAlloc));
    assert!(stage(AllocBackend::Buddy) > stage(AllocBackend::Tlsf));
}
