// Known-good: every violation carries a justified escape, in each of
// the three escape forms (trailing, standalone, fn-scoped).

// ukcheck: allow(alloc) -- constructor runs once at stack bring-up
pub fn new_table() -> Vec<u64> {
    Vec::with_capacity(64)
}

pub fn render(n: usize) -> String {
    // ukcheck: allow(alloc) -- cold diagnostics path, never per-frame
    format!("slot-{n}")
}

pub fn front(q: &[u8]) -> u8 {
    *q.first().unwrap() // ukcheck: allow(panic) -- caller checked is_empty
}
