//! An in-process network: wires stacks together through their devices.
//!
//! Frames harvested from one stack's TX completions are injected into the
//! destination stack's RX ring, selected by destination MAC (broadcast
//! goes everywhere). This replaces the paper's physical 10 GbE cable
//! between two Shuttle machines with a lossless in-memory link — the code
//! under test (drivers, stack, sockets) is identical.
//!
//! The wire moves *netbufs*, not owned byte vectors — and it moves
//! them in **bursts**: TX completions are reclaimed as pooled buffers
//! ([`NetStack::harvest_tx`]), each frame is "DMA"-copied onto a
//! buffer posted from the receiver's own pool (one copy, exactly what
//! a NIC does on the cable) and staged per destination, and every
//! destination gets its whole batch with a single
//! [`NetStack::deliver_burst`] — one ring crossing per burst, not per
//! frame. The sender's buffers are recycled. In steady state a `step`
//! performs zero heap allocations — buffers just circulate through
//! the pools.

use uknetdev::netbuf::Netbuf;

use crate::eth::EthHeader;
use crate::stack::NetStack;
use crate::Mac;

/// A hub connecting multiple stacks.
#[derive(Debug, Default)]
pub struct Network {
    stacks: Vec<NetStack>,
    /// Harvest scratch, reused across steps.
    wire_scratch: Vec<Netbuf>,
    /// Per-destination injection staging (reused across steps).
    inject_stage: Vec<Vec<Netbuf>>,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a stack; returns its index.
    pub fn attach(&mut self, stack: NetStack) -> usize {
        self.stacks.push(stack);
        self.inject_stage.push(Vec::new());
        self.stacks.len() - 1
    }

    /// Access a stack by index.
    pub fn stack(&mut self, idx: usize) -> &mut NetStack {
        &mut self.stacks[idx]
    }

    /// Moves frames between stacks once; returns frames moved.
    pub fn step(&mut self) -> usize {
        let mut moved = 0;
        let mut scratch = std::mem::take(&mut self.wire_scratch);
        let mut stage = std::mem::take(&mut self.inject_stage);
        for src in 0..self.stacks.len() {
            self.stacks[src].harvest_tx(&mut scratch);
            for nb in scratch.drain(..) {
                // The device must have completed any offloaded
                // checksum before the frame reached the wire.
                debug_assert!(
                    nb.csum_request().is_none(),
                    "frame crossed the wire with an unserviced csum request"
                );
                let dst = match EthHeader::decode(nb.payload()) {
                    Ok((h, _)) => h.dst,
                    Err(_) => {
                        self.stacks[src].recycle(nb);
                        continue;
                    }
                };
                for i in 0..self.stacks.len() {
                    if i == src {
                        continue;
                    }
                    if dst == self.stacks[i].mac() || dst == Mac::BROADCAST {
                        // Wire "DMA": copy the frame onto a buffer from
                        // the receiver's pool and stage it for that
                        // destination's burst.
                        let mut rx = self.stacks[i].take_rx_buf();
                        rx.set_payload(nb.payload());
                        stage[i].push(rx);
                        moved += 1;
                    }
                }
                self.stacks[src].recycle(nb);
            }
        }
        // One ring injection per destination per step.
        for (i, frames) in stage.iter_mut().enumerate() {
            if !frames.is_empty() {
                self.stacks[i].deliver_burst(frames);
            }
        }
        self.wire_scratch = scratch;
        self.inject_stage = stage;
        // Let every stack process what arrived.
        for s in &mut self.stacks {
            s.pump();
        }
        moved
    }

    /// Steps until no frames move (or `max_rounds` to bound livelock).
    pub fn run_until_quiet(&mut self, max_rounds: usize) -> usize {
        let mut total = 0;
        for _ in 0..max_rounds {
            let moved = self.step();
            total += moved;
            if moved == 0 {
                break;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::{SocketHandle, StackConfig};
    use crate::tcp::TcpState;
    use crate::{Endpoint, Ipv4Addr};
    use uknetdev::backend::VhostKind;
    use uknetdev::dev::{NetDev, NetDevConf};
    use uknetdev::VirtioNet;
    use ukplat::time::Tsc;

    fn mk_stack(n: u8) -> NetStack {
        let tsc = Tsc::new(3_600_000_000);
        let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
        dev.configure(NetDevConf::default()).unwrap();
        NetStack::new(StackConfig::node(n), Box::new(dev))
    }

    fn two_node_net() -> Network {
        let mut net = Network::new();
        net.attach(mk_stack(1));
        net.attach(mk_stack(2));
        net
    }

    #[test]
    fn udp_round_trip_through_real_packets() {
        let mut net = two_node_net();
        let server_sock = net.stack(1).udp_bind(7).unwrap();
        let client_sock = net.stack(0).udp_bind(5000).unwrap();
        let server_ep = Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 7);
        net.stack(0)
            .udp_send_to(client_sock, b"echo me", server_ep)
            .unwrap();
        net.run_until_quiet(16);
        let (from, data) = net.stack(1).udp_recv_from(server_sock).unwrap();
        assert_eq!(data, b"echo me");
        assert_eq!(from.addr, Ipv4Addr::new(10, 0, 0, 1));
        // Reply.
        net.stack(1).udp_send_to(server_sock, b"reply", from).unwrap();
        net.run_until_quiet(16);
        let (_, data) = net.stack(0).udp_recv_from(client_sock).unwrap();
        assert_eq!(data, b"reply");
    }

    #[test]
    fn tcp_connect_accept_exchange() {
        let mut net = two_node_net();
        let listener = net.stack(1).tcp_listen(80).unwrap();
        let server_ep = Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 80);
        let client = net.stack(0).tcp_connect(server_ep).unwrap();
        net.run_until_quiet(32);
        assert_eq!(net.stack(0).tcp_state(client), Some(TcpState::Established));
        let server_conn: SocketHandle = net.stack(1).tcp_accept(listener).unwrap();
        assert_eq!(
            net.stack(1).tcp_state(server_conn),
            Some(TcpState::Established)
        );
        // Request/response.
        net.stack(0).tcp_send(client, b"GET /\r\n").unwrap();
        net.run_until_quiet(32);
        let req = net.stack(1).tcp_recv(server_conn, 1024).unwrap();
        assert_eq!(req, b"GET /\r\n");
        net.stack(1).tcp_send(server_conn, b"200 OK\r\n").unwrap();
        net.run_until_quiet(32);
        let resp = net.stack(0).tcp_recv(client, 1024).unwrap();
        assert_eq!(resp, b"200 OK\r\n");
        // Teardown.
        net.stack(0).tcp_close(client).unwrap();
        net.run_until_quiet(32);
        assert!(net.stack(1).tcp_peer_closed(server_conn));
    }

    #[test]
    fn large_tcp_transfer_crosses_segmentation() {
        let mut net = two_node_net();
        let listener = net.stack(1).tcp_listen(9000).unwrap();
        let server_ep = Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 9000);
        let client = net.stack(0).tcp_connect(server_ep).unwrap();
        net.run_until_quiet(32);
        let conn = net.stack(1).tcp_accept(listener).unwrap();
        let blob: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        net.stack(0).tcp_send(client, &blob).unwrap();
        net.run_until_quiet(64);
        let got = net.stack(1).tcp_recv(conn, usize::MAX).unwrap();
        assert_eq!(got, blob);
    }

    #[test]
    fn et_retriggers_on_new_data_while_level_high() {
        use ukevent::{EventMask, EventQueue};
        let mut net = two_node_net();
        let listener = net.stack(1).tcp_listen(8100).unwrap();
        let client = net
            .stack(0)
            .tcp_connect(Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 8100))
            .unwrap();
        net.run_until_quiet(32);
        let conn = net.stack(1).tcp_accept(listener).unwrap();
        let src = net.stack(1).ready_source(conn);
        let mut q = EventQueue::new();
        q.ctl_add(1, &src, EventMask::IN | EventMask::ET).unwrap();

        net.stack(0).tcp_send(client, b"first").unwrap();
        net.run_until_quiet(32);
        assert_eq!(q.poll_ready(4).len(), 1);
        assert!(q.poll_ready(4).is_empty(), "edge consumed");
        // More data lands while the first is still unread: the level
        // never falls, but Linux ET re-triggers on each new arrival.
        net.stack(0).tcp_send(client, b"second").unwrap();
        net.run_until_quiet(32);
        assert_eq!(
            q.poll_ready(4).len(),
            1,
            "new arrival must re-trigger the edge watcher"
        );
    }

    #[test]
    fn window_closed_is_visible_through_stack_api() {
        let mut net = two_node_net();
        let listener = net.stack(1).tcp_listen(8000).unwrap();
        let client = net
            .stack(0)
            .tcp_connect(Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 8000))
            .unwrap();
        net.run_until_quiet(32);
        let conn = net.stack(1).tcp_accept(listener).unwrap();
        assert!(!net.stack(0).tcp_window_closed(client));

        // Flood more than one receive window; the server does not read.
        let big = vec![0x11u8; 80_000];
        let accepted = net.stack(0).tcp_send(client, &big).unwrap();
        assert_eq!(accepted, crate::tcp::SND_BUF_CAP, "partial write at cap");
        net.run_until_quiet(64);
        assert!(net.stack(0).tcp_window_closed(client), "peer window exhausted");
        assert!(net.stack(0).tcp_send_capacity(client) < crate::tcp::SND_BUF_CAP);

        // Server drains; the window update reopens the sender.
        let got = net.stack(1).tcp_recv(conn, usize::MAX).unwrap();
        assert_eq!(got.len(), crate::tcp::RCV_BUF_CAP);
        net.run_until_quiet(64);
        assert!(!net.stack(0).tcp_window_closed(client));
        let rest = net.stack(1).tcp_recv(conn, usize::MAX).unwrap();
        assert_eq!(got.len() + rest.len(), accepted, "no byte lost");
    }

    #[test]
    fn udp_burst_apis_round_trip_a_full_batch() {
        let mut net = two_node_net();
        let ss = net.stack(1).udp_bind(7).unwrap();
        let cs = net.stack(0).udp_bind(5000).unwrap();
        let ep = Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 7);
        // Warm ARP so the whole burst goes out as one staged batch.
        net.stack(0).udp_send_to(cs, b"warm", ep).unwrap();
        net.run_until_quiet(16);
        let mut scratch = [0u8; 2048];
        net.stack(1).udp_recv_into(ss, &mut scratch).unwrap();

        let payloads: Vec<Vec<u8>> = (0..32u8).map(|i| vec![i; 64 + i as usize]).collect();
        let sent = net
            .stack(0)
            .udp_send_burst(cs, payloads.iter().map(|p| (&p[..], ep)))
            .unwrap();
        assert_eq!(sent, 32, "whole batch staged in one burst");
        net.run_until_quiet(16);

        // recvmmsg-style drain: all 32 datagrams in one call, packed
        // back-to-back, order preserved.
        let mut buf = vec![0u8; 32 * 2048];
        let mut msgs = Vec::new();
        let n = net.stack(1).udp_recv_burst_into(ss, &mut buf, &mut msgs, 64);
        assert_eq!(n, 32);
        let mut off = 0;
        for (i, &(from, len)) in msgs.iter().enumerate() {
            assert_eq!(from.addr, Ipv4Addr::new(10, 0, 0, 1));
            assert_eq!(&buf[off..off + len], &payloads[i][..], "datagram {i}");
            off += len;
        }
        // Echo the batch back through the burst send path.
        let mut off = 0;
        let replies = msgs.iter().map(|&(from, len)| {
            let s = &buf[off..off + len];
            off += len;
            (s, from)
        });
        assert_eq!(net.stack(1).udp_send_burst(ss, replies).unwrap(), 32);
        net.run_until_quiet(16);
        let mut back = vec![0u8; 32 * 2048];
        let mut back_msgs = Vec::new();
        assert_eq!(
            net.stack(0).udp_recv_burst_into(cs, &mut back, &mut back_msgs, 64),
            32,
            "all replies arrive"
        );
    }

    #[test]
    fn udp_recv_burst_respects_max_and_buffer_space() {
        let mut net = two_node_net();
        let ss = net.stack(1).udp_bind(7).unwrap();
        let cs = net.stack(0).udp_bind(5000).unwrap();
        let ep = Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 7);
        for _ in 0..8 {
            net.stack(0).udp_send_to(cs, &[0x5a; 100], ep).unwrap();
        }
        net.run_until_quiet(16);
        let mut buf = [0u8; 4096];
        let mut msgs = Vec::new();
        // `max` caps the batch…
        assert_eq!(net.stack(1).udp_recv_burst_into(ss, &mut buf, &mut msgs, 3), 3);
        // …and a buffer with room for only two more stops early
        // without truncating (the rest stays queued).
        msgs.clear();
        assert_eq!(
            net.stack(1).udp_recv_burst_into(ss, &mut buf[..250], &mut msgs, 64),
            2
        );
        msgs.clear();
        assert_eq!(net.stack(1).udp_recv_burst_into(ss, &mut buf, &mut msgs, 64), 3);
    }

    #[test]
    fn csum_offload_ablation_interoperates_with_software_path() {
        // One node offloads TX checksums to the device, the other
        // computes them in software; the wire traffic must be
        // indistinguishable and every checksum valid on receive.
        let mut net = Network::new();
        let mut cfg = StackConfig::node(1);
        cfg.tx_csum_offload = false;
        let tsc = Tsc::new(3_600_000_000);
        let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
        dev.configure(NetDevConf::default()).unwrap();
        let soft = net.attach(NetStack::new(cfg, Box::new(dev)));
        let hard = net.attach(mk_stack(2));
        assert!(!net.stack(soft).csum_offload());
        assert!(net.stack(hard).csum_offload());

        let listener = net.stack(hard).tcp_listen(80).unwrap();
        let client = net
            .stack(soft)
            .tcp_connect(Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 80))
            .unwrap();
        net.run_until_quiet(32);
        let conn = net.stack(hard).tcp_accept(listener).unwrap();
        net.stack(soft).tcp_send(client, b"no-offload -> offload").unwrap();
        net.run_until_quiet(32);
        assert_eq!(
            net.stack(hard).tcp_recv(conn, 1024).unwrap(),
            b"no-offload -> offload"
        );
        net.stack(hard).tcp_send(conn, b"offload -> no-offload").unwrap();
        net.run_until_quiet(32);
        assert_eq!(
            net.stack(soft).tcp_recv(client, 1024).unwrap(),
            b"offload -> no-offload"
        );
        assert_eq!(
            net.stack(soft).stats().csum_offloaded,
            0,
            "software node never offloads"
        );
        assert!(
            net.stack(hard).stats().csum_offloaded > 0,
            "offload node stamps partial sums"
        );
    }

    #[test]
    fn ping_round_trip() {
        let mut net = two_node_net();
        net.stack(0)
            .ping(Ipv4Addr::new(10, 0, 0, 2), 0x77, 1)
            .unwrap();
        net.run_until_quiet(16);
        let replies = net.stack(0).ping_replies();
        assert_eq!(replies, vec![(Ipv4Addr::new(10, 0, 0, 2), 0x77, 1)]);
        // The target recorded no stray replies.
        assert!(net.stack(1).ping_replies().is_empty());
    }

    #[test]
    fn three_stacks_share_the_wire() {
        let mut net = Network::new();
        net.attach(mk_stack(1));
        net.attach(mk_stack(2));
        net.attach(mk_stack(3));
        let s2 = net.stack(1).udp_bind(1000).unwrap();
        let s3 = net.stack(2).udp_bind(1000).unwrap();
        let c = net.stack(0).udp_bind(2000).unwrap();
        net.stack(0)
            .udp_send_to(c, b"to-2", Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 1000))
            .unwrap();
        net.stack(0)
            .udp_send_to(c, b"to-3", Endpoint::new(Ipv4Addr::new(10, 0, 0, 3), 1000))
            .unwrap();
        net.run_until_quiet(16);
        assert_eq!(net.stack(1).udp_recv_from(s2).unwrap().1, b"to-2");
        assert_eq!(net.stack(2).udp_recv_from(s3).unwrap().1, b"to-3");
    }
}
