//! Application-compatibility analysis (`ukport`).
//!
//! §4.1 of the paper builds a framework that derives, per application,
//! the set of syscalls it actually needs (static analysis extended with
//! strace-driven dynamic analysis over unit tests), then compares that
//! against what Unikraft's syscall shim implements:
//!
//! - [`appdb`] — the requirement database for the top-30 Debian server
//!   applications (Figure 5's columns / Figure 7's bars);
//! - [`analysis`] — the coverage computations: the Figure 5 heatmap
//!   (how many apps need each syscall), per-app support percentages, and
//!   the "if top-5 / top-10 implemented" projections of Figure 7;
//! - [`survey`] — the developer porting-effort survey of Figure 6;
//! - [`table2`] — the 24 externally-built library archives of Table 2
//!   with their link outcomes against musl/newlib ± compat layer.

pub mod analysis;
pub mod appdb;
pub mod survey;
pub mod table2;

pub use analysis::{coverage, coverage_with_extra, top_missing, usage_counts};
pub use appdb::{AppRequirements, TOP30_APPS};
