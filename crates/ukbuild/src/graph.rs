//! Dependency graphs: extraction, metrics and DOT export.
//!
//! Figures 1–3 of the paper contrast the Linux kernel's densely
//! inter-dependent components with Unikraft's sparse micro-library
//! graphs. [`LINUX_COMPONENT_EDGES`] embeds the Figure 1 dataset (the
//! cscope cross-component call counts); [`DepGraph::from_config`]
//! generates the Unikraft graphs from the *real* dependency resolution
//! of our build system.

use std::collections::HashMap;

use crate::config::BuildConfig;
use crate::registry::LibRegistry;

/// The Linux kernel component dependency edges of Figure 1:
/// `(from, to, number_of_cross_component_calls)`.
pub static LINUX_COMPONENT_EDGES: &[(&str, &str, u32)] = &[
    ("fs", "time", 90),
    ("fs", "mm", 277),
    ("fs", "sched", 111),
    ("fs", "net", 311),
    ("fs", "block", 95),
    ("fs", "locking", 13),
    ("fs", "security", 14),
    ("fs", "irq", 23),
    ("fs", "ipc", 3),
    ("mm", "fs", 151),
    ("mm", "sched", 110),
    ("mm", "block", 37),
    ("mm", "time", 77),
    ("mm", "locking", 2),
    ("mm", "security", 4),
    ("mm", "irq", 1),
    ("sched", "mm", 213),
    ("sched", "time", 15),
    ("sched", "locking", 53),
    ("sched", "fs", 2),
    ("sched", "irq", 28),
    ("sched", "net", 6),
    ("sched", "security", 22),
    ("net", "fs", 207),
    ("net", "mm", 101),
    ("net", "sched", 36),
    ("net", "time", 16),
    ("net", "security", 8),
    ("net", "locking", 2),
    ("net", "block", 91),
    ("net", "irq", 2),
    ("block", "fs", 551),
    ("block", "mm", 107),
    ("block", "sched", 465),
    ("block", "time", 60),
    ("block", "locking", 11),
    ("block", "irq", 5),
    ("block", "security", 7),
    ("block", "net", 27),
    ("ipc", "fs", 720),
    ("ipc", "mm", 68),
    ("ipc", "sched", 46),
    ("ipc", "time", 36),
    ("ipc", "security", 25),
    ("ipc", "locking", 2),
    ("ipc", "net", 10),
    ("security", "fs", 164),
    ("security", "mm", 24),
    ("security", "sched", 30),
    ("security", "net", 117),
    ("security", "time", 8),
    ("security", "irq", 7),
    ("security", "block", 119),
    ("irq", "sched", 226),
    ("irq", "mm", 3),
    ("irq", "time", 122),
    ("irq", "locking", 19),
    ("locking", "sched", 124),
    ("locking", "time", 6),
    ("locking", "mm", 4),
    ("time", "sched", 110),
    ("time", "mm", 17),
    ("time", "irq", 67),
    ("time", "locking", 11),
    ("time", "fs", 6),
    ("time", "security", 39),
];

/// A directed dependency graph.
#[derive(Debug, Clone)]
pub struct DepGraph {
    /// Node names.
    pub nodes: Vec<String>,
    /// Edges as (from, to, weight) indices into `nodes`.
    pub edges: Vec<(usize, usize, u32)>,
}

impl DepGraph {
    /// Builds the Linux component graph from the embedded dataset.
    pub fn linux() -> Self {
        let mut nodes: Vec<String> = Vec::new();
        let mut index = HashMap::new();
        let node = |nodes: &mut Vec<String>, index: &mut HashMap<String, usize>, n: &str| {
            *index.entry(n.to_string()).or_insert_with(|| {
                nodes.push(n.to_string());
                nodes.len() - 1
            })
        };
        let mut edges = Vec::new();
        for (f, t, w) in LINUX_COMPONENT_EDGES {
            let fi = node(&mut nodes, &mut index, f);
            let ti = node(&mut nodes, &mut index, t);
            edges.push((fi, ti, *w));
        }
        DepGraph { nodes, edges }
    }

    /// Builds a Unikraft dependency graph from a resolved configuration
    /// (Figures 2 and 3 are exactly this for nginx and helloworld).
    pub fn from_config(registry: &LibRegistry, config: &BuildConfig) -> Result<Self, String> {
        let libs = config.resolve(registry)?;
        let index: HashMap<&str, usize> =
            libs.iter().enumerate().map(|(i, n)| (*n, i)).collect();
        let mut edges = Vec::new();
        for (i, name) in libs.iter().enumerate() {
            let lib = registry.get(name).expect("resolved");
            for dep in lib.deps {
                if let Some(&j) = index.get(dep) {
                    edges.push((i, j, 1));
                }
            }
        }
        Ok(DepGraph {
            nodes: libs.iter().map(|s| s.to_string()).collect(),
            edges,
        })
    }

    /// Average out-degree — the "density" that makes Linux components
    /// hard to remove or replace.
    pub fn avg_degree(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        self.edges.len() as f64 / self.nodes.len() as f64
    }

    /// Total cross-component call weight.
    pub fn total_weight(&self) -> u64 {
        self.edges.iter().map(|(_, _, w)| u64::from(*w)).sum()
    }

    /// Graphviz DOT rendering.
    pub fn to_dot(&self, name: &str) -> String {
        let mut s = format!("digraph \"{name}\" {{\n  rankdir=LR;\n");
        for n in &self.nodes {
            s.push_str(&format!("  \"{n}\";\n"));
        }
        for (f, t, w) in &self.edges {
            s.push_str(&format!(
                "  \"{}\" -> \"{}\" [label=\"{}\"];\n",
                self.nodes[*f], self.nodes[*t], w
            ));
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linux_graph_is_dense() {
        let g = DepGraph::linux();
        assert_eq!(g.nodes.len(), 10);
        // Fig 1's point: nearly every component depends on every other.
        assert!(g.avg_degree() > 5.0, "degree = {}", g.avg_degree());
        assert!(g.total_weight() > 5_000);
    }

    #[test]
    fn unikraft_hello_graph_is_tiny_and_sparse() {
        let r = LibRegistry::standard();
        let g = DepGraph::from_config(&r, &BuildConfig::new("app-helloworld")).unwrap();
        // Fig 3 shows ~8 nodes for helloworld.
        assert!(g.nodes.len() <= 12, "{:?}", g.nodes);
        assert!(g.avg_degree() < 2.5, "degree = {}", g.avg_degree());
    }

    #[test]
    fn unikraft_nginx_graph_smaller_than_linux() {
        let r = LibRegistry::standard();
        let g = DepGraph::from_config(&r, &BuildConfig::new("app-nginx")).unwrap();
        let linux = DepGraph::linux();
        assert!(g.avg_degree() < linux.avg_degree());
    }

    #[test]
    fn dot_output_is_well_formed() {
        let r = LibRegistry::standard();
        let g = DepGraph::from_config(&r, &BuildConfig::new("app-helloworld")).unwrap();
        let dot = g.to_dot("hello");
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("->"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn linux_dataset_has_famous_edges() {
        // Spot checks against the figure: ipc→fs 720, block→fs 551.
        assert!(LINUX_COMPONENT_EDGES.contains(&("ipc", "fs", 720)));
        assert!(LINUX_COMPONENT_EDGES.contains(&("block", "fs", 551)));
    }
}
