//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p ukbench --release --bin figures -- all
//! cargo run -p ukbench --release --bin figures -- fig8 fig10 tab1
//! cargo run -p ukbench --release --bin figures -- --list
//! ```

use std::time::Instant;

use ukbench::{run_experiment, ALL_EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: figures [--list] <experiment-id>... | all");
        eprintln!("experiments: {}", ALL_EXPERIMENTS.join(" "));
        std::process::exit(2);
    }
    if args.iter().any(|a| a == "--list") {
        for id in ALL_EXPERIMENTS {
            println!("{id}");
        }
        return;
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        ALL_EXPERIMENTS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    let mut failed = false;
    for id in ids {
        let t = Instant::now();
        match run_experiment(id) {
            Some(report) => {
                println!("==================== {id} ====================");
                println!("{report}");
                ukcore::log_info!("{id} completed in {:.2?}", t.elapsed());
            }
            None => {
                ukcore::log_error!("unknown experiment: {id}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
