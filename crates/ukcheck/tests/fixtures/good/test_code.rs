// Known-good: unwrap/alloc inside #[cfg(test)] items is exempt — the
// invariants police shipped datapath code, not its tests.
pub fn add(a: u8, b: u8) -> u8 {
    a.wrapping_add(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adds() {
        let v = vec![1u8, 2, 3];
        assert_eq!(add(*v.first().unwrap(), 2), 3);
    }
}
