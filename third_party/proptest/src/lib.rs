//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a miniature property-testing engine exposing the
//! subset of the proptest API the test suites use:
//!
//! - [`proptest!`] with an optional `#![proptest_config(..)]` header
//! - [`Strategy`] with `prop_map`, plus range / tuple / string-pattern
//!   strategies and [`any`]
//! - `proptest::collection::{vec, btree_map}`, `proptest::array::uniform6`
//! - [`prop_oneof!`], [`Just`], [`prop_assert!`], [`prop_assert_eq!`]
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the generated inputs via the normal assert message. Generation is
//! deterministic per test name, so failures reproduce across runs.

use std::ops::Range;

/// SplitMix64 deterministic generator — seeded from the test name so each
/// property gets an independent but reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        let mut seed = 0x9e37_79b9_7f4a_7c15u64;
        for b in name.bytes() {
            seed = seed.wrapping_mul(0x100_0000_01b3).wrapping_add(b as u64);
        }
        Self { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Error type carried by [`TestCaseResult`]; test bodies may `return
/// Ok(())` to skip the rest of a case, matching real proptest.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

pub type TestCaseResult = Result<(), TestCaseError>;

/// Runtime knobs accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f, reason }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).new_value(rng)
    }
}

/// `Strategy` adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// `Strategy` adapter produced by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates: {}", self.reason);
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].new_value(rng)
    }
}

/// Helper used by [`prop_oneof!`] to erase strategy types.
pub fn boxed_strategy<S>(s: S) -> BoxedStrategy<S::Value>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Marker produced by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// `any::<T>()` — the full-domain strategy for `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any { _marker: std::marker::PhantomData }
}

macro_rules! any_int {
    ($($t:ty),+) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        (0.0f64..1.0).new_value(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
}

/// String strategies from a regex-like pattern. Supports the shapes used
/// in this workspace: `[class]{m,n}` with literal chars and `a-z` ranges,
/// and `\PC{m,n}` (printable character). Anything else generates the
/// pattern's literal characters.
impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_pattern(self);
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

fn parse_pattern(pat: &str) -> (Vec<char>, usize, usize) {
    let chars: Vec<char> = pat.chars().collect();
    let (alphabet, rest) = if chars.first() == Some(&'[') {
        let close = chars.iter().position(|&c| c == ']').unwrap_or(chars.len() - 1);
        let mut alpha = Vec::new();
        let class = &chars[1..close];
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                for c in class[i]..=class[i + 2] {
                    alpha.push(c);
                }
                i += 3;
            } else {
                alpha.push(class[i]);
                i += 1;
            }
        }
        (alpha, &chars[close + 1..])
    } else if pat.starts_with("\\PC") {
        ((' '..='~').collect(), &chars[3..])
    } else {
        // Literal pattern: emit it verbatim once.
        return (chars.clone(), chars.len(), chars.len());
    };
    // Parse `{m,n}` repetition; default to exactly one.
    let rep: String = rest.iter().collect();
    if rep.starts_with('{') && rep.ends_with('}') {
        let body = &rep[1..rep.len() - 1];
        let mut parts = body.splitn(2, ',');
        let m = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0);
        let n = parts.next().and_then(|s| s.parse().ok()).unwrap_or(m);
        (alphabet, m, n.max(m))
    } else {
        (alphabet, 1, 1)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Size specification for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        pub min: usize,
        pub max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self { min: r.start, max: r.end - 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size: size.into() }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn new_value(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            let mut map = BTreeMap::new();
            // Insert up to 4x attempts to approach the target size even
            // with duplicate keys.
            let mut attempts = 0;
            while map.len() < len && attempts < len * 4 + 8 {
                map.insert(self.key.new_value(rng), self.value.new_value(rng));
                attempts += 1;
            }
            map
        }
    }
}

pub mod array {
    use super::{Strategy, TestRng};

    pub struct Uniform6<S>(S);

    pub fn uniform6<S: Strategy>(element: S) -> Uniform6<S> {
        Uniform6(element)
    }

    impl<S: Strategy> Strategy for Uniform6<S> {
        type Value = [S::Value; 6];
        fn new_value(&self, rng: &mut TestRng) -> [S::Value; 6] {
            [
                self.0.new_value(rng),
                self.0.new_value(rng),
                self.0.new_value(rng),
                self.0.new_value(rng),
                self.0.new_value(rng),
                self.0.new_value(rng),
            ]
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed_strategy($strat)),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed_strategy($strat)),+])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::new_value(&($strat), &mut __rng);)+
                let __outcome: $crate::TestCaseResult = (move || {
                    { $body }
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = __outcome {
                    panic!("proptest case failed: {:?}", e);
                }
            }
        }
    )*};
}
