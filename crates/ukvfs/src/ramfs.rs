//! RamFS: the in-memory filesystem Unikraft guests embed when they need
//! no persistent storage (the paper's nginx image "does not include a
//! block subsystem since it only uses RamFS", §3).

use std::collections::HashMap;

use ukplat::{Errno, Result};

use crate::vfscore::{FileSystem, Ino, NodeKind};

#[derive(Debug)]
enum Node {
    File(Vec<u8>),
    Dir(HashMap<String, Ino>),
}

/// The in-memory filesystem.
#[derive(Debug)]
pub struct RamFs {
    nodes: HashMap<Ino, Node>,
    next_ino: Ino,
}

impl Default for RamFs {
    fn default() -> Self {
        Self::new()
    }
}

impl RamFs {
    /// Root inode number.
    pub const ROOT: Ino = 1;

    /// Creates an empty filesystem with a root directory.
    pub fn new() -> Self {
        let mut nodes = HashMap::new();
        nodes.insert(Self::ROOT, Node::Dir(HashMap::new()));
        RamFs {
            nodes,
            next_ino: 2,
        }
    }

    /// Convenience: creates a file with contents, making parents.
    pub fn add_file(&mut self, path: &str, contents: &[u8]) -> Result<Ino> {
        // Create intermediate directories.
        let comps: Vec<&str> = path.split('/').filter(|c| !c.is_empty()).collect();
        for n in 1..comps.len() {
            let dir = comps[..n].join("/");
            match self.lookup(&dir) {
                Ok((_, NodeKind::Dir)) => {}
                Ok((_, NodeKind::File)) => return Err(Errno::NotDir),
                Err(_) => self.mkdir(&dir)?,
            }
        }
        let ino = self.create(path)?;
        if let Some(Node::File(data)) = self.nodes.get_mut(&ino) {
            data.clear();
            data.extend_from_slice(contents);
        }
        Ok(ino)
    }

    /// Walks to the parent directory of `path`, returning (parent ino,
    /// final component).
    fn parent_of<'a>(&mut self, path: &'a str) -> Result<(Ino, &'a str)> {
        let comps: Vec<&str> = path.split('/').filter(|c| !c.is_empty()).collect();
        let (last, dirs) = comps.split_last().ok_or(Errno::Inval)?;
        let mut cur = Self::ROOT;
        for c in dirs {
            let next = match self.nodes.get(&cur) {
                Some(Node::Dir(entries)) => *entries.get(*c).ok_or(Errno::NoEnt)?,
                _ => return Err(Errno::NotDir),
            };
            cur = next;
        }
        match self.nodes.get(&cur) {
            Some(Node::Dir(_)) => Ok((cur, last)),
            _ => Err(Errno::NotDir),
        }
    }

    fn alloc(&mut self, node: Node) -> Ino {
        let ino = self.next_ino;
        self.next_ino += 1;
        self.nodes.insert(ino, node);
        ino
    }

    /// Total bytes stored in files.
    pub fn used_bytes(&self) -> usize {
        self.nodes
            .values()
            .map(|n| match n {
                Node::File(d) => d.len(),
                Node::Dir(_) => 0,
            })
            .sum()
    }
}

impl FileSystem for RamFs {
    fn fs_name(&self) -> &'static str {
        "ramfs"
    }

    fn lookup(&mut self, path: &str) -> Result<(Ino, NodeKind)> {
        if path.is_empty() {
            return Ok((Self::ROOT, NodeKind::Dir));
        }
        let mut cur = Self::ROOT;
        for c in path.split('/').filter(|c| !c.is_empty()) {
            let next = match self.nodes.get(&cur) {
                Some(Node::Dir(entries)) => *entries.get(c).ok_or(Errno::NoEnt)?,
                _ => return Err(Errno::NotDir),
            };
            cur = next;
        }
        let kind = match self.nodes.get(&cur) {
            Some(Node::File(_)) => NodeKind::File,
            Some(Node::Dir(_)) => NodeKind::Dir,
            None => return Err(Errno::NoEnt),
        };
        Ok((cur, kind))
    }

    fn create(&mut self, path: &str) -> Result<Ino> {
        let (parent, name) = self.parent_of(path)?;
        // Truncate if it exists.
        if let Some(Node::Dir(entries)) = self.nodes.get(&parent) {
            if let Some(&ino) = entries.get(name) {
                match self.nodes.get_mut(&ino) {
                    Some(Node::File(data)) => {
                        data.clear();
                        return Ok(ino);
                    }
                    _ => return Err(Errno::IsDir),
                }
            }
        }
        let ino = self.alloc(Node::File(Vec::new()));
        match self.nodes.get_mut(&parent) {
            Some(Node::Dir(entries)) => {
                entries.insert(name.to_string(), ino);
                Ok(ino)
            }
            _ => Err(Errno::NotDir),
        }
    }

    fn read(&mut self, ino: Ino, off: u64, len: usize) -> Result<Vec<u8>> {
        match self.nodes.get(&ino) {
            Some(Node::File(data)) => {
                let start = (off as usize).min(data.len());
                let end = (start + len).min(data.len());
                Ok(data[start..end].to_vec())
            }
            Some(Node::Dir(_)) => Err(Errno::IsDir),
            None => Err(Errno::BadF),
        }
    }

    fn write(&mut self, ino: Ino, off: u64, data: &[u8]) -> Result<usize> {
        match self.nodes.get_mut(&ino) {
            Some(Node::File(file)) => {
                let off = off as usize;
                if file.len() < off + data.len() {
                    file.resize(off + data.len(), 0);
                }
                file[off..off + data.len()].copy_from_slice(data);
                Ok(data.len())
            }
            Some(Node::Dir(_)) => Err(Errno::IsDir),
            None => Err(Errno::BadF),
        }
    }

    fn size(&mut self, ino: Ino) -> Result<u64> {
        match self.nodes.get(&ino) {
            Some(Node::File(data)) => Ok(data.len() as u64),
            Some(Node::Dir(_)) => Err(Errno::IsDir),
            None => Err(Errno::BadF),
        }
    }

    fn unlink(&mut self, path: &str) -> Result<()> {
        let (parent, name) = self.parent_of(path)?;
        let name = name.to_string();
        let ino = match self.nodes.get(&parent) {
            Some(Node::Dir(entries)) => *entries.get(&name).ok_or(Errno::NoEnt)?,
            _ => return Err(Errno::NotDir),
        };
        if let Some(Node::Dir(entries)) = self.nodes.get(&ino) {
            if !entries.is_empty() {
                return Err(Errno::NotEmpty);
            }
        }
        if let Some(Node::Dir(entries)) = self.nodes.get_mut(&parent) {
            entries.remove(&name);
        }
        self.nodes.remove(&ino);
        Ok(())
    }

    fn mkdir(&mut self, path: &str) -> Result<()> {
        let (parent, name) = self.parent_of(path)?;
        let name = name.to_string();
        if let Some(Node::Dir(entries)) = self.nodes.get(&parent) {
            if entries.contains_key(&name) {
                return Err(Errno::Exist);
            }
        }
        let ino = self.alloc(Node::Dir(HashMap::new()));
        match self.nodes.get_mut(&parent) {
            Some(Node::Dir(entries)) => {
                entries.insert(name, ino);
                Ok(())
            }
            _ => Err(Errno::NotDir),
        }
    }

    fn readdir(&mut self, path: &str) -> Result<Vec<String>> {
        let (ino, kind) = self.lookup(path)?;
        if kind != NodeKind::Dir {
            return Err(Errno::NotDir);
        }
        match self.nodes.get(&ino) {
            Some(Node::Dir(entries)) => Ok(entries.keys().cloned().collect()),
            _ => Err(Errno::NotDir),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_lookup() {
        let mut fs = RamFs::new();
        let ino = fs.create("file.txt").unwrap();
        assert_eq!(fs.lookup("file.txt").unwrap(), (ino, NodeKind::File));
    }

    #[test]
    fn sparse_write_zero_fills() {
        let mut fs = RamFs::new();
        let ino = fs.create("f").unwrap();
        fs.write(ino, 4, b"xy").unwrap();
        assert_eq!(fs.read(ino, 0, 10).unwrap(), vec![0, 0, 0, 0, b'x', b'y']);
    }

    #[test]
    fn read_past_eof_is_short() {
        let mut fs = RamFs::new();
        let ino = fs.create("f").unwrap();
        fs.write(ino, 0, b"abc").unwrap();
        assert_eq!(fs.read(ino, 2, 10).unwrap(), b"c");
        assert!(fs.read(ino, 100, 10).unwrap().is_empty());
    }

    #[test]
    fn add_file_creates_parents() {
        let mut fs = RamFs::new();
        fs.add_file("a/b/c/d.txt", b"deep").unwrap();
        let (ino, _) = fs.lookup("a/b/c/d.txt").unwrap();
        assert_eq!(fs.read(ino, 0, 10).unwrap(), b"deep");
        assert_eq!(fs.lookup("a/b").unwrap().1, NodeKind::Dir);
    }

    #[test]
    fn unlink_nonempty_dir_fails() {
        let mut fs = RamFs::new();
        fs.mkdir("d").unwrap();
        fs.add_file("d/f", b"x").unwrap();
        assert_eq!(fs.unlink("d").unwrap_err(), Errno::NotEmpty);
        fs.unlink("d/f").unwrap();
        fs.unlink("d").unwrap();
        assert!(fs.lookup("d").is_err());
    }

    #[test]
    fn mkdir_existing_fails() {
        let mut fs = RamFs::new();
        fs.mkdir("d").unwrap();
        assert_eq!(fs.mkdir("d").unwrap_err(), Errno::Exist);
    }

    #[test]
    fn create_truncates_existing() {
        let mut fs = RamFs::new();
        let ino = fs.create("f").unwrap();
        fs.write(ino, 0, b"old-contents").unwrap();
        let ino2 = fs.create("f").unwrap();
        assert_eq!(ino, ino2);
        assert_eq!(fs.size(ino).unwrap(), 0);
    }

    #[test]
    fn used_bytes_tracks_files() {
        let mut fs = RamFs::new();
        fs.add_file("a", &[0; 100]).unwrap();
        fs.add_file("b", &[0; 50]).unwrap();
        assert_eq!(fs.used_bytes(), 150);
    }
}
