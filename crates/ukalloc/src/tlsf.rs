//! Two-Level Segregated Fits (TLSF) allocator.
//!
//! Masmano et al.'s O(1) real-time allocator, one of Unikraft's five
//! backends (§5.5). Free blocks live in `FL x SL` segregated buckets
//! selected by two-level bitmaps; allocation and free are constant-time
//! apart from hash-map block-header lookups (the header that would live
//! in front of the block in a C implementation).
//!
//! Physical-neighbour coalescing is immediate, as in the original TLSF.

use std::collections::HashMap;

use ukplat::{Errno, Result};

use crate::stats::AllocStats;
use crate::{align_up, Allocator, GpAddr, MIN_ALIGN};

/// log2 of the number of second-level subdivisions.
const SL_LOG2: u32 = 4;
/// Second-level buckets per first level.
const SL_COUNT: usize = 1 << SL_LOG2;
/// First levels (supports blocks up to 2^40).
const FL_COUNT: usize = 40;
/// Smallest block TLSF manages.
const MIN_BLOCK: usize = 32;

/// A block header (what lives in front of the payload in C TLSF).
#[derive(Debug, Clone, Copy)]
struct Block {
    size: usize,
    free: bool,
    /// Address of the physically preceding block, if any.
    prev_phys: Option<GpAddr>,
    /// Generation stamp validating lazily-removed bucket entries.
    gen: u64,
}

/// Maps a size to its (fl, sl) bucket.
fn mapping(size: usize) -> (usize, usize) {
    debug_assert!(size >= MIN_BLOCK);
    let fl = usize::BITS - 1 - size.leading_zeros(); // floor(log2(size))
    let sl = (size >> (fl - SL_LOG2)) & (SL_COUNT - 1);
    (fl as usize, sl)
}

/// Rounds a request up so that any block in the found bucket fits it.
fn round_request(size: usize) -> usize {
    if size < MIN_BLOCK {
        return MIN_BLOCK;
    }
    let fl = usize::BITS - 1 - size.leading_zeros();
    if fl <= SL_LOG2 {
        return size;
    }
    let round = (1usize << (fl - SL_LOG2)) - 1;
    size.saturating_add(round) & !round
}

/// The TLSF allocator state.
#[derive(Debug, Default)]
pub struct TlsfAlloc {
    base: GpAddr,
    len: usize,
    blocks: HashMap<GpAddr, Block>,
    buckets: Vec<Vec<(GpAddr, u64)>>,
    fl_bitmap: u64,
    sl_bitmaps: Vec<u32>,
    next_gen: u64,
    stats: AllocStats,
    initialized: bool,
}

impl TlsfAlloc {
    /// Creates an uninitialized TLSF allocator.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_index(fl: usize, sl: usize) -> usize {
        fl * SL_COUNT + sl
    }

    fn insert_free(&mut self, addr: GpAddr, size: usize, prev_phys: Option<GpAddr>) {
        let gen = self.next_gen;
        self.next_gen += 1;
        self.blocks.insert(
            addr,
            Block {
                size,
                free: true,
                prev_phys,
                gen,
            },
        );
        let (fl, sl) = mapping(size);
        self.buckets[Self::bucket_index(fl, sl)].push((addr, gen));
        self.fl_bitmap |= 1 << fl;
        self.sl_bitmaps[fl] |= 1 << sl;
    }

    /// Pops a valid free block from bucket (fl, sl); clears the bitmap bit
    /// if the bucket turns out to be empty.
    fn pop_bucket(&mut self, fl: usize, sl: usize) -> Option<(GpAddr, Block)> {
        let idx = Self::bucket_index(fl, sl);
        while let Some((addr, gen)) = self.buckets[idx].pop() {
            if let Some(b) = self.blocks.get(&addr) {
                if b.free && b.gen == gen {
                    let blk = *b;
                    return Some((addr, blk));
                }
            }
        }
        self.sl_bitmaps[fl] &= !(1u32 << sl);
        if self.sl_bitmaps[fl] == 0 {
            self.fl_bitmap &= !(1u64 << fl);
        }
        None
    }

    /// Finds a block whose bucket guarantees `size` fits. O(1) via bitmaps
    /// plus lazy-entry skipping.
    fn find_block(&mut self, size: usize) -> Option<(GpAddr, Block)> {
        loop {
            let (fl, sl) = mapping(size);
            // First: same fl, sl' >= sl.
            let sl_mask = self.sl_bitmaps[fl] & (!0u32 << sl);
            let (tfl, tsl) = if sl_mask != 0 {
                (fl, sl_mask.trailing_zeros() as usize)
            } else {
                // Any larger fl.
                let fl_mask = self.fl_bitmap & (!0u64 << (fl + 1));
                if fl_mask == 0 {
                    return None;
                }
                let tfl = fl_mask.trailing_zeros() as usize;
                let tsl = self.sl_bitmaps[tfl].trailing_zeros() as usize;
                if tsl >= SL_COUNT {
                    // Stale fl bit; clear and retry.
                    self.fl_bitmap &= !(1u64 << tfl);
                    continue;
                }
                (tfl, tsl)
            };
            match self.pop_bucket(tfl, tsl) {
                Some(hit) => return Some(hit),
                None => continue, // Bucket was stale; bitmaps updated, retry.
            }
        }
    }

    /// Splits `size` bytes off the front of a free block just popped from
    /// its bucket, returning the remainder (if any) to the free structure.
    fn split_and_take(&mut self, addr: GpAddr, blk: Block, size: usize) {
        let remainder = blk.size - size;
        if remainder >= MIN_BLOCK {
            let rem_addr = addr + size as u64;
            // Fix the physical back-pointer of the block after the split.
            let after = addr + blk.size as u64;
            if let Some(a) = self.blocks.get_mut(&after) {
                a.prev_phys = Some(rem_addr);
            }
            self.blocks.insert(
                addr,
                Block {
                    size,
                    free: false,
                    prev_phys: blk.prev_phys,
                    gen: 0,
                },
            );
            self.insert_free(rem_addr, remainder, Some(addr));
        } else {
            self.blocks.insert(
                addr,
                Block {
                    size: blk.size,
                    free: false,
                    prev_phys: blk.prev_phys,
                    gen: 0,
                },
            );
        }
    }

    fn end(&self) -> GpAddr {
        self.base + self.len as u64
    }
}

impl Allocator for TlsfAlloc {
    fn name(&self) -> &'static str {
        "TLSF"
    }

    fn init(&mut self, base: GpAddr, len: usize) -> Result<()> {
        if self.initialized {
            return Err(Errno::Busy);
        }
        if len < MIN_BLOCK * 2 {
            return Err(Errno::Inval);
        }
        let base = align_up(base, MIN_ALIGN as u64);
        self.base = base;
        self.len = len - (base - self.base.min(base)) as usize;
        self.buckets = vec![Vec::new(); FL_COUNT * SL_COUNT];
        self.sl_bitmaps = vec![0; FL_COUNT];
        // TLSF init is O(1): the whole heap becomes a single free block.
        self.insert_free(base, len, None);
        self.stats.meta_bytes = FL_COUNT * SL_COUNT * 8 + FL_COUNT * 4 + 8;
        self.initialized = true;
        Ok(())
    }

    fn malloc(&mut self, size: usize) -> Option<GpAddr> {
        let need = round_request(align_up(size.max(1) as u64, MIN_ALIGN as u64) as usize);
        match self.find_block(need) {
            Some((addr, blk)) => {
                self.split_and_take(addr, blk, need);
                self.stats.on_alloc(need);
                Some(addr)
            }
            None => {
                self.stats.on_fail();
                None
            }
        }
    }

    fn memalign(&mut self, align: usize, size: usize) -> Option<GpAddr> {
        if align <= MIN_ALIGN {
            return self.malloc(size);
        }
        // Over-allocate, then return the leading pad to the free pool.
        // The slack request must itself be bucket-rounded so any block
        // in the found bucket is guaranteed to fit pad + need.
        let need = round_request(align_up(size.max(1) as u64, MIN_ALIGN as u64) as usize);
        let (addr, blk) = match self.find_block(round_request(need + align + MIN_BLOCK)) {
            Some(hit) => hit,
            None => {
                self.stats.on_fail();
                return None;
            }
        };
        let mut aligned = align_up(addr, align as u64);
        if aligned != addr && (aligned - addr) < MIN_BLOCK as u64 {
            aligned += align as u64;
        }
        let pad = (aligned - addr) as usize;
        debug_assert!(pad == 0 || pad >= MIN_BLOCK);
        debug_assert!(pad + need <= blk.size);
        if pad > 0 {
            // Split off the pad as its own free block, then take `need`
            // from the rest.
            let rest = Block {
                size: blk.size - pad,
                free: true,
                prev_phys: Some(addr),
                gen: 0,
            };
            // Fix back-pointer of the block after the original.
            let after = addr + blk.size as u64;
            if let Some(a) = self.blocks.get_mut(&after) {
                a.prev_phys = Some(aligned);
            }
            self.insert_free(addr, pad, blk.prev_phys);
            self.split_and_take(aligned, rest, need);
            // `split_and_take` wrote prev_phys from `rest`; ensure the
            // taken block points back at the pad block.
            if let Some(b) = self.blocks.get_mut(&aligned) {
                b.prev_phys = Some(addr);
            }
        } else {
            self.split_and_take(addr, blk, need);
        }
        self.stats.on_alloc(need);
        Some(aligned)
    }

    fn free(&mut self, ptr: GpAddr) {
        let blk = match self.blocks.get(&ptr) {
            Some(b) if !b.free => *b,
            _ => panic!("tlsf: free of unallocated address {ptr:#x}"),
        };
        self.stats.on_free(blk.size);
        let mut addr = ptr;
        let mut size = blk.size;
        let mut prev_phys = blk.prev_phys;
        // Coalesce with the previous physical block.
        if let Some(p) = prev_phys {
            if let Some(pb) = self.blocks.get(&p) {
                if pb.free {
                    size += pb.size;
                    prev_phys = pb.prev_phys;
                    self.blocks.remove(&p);
                    addr = p;
                }
            }
        }
        // Coalesce with the next physical block.
        let next = ptr + blk.size as u64;
        if next < self.end() {
            if let Some(nb) = self.blocks.get(&next) {
                if nb.free {
                    size += nb.size;
                    self.blocks.remove(&next);
                }
            }
        }
        self.blocks.remove(&ptr);
        // Fix the back-pointer of whatever now follows the merged block.
        let after = addr + size as u64;
        if let Some(a) = self.blocks.get_mut(&after) {
            a.prev_phys = Some(addr);
        }
        self.insert_free(addr, size, prev_phys);
    }

    fn available(&self) -> usize {
        self.blocks
            .values()
            .filter(|b| b.free)
            .map(|b| b.size)
            .sum()
    }

    fn stats(&self) -> AllocStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(len: usize) -> TlsfAlloc {
        let mut t = TlsfAlloc::new();
        t.init(1 << 20, len).unwrap();
        t
    }

    #[test]
    fn mapping_is_monotonic() {
        let mut last = (0, 0);
        for size in (MIN_BLOCK..8192).step_by(32) {
            let m = mapping(size);
            assert!(m >= last, "mapping must not decrease: {size}");
            last = m;
        }
    }

    #[test]
    fn round_request_guarantees_fit() {
        for size in [32, 33, 100, 1000, 4097, 65535] {
            let r = round_request(size);
            assert!(r >= size);
            // Any block in bucket mapping(r) is >= r.
            let (fl, sl) = mapping(r);
            let bucket_min = (1usize << fl) + (sl << (fl as u32 - SL_LOG2) as usize);
            assert!(bucket_min >= r, "size {size} round {r} bucket_min {bucket_min}");
        }
    }

    #[test]
    fn alloc_free_restores_single_block() {
        let mut t = mk(1 << 20);
        let total = t.available();
        let p = t.malloc(1000).unwrap();
        let q = t.malloc(5000).unwrap();
        t.free(p);
        t.free(q);
        assert_eq!(t.available(), total, "coalescing must merge all");
        // Everything merged back into one block.
        assert_eq!(t.blocks.values().filter(|b| b.free).count(), 1);
    }

    #[test]
    fn allocations_disjoint() {
        let mut t = mk(1 << 20);
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for i in 1..100usize {
            let sz = i * 37 % 2000 + 1;
            let p = t.malloc(sz).unwrap();
            let b = t.blocks[&p];
            for &(s, e) in &spans {
                assert!(p + b.size as u64 <= s || p >= e);
            }
            spans.push((p, p + b.size as u64));
        }
    }

    #[test]
    fn memalign_returns_aligned_and_freeable() {
        let mut t = mk(1 << 20);
        for align in [32usize, 64, 256, 4096] {
            let p = t.memalign(align, 100).unwrap();
            assert_eq!(p % align as u64, 0, "align {align}");
            t.free(p);
        }
        // Heap must be fully coalesced again.
        assert_eq!(t.blocks.values().filter(|b| b.free).count(), 1);
    }

    #[test]
    fn interleaved_free_coalesces_neighbours() {
        let mut t = mk(1 << 20);
        let a = t.malloc(256).unwrap();
        let b = t.malloc(256).unwrap();
        let c = t.malloc(256).unwrap();
        t.free(b);
        t.free(a); // Should merge with b's space.
        t.free(c); // Should merge everything.
        assert_eq!(t.blocks.values().filter(|bb| bb.free).count(), 1);
    }

    #[test]
    fn exhaustion_fails_cleanly() {
        let mut t = mk(64 * 1024);
        let mut ptrs = Vec::new();
        while let Some(p) = t.malloc(1024) {
            ptrs.push(p);
        }
        assert!(t.stats().failed_count > 0);
        for p in ptrs {
            t.free(p);
        }
        assert_eq!(t.blocks.values().filter(|b| b.free).count(), 1);
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn wild_free_panics() {
        let mut t = mk(1 << 20);
        t.free(0xdead_beef);
    }

    #[test]
    fn init_is_o1_single_block() {
        let t = mk(1 << 24);
        assert_eq!(t.blocks.len(), 1, "TLSF init creates one free block");
    }
}
