//! Region (bump) allocator for fast boots.
//!
//! The paper's `bootalloc` is "a simple region allocator for faster
//! booting" (§5.5): initialization is two pointer writes and allocation is
//! a bump, but `free` is a no-op — memory is never reclaimed. Figure 14
//! shows it booting nginx in 0.49 ms versus 3.07 ms for the buddy system.

use ukplat::{Errno, Result};

use crate::stats::AllocStats;
use crate::{align_up, Allocator, GpAddr, MIN_ALIGN};

/// The bump allocator state.
#[derive(Debug, Default)]
pub struct BootAlloc {
    base: GpAddr,
    end: GpAddr,
    top: GpAddr,
    stats: AllocStats,
    initialized: bool,
}

impl BootAlloc {
    /// Creates an uninitialized bump allocator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes handed out so far.
    pub fn used(&self) -> usize {
        (self.top - self.base) as usize
    }
}

impl Allocator for BootAlloc {
    fn name(&self) -> &'static str {
        "Bootalloc"
    }

    fn init(&mut self, base: GpAddr, len: usize) -> Result<()> {
        if self.initialized {
            return Err(Errno::Busy);
        }
        if len == 0 {
            return Err(Errno::Inval);
        }
        // The whole point: O(1) init.
        self.base = align_up(base, MIN_ALIGN as u64);
        self.end = base + len as u64;
        self.top = self.base;
        self.initialized = true;
        Ok(())
    }

    fn malloc(&mut self, size: usize) -> Option<GpAddr> {
        self.memalign(MIN_ALIGN, size)
    }

    fn memalign(&mut self, align: usize, size: usize) -> Option<GpAddr> {
        let size = size.max(1);
        let aligned = align_up(self.top, align.max(MIN_ALIGN) as u64);
        let end = aligned.checked_add(size as u64)?;
        if end > self.end {
            self.stats.on_fail();
            return None;
        }
        self.top = end;
        self.stats.on_alloc(size);
        Some(aligned)
    }

    fn free(&mut self, _ptr: GpAddr) {
        // Region allocator: free is a no-op by design.
        self.stats.free_count += 1;
    }

    fn available(&self) -> usize {
        (self.end - self.top) as usize
    }

    fn stats(&self) -> AllocStats {
        self.stats
    }

    fn reclaims(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_is_monotonic() {
        let mut b = BootAlloc::new();
        b.init(0x1000, 4096).unwrap();
        let p = b.malloc(100).unwrap();
        let q = b.malloc(100).unwrap();
        assert!(q >= p + 100);
    }

    #[test]
    fn free_does_not_reclaim() {
        let mut b = BootAlloc::new();
        b.init(0x1000, 4096).unwrap();
        let avail0 = b.available();
        let p = b.malloc(1024).unwrap();
        b.free(p);
        assert!(b.available() < avail0);
        assert!(!b.reclaims());
    }

    #[test]
    fn memalign_aligns() {
        let mut b = BootAlloc::new();
        b.init(0x1234, 1 << 20).unwrap();
        let p = b.memalign(4096, 16).unwrap();
        assert_eq!(p % 4096, 0);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut b = BootAlloc::new();
        b.init(0, 1024).unwrap();
        assert!(b.malloc(2048).is_none());
        assert_eq!(b.stats().failed_count, 1);
    }

    #[test]
    fn used_tracks_bump() {
        let mut b = BootAlloc::new();
        b.init(0, 4096).unwrap();
        b.malloc(64).unwrap();
        assert_eq!(b.used(), 64);
    }
}
