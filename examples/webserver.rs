//! An nginx-style unikernel web server under load.
//!
//! ```text
//! cargo run --release --example webserver
//! ```
//!
//! Boots a full server image (TLSF heap, cooperative scheduler, virtio
//! NIC + socket stack — the paper's scenario ➁), connects it to a
//! client node over the in-process network, and drives it with a
//! wrk-style load generator.

use unikraft_rs::alloc::AllocBackend;
use unikraft_rs::apps::httpd::Httpd;
use unikraft_rs::apps::loadgen::HttpLoadGen;
use unikraft_rs::core::UnikernelBuilder;
use unikraft_rs::netdev::backend::VhostKind;
use unikraft_rs::netdev::dev::{NetDev, NetDevConf};
use unikraft_rs::netdev::VirtioNet;
use unikraft_rs::netstack::stack::{NetStack, StackConfig};
use unikraft_rs::netstack::testnet::Network;
use unikraft_rs::netstack::{Endpoint, Ipv4Addr};
use unikraft_rs::plat::time::{Stopwatch, Tsc};
use unikraft_rs::plat::vmm::VmmKind;
use unikraft_rs::sched::SchedPolicy;

const REQUESTS: u64 = 2_000;

fn main() {
    // Server: a composed unikernel with NIC + stack.
    let mut uk = UnikernelBuilder::new("nginx")
        .platform(VmmKind::Qemu)
        .allocator(AllocBackend::Tlsf)
        .scheduler(SchedPolicy::Coop)
        .with_net(VhostKind::VhostNet, 2)
        .build()
        .expect("valid configuration");
    let report = uk.boot().expect("boot");
    println!(
        "server booted: vmm {} us + guest {} us",
        report.vmm_ns / 1_000,
        report.guest_ns / 1_000
    );

    // Wire the unikernel's stack and a client node together.
    let mut server_stack = uk.take_stack().expect("net configured");
    let mut alloc = AllocBackend::Tlsf.instantiate();
    alloc.init(1 << 26, 32 << 20).expect("heap");
    let mut httpd = Httpd::new(&mut server_stack, 80, alloc).expect("listen");

    let tsc = Tsc::new(unikraft_rs::plat::cost::CPU_FREQ_HZ);
    let mut client_dev = VirtioNet::new(VhostKind::VhostNet, &tsc);
    client_dev.configure(NetDevConf::default()).expect("nic");
    let client_stack = NetStack::new(StackConfig::node(1), Box::new(client_dev));

    let mut net = Network::new();
    let ci = net.attach(client_stack);
    let si = net.attach(server_stack);

    let target = Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 80);
    let mut wrk = HttpLoadGen::new(net.stack(ci), target, "/index.html", 8, 4, REQUESTS)
        .expect("load generator");

    let sw = Stopwatch::start(uk.tsc());
    let mut idle = 0;
    while !wrk.done() && idle < 1_000 {
        let mut progress = wrk.poll(net.stack(ci));
        net.step();
        httpd.poll(net.stack(si));
        net.step();
        progress += wrk.poll(net.stack(ci));
        idle = if progress == 0 { idle + 1 } else { 0 };
    }

    let ns = sw.elapsed_ns().max(1);
    println!(
        "served {} requests in {:.2} ms  ->  {:.1} K req/s ({} bytes read)",
        wrk.completed(),
        ns as f64 / 1e6,
        wrk.completed() as f64 * 1e6 / ns as f64,
        wrk.bytes_read()
    );
    assert_eq!(httpd.served(), REQUESTS);
}
