//! Descriptor rings.
//!
//! A bounded circular queue of netbufs standing in for a virtio virtqueue:
//! the driver enqueues on TX / the device enqueues on RX, and the opposite
//! side dequeues. Capacity is a power of two, like real virtqueues.

use std::collections::VecDeque;

use crate::netbuf::Netbuf;

/// A bounded descriptor ring.
#[derive(Debug)]
pub struct DescRing {
    slots: VecDeque<Netbuf>,
    capacity: usize,
    /// Total descriptors ever enqueued (stats).
    enqueued: u64,
    /// Total descriptors ever dequeued (stats).
    dequeued: u64,
}

impl DescRing {
    /// Creates a ring with power-of-two `capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or not a power of two.
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity.is_power_of_two() && capacity > 0,
            "virtqueue sizes are powers of two"
        );
        DescRing {
            slots: VecDeque::with_capacity(capacity),
            capacity,
            enqueued: 0,
            dequeued: 0,
        }
    }

    /// Free descriptor slots.
    pub fn room(&self) -> usize {
        self.capacity - self.slots.len()
    }

    /// Occupied slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether the ring is full.
    pub fn is_full(&self) -> bool {
        self.slots.len() == self.capacity
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues one buffer; returns it back if the ring is full.
    pub fn push(&mut self, nb: Netbuf) -> Result<(), Netbuf> {
        if self.is_full() {
            return Err(nb);
        }
        self.slots.push_back(nb);
        self.enqueued += 1;
        Ok(())
    }

    /// Enqueues as many of `bufs` as fit, draining them from the front of
    /// the vector. Returns how many were enqueued — the `cnt` in/out
    /// semantics of `uk_netdev_tx_burst`.
    pub fn push_burst(&mut self, bufs: &mut Vec<Netbuf>) -> usize {
        let n = bufs.len().min(self.room());
        for nb in bufs.drain(..n) {
            self.slots.push_back(nb);
        }
        self.enqueued += n as u64;
        n
    }

    /// Dequeues one buffer.
    pub fn pop(&mut self) -> Option<Netbuf> {
        let nb = self.slots.pop_front()?;
        self.dequeued += 1;
        Some(nb)
    }

    /// Dequeues up to `max` buffers into `out`; returns the count.
    pub fn pop_burst(&mut self, out: &mut Vec<Netbuf>, max: usize) -> usize {
        let n = max.min(self.slots.len());
        for _ in 0..n {
            out.push(self.slots.pop_front().expect("len checked"));
        }
        self.dequeued += n as u64;
        n
    }

    /// Lifetime enqueue count.
    pub fn total_enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Lifetime dequeue count.
    pub fn total_dequeued(&self) -> u64 {
        self.dequeued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(tag: u8) -> Netbuf {
        let mut nb = Netbuf::alloc(64, 0);
        nb.set_payload(&[tag]);
        nb
    }

    #[test]
    fn fifo_semantics() {
        let mut r = DescRing::new(4);
        r.push(buf(1)).unwrap();
        r.push(buf(2)).unwrap();
        assert_eq!(r.pop().unwrap().payload(), &[1]);
        assert_eq!(r.pop().unwrap().payload(), &[2]);
        assert!(r.pop().is_none());
    }

    #[test]
    fn full_ring_rejects() {
        let mut r = DescRing::new(2);
        r.push(buf(1)).unwrap();
        r.push(buf(2)).unwrap();
        assert!(r.is_full());
        let rejected = r.push(buf(3)).unwrap_err();
        assert_eq!(rejected.payload(), &[3]);
    }

    #[test]
    fn burst_enqueues_partial_when_short_on_room() {
        let mut r = DescRing::new(4);
        r.push(buf(0)).unwrap();
        let mut batch: Vec<Netbuf> = (1..=5).map(buf).collect();
        let n = r.push_burst(&mut batch);
        assert_eq!(n, 3, "only 3 slots were free");
        assert_eq!(batch.len(), 2, "unsent buffers stay with the caller");
        assert!(r.is_full());
    }

    #[test]
    fn burst_dequeue_respects_max() {
        let mut r = DescRing::new(8);
        for i in 0..6 {
            r.push(buf(i)).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(r.pop_burst(&mut out, 4), 4);
        assert_eq!(out.len(), 4);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn stats_count_lifetime_traffic() {
        let mut r = DescRing::new(2);
        r.push(buf(1)).unwrap();
        r.pop().unwrap();
        r.push(buf(2)).unwrap();
        r.pop().unwrap();
        assert_eq!(r.total_enqueued(), 2);
        assert_eq!(r.total_dequeued(), 2);
    }

    #[test]
    #[should_panic(expected = "powers of two")]
    fn non_power_of_two_capacity_panics() {
        let _ = DescRing::new(3);
    }
}
