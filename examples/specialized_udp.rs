//! The §6.4 specialization story: a UDP key-value appliance.
//!
//! ```text
//! cargo run --release --example specialized_udp
//! ```
//!
//! Runs the same key-value server logic in every Table 4 configuration:
//! through Linux syscalls one datagram at a time, with batched syscalls,
//! through lwip, and finally coded directly against `uknetdev` in
//! polling mode — the paper's 20x specialization win.

use unikraft_rs::apps::udpkv::{UdpKvMode, UdpKvServer, BATCH};
use unikraft_rs::plat::cost;
use unikraft_rs::plat::time::{Stopwatch, Tsc};

const REQUESTS: usize = 100_000;

fn main() {
    println!("UDP KV store: {REQUESTS} GET requests per configuration\n");
    println!("{:<18} {:<10} {:>14} {:>6}", "setup", "mode", "throughput", "cores");

    let payloads: Vec<Vec<u8>> = (0..BATCH)
        .map(|i| format!("G key{:04}", i % 32).into_bytes())
        .collect();
    let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();

    let mut best: Option<(String, f64)> = None;
    let mut worst_guest: Option<(String, f64)> = None;
    for mode in UdpKvMode::all() {
        let tsc = Tsc::new(cost::CPU_FREQ_HZ);
        let mut server = UdpKvServer::new(mode, &tsc);
        for i in 0..32 {
            server.handle(format!("S key{i:04} value").as_bytes());
        }
        let sw = Stopwatch::start(&tsc);
        for _ in 0..REQUESTS / BATCH {
            std::hint::black_box(server.serve_batch(&refs));
        }
        let rate = REQUESTS as f64 * 1e9 / sw.elapsed_ns() as f64;
        let (setup, m) = mode.label();
        println!(
            "{:<18} {:<10} {:>11.2} M/s {:>6}",
            setup,
            m,
            rate / 1e6,
            mode.cores()
        );
        let label = format!("{setup}/{m}");
        if best.as_ref().map(|(_, r)| rate > *r).unwrap_or(true) {
            best = Some((label.clone(), rate));
        }
        if setup.contains("guest")
            && worst_guest.as_ref().map(|(_, r)| rate < *r).unwrap_or(true)
        {
            worst_guest = Some((label, rate));
        }
    }
    let (bl, br) = best.expect("ran");
    let (wl, wr) = worst_guest.expect("ran");
    println!(
        "\nspecialization win: {bl} is {:.1}x faster than {wl}",
        br / wr
    );
}
