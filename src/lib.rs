//! # unikraft-rs
//!
//! A Rust reproduction of *Unikraft: Fast, Specialized Unikernels the Easy
//! Way* (Kuenzer et al., EuroSys '21).
//!
//! This facade crate re-exports every micro-library in the workspace under
//! one roof so examples and downstream users can depend on a single crate:
//!
//! - [`plat`] — platform layer: virtual TSC, VMM models, memory map, IRQs
//! - [`lock`] — `uklock`: mutexes, semaphores, rwlocks with compile-out
//! - [`alloc`] — `ukalloc`: allocation API + buddy/TLSF/tinyalloc/
//!   mimalloc/bootalloc backends
//! - [`boot`] — `ukboot`: staged boot, static/dynamic page tables
//! - [`sched`] — `uksched`: cooperative/preemptive/no-op schedulers
//! - [`netdev`] — `uknetdev`: netbufs, burst TX/RX, virtio-net model
//! - [`netstack`] — lwIP-analog network stack + sockets
//! - [`event`] — `ukevent`: epoll/eventfd readiness subsystem
//! - [`stats`] — `ukstats`: lock-free counter/gauge/histogram registry
//! - [`trace`] — `uktrace`: zero-alloc typed tracepoints + ring buffers
//! - [`blockdev`] — `ukblockdev`: block devices, ramdisk
//! - [`vfs`] — vfscore + ramfs + 9pfs + SHFS
//! - [`syscall`] — syscall shim layer
//! - [`libc`] — libc profiles + glibc compat layer + link model
//! - [`build`] — Kconfig-like build system, DCE/LTO, dependency graphs
//! - [`port`] — application-compatibility analysis (Figs 5–7, Table 2)
//! - [`baselines`] — Linux/OSv/Rump/HermiTux/Lupine/Mirage models
//! - [`core`] — the `Unikernel` builder tying everything together
//! - [`apps`] — httpd, kvstore, sqldb, webcache, udpkv and load generators
//!
//! # Examples
//!
//! ```
//! use unikraft_rs::core::UnikernelBuilder;
//! use unikraft_rs::plat::vmm::VmmKind;
//!
//! let mut uk = UnikernelBuilder::new("hello")
//!     .platform(VmmKind::Firecracker)
//!     .build()
//!     .expect("configuration is valid");
//! let report = uk.boot().expect("boot succeeds");
//! assert!(report.guest_ns > 0);
//! ```

pub use ukalloc as alloc;
pub use ukbaselines as baselines;
pub use ukblockdev as blockdev;
pub use ukboot as boot;
pub use ukbuild as build;
pub use ukcore as core;
pub use ukevent as event;
pub use uklibc as libc;
pub use uklock as lock;
pub use uknetdev as netdev;
pub use uknetstack as netstack;
pub use ukplat as plat;
pub use ukport as port;
pub use uksched as sched;
pub use ukstats as stats;
pub use uksyscall as syscall;
pub use uktrace as trace;
pub use ukvfs as vfs;

pub use ukapps as apps;
