//! In-process load generators: a wrk-alike and a redis-benchmark-alike.
//!
//! The paper drives nginx with `wrk` (14 threads, 30 connections, 1
//! minute, static 612 B page) and Redis with `redis-benchmark` (30
//! connections, 100 k requests, pipelining 16). These clients reproduce
//! the *connection structure*: N concurrent keep-alive connections, each
//! keeping `pipeline` requests in flight.

use uknetstack::stack::{NetStack, SocketHandle};
use uknetstack::Endpoint;
use ukplat::Result;

use crate::kvstore::resp_command;

struct HttpConn {
    sock: SocketHandle,
    established: bool,
    inflight: usize,
    buf: Vec<u8>,
    /// Request bytes the socket has not yet accepted (partial writes).
    out: Vec<u8>,
    /// Connection failed; its in-flight budget was returned.
    dead: bool,
}

/// wrk-like HTTP load generator.
pub struct HttpLoadGen {
    conns: Vec<HttpConn>,
    target: Endpoint,
    path: String,
    pipeline: usize,
    completed: u64,
    issued: u64,
    bytes_read: u64,
    target_requests: u64,
}

impl std::fmt::Debug for HttpLoadGen {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpLoadGen")
            .field("conns", &self.conns.len())
            .field("completed", &self.completed)
            .finish()
    }
}

impl HttpLoadGen {
    /// Opens `nconns` connections to `target`, requesting `path`,
    /// stopping after `target_requests` responses.
    pub fn new(
        stack: &mut NetStack,
        target: Endpoint,
        path: &str,
        nconns: usize,
        pipeline: usize,
        target_requests: u64,
    ) -> Result<Self> {
        let mut conns = Vec::with_capacity(nconns);
        for _ in 0..nconns {
            let sock = stack.tcp_connect(target)?;
            conns.push(HttpConn {
                sock,
                established: false,
                inflight: 0,
                buf: Vec::new(),
                out: Vec::new(),
                dead: false,
            });
        }
        Ok(HttpLoadGen {
            conns,
            target,
            path: path.to_string(),
            pipeline: pipeline.max(1),
            completed: 0,
            issued: 0,
            bytes_read: 0,
            target_requests,
        })
    }

    /// Responses completed.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Whether the run is done.
    pub fn done(&self) -> bool {
        self.completed >= self.target_requests
    }

    /// Total response bytes read.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Sends requests and consumes responses. Call between network
    /// steps. Returns responses completed this call.
    pub fn poll(&mut self, stack: &mut NetStack) -> u64 {
        let mut newly = 0;
        let request = format!(
            "GET {} HTTP/1.1\r\nHost: bench\r\nConnection: keep-alive\r\n\r\n",
            self.path
        );
        for c in &mut self.conns {
            if c.dead {
                continue;
            }
            if !c.established {
                if matches!(
                    stack.tcp_state(c.sock),
                    Some(uknetstack::tcp::TcpState::Established)
                ) {
                    c.established = true;
                } else {
                    continue;
                }
            }
            // Keep the pipeline full. Requests are queued whole and
            // flushed with partial-write handling: a closed tx window
            // never truncates a request mid-line.
            while c.inflight < self.pipeline && self.issued < self.target_requests {
                c.out.extend_from_slice(request.as_bytes());
                c.inflight += 1;
                self.issued += 1;
            }
            if !crate::flush_partial(stack, c.sock, &mut c.out) {
                // The connection failed: its unanswered requests can
                // never complete, so return them to the issue budget
                // for the surviving connections.
                c.dead = true;
                self.issued = self.issued.saturating_sub(c.inflight as u64);
                c.inflight = 0;
                continue;
            }
            // Drain responses.
            if let Ok(data) = stack.tcp_recv(c.sock, 256 * 1024) {
                self.bytes_read += data.len() as u64;
                c.buf.extend_from_slice(&data);
            }
            while let Some(len) = complete_response_len(&c.buf) {
                c.buf.drain(..len);
                c.inflight = c.inflight.saturating_sub(1);
                self.completed += 1;
                newly += 1;
            }
        }
        let _ = self.target;
        newly
    }
}

/// If `buf` starts with a complete HTTP response (headers +
/// Content-Length body), returns its total length.
fn complete_response_len(buf: &[u8]) -> Option<usize> {
    let hdr_end = buf.windows(4).position(|w| w == b"\r\n\r\n")? + 4;
    let headers = std::str::from_utf8(&buf[..hdr_end]).ok()?;
    let mut content_len = 0usize;
    for line in headers.split("\r\n") {
        if let Some(v) = line
            .strip_prefix("Content-Length:")
            .or_else(|| line.strip_prefix("content-length:"))
        {
            content_len = v.trim().parse().ok()?;
        }
    }
    let total = hdr_end + content_len;
    (buf.len() >= total).then_some(total)
}

struct RespConn {
    sock: SocketHandle,
    established: bool,
    inflight: usize,
    buf: Vec<u8>,
    /// Command bytes the socket has not yet accepted (partial writes).
    out: Vec<u8>,
    /// Connection failed; its in-flight budget was returned.
    dead: bool,
}

/// Which command mix a RESP run issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RespOp {
    /// GET of pre-seeded keys.
    Get,
    /// SET with a small value.
    Set,
}

/// redis-benchmark-like RESP load generator.
pub struct RespLoadGen {
    conns: Vec<RespConn>,
    op: RespOp,
    pipeline: usize,
    completed: u64,
    issued: u64,
    key_cursor: u64,
    keyspace: u64,
    target_requests: u64,
}

impl std::fmt::Debug for RespLoadGen {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RespLoadGen")
            .field("op", &self.op)
            .field("completed", &self.completed)
            .finish()
    }
}

impl RespLoadGen {
    /// Opens `nconns` connections issuing `op` with the given pipeline
    /// depth over a `keyspace` of keys.
    pub fn new(
        stack: &mut NetStack,
        target: Endpoint,
        op: RespOp,
        nconns: usize,
        pipeline: usize,
        keyspace: u64,
        target_requests: u64,
    ) -> Result<Self> {
        let mut conns = Vec::with_capacity(nconns);
        for _ in 0..nconns {
            let sock = stack.tcp_connect(target)?;
            conns.push(RespConn {
                sock,
                established: false,
                inflight: 0,
                buf: Vec::new(),
                out: Vec::new(),
                dead: false,
            });
        }
        Ok(RespLoadGen {
            conns,
            op,
            pipeline: pipeline.max(1),
            completed: 0,
            issued: 0,
            key_cursor: 0,
            keyspace: keyspace.max(1),
            target_requests,
        })
    }

    /// Responses completed.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Whether the run is done.
    pub fn done(&self) -> bool {
        self.completed >= self.target_requests
    }

    fn next_command(&mut self) -> Vec<u8> {
        let key = format!("key:{:012}", self.key_cursor % self.keyspace);
        self.key_cursor += 1;
        match self.op {
            RespOp::Get => resp_command(&[b"GET", key.as_bytes()]),
            RespOp::Set => resp_command(&[b"SET", key.as_bytes(), b"xxxxxxxxxxxxxxxxxxxxxxxx"]),
        }
    }

    /// Sends commands and consumes replies; returns replies completed.
    pub fn poll(&mut self, stack: &mut NetStack) -> u64 {
        let mut newly = 0;
        for i in 0..self.conns.len() {
            if self.conns[i].dead {
                continue;
            }
            if !self.conns[i].established {
                if matches!(
                    stack.tcp_state(self.conns[i].sock),
                    Some(uknetstack::tcp::TcpState::Established)
                ) {
                    self.conns[i].established = true;
                } else {
                    continue;
                }
            }
            let mut burst = Vec::new();
            while self.conns[i].inflight < self.pipeline
                && self.issued < self.target_requests
            {
                burst.extend(self.next_command());
                self.conns[i].inflight += 1;
                self.issued += 1;
            }
            // Whole commands enter the backlog; the socket takes what
            // its send buffer admits, the rest waits for the window.
            self.conns[i].out.extend_from_slice(&burst);
            let sock = self.conns[i].sock;
            if !crate::flush_partial(stack, sock, &mut self.conns[i].out) {
                // Failed connection: hand its budget back (see
                // HttpLoadGen::poll).
                self.conns[i].dead = true;
                self.issued = self.issued.saturating_sub(self.conns[i].inflight as u64);
                self.conns[i].inflight = 0;
                continue;
            }
            if let Ok(data) = stack.tcp_recv(self.conns[i].sock, 256 * 1024) {
                self.conns[i].buf.extend_from_slice(&data);
            }
            while let Some((_, used)) = crate::kvstore::parse_resp(&self.conns[i].buf) {
                self.conns[i].buf.drain(..used);
                self.conns[i].inflight = self.conns[i].inflight.saturating_sub(1);
                self.completed += 1;
                newly += 1;
            }
        }
        newly
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_len_parses_content_length() {
        let resp = b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello";
        assert_eq!(complete_response_len(resp), Some(resp.len()));
        // Incomplete body.
        assert_eq!(complete_response_len(&resp[..resp.len() - 1]), None);
    }

    #[test]
    fn response_len_handles_pipelined_buffer() {
        let one = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok".to_vec();
        let mut buf = one.clone();
        buf.extend_from_slice(&one);
        let len = complete_response_len(&buf).unwrap();
        assert_eq!(len, one.len());
    }
}
