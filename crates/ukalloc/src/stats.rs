//! Allocation statistics shared by all backends, plus a process-wide
//! heap-allocation counter for asserting allocation-free hot paths.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters every backend maintains; the basis of the memory-footprint
/// experiments (paper Fig 11 reports minimum memory to run each app).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Bytes currently allocated (payload, not counting metadata).
    pub cur_bytes: usize,
    /// High-water mark of `cur_bytes`.
    pub peak_bytes: usize,
    /// Total successful allocations.
    pub alloc_count: u64,
    /// Total frees.
    pub free_count: u64,
    /// Allocation requests that failed for lack of memory.
    pub failed_count: u64,
    /// Bytes of allocator metadata overhead (headers, bitmaps).
    pub meta_bytes: usize,
}

impl AllocStats {
    /// Records a successful allocation of `bytes`.
    pub fn on_alloc(&mut self, bytes: usize) {
        self.cur_bytes += bytes;
        self.peak_bytes = self.peak_bytes.max(self.cur_bytes);
        self.alloc_count += 1;
    }

    /// Records a free of `bytes`.
    pub fn on_free(&mut self, bytes: usize) {
        self.cur_bytes = self.cur_bytes.saturating_sub(bytes);
        self.free_count += 1;
    }

    /// Records a failed allocation.
    pub fn on_fail(&mut self) {
        self.failed_count += 1;
    }

    /// Live allocations (allocs minus frees).
    pub fn live(&self) -> u64 {
        self.alloc_count.saturating_sub(self.free_count)
    }
}

/// Process-wide count of heap allocations (see [`CountingAlloc`]).
static HEAP_ALLOCS: AtomicU64 = AtomicU64::new(0);
/// Process-wide count of heap frees.
static HEAP_FREES: AtomicU64 = AtomicU64::new(0);

/// A counting wrapper around the system allocator.
///
/// Install it as the binary's global allocator to make
/// [`AllocCounter`] observe every heap allocation the process
/// performs — reallocations count as allocations, frees are tracked
/// separately:
///
/// ```ignore
/// #[global_allocator]
/// static COUNTING: ukalloc::stats::CountingAlloc =
///     ukalloc::stats::CountingAlloc;
/// ```
///
/// This is how the netstack's zero-allocation guarantee is *asserted*
/// rather than assumed: a tier-1 test scopes an [`AllocCounter`]
/// around a steady-state TCP echo round-trip and requires the delta
/// to be exactly zero.
pub struct CountingAlloc;

// SAFETY: a pure pass-through to `std::alloc::System` — every method
// forwards its arguments unchanged, so `System`'s own `GlobalAlloc`
// contract (layout validity, pointer provenance, no unwinding) is
// upheld verbatim; the counter bumps are side-effect-free atomics.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller upholds `GlobalAlloc::alloc`'s contract (non-zero
    // sized, valid layout); we forward it to `System` untouched.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        HEAP_ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: same pass-through contract as `alloc` above.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        HEAP_ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    // SAFETY: caller guarantees `ptr` was allocated here with `layout`
    // (the `GlobalAlloc::realloc` contract); forwarded to `System`.
    // Every realloc counts as an allocation as far as
    // "allocation-free hot path" claims are concerned, paired with
    // a free of the old block so allocs/frees stay balanced.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        HEAP_ALLOCS.fetch_add(1, Ordering::Relaxed);
        HEAP_FREES.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: caller guarantees `ptr`/`layout` match the original
    // allocation (the `GlobalAlloc::dealloc` contract); forwarded.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        HEAP_FREES.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }
}

/// Heap allocations observed so far (0 unless [`CountingAlloc`] is the
/// global allocator).
pub fn heap_alloc_count() -> u64 {
    HEAP_ALLOCS.load(Ordering::Relaxed)
}

/// Heap frees observed so far.
pub fn heap_free_count() -> u64 {
    HEAP_FREES.load(Ordering::Relaxed)
}

/// Publishes the process-wide heap counters as `ukalloc.*` gauges in
/// the global `ukstats` registry (a control-plane operation — call it
/// before snapshotting, not on a hot path).
pub fn publish_heap_stats() {
    ukstats::Gauge::register("ukalloc.heap_allocs").set(heap_alloc_count());
    ukstats::Gauge::register("ukalloc.heap_frees").set(heap_free_count());
    ukstats::Gauge::register("ukalloc.heap_live")
        .set(heap_alloc_count().saturating_sub(heap_free_count()));
}

/// Publishes one backend's [`AllocStats`] as `ukalloc.*` gauges
/// (`cur_bytes`, `peak_bytes`, counts). Like [`publish_heap_stats`],
/// control-plane only.
pub fn publish_alloc_stats(stats: &AllocStats) {
    ukstats::Gauge::register("ukalloc.cur_bytes").set(stats.cur_bytes as u64);
    ukstats::Gauge::register("ukalloc.peak_bytes").set_max(stats.peak_bytes as u64);
    ukstats::Gauge::register("ukalloc.alloc_count").set(stats.alloc_count);
    ukstats::Gauge::register("ukalloc.free_count").set(stats.free_count);
    ukstats::Gauge::register("ukalloc.failed_count").set(stats.failed_count);
    ukstats::Gauge::register("ukalloc.meta_bytes").set(stats.meta_bytes as u64);
}

/// A scoped view over the global heap counters: snapshot at
/// [`start`](AllocCounter::start), read the delta with
/// [`allocs`](AllocCounter::allocs).
#[derive(Debug, Clone, Copy)]
pub struct AllocCounter {
    start_allocs: u64,
    start_frees: u64,
}

impl AllocCounter {
    /// Snapshots the counters.
    pub fn start() -> Self {
        AllocCounter {
            start_allocs: heap_alloc_count(),
            start_frees: heap_free_count(),
        }
    }

    /// Heap allocations since the snapshot.
    pub fn allocs(&self) -> u64 {
        heap_alloc_count() - self.start_allocs
    }

    /// Heap frees since the snapshot.
    pub fn frees(&self) -> u64 {
        heap_free_count() - self.start_frees
    }

    /// Runs `f` and returns its result plus the allocations it
    /// performed.
    pub fn measure<T>(f: impl FnOnce() -> T) -> (T, u64) {
        let c = Self::start();
        let r = f();
        let n = c.allocs();
        (r, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_delta_is_zero_without_counting_allocator() {
        // This test binary does not install CountingAlloc, so the
        // counters never move — the API still behaves.
        let c = AllocCounter::start();
        let v = vec![1u8, 2, 3];
        assert_eq!(c.allocs(), 0);
        drop(v);
        assert_eq!(c.frees(), 0);
        let ((), n) = AllocCounter::measure(|| ());
        assert_eq!(n, 0);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut s = AllocStats::default();
        s.on_alloc(100);
        s.on_alloc(50);
        s.on_free(100);
        s.on_alloc(10);
        assert_eq!(s.cur_bytes, 60);
        assert_eq!(s.peak_bytes, 150);
        assert_eq!(s.live(), 2);
    }

    #[test]
    fn failed_allocs_counted_separately() {
        let mut s = AllocStats::default();
        s.on_fail();
        s.on_fail();
        assert_eq!(s.failed_count, 2);
        assert_eq!(s.alloc_count, 0);
    }

    #[test]
    fn free_saturates_at_zero() {
        let mut s = AllocStats::default();
        s.on_alloc(10);
        s.on_free(100);
        assert_eq!(s.cur_bytes, 0);
    }
}
