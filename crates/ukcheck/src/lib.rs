//! `ukcheck`: the repo-native invariant linter.
//!
//! The unikernel thesis (conf_eurosys_KuenzerBLSJGSLT21 §3.1) is that
//! specialization pays only while the image-wide invariants hold
//! *everywhere*: zero-copy buffer ownership, no hidden allocation on
//! the datapath, no panicking paths in the kernel. This crate makes
//! those invariants machine-checked instead of reviewer-checked: a
//! dependency-free static analyzer (hand-rolled lexer, no `syn` — the
//! workspace builds offline) that walks every workspace crate and
//! enforces the rules as lint passes. See `README.md` in this crate
//! for the invariant catalogue and the escape contract, and
//! `src/manifest.rs` for which modules count as hot.

pub mod lexer;
pub mod lints;
pub mod manifest;
pub mod walk;

pub use lints::{check_source, Lint, Violation};
