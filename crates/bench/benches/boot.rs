//! Criterion benches for boot paths (Figures 10, 14, 21).

use criterion::{criterion_group, criterion_main, Criterion};
use ukalloc::AllocBackend;
use ukboot::paging::{boot_paging, PageTables, PagingMode};
use ukboot::sequence::{BootConfig, BootSequence};
use ukplat::vmm::VmmKind;

fn bench_guest_boot(c: &mut Criterion) {
    let mut g = c.benchmark_group("guest_boot_hello");
    for vmm in [VmmKind::Qemu, VmmKind::Firecracker, VmmKind::Solo5] {
        g.bench_function(vmm.name(), |b| {
            b.iter(|| {
                let mut seq = BootSequence::new(BootConfig::hello(vmm));
                std::hint::black_box(seq.run().unwrap());
            });
        });
    }
    g.finish();
}

fn bench_boot_per_allocator(c: &mut Criterion) {
    let mut g = c.benchmark_group("nginx_boot_allocator");
    for alloc in [
        AllocBackend::Buddy,
        AllocBackend::Tlsf,
        AllocBackend::TinyAlloc,
        AllocBackend::Mimalloc,
        AllocBackend::BootAlloc,
    ] {
        g.bench_function(alloc.name(), |b| {
            b.iter(|| {
                let mut cfg = BootConfig::nginx(VmmKind::Firecracker, alloc);
                cfg.ram_bytes = 64 * 1024 * 1024;
                let mut seq = BootSequence::new(cfg);
                std::hint::black_box(seq.run().unwrap());
            });
        });
    }
    g.finish();
}

fn bench_paging(c: &mut Criterion) {
    const GIB: u64 = 1 << 30;
    let mut g = c.benchmark_group("page_tables");
    let pre = PageTables::prebuilt(GIB);
    g.bench_function("static_1G", |b| {
        b.iter(|| {
            let pt = boot_paging(PagingMode::Static, GIB, Some(pre.clone()));
            std::hint::black_box(pt);
        });
    });
    for mb in [64u64, 512, 1024, 3072] {
        g.bench_function(format!("dynamic_{mb}M"), |b| {
            b.iter(|| {
                let pt = boot_paging(PagingMode::Dynamic, mb << 20, None);
                std::hint::black_box(pt);
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_guest_boot, bench_boot_per_allocator, bench_paging);
criterion_main!(benches);
