//! Wire-level connection-lifecycle robustness tests: the hierarchical
//! timer wheel driving TIME_WAIT, handshake timeouts, keepalive and
//! accept-queue hardening, proven through real stacks on the testnet
//! wire with forged attacker traffic.
//!
//! Every test ends with a leak check: after the dust settles, every
//! pooled buffer is back home and every reaped connection's slot and
//! timers are reclaimed. Robustness that leaks is not robustness.

use uknetdev::backend::VhostKind;
use uknetdev::dev::{NetDev, NetDevConf};
use uknetdev::VirtioNet;
use uknetstack::stack::{
    NetStack, SocketHandle, StackConfig, HANDSHAKE_TIMEOUT_NS, KEEPALIVE_IDLE_NS,
    KEEPALIVE_INTVL_NS, KEEPALIVE_PROBES, TCP_MSL_NS,
};
use uknetstack::tcp::{TcpFlags, TcpState};
use uknetstack::testnet::Network;
use uknetstack::Endpoint;
use ukplat::time::Tsc;

const POOL: usize = 512;

fn mk_stack(n: u8, tune: impl FnOnce(&mut StackConfig)) -> NetStack {
    let tsc = Tsc::new(3_600_000_000);
    let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
    dev.configure(NetDevConf::default()).unwrap();
    let mut cfg = StackConfig::node(n);
    tune(&mut cfg);
    NetStack::new(cfg, Box::new(dev))
}

/// A two-node net with a shared virtual clock advancing `step_ns` per
/// step — the substrate every lifecycle timer in these tests runs on.
fn clocked_net(step_ns: u64, tune: fn(&mut StackConfig)) -> Network {
    let mut net = Network::new();
    net.attach(mk_stack(1, tune));
    net.attach(mk_stack(2, tune));
    let tsc = Tsc::new(1_000_000_000); // 1 cycle = 1 ns.
    net.set_clock(&tsc);
    net.set_step_ns(step_ns);
    net
}

fn establish(net: &mut Network, port: u16) -> (SocketHandle, SocketHandle) {
    let listener = net.stack(1).tcp_listen(port).unwrap();
    let server_ip = net.stack(1).ip();
    let client = net
        .stack(0)
        .tcp_connect(Endpoint::new(server_ip, port))
        .unwrap();
    net.run_until_quiet(32);
    let conn = net.stack(1).tcp_accept(listener).unwrap();
    (client, conn)
}

/// Steps the net `n` times regardless of wire traffic — lifecycle
/// timers fire on quiet nets, where `run_until_quiet` would stop.
fn tick(net: &mut Network, n: usize) {
    for _ in 0..n {
        net.step();
    }
}

fn counter(name: &str) -> u64 {
    ukstats::snapshot().counter(name).unwrap_or(0)
}

/// A SYN flood ten times the listener's backlog leaves the accept
/// machinery standing: half-open state stays bounded at the backlog,
/// the overflow evicts oldest-first (visible in the counter), a
/// legitimate client still connects and moves data byte-identically
/// through the flood, and when the handshake timeout reaps the
/// leftover half-opens every buffer and timer is reclaimed.
#[test]
fn syn_flood_10x_backlog_is_survived_and_reclaimed() {
    let mut net = clocked_net(10_000_000, |c| c.listen_backlog = 16); // 10 ms steps.
    let backlog = 16;
    let (client, conn) = establish(&mut net, 8080);
    let baseline_conns = net.stack(1).tcp_conn_count();
    let overflow0 = counter("netstack.tcp.syn_overflow");

    // Flood from 160 distinct spoofed endpoints, interleaved with a
    // live transfer on the established connection.
    let blob: Vec<u8> = (0..64_000u32).map(|i| (i.wrapping_mul(17) % 251) as u8).collect();
    let mut got = Vec::new();
    let mut sent = 0;
    let mut flooded = 0;
    let mut buf = vec![0u8; 64 * 1024];
    for round in 0..4_000 {
        if flooded < 10 * backlog && round % 4 == 0 {
            net.syn_flood(1, 8080, flooded, 8, 8);
            flooded += 8;
        }
        if sent < blob.len() {
            sent += net.stack(0).tcp_send_queued(client, &blob[sent..]).unwrap_or(0);
            net.stack(0).flush_output().unwrap();
        }
        net.step();
        loop {
            let n = net.stack(1).tcp_recv_into(conn, &mut buf).unwrap();
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
        }
        if got.len() == blob.len() && flooded >= 10 * backlog {
            break;
        }
    }
    assert_eq!(flooded, 10 * backlog, "the whole flood was delivered");
    assert_eq!(got, blob, "established stream byte-identical through the flood");

    // Half-open state never exceeded the backlog: established conns
    // plus at most `backlog` embryos.
    assert!(
        net.stack(1).tcp_conn_count() <= baseline_conns + backlog,
        "half-open connections bounded by the backlog ({} conns)",
        net.stack(1).tcp_conn_count()
    );
    if ukstats::COMPILED_IN {
        let evicted = counter("netstack.tcp.syn_overflow") - overflow0;
        assert!(
            evicted >= (10 * backlog - backlog) as u64,
            "overflow evicted the excess embryos ({evicted} evictions)"
        );
    }

    // The handshake timeout reaps the surviving half-opens; every
    // evicted and reaped embryo's buffers are already home.
    tick(&mut net, (HANDSHAKE_TIMEOUT_NS / 10_000_000) as usize + 8);
    assert_eq!(
        net.stack(1).tcp_conn_count(),
        baseline_conns,
        "all embryos reclaimed after the handshake timeout"
    );
    net.run_until_quiet(32);
    assert_eq!(net.stack(1).pool_available(), Some(POOL), "victim pool intact");
    assert_eq!(net.stack(0).pool_available(), Some(POOL), "client pool intact");
}

/// Forged SYNs that never complete are reaped by the SYN-RECEIVED
/// handshake timer: connection slots, wheel timers and netbufs all
/// return to their pools.
#[test]
fn handshake_timeout_reclaims_half_open_connections() {
    let mut net = clocked_net(50_000_000, |_| {}); // 50 ms steps.
    net.stack(1).tcp_listen(9090).unwrap();
    net.syn_flood(1, 9090, 0, 8, 8);
    net.run_until_quiet(8);
    assert_eq!(net.stack(1).tcp_conn_count(), 8, "eight embryos parked");
    assert!(net.stack(1).armed_timer_count() > 0, "lifecycle timers armed");

    tick(&mut net, (HANDSHAKE_TIMEOUT_NS / 50_000_000) as usize + 4);
    assert_eq!(net.stack(1).tcp_conn_count(), 0, "every embryo reaped");
    assert_eq!(net.stack(1).armed_timer_count(), 0, "every timer cancelled");
    net.run_until_quiet(16);
    assert_eq!(net.stack(1).pool_available(), Some(POOL), "no netbuf leaked");
}

/// A segment with no matching flow and no listener draws a correctly
/// formed RST (visible in `netstack.tcp.rst_tx`); an RST aimed at a
/// listening port is dropped silently — it neither wedges the listener
/// nor triggers an RST battle.
#[test]
fn stray_segments_draw_rst_and_rst_to_listener_is_ignored() {
    let mut net = clocked_net(1_000_000, |_| {});
    let rst0 = counter("netstack.tcp.rst_tx");
    let (ep, mac) = Network::spoofed_peer(1);
    net.inject_arp_reply(1, ep.addr, mac);

    // A stray ACK into port space nobody owns: answered with RST.
    let ack = TcpFlags { ack: true, ..TcpFlags::default() };
    net.inject_tcp(1, ep, mac, 7777, ack, 0x42, 0x43);
    net.run_until_quiet(8);
    if ukstats::COMPILED_IN {
        assert_eq!(counter("netstack.tcp.rst_tx") - rst0, 1, "demux miss answered with RST");
    }

    // An RST at a listening port: dropped, never answered, and the
    // listener still accepts a real handshake afterwards.
    net.stack(1).tcp_listen(8088).unwrap();
    let rst_before = counter("netstack.tcp.rst_tx");
    let rst = TcpFlags { rst: true, ..TcpFlags::default() };
    net.inject_tcp(1, ep, mac, 8088, rst, 0x1000, 0);
    net.run_until_quiet(8);
    if ukstats::COMPILED_IN {
        assert_eq!(
            counter("netstack.tcp.rst_tx"),
            rst_before,
            "no RST answers an RST"
        );
    }
    assert_eq!(net.stack(1).tcp_conn_count(), 0, "the RST spawned no embryo");
    let server_ip = net.stack(1).ip();
    let client = net
        .stack(0)
        .tcp_connect(Endpoint::new(server_ip, 8088))
        .unwrap();
    net.run_until_quiet(32);
    assert_eq!(
        net.stack(0).tcp_state(client),
        Some(TcpState::Established),
        "listener survived the forged RST"
    );
    net.run_until_quiet(16);
    assert_eq!(net.stack(1).pool_available(), Some(POOL));
}

/// The full close handshake parks the active closer in TIME_WAIT for
/// 2 MSL, after which the slot, its port and its timers are recycled —
/// and a fresh connection to the same server port succeeds.
#[test]
fn time_wait_holds_2msl_then_recycles_the_port() {
    let mut net = clocked_net(10_000_000, |_| {}); // 10 ms steps.
    let (client, conn) = establish(&mut net, 8090);
    let tw0 = counter("netstack.tcp.timewait");

    // Active close from the client, passive close from the server.
    net.stack(0).tcp_close(client).unwrap();
    net.run_until_quiet(32);
    assert!(net.stack(1).tcp_peer_closed(conn));
    net.stack(1).tcp_close(conn).unwrap();
    net.run_until_quiet(32);
    assert_eq!(
        net.stack(0).tcp_state(client),
        Some(TcpState::TimeWait),
        "active closer holds TIME_WAIT"
    );
    if ukstats::COMPILED_IN {
        assert_eq!(counter("netstack.tcp.timewait") - tw0, 1);
    }

    // 2 MSL later the wheel reaps it; the passive side's Closed slot
    // is reclaimed too once its receive queue is drained.
    tick(&mut net, (2 * TCP_MSL_NS / 10_000_000) as usize + 4);
    assert_eq!(net.stack(0).tcp_state(client), None, "TIME_WAIT expired");
    assert_eq!(net.stack(0).tcp_conn_count(), 0);
    assert_eq!(net.stack(1).tcp_conn_count(), 0, "passive closer reclaimed");
    assert_eq!(net.stack(0).armed_timer_count(), 0);

    // The four-tuple is free again: a new connection to the same
    // server port establishes and moves data.
    let server_ip = net.stack(1).ip();
    let client2 = net
        .stack(0)
        .tcp_connect(Endpoint::new(server_ip, 8090))
        .unwrap();
    net.run_until_quiet(32);
    assert_eq!(net.stack(0).tcp_state(client2), Some(TcpState::Established));
    net.run_until_quiet(16);
    assert_eq!(net.stack(0).pool_available(), Some(POOL));
    assert_eq!(net.stack(1).pool_available(), Some(POOL));
}

/// Keepalive probes detect a peer that went silent: after the idle
/// threshold the prober sends its probes, and when every one goes
/// unanswered the connection is torn down (`keepalive_drops`) with
/// all resources reclaimed.
#[test]
fn keepalive_reaps_a_dead_peer() {
    let mut net = clocked_net(100_000_000, |c| c.keepalive = true); // 100 ms steps.
    let (client, _conn) = establish(&mut net, 8070);
    let drops0 = counter("netstack.tcp.keepalive_drops");

    // The wire goes dark: every frame in either direction is eaten.
    net.set_drop_every(1);
    let budget_ns = KEEPALIVE_IDLE_NS + (KEEPALIVE_PROBES as u64 + 2) * KEEPALIVE_INTVL_NS;
    tick(&mut net, (budget_ns / 100_000_000) as usize + 8);

    assert_eq!(
        net.stack(0).tcp_state(client),
        None,
        "unanswered probes tore the connection down"
    );
    assert_eq!(net.stack(0).tcp_conn_count(), 0);
    assert_eq!(net.stack(0).armed_timer_count(), 0);
    if ukstats::COMPILED_IN {
        assert!(
            counter("netstack.tcp.keepalive_drops") - drops0 >= 1,
            "the teardown is visible in the stats registry"
        );
    }
    net.set_drop_every(0);
    net.run_until_quiet(32);
    assert_eq!(net.stack(0).pool_available(), Some(POOL), "prober pool intact");
    assert_eq!(net.stack(1).pool_available(), Some(POOL));
}

/// A live peer answers the probes and the connection stays up — the
/// keepalive machinery only kills what is actually dead.
#[test]
fn keepalive_leaves_a_live_peer_alone() {
    let mut net = clocked_net(100_000_000, |c| c.keepalive = true);
    let (client, conn) = establish(&mut net, 8071);
    let budget_ns = 2 * (KEEPALIVE_IDLE_NS + KEEPALIVE_PROBES as u64 * KEEPALIVE_INTVL_NS);
    tick(&mut net, (budget_ns / 100_000_000) as usize);
    assert_eq!(net.stack(0).tcp_state(client), Some(TcpState::Established));
    assert_eq!(net.stack(1).tcp_state(conn), Some(TcpState::Established));
    // And the connection still carries data after the long idle.
    net.stack(0).tcp_send(client, b"still here").unwrap();
    net.run_until_quiet(32);
    assert_eq!(net.stack(1).tcp_recv(conn, 64).unwrap(), b"still here");
}

/// Connection churn: repeated connect/transfer/close cycles against
/// one listener, each cycle waiting out TIME_WAIT. Slots, ports,
/// timers and buffers are all recycled — state after fifty cycles is
/// identical to state after one.
#[test]
fn connection_churn_recycles_every_resource() {
    let mut net = clocked_net(10_000_000, |_| {}); // 10 ms steps.
    let listener = net.stack(1).tcp_listen(8060).unwrap();
    let server_ip = net.stack(1).ip();
    for cycle in 0..50u32 {
        let client = net
            .stack(0)
            .tcp_connect(Endpoint::new(server_ip, 8060))
            .unwrap();
        net.run_until_quiet(32);
        let conn = net.stack(1).tcp_accept(listener).unwrap();
        let msg = cycle.to_be_bytes();
        net.stack(0).tcp_send(client, &msg).unwrap();
        net.run_until_quiet(32);
        assert_eq!(net.stack(1).tcp_recv(conn, 64).unwrap(), msg);
        net.stack(0).tcp_close(client).unwrap();
        net.run_until_quiet(32);
        net.stack(1).tcp_close(conn).unwrap();
        net.run_until_quiet(32);
        // Wait out TIME_WAIT so the cycle leaves nothing behind.
        tick(&mut net, (2 * TCP_MSL_NS / 10_000_000) as usize + 4);
        assert_eq!(net.stack(0).tcp_conn_count(), 0, "cycle {cycle}: client clean");
        assert_eq!(net.stack(1).tcp_conn_count(), 0, "cycle {cycle}: server clean");
    }
    assert_eq!(net.stack(0).armed_timer_count(), 0);
    assert_eq!(net.stack(1).armed_timer_count(), 0);
    assert_eq!(net.stack(0).pool_available(), Some(POOL));
    assert_eq!(net.stack(1).pool_available(), Some(POOL));
}

/// A fresh SYN from the same four-tuple assassinates a lingering
/// TIME_WAIT entry (RFC 1122 §4.2.2.13 shape): the old incarnation is
/// reaped and the new handshake proceeds.
#[test]
fn new_syn_assassinates_time_wait() {
    let mut net = clocked_net(1_000_000, |_| {});
    let (client, conn) = establish(&mut net, 8050);
    let local_port = {
        // Recover the client's ephemeral port from the server side:
        // the only remote endpoint the server knows.
        net.stack(1).tcp_peer(conn).unwrap().port
    };
    net.stack(0).tcp_close(client).unwrap();
    net.run_until_quiet(32);
    net.stack(1).tcp_close(conn).unwrap();
    net.run_until_quiet(32);
    assert_eq!(net.stack(0).tcp_state(client), Some(TcpState::TimeWait));

    // Forge a fresh SYN from the server's address and port to the
    // client's TIME_WAIT four-tuple: the TW incarnation dies and the
    // SYN falls through to normal demux (no listener there — RST).
    let server_ep = Endpoint::new(net.stack(1).ip(), 8050);
    let server_mac = net.stack(1).mac();
    let syn = TcpFlags { syn: true, ..TcpFlags::default() };
    net.inject_tcp(0, server_ep, server_mac, local_port, syn, 0x9999, 0);
    net.stack(0).pump();
    assert_eq!(
        net.stack(0).tcp_state(client),
        None,
        "the new SYN assassinated TIME_WAIT"
    );
    net.run_until_quiet(16);
    assert_eq!(net.stack(0).tcp_conn_count(), 0);
}
