//! Baseline execution-environment models (`ukbaselines`).
//!
//! The paper compares Unikraft against native Linux, Linux VMs (QEMU/KVM
//! and Firecracker), Docker, and the unikernels OSv, Rumprun, HermiTux,
//! Lupine and MirageOS. We cannot run those systems here; instead each
//! gets an [`env::EnvModel`]:
//!
//! - *mechanical* parts: which syscall cost mode applies (function call /
//!   trap / trap+KPTI / seccomp-filtered), and which I/O backend path a
//!   guest pays — the same machinery our own stack uses;
//! - *calibrated* parts: per-request residual overheads, image sizes,
//!   minimum memory and guest boot times taken from the paper's Figures
//!   9–13 so comparison charts reproduce the published shape. Every
//!   calibrated number is in [`data`] with its figure cited.

pub mod data;
pub mod env;

pub use env::{EnvModel, ExecEnv, Workload};
