//! Criterion bench: HTTP request/response over the full stack (Fig 13/15).

use criterion::{criterion_group, criterion_main, Criterion};
use ukalloc::AllocBackend;
use ukbench::netharness::run_http_bench;
use uknetdev::backend::VhostKind;

fn bench_http(c: &mut Criterion) {
    let mut g = c.benchmark_group("httpd_500_requests");
    g.sample_size(10);
    for alloc in [AllocBackend::Mimalloc, AllocBackend::TinyAlloc] {
        g.bench_function(alloc.name(), |b| {
            b.iter(|| {
                let t = run_http_bench(alloc, VhostKind::VhostUser, 4, 4, 500);
                assert_eq!(t.requests, 500);
                std::hint::black_box(t);
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_http);
criterion_main!(benches);
