//! Allocator specialization lab (§3.2, §5.5).
//!
//! ```text
//! cargo run --release --example allocator_lab
//! ```
//!
//! Demonstrates the two `ukalloc` superpowers the paper leans on:
//!
//! 1. *pick-and-choose*: boot the same image with each backend and watch
//!    the boot-time/runtime trade-off (Figures 14–16);
//! 2. *multiplexing*: run two allocators in one unikernel — a region
//!    allocator for boot, a general-purpose one for the app — and flip
//!    the default at runtime (the GC-handoff pattern).

use std::time::Instant;

use unikraft_rs::alloc::{AllocBackend, AllocRegistry};
use unikraft_rs::apps::sqldb::SqlDb;
use unikraft_rs::boot::sequence::{BootConfig, BootSequence};
use unikraft_rs::plat::vmm::VmmKind;

fn main() {
    println!("== 1. boot + workload per backend ==");
    println!(
        "{:<14} {:>14} {:>16}",
        "allocator", "boot (guest)", "10k inserts"
    );
    for backend in [
        AllocBackend::Buddy,
        AllocBackend::Tlsf,
        AllocBackend::TinyAlloc,
        AllocBackend::Mimalloc,
        AllocBackend::BootAlloc,
    ] {
        // Boot cost.
        let mut cfg = BootConfig::nginx(VmmKind::Firecracker, backend);
        cfg.ram_bytes = 64 * 1024 * 1024;
        let mut seq = BootSequence::new(cfg);
        let report = seq.run().expect("boot");

        // Runtime cost: the SQL insert workload.
        let mut a = backend.instantiate();
        a.init(1 << 26, 128 << 20).expect("init");
        let mut db = SqlDb::new(a);
        let t = Instant::now();
        db.insert_workload(10_000).expect("workload");
        let work_ns = t.elapsed().as_nanos() as u64;

        println!(
            "{:<14} {:>11} us {:>13} us",
            backend.name(),
            report.guest_ns / 1_000,
            work_ns / 1_000
        );
    }

    println!("\n== 2. two allocators in one image (GC-handoff pattern) ==");
    let mut reg = AllocRegistry::new();
    let early = reg
        .register(AllocBackend::BootAlloc, 0x10_0000, 1 << 20)
        .expect("boot heap");
    println!(
        "early boot uses {:?} ({})",
        early,
        reg.name(early).expect("registered")
    );
    let boot_obj = reg.malloc_default(4096).expect("boot-time allocation");
    println!("  boot-time object at {boot_obj:#x}");

    let main = reg
        .register(AllocBackend::Mimalloc, 0x40_0000, 32 << 20)
        .expect("main heap");
    reg.set_default(main).expect("switch default");
    println!(
        "application uses {:?} ({})",
        main,
        reg.name(main).expect("registered")
    );
    let app_obj = reg.malloc_default(4096).expect("app allocation");
    println!("  app object at {app_obj:#x} (different region)");
    assert!(app_obj >= 0x40_0000);

    let stats = reg.total_stats();
    println!(
        "registry totals: {} allocations, {} bytes live",
        stats.alloc_count, stats.cur_bytes
    );
}
